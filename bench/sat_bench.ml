(* SAT-engine benchmark: times the CDCL engine against the reference
   (seed) solver on the two SAT workloads the flow actually runs —
   monolithic CEC miters (golden AIG vs its re-expanded mapping) and the
   fault-ATPG sweep (miter-reuse assumption queries vs a fresh miter per
   fault) — checks the engines agree, and writes the measurements to
   BENCH_sat.json.

   Each (benchmark, task, engine) measurement runs in a forked child
   process, like cut_bench: solver instances keep arenas and learnt
   databases on the major heap, and timing one engine under the GC
   pressure of the other would bias the comparison.  Children report
   wall time, solver counters, and the verdicts; the parent checks
   - CEC verdicts are identical between engines,
   - ATPG decided verdicts (detected vs redundant) never conflict, and
   - the incremental sweep leaves no more Unknown faults than rebuild.
   Any disagreement exits nonzero, so the benchmark doubles as a
   differential test.

     dune exec bench/sat_bench.exe                    (fast subset, static)
     dune exec bench/sat_bench.exe -- --full --all-families
     dune exec bench/sat_bench.exe -- --bench t481 --repeat 5 --out my.json *)

let prog = "sat_bench"
let full = ref false
let benches = ref []
let out = ref "BENCH_sat.json"
let repeat = ref 3
let family = ref "static"
let all_families = ref false
let rounds = ref 2
let cec_only = ref false
let budget = ref 0

let specs =
  [
    ("--full", Arg.Set full, " run all 15 benchmarks (default: fast subset)");
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable)" );
    ( "--out",
      Arg.Set_string out,
      "FILE output JSON path (default BENCH_sat.json)" );
    ( "--repeat",
      Arg.Set_int repeat,
      "N timing repetitions, best-of-N (default 3)" );
    ( "--family",
      Arg.Set_string family,
      "F mapping target family (default static)" );
    ( "--all-families",
      Arg.Set all_families,
      " run every family (the full differential matrix)" );
    ( "--rounds",
      Arg.Set_int rounds,
      "N random fault-sim rounds before ATPG (default 2, few so the SAT \
       sweep has survivors to decide)" );
    ( "--cec-only",
      Arg.Set cec_only,
      " skip the ATPG measurements (cheap full-matrix verdict check)" );
    ( "--conflict-budget",
      Arg.Set_int budget,
      "N cap every solve at N conflicts (default unbounded; needed for \
       the full matrix — the seed engine cannot finish the big monolithic \
       miters unbounded, which is what this subsystem fixes)" );
  ]

type measurement = {
  ms : float;
  st : Solver.stats;
  payload : string;
      (** CEC: the verdict word; ATPG: one status char per fault
          (S/A/R/U = sim-detected / ATPG-detected / redundant / unknown) *)
}

type row = {
  bench : string;
  fam : string;
  faults : int;
  cec_ref : measurement;
  cec_cdcl : measurement;
  atpg_rebuild : measurement;
  atpg_incr : measurement;
}

(* Runs [f] in a forked child; the child prints one line to a pipe and
   exits, the parent returns the line. *)
let in_child f =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let oc = Unix.out_channel_of_descr w in
      (match f () with
      | line ->
          output_string oc (line ^ "\n");
          flush oc;
          exit 0
      | exception e ->
          prerr_endline (Printexc.to_string e);
          exit 2)
  | pid -> (
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      match (snd (Unix.waitpid [] pid), line) with
      | Unix.WEXITED 0, Some line -> line
      | _ ->
          Printf.eprintf "%s: child measurement failed\n" prog;
          exit 2)

(* Best-of-[n] wall time around [task], which fills a fresh stats record
   and returns the payload string; counters come from the last run (the
   workloads are deterministic, so every run counts the same). *)
let measure n task =
  let line =
    in_child (fun () ->
        let best = ref infinity and last = ref None in
        for _ = 1 to n do
          let stats = Solver.stats_create () in
          let t0 = Unix.gettimeofday () in
          let payload = task stats in
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt;
          last := Some (stats, payload)
        done;
        let st, payload = Option.get !last in
        Printf.sprintf "%.6f %d %d %d %d %d %d %s" (1000.0 *. !best)
          st.Solver.sat_solves st.Solver.sat_conflicts st.Solver.sat_decisions
          st.Solver.sat_propagations st.Solver.sat_restarts
          st.Solver.sat_learned payload)
  in
  Scanf.sscanf line "%f %d %d %d %d %d %d %s"
    (fun ms solves conflicts decisions propagations restarts learned payload ->
      let st = Solver.stats_create () in
      st.Solver.sat_solves <- solves;
      st.Solver.sat_conflicts <- conflicts;
      st.Solver.sat_decisions <- decisions;
      st.Solver.sat_propagations <- propagations;
      st.Solver.sat_restarts <- restarts;
      st.Solver.sat_learned <- learned;
      { ms; st; payload })

let verdict_word = function
  | Cec.Equivalent -> "equivalent"
  | Cec.Inequivalent _ -> "inequivalent"
  | Cec.Undecided -> "undecided"

let status_char = function
  | Gate_fault.Detected_sim -> 'S'
  | Gate_fault.Detected_atpg _ -> 'A'
  | Gate_fault.Redundant -> 'R'
  | Gate_fault.Unknown -> 'U'

(* Decided verdicts must not conflict: detected (sim or ATPG) on one side
   and redundant on the other is a soundness bug in one engine.  Unknown
   is a wildcard — the engines search differently, so the conflict budget
   runs out on different faults. *)
let atpg_compatible a b =
  String.length a = String.length b
  &&
  let ok = ref true in
  String.iteri
    (fun i ca ->
      let cb = b.[i] in
      let detected c = c = 'S' || c = 'A' in
      if (detected ca && cb = 'R') || (ca = 'R' && detected cb) then
        ok := false)
    a;
  !ok

let count_unknown s =
  String.fold_left (fun n c -> if c = 'U' then n + 1 else n) 0 s

(* speedup with a 0-denominator guard: --cec-only leaves the ATPG
   measurements at 0ms, and nan/inf are not valid JSON *)
let speedup a b = if b > 0.0 then a /. b else 0.0

let run_bench lib fam_name (e : Bench_suite.entry) =
  let build () =
    let aig = e.Bench_suite.build () in
    let opt = Synth.resyn2rs aig in
    (opt, Mapper.map lib opt)
  in
  let cb = if !budget > 0 then Some !budget else None in
  let cec engine stats =
    let opt, m = build () in
    verdict_word (Cec.check ~engine ?conflict_budget:cb ~stats opt (Mapped.to_aig m))
  in
  let atpg engine stats =
    let _, m = build () in
    let results, _ =
      Gate_fault.analyze ~rounds:!rounds ~seed:2026L ?conflict_budget:cb
        ~atpg:engine ~stats m
    in
    String.init (Array.length results) (fun i ->
        status_char results.(i).Gate_fault.status)
  in
  let cec_ref = measure !repeat (cec Cec.Reference) in
  let cec_cdcl = measure !repeat (cec Cec.Cdcl) in
  let skipped = { ms = 0.0; st = Solver.stats_create (); payload = "" } in
  let atpg_rebuild =
    if !cec_only then skipped else measure !repeat (atpg Gate_fault.Rebuild)
  in
  let atpg_incr =
    if !cec_only then skipped
    else measure !repeat (atpg Gate_fault.Incremental)
  in
  {
    bench = e.Bench_suite.name;
    fam = fam_name;
    faults = String.length atpg_incr.payload;
    cec_ref;
    cec_cdcl;
    atpg_rebuild;
    atpg_incr;
  }

let check_row row =
  let problems = ref [] in
  (* an "undecided" verdict (only possible under --conflict-budget) is a
     wildcard, like Unknown in ATPG: the engines may exhaust the budget
     on different instances, but decided verdicts must never conflict *)
  if
    row.cec_ref.payload <> row.cec_cdcl.payload
    && row.cec_ref.payload <> "undecided"
    && row.cec_cdcl.payload <> "undecided"
  then
    problems :=
      Printf.sprintf "CEC verdict mismatch (%s vs %s)" row.cec_ref.payload
        row.cec_cdcl.payload
      :: !problems;
  if not (atpg_compatible row.atpg_rebuild.payload row.atpg_incr.payload) then
    problems := "ATPG detected/redundant conflict" :: !problems;
  if
    count_unknown row.atpg_incr.payload
    > count_unknown row.atpg_rebuild.payload
  then
    problems :=
      Printf.sprintf "incremental ATPG left more unknowns (%d > %d)"
        (count_unknown row.atpg_incr.payload)
        (count_unknown row.atpg_rebuild.payload)
      :: !problems;
  !problems

let json_measurement b m =
  Printf.bprintf b
    "{\"ms\": %.3f, \"solves\": %d, \"conflicts\": %d, \"decisions\": %d, \
     \"propagations\": %d, \"restarts\": %d, \"learned\": %d}"
    m.ms m.st.Solver.sat_solves m.st.Solver.sat_conflicts
    m.st.Solver.sat_decisions m.st.Solver.sat_propagations
    m.st.Solver.sat_restarts m.st.Solver.sat_learned

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    "sat_bench [options]";
  let fams =
    if !all_families then
      Cli_common.parse_families ~prog "all"
    else
      match Cli_common.family_of_name !family with
      | Some f -> [ f ]
      | None -> Cli_common.usage_die ~prog ("unknown --family " ^ !family)
  in
  let entries =
    if !benches <> [] then Cli_common.bench_entries ~prog !benches
    else if !full then Bench_suite.all
    else Cli_common.bench_entries ~prog Cli_common.fast_subset
  in
  let rows =
    List.concat_map
      (fun fam ->
        (* characterize before forking so the children inherit the lib *)
        let lib = Cell_lib.cached fam in
        let fam_name = Cli_common.family_arg_name fam in
        List.map
          (fun (e : Bench_suite.entry) ->
            let row = run_bench lib fam_name e in
            Printf.printf
              "%-10s %-12s cec %s/%s ref=%8.2fms cdcl=%8.2fms x%5.2f | atpg \
               rebuild=%8.2fms incr=%8.2fms x%5.2f unk=%d/%d\n%!"
              row.bench row.fam row.cec_ref.payload row.cec_cdcl.payload
              row.cec_ref.ms row.cec_cdcl.ms
              (speedup row.cec_ref.ms row.cec_cdcl.ms)
              row.atpg_rebuild.ms row.atpg_incr.ms
              (speedup row.atpg_rebuild.ms row.atpg_incr.ms)
              (count_unknown row.atpg_incr.payload)
              (count_unknown row.atpg_rebuild.payload);
            List.iter
              (fun p -> Printf.printf "  DIFFERENTIAL FAILURE: %s\n%!" p)
              (check_row row);
            row)
          entries)
      fams
  in
  let sum f = List.fold_left (fun a row -> a +. f row) 0.0 rows in
  let tot_cec_ref = sum (fun r -> r.cec_ref.ms) in
  let tot_cec_cdcl = sum (fun r -> r.cec_cdcl.ms) in
  let tot_atpg_rebuild = sum (fun r -> r.atpg_rebuild.ms) in
  let tot_atpg_incr = sum (fun r -> r.atpg_incr.ms) in
  let failures = List.concat_map check_row rows in
  Printf.printf
    "total: cec ref=%.2fms cdcl=%.2fms x%.2f | atpg rebuild=%.2fms \
     incr=%.2fms x%.2f %s\n"
    tot_cec_ref tot_cec_cdcl
    (speedup tot_cec_ref tot_cec_cdcl)
    tot_atpg_rebuild tot_atpg_incr
    (speedup tot_atpg_rebuild tot_atpg_incr)
    (if failures = [] then "(engines agree)" else "(ENGINES DISAGREE)");
  let b = Buffer.create 8192 in
  Printf.bprintf b
    "{\n  \"suite\": \"%s\",\n  \"families\": [%s],\n  \"repeat\": %d,\n  \
     \"fault_rounds\": %d,\n  \"conflict_budget\": %d,\n  \"rows\": [\n"
    (if !benches <> [] then "custom" else if !full then "full" else "fast")
    (String.concat ", "
       (List.map
          (fun f -> "\"" ^ Cli_common.family_arg_name f ^ "\"")
          fams))
    !repeat !rounds !budget;
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string b ",\n";
      Printf.bprintf b
        "    {\"bench\": \"%s\", \"family\": \"%s\", \"faults\": %d, \
         \"cec_verdict\": \"%s\", \"cec_identical\": %b, \"atpg_unknown\": \
         {\"rebuild\": %d, \"incremental\": %d},\n     \"cec_ref\": "
        row.bench row.fam row.faults row.cec_cdcl.payload
        (row.cec_ref.payload = row.cec_cdcl.payload)
        (count_unknown row.atpg_rebuild.payload)
        (count_unknown row.atpg_incr.payload);
      json_measurement b row.cec_ref;
      Buffer.add_string b ",\n     \"cec_cdcl\": ";
      json_measurement b row.cec_cdcl;
      Buffer.add_string b ",\n     \"atpg_rebuild\": ";
      json_measurement b row.atpg_rebuild;
      Buffer.add_string b ",\n     \"atpg_incremental\": ";
      json_measurement b row.atpg_incr;
      Printf.bprintf b ",\n     \"cec_speedup\": %.3f, \"atpg_speedup\": %.3f}"
        (speedup row.cec_ref.ms row.cec_cdcl.ms)
        (speedup row.atpg_rebuild.ms row.atpg_incr.ms))
    rows;
  Printf.bprintf b
    "\n  ],\n  \"total\": {\"cec_ref_ms\": %.3f, \"cec_cdcl_ms\": %.3f, \
     \"cec_speedup\": %.3f, \"atpg_rebuild_ms\": %.3f, \
     \"atpg_incremental_ms\": %.3f, \"atpg_speedup\": %.3f, \"agree\": %b}\n}\n"
    tot_cec_ref tot_cec_cdcl
    (speedup tot_cec_ref tot_cec_cdcl)
    tot_atpg_rebuild tot_atpg_incr
    (speedup tot_atpg_rebuild tot_atpg_incr)
    (failures = []);
  let oc = open_out !out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "wrote %s\n" !out;
  exit (if failures = [] then 0 else 1)
