(* Benchmark harness: one section per paper artifact.

   Each section (Table 1, Table 2, Table 3, Figure 6) first prints the
   reproduced rows (computed vs published) and then registers a bechamel
   micro-benchmark timing the kernel that produces it.  Ablation sections
   cover the design choices called out in DESIGN.md §6.

     dune exec bench/main.exe                 (fast benchmark subset)
     FULL=1 dune exec bench/main.exe          (all 15 benchmarks)  *)

open Bechamel
open Toolkit

let fast_subset = Cli_common.fast_subset

let full = Sys.getenv_opt "FULL" <> None

let benches = if full then None else Some fast_subset

(* benchmarks fan out across domains; results are input-ordered, so the
   printout is identical at any JOBS value *)
let jobs =
  match Sys.getenv_opt "JOBS" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> Flow.Runner.recommended_domains ()

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ---------------- reproduction printout ---------------- *)

let print_reproduction () =
  hr "Table 1 - the 46-function catalog (vs 7 CMOS-expressible)";
  Printf.printf "catalog: %d gates, CMOS subset: %d\n"
    (List.length Catalog.all)
    (List.length Catalog.cmos_subset);

  hr "Expressive power: single-cell coverage of all k-support functions";
  List.iter
    (fun lib ->
      List.iter
        (fun k ->
          let r = Coverage.analyze lib k in
          Printf.printf
            "  %-20s k=%d  free %3d/%3d (%.0f%%)  with-inverters %3d (%.0f%%)  NPN %d/%d\n"
            (Cell_lib.name lib) k r.Coverage.covered_free r.Coverage.total
            (100.0 *. float_of_int r.Coverage.covered_free
             /. float_of_int r.Coverage.total)
            r.Coverage.covered_any
            (100.0 *. float_of_int r.Coverage.covered_any
             /. float_of_int r.Coverage.total)
            r.Coverage.npn_classes_covered r.Coverage.npn_classes_total)
        (if full then [ 2; 3; 4 ] else [ 2; 3 ]))
    [ Core.library `Tg_static; Core.library `Cmos ];

  hr "Table 2 - library characterization averages (computed | paper)";
  let paper_avgs =
    [ (Cell_netlist.Tg_static, (9.1, 12.3, 11.3, 9.0));
      (Cell_netlist.Tg_pseudo, (5.6, 8.5, 15.6, 12.0));
      (Cell_netlist.Pass_pseudo, (3.7, 11.5, 32.5, 24.1));
      (Cell_netlist.Cmos, (4.9, 12.7, 9.1, 9.0)) ]
  in
  List.iter
    (fun (fam, (pt, pa, pw, pv)) ->
      let t, a, w, v = Charlib.averages (Charlib.characterize_catalog fam) in
      Printf.printf
        "%-20s T %.1f|%.1f  A %.1f|%.1f  FO4w %.1f|%.1f  FO4a %.1f|%.1f\n"
        (Cell_netlist.family_name fam) t pt a pa w pw v pv)
    paper_avgs;

  hr "Fault dictionaries - transistor-level defects per family (DESIGN.md §11)";
  print_endline Cell_fault.summary_header;
  List.iter
    (fun fam ->
      let reports = Cell_fault.analyze_family fam in
      print_endline (Cell_fault.summary_line (Cell_fault.summarize fam reports)))
    Cell_netlist.all_families;
  Printf.printf "gate-level stuck-at (add-16, static): %s\n"
    (let ctx =
       Flow.init ~name:"add-16" ((Bench_suite.find "add-16").Bench_suite.build ())
     in
     let ctx, _ =
       Flow.run (Flow.parse_script_exn "synth(light); map(family=static)") ctx
     in
     let _, s = Gate_fault.analyze ~rounds:8 (Option.get ctx.Flow.mapped) in
     Gate_fault.summary_line s);

  hr (Printf.sprintf "Table 3 - mapping results%s"
        (if full then "" else " (fast subset; FULL=1 for all 15)"));
  let rows =
    let opts = Experiments.default_options in
    let libs = Experiments.libraries opts in
    let entries =
      match benches with
      | None -> Bench_suite.all
      | Some names -> List.map Bench_suite.find names
    in
    Array.to_list
      (Flow.Runner.map_jobs ~domains:jobs
         (Experiments.run_bench opts libs)
         (Array.of_list entries))
  in
  Printf.printf
    "%-8s %-7s %6s %9s %7s %8s %9s %9s   (paper: gates area levels delay ps)\n"
    "bench" "lib" "gates" "area" "levels" "delay" "ps" "sta-ps";
  List.iter
    (fun (r : Experiments.t3_row) ->
      let paper =
        try Some (Paper_data.table3_find r.Experiments.bench)
        with Not_found -> None
      in
      let line name (c : Experiments.t3_cell) pick =
        let s = c.Experiments.stats in
        Printf.printf "%-8s %-7s %6d %9.1f %7d %8.1f %9.1f %9.1f"
          r.Experiments.bench
          name s.Mapped.gates s.Mapped.area s.Mapped.levels s.Mapped.norm_delay
          s.Mapped.abs_delay_ps s.Mapped.sta_abs_delay_ps;
        (match Option.map pick paper with
        | Some (p : Paper_data.mapping_result) ->
            Printf.printf "   (%d %.0f %d %.1f %.1f)" p.Paper_data.gates
              p.Paper_data.area p.Paper_data.levels p.Paper_data.norm_delay
              p.Paper_data.abs_delay_ps
        | None -> ());
        print_newline ()
      in
      line "static" r.Experiments.static_r (fun p -> p.Paper_data.static);
      line "pseudo" r.Experiments.pseudo_r (fun p -> p.Paper_data.pseudo);
      line "cmos" r.Experiments.cmos_r (fun p -> p.Paper_data.cmos_map))
    rows;
  Printf.printf "\naggregates (computed | paper):\n";
  let paper_of = function
    | "gate_reduction_static" -> Some 0.386
    | "area_reduction_static" -> Some 0.377
    | "area_reduction_pseudo" -> Some 0.645
    | "level_reduction_static" -> Some 0.415
    | "level_reduction_pseudo" -> Some 0.404
    | "speedup_static" -> Some 6.9
    | "speedup_pseudo" -> Some 5.8
    | _ -> None
  in
  List.iter
    (fun (k, v) ->
      match paper_of k with
      | Some p -> Printf.printf "  %-24s %6.3f | %.3f\n" k v p
      | None -> Printf.printf "  %-24s %6.3f |\n" k v)
    (Experiments.summarize rows);

  hr "Figure 6 - CMOS/CNTFET absolute delay ratio";
  List.iter
    (fun (r : Experiments.t3_row) ->
      let cm = r.Experiments.cmos_r.Experiments.stats.Mapped.abs_delay_ps in
      let st = r.Experiments.static_r.Experiments.stats.Mapped.abs_delay_ps in
      let ps = r.Experiments.pseudo_r.Experiments.stats.Mapped.abs_delay_ps in
      let paper =
        List.find_opt
          (fun (n, _, _) -> n = r.Experiments.bench)
          Paper_data.fig6_speedups
      in
      match paper with
      | Some (_, a, b) ->
          Printf.printf
            "  %-8s static %5.2fx (paper %5.2fx)  pseudo %5.2fx (paper %5.2fx)\n"
            r.Experiments.bench (cm /. st) a (cm /. ps) b
      | None ->
          Printf.printf "  %-8s static %5.2fx  pseudo %5.2fx\n"
            r.Experiments.bench (cm /. st) (cm /. ps))
    rows;

  hr "STA - load-aware delay vs the published unit-load convention";
  Printf.printf
    "%-8s %-7s %10s %10s %10s   (unit-load FO4 | load-aware STA | paper)\n"
    "bench" "lib" "ps" "sta-ps" "paper-ps";
  List.iter
    (fun (r : Experiments.t3_row) ->
      let paper =
        try Some (Paper_data.table3_find r.Experiments.bench)
        with Not_found -> None
      in
      let line name (c : Experiments.t3_cell) pick =
        let s = c.Experiments.stats in
        let pub =
          match Option.map pick paper with
          | Some (p : Paper_data.mapping_result) ->
              Printf.sprintf "%10.1f" p.Paper_data.abs_delay_ps
          | None -> Printf.sprintf "%10s" "-"
        in
        Printf.printf "%-8s %-7s %10.1f %10.1f %s\n" r.Experiments.bench name
          s.Mapped.abs_delay_ps s.Mapped.sta_abs_delay_ps pub
      in
      line "static" r.Experiments.static_r (fun p -> p.Paper_data.static);
      line "cmos" r.Experiments.cmos_r (fun p -> p.Paper_data.cmos_map))
    rows;
  let assoc k l = try List.assoc k l with Not_found -> nan in
  let sums = Experiments.summarize rows in
  Printf.printf
    "\n  speedup vs CMOS: unit-load static %.2fx pseudo %.2fx | STA static \
     %.2fx pseudo %.2fx | paper 6.9x / 5.8x\n"
    (assoc "speedup_static" sums)
    (assoc "speedup_pseudo" sums)
    (assoc "sta_speedup_static" sums)
    (assoc "sta_speedup_pseudo" sums);

  hr "STA-backed timing-driven mapping (static library)";
  Printf.printf "%-8s %10s %10s %12s %12s\n" "bench" "delay" "delay(tm)"
    "sta-delay" "sta-delay(tm)";
  let map_stats ctx script =
    let ctx', _ = Flow.run (Flow.parse_script_exn script) ctx in
    Mapped.stats (Option.get ctx'.Flow.mapped)
  in
  List.iter
    (fun bench ->
      let e = Bench_suite.find bench in
      let ctx = Flow.init ~name:bench (e.Bench_suite.build ()) in
      let ctx, _ = Flow.run (Flow.parse_script_exn "resyn2rs") ctx in
      let s0 = map_stats ctx "map(family=static)" in
      let s1 = map_stats ctx "map(family=static,timing)" in
      Printf.printf "%-8s %10.1f %10.1f %12.1f %12.1f%s\n" bench
        s0.Mapped.norm_delay s1.Mapped.norm_delay s0.Mapped.sta_norm_delay
        s1.Mapped.sta_norm_delay
        (if s1.Mapped.sta_norm_delay < s0.Mapped.sta_norm_delay -. 1e-9 then
           "  <- improved"
         else ""))
    (match benches with
    | Some l -> l
    | None -> List.map (fun (e : Bench_suite.entry) -> e.Bench_suite.name)
                Bench_suite.all)

(* ---------------- static testability (DESIGN.md §12) ---------------- *)

let print_testability () =
  let entries =
    match benches with
    | None -> Bench_suite.all
    | Some names -> List.map Bench_suite.find names
  in
  let mapped_of ?(cost = "area") fam (e : Bench_suite.entry) =
    let ctx = Flow.init ~family:fam ~name:e.Bench_suite.name (e.Bench_suite.build ()) in
    let ctx, _ =
      Flow.run
        (Flow.parse_script_exn (Printf.sprintf "synth(light); map(cost=%s)" cost))
        ctx
    in
    (Option.get ctx.Flow.mapped, Option.get ctx.Flow.golden)
  in

  hr "Static testability - SCOAP / collapsing / redundancy per family (DESIGN.md §12)";
  let rows =
    Array.to_list
      (Flow.Runner.map_jobs ~domains:jobs
         (fun ((fam, e) : Cell_netlist.family * Bench_suite.entry) ->
           let m, _ = mapped_of fam e in
           let t = Testability.analyze m in
           Printf.sprintf "%-10s %-12s %s" e.Bench_suite.name
             (Cell_netlist.family_name fam)
             (Testability.summary_line t.Testability.summary))
         (Array.of_list
            (List.concat_map
               (fun fam -> List.map (fun e -> (fam, e)) entries)
               Cell_netlist.all_families)))
  in
  List.iter print_endline rows;

  hr "Testability-driven mapping (tg-pseudo): map(cost=testability) vs map";
  (* random-pattern detection under a tight pattern budget is where mapping
     choices show before coverage saturates; ATPG is capped at one conflict
     so the sim-only detection fraction is the metric *)
  let rounds = 2 and budget = 1 in
  Printf.printf
    "%-8s %7s %8s %8s %9s %9s %8s %5s   (sim-detected%% of %d x 64 patterns)\n"
    "bench" "det%" "det%(tb)" "delta" "area" "area(tb)" "darea%" "cec" rounds;
  let cells =
    Array.to_list
      (Flow.Runner.map_jobs ~domains:jobs
         (fun (e : Bench_suite.entry) ->
           let fam = Cell_netlist.Tg_pseudo in
           let m0, _ = mapped_of fam e in
           let m1, golden = mapped_of ~cost:"testability" fam e in
           let det m =
             let _, s =
               Gate_fault.analyze ~rounds ~conflict_budget:budget m
             in
             ( 100.0 *. float_of_int s.Gate_fault.g_sim
               /. float_of_int s.Gate_fault.g_total,
               s.Gate_fault.g_total )
           in
           let d0, n0 = det m0 and d1, n1 = det m1 in
           let a0 = (Mapped.stats m0).Mapped.area
           and a1 = (Mapped.stats m1).Mapped.area in
           let cec =
             match
               Cec.check ~conflict_budget:200_000 golden (Mapped.to_aig m1)
             with
             | Cec.Equivalent -> "ok"
             | Cec.Inequivalent _ -> "FAIL"
             | Cec.Undecided -> "?"
           in
           (e.Bench_suite.name, d0, n0, d1, n1, a0, a1, cec))
         (Array.of_list entries))
  in
  let sum0 = ref 0.0 and sum1 = ref 0.0 and asum = ref 0.0 in
  List.iter
    (fun (name, d0, _, d1, _, a0, a1, cec) ->
      sum0 := !sum0 +. d0;
      sum1 := !sum1 +. d1;
      asum := !asum +. (100.0 *. (a1 -. a0) /. a0);
      Printf.printf "%-8s %7.3f %8.3f %+8.3f %9.1f %9.1f %+7.2f%% %5s\n" name
        d0 d1 (d1 -. d0) a0 a1
        (100.0 *. (a1 -. a0) /. a0)
        cec)
    cells;
  let n = float_of_int (List.length cells) in
  Printf.printf
    "mean     %7.3f %8.3f %+8.3f %28s %+7.2f%%\n"
    (!sum0 /. n) (!sum1 /. n)
    ((!sum1 -. !sum0) /. n)
    "" (!asum /. n)

(* ---------------- ablations ---------------- *)

let print_ablations () =
  let aig = Synth.resyn2rs (Ecc.c1355_like ()) in

  hr "Ablation: mapper cut size K (C1355, static library)";
  let flow_stats ctx script =
    let ctx', _ = Flow.run (Flow.parse_script_exn script) ctx in
    Mapped.stats (Option.get ctx'.Flow.mapped)
  in
  let c1355_ctx = Flow.init ~name:"C1355" aig in
  List.iter
    (fun k ->
      let s = flow_stats c1355_ctx (Printf.sprintf "map(family=static,cut=%d)" k) in
      Printf.printf "  K=%d  gates=%d area=%.1f levels=%d delay=%.1f\n" k
        s.Mapped.gates s.Mapped.area s.Mapped.levels s.Mapped.norm_delay)
    [ 3; 4; 5; 6 ];

  hr "Ablation: free output polarity (C1355, static library)";
  List.iter
    (fun free ->
      let opts =
        { Experiments.default_options with
          Experiments.free_output_polarity = free }
      in
      let lib_s, _, _ = Experiments.libraries opts in
      let m = Mapper.map lib_s aig in
      let s = Mapped.stats m in
      Printf.printf "  free-polarity=%-5b gates=%d area=%.1f delay=%.1f\n" free
        s.Mapped.gates s.Mapped.area s.Mapped.norm_delay)
    [ true; false ];

  hr "Ablation: synthesis effort (t481, static library)";
  let raw = Logic_gen.t481_like () in
  List.iter
    (fun (name, mode) ->
      let s =
        flow_stats
          (Flow.init ~name:"t481" raw)
          (Printf.sprintf "synth(%s); map(family=static)" mode)
      in
      Printf.printf "  %-10s gates=%d area=%.1f levels=%d delay=%.1f\n" name
        s.Mapped.gates s.Mapped.area s.Mapped.levels s.Mapped.norm_delay)
    [ ("none", "none"); ("light", "light"); ("resyn2rs", "full") ];

  hr "Ablation: characterization source (C1355)";
  List.iter
    (fun (name, src) ->
      let opts =
        { Experiments.default_options with Experiments.char_source = src }
      in
      let lib_s, _, _ = Experiments.libraries opts in
      let m = Mapper.map lib_s aig in
      let s = Mapped.stats m in
      Printf.printf "  %-10s gates=%d area=%.1f delay=%.1f\n" name
        s.Mapped.gates s.Mapped.area s.Mapped.norm_delay)
    [ ("computed", Experiments.Computed); ("published", Experiments.Published) ]

(* ---------------- bechamel timing ---------------- *)

let timing_tests () =
  let adder16 = Synth.resyn2rs (Arith.adder 16) in
  let lib_static = Core.library `Tg_static in
  let lib_cmos = Core.library `Cmos in
  let t481 = Logic_gen.t481_like () in
  let mult = Arith.multiplier 8 in
  [
    (* Table 2 kernel: full electrical characterization of all families *)
    Test.make ~name:"table2/characterize-catalog"
      (Staged.stage (fun () ->
           List.iter
             (fun fam -> ignore (Charlib.characterize_catalog fam))
             Cell_netlist.all_families));
    (* Table 3 kernels *)
    Test.make ~name:"table3/map-add16-static"
      (Staged.stage (fun () -> ignore (Mapper.map lib_static adder16)));
    Test.make ~name:"table3/map-add16-cmos"
      (Staged.stage (fun () -> ignore (Mapper.map lib_cmos adder16)));
    Test.make ~name:"table3/synth-t481"
      (Staged.stage (fun () -> ignore (Synth.resyn2rs t481)));
    (* Figure 6 kernel: a full flow *)
    Test.make ~name:"fig6/flow-mult8-static"
      (Staged.stage (fun () ->
           ignore (Mapper.map lib_static (Synth.light mult))));
    (* the same flow through the pass-pipeline engine (script dispatch,
       library cache, per-pass sampling overhead included) *)
    Test.make ~name:"fig6/flow-engine-mult8-static"
      (Staged.stage
         (let script = Flow.parse_script_exn "light; map(family=static)" in
          fun () -> ignore (Flow.run script (Flow.init ~name:"mult8" mult))));
    (* supporting engines *)
    Test.make ~name:"engine/npn-canonical-4var"
      (Staged.stage
         (let rng = Rand64.create 5L in
          fun () -> ignore (Npn.canonical 4 (Rand64.next rng))));
    Test.make ~name:"engine/cut-enum-add16"
      (Staged.stage (fun () -> ignore (Cut.compute adder16 ~k:6 ~limit:12)));
    Test.make ~name:"engine/cec-adder8"
      (Staged.stage (fun () ->
           let a = Arith.adder 8 and b = Synth.resyn2rs (Arith.adder 8) in
           match Cec.check a b with
           | Cec.Equivalent -> ()
           | _ -> failwith "cec"));
  ]

let run_timings () =
  hr "bechamel timings";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let tests = Test.make_grouped ~name:"cntfet" (timing_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure tbl ->
      let rows =
        Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) tbl []
        |> List.sort compare
      in
      List.iter
        (fun (name, ols) ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-36s %14.1f ns/run\n" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        rows)
    merged

let () =
  let t0 = Unix.gettimeofday () in
  print_reproduction ();
  print_testability ();
  print_ablations ();
  run_timings ();
  Printf.printf "\ntotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
