(* Cut-engine benchmark: times the synth+map hot path under the packed
   engine against the reference (seed) engine, checks the results are
   identical, and writes the measurements — wall times, speedups, and the
   packed engine's hot-path counters — to BENCH_cut.json.

   Each (benchmark, engine) measurement runs in a forked child process:
   the packed engine keeps persistent memo caches alive on the major heap,
   and timing both engines in one process would tax the reference run
   with the GC pressure of the packed one.  The children report wall
   time, the engine's counters, and a digest of the results; the parent
   checks the digests agree.

     dune exec bench/cut_bench.exe                     (fast subset)
     dune exec bench/cut_bench.exe -- --full           (all 15 benchmarks)
     dune exec bench/cut_bench.exe -- --bench C1908 --out my.json --repeat 5 *)

let prog = "cut_bench"
let full = ref false
let benches = ref []
let out = ref "BENCH_cut.json"
let repeat = ref 3
let family = ref "static"

let specs =
  [
    ("--full", Arg.Set full, " run all 15 benchmarks (default: fast subset)");
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable)" );
    ( "--out",
      Arg.Set_string out,
      "FILE output JSON path (default BENCH_cut.json)" );
    ( "--repeat",
      Arg.Set_int repeat,
      "N timing repetitions, best-of-N (default 3)" );
    ( "--family",
      Arg.Set_string family,
      "F mapping target family (default static)" );
  ]

type measurement = {
  ms : float;
  stats : Cut.stats;
  rss_kb : int;  (** child's peak RSS in kB; -1 where unavailable *)
  digest : string;  (** of the optimized AIG and the mapped netlist *)
}

type row = { bench : string; ands : int; r : measurement; p : measurement }

let run_engine lib aig engine stats =
  let opt = Synth.resyn2rs ~engine ~stats aig in
  let params = { Mapper.default_params with Mapper.engine } in
  let mapped, _ = Mapper.map_with_stats ~params lib opt in
  (opt, mapped)

(* Runs [f] in a forked child; the child prints one line to a pipe and
   exits, the parent returns the line. *)
let in_child f =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let oc = Unix.out_channel_of_descr w in
      (match f () with
      | line ->
          output_string oc (line ^ "\n");
          flush oc;
          exit 0
      | exception e ->
          prerr_endline (Printexc.to_string e);
          exit 2)
  | pid -> (
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      match (snd (Unix.waitpid [] pid), line) with
      | Unix.WEXITED 0, Some line -> line
      | _ ->
          Printf.eprintf "%s: child measurement failed\n" prog;
          exit 2)

let measure lib (e : Bench_suite.entry) engine n =
  let line =
    in_child (fun () ->
        let aig = e.Bench_suite.build () in
        let best = ref infinity and last = ref None in
        for _ = 1 to n do
          let stats = Cut.stats_create () in
          let t0 = Unix.gettimeofday () in
          let r = run_engine lib aig engine stats in
          let dt = Unix.gettimeofday () -. t0 in
          if dt < !best then best := dt;
          last := Some (stats, r)
        done;
        let stats, (opt, mapped) = Option.get !last in
        (* [No_sharing] expands aliasing, so structurally equal results
           serialize identically regardless of how they were built *)
        let digest =
          Digest.to_hex
            (Digest.string
               (Marshal.to_string
                  (Blif.to_string opt, mapped)
                  [ Marshal.No_sharing ]))
        in
        let rss =
          match Cli_common.peak_rss_kb () with Some v -> v | None -> -1
        in
        Printf.sprintf "%.6f %d %d %d %d %d %d %s" (1000.0 *. !best)
          stats.Cut.built stats.Cut.dominated stats.Cut.sign_rejects
          stats.Cut.tt_merges stats.Cut.probes rss digest)
  in
  Scanf.sscanf line "%f %d %d %d %d %d %d %s"
    (fun ms built dominated sign_rejects tt_merges probes rss_kb digest ->
      let stats = Cut.stats_create () in
      stats.Cut.built <- built;
      stats.Cut.dominated <- dominated;
      stats.Cut.sign_rejects <- sign_rejects;
      stats.Cut.tt_merges <- tt_merges;
      stats.Cut.probes <- probes;
      { ms; stats; rss_kb; digest })

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    "cut_bench [options]";
  let fam =
    match Cli_common.family_of_name !family with
    | Some f -> f
    | None -> Cli_common.usage_die ~prog ("unknown --family " ^ !family)
  in
  (* characterize the library before forking so the children inherit it *)
  let lib = Cell_lib.cached fam in
  let entries =
    if !benches <> [] then Cli_common.bench_entries ~prog !benches
    else if !full then Bench_suite.all
    else Cli_common.bench_entries ~prog Cli_common.fast_subset
  in
  let rows =
    List.map
      (fun (e : Bench_suite.entry) ->
        let r = measure lib e Cut.Reference !repeat in
        let p = measure lib e Cut.Packed !repeat in
        let ands = Aig.num_ands (e.Bench_suite.build ()) in
        let row = { bench = e.Bench_suite.name; ands; r; p } in
        (* sign_rejects per built cut: the large-circuit enumeration-tail
           indicator (des was the profiled outlier at ~2.6) *)
        let ratio =
          if p.stats.Cut.built = 0 then 0.0
          else
            float_of_int p.stats.Cut.sign_rejects
            /. float_of_int p.stats.Cut.built
        in
        Printf.printf
          "%-10s ands=%-6d ref=%8.2fms packed=%8.2fms x%.2f sr/built=%.2f %s\n%!"
          row.bench row.ands r.ms p.ms (r.ms /. p.ms) ratio
          (if r.digest = p.digest then "identical" else "DIFFERS");
        row)
      entries
  in
  let tot_ref = List.fold_left (fun a row -> a +. row.r.ms) 0.0 rows in
  let tot_packed = List.fold_left (fun a row -> a +. row.p.ms) 0.0 rows in
  let all_identical = List.for_all (fun row -> row.r.digest = row.p.digest) rows in
  Printf.printf "total: ref=%.2fms packed=%.2fms speedup=x%.2f %s\n" tot_ref
    tot_packed (tot_ref /. tot_packed)
    (if all_identical then "(all outputs identical)" else "(OUTPUT MISMATCH)");
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"suite\": \"%s\",\n  \"family\": \"%s\",\n  \"script\": \
     \"resyn2rs; map\",\n  \"repeat\": %d,\n  \"rows\": [\n"
    (if !benches <> [] then "custom" else if !full then "full" else "fast")
    (Cli_common.family_arg_name fam)
    !repeat;
  List.iteri
    (fun i row ->
      if i > 0 then Buffer.add_string b ",\n";
      let json_rss v = if v < 0 then "null" else string_of_int v in
      let ratio =
        if row.p.stats.Cut.built = 0 then 0.0
        else
          float_of_int row.p.stats.Cut.sign_rejects
          /. float_of_int row.p.stats.Cut.built
      in
      Printf.bprintf b
        "    {\"bench\": \"%s\", \"ands\": %d, \"ref_ms\": %.3f, \
         \"packed_ms\": %.3f, \"speedup\": %.3f, \"identical\": %b, \
         \"ref_peak_rss_kb\": %s, \"packed_peak_rss_kb\": %s, \
         \"cut\": {\"built\": %d, \"dominated\": %d, \"sign_rejects\": %d, \
         \"sign_reject_ratio\": %.3f, \"tt_merges\": %d, \"probes\": %d}}"
        row.bench row.ands row.r.ms row.p.ms
        (row.r.ms /. row.p.ms)
        (row.r.digest = row.p.digest)
        (json_rss row.r.rss_kb) (json_rss row.p.rss_kb)
        row.p.stats.Cut.built row.p.stats.Cut.dominated
        row.p.stats.Cut.sign_rejects ratio row.p.stats.Cut.tt_merges
        row.p.stats.Cut.probes)
    rows;
  Printf.bprintf b
    "\n  ],\n  \"total\": {\"ref_ms\": %.3f, \"packed_ms\": %.3f, \
     \"speedup\": %.3f, \"identical\": %b}\n}\n"
    tot_ref tot_packed (tot_ref /. tot_packed) all_identical;
  let oc = open_out !out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "wrote %s\n" !out;
  exit (if all_identical then 0 else 1)
