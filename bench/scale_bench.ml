(* Million-node scale benchmark: builds the parameterized large circuits
   (wide array multipliers/dividers, deep Feistel rounds), runs the
   [b; rw; map] pipeline at several within-circuit domain counts, and
   writes BENCH_scale.json — construction throughput (nodes/sec), wall
   time per phase, the mapper's internal phase breakdown and re-eval
   skip ratio, peak RSS, and the parallel speedup curve with a
   byte-identical-output check across all domain counts.

   Each (circuit, jobs) measurement runs in a forked child so peak RSS
   (VmHWM) is attributable to that configuration alone.

     dune exec bench/scale_bench.exe
     dune exec bench/scale_bench.exe -- --circuits mult-336 --jobs-list 1
     dune exec bench/scale_bench.exe -- --jobs-list 1,2,4 --out scale.json
     dune exec bench/scale_bench.exe -- --tsv mapper-phases.tsv *)

let prog = "scale_bench"
let circuits = ref "mult-128,div-96,crypto-512"
let jobs_list = ref "1,2,4"
let out = ref "BENCH_scale.json"
let tsv = ref ""
let family = ref "static"

let specs =
  [
    ( "--circuits",
      Arg.Set_string circuits,
      "CS comma-separated bench names, static or parameterized \
       (default mult-128,div-96,crypto-512; mult-336 is ~10^6 nodes)" );
    ( "--jobs-list",
      Arg.Set_string jobs_list,
      "JS comma-separated within-circuit domain counts (default 1,2,4)" );
    ( "--out",
      Arg.Set_string out,
      "FILE output JSON path (default BENCH_scale.json)" );
    ( "--tsv",
      Arg.Set_string tsv,
      "FILE also write the mapper-phase breakdown as TSV (one row per \
       circuit x jobs)" );
    ( "--family",
      Arg.Set_string family,
      "F mapping target family (default static)" );
  ]

type measurement = {
  jobs : int;
  build_ms : float;
  ands : int;
  bal_ms : float;
  rw_ms : float;
  map_ms : float;
  (* the mapper's internal wall-clock breakdown (Mapper.phase_ms) *)
  cuts_ms : float;
  match_ms : float;
  required_ms : float;
  recover_ms : float;
  extract_ms : float;
  reevals : int;   (** (node, pass) matching evaluations actually run *)
  skips : int;     (** evaluations proven redundant and skipped *)
  rss_kb : int;  (** child's peak RSS in kB; -1 where unavailable *)
  digest : string;  (** of the optimized AIG and the mapped netlist *)
}

let total m = m.bal_ms +. m.rw_ms +. m.map_ms

let skip_ratio m =
  let d = m.reevals + m.skips in
  if d = 0 then 0.0 else float_of_int m.skips /. float_of_int d

(* The host's online CPU count from nproc — what the kernel will actually
   schedule on, as opposed to [Domain.recommended_domain_count] which can
   be clamped by the runtime. *)
let nproc_cpus () =
  match Unix.open_process_in "nproc 2>/dev/null" with
  | exception _ -> Domain.recommended_domain_count ()
  | ic -> (
      let line = try Some (input_line ic) with End_of_file -> None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some l -> (
          match int_of_string_opt (String.trim l) with
          | Some n when n >= 1 -> n
          | _ -> Domain.recommended_domain_count ())
      | _ -> Domain.recommended_domain_count ())

(* Runs [f] in a forked child; the child prints one line to a pipe and
   exits, the parent returns the line. *)
let in_child f =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      let oc = Unix.out_channel_of_descr w in
      (match f () with
      | line ->
          output_string oc (line ^ "\n");
          flush oc;
          exit 0
      | exception e ->
          prerr_endline (Printexc.to_string e);
          exit 2)
  | pid -> (
      Unix.close w;
      let ic = Unix.in_channel_of_descr r in
      let line = try Some (input_line ic) with End_of_file -> None in
      close_in ic;
      match (snd (Unix.waitpid [] pid), line) with
      | Unix.WEXITED 0, Some line -> line
      | _ ->
          Printf.eprintf "%s: child measurement failed\n" prog;
          exit 2)

let measure lib (e : Bench_suite.entry) jobs =
  let line =
    in_child (fun () ->
        let t0 = Unix.gettimeofday () in
        let aig = e.Bench_suite.build () in
        let t1 = Unix.gettimeofday () in
        let ands = Aig.num_ands aig in
        let bal = Synth.balance aig in
        let t2 = Unix.gettimeofday () in
        let opt = Synth.rewrite ~jobs bal in
        let t3 = Unix.gettimeofday () in
        let params = { Mapper.default_params with Mapper.jobs } in
        let phase = Mapper.phase_ms_create () in
        let mapped, stats = Mapper.map_with_stats ~params ~phase lib opt in
        let t4 = Unix.gettimeofday () in
        (* [No_sharing] expands aliasing, so structurally equal results
           serialize identically regardless of how they were built *)
        let digest =
          Digest.to_hex
            (Digest.string
               (Marshal.to_string
                  (Blif.to_string opt, mapped)
                  [ Marshal.No_sharing ]))
        in
        let rss =
          match Cli_common.peak_rss_kb () with Some v -> v | None -> -1
        in
        Printf.sprintf
          "%.6f %d %.6f %.6f %.6f %.6f %.6f %.6f %.6f %.6f %d %d %d %s"
          (1000.0 *. (t1 -. t0))
          ands
          (1000.0 *. (t2 -. t1))
          (1000.0 *. (t3 -. t2))
          (1000.0 *. (t4 -. t3))
          phase.Mapper.pm_cuts_ms phase.Mapper.pm_match_ms
          phase.Mapper.pm_required_ms phase.Mapper.pm_recover_ms
          phase.Mapper.pm_extract_ms stats.Cut.reevals stats.Cut.reeval_skips
          rss digest)
  in
  Scanf.sscanf line "%f %d %f %f %f %f %f %f %f %f %d %d %d %s"
    (fun build_ms ands bal_ms rw_ms map_ms cuts_ms match_ms required_ms
         recover_ms extract_ms reevals skips rss_kb digest ->
      {
        jobs; build_ms; ands; bal_ms; rw_ms; map_ms; cuts_ms; match_ms;
        required_ms; recover_ms; extract_ms; reevals; skips; rss_kb; digest;
      })

let parse_ints ~what s =
  String.split_on_char ',' s
  |> List.filter (fun x -> x <> "")
  |> List.map (fun x ->
         match int_of_string_opt (String.trim x) with
         | Some v when v >= 1 -> v
         | _ -> Cli_common.usage_die ~prog ("bad " ^ what ^ " " ^ x))

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    "scale_bench [options]";
  let fam =
    match Cli_common.family_of_name !family with
    | Some f -> f
    | None -> Cli_common.usage_die ~prog ("unknown --family " ^ !family)
  in
  let names =
    String.split_on_char ',' !circuits
    |> List.filter (fun x -> x <> "")
    |> List.map String.trim
  in
  let jl = parse_ints ~what:"--jobs-list" !jobs_list in
  if jl = [] then Cli_common.usage_die ~prog "--jobs-list is empty";
  (* characterize the library before forking so the children inherit it *)
  let lib = Cell_lib.cached fam in
  (* resolve one name at a time: [bench_entries] reverses its repeatable
     --bench accumulator, but --circuits is already in presentation order *)
  let entries =
    List.concat_map (fun n -> Cli_common.bench_entries ~prog [ n ]) names
  in
  let cpus = nproc_cpus () in
  if cpus = 1 && List.exists (fun j -> j > 1) jl then
    prerr_endline
      ("\n" ^ prog
     ^ ": *** WARNING: this host has 1 online cpu (nproc) — every jobs>1 \
        run time-slices its domains on one core, so the recorded speedup \
        curve measures parallel OVERHEAD, not parallel speedup. Do not \
        read these numbers as scaling results. ***\n");
  let rows =
    List.map
      (fun (e : Bench_suite.entry) ->
        let ms = List.map (measure lib e) jl in
        let base = List.hd ms in
        let identical =
          List.for_all (fun m -> m.digest = base.digest) ms
        in
        let nps = float_of_int base.ands /. (base.build_ms /. 1000.0) in
        List.iter
          (fun m ->
            Printf.printf
              "%-12s ands=%-8d jobs=%d build=%8.1fms (%.0f nodes/s) \
               b=%8.1fms rw=%8.1fms map=%8.1fms (cuts=%.0f match=%.0f \
               req=%.0f recover=%.0f extract=%.0f skip=%.0f%%) rss=%dkB \
               x%.2f %s\n%!"
              e.Bench_suite.name m.ands m.jobs m.build_ms nps m.bal_ms
              m.rw_ms m.map_ms m.cuts_ms m.match_ms m.required_ms
              m.recover_ms m.extract_ms
              (100.0 *. skip_ratio m)
              m.rss_kb
              (total base /. total m)
              (if m.digest = base.digest then "identical" else "DIFFERS"))
          ms;
        (e.Bench_suite.name, ms, identical, nps))
      entries
  in
  let all_identical = List.for_all (fun (_, _, i, _) -> i) rows in
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\n  \"script\": \"b; rw; map\",\n  \"family\": \"%s\",\n  \
     \"cpus\": %d,\n  \"note\": \"speedups are wall-clock vs the first \
     jobs entry; every run row repeats the recording host's online cpu \
     count (nproc) — on cpus=1 hosts the jobs>1 rows measure parallel \
     overhead, not speedup; byte-identical output is asserted across all \
     jobs values\",\n  \"rows\": [\n"
    (Cli_common.family_arg_name fam)
    cpus;
  List.iteri
    (fun i (name, ms, identical, nps) ->
      if i > 0 then Buffer.add_string b ",\n";
      let base = List.hd ms in
      Printf.bprintf b
        "    {\"bench\": \"%s\", \"ands\": %d, \"build_ms\": %.3f, \
         \"nodes_per_sec\": %.0f, \"identical\": %b, \"runs\": [\n"
        name base.ands base.build_ms nps identical;
      List.iteri
        (fun j m ->
          if j > 0 then Buffer.add_string b ",\n";
          let json_rss v = if v < 0 then "null" else string_of_int v in
          Printf.bprintf b
            "      {\"jobs\": %d, \"cpus\": %d, \"balance_ms\": %.3f, \
             \"rewrite_ms\": %.3f, \"map_ms\": %.3f, \"map_cuts_ms\": \
             %.3f, \"map_match_ms\": %.3f, \"map_required_ms\": %.3f, \
             \"map_recover_ms\": %.3f, \"map_extract_ms\": %.3f, \
             \"match_reevals\": %d, \"match_skips\": %d, \"skip_ratio\": \
             %.4f, \"total_ms\": %.3f, \"speedup\": %.3f, \
             \"peak_rss_kb\": %s}"
            m.jobs cpus m.bal_ms m.rw_ms m.map_ms m.cuts_ms m.match_ms
            m.required_ms m.recover_ms m.extract_ms m.reevals m.skips
            (skip_ratio m) (total m)
            (total base /. total m)
            (json_rss m.rss_kb))
        ms;
      Buffer.add_string b "\n    ]}")
    rows;
  Printf.bprintf b "\n  ],\n  \"identical\": %b\n}\n" all_identical;
  let oc = open_out !out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "wrote %s\n" !out;
  if !tsv <> "" then begin
    let oc = open_out !tsv in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc
          "#bench\tands\tjobs\tcpus\tmap_ms\tcuts_ms\tmatch_ms\t\
           required_ms\trecover_ms\textract_ms\tmatch_reevals\t\
           match_skips\tskip_ratio\n";
        List.iter
          (fun (name, ms, _, _) ->
            List.iter
              (fun m ->
                Printf.fprintf oc
                  "%s\t%d\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t\
                   %d\t%d\t%.4f\n"
                  name m.ands m.jobs cpus m.map_ms m.cuts_ms m.match_ms
                  m.required_ms m.recover_ms m.extract_ms m.reevals
                  m.skips (skip_ratio m))
              ms)
          rows);
    Printf.printf "wrote %s\n" !tsv
  end;
  exit (if all_identical then 0 else 1)
