(* Throughput benchmark for the flowd daemon: sustained jobs/sec at
   saturation over one pipelined connection, measured three ways —
   distinct fresh jobs, pure cache hits, and fresh jobs under injected
   worker SIGKILLs (10% per job).  Writes BENCH_serve.json; exits
   nonzero if any reply under chaos is not a clean ok. *)

let workers = 4
let njobs = 48
let script = "b; rw; map; sta"
let chaos_prob = 0.1

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let start_daemon ~chaos () =
  let sock = Filename.temp_file "servebench" ".sock" in
  Sys.remove sock;
  let cfg =
    {
      Server.default_config with
      Server.listen = Server.Unix_path sock;
      workers;
      queue_high_water = 4 * njobs;
      max_attempts = 10;
      retry_base_s = 0.01;
      retry_cap_s = 0.2;
      warm_families = [ Cell_netlist.Tg_static ];
      chaos_kill = chaos;
      seed = 11L;
    }
  in
  match Unix.fork () with
  | 0 ->
      (let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 devnull Unix.stderr;
       try Server.run cfg with _ -> ());
      Unix._exit 0
  | pid ->
      let rec wait n =
        if n = 0 then failwith "daemon did not come up";
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX sock) with
        | () -> Unix.close fd
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            Unix.sleepf 0.05;
            wait (n - 1)
      in
      wait 200;
      (pid, sock)

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  { fd; buf = Buffer.create 4096 }

let recv_line c =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear c.buf;
        Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
        String.sub s 0 i
    | None -> (
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> failwith "daemon closed the connection"
        | n ->
            Buffer.add_subbytes c.buf chunk 0 n;
            go ())
  in
  go ()

let circuits =
  [ ("t481", "t481"); ("add-16", "add16"); ("add-32", "add32") ]
  |> List.map (fun (bench, tag) ->
         (tag, Blif.to_string ((Bench_suite.find bench).Bench_suite.build ())))

let submit_line ~id ~name circuit =
  Proto.submit_to_line
    {
      Proto.sub_id = id;
      sub_name = name;
      sub_format = Proto.Blif;
      sub_circuit = circuit;
      sub_script = script;
      sub_family = Cell_netlist.Tg_static;
      sub_params = Proto.default_params;
      sub_netlist = false;
    }

(* submit [njobs] jobs named [prefix]<i> pipelined; returns (wall, #ok) *)
let run_batch c ~prefix =
  let t0 = Unix.gettimeofday () in
  for i = 0 to njobs - 1 do
    let tag, text = List.nth circuits (i mod List.length circuits) in
    write_all c.fd
      (submit_line
         ~id:(Printf.sprintf "%s%d" prefix i)
         ~name:(Printf.sprintf "%s-%s%d" tag prefix i)
         text
      ^ "\n")
  done;
  let ok = ref 0 in
  for _ = 1 to njobs do
    match Json_codec.parse (recv_line c) with
    | Ok j when Json_codec.mem_str j "status" = Some "ok" -> incr ok
    | _ -> ()
  done;
  (Unix.gettimeofday () -. t0, !ok)

let status c =
  write_all c.fd "{\"op\":\"status\"}\n";
  match Json_codec.parse (recv_line c) with
  | Ok j -> Option.get (Json_codec.member "result" j)
  | Error m -> failwith ("bad status: " ^ m)

let drain_and_wait pid c =
  write_all c.fd "{\"op\":\"drain\"}\n";
  ignore (recv_line c);
  Unix.close c.fd;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> failwith "daemon did not exit cleanly"

let jint j path =
  let rec go j = function
    | [] -> Option.get (Json_codec.int_ j)
    | k :: rest -> go (Option.get (Json_codec.member k j)) rest
  in
  go j path

let () =
  (* phase 1+2: a clean daemon — fresh jobs, then the same jobs again *)
  let pid, sock = start_daemon ~chaos:0.0 () in
  let c = connect sock in
  let clean_wall, clean_ok = run_batch c ~prefix:"a" in
  let cached_wall, cached_ok = run_batch c ~prefix:"a" in
  let st = status c in
  let clean_hits = jint st [ "jobs"; "cache_hits" ] in
  drain_and_wait pid c;
  (* phase 3: same load with 10% of workers SIGKILLed per job *)
  let pid, sock = start_daemon ~chaos:chaos_prob () in
  let c = connect sock in
  let chaos_wall, chaos_ok = run_batch c ~prefix:"b" in
  let st = status c in
  let crashes = jint st [ "jobs"; "crashes" ] in
  let retries = jint st [ "jobs"; "retries" ] in
  let chaos_kills = jint st [ "jobs"; "chaos_kills" ] in
  drain_and_wait pid c;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workers\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"script\": %S,\n\
    \  \"fresh\": {\"wall_s\": %.3f, \"jobs_per_s\": %.1f, \"ok\": %d},\n\
    \  \"cached\": {\"wall_s\": %.3f, \"jobs_per_s\": %.1f, \"ok\": %d, \
     \"cache_hits\": %d},\n\
    \  \"chaos\": {\"kill_prob\": %.2f, \"wall_s\": %.3f, \"jobs_per_s\": \
     %.1f, \"ok\": %d, \"worker_kills\": %d, \"crashes\": %d, \"retries\": \
     %d}\n\
     }\n"
    workers njobs script clean_wall
    (float_of_int njobs /. clean_wall)
    clean_ok cached_wall
    (float_of_int njobs /. cached_wall)
    cached_ok clean_hits chaos_prob chaos_wall
    (float_of_int njobs /. chaos_wall)
    chaos_ok chaos_kills crashes retries;
  close_out oc;
  Printf.printf
    "serve_bench: fresh %.1f jobs/s, cached %.1f jobs/s, chaos(%.0f%%) %.1f \
     jobs/s (%d kills, %d retries)\n"
    (float_of_int njobs /. clean_wall)
    (float_of_int njobs /. cached_wall)
    (chaos_prob *. 100.)
    (float_of_int njobs /. chaos_wall)
    chaos_kills retries;
  if clean_ok <> njobs || cached_ok <> njobs || chaos_ok <> njobs then begin
    Printf.eprintf "serve_bench: %d/%d/%d of %d replies ok\n" clean_ok
      cached_ok chaos_ok njobs;
    exit 1
  end
