(* The synthesis daemon: serves flow jobs over a Unix or TCP socket on a
   supervised pool of forked workers.  See lib/serve/server.mli for the
   robustness contract and DESIGN.md §16 for the architecture.

   Examples:
     flowd --socket /tmp/flowd.sock --workers 4
     flowd --tcp 127.0.0.1:7431 --job-budget 30 --job-mem 2048
     flowd --socket flowd.sock --chaos-kill 0.1 --verbose   # fault injection *)

let prog = "flowd"
let socket = ref ""
let tcp = ref ""
let workers = ref 2
let queue = ref 64
let max_attempts = ref 4
let retry_base = ref 0.05
let retry_cap = ref 2.0
let job_budget = ref 0.0
let job_mem = ref 0
let cache_cap = ref 256
let max_request = ref (32 * 1024 * 1024)
let families = ref "all"
let chaos = ref 0.0
let seed = ref "2026"
let verbose = ref false

let specs =
  [
    ( "--socket",
      Arg.Set_string socket,
      "PATH listen on a Unix-domain socket there (default flowd.sock)" );
    ( "--tcp",
      Arg.Set_string tcp,
      "HOST:PORT listen on TCP instead (port 0 picks a free port)" );
    ("--workers", Arg.Set_int workers, "N worker processes (default 2)");
    ( "--queue",
      Arg.Set_int queue,
      "N admission-queue high-water mark; beyond it new jobs get an \
       'overloaded' reply with a retry_after hint (default 64)" );
    ( "--max-attempts",
      Arg.Set_int max_attempts,
      "N worker runs per job before a 'job-crashed' reply (default 4)" );
    ( "--retry-base",
      Arg.Set_float retry_base,
      "S retry backoff base in seconds, doubled per attempt with jitter \
       (default 0.05)" );
    ("--retry-cap", Arg.Set_float retry_cap, "S retry backoff cap (default 2)");
    ( "--job-budget",
      Arg.Set_float job_budget,
      "S per-job wall-clock budget; overruns are SIGKILLed and reported as \
       'job-budget' (0 = off)" );
    ( "--job-mem",
      Arg.Set_int job_mem,
      "MB per-job resident-set budget; overruns are SIGKILLed and reported \
       as 'job-oom' (0 = off)" );
    ("--cache", Arg.Set_int cache_cap, "N result-cache entries (default 256)");
    ( "--max-request",
      Arg.Set_int max_request,
      "BYTES request-line size bound (default 32MiB)" );
    ( "--families",
      Arg.Set_string families,
      "FAMS cell libraries characterized before forking, so workers inherit \
       them copy-on-write (default all)" );
    ( "--chaos-kill",
      Arg.Set_float chaos,
      "P fault injection: SIGKILL each worker with probability P shortly \
       after spawn (testing; such kills are retried like any crash)" );
    ("--seed", Arg.Set_string seed, "N backoff-jitter / chaos RNG seed");
    ("--verbose", Arg.Set verbose, " log scheduling decisions to stderr");
  ]

let usage = "flowd [options]  (see --help; protocol in DESIGN.md §16)"

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    usage;
  let listen =
    match (!socket, !tcp) with
    | "", "" -> Server.Unix_path "flowd.sock"
    | path, "" -> Server.Unix_path path
    | "", hp -> (
        match String.rindex_opt hp ':' with
        | Some i -> (
            let host = String.sub hp 0 i in
            let port = String.sub hp (i + 1) (String.length hp - i - 1) in
            match int_of_string_opt port with
            | Some p -> Server.Tcp ((if host = "" then "127.0.0.1" else host), p)
            | None -> Cli_common.usage_die ~prog ("bad --tcp port " ^ port))
        | None -> Cli_common.usage_die ~prog ("bad --tcp address " ^ hp))
    | _ -> Cli_common.usage_die ~prog "--socket and --tcp are exclusive"
  in
  let seed =
    try Int64.of_string !seed
    with _ -> Cli_common.usage_die ~prog ("bad --seed " ^ !seed)
  in
  let cfg =
    {
      Server.default_config with
      Server.listen;
      workers = max 1 !workers;
      queue_high_water = max 1 !queue;
      max_attempts = max 1 !max_attempts;
      retry_base_s = !retry_base;
      retry_cap_s = !retry_cap;
      job_budget_s = (if !job_budget > 0.0 then Some !job_budget else None);
      job_mem_mb = (if !job_mem > 0 then Some !job_mem else None);
      cache_capacity = max 1 !cache_cap;
      max_request_bytes = !max_request;
      warm_families = Cli_common.parse_families ~prog !families;
      chaos_kill = !chaos;
      seed;
      verbose = !verbose;
    }
  in
  let on_ready t =
    (* announce the resolved address on stdout so scripts can wait for it *)
    (match Server.listen_address t with
    | Server.Unix_path p -> Printf.printf "flowd listening unix:%s\n%!" p
    | Server.Tcp (h, p) -> Printf.printf "flowd listening tcp:%s:%d\n%!" h p)
  in
  Server.run ~on_ready cfg
