(* The unified flow driver: one entry point for the whole
   optimize → map → characterize → verify pipeline.

   Examples:
     flow --script "b; rw; rf; map(cut=6,timing); sta; lint" --bench add-16
     flow --family all --jobs 4 --metrics tsv --metrics-out flow-metrics.tsv
     flow --input circuit.blif --family pseudo
     flow --script "synth(light); map; fault" --checkpoint sweep.ck
     flow --list-passes *)

let prog = "flow"
let script = ref "synth(light); map; sta; lint"
let benches = ref []
let inputs = ref []
let families = ref "static"
let jobs = ref 1
let seed = ref "2026"
let cut_size = ref 6
let cut_engine = ref "packed"
let max_cuts = ref 0
let timing_map = ref false
let po_fanout = ref 4.0
let unit_loads = ref false
let conflict_budget = ref 0
let pass_budget = ref 0.0
let fault_rounds = ref 32
let no_isolate = ref false
let checkpoint = ref ""
let metrics = ref ""
let metrics_out = ref ""
let list_passes = ref false
let quiet = ref false

let specs =
  [
    ( "--script",
      Arg.Set_string script,
      "S pass script, ';'-separated (default \"synth(light); map; sta; \
       lint\")" );
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable; default all 15)" );
    ( "--input",
      Arg.String (fun s -> inputs := s :: !inputs),
      "FILE add a circuit from a .blif or .bench file (repeatable; a \
       malformed file becomes an input-parse error while the other circuits \
       still run)" );
    ( "--family",
      Arg.Set_string families,
      "FAMS map targets, comma-separated subset of \
       static,pseudo,pass-pseudo,pass-static,cmos or 'all' (default static)"
    );
    ( "--jobs",
      Arg.Set_int jobs,
      "N domains (default 1; 0 = all cores; output is identical at any N). \
       Several (benchmark, family) jobs fan across domains; a single job \
       instead parallelizes within the circuit (synthesis analysis and \
       mapper cover selection)" );
    ("--seed", Arg.Set_string seed, "N simulation seed for verify (default 2026)");
    ("--cut-size", Arg.Set_int cut_size, "K mapper cut size (default 6)");
    ( "--cut-engine",
      Arg.Set_string cut_engine,
      "E cut engine for map and the synthesis passes: packed or reference \
       (default packed)" );
    ( "--max-cuts",
      Arg.Set_int max_cuts,
      "N mapper per-node candidate-cut bound, at least the priority-cut \
       limit of 12 (0 = exact cut-limit², the default); lower values trade \
       match quality for time on pathological fanin cones" );
    ( "--timing-map",
      Arg.Set timing_map,
      " map with the STA-backed load-aware delay cost" );
    ( "--po-fanout",
      Arg.Set_float po_fanout,
      "N reference loads on each primary output (default 4)" );
    ( "--unit-loads",
      Arg.Set unit_loads,
      " fixed FO4 delay per cell (the legacy Table 3 convention)" );
    ( "--conflict-budget",
      Arg.Set_int conflict_budget,
      "N SAT conflict cap for lint and fault ATPG (0 = default budgets; \
       exhaustion degrades to a Warning)" );
    ( "--pass-budget",
      Arg.Set_float pass_budget,
      "S wall-clock budget per pass in seconds; overruns add a \
       flow-pass-budget Warning (0 = off)" );
    ( "--fault-rounds",
      Arg.Set_int fault_rounds,
      "N random 64-pattern rounds for the fault pass (default 32)" );
    ( "--no-isolate",
      Arg.Set no_isolate,
      " let a crashing pass abort the whole run instead of becoming a \
       flow-pass-crash diagnostic" );
    ( "--checkpoint",
      Arg.Set_string checkpoint,
      "FILE save each finished benchmark there and skip benchmarks already \
       saved (resume a long matrix run after an interruption)" );
    ( "--metrics",
      Arg.Set_string metrics,
      "MODE per-pass metrics: human, tsv or json" );
    ( "--metrics-out",
      Arg.Set_string metrics_out,
      "FILE write the metrics there instead of stdout" );
    ("--list-passes", Arg.Set list_passes, " list the registered passes and exit");
    ("--quiet", Arg.Set quiet, " print only the summary lines");
  ]

let usage =
  "flow [options]\n\n\
   Exit codes:\n\
  \  0  clean run (no Error diagnostics)\n\
  \  1  findings: Error diagnostics such as lint or verification failures\n\
  \  2  usage error (bad flag, script, family or benchmark name)\n\
  \  3  crash: a pass or benchmark crashed and was isolated\n\
  \     (flow-pass-crash / flow-bench-crash / flow-driver-crash)\n\
  \  130 interrupted\n\nOptions:"

(* ---- --input circuits ---------------------------------------------- *)

let load_input path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      match String.lowercase_ascii (Filename.extension path) with
      | ".blif" -> Blif.read ~file:path ic
      | ".bench" -> Bench_fmt.read ~file:path ic
      | ext ->
          failwith
            (Printf.sprintf "unknown input format %S (expected .blif or .bench)"
               ext))

(* Parse every --input eagerly: a malformed or unreadable file becomes an
   [input-parse] error diagnostic and the remaining circuits still run. *)
let input_circuits paths =
  List.fold_left
    (fun (entries, diags) path ->
      let diag fmt =
        Printf.ksprintf
          (fun msg ->
            ( entries,
              diags
              @ [ Diag.errorf ~rule:"input-parse" (Diag.Circuit path) "%s" msg ]
            ))
          fmt
      in
      match load_input path with
      | aig ->
          let name = Filename.remove_extension (Filename.basename path) in
          ( entries
            @ [
                {
                  Bench_suite.name;
                  description = path;
                  build = (fun () -> aig);
                };
              ],
            diags )
      | exception Parse_error.Error e -> diag "%s" (Parse_error.to_string e)
      | exception Sys_error msg -> diag "%s" msg
      | exception Failure msg -> diag "%s" msg)
    ([], []) paths

(* ---- per-benchmark plain-data projection --------------------------- *)
(* Fresh results and checkpoint-replayed benchmarks flow through the same
   (lines, diags, samples) shape, so resumed runs print identically. *)

let result_lines ~has_map (r : Flow.bench_result) =
  if has_map then
    List.map (fun (_, ctx, _) -> Flow.summary_line ctx) r.Flow.br_per_family
  else [ Flow.summary_line r.Flow.br_ctx0 ]

let main () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    usage;
  if !list_passes then begin
    List.iter (fun (n, doc) -> Printf.printf "%-10s %s\n" n doc) Flow.passes;
    exit 0
  end;
  let steps =
    match Flow.parse_script !script with
    | Ok s -> s
    | Error msg -> Cli_common.usage_die ~prog msg
  in
  (match !metrics with
  | "" | "human" | "tsv" | "json" -> ()
  | m -> Cli_common.usage_die ~prog ("unknown metrics mode " ^ m));
  let fams = Cli_common.parse_families ~prog !families in
  let input_entries, input_diags = input_circuits (List.rev !inputs) in
  let entries =
    (* --input without --bench means "just these circuits" *)
    if !benches = [] && (input_entries <> [] || input_diags <> []) then
      input_entries
    else Cli_common.bench_entries ~prog !benches @ input_entries
  in
  let seed =
    try Int64.of_string !seed
    with _ -> Cli_common.usage_die ~prog ("bad --seed " ^ !seed)
  in
  let engine =
    match Cut.engine_of_string !cut_engine with
    | Some e -> e
    | None -> Cli_common.usage_die ~prog ("unknown --cut-engine " ^ !cut_engine)
  in
  (* [--jobs n] with several (benchmark, family) jobs fans whole jobs
     across domains (the historic behavior); with exactly one job the
     fan-out is useless, so the domains move inside the circuit instead.
     Either way output is byte-identical to a sequential run. *)
  let njobs =
    if !jobs = 0 then Flow.Runner.recommended_domains () else max 1 !jobs
  in
  let single_job = List.length entries * List.length fams <= 1 in
  let within = if single_job then njobs else 1 in
  let config =
    {
      Flow.default_config with
      jobs = within;
      cut_size = !cut_size;
      cut_engine = engine;
      max_cuts = (if !max_cuts > 0 then Some !max_cuts else None);
      timing = !timing_map;
      po_fanout = !po_fanout;
      unit_loads = !unit_loads;
      seed;
      conflict_budget =
        (if !conflict_budget > 0 then Some !conflict_budget else None);
      isolate = not !no_isolate;
      pass_budget_s = (if !pass_budget > 0.0 then Some !pass_budget else None);
      fault_rounds = !fault_rounds;
    }
  in
  let domains = if single_job then 1 else njobs in
  let has_map = snd (Flow.split_at_map steps) <> [] in
  let run_fresh ?on_result todo =
    try Flow.run_matrix ~domains ~config ?on_result ~script:steps ~families:fams
          todo
    with Flow.Flow_error msg -> Cli_common.usage_die ~prog msg
  in
  let to_entry r =
    Flow.Checkpoint.of_result r ~lines:(result_lines ~has_map r)
  in
  (* One checkpoint entry per benchmark, in request order: replayed from the
     checkpoint file when present, computed (and saved) otherwise. *)
  let per_bench =
    if !checkpoint = "" then
      Array.to_list (run_fresh entries) |> List.map to_entry
    else begin
      let saved = Flow.Checkpoint.load !checkpoint in
      let todo =
        List.filter
          (fun (e : Bench_suite.entry) ->
            not (Flow.Checkpoint.mem saved e.Bench_suite.name))
          entries
      in
      let store = ref saved in
      let lock = Mutex.create () in
      let on_result r =
        let entry = to_entry r in
        Mutex.protect lock (fun () ->
            store := !store @ [ entry ];
            Flow.Checkpoint.save !checkpoint !store)
      in
      ignore (run_fresh ~on_result todo);
      let final = !store in
      List.filter_map
        (fun (e : Bench_suite.entry) ->
          List.find_opt
            (fun (ck : Flow.Checkpoint.entry) ->
              ck.Flow.Checkpoint.ck_bench = e.Bench_suite.name)
            final)
        entries
    end
  in
  (* deterministic report: one summary line per benchmark x family (just
     one per benchmark when the script never maps) *)
  List.iter
    (fun (ck : Flow.Checkpoint.entry) ->
      List.iter print_endline ck.Flow.Checkpoint.ck_lines)
    per_bench;
  (* findings, if any *)
  let diags =
    input_diags
    @ List.concat_map
        (fun (ck : Flow.Checkpoint.entry) -> ck.Flow.Checkpoint.ck_diags)
        per_bench
    |> Diag.sort
  in
  if (not !quiet) && diags <> [] then begin
    print_newline ();
    List.iter (fun d -> Format.printf "%a@." Diag.pp d) diags
  end;
  (* per-pass metrics *)
  (if !metrics <> "" then
     let samples =
       List.concat_map
         (fun (ck : Flow.Checkpoint.entry) -> ck.Flow.Checkpoint.ck_samples)
         per_bench
     in
     let text =
       match !metrics with
       | "human" -> Flow.render_samples samples
       | "tsv" ->
           Flow.samples_tsv_header ^ "\n"
           ^ String.concat "\n" (List.map Flow.sample_to_tsv samples)
           ^ "\n"
       | _ -> Flow.samples_to_json samples
     in
     match !metrics_out with
     | "" -> print_string text
     | path ->
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () -> output_string oc text)
     );
  (* Crash diagnostics get their own exit code so callers (CI, the serve
     supervisor's smoke tests) can tell "the design has findings" from
     "the tool itself broke and the isolation machinery caught it".
     Crash takes precedence over findings. *)
  let crash_rules =
    [ "flow-pass-crash"; "flow-bench-crash"; "flow-driver-crash" ]
  in
  let crashed =
    List.exists (fun (d : Diag.t) -> List.mem d.Diag.rule crash_rules) diags
  in
  exit (if crashed then 3 else if Diag.has_errors diags then 1 else 0)

(* Anything that still escapes (a crashing pass under --no-isolate, a full
   disk while checkpointing, ...) is reported as a diagnostic line, never a
   backtrace. *)
let () =
  try main ()
  with
  | Sys.Break ->
      prerr_endline (prog ^ ": interrupted");
      exit 130
  | exn ->
      Format.eprintf "%a@." Diag.pp
        (Diag.errorf ~rule:"flow-driver-crash" (Diag.Circuit prog) "%s"
           (Printexc.to_string exn));
      exit 3
