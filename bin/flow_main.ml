(* The unified flow driver: one entry point for the whole
   optimize → map → characterize → verify pipeline.

   Examples:
     flow --script "b; rw; rf; map(cut=6,timing); sta; lint" --bench add-16
     flow --family all --jobs 4 --metrics tsv --metrics-out flow-metrics.tsv
     flow --list-passes *)

let prog = "flow"
let script = ref "synth(light); map; sta; lint"
let benches = ref []
let families = ref "static"
let jobs = ref 1
let seed = ref "2026"
let cut_size = ref 6
let cut_engine = ref "packed"
let timing_map = ref false
let po_fanout = ref 4.0
let unit_loads = ref false
let metrics = ref ""
let metrics_out = ref ""
let list_passes = ref false
let quiet = ref false

let specs =
  [
    ( "--script",
      Arg.Set_string script,
      "S pass script, ';'-separated (default \"synth(light); map; sta; \
       lint\")" );
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable; default all 15)" );
    ( "--family",
      Arg.Set_string families,
      "FAMS map targets, comma-separated subset of \
       static,pseudo,pass-pseudo,pass-static,cmos or 'all' (default static)"
    );
    ( "--jobs",
      Arg.Set_int jobs,
      "N fan benchmarks across N domains (default 1; 0 = all cores; output \
       is identical at any N)" );
    ("--seed", Arg.Set_string seed, "N simulation seed for verify (default 2026)");
    ("--cut-size", Arg.Set_int cut_size, "K mapper cut size (default 6)");
    ( "--cut-engine",
      Arg.Set_string cut_engine,
      "E cut engine for map and the synthesis passes: packed or reference \
       (default packed)" );
    ( "--timing-map",
      Arg.Set timing_map,
      " map with the STA-backed load-aware delay cost" );
    ( "--po-fanout",
      Arg.Set_float po_fanout,
      "N reference loads on each primary output (default 4)" );
    ( "--unit-loads",
      Arg.Set unit_loads,
      " fixed FO4 delay per cell (the legacy Table 3 convention)" );
    ( "--metrics",
      Arg.Set_string metrics,
      "MODE per-pass metrics: human, tsv or json" );
    ( "--metrics-out",
      Arg.Set_string metrics_out,
      "FILE write the metrics there instead of stdout" );
    ("--list-passes", Arg.Set list_passes, " list the registered passes and exit");
    ("--quiet", Arg.Set quiet, " print only the summary lines");
  ]

let usage = "flow [options]  (see --help)"

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    usage;
  if !list_passes then begin
    List.iter (fun (n, doc) -> Printf.printf "%-10s %s\n" n doc) Flow.passes;
    exit 0
  end;
  let steps =
    match Flow.parse_script !script with
    | Ok s -> s
    | Error msg -> Cli_common.usage_die ~prog msg
  in
  (match !metrics with
  | "" | "human" | "tsv" | "json" -> ()
  | m -> Cli_common.usage_die ~prog ("unknown metrics mode " ^ m));
  let fams = Cli_common.parse_families ~prog !families in
  let entries = Cli_common.bench_entries ~prog !benches in
  let seed =
    try Int64.of_string !seed
    with _ -> Cli_common.usage_die ~prog ("bad --seed " ^ !seed)
  in
  let engine =
    match Cut.engine_of_string !cut_engine with
    | Some e -> e
    | None -> Cli_common.usage_die ~prog ("unknown --cut-engine " ^ !cut_engine)
  in
  let config =
    {
      Flow.default_config with
      cut_size = !cut_size;
      cut_engine = engine;
      timing = !timing_map;
      po_fanout = !po_fanout;
      unit_loads = !unit_loads;
      seed;
    }
  in
  let domains =
    if !jobs = 0 then Flow.Runner.recommended_domains () else !jobs
  in
  let results =
    try Flow.run_matrix ~domains ~config ~script:steps ~families:fams entries
    with Flow.Flow_error msg -> Cli_common.usage_die ~prog msg
  in
  (* deterministic report: one summary line per benchmark x family (just
     one per benchmark when the script never maps) *)
  let has_map = snd (Flow.split_at_map steps) <> [] in
  Array.iter
    (fun (r : Flow.bench_result) ->
      if has_map then
        List.iter
          (fun (_, ctx, _) -> print_endline (Flow.summary_line ctx))
          r.Flow.br_per_family
      else print_endline (Flow.summary_line r.Flow.br_ctx0))
    results;
  (* findings, if any *)
  let diags =
    Array.to_list results
    |> List.concat_map (fun (r : Flow.bench_result) ->
           r.Flow.br_ctx0.Flow.diags
           @ List.concat_map
               (fun (_, ctx, _) -> Flow.diags_since r.Flow.br_ctx0 ctx)
               r.Flow.br_per_family)
    |> Diag.sort
  in
  if (not !quiet) && diags <> [] then begin
    print_newline ();
    List.iter (fun d -> Format.printf "%a@." Diag.pp d) diags
  end;
  (* per-pass metrics *)
  (if !metrics <> "" then
     let samples = Flow.matrix_samples results in
     let text =
       match !metrics with
       | "human" -> Flow.render_samples samples
       | "tsv" ->
           Flow.samples_tsv_header ^ "\n"
           ^ String.concat "\n" (List.map Flow.sample_to_tsv samples)
           ^ "\n"
       | _ -> Flow.samples_to_json samples
     in
     match !metrics_out with
     | "" -> print_string text
     | path ->
         let oc = open_out path in
         Fun.protect
           ~finally:(fun () -> close_out oc)
           (fun () -> output_string oc text)
     );
  let verify_failed =
    Array.exists
      (fun (r : Flow.bench_result) ->
        List.exists
          (fun (_, ctx, _) -> ctx.Flow.verified = Some false)
          r.Flow.br_per_family)
      results
  in
  exit (if Diag.has_errors diags || verify_failed then 1 else 0)
