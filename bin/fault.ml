(* Fault-injection CLI (DESIGN.md §11).

   Two granularities:
   - `fault --catalog`: transistor-level fault dictionary of every catalog
     cell for the selected families (exhaustive switch-level simulation of
     each fault site), with the function-morph report the polarity gates
     make interesting.  `--md` emits the committed FAULTS.md document.
   - `fault --bench NAME`: gate-level stuck-at fault simulation + SAT ATPG
     over the mapped benchmark, with coverage summary per family.
   - `fault --bench NAME --testability`: the *static* analysis instead —
     SCOAP scores, fault collapsing and redundancy identification
     (Testability), no simulation or SAT. *)

let prog = "fault"
let catalog = ref false
let benches = ref []
let families = ref "all"
let synth_mode = ref "light"
let cut_size = ref 6
let rounds = ref 32
let seed = ref "2026"
let conflict_budget = ref 100_000
let tsv = ref false
let md = ref false
let morphs = ref false
let testability = ref false
let no_learn = ref false
let cost = ref "area"
let atpg = ref "incremental"
let out = ref ""

let specs =
  [
    ( "--catalog",
      Arg.Set catalog,
      " transistor-level fault dictionary of the catalog cells" );
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME gate-level stuck-at analysis of a mapped benchmark (repeatable)"
    );
    ( "--family",
      Arg.Set_string families,
      "FAMS comma-separated families or 'all' (default all)" );
    ( "--synth",
      Arg.Set_string synth_mode,
      "MODE optimization before mapping: none|light|full (default light)" );
    ("--cut-size", Arg.Set_int cut_size, "K mapper cut size (default 6)");
    ( "--rounds",
      Arg.Set_int rounds,
      "N 64-pattern random rounds before ATPG (default 32)" );
    ("--seed", Arg.Set_string seed, "N pattern seed (default 2026)");
    ( "--conflict-budget",
      Arg.Set_int conflict_budget,
      "N SAT conflicts per ATPG target before Unknown (default 100000)" );
    ("--tsv", Arg.Set tsv, " machine-readable per-fault output");
    ("--md", Arg.Set md, " markdown fault-dictionary document (FAULTS.md)");
    ("--morphs", Arg.Set morphs, " list every function-morphing fault");
    ( "--testability",
      Arg.Set testability,
      " static testability analysis of the mapped benchmark (SCOAP, \
       collapsing, redundancy) instead of fault simulation" );
    ( "--no-learn",
      Arg.Set no_learn,
      " testability: skip static learning (forward constants only)" );
    ( "--cost",
      Arg.Set_string cost,
      "KIND mapper covering cost: area|testability (default area)" );
    ( "--atpg",
      Arg.Set_string atpg,
      "ENGINE ATPG strategy: incremental (one miter, assumption queries) \
       or rebuild (one miter per fault; default incremental)" );
    ("--out", Arg.Set_string out, "FILE write the report there");
  ]

let usage = "fault (--catalog | --bench NAME) [options]  (see --help)"

let with_out f =
  match !out with
  | "" -> f stdout
  | path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let catalog_report fams oc =
  let per_family =
    List.map
      (fun fam ->
        let reports = Cell_fault.analyze_family fam in
        (fam, reports, Cell_fault.summarize fam reports))
      fams
  in
  if !md then output_string oc (Cell_fault.render_markdown per_family)
  else if !tsv then begin
    let all_reports = List.concat_map (fun (_, r, _) -> r) per_family in
    output_string oc (Cell_fault.reports_tsv all_reports);
    output_char oc '\n'
  end
  else begin
    Printf.fprintf oc "%s\n" Cell_fault.summary_header;
    List.iter
      (fun (_, _, s) -> Printf.fprintf oc "%s\n" (Cell_fault.summary_line s))
      per_family;
    if !morphs then
      List.iter
        (fun (fam, reports, _) ->
          let lines = Cell_fault.morph_lines reports in
          if lines <> [] then begin
            Printf.fprintf oc "\n%s function morphs (%d):\n"
              (Cell_netlist.family_name fam)
              (List.length lines);
            List.iter (fun l -> Printf.fprintf oc "  %s\n" l) lines
          end)
        per_family
  end

let cost_fn () =
  match !cost with
  | "area" -> None
  | "testability" -> Some Testability.cell_cost
  | c -> Cli_common.usage_die ~prog ("unknown --cost " ^ c)

let atpg_engine () =
  match !atpg with
  | "incremental" -> Gate_fault.Incremental
  | "rebuild" -> Gate_fault.Rebuild
  | e -> Cli_common.usage_die ~prog ("unknown --atpg " ^ e)

let map_bench (e : Bench_suite.entry) fam =
  let aig = e.Bench_suite.build () in
  let optimized =
    match !synth_mode with
    | "none" -> aig
    | "light" -> Synth.light aig
    | _ -> Synth.resyn2rs aig
  in
  let params =
    {
      Mapper.default_params with
      Mapper.cut_size = !cut_size;
      cost = cost_fn ();
    }
  in
  Mapper.map ~params (Cell_lib.cached fam) optimized

let bench_report entries fams seed oc =
  List.iter
    (fun (e : Bench_suite.entry) ->
      List.iter
        (fun fam ->
          let mapped = map_bench e fam in
          if !testability then begin
            let t = Testability.analyze ~learn:(not !no_learn) mapped in
            if !tsv then begin
              Printf.fprintf oc "# %s %s\n" e.Bench_suite.name
                (Cell_netlist.family_name fam);
              output_string oc (Testability.to_tsv mapped t);
              output_char oc '\n'
            end
            else
              Printf.fprintf oc "%-10s %-12s %s\n" e.Bench_suite.name
                (Cell_netlist.family_name fam)
                (Testability.summary_line t.Testability.summary)
          end
          else begin
            let results, summary =
              Gate_fault.analyze ~rounds:!rounds ~seed
                ~conflict_budget:!conflict_budget ~atpg:(atpg_engine ())
                mapped
            in
            if !tsv then begin
              Printf.fprintf oc "# %s %s\n" e.Bench_suite.name
                (Cell_netlist.family_name fam);
              output_string oc (Gate_fault.results_tsv mapped results);
              output_char oc '\n'
            end
            else
              Printf.fprintf oc "%-10s %-12s %s\n" e.Bench_suite.name
                (Cell_netlist.family_name fam)
                (Gate_fault.summary_line summary)
          end)
        fams)
    entries

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    usage;
  (match !synth_mode with
  | "none" | "light" | "full" -> ()
  | m -> Cli_common.usage_die ~prog ("unknown synth mode " ^ m));
  let seed =
    try Int64.of_string !seed
    with _ -> Cli_common.usage_die ~prog ("bad --seed " ^ !seed)
  in
  let fams = Cli_common.parse_families ~prog !families in
  if (not !catalog) && !benches = [] then
    Cli_common.usage_die ~prog "nothing to do: pass --catalog and/or --bench";
  with_out (fun oc ->
      if !catalog then catalog_report fams oc;
      if !benches <> [] then begin
        let entries = Cli_common.bench_entries ~prog !benches in
        if !catalog && not !tsv then output_char oc '\n';
        bench_report entries fams seed oc
      end)
