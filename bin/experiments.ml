(* Regenerates the paper's artifacts.

     experiments table1|table2|table3|fig6|all [fast] [--seed N]

   "fast" restricts Table 3 / Figure 6 to the small benchmarks; "--seed N"
   sets the mapping-verification simulation seed (default 2026).  The "all"
   mode prints everything in one report (what EXPERIMENTS.md archives). *)

let fast_benches =
  [ "C1908"; "C3540"; "dalu"; "t481"; "C1355"; "add-16"; "add-32"; "add-64" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_seed acc = function
    | [] -> (List.rev acc, None)
    | "--seed" :: v :: rest -> (List.rev acc @ rest, Some v)
    | a :: rest -> split_seed (a :: acc) rest
  in
  let positional, seed = split_seed [] args in
  let options =
    match seed with
    | None -> Experiments.default_options
    | Some v -> (
        match Int64.of_string_opt v with
        | Some s ->
            { Experiments.default_options with Experiments.verify_seed = s }
        | None ->
            Printf.eprintf "bad --seed %s\n" v;
            exit 1)
  in
  let what = match positional with w :: _ -> w | [] -> "all" in
  let fast = List.exists (( = ) "fast") positional in
  let benches = if fast then Some fast_benches else None in
  let t0 = Unix.gettimeofday () in
  (match what with
  | "table1" -> print_string (Experiments.render_table1 ())
  | "table2" -> print_string (Experiments.render_table2 ())
  | "table3" -> print_string (Experiments.render_table3 ~options ?benches ())
  | "fig6" -> print_string (Experiments.render_fig6 ~options ?benches ())
  | "all" ->
      print_string (Experiments.render_table1 ());
      print_newline ();
      print_string (Experiments.render_table2 ());
      print_newline ();
      print_string (Experiments.render_table3 ~options ?benches ());
      print_newline ();
      print_string (Experiments.render_fig6 ~options ?benches ())
  | other ->
      Printf.eprintf "unknown experiment %s (table1|table2|table3|fig6|all)\n"
        other;
      exit 1);
  Printf.printf "\n_generated in %.1f s_\n" (Unix.gettimeofday () -. t0)
