(* Static-timing-analysis CLI.

   Maps benchmark circuits against the characterized libraries and reports
   load-aware arrival/required/slack times, the stage-by-stage critical
   path, per-endpoint timing, and slack histograms — human-readable or TSV.

   Examples:
     sta --bench add-16 --family static --report path
     sta --family all --report endpoints --tsv
     sta --bench C6288 --timing-map --report path,histogram *)

let benches = ref []
let families = ref "static"
let synth_mode = ref "light"
let reports = ref "summary"
let tsv = ref false
let po_fanout = ref 4.0
let unit_loads = ref false
let timing_map = ref false
let cut_size = ref 6

let specs =
  [
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable; default all 15)" );
    ( "--family",
      Arg.Set_string families,
      "FAMS libraries, comma-separated subset of \
       static,pseudo,pass-pseudo,pass-static,cmos or 'all' (default \
       static)" );
    ( "--synth",
      Arg.Set_string synth_mode,
      "MODE optimization before mapping: none|light|full (default light)" );
    ( "--report",
      Arg.Set_string reports,
      "KINDS comma-separated subset of summary,path,endpoints,histogram \
       (default summary)" );
    ("--tsv", Arg.Set tsv, " machine-readable tab-separated reports");
    ( "--po-fanout",
      Arg.Set_float po_fanout,
      "N reference loads on each primary output (default 4)" );
    ( "--unit-loads",
      Arg.Set unit_loads,
      " fixed FO4 delay per cell (the legacy Table 3 convention)" );
    ( "--timing-map",
      Arg.Set timing_map,
      " map with the STA-backed load-aware delay cost" );
    ("--cut-size", Arg.Set_int cut_size, "K mapper cut size (default 6)");
  ]

let usage = "sta [options]  (see --help)"

let parse_families () =
  let of_name = function
    | "static" -> Cell_netlist.Tg_static
    | "pseudo" -> Cell_netlist.Tg_pseudo
    | "pass-pseudo" -> Cell_netlist.Pass_pseudo
    | "pass-static" -> Cell_netlist.Pass_static
    | "cmos" -> Cell_netlist.Cmos
    | f ->
        prerr_endline ("sta: unknown family " ^ f);
        exit 2
  in
  match !families with
  | "all" ->
      [ Cell_netlist.Tg_static; Cell_netlist.Tg_pseudo;
        Cell_netlist.Pass_pseudo; Cell_netlist.Pass_static;
        Cell_netlist.Cmos ]
  | s -> List.map of_name (String.split_on_char ',' s)

let library = function
  | Cell_netlist.Cmos -> Cell_lib.cmos ()
  | family -> Cell_lib.cntfet ~family ()

let synth aig =
  match !synth_mode with
  | "none" -> aig
  | "light" -> Synth.light aig
  | "full" -> Synth.resyn2rs aig
  | m ->
      prerr_endline ("sta: unknown synth mode " ^ m);
      exit 2

let () =
  Arg.parse (Arg.align specs)
    (fun a ->
      prerr_endline ("sta: unexpected argument " ^ a);
      exit 2)
    usage;
  let entries =
    match !benches with
    | [] -> Bench_suite.all
    | names ->
        List.map
          (fun s ->
            match Bench_suite.find s with
            | e -> e
            | exception Not_found ->
                prerr_endline ("sta: unknown benchmark " ^ s);
                exit 2)
          (List.rev names)
  in
  let kinds = String.split_on_char ',' !reports in
  List.iter
    (fun k ->
      if not (List.mem k [ "summary"; "path"; "endpoints"; "histogram" ])
      then begin
        prerr_endline ("sta: unknown report kind " ^ k);
        exit 2
      end)
    kinds;
  let fams = parse_families () in
  let libs = List.map (fun f -> (f, library f)) fams in
  let model = { Sta.unit_loads = !unit_loads; po_fanout = !po_fanout } in
  let params =
    { Mapper.default_params with cut_size = !cut_size; timing = !timing_map }
  in
  List.iter
    (fun (e : Bench_suite.entry) ->
      let opt = synth (e.Bench_suite.build ()) in
      List.iter
        (fun (fam, lib) ->
          let m = Mapper.map ~params lib opt in
          let sta = Sta.analyze ~model m in
          let tag =
            Printf.sprintf "%s/%s" e.Bench_suite.name
              (Cell_netlist.family_name fam)
          in
          List.iter
            (fun kind ->
              match kind with
              | "summary" ->
                  if !tsv then
                    Printf.printf "%s\t%d\t%d\t%.3f\t%.3f\n" tag
                      (Array.length m.Mapped.instances)
                      (Array.length sta.Sta.endpoints)
                      (Sta.norm_delay sta) (Sta.abs_delay_ps sta)
                  else Printf.printf "%s — %s\n" tag (Sta.summary sta)
              | "path" ->
                  if not !tsv then Printf.printf "%s —\n" tag;
                  print_string (Sta.render_path ~tsv:!tsv sta)
              | "endpoints" ->
                  if not !tsv then Printf.printf "%s —\n" tag;
                  print_string (Sta.render_endpoints ~tsv:!tsv sta)
              | "histogram" ->
                  if not !tsv then Printf.printf "%s —\n" tag;
                  print_string (Sta.render_histogram ~tsv:!tsv sta)
              | _ -> ())
            kinds)
        libs)
    entries
