(* Static-timing-analysis CLI — a thin wrapper over the Flow engine.

   Runs the "synth; map; sta" script across the benchmark x family matrix
   and reports load-aware arrival/required/slack times, the stage-by-stage
   critical path, per-endpoint timing, and slack histograms — human-readable
   or TSV.

   Examples:
     sta --bench add-16 --family static --report path
     sta --family all --report endpoints --tsv
     sta --bench C6288 --timing-map --report path,histogram *)

let prog = "sta"
let benches = ref []
let families = ref "static"
let synth_mode = ref "light"
let reports = ref "summary"
let tsv = ref false
let po_fanout = ref 4.0
let unit_loads = ref false
let timing_map = ref false
let cut_size = ref 6
let jobs = ref 1

let specs =
  [
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable; default all 15)" );
    ( "--family",
      Arg.Set_string families,
      "FAMS libraries, comma-separated subset of \
       static,pseudo,pass-pseudo,pass-static,cmos or 'all' (default \
       static)" );
    ( "--synth",
      Arg.Set_string synth_mode,
      "MODE optimization before mapping: none|light|full (default light)" );
    ( "--report",
      Arg.Set_string reports,
      "KINDS comma-separated subset of summary,path,endpoints,histogram \
       (default summary)" );
    ("--tsv", Arg.Set tsv, " machine-readable tab-separated reports");
    ( "--po-fanout",
      Arg.Set_float po_fanout,
      "N reference loads on each primary output (default 4)" );
    ( "--unit-loads",
      Arg.Set unit_loads,
      " fixed FO4 delay per cell (the legacy Table 3 convention)" );
    ( "--timing-map",
      Arg.Set timing_map,
      " map with the STA-backed load-aware delay cost" );
    ("--cut-size", Arg.Set_int cut_size, "K mapper cut size (default 6)");
    ( "--jobs",
      Arg.Set_int jobs,
      "N fan benchmarks across N domains (default 1; output is identical \
       at any N)" );
  ]

let usage = "sta [options]  (see --help)"

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    usage;
  let entries = Cli_common.bench_entries ~prog !benches in
  let kinds = String.split_on_char ',' !reports in
  List.iter
    (fun k ->
      if not (List.mem k [ "summary"; "path"; "endpoints"; "histogram" ])
      then Cli_common.usage_die ~prog ("unknown report kind " ^ k))
    kinds;
  let fams = Cli_common.parse_families ~prog !families in
  let script =
    Flow.parse_script_exn
      (Cli_common.synth_steps ~prog !synth_mode ^ "; map; sta")
  in
  let config =
    {
      Flow.default_config with
      cut_size = !cut_size;
      timing = !timing_map;
      po_fanout = !po_fanout;
      unit_loads = !unit_loads;
    }
  in
  let results =
    Flow.run_matrix ~domains:!jobs ~config ~script ~families:fams entries
  in
  Array.iter
    (fun (r : Flow.bench_result) ->
      List.iter
        (fun (fam, (ctx : Flow.ctx), _) ->
          let m = Option.get ctx.Flow.mapped in
          let sta = Option.get ctx.Flow.sta in
          let tag =
            Printf.sprintf "%s/%s" r.Flow.br_bench
              (Cell_netlist.family_name fam)
          in
          List.iter
            (fun kind ->
              match kind with
              | "summary" ->
                  if !tsv then
                    Printf.printf "%s\t%d\t%d\t%.3f\t%.3f\n" tag
                      (Array.length m.Mapped.instances)
                      (Array.length sta.Sta.endpoints)
                      (Sta.norm_delay sta) (Sta.abs_delay_ps sta)
                  else Printf.printf "%s — %s\n" tag (Sta.summary sta)
              | "path" ->
                  if not !tsv then Printf.printf "%s —\n" tag;
                  print_string (Sta.render_path ~tsv:!tsv sta)
              | "endpoints" ->
                  if not !tsv then Printf.printf "%s —\n" tag;
                  print_string (Sta.render_endpoints ~tsv:!tsv sta)
              | "histogram" ->
                  if not !tsv then Printf.printf "%s —\n" tag;
                  print_string (Sta.render_histogram ~tsv:!tsv sta)
              | _ -> ())
            kinds)
        r.Flow.br_per_family)
    results
