(* The flowd client: submits one synthesis job (or a control op) over the
   daemon's socket and prints the reply line.

   Examples:
     flowc --socket /tmp/flowd.sock --input add16.blif --script "b; rw; map"
     flowc --socket /tmp/flowd.sock --op status
     flowc --tcp 127.0.0.1:7431 --input c432.bench --family pseudo --netlist

   Exit codes: 0 the reply had status ok; 1 the reply had status error;
   2 usage or connection failure. *)

let prog = "flowc"
let socket = ref ""
let tcp = ref ""
let op = ref ""
let input = ref ""
let script = ref "synth(light); map; sta; lint"
let family = ref "static"
let name = ref ""
let id = ref ""
let netlist = ref false
let raw = ref ""
let timeout = ref 0.0

let specs =
  [
    ("--socket", Arg.Set_string socket, "PATH daemon Unix socket");
    ("--tcp", Arg.Set_string tcp, "HOST:PORT daemon TCP address");
    ("--op", Arg.Set_string op, "OP control op: status, ping or drain");
    ( "--input",
      Arg.Set_string input,
      "FILE circuit to submit (.blif or .bench)" );
    ( "--script",
      Arg.Set_string script,
      "S pass script (default \"synth(light); map; sta; lint\")" );
    ("--family", Arg.Set_string family, "FAM target family (default static)");
    ("--name", Arg.Set_string name, "N report name (default: the file stem)");
    ("--id", Arg.Set_string id, "ID request id echoed in the reply");
    ("--netlist", Arg.Set netlist, " include the mapped BLIF in the result");
    ( "--raw",
      Arg.Set_string raw,
      "LINE send this raw request line instead (testing)" );
    ( "--timeout",
      Arg.Set_float timeout,
      "S give up waiting for the reply after S seconds (0 = wait forever)" );
  ]

let usage = "flowc [options]  (see --help)"

let die fmt = Printf.ksprintf (fun m -> prerr_endline (prog ^ ": " ^ m); exit 2) fmt

let connect () =
  match (!socket, !tcp) with
  | "", "" -> die "need --socket or --tcp"
  | _, "" -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try Unix.connect fd (Unix.ADDR_UNIX !socket); fd
      with Unix.Unix_error (e, _, _) ->
        die "connect %s: %s" !socket (Unix.error_message e))
  | "", hp -> (
      match String.rindex_opt hp ':' with
      | None -> die "bad --tcp address %s" hp
      | Some i -> (
          let host = String.sub hp 0 i in
          let host = if host = "" then "127.0.0.1" else host in
          match int_of_string_opt (String.sub hp (i + 1) (String.length hp - i - 1)) with
          | None -> die "bad --tcp port in %s" hp
          | Some port -> (
              let addr =
                try (Unix.gethostbyname host).Unix.h_addr_list.(0)
                with Not_found -> die "unknown host %s" host
              in
              let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
              try Unix.connect fd (Unix.ADDR_INET (addr, port)); fd
              with Unix.Unix_error (e, _, _) ->
                die "connect %s: %s" hp (Unix.error_message e))))
  | _ -> die "--socket and --tcp are exclusive"

let request_line () =
  if !raw <> "" then !raw
  else if !op <> "" then begin
    (match !op with
    | "status" | "ping" | "drain" -> ()
    | o -> die "unknown op %s" o);
    Proto.simple_to_line !op
  end
  else if !input = "" then die "need --input, --op or --raw"
  else begin
    let fmt =
      match String.lowercase_ascii (Filename.extension !input) with
      | ".blif" -> Proto.Blif
      | ".bench" -> Proto.Bench
      | ext -> die "unknown input format %S (expected .blif or .bench)" ext
    in
    let circuit =
      match open_in_bin !input with
      | exception Sys_error m -> die "%s" m
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
    in
    let family =
      match Cli_common.family_of_name !family with
      | Some f -> f
      | None -> die "unknown family %s" !family
    in
    let name =
      if !name <> "" then !name
      else Filename.remove_extension (Filename.basename !input)
    in
    Proto.submit_to_line
      {
        Proto.sub_id = !id;
        sub_name = name;
        sub_format = fmt;
        sub_circuit = circuit;
        sub_script = !script;
        sub_family = family;
        sub_params = Proto.default_params;
        sub_netlist = !netlist;
      }
  end

let () =
  Arg.parse (Arg.align specs)
    (fun a -> die "unexpected argument %s" a)
    usage;
  let line = request_line () ^ "\n" in
  let fd = connect () in
  let deadline =
    if !timeout > 0.0 then Some (Unix.gettimeofday () +. !timeout) else None
  in
  let rec send off =
    if off < String.length line then
      send (off + Unix.write_substring fd line off (String.length line - off))
  in
  send 0;
  (* read until the first newline: one request, one reply *)
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 256 in
  let rec recv () =
    (match deadline with
    | Some d ->
        let left = d -. Unix.gettimeofday () in
        if left <= 0.0 then die "timed out waiting for reply";
        (match Unix.select [ fd ] [] [] left with
        | [], _, _ -> die "timed out waiting for reply"
        | _ -> ())
    | None -> ());
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> die "daemon closed the connection without replying"
    | n ->
        Buffer.add_subbytes acc buf 0 n;
        let s = Buffer.contents acc in
        (match String.index_opt s '\n' with
        | Some i -> String.sub s 0 i
        | None -> recv ())
  in
  let reply = recv () in
  Unix.close fd;
  print_endline reply;
  match Json_codec.parse reply with
  | Ok j when Json_codec.mem_str j "status" = Some "ok" -> exit 0
  | Ok _ -> exit 1
  | Error _ -> die "unparseable reply"
