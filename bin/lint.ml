(* Electrical-rule-check and structural-analysis CLI.

   Runs the three lint analyzers over (1) the full F00-F45 catalog across
   all five logic families and (2) every Bench_suite circuit taken through
   the synthesis + technology-mapping flow, verifying each mapped netlist
   cell-by-cell against the AIG it was mapped from.  Exits nonzero when any
   Error-severity finding is reported. *)

let synth_mode = ref "light"
let families = ref "static"
let benches = ref []
let catalog_only = ref false
let tsv = ref false
let quiet = ref false
let max_print = ref 50
let list_rules = ref false

let specs =
  [
    ("--catalog-only", Arg.Set catalog_only, " only run the cell ERC");
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable)" );
    ( "--family",
      Arg.Set_string families,
      "FAMS mapping families, comma-separated subset of \
       static,pseudo,pass-pseudo,cmos or 'all' (default static)" );
    ( "--synth",
      Arg.Set_string synth_mode,
      "MODE optimization before mapping: none|light|full (default light)" );
    ("--tsv", Arg.Set tsv, " machine-readable tab-separated output");
    ("--quiet", Arg.Set quiet, " print only the summary");
    ( "--max-print",
      Arg.Set_int max_print,
      "N cap printed diagnostics (default 50; ignored with --tsv)" );
    ("--rules", Arg.Set list_rules, " list every rule id and exit");
  ]

let usage = "lint [options]  (see --help)"

let parse_families () =
  let of_name = function
    | "static" -> `Tg_static
    | "pseudo" -> `Tg_pseudo
    | "pass-pseudo" -> `Pass_pseudo
    | "cmos" -> `Cmos
    | f ->
        prerr_endline ("lint: unknown family " ^ f);
        exit 2
  in
  match !families with
  | "all" -> [ `Tg_static; `Tg_pseudo; `Pass_pseudo; `Cmos ]
  | s -> List.map of_name (String.split_on_char ',' s)

let family_name = function
  | `Tg_static -> "static"
  | `Tg_pseudo -> "pseudo"
  | `Pass_pseudo -> "pass-pseudo"
  | `Cmos -> "cmos"

let synth aig =
  match !synth_mode with
  | "none" -> aig
  | "light" -> Synth.light aig
  | "full" -> Synth.resyn2rs aig
  | m ->
      prerr_endline ("lint: unknown synth mode " ^ m);
      exit 2

let () =
  Arg.parse (Arg.align specs)
    (fun a ->
      prerr_endline ("lint: unexpected argument " ^ a);
      exit 2)
    usage;
  if !list_rules then begin
    List.iter
      (fun (id, descr) -> Printf.printf "%-20s %s\n" id descr)
      (Cell_erc.rules @ Aig_lint.rules @ Map_lint.rules);
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  let all = ref [] in
  let checked_cells = ref 0 and checked_circuits = ref 0 in
  (* ---- cell ERC over the catalog ---- *)
  List.iter
    (fun family ->
      let entries =
        if family = Cell_netlist.Cmos then Catalog.cmos_subset
        else Catalog.all
      in
      List.iter
        (fun e ->
          incr checked_cells;
          all := Cell_erc.check_entry family e :: !all)
        entries)
    Cell_netlist.all_families;
  (* ---- benchmark circuits through the flow ---- *)
  if not !catalog_only then begin
    let entries =
      match !benches with
      | [] -> Bench_suite.all
      | names ->
          List.map
            (fun s ->
              match Bench_suite.find s with
              | e -> e
              | exception Not_found ->
                  prerr_endline ("lint: unknown benchmark " ^ s);
                  exit 2)
            (List.rev names)
    in
    let map_families = parse_families () in
    List.iter
      (fun (e : Bench_suite.entry) ->
        incr checked_circuits;
        let aig = e.Bench_suite.build () in
        all := Aig_lint.check ~name:e.Bench_suite.name aig :: !all;
        let opt = synth aig in
        all :=
          Aig_lint.check ~name:(e.Bench_suite.name ^ "/opt") opt :: !all;
        List.iter
          (fun fam ->
            let lib = Core.library fam in
            let m = Mapper.map lib opt in
            all :=
              Map_lint.check
                ~name:(e.Bench_suite.name ^ "/" ^ family_name fam)
                ~lib ~golden:opt m
              :: !all)
          map_families)
      entries
  end;
  let diags = Diag.sort (List.concat (List.rev !all)) in
  (if !tsv then
     List.iter (fun d -> print_endline (Diag.to_tsv d)) diags
   else if not !quiet then begin
     let shown = ref 0 in
     List.iter
       (fun d ->
         if !shown < !max_print then begin
           incr shown;
           Format.printf "%a@." Diag.pp d
         end)
       diags;
     let total = List.length diags in
     if total > !shown then
       Format.printf "... and %d more (use --max-print or --tsv)@."
         (total - !shown)
   end);
  if not !tsv then
    Format.printf "lint: %d cells, %d circuits checked in %.1fs — %a@."
      !checked_cells !checked_circuits
      (Unix.gettimeofday () -. t0)
      Diag.pp_summary diags;
  exit (if Diag.has_errors diags then 1 else 0)
