(* Electrical-rule-check and structural-analysis CLI — a thin wrapper over
   the Flow engine.

   Runs the three lint analyzers over (1) the full F00-F45 catalog across
   all five logic families and (2) every Bench_suite circuit taken through
   the "lint(aig); synth; lint(aig,tag=opt); map; lint" flow script,
   verifying each mapped netlist cell-by-cell against the AIG it was mapped
   from.  Exits nonzero when any Error-severity finding is reported. *)

let prog = "lint"
let synth_mode = ref "light"
let families = ref "static"
let benches = ref []
let catalog_only = ref false
let tsv = ref false
let quiet = ref false
let max_print = ref 50
let list_rules = ref false
let jobs = ref 1

let specs =
  [
    ("--catalog-only", Arg.Set catalog_only, " only run the cell ERC");
    ( "--bench",
      Arg.String (fun s -> benches := s :: !benches),
      "NAME restrict to one benchmark (repeatable)" );
    ( "--family",
      Arg.Set_string families,
      "FAMS mapping families, comma-separated subset of \
       static,pseudo,pass-pseudo,cmos or 'all' (default static)" );
    ( "--synth",
      Arg.Set_string synth_mode,
      "MODE optimization before mapping: none|light|full (default light)" );
    ("--tsv", Arg.Set tsv, " machine-readable tab-separated output");
    ("--quiet", Arg.Set quiet, " print only the summary");
    ( "--max-print",
      Arg.Set_int max_print,
      "N cap printed diagnostics (default 50; ignored with --tsv)" );
    ("--rules", Arg.Set list_rules, " list every rule id and exit");
    ( "--jobs",
      Arg.Set_int jobs,
      "N fan benchmarks across N domains (default 1; output is identical \
       at any N)" );
  ]

let usage = "lint [options]  (see --help)"

let map_targets =
  [ Cell_netlist.Tg_static; Cell_netlist.Tg_pseudo; Cell_netlist.Pass_pseudo;
    Cell_netlist.Cmos ]

let () =
  Arg.parse (Arg.align specs)
    (fun a -> Cli_common.usage_die ~prog ("unexpected argument " ^ a))
    usage;
  if !list_rules then begin
    List.iter
      (fun (id, descr) -> Printf.printf "%-20s %s\n" id descr)
      (Cell_erc.rules @ Aig_lint.rules @ Map_lint.rules);
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  let all = ref [] in
  let checked_cells = ref 0 and checked_circuits = ref 0 in
  (* ---- cell ERC over the catalog ---- *)
  List.iter
    (fun family ->
      let entries =
        if family = Cell_netlist.Cmos then Catalog.cmos_subset
        else Catalog.all
      in
      List.iter
        (fun e ->
          incr checked_cells;
          all := Cell_erc.check_entry family e :: !all)
        entries)
    Cell_netlist.all_families;
  (* ---- benchmark circuits through the flow ---- *)
  if not !catalog_only then begin
    let entries = Cli_common.bench_entries ~prog !benches in
    let map_families =
      Cli_common.parse_families ~prog ~allowed:map_targets !families
    in
    let script =
      Flow.parse_script_exn
        (Printf.sprintf "lint(aig); %s; lint(aig,tag=opt); map; lint"
           (Cli_common.synth_steps ~prog !synth_mode))
    in
    let results =
      Flow.run_matrix ~domains:!jobs ~script ~families:map_families entries
    in
    Array.iter
      (fun (r : Flow.bench_result) ->
        incr checked_circuits;
        all := r.Flow.br_ctx0.Flow.diags :: !all;
        List.iter
          (fun (_, ctx, _) ->
            all := Flow.diags_since r.Flow.br_ctx0 ctx :: !all)
          r.Flow.br_per_family)
      results
  end;
  let diags = Diag.sort (List.concat (List.rev !all)) in
  (if !tsv then
     List.iter (fun d -> print_endline (Diag.to_tsv d)) diags
   else if not !quiet then begin
     let shown = ref 0 in
     List.iter
       (fun d ->
         if !shown < !max_print then begin
           incr shown;
           Format.printf "%a@." Diag.pp d
         end)
       diags;
     let total = List.length diags in
     if total > !shown then
       Format.printf "... and %d more (use --max-print or --tsv)@."
         (total - !shown)
   end);
  if not !tsv then
    Format.printf "lint: %d cells, %d circuits checked in %.1fs — %a@."
      !checked_cells !checked_circuits
      (Unix.gettimeofday () -. t0)
      Diag.pp_summary diags;
  exit (if Diag.has_errors diags then 1 else 0)
