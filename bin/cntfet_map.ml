(* Command-line synthesis and mapping driver — a thin wrapper over the
   Flow engine.

   Examples:
     cntfet_map map --bench add-16 --family static
     cntfet_map map --blif circuit.blif --family cmos --no-synth
     cntfet_map compare --bench C6288
     cntfet_map list *)

open Cmdliner

let load_circuit bench blif benchfile =
  try
    match (bench, blif, benchfile) with
    | Some name, None, None -> (Bench_suite.find name).Bench_suite.build ()
    | None, Some path, None ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            Blif.read ~file:path ic)
    | None, None, Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
            Bench_fmt.read ~file:path ic)
    | _ ->
        failwith "specify exactly one of --bench, --blif, --bench-file"
  with
  | Parse_error.Error e -> failwith (Parse_error.to_string e)
  | Sys_error msg -> failwith msg

let family_of_string s =
  let short = if s = "pass" then "pass-pseudo" else s in
  match Cli_common.family_of_name short with
  | Some f -> f
  | None -> failwith ("unknown family " ^ s ^ " (static|pseudo|pass|cmos)")

let bench_arg =
  Arg.(value & opt (some string) None
       & info [ "bench" ] ~docv:"NAME"
           ~doc:"Built-in benchmark name (see the list command).")

let blif_arg =
  Arg.(value & opt (some string) None
       & info [ "blif" ] ~docv:"FILE" ~doc:"Read the circuit from a BLIF file.")

let benchfile_arg =
  Arg.(value & opt (some string) None
       & info [ "bench-file" ] ~docv:"FILE"
           ~doc:"Read the circuit from an ISCAS .bench file.")

let family_arg =
  Arg.(value & opt string "static"
       & info [ "family" ] ~docv:"FAM"
           ~doc:"Target library: static, pseudo, pass or cmos.")

let synth_arg =
  Arg.(value & flag & info [ "no-synth" ] ~doc:"Skip logic optimization.")

let cut_arg =
  Arg.(value & opt int 6 & info [ "cut-size" ] ~docv:"K" ~doc:"Mapper cut size.")

let seed_arg =
  Arg.(value & opt int64 2026L
       & info [ "seed" ] ~docv:"N" ~doc:"Verification simulation seed.")

let out_arg =
  Arg.(value & opt (some string) None
       & info [ "out" ] ~docv:"FILE" ~doc:"Write the mapped netlist as BLIF.")

let flow_exn script ctx =
  try Flow.run (Flow.parse_script_exn script) ctx
  with Flow.Flow_error msg -> failwith msg

let map_cmd =
  let run bench blif benchfile family no_synth cut seed out =
    let aig = load_circuit bench blif benchfile in
    Format.printf "input:    %a@." Aig.pp_stats aig;
    let fam = family_of_string family in
    let script =
      Printf.sprintf "synth(%s); map(family=%s,cut=%d)%s"
        (if no_synth then "none" else "full")
        (Cli_common.family_arg_name fam) cut
        (if Aig.num_nodes aig < 10_000 then
           Printf.sprintf "; verify(seed=%Ld)" seed
         else "")
    in
    let ctx, _ = flow_exn script (Flow.init ~name:"circuit" aig) in
    if ctx.Flow.verified = Some false then
      failwith "mapped netlist disagrees with the source circuit";
    Format.printf "optimized: %a@." Aig.pp_stats ctx.Flow.aig;
    let mapped = Option.get ctx.Flow.mapped in
    Format.printf "mapped:   %a@." Mapped.pp_stats mapped;
    List.iter
      (fun (n, c) -> Format.printf "  %-8s x%d@." n c)
      (Mapped.count_cells mapped);
    match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
            Blif.write_mapped oc mapped);
        Format.printf "wrote %s@." path
  in
  Cmd.v (Cmd.info "map" ~doc:"Optimize and map one circuit.")
    Term.(const run $ bench_arg $ blif_arg $ benchfile_arg $ family_arg
          $ synth_arg $ cut_arg $ seed_arg $ out_arg)

let compare_cmd =
  let run bench blif benchfile no_synth =
    let aig = load_circuit bench blif benchfile in
    Format.printf "input: %a@." Aig.pp_stats aig;
    let ctx0, _ =
      flow_exn
        (if no_synth then "synth(none)" else "synth(full)")
        (Flow.init ~name:"cli" aig)
    in
    List.iter
      (fun fam ->
        let ctx, _ =
          flow_exn ("map(family=" ^ Cli_common.family_arg_name fam ^ ")") ctx0
        in
        let s = Mapped.stats (Option.get ctx.Flow.mapped) in
        Format.printf
          "%-22s gates=%-5d area=%-9.1f levels=%-3d delay=%-7.1f abs=%.1f ps@."
          (Cell_lib.name (Option.get ctx.Flow.lib))
          s.Mapped.gates s.Mapped.area s.Mapped.levels s.Mapped.norm_delay
          s.Mapped.abs_delay_ps)
      [ Cell_netlist.Tg_static; Cell_netlist.Tg_pseudo; Cell_netlist.Cmos ]
  in
  Cmd.v (Cmd.info "compare" ~doc:"Map against all three libraries (Table 3 row).")
    Term.(const run $ bench_arg $ blif_arg $ benchfile_arg $ synth_arg)

let list_cmd =
  let run () =
    List.iter
      (fun (e : Bench_suite.entry) ->
        let g = e.Bench_suite.build () in
        Format.printf "%-8s %-18s i/o=%d/%d ands=%d@." e.Bench_suite.name
          e.Bench_suite.description (Aig.num_inputs g) (Aig.num_outputs g)
          (Aig.num_ands g))
      Bench_suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark suite.")
    Term.(const run $ const ())

let genlib_cmd =
  let run family =
    print_string
      (Genlib.to_string (Cell_lib.cached (family_of_string family)))
  in
  Cmd.v (Cmd.info "genlib" ~doc:"Print the characterized library in genlib format.")
    Term.(const run $ family_arg)

let () =
  let info = Cmd.info "cntfet_map" ~doc:"Ambipolar CNTFET synthesis and mapping." in
  exit (Cmd.eval (Cmd.group info [ map_cmd; compare_cmd; list_cmd; genlib_cmd ]))
