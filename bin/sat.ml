(* Standalone DIMACS SAT front-end, for reproducing solver behaviour
   outside the flow:

     sat solve FILE.cnf [--engine cdcl|reference] [--conflict-budget N]
                        [--assume LIT]...

   Prints the usual `s SATISFIABLE` / `s UNSATISFIABLE` / `s UNKNOWN`
   verdict plus a `v` model line or a `c core` line (the failed
   assumptions), and solver counters as comments.  Exit status follows
   the MiniSat convention: 10 satisfiable, 20 unsatisfiable, 0 unknown. *)

let prog = "sat"
let engine = ref "cdcl"
let budget = ref 0
let assumes = ref []
let anon = ref []

let specs =
  [
    ( "--engine",
      Arg.Set_string engine,
      "E solver engine: cdcl (default) or reference (the seed solver)" );
    ( "--conflict-budget",
      Arg.Set_int budget,
      "N stop with UNKNOWN after N conflicts (default unbounded)" );
    ( "--assume",
      Arg.Int (fun d -> assumes := d :: !assumes),
      "LIT assume the DIMACS literal LIT (repeatable); on UNSAT the failed \
       subset is reported" );
  ]

let usage = "sat solve FILE.cnf [options]  (see --help)"

let dimacs_of_lit l =
  let v = Solver.lit_var l + 1 in
  if Solver.lit_sign l then v else -v

let run (module E : Solver.CORE) fm assumptions =
  let module C = Cnf.Make (E) in
  let s = E.create () in
  C.add_formula s fm;
  let conflict_budget = if !budget > 0 then !budget else max_int in
  let r = E.solve ~assumptions ~conflict_budget s in
  Printf.printf "c vars=%d clauses=%d engine=%s\n" fm.Cnf.fm_vars
    (List.length fm.Cnf.fm_clauses)
    !engine;
  Printf.printf "c conflicts=%d decisions=%d propagations=%d restarts=%d \
                 learned=%d\n"
    (E.num_conflicts s) (E.num_decisions s) (E.num_propagations s)
    (E.num_restarts s) (E.num_learned s);
  match r with
  | Solver.Sat ->
      print_endline "s SATISFIABLE";
      let b = Buffer.create 256 in
      Buffer.add_char b 'v';
      for v = 0 to fm.Cnf.fm_vars - 1 do
        Buffer.add_char b ' ';
        Buffer.add_string b
          (string_of_int (if E.model_value s v then v + 1 else -(v + 1)))
      done;
      Buffer.add_string b " 0";
      print_endline (Buffer.contents b);
      10
  | Solver.Unsat ->
      (if assumptions <> [] then
         let core =
           E.unsat_core s |> List.map dimacs_of_lit |> List.map string_of_int
         in
         Printf.printf "c core %s\n" (String.concat " " core));
      print_endline "s UNSATISFIABLE";
      20
  | Solver.Unknown ->
      print_endline "s UNKNOWN";
      0

let () =
  Arg.parse (Arg.align specs) (fun a -> anon := a :: !anon) usage;
  let path =
    match List.rev !anon with
    | [ "solve"; path ] -> path
    | _ -> Cli_common.usage_die ~prog usage
  in
  let text =
    match In_channel.with_open_text path In_channel.input_all with
    | text -> text
    | exception Sys_error e -> Cli_common.usage_die ~prog e
  in
  let fm =
    match Cnf.of_dimacs text with
    | Ok fm -> fm
    | Error e -> Cli_common.usage_die ~prog (path ^ ": " ^ e)
  in
  let assumptions =
    List.rev_map
      (fun d ->
        if d = 0 || abs d > fm.Cnf.fm_vars then
          Cli_common.usage_die ~prog
            (Printf.sprintf "--assume %d out of range" d)
        else if d > 0 then Solver.pos (d - 1)
        else Solver.neg (-d - 1))
      !assumes
  in
  let code =
    match !engine with
    | "cdcl" -> run (module Solver) fm assumptions
    | "reference" -> run (module Solver.Reference) fm assumptions
    | e -> Cli_common.usage_die ~prog ("unknown --engine " ^ e)
  in
  exit code
