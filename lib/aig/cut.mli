(** K-feasible priority cuts of an AIG (Pan–Mishchenko style).

    A cut of node [n] is a set of node ids such that every path from a
    primary input to [n] crosses the set; the function of [n] can then be
    expressed over the cut leaves.  Only a bounded number of cuts per node
    is kept, which is the standard compromise used by technology mappers.

    Two engines produce identical cut sets: the packed engine
    ({!compute_packed}) stores cuts in flat preallocated slabs and computes
    each cut's truth table incrementally during enumeration; the reference
    engine ({!compute}) is the legacy list-of-records implementation, kept
    for differential testing. *)

type t = private {
  leaves : int array;  (** sorted ascending *)
  sign : int;          (** subset-test bloom filter *)
}

val trivial : int -> t
val size : t -> int
val dominates : t -> t -> bool
(** [dominates a b]: [a]'s leaves are a subset of [b]'s. *)

val signature : int array -> int
(** Bloom-filter signature of a (sorted) leaf array.  Sound for subset
    pre-rejection: [leaves a ⊆ leaves b] implies
    [signature a land signature b = signature a]. *)

val compute : Aig.t -> k:int -> limit:int -> t list array
(** [compute aig ~k ~limit] returns, for every node, up to [limit]
    [k]-feasible cuts (the trivial cut included, always last).  Smaller and
    dominating cuts are preferred. *)

(** {1 Engine selection and counters} *)

type engine =
  | Packed     (** flat slabs + incremental truth tables (the default) *)
  | Reference  (** legacy lists + per-cut cone walks, for differential runs *)

val engine_name : engine -> string
val engine_of_string : string -> engine option
(** ["packed"] / ["reference"] (also ["ref"]); [None] otherwise. *)

(** Hot-path counters, accumulated by whichever subsystem owns the record
    (one per pass in the flow).  [built] counts candidate cuts accepted
    into a node's scratch set (including later-evicted ones), [dominated]
    counts candidates dropped — or evicted — by the dominance filter,
    [sign_rejects] counts subset walks skipped by the signature pre-filter,
    [tt_merges] counts incremental truth-table merges, and [probes] counts
    match-table lookups (filled in by the mapper).  [reevals] /
    [reeval_skips] count (node, pass) matching evaluations performed
    vs. skipped by the mapper's exact dirty-propagation (also filled in
    by the mapper; both are deterministic for every [jobs] value). *)
type stats = {
  mutable built : int;
  mutable dominated : int;
  mutable sign_rejects : int;
  mutable tt_merges : int;
  mutable probes : int;
  mutable reevals : int;
  mutable reeval_skips : int;
}

val stats_create : unit -> stats
val stats_add : stats -> stats -> unit
(** [stats_add acc s] adds [s]'s counters into [acc]. *)

(** {1 Packed cut sets} *)

type set
(** All cuts of all nodes, packed: slot [j] of node [nd] holds the leaf
    count, signature, leaves (sorted) and the truth table of [nd] over
    those leaves as a single replicated word ([k <= 6]). *)

val compute_packed :
  ?stats:stats -> ?max_cuts:int -> Aig.t -> k:int -> limit:int -> set
(** Same cut sets as {!compute} (cut [j] of [compute_packed] equals the
    [j]-th list element from [compute]), with each cut's function computed
    bottom-up during the merge.  [2 <= k <= 6].

    [max_cuts] bounds the per-node candidate scratch (default
    [limit * limit], which is exact).  Lower values truncate priority-cut
    style — a candidate that sorts past a full scratch is dropped, and an
    insertion into a full scratch evicts the worst-sorted entry — trading
    exact reference equivalence for bounded work on very large graphs.
    Must be at least [limit] when given. *)

val num_cuts : set -> int -> int
val cut_nleaves : set -> int -> int -> int
(** [cut_nleaves s nd j]: leaf count of cut [j] of node [nd]. *)

val cut_leaf : set -> int -> int -> int -> int
(** [cut_leaf s nd j i]: leaf [i] (ascending order) of cut [j]. *)

val cut_leaves : set -> int -> int -> int array
(** Fresh copy of cut [j]'s leaf array. *)

val cut_tt : set -> int -> int -> int64
(** Truth table of node [nd] over cut [j]'s leaves (replicated word; equals
    [Aig.tt_of_cut aig (Aig.lit_of_node nd) (cut_leaves s nd j)]). *)
