(* A small fork-join pool for within-circuit parallelism.

   The pool owns [width - 1] worker domains; the caller participates as
   worker 0, so [width] chunks run concurrently.  [run] is a chunked
   parallel-for with a barrier: it splits [0, n) into [width] contiguous
   chunks and hands each to one worker.  Determinism is the caller's
   contract — bodies must write only worker-private or per-index state —
   and every use in this codebase is of the two safe shapes:

   - independent per-index analysis (disjoint writes to slot [i]);
   - level-synchronized sweeps, where iteration [i] reads only results
     of strictly earlier barriers.

   Under that contract the computed values are identical for every
   [width], which is what lets [--jobs n] promise byte-identical output
   to [--jobs 1].  Mutex/condvar hand-offs establish the needed
   happens-before edges: chunk writes are visible to the caller after
   [run] returns, and to every worker at the next [run]. *)

type pool = {
  width : int;
  mutex : Mutex.t;
  start : Condition.t;  (* caller -> workers: a new epoch is ready *)
  finished : Condition.t;  (* workers -> caller: pending reached 0 *)
  mutable epoch : int;
  mutable job : (int -> int -> int -> unit) option;  (* w lo hi *)
  mutable n : int;
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable active : bool;  (* a run/run_phases is in flight (caller-side) *)
  mutable domains : unit Domain.t array;
}

let width t = t.width

let chunk n width w = (w * n / width, (w + 1) * n / width)

let worker t w =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.start t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      seen := t.epoch;
      let f = Option.get t.job and n = t.n in
      Mutex.unlock t.mutex;
      let r =
        try
          let lo, hi = chunk n t.width w in
          f w lo hi;
          None
        with e -> Some e
      in
      Mutex.lock t.mutex;
      (match r with
      | Some e when t.failure = None -> t.failure <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~jobs =
  let width = max 1 jobs in
  let t =
    {
      width;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      job = None;
      n = 0;
      pending = 0;
      failure = None;
      stop = false;
      active = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (width - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

(* Below this many iterations the dispatch hand-off costs more than the
   chunks save; run inline (worker index 0, which every scratch scheme
   must accept for the full range). *)
let seq_threshold = 32

(* A pool body calling back into its own pool would deadlock (the caller
   is worker 0 of the outer epoch and cannot also drive a new one), so
   re-entry is rejected eagerly instead of hanging.  Only the calling
   domain touches [active]: workers never enter [enter]/[leave]. *)
let enter t ctx =
  if t.active then
    invalid_arg (ctx ^ ": nested use of a Par pool (pool already running)");
  t.active <- true

let leave t = t.active <- false

(* One epoch hand-off: publish [f]/[n], wake the workers, run chunk 0 in
   the calling domain, wait for the others, re-raise the first failure.
   Shared by [run] (one chunked job) and [run_phases] (a phase loop
   where each worker synchronizes via its own barrier). *)
let dispatch t ~n f =
  Mutex.lock t.mutex;
  t.job <- Some f;
  t.n <- n;
  t.pending <- t.width - 1;
  t.failure <- None;
  t.epoch <- t.epoch + 1;
  Condition.broadcast t.start;
  Mutex.unlock t.mutex;
  let mine =
    try
      let lo, hi = chunk n t.width 0 in
      f 0 lo hi;
      None
    with e -> Some e
  in
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.finished t.mutex
  done;
  t.job <- None;
  let theirs = t.failure in
  t.failure <- None;
  Mutex.unlock t.mutex;
  (match mine with Some e -> raise e | None -> ());
  match theirs with Some e -> raise e | None -> ()

let run t ~n f =
  if n > 0 then begin
    enter t "Par.run";
    Fun.protect
      ~finally:(fun () -> leave t)
      (fun () ->
        if t.width = 1 || n < max seq_threshold (2 * t.width) then f 0 0 n
        else dispatch t ~n f)
  end

(* Multi-phase sweep under a single dispatch.  [run] pays one
   mutex/condvar hand-off per call, which a level-synchronized sweep
   turns into O(depth) hand-offs; here the workers stay resident for the
   whole phase list and meet at a lock-free sense-reversing barrier
   between phases, so the hand-off cost is paid once per sweep.

   Phase [p] covers indices [0, counts.(p)).  A phase marked parallel is
   chunked across the pool exactly like [run]; a sequential phase runs
   entirely on worker 0 (in index order) while the other workers wait at
   the barrier — this is how callers keep merged small levels in
   topological order.  The barrier's atomic operations establish the
   happens-before edges: every write of phase [p] (including worker 0's
   sequential writes) is visible to every worker in phase [p+1].

   A phase body that raises must not desert the barrier (the others
   would spin forever), so failures are parked and re-raised after the
   last phase; the worker keeps arriving at every remaining barrier but
   executes nothing. *)
let run_phases t ~counts ~parallel f =
  let np = Array.length counts in
  if Array.length parallel <> np then
    invalid_arg "Par.run_phases: counts/parallel length mismatch";
  if np > 0 then begin
    enter t "Par.run_phases";
    Fun.protect
      ~finally:(fun () -> leave t)
      (fun () ->
        if t.width = 1 then
          for p = 0 to np - 1 do
            if counts.(p) > 0 then f 0 p 0 counts.(p)
          done
        else begin
          let arrived = Atomic.make 0 and round = Atomic.make 0 in
          let barrier () =
            let r = Atomic.get round in
            if Atomic.fetch_and_add arrived 1 = t.width - 1 then begin
              Atomic.set arrived 0;
              Atomic.incr round
            end
            else
              while Atomic.get round = r do
                Domain.cpu_relax ()
              done
          in
          let body w =
            let err = ref None in
            for p = 0 to np - 1 do
              (if !err = None then
                 try
                   let n = counts.(p) in
                   if n > 0 then
                     if parallel.(p) then begin
                       let lo, hi = chunk n t.width w in
                       if lo < hi then f w p lo hi
                     end
                     else if w = 0 then f 0 p 0 n
                 with e -> err := Some e);
              barrier ()
            done;
            match !err with Some e -> raise e | None -> ()
          in
          dispatch t ~n:t.width (fun w _ _ -> body w)
        end)
  end

let shutdown t =
  if Array.length t.domains > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
