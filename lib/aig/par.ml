(* A small fork-join pool for within-circuit parallelism.

   The pool owns [width - 1] worker domains; the caller participates as
   worker 0, so [width] chunks run concurrently.  [run] is a chunked
   parallel-for with a barrier: it splits [0, n) into [width] contiguous
   chunks and hands each to one worker.  Determinism is the caller's
   contract — bodies must write only worker-private or per-index state —
   and every use in this codebase is of the two safe shapes:

   - independent per-index analysis (disjoint writes to slot [i]);
   - level-synchronized sweeps, where iteration [i] reads only results
     of strictly earlier barriers.

   Under that contract the computed values are identical for every
   [width], which is what lets [--jobs n] promise byte-identical output
   to [--jobs 1].  Mutex/condvar hand-offs establish the needed
   happens-before edges: chunk writes are visible to the caller after
   [run] returns, and to every worker at the next [run]. *)

type pool = {
  width : int;
  mutex : Mutex.t;
  start : Condition.t;  (* caller -> workers: a new epoch is ready *)
  finished : Condition.t;  (* workers -> caller: pending reached 0 *)
  mutable epoch : int;
  mutable job : (int -> int -> int -> unit) option;  (* w lo hi *)
  mutable n : int;
  mutable pending : int;
  mutable failure : exn option;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
}

let width t = t.width

let chunk n width w = (w * n / width, (w + 1) * n / width)

let worker t w =
  let seen = ref 0 in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stop) && t.epoch = !seen do
      Condition.wait t.start t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      seen := t.epoch;
      let f = Option.get t.job and n = t.n in
      Mutex.unlock t.mutex;
      let r =
        try
          let lo, hi = chunk n t.width w in
          f w lo hi;
          None
        with e -> Some e
      in
      Mutex.lock t.mutex;
      (match r with
      | Some e when t.failure = None -> t.failure <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~jobs =
  let width = max 1 jobs in
  let t =
    {
      width;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      epoch = 0;
      job = None;
      n = 0;
      pending = 0;
      failure = None;
      stop = false;
      domains = [||];
    }
  in
  t.domains <-
    Array.init (width - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

(* Below this many iterations the dispatch hand-off costs more than the
   chunks save; run inline (worker index 0, which every scratch scheme
   must accept for the full range). *)
let seq_threshold = 32

let run t ~n f =
  if n > 0 then
    if t.width = 1 || n < max seq_threshold (2 * t.width) then f 0 0 n
    else begin
      Mutex.lock t.mutex;
      t.job <- Some f;
      t.n <- n;
      t.pending <- t.width - 1;
      t.failure <- None;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mutex;
      let mine =
        try
          let lo, hi = chunk n t.width 0 in
          f 0 lo hi;
          None
        with e -> Some e
      in
      Mutex.lock t.mutex;
      while t.pending > 0 do
        Condition.wait t.finished t.mutex
      done;
      t.job <- None;
      let theirs = t.failure in
      t.failure <- None;
      Mutex.unlock t.mutex;
      (match mine with Some e -> raise e | None -> ());
      match theirs with Some e -> raise e | None -> ()
    end

let shutdown t =
  if Array.length t.domains > 0 then begin
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.start;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
