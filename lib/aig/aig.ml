

type lit = int

(* The strash is an open-addressing table over flat int arrays: each bucket
   holds a node id whose (fanin0, fanin1) pair is the key, [-1] marks an
   empty bucket and [-2] a tombstone left by deletion (rollback /
   unsafe_set_and).  Keys are never stored — they are read back from the
   fanin arrays — so the table costs one word per bucket and stays cache
   friendly at millions of nodes.  [hused] counts live entries plus
   tombstones; empties are kept at >= 25% of capacity so linear probes
   always terminate. *)

type t = {
  mutable fanin0 : int array;
  mutable fanin1 : int array;
  mutable num : int;
  mutable ninputs : int;
  mutable onames : string array;
  mutable olits : int array;
  mutable nouts : int;
  mutable inames : string array;
  mutable htab : int array;
  mutable hmask : int;
  mutable hlive : int;
  mutable hused : int;
}

let lit_false = 0
let lit_true = 1
let lnot l = l lxor 1
let node_of l = l lsr 1
let is_compl l = l land 1 = 1
let lit_of_node ?(compl = false) n = (n lsl 1) lor (if compl then 1 else 0)

let next_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c lsl 1
  done;
  !c

let create ?(size_hint = 256) () =
  let hcap = next_pow2 (max 32 (2 * size_hint)) in
  {
    fanin0 = Array.make (max size_hint 4) (-1);
    fanin1 = Array.make (max size_hint 4) (-1);
    num = 1;
    (* node 0 is the constant *)
    ninputs = 0;
    onames = Array.make 8 "";
    olits = Array.make 8 0;
    nouts = 0;
    inames = Array.make 8 "";
    htab = Array.make hcap (-1);
    hmask = hcap - 1;
    hlive = 0;
    hused = 0;
  }

let grow_nodes t =
  let n = Array.length t.fanin0 in
  let f0 = Array.make (2 * n) (-1) and f1 = Array.make (2 * n) (-1) in
  Array.blit t.fanin0 0 f0 0 n;
  Array.blit t.fanin1 0 f1 0 n;
  t.fanin0 <- f0;
  t.fanin1 <- f1

let new_node t =
  if t.num >= Array.length t.fanin0 then grow_nodes t;
  let id = t.num in
  t.num <- id + 1;
  id

let add_input ?(name = "") t =
  if t.num > t.ninputs + 1 then
    invalid_arg "Aig.add_input: inputs must precede AND nodes";
  let id = new_node t in
  let name = if name = "" then Printf.sprintf "i%d" (id - 1) else name in
  if t.ninputs >= Array.length t.inames then begin
    let a = Array.make (2 * Array.length t.inames) "" in
    Array.blit t.inames 0 a 0 t.ninputs;
    t.inames <- a
  end;
  t.inames.(t.ninputs) <- name;
  t.ninputs <- t.ninputs + 1;
  lit_of_node id

let hash_pair f0 f1 =
  let h = (f0 * 0x2545f491) lxor (f1 * 0x9e3779b9) in
  (h lxor (h lsr 17)) land max_int

(* Rebuild into a table of capacity [cap], dropping tombstones.  Every live
   bucket's node still has the fanins it was inserted under (both deleters
   remove the binding before/while mutating), so keys can be re-read from
   the fanin arrays. *)
let strash_rehash t cap =
  let old = t.htab in
  let nt = Array.make cap (-1) in
  let mask = cap - 1 in
  Array.iter
    (fun id ->
      if id >= 0 then begin
        let i = ref (hash_pair t.fanin0.(id) t.fanin1.(id) land mask) in
        while nt.(!i) >= 0 do
          i := (!i + 1) land mask
        done;
        nt.(!i) <- id
      end)
    old;
  t.htab <- nt;
  t.hmask <- mask;
  t.hused <- t.hlive

(* Keep occupancy (live + tombstones) under 75%.  Double only when the live
   load justifies it; otherwise rebuild at the same size to purge
   tombstones accumulated by rollback-heavy workloads. *)
let strash_reserve t =
  let cap = t.hmask + 1 in
  if 4 * (t.hused + 1) > 3 * cap then
    strash_rehash t (if 8 * t.hlive > 3 * cap then 2 * cap else cap)

(* Remove node [id]'s binding under key (f0, f1); no-op when absent. *)
let strash_remove t f0 f1 id =
  let mask = t.hmask in
  let i = ref (hash_pair f0 f1 land mask) in
  let continue = ref true in
  while !continue do
    let v = t.htab.(!i) in
    if v = -1 then continue := false
    else begin
      if v = id then begin
        t.htab.(!i) <- -2;
        t.hlive <- t.hlive - 1;
        continue := false
      end;
      i := (!i + 1) land mask
    end
  done

let mk_and t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = lit_false then lit_false
  else if a = lit_true then b
  else if a = b then a
  else if a = lnot b then lit_false
  else begin
    strash_reserve t;
    let mask = t.hmask in
    let i = ref (hash_pair a b land mask) in
    let free = ref (-1) in
    let found = ref (-1) in
    let continue = ref true in
    while !continue do
      let v = t.htab.(!i) in
      if v = -1 then begin
        if !free < 0 then free := !i;
        continue := false
      end
      else begin
        if v = -2 then begin
          if !free < 0 then free := !i
        end
        else if t.fanin0.(v) = a && t.fanin1.(v) = b then begin
          found := v;
          continue := false
        end;
        i := (!i + 1) land mask
      end
    done;
    if !found >= 0 then lit_of_node !found
    else begin
      let id = new_node t in
      t.fanin0.(id) <- a;
      t.fanin1.(id) <- b;
      if t.htab.(!free) = -1 then t.hused <- t.hused + 1;
      t.htab.(!free) <- id;
      t.hlive <- t.hlive + 1;
      lit_of_node id
    end
  end

let mk_or t a b = lnot (mk_and t (lnot a) (lnot b))

let mk_xor t a b =
  (* a^b = !(a*b) * !( !a * !b ) *)
  let p = mk_and t a b in
  let q = mk_and t (lnot a) (lnot b) in
  mk_and t (lnot p) (lnot q)

let mk_mux t s a b = mk_or t (mk_and t s a) (mk_and t (lnot s) b)

let mk_and_list t = function
  | [] -> lit_true
  | l :: ls -> List.fold_left (mk_and t) l ls

let mk_or_list t = function
  | [] -> lit_false
  | l :: ls -> List.fold_left (mk_or t) l ls

let mk_maj3 t a b c =
  mk_or t (mk_and t a b) (mk_or t (mk_and t a c) (mk_and t b c))

let add_output t name l =
  if t.nouts >= Array.length t.olits then begin
    let n = Array.length t.olits in
    let on = Array.make (2 * n) "" and ol = Array.make (2 * n) 0 in
    Array.blit t.onames 0 on 0 n;
    Array.blit t.olits 0 ol 0 n;
    t.onames <- on;
    t.olits <- ol
  end;
  t.onames.(t.nouts) <- name;
  t.olits.(t.nouts) <- l;
  t.nouts <- t.nouts + 1

let set_output t i l =
  if i < 0 || i >= t.nouts then invalid_arg "Aig.set_output";
  t.olits.(i) <- l

let num_nodes t = t.num
let num_inputs t = t.ninputs
let num_ands t = t.num - 1 - t.ninputs
let num_outputs t = t.nouts
let outputs t = Array.init t.nouts (fun i -> (t.onames.(i), t.olits.(i)))
let output t i =
  if i < 0 || i >= t.nouts then invalid_arg "Aig.output";
  (t.onames.(i), t.olits.(i))

let input_lit t i =
  if i < 0 || i >= t.ninputs then invalid_arg "Aig.input_lit";
  lit_of_node (i + 1)

let input_name t i =
  if i < 0 || i >= t.ninputs then invalid_arg "Aig.input_name";
  t.inames.(i)

let is_input t n = n >= 1 && n <= t.ninputs
let is_and t n = n > t.ninputs && n < t.num
let fanin0 t n = t.fanin0.(n)
let fanin1 t n = t.fanin1.(n)

let iter_ands t f =
  for n = t.ninputs + 1 to t.num - 1 do
    f n
  done

let levels t =
  let lv = Array.make t.num 0 in
  iter_ands t (fun n ->
      lv.(n) <-
        1 + max lv.(node_of t.fanin0.(n)) lv.(node_of t.fanin1.(n)));
  lv

let depth t =
  let lv = levels t in
  let d = ref 0 in
  for i = 0 to t.nouts - 1 do
    d := max !d lv.(node_of t.olits.(i))
  done;
  !d

let fanout_counts t =
  let refs = Array.make t.num 0 in
  iter_ands t (fun n ->
      refs.(node_of t.fanin0.(n)) <- refs.(node_of t.fanin0.(n)) + 1;
      refs.(node_of t.fanin1.(n)) <- refs.(node_of t.fanin1.(n)) + 1);
  for i = 0 to t.nouts - 1 do
    let n = node_of t.olits.(i) in
    refs.(n) <- refs.(n) + 1
  done;
  refs

let mffc_size t refs root =
  if not (is_and t root) then 0
  else begin
    (* Simulate dereferencing the cone; count AND nodes whose refs drop to 0. *)
    let dec = Hashtbl.create 16 in
    let deref n =
      let d = try Hashtbl.find dec n with Not_found -> 0 in
      Hashtbl.replace dec n (d + 1);
      refs.(n) - (d + 1) = 0
    in
    let count = ref 0 in
    let rec go n =
      (* n is an AND node that is dead: count it, deref fanins. *)
      incr count;
      let visit f =
        let m = node_of f in
        if is_and t m && deref m then go m
      in
      visit t.fanin0.(n);
      visit t.fanin1.(n)
    in
    go root;
    !count
  end

let unsafe_set_and t n f0 f1 =
  if not (is_and t n) then invalid_arg "Aig.unsafe_set_and";
  strash_remove t t.fanin0.(n) t.fanin1.(n) n;
  t.fanin0.(n) <- f0;
  t.fanin1.(n) <- f1

let checkpoint t = t.num

let rollback t ckpt =
  if ckpt < t.ninputs + 1 then invalid_arg "Aig.rollback";
  for id = t.num - 1 downto ckpt do
    strash_remove t t.fanin0.(id) t.fanin1.(id) id
  done;
  t.num <- ckpt

let simulate t words =
  if Array.length words <> t.ninputs then invalid_arg "Aig.simulate";
  let v = Array.make t.num 0L in
  for i = 0 to t.ninputs - 1 do
    v.(i + 1) <- words.(i)
  done;
  let litv l =
    let x = v.(node_of l) in
    if is_compl l then Int64.lognot x else x
  in
  iter_ands t (fun n -> v.(n) <- Int64.logand (litv t.fanin0.(n)) (litv t.fanin1.(n)));
  v

let simulate_outputs t words =
  let v = simulate t words in
  Array.init t.nouts (fun i ->
      let l = t.olits.(i) in
      let x = v.(node_of l) in
      if is_compl l then Int64.lognot x else x)

let eval t bits =
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  let out = simulate_outputs t words in
  Array.map (fun w -> Int64.logand w 1L <> 0L) out

let tt_of_cut t root leaves =
  let k = Array.length leaves in
  if k > Tt.max_vars then invalid_arg "Aig.tt_of_cut: too many leaves";
  let map = Hashtbl.create 32 in
  Hashtbl.add map 0 (Tt.const0 k);
  Array.iteri (fun i n -> Hashtbl.replace map n (Tt.var k i)) leaves;
  let rec go n =
    match Hashtbl.find_opt map n with
    | Some tt -> tt
    | None ->
        if not (is_and t n) then
          invalid_arg "Aig.tt_of_cut: leaves do not cut the cone";
        let f0 = t.fanin0.(n) and f1 = t.fanin1.(n) in
        let t0 = go (node_of f0) and t1 = go (node_of f1) in
        let t0 = if is_compl f0 then Tt.bnot t0 else t0 in
        let t1 = if is_compl f1 then Tt.bnot t1 else t1 in
        let tt = Tt.band t0 t1 in
        Hashtbl.add map n tt;
        tt
  in
  let tt = go (node_of root) in
  if is_compl root then Tt.bnot tt else tt

let tt_of_lit t l =
  let leaves = Array.init t.ninputs (fun i -> i + 1) in
  tt_of_cut t l leaves

let cone_size t root leaves =
  let stop = Hashtbl.create 16 in
  Array.iter (fun n -> Hashtbl.replace stop n ()) leaves;
  let seen = Hashtbl.create 32 in
  let count = ref 0 in
  let rec go n =
    if (not (Hashtbl.mem stop n)) && not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      if is_and t n then begin
        incr count;
        go (node_of t.fanin0.(n));
        go (node_of t.fanin1.(n))
      end
    end
  in
  go root;
  !count

let extract t outs =
  let fresh = create ~size_hint:t.num () in
  let map = Hashtbl.create (t.num / 2) in
  Hashtbl.add map 0 lit_false;
  for i = 0 to t.ninputs - 1 do
    let l = add_input ~name:t.inames.(i) fresh in
    Hashtbl.add map (i + 1) l
  done;
  let rec copy n =
    match Hashtbl.find_opt map n with
    | Some l -> l
    | None ->
        let f0 = t.fanin0.(n) and f1 = t.fanin1.(n) in
        let a = copy (node_of f0) in
        let b = copy (node_of f1) in
        let a = if is_compl f0 then lnot a else a in
        let b = if is_compl f1 then lnot b else b in
        let l = mk_and fresh a b in
        Hashtbl.add map n l;
        l
  in
  List.iter
    (fun (name, l) ->
      let nl = copy (node_of l) in
      add_output fresh name (if is_compl l then lnot nl else nl))
    outs;
  (fresh, map)

let cleanup t =
  let outs = Array.to_list (outputs t) in
  fst (extract t outs)

let pp_stats fmt t =
  Format.fprintf fmt "i/o = %d/%d  and = %d  depth = %d" t.ninputs t.nouts
    (num_ands t) (depth t)
