(** Fork-join domain pool for within-circuit parallelism.

    A pool of [jobs - 1] worker domains plus the calling domain.  {!run}
    is a chunked parallel-for with a barrier.  Callers guarantee
    determinism by writing only worker-private or per-index state (see
    par.ml); under that contract results are identical for every pool
    width, including width 1 (fully inline, no domains spawned). *)

type pool

val create : jobs:int -> pool
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains. *)

val width : pool -> int
(** Number of concurrent chunks, including the caller ([>= 1]). *)

val run : pool -> n:int -> (int -> int -> int -> unit) -> unit
(** [run pool ~n f] splits [0, n) into [width] contiguous chunks and
    calls [f w lo hi] for each, concurrently; returns when all chunks
    are done.  [w] is a stable worker index in [0, width) usable to
    index per-worker scratch.  Small [n] runs inline as [f 0 0 n].
    An exception in any chunk is re-raised after the barrier.

    Pools are not reentrant: calling {!run} or {!run_phases} from inside
    a body running on the same pool raises [Invalid_argument] instead of
    deadlocking. *)

val run_phases :
  pool -> counts:int array -> parallel:bool array -> (int -> int -> int -> int -> unit) -> unit
(** [run_phases pool ~counts ~parallel f] executes a multi-phase sweep
    under a {e single} pool dispatch: phase [p] covers indices
    [0, counts.(p)), and consecutive phases are separated by a lock-free
    barrier instead of a fresh mutex/condvar hand-off — one hand-off per
    sweep rather than one per phase.  [f w p lo hi] processes indices
    [lo, hi) of phase [p] on worker [w].  A phase with [parallel.(p)] is
    chunked across the pool like {!run}; a sequential phase runs whole on
    worker 0 (as [f 0 p 0 counts.(p)]) while the other workers wait at
    the barrier.  Writes of phase [p] are visible to every worker in
    phase [p + 1].  The first exception is re-raised after the sweep
    (the raising worker keeps the remaining barriers balanced).
    [counts] and [parallel] must have equal length. *)

val shutdown : pool -> unit
(** Joins the worker domains.  The pool must not be used afterwards. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [create]/[shutdown] bracket. *)
