(** Fork-join domain pool for within-circuit parallelism.

    A pool of [jobs - 1] worker domains plus the calling domain.  {!run}
    is a chunked parallel-for with a barrier.  Callers guarantee
    determinism by writing only worker-private or per-index state (see
    par.ml); under that contract results are identical for every pool
    width, including width 1 (fully inline, no domains spawned). *)

type pool

val create : jobs:int -> pool
(** [create ~jobs] spawns [max 0 (jobs - 1)] worker domains. *)

val width : pool -> int
(** Number of concurrent chunks, including the caller ([>= 1]). *)

val run : pool -> n:int -> (int -> int -> int -> unit) -> unit
(** [run pool ~n f] splits [0, n) into [width] contiguous chunks and
    calls [f w lo hi] for each, concurrently; returns when all chunks
    are done.  [w] is a stable worker index in [0, width) usable to
    index per-worker scratch.  Small [n] runs inline as [f 0 0 n].
    An exception in any chunk is re-raised after the barrier. *)

val shutdown : pool -> unit
(** Joins the worker domains.  The pool must not be used afterwards. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [create]/[shutdown] bracket. *)
