(* K-feasible priority cuts (Pan–Mishchenko style), in two engines:

   - the legacy list-of-records engine ([compute]), kept as the reference
     for differential testing and for callers that want plain cut lists;
   - the packed engine ([compute_packed]): cut sets live in preallocated
     flat slabs (leaves + signature + truth-table word per cut slot, no
     per-cut records or lists), candidate filtering runs over a bounded
     insertion-sorted scratch array with signature pre-rejection, and each
     cut's truth table is computed bottom-up during the merge from the
     fanins' cut tables — so consumers never re-walk the cone
     ([Aig.tt_of_cut]) per cut.

   Both engines produce identical cut sets: the final dominance-filtered
   set of a node is independent of candidate insertion order, and both
   commit the same (size, lexicographic leaves) sorted prefix plus the
   trivial cut last. *)

(* Signature: a 62-bucket bloom filter over leaf ids, used to pre-reject
   subset tests.  Soundness condition: each leaf contributes exactly one
   bucket bit determined by the leaf alone, so
   [leaves a ⊆ leaves b ⟹ sign a land sign b = sign a]; a failed
   superset-of-bits test therefore proves non-domination, while a passed
   one still requires the exact subset walk.  ([n mod 62] spreads ids over
   all buckets; the previous [1 lsl (n land 62)] collapsed every even/odd
   id pair onto buckets 0 and 2, wasting 60 of the 62 bits.) *)
let sign_of_node n = 1 lsl (n mod 62)

let signature leaves =
  Array.fold_left (fun s n -> s lor sign_of_node n) 0 leaves

(* ---------------- reference engine ---------------- *)

type t = { leaves : int array; sign : int }

let trivial n = { leaves = [| n |]; sign = sign_of_node n }
let size c = Array.length c.leaves

let dominates a b =
  a.sign land b.sign = a.sign
  && Array.length a.leaves <= Array.length b.leaves
  &&
  (* both sorted: subset test by merge *)
  let la = a.leaves and lb = b.leaves in
  let na = Array.length la and nb = Array.length lb in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if la.(i) = lb.(j) then go (i + 1) (j + 1)
    else if la.(i) > lb.(j) then go i (j + 1)
    else false
  in
  go 0 0

(* Merge two sorted leaf arrays; None if the union exceeds k. *)
let merge k a b =
  let na = Array.length a and nb = Array.length b in
  let buf = Array.make k 0 in
  let rec go i j m =
    if i >= na && j >= nb then Some m
    else if m >= k then None
    else if i >= na then begin
      buf.(m) <- b.(j);
      go i (j + 1) (m + 1)
    end
    else if j >= nb then begin
      buf.(m) <- a.(i);
      go (i + 1) j (m + 1)
    end
    else if a.(i) = b.(j) then begin
      buf.(m) <- a.(i);
      go (i + 1) (j + 1) (m + 1)
    end
    else if a.(i) < b.(j) then begin
      buf.(m) <- a.(i);
      go (i + 1) j (m + 1)
    end
    else begin
      buf.(m) <- b.(j);
      go i (j + 1) (m + 1)
    end
  in
  match go 0 0 0 with
  | None -> None
  | Some m ->
      let leaves = Array.sub buf 0 m in
      Some { leaves; sign = signature leaves }

let compute aig ~k ~limit =
  if k < 2 || k > 16 then invalid_arg "Cut.compute";
  let n = Aig.num_nodes aig in
  let cuts = Array.make n [] in
  cuts.(0) <- [ trivial 0 ];
  for i = 1 to Aig.num_inputs aig do
    cuts.(i) <- [ trivial i ]
  done;
  Aig.iter_ands aig (fun nd ->
      let c0 = cuts.(Aig.node_of (Aig.fanin0 aig nd)) in
      let c1 = cuts.(Aig.node_of (Aig.fanin1 aig nd)) in
      let acc = ref [] in
      let insert c =
        (* Drop if dominated by an existing cut; remove cuts it dominates. *)
        if not (List.exists (fun d -> dominates d c) !acc) then
          acc := c :: List.filter (fun d -> not (dominates c d)) !acc
      in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              match merge k a.leaves b.leaves with
              | Some c -> insert c
              | None -> ())
            c1)
        c0;
      let sorted =
        List.sort
          (fun a b ->
            let c = compare (size a) (size b) in
            if c <> 0 then c else compare a.leaves b.leaves)
          !acc
      in
      let take n l =
        (* first [n] elements, tail-recursively (wide nodes produce long
           candidate lists) *)
        let rec go acc n = function
          | [] -> List.rev acc
          | _ when n = 0 -> List.rev acc
          | x :: xs -> go (x :: acc) (n - 1) xs
        in
        go [] n l
      in
      cuts.(nd) <- take (limit - 1) sorted @ [ trivial nd ])
  ;
  cuts

(* ---------------- engines and counters ---------------- *)

type engine = Packed | Reference

let engine_name = function Packed -> "packed" | Reference -> "reference"

let engine_of_string = function
  | "packed" -> Some Packed
  | "reference" | "ref" -> Some Reference
  | _ -> None

type stats = {
  mutable built : int;
  mutable dominated : int;
  mutable sign_rejects : int;
  mutable tt_merges : int;
  mutable probes : int;
}

let stats_create () =
  { built = 0; dominated = 0; sign_rejects = 0; tt_merges = 0; probes = 0 }

let stats_add acc s =
  acc.built <- acc.built + s.built;
  acc.dominated <- acc.dominated + s.dominated;
  acc.sign_rejects <- acc.sign_rejects + s.sign_rejects;
  acc.tt_merges <- acc.tt_merges + s.tt_merges;
  acc.probes <- acc.probes + s.probes

(* ---------------- packed engine ---------------- *)

type set = {
  k : int;
  limit : int;
  cnum : int array;   (* per node: number of cuts *)
  clen : int array;   (* per slot [nd * limit + j]: leaf count *)
  csign : int array;  (* per slot: signature *)
  ctt : (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      (* per slot: function of the node over the cut leaves (single
         replicated word, k <= 6) *)
  cleaves : int array;  (* per slot, stride k: sorted leaf ids *)
}

let num_cuts s nd = s.cnum.(nd)
let cut_nleaves s nd j = s.clen.((nd * s.limit) + j)
let cut_tt s nd j = Bigarray.Array1.get s.ctt ((nd * s.limit) + j)
let cut_leaf s nd j i = s.cleaves.((((nd * s.limit) + j) * s.k) + i)

let cut_leaves s nd j =
  let o = ((nd * s.limit) + j) * s.k in
  Array.sub s.cleaves o s.clen.((nd * s.limit) + j)

(* The word for "variable 0" in the replicated convention — the truth table
   of a trivial cut. *)
let var0 = 0xAAAAAAAAAAAAAAAAL

let compute_packed ?stats ?max_cuts aig ~k ~limit =
  if k < 2 || k > 6 then invalid_arg "Cut.compute_packed";
  if limit < 2 then invalid_arg "Cut.compute_packed: limit";
  (match max_cuts with
  | Some m when m < limit -> invalid_arg "Cut.compute_packed: max_cuts < limit"
  | _ -> ());
  let st = match stats with Some s -> s | None -> stats_create () in
  let n = Aig.num_nodes aig in
  let nslots = n * limit in
  let cnum = Array.make n 0 in
  let clen = Array.make nslots 0 in
  let csign = Array.make nslots 0 in
  let ctt = Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout nslots in
  let cleaves = Array.make (nslots * k) 0 in
  let set_trivial nd =
    let slot = (nd * limit) + cnum.(nd) in
    clen.(slot) <- 1;
    csign.(slot) <- sign_of_node nd;
    Bigarray.Array1.set ctt slot var0;
    cleaves.(slot * k) <- nd;
    cnum.(nd) <- cnum.(nd) + 1
  in
  set_trivial 0;
  for i = 1 to Aig.num_inputs aig do
    set_trivial i
  done;
  (* Scratch candidate set, sorted ascending by (leaf count, lex leaves).
     The default capacity [limit * limit] holds every survivor of a node's
     full cross-product: truncating to [limit - 1] only at commit time is
     what makes the bounded insertion path exactly equivalent to the
     reference engine's collect/sort/take (a candidate that evicts several
     dominated cuts can make room that earlier-rejected cuts of a smaller
     buffer would have needed).  [?max_cuts] lowers the capacity to bound
     per-node work and scratch on very large graphs: insertion into a full
     scratch drops the worst-sorted entry (priority-cut truncation), so
     results may deviate from the reference engine — never use it on a run
     that must be byte-identical to the defaults. *)
  let cap =
    match max_cuts with
    | None -> limit * limit
    | Some m -> min m (limit * limit)
  in
  let s_len = Array.make cap 0 in
  let s_sign = Array.make cap 0 in
  let s_tt = Array.make cap 0L in
  let s_leaves = Array.make (cap * k) 0 in
  let m_leaves = Array.make k 0 in
  (* positions of each fanin-cut leaf inside the merged leaf order *)
  let pos_a = Array.make k 0 in
  let pos_b = Array.make k 0 in
  let cnt = ref 0 in
  let mlen = ref 0 in
  (* candidate vs scratch entry [e]: (leaf count, lex leaves) order *)
  let cmp_entry e =
    let le = s_len.(e) in
    if le <> !mlen then compare le !mlen
    else begin
      let oe = e * k in
      let r = ref 0 and i = ref 0 in
      while !r = 0 && !i < !mlen do
        r := compare s_leaves.(oe + !i) m_leaves.(!i);
        incr i
      done;
      !r
    end
  in
  (* entry [e]'s leaves ⊆ merged leaves (both sorted) *)
  let entry_subset_of_cand e =
    let le = s_len.(e) and oe = e * k in
    let i = ref 0 and j = ref 0 and r = ref true in
    while !r && !i < le do
      if !j >= !mlen then r := false
      else begin
        let x = s_leaves.(oe + !i) and y = m_leaves.(!j) in
        if x = y then begin incr i; incr j end
        else if x > y then incr j
        else r := false
      end
    done;
    !r
  in
  (* merged leaves ⊆ entry [e]'s leaves *)
  let cand_subset_of_entry e =
    let le = s_len.(e) and oe = e * k in
    let i = ref 0 and j = ref 0 and r = ref true in
    while !r && !i < !mlen do
      if !j >= le then r := false
      else begin
        let x = m_leaves.(!i) and y = s_leaves.(oe + !j) in
        if x = y then begin incr i; incr j end
        else if x > y then incr j
        else r := false
      end
    done;
    !r
  in
  let copy_entry src dst =
    if src <> dst then begin
      s_len.(dst) <- s_len.(src);
      s_sign.(dst) <- s_sign.(src);
      s_tt.(dst) <- s_tt.(src);
      Array.blit s_leaves (src * k) s_leaves (dst * k) k
    end
  in
  (* Expand a fanin cut's table to the merged leaf order: complement if the
     fanin edge is complemented, then bubble each variable up to its merged
     position (highest first, so the bubbling only crosses dead
     variables).  Identity when the fanin cut already equals the merged
     cut (the inner loop body never runs). *)
  let expand w cmask len pos =
    let t = ref (Int64.logxor w cmask) in
    for i = len - 1 downto 0 do
      for q = i to pos.(i) - 1 do
        t := Npn.swap_adjacent !t q
      done
    done;
    !t
  in
  Aig.iter_ands aig (fun nd ->
      let f0 = Aig.fanin0 aig nd and f1 = Aig.fanin1 aig nd in
      let n0 = Aig.node_of f0 and n1 = Aig.node_of f1 in
      let x0 = if Aig.is_compl f0 then -1L else 0L in
      let x1 = if Aig.is_compl f1 then -1L else 0L in
      cnt := 0;
      for ja = 0 to cnum.(n0) - 1 do
        for jb = 0 to cnum.(n1) - 1 do
          let sa = (n0 * limit) + ja and sb = (n1 * limit) + jb in
          let la = clen.(sa) and lb = clen.(sb) in
          let oa = sa * k and ob = sb * k in
          (* sorted-union walk, tracking each side's leaf positions *)
          let i = ref 0 and j = ref 0 and m = ref 0 in
          let ok = ref true in
          while !ok && (!i < la || !j < lb) do
            if !m = k then ok := false
            else begin
              let va = if !i < la then cleaves.(oa + !i) else max_int in
              let vb = if !j < lb then cleaves.(ob + !j) else max_int in
              if va = vb then begin
                m_leaves.(!m) <- va;
                pos_a.(!i) <- !m;
                pos_b.(!j) <- !m;
                incr i; incr j; incr m
              end
              else if va < vb then begin
                m_leaves.(!m) <- va;
                pos_a.(!i) <- !m;
                incr i; incr m
              end
              else begin
                m_leaves.(!m) <- vb;
                pos_b.(!j) <- !m;
                incr j; incr m
              end
            end
          done;
          if !ok then begin
            mlen := !m;
            let sgn = csign.(sa) lor csign.(sb) in
            (* Sorted scan: entries before the insertion point are the only
               possible dominators of the candidate (a strict subset is
               strictly smaller, hence sorts strictly earlier; an equal set
               compares equal); entries after it are the only ones the
               candidate can dominate. *)
            let ins = ref (-1) and drop = ref false in
            let e = ref 0 in
            while !ins < 0 && (not !drop) && !e < !cnt do
              let c = cmp_entry !e in
              if c > 0 then ins := !e
              else if c = 0 then begin
                drop := true;
                st.dominated <- st.dominated + 1
              end
              else begin
                (if s_len.(!e) < !mlen then
                   if s_sign.(!e) land sgn <> s_sign.(!e) then
                     st.sign_rejects <- st.sign_rejects + 1
                   else if entry_subset_of_cand !e then begin
                     drop := true;
                     st.dominated <- st.dominated + 1
                   end);
                incr e
              end
            done;
            (* A candidate sorting past a full scratch has nothing after it
               to dominate ([ins = cnt = cap]); dropping it is the
               truncation [max_cuts] documents. *)
            if (not !drop) && not (!ins < 0 && !cnt >= cap) then begin
              let ins = if !ins < 0 then !cnt else !ins in
              (* evict entries the candidate dominates *)
              let w = ref ins in
              for r = ins to !cnt - 1 do
                let keep =
                  if s_len.(r) <= !mlen then true
                  else if sgn land s_sign.(r) <> sgn then begin
                    st.sign_rejects <- st.sign_rejects + 1;
                    true
                  end
                  else if cand_subset_of_entry r then begin
                    st.dominated <- st.dominated + 1;
                    false
                  end
                  else true
                in
                if keep then begin
                  copy_entry r !w;
                  incr w
                end
              done;
              cnt := !w;
              (* full after eviction: drop the worst entry to make room *)
              if !cnt >= cap then cnt := cap - 1;
              (* shift-insert the candidate at [ins] *)
              for r = !cnt downto ins + 1 do
                copy_entry (r - 1) r
              done;
              s_len.(ins) <- !mlen;
              s_sign.(ins) <- sgn;
              Array.blit m_leaves 0 s_leaves (ins * k) !mlen;
              (* incremental truth table: expand both fanin-cut tables to
                 the merged leaf order and conjoin *)
              let ta = expand (Bigarray.Array1.get ctt sa) x0 la pos_a in
              let tb = expand (Bigarray.Array1.get ctt sb) x1 lb pos_b in
              s_tt.(ins) <- Int64.logand ta tb;
              incr cnt;
              st.built <- st.built + 1;
              st.tt_merges <- st.tt_merges + 1
            end
          end
        done
      done;
      (* commit the best [limit - 1] cuts, then the trivial cut last *)
      let ncommit = min !cnt (limit - 1) in
      let base = nd * limit in
      for j = 0 to ncommit - 1 do
        let slot = base + j in
        clen.(slot) <- s_len.(j);
        csign.(slot) <- s_sign.(j);
        Bigarray.Array1.set ctt slot s_tt.(j);
        Array.blit s_leaves (j * k) cleaves (slot * k) s_len.(j)
      done;
      cnum.(nd) <- ncommit;
      set_trivial nd);
  { k; limit; cnum; clen; csign; ctt; cleaves }
