(* K-feasible priority cuts (Pan–Mishchenko style), in two engines:

   - the legacy list-of-records engine ([compute]), kept as the reference
     for differential testing and for callers that want plain cut lists;
   - the packed engine ([compute_packed]): cut sets live in preallocated
     flat slabs (leaves + signature + truth-table word per cut slot, no
     per-cut records or lists), candidate filtering runs over a bounded
     insertion-sorted scratch array with signature pre-rejection, and each
     cut's truth table is computed bottom-up during the merge from the
     fanins' cut tables — so consumers never re-walk the cone
     ([Aig.tt_of_cut]) per cut.

   Both engines produce identical cut sets: the final dominance-filtered
   set of a node is independent of candidate insertion order, and both
   commit the same (size, lexicographic leaves) sorted prefix plus the
   trivial cut last. *)

(* Signature: a 62-bucket bloom filter over leaf ids, used to pre-reject
   subset tests.  Soundness condition: each leaf contributes exactly one
   bucket bit determined by the leaf alone, so
   [leaves a ⊆ leaves b ⟹ sign a land sign b = sign a]; a failed
   superset-of-bits test therefore proves non-domination, while a passed
   one still requires the exact subset walk.  ([n mod 62] spreads ids over
   all buckets; the previous [1 lsl (n land 62)] collapsed every even/odd
   id pair onto buckets 0 and 2, wasting 60 of the 62 bits.) *)
let sign_of_node n = 1 lsl (n mod 62)

let signature leaves =
  Array.fold_left (fun s n -> s lor sign_of_node n) 0 leaves

(* SWAR popcount for 62-bit signatures (OCaml ints are 63-bit, so the
   64-bit masks are clipped to their in-range 62-bit prefixes).  Each leaf
   sets exactly one signature bit, so collisions only lower the count:
   [popcount (sign a lor sign b)] is a lower bound on the distinct-leaf
   count of the union, and a value above [k] proves the merge infeasible
   before walking either leaf array. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

(* ---------------- reference engine ---------------- *)

type t = { leaves : int array; sign : int }

let trivial n = { leaves = [| n |]; sign = sign_of_node n }
let size c = Array.length c.leaves

let dominates a b =
  a.sign land b.sign = a.sign
  && Array.length a.leaves <= Array.length b.leaves
  &&
  (* both sorted: subset test by merge *)
  let la = a.leaves and lb = b.leaves in
  let na = Array.length la and nb = Array.length lb in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if la.(i) = lb.(j) then go (i + 1) (j + 1)
    else if la.(i) > lb.(j) then go i (j + 1)
    else false
  in
  go 0 0

(* Merge two sorted leaf arrays; None if the union exceeds k. *)
let merge k a b =
  let na = Array.length a and nb = Array.length b in
  let buf = Array.make k 0 in
  let rec go i j m =
    if i >= na && j >= nb then Some m
    else if m >= k then None
    else if i >= na then begin
      buf.(m) <- b.(j);
      go i (j + 1) (m + 1)
    end
    else if j >= nb then begin
      buf.(m) <- a.(i);
      go (i + 1) j (m + 1)
    end
    else if a.(i) = b.(j) then begin
      buf.(m) <- a.(i);
      go (i + 1) (j + 1) (m + 1)
    end
    else if a.(i) < b.(j) then begin
      buf.(m) <- a.(i);
      go (i + 1) j (m + 1)
    end
    else begin
      buf.(m) <- b.(j);
      go i (j + 1) (m + 1)
    end
  in
  match go 0 0 0 with
  | None -> None
  | Some m ->
      let leaves = Array.sub buf 0 m in
      Some { leaves; sign = signature leaves }

let compute aig ~k ~limit =
  if k < 2 || k > 16 then invalid_arg "Cut.compute";
  let n = Aig.num_nodes aig in
  let cuts = Array.make n [] in
  cuts.(0) <- [ trivial 0 ];
  for i = 1 to Aig.num_inputs aig do
    cuts.(i) <- [ trivial i ]
  done;
  Aig.iter_ands aig (fun nd ->
      let c0 = cuts.(Aig.node_of (Aig.fanin0 aig nd)) in
      let c1 = cuts.(Aig.node_of (Aig.fanin1 aig nd)) in
      let acc = ref [] in
      let insert c =
        (* Drop if dominated by an existing cut; remove cuts it dominates. *)
        if not (List.exists (fun d -> dominates d c) !acc) then
          acc := c :: List.filter (fun d -> not (dominates c d)) !acc
      in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              match merge k a.leaves b.leaves with
              | Some c -> insert c
              | None -> ())
            c1)
        c0;
      let sorted =
        List.sort
          (fun a b ->
            let c = compare (size a) (size b) in
            if c <> 0 then c else compare a.leaves b.leaves)
          !acc
      in
      let take n l =
        (* first [n] elements, tail-recursively (wide nodes produce long
           candidate lists) *)
        let rec go acc n = function
          | [] -> List.rev acc
          | _ when n = 0 -> List.rev acc
          | x :: xs -> go (x :: acc) (n - 1) xs
        in
        go [] n l
      in
      cuts.(nd) <- take (limit - 1) sorted @ [ trivial nd ])
  ;
  cuts

(* ---------------- engines and counters ---------------- *)

type engine = Packed | Reference

let engine_name = function Packed -> "packed" | Reference -> "reference"

let engine_of_string = function
  | "packed" -> Some Packed
  | "reference" | "ref" -> Some Reference
  | _ -> None

type stats = {
  mutable built : int;
  mutable dominated : int;
  mutable sign_rejects : int;
  mutable tt_merges : int;
  mutable probes : int;
  mutable reevals : int;
  mutable reeval_skips : int;
}

let stats_create () =
  {
    built = 0;
    dominated = 0;
    sign_rejects = 0;
    tt_merges = 0;
    probes = 0;
    reevals = 0;
    reeval_skips = 0;
  }

let stats_add acc s =
  acc.built <- acc.built + s.built;
  acc.dominated <- acc.dominated + s.dominated;
  acc.sign_rejects <- acc.sign_rejects + s.sign_rejects;
  acc.tt_merges <- acc.tt_merges + s.tt_merges;
  acc.probes <- acc.probes + s.probes;
  acc.reevals <- acc.reevals + s.reevals;
  acc.reeval_skips <- acc.reeval_skips + s.reeval_skips

(* ---------------- packed engine ---------------- *)

type set = {
  k : int;
  limit : int;
  cnum : int array;   (* per node: number of cuts *)
  clen : int array;   (* per slot [nd * limit + j]: leaf count *)
  csign : int array;  (* per slot: signature *)
  ctt_lo : int array; (* per slot: bits 0..31 of the function of the node
                         over the cut leaves (replicated word, k <= 6) *)
  ctt_hi : int array; (* per slot: bits 32..63 *)
  cleaves : int array;  (* per slot, stride k: sorted leaf ids *)
}
(* Truth tables are carried as two native-int 32-bit halves rather than
   int64: without flambda every int64 read, store and operator in the
   merge kernel boxes (an [Int64.t] heap block per operation), which put
   ~46 minor-heap words per built candidate on the allocator — native
   ints keep the whole kernel allocation-free. *)

let num_cuts s nd = s.cnum.(nd)
let cut_nleaves s nd j = s.clen.((nd * s.limit) + j)

let cut_tt s nd j =
  let slot = (nd * s.limit) + j in
  Int64.logor
    (Int64.shift_left (Int64.of_int s.ctt_hi.(slot)) 32)
    (Int64.of_int s.ctt_lo.(slot))

let cut_leaf s nd j i = s.cleaves.((((nd * s.limit) + j) * s.k) + i)

let cut_leaves s nd j =
  let o = ((nd * s.limit) + j) * s.k in
  Array.sub s.cleaves o s.clen.((nd * s.limit) + j)

(* The word for "variable 0" in the replicated convention — the truth table
   of a trivial cut — as 32-bit halves (both halves equal for var 0). *)
let var0_half = 0xAAAAAAAA

(* Adjacent-variable swap on a 32-bit truth-table half (the half-width
   counterpart of [Npn.swap_adjacent]).  For [q <= 3] the swap permutes
   within aligned 2^(q+2)-bit blocks (<= 32), so each half transforms
   independently; the masks below are the 32-bit periods of the Npn
   variable masks.  [q = 4] exchanges the two middle 16-bit quarters of
   the 64-bit word, crossing the halves — handled inline in [expand]. *)
let h_lohi = Array.make 4 0
let h_hilo = Array.make 4 0
let h_keep = Array.make 4 0

let () =
  let m1 = [| 0xAAAAAAAA; 0xCCCCCCCC; 0xF0F0F0F0; 0xFF00FF00; 0xFFFF0000 |] in
  for q = 0 to 3 do
    let lo_hi = lnot m1.(q + 1) land m1.(q) land 0xFFFFFFFF in
    let hi_lo = m1.(q + 1) land lnot m1.(q) land 0xFFFFFFFF in
    h_lohi.(q) <- lo_hi;
    h_hilo.(q) <- hi_lo;
    h_keep.(q) <- lnot (lo_hi lor hi_lo) land 0xFFFFFFFF
  done

let compute_packed ?stats ?max_cuts aig ~k ~limit =
  if k < 2 || k > 6 then invalid_arg "Cut.compute_packed";
  if limit < 2 then invalid_arg "Cut.compute_packed: limit";
  (match max_cuts with
  | Some m when m < limit -> invalid_arg "Cut.compute_packed: max_cuts < limit"
  | _ -> ());
  let st = match stats with Some s -> s | None -> stats_create () in
  let n = Aig.num_nodes aig in
  let nslots = n * limit in
  let cnum = Array.make n 0 in
  let clen = Array.make nslots 0 in
  let csign = Array.make nslots 0 in
  let ctt_lo = Array.make nslots 0 in
  let ctt_hi = Array.make nslots 0 in
  let cleaves = Array.make (nslots * k) 0 in
  let set_trivial nd =
    let slot = (nd * limit) + cnum.(nd) in
    clen.(slot) <- 1;
    csign.(slot) <- sign_of_node nd;
    ctt_lo.(slot) <- var0_half;
    ctt_hi.(slot) <- var0_half;
    cleaves.(slot * k) <- nd;
    cnum.(nd) <- cnum.(nd) + 1
  in
  set_trivial 0;
  for i = 1 to Aig.num_inputs aig do
    set_trivial i
  done;
  (* Scratch candidate set, sorted ascending by (leaf count, lex leaves).
     The default capacity [limit * limit] holds every survivor of a node's
     full cross-product: truncating to [limit - 1] only at commit time is
     what makes the bounded insertion path exactly equivalent to the
     reference engine's collect/sort/take (a candidate that evicts several
     dominated cuts can make room that earlier-rejected cuts of a smaller
     buffer would have needed).  [?max_cuts] lowers the capacity to bound
     per-node work and scratch on very large graphs: insertion into a full
     scratch drops the worst-sorted entry (priority-cut truncation), so
     results may deviate from the reference engine — never use it on a run
     that must be byte-identical to the defaults. *)
  let cap =
    match max_cuts with
    | None -> limit * limit
    | Some m -> min m (limit * limit)
  in
  let s_len = Array.make cap 0 in
  let s_sign = Array.make cap 0 in
  let s_tt_lo = Array.make cap 0 in
  let s_tt_hi = Array.make cap 0 in
  let s_leaves = Array.make (cap * k) 0 in
  let m_leaves = Array.make k 0 in
  (* positions of each fanin-cut leaf inside the merged leaf order *)
  let pos_a = Array.make k 0 in
  let pos_b = Array.make k 0 in
  let cnt = ref 0 in
  let mlen = ref 0 in
  (* candidate vs scratch entry [e]: (leaf count, lex leaves) order *)
  let cmp_entry e =
    let le = s_len.(e) in
    if le <> !mlen then compare le !mlen
    else begin
      let oe = e * k in
      let r = ref 0 and i = ref 0 in
      while !r = 0 && !i < !mlen do
        r := compare s_leaves.(oe + !i) m_leaves.(!i);
        incr i
      done;
      !r
    end
  in
  (* entry [e]'s leaves ⊆ merged leaves (both sorted) *)
  let entry_subset_of_cand e =
    let le = s_len.(e) and oe = e * k in
    let i = ref 0 and j = ref 0 and r = ref true in
    while !r && !i < le do
      if !j >= !mlen then r := false
      else begin
        let x = s_leaves.(oe + !i) and y = m_leaves.(!j) in
        if x = y then begin incr i; incr j end
        else if x > y then incr j
        else r := false
      end
    done;
    !r
  in
  (* merged leaves ⊆ entry [e]'s leaves *)
  let cand_subset_of_entry e =
    let le = s_len.(e) and oe = e * k in
    let i = ref 0 and j = ref 0 and r = ref true in
    while !r && !i < !mlen do
      if !j >= le then r := false
      else begin
        let x = m_leaves.(!i) and y = s_leaves.(oe + !j) in
        if x = y then begin incr i; incr j end
        else if x > y then incr j
        else r := false
      end
    done;
    !r
  in
  let copy_entry src dst =
    if src <> dst then begin
      s_len.(dst) <- s_len.(src);
      s_sign.(dst) <- s_sign.(src);
      s_tt_lo.(dst) <- s_tt_lo.(src);
      s_tt_hi.(dst) <- s_tt_hi.(src);
      Array.blit s_leaves (src * k) s_leaves (dst * k) k
    end
  in
  (* Expand a fanin cut's table to the merged leaf order: complement if the
     fanin edge is complemented, then bubble each variable up to its merged
     position (highest first, so the bubbling only crosses dead
     variables).  Identity when the fanin cut already equals the merged
     cut (the inner loop body never runs).  Works on the 32-bit halves —
     native ints, no boxing — and leaves the result in [e_lo]/[e_hi]. *)
  let e_lo = ref 0 and e_hi = ref 0 in
  let expand wlo whi cmask len pos =
    let lo = ref (wlo lxor cmask) and hi = ref (whi lxor cmask) in
    for i = len - 1 downto 0 do
      for q = i to pos.(i) - 1 do
        if q < 4 then begin
          let keep = h_keep.(q)
          and lo_hi = h_lohi.(q)
          and hi_lo = h_hilo.(q)
          and d = 1 lsl q in
          lo :=
            (!lo land keep)
            lor ((!lo land lo_hi) lsl d)
            lor ((!lo land hi_lo) lsr d);
          hi :=
            (!hi land keep)
            lor ((!hi land lo_hi) lsl d)
            lor ((!hi land hi_lo) lsr d)
        end
        else begin
          (* swap vars 4 and 5: exchange the middle 16-bit quarters *)
          let nl = (!lo land 0xFFFF) lor ((!hi land 0xFFFF) lsl 16) in
          let nh = (!lo lsr 16) lor (!hi land 0xFFFF0000) in
          lo := nl;
          hi := nh
        end
      done
    done;
    e_lo := !lo;
    e_hi := !hi
  in
  Aig.iter_ands aig (fun nd ->
      let f0 = Aig.fanin0 aig nd and f1 = Aig.fanin1 aig nd in
      let n0 = Aig.node_of f0 and n1 = Aig.node_of f1 in
      let x0 = if Aig.is_compl f0 then 0xFFFFFFFF else 0 in
      let x1 = if Aig.is_compl f1 then 0xFFFFFFFF else 0 in
      cnt := 0;
      for ja = 0 to cnum.(n0) - 1 do
        for jb = 0 to cnum.(n1) - 1 do
          let sa = (n0 * limit) + ja and sb = (n1 * limit) + jb in
          let la = clen.(sa) and lb = clen.(sb) in
          let sgn = csign.(sa) lor csign.(sb) in
          if la + lb > k && popcount sgn > k then
            (* provably more than [k] distinct leaves: the walk below could
               only fail, and failed walks touch neither stats nor scratch,
               so skipping is invisible *)
            ()
          else begin
          let oa = sa * k and ob = sb * k in
          (* sorted-union walk, tracking each side's leaf positions *)
          let i = ref 0 and j = ref 0 and m = ref 0 in
          let ok = ref true in
          while !ok && (!i < la || !j < lb) do
            if !m = k then ok := false
            else begin
              let va = if !i < la then cleaves.(oa + !i) else max_int in
              let vb = if !j < lb then cleaves.(ob + !j) else max_int in
              if va = vb then begin
                m_leaves.(!m) <- va;
                pos_a.(!i) <- !m;
                pos_b.(!j) <- !m;
                incr i; incr j; incr m
              end
              else if va < vb then begin
                m_leaves.(!m) <- va;
                pos_a.(!i) <- !m;
                incr i; incr m
              end
              else begin
                m_leaves.(!m) <- vb;
                pos_b.(!j) <- !m;
                incr j; incr m
              end
            end
          done;
          if !ok then begin
            mlen := !m;
            (* Sorted scan: entries before the insertion point are the only
               possible dominators of the candidate (a strict subset is
               strictly smaller, hence sorts strictly earlier; an equal set
               compares equal); entries after it are the only ones the
               candidate can dominate. *)
            let ins = ref (-1) and drop = ref false in
            let e = ref 0 in
            while !ins < 0 && (not !drop) && !e < !cnt do
              let c = cmp_entry !e in
              if c > 0 then ins := !e
              else if c = 0 then begin
                drop := true;
                st.dominated <- st.dominated + 1
              end
              else begin
                (if s_len.(!e) < !mlen then
                   if s_sign.(!e) land sgn <> s_sign.(!e) then
                     st.sign_rejects <- st.sign_rejects + 1
                   else if entry_subset_of_cand !e then begin
                     drop := true;
                     st.dominated <- st.dominated + 1
                   end);
                incr e
              end
            done;
            (* A candidate sorting past a full scratch has nothing after it
               to dominate ([ins = cnt = cap]); dropping it is the
               truncation [max_cuts] documents. *)
            if (not !drop) && not (!ins < 0 && !cnt >= cap) then begin
              let ins = if !ins < 0 then !cnt else !ins in
              (* evict entries the candidate dominates *)
              let w = ref ins in
              for r = ins to !cnt - 1 do
                let keep =
                  if s_len.(r) <= !mlen then true
                  else if sgn land s_sign.(r) <> sgn then begin
                    st.sign_rejects <- st.sign_rejects + 1;
                    true
                  end
                  else if cand_subset_of_entry r then begin
                    st.dominated <- st.dominated + 1;
                    false
                  end
                  else true
                in
                if keep then begin
                  copy_entry r !w;
                  incr w
                end
              done;
              cnt := !w;
              (* full after eviction: drop the worst entry to make room *)
              if !cnt >= cap then cnt := cap - 1;
              (* shift-insert the candidate at [ins]: one overlapping blit
                 per column (memmove) instead of an entry-at-a-time loop *)
              let nshift = !cnt - ins in
              if nshift > 0 then begin
                Array.blit s_len ins s_len (ins + 1) nshift;
                Array.blit s_sign ins s_sign (ins + 1) nshift;
                Array.blit s_tt_lo ins s_tt_lo (ins + 1) nshift;
                Array.blit s_tt_hi ins s_tt_hi (ins + 1) nshift;
                Array.blit s_leaves (ins * k) s_leaves ((ins + 1) * k)
                  (nshift * k)
              end;
              s_len.(ins) <- !mlen;
              s_sign.(ins) <- sgn;
              Array.blit m_leaves 0 s_leaves (ins * k) !mlen;
              (* incremental truth table: expand both fanin-cut tables to
                 the merged leaf order and conjoin *)
              expand ctt_lo.(sa) ctt_hi.(sa) x0 la pos_a;
              let alo = !e_lo and ahi = !e_hi in
              expand ctt_lo.(sb) ctt_hi.(sb) x1 lb pos_b;
              s_tt_lo.(ins) <- alo land !e_lo;
              s_tt_hi.(ins) <- ahi land !e_hi;
              incr cnt;
              st.built <- st.built + 1;
              st.tt_merges <- st.tt_merges + 1
            end
          end
          end
        done
      done;
      (* commit the best [limit - 1] cuts, then the trivial cut last *)
      let ncommit = min !cnt (limit - 1) in
      let base = nd * limit in
      for j = 0 to ncommit - 1 do
        let slot = base + j in
        clen.(slot) <- s_len.(j);
        csign.(slot) <- s_sign.(j);
        ctt_lo.(slot) <- s_tt_lo.(j);
        ctt_hi.(slot) <- s_tt_hi.(j);
        Array.blit s_leaves (j * k) cleaves (slot * k) s_len.(j)
      done;
      cnum.(nd) <- ncommit;
      set_trivial nd);
  { k; limit; cnum; clen; csign; ctt_lo; ctt_hi; cleaves }
