(** And-inverter graphs with structural hashing.

    Nodes are numbered densely: node [0] is the constant-false node, nodes
    [1..num_inputs] are primary inputs, and every AND node's two fanins have
    smaller indices than the node itself (so index order is a topological
    order).  Edges are literals: [2*node + c] where [c = 1] marks
    complementation. *)

type t
type lit = int

(** {1 Literals} *)

val lit_false : lit
val lit_true : lit
val lnot : lit -> lit
val node_of : lit -> int
val is_compl : lit -> bool
val lit_of_node : ?compl:bool -> int -> lit

(** {1 Construction} *)

val create : ?size_hint:int -> unit -> t

val add_input : ?name:string -> t -> lit
(** Appends a primary input; returns its positive literal.  Inputs must be
    created before any AND node. *)

val mk_and : t -> lit -> lit -> lit
(** Structurally-hashed AND with constant folding and the trivial
    simplifications [a*a = a], [a*!a = 0]. *)

val mk_or : t -> lit -> lit -> lit
val mk_xor : t -> lit -> lit -> lit
val mk_mux : t -> lit -> lit -> lit -> lit
(** [mk_mux t s a b] is [if s then a else b]. *)

val mk_and_list : t -> lit list -> lit
val mk_or_list : t -> lit list -> lit
val mk_maj3 : t -> lit -> lit -> lit -> lit

val add_output : t -> string -> lit -> unit
val set_output : t -> int -> lit -> unit

(** {1 Structure} *)

val num_nodes : t -> int
(** All nodes including the constant and the inputs. *)

val num_inputs : t -> int
val num_ands : t -> int
val num_outputs : t -> int
val outputs : t -> (string * lit) array
val output : t -> int -> string * lit
val input_lit : t -> int -> lit
(** [input_lit t i] is the positive literal of the [i]-th input (0-based). *)

val input_name : t -> int -> string
val is_input : t -> int -> bool
val is_and : t -> int -> bool
val fanin0 : t -> int -> lit
val fanin1 : t -> int -> lit

val iter_ands : t -> (int -> unit) -> unit
(** Ascending node order (topological). *)

val levels : t -> int array
(** Per-node level: inputs at 0, AND nodes 1 + max of fanins. *)

val depth : t -> int
val fanout_counts : t -> int array
(** References from AND nodes and outputs, per node. *)

val mffc_size : t -> int array -> int -> int
(** [mffc_size t refs n]: size of the maximum fanout-free cone of AND node
    [n] given the fanout counts [refs] (number of AND nodes that would die if
    [n] were removed). *)

val unsafe_set_and : t -> int -> lit -> lit -> unit
(** [unsafe_set_and t n f0 f1] overwrites the fanins of the existing AND
    node [n] without structural hashing or any invariant checking: the
    result may contain cycles, forward references, or duplicate nodes.
    This deliberately breaks the representation — it exists only so tests
    and the {e lint} subsystem can build negative fixtures (a well-formed
    AIG cannot be made ill-formed through the regular constructors).  Never
    use it on a graph that will be optimized or mapped. *)

(** {1 Checkpointing}

    Used for speculative construction: build tentatively, measure, and roll
    back if not profitable.  Rolling back removes all nodes created after
    the checkpoint; they must not be referenced by any retained structure. *)

val checkpoint : t -> int
val rollback : t -> int -> unit

(** {1 Semantics} *)

val simulate : t -> int64 array -> int64 array
(** [simulate t words] — one 64-bit pattern word per input — returns the
    per-node simulation values (indexed by node). *)

val simulate_outputs : t -> int64 array -> int64 array
val eval : t -> bool array -> bool array
(** Evaluate all outputs on one input assignment. *)

val tt_of_lit : t -> lit -> Tt.t
(** Truth table of a literal over the primary inputs.  Requires
    [num_inputs t <= Tt.max_vars]; exponential, for small graphs. *)

val tt_of_cut : t -> lit -> int array -> Tt.t
(** [tt_of_cut t root leaves]: function of [root] expressed over the node
    ids [leaves] (at most 16), which must form a cut of [root]'s cone. *)

val cone_size : t -> int -> int array -> int
(** Number of AND nodes strictly inside the cone of a node above a cut. *)

(** {1 Copying} *)

val extract : t -> (string * lit) list -> t * (int, lit) Hashtbl.t
(** Copy the cones of the given outputs into a fresh graph (dead logic is
    dropped); also returns the old-node to new-literal map. *)

val cleanup : t -> t
(** [extract] on all the outputs of [t]. *)

val pp_stats : Format.formatter -> t -> unit
