type block_type = Gnor | Gnand

type config = { cell : string; polarities : int }

type t = { rows : int; cols : int }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Fabric.create";
  { rows; cols }

let rows t = t.rows
let cols t = t.cols

let block_type _ r c = if (r + c) land 1 = 0 then Gnor else Gnand

let root_kind name =
  let entry = Catalog.find name in
  match entry.Catalog.spec with
  | Gate_spec.Or _ -> `Or
  | Gate_spec.And _ -> `And
  | Gate_spec.Lit _ | Gate_spec.Xor _ -> `Either

let compatible bt name =
  match (bt, root_kind name) with
  | _, `Either -> true
  | Gnor, `Or | Gnand, `And -> true
  | Gnor, `And | Gnand, `Or -> false

let config_bits_per_block = 6 + 6

(* Polarity-gate configuration: one bit per possible literal/XOR phase of
   the cell's six pin slots; derived from the gate's complement-form needs.
   For this model the positive configuration is encoded as the XOR-phase
   mask of the spec. *)
let polarity_bits name =
  let entry = Catalog.find name in
  let rec mask = function
    | Gate_spec.Lit (v, ph) -> if ph then 0 else 1 lsl v
    | Gate_spec.Xor (_, b, ph) -> if ph then 0 else 1 lsl b
    | Gate_spec.And es | Gate_spec.Or es ->
        List.fold_left (fun m e -> m lor mask e) 0 es
  in
  mask entry.Catalog.spec

type placement = {
  placed : (int * int * config) list;
  tiles_used : int;
  tiles_total : int;
  utilization : float;
  config_bits : int;
}

type place_error =
  | Fabric_too_small of { tiles : int; placed : int; instances : int }
  | Not_catalog_cell of { instance : int; cell : string }

let error_message = function
  | Fabric_too_small { tiles; placed; instances } ->
      Printf.sprintf
        "Fabric.place: fabric too small (%d tiles, placed %d of %d instances)"
        tiles placed instances
  | Not_catalog_cell { instance; cell } ->
      Printf.sprintf "Fabric.place: instance %d is not a catalog cell: %s"
        instance cell

exception Error of place_error

let place t (m : Mapped.t) =
  let total = t.rows * t.cols in
  let instances = Array.length m.Mapped.instances in
  let placed = ref [] in
  let used = ref 0 in
  let cursor = ref 0 in
  match
    Array.iteri
      (fun i (inst : Mapped.instance) ->
        let name = inst.Mapped.cell_name in
        if not (List.exists (fun (e : Catalog.entry) -> e.Catalog.name = name)
                  Catalog.all)
        then raise (Error (Not_catalog_cell { instance = i; cell = name }));
        (* advance to the next compatible tile *)
        let rec find k =
          if k >= total then
            raise
              (Error
                 (Fabric_too_small
                    { tiles = total; placed = !used; instances }))
          else
            let r = k / t.cols and c = k mod t.cols in
            if compatible (block_type t r c) name then (r, c, k)
            else find (k + 1)
        in
        let r, c, k = find !cursor in
        cursor := k + 1;
        incr used;
        placed :=
          (r, c, { cell = name; polarities = polarity_bits name }) :: !placed)
      m.Mapped.instances
  with
  | () ->
      Ok
        {
          placed = List.rev !placed;
          tiles_used = !used;
          tiles_total = total;
          utilization = float_of_int !used /. float_of_int total;
          config_bits = !used * config_bits_per_block;
        }
  | exception Error e -> Result.Error e

let place_exn t m =
  match place t m with
  | Ok p -> p
  | Result.Error e -> failwith (error_message e)

let pp_placement fmt p =
  Format.fprintf fmt
    "fabric: %d/%d tiles used (%.1f%% utilization), %d configuration bits"
    p.tiles_used p.tiles_total (100.0 *. p.utilization) p.config_bits
