(** The Sec. 5 regular fabric: an array of interleaved logic blocks built
    around generalized NOR (GNOR) and generalized NAND (GNAND) gates whose
    function is set in-field through the polarity gates.

    A type-1 block hosts an OR-rooted catalog cell (GNOR configurations), a
    type-2 block an AND-rooted one; single-literal and single-XOR cells fit
    either.  Configuring a block stores the catalog function index plus the
    polarity-gate settings, which is what "in-field programming" writes. *)

type block_type = Gnor | Gnand

type config = {
  cell : string;        (** catalog cell name (F00..F45) *)
  polarities : int;     (** polarity-gate configuration bits *)
}

type t

val create : rows:int -> cols:int -> t
(** Checkerboard of alternating GNOR/GNAND blocks. *)

val rows : t -> int
val cols : t -> int
val block_type : t -> int -> int -> block_type

val compatible : block_type -> string -> bool
(** Can this block type realize that catalog cell? *)

val config_bits_per_block : int
(** Function select (6 bits for 46 cells) + 6 polarity-gate bits. *)

type placement = {
  placed : (int * int * config) list;  (** row, col, configuration *)
  tiles_used : int;
  tiles_total : int;
  utilization : float;
  config_bits : int;
}

type place_error =
  | Fabric_too_small of { tiles : int; placed : int; instances : int }
      (** the netlist needs more compatible tiles than the fabric has;
          [placed] instances fit before it ran out *)
  | Not_catalog_cell of { instance : int; cell : string }
      (** the netlist uses a cell outside the F00–F45 catalog (e.g. a CMOS
          mapping) *)

val error_message : place_error -> string

val place : t -> Mapped.t -> (placement, place_error) result
(** Greedy row-major placement of a CNTFET-mapped netlist onto the fabric:
    each instance takes the next compatible tile. *)

val place_exn : t -> Mapped.t -> placement
(** {!place}, raising [Failure (error_message e)] on placement errors. *)

val pp_placement : Format.formatter -> placement -> unit
