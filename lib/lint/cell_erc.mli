(** Electrical rule check (ERC) for elaborated library cells.

    Encodes the legality claims of the paper's Sec. 3–4 as exhaustive
    switch-level checks over every input assignment plus structural checks
    of the sized networks:

    - ["cell-contention"] — no assignment may turn on both pull networks
      (Sec. 3.1: the TG pull-up/pull-down pair is built from complementary
      forms, so a static cell can never fight itself);
    - ["cell-floating"] — a static cell's output must be driven on every
      assignment (the dynamic-GNOR floating node of Fig. 2 is exactly what
      the static families eliminate);
    - ["cell-degraded"] — families that promise full-swing outputs
      (transmission-gate cells per Sec. 3.1, restored pass-static cells per
      Sec. 3.2, CMOS) must never emit a degraded level; for the
      pass-transistor pseudo family a degraded level is reported as a
      warning, since the paper documents that family as non-full-swing
      (its "bad choice" of Sec. 4.2);
    - ["cell-function"] — the switch-level output must equal the cell's
      algebraic spec (complemented for inverting families);
    - ["cell-sizing-path"] — every root-to-rail path of a static pull
      network must present the unit-inverter drive resistance 1.0; pseudo
      pull-downs must present 3/4 (conductance 4/3, Sec. 4.2);
    - ["cell-sizing-bias"] — pseudo cells carry a 1/3-width always-on
      pull-up (the 4:1 drive ratio of Sec. 4.2); static cells carry none;
    - ["cell-width"] — every device width must be positive;
    - ["cell-structure"] — static cells have a pull-up network and no
      bias; pseudo cells have a bias and no pull-up;
    - ["cell-cmos-xor"] — a CMOS cell spec must not contain XOR terms
      (Sec. 3.1: XOR is what ambipolar devices add; CMOS series/parallel
      networks cannot realize it in one stage). *)

val rules : (string * string) list
(** [(rule id, one-line description)] of every rule this analyzer can
    emit. *)

val check_cell : ?name:string -> Cell_netlist.cell -> Diag.t list
(** Run all rules on an elaborated (or hand-built) cell.  [name] labels
    diagnostics (defaults to the pretty-printed spec). *)

val check_spec :
  Cell_netlist.family -> name:string -> Gate_spec.expr -> Diag.t list
(** Pre-checks family/spec legality (the CMOS-XOR rule), then elaborates
    and runs {!check_cell}.  Never raises: an elaboration failure becomes
    a ["cell-elaborate"] error diagnostic. *)

val check_entry : Cell_netlist.family -> Catalog.entry -> Diag.t list

val check_catalog : unit -> Diag.t list
(** Every family over every catalog entry it implements: the full 46 for
    the four ambipolar families, the 7 CMOS-expressible entries for CMOS. *)
