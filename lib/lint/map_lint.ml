let rules =
  [
    ("map-range", "fanin/output references outside the netlist");
    ("map-order", "instance fanin not strictly earlier (cycle)");
    ("map-unused", "instance drives no fanin and no output");
    ("map-cell-unknown", "instance cell not present in the library");
    ("map-cell-npn", "instance function not an NPN variant of its cell");
    ("map-cell-char", "instance area/delay differ from the library");
    ("map-io", "PI/PO counts differ from the golden AIG");
    ("map-cover-missing", "instance carries no cover provenance");
    ("map-cover-shape", "cover shape inconsistent with the fanins");
    ("map-cover-cut", "cover leaves are not a structural cut of the root");
    ( "map-cover-shrunk",
      "support-reduced cover verified structurally via its recorded cut" );
    ("map-cell-function", "instance function differs from the covered cut");
    ("map-cover-chain", "fanin net does not carry the claimed literal");
    ("map-output", "output net does not carry the golden output");
    ("map-output-name", "output name differs from the golden AIG");
    ("map-delay-negative", "negative or NaN delay/capacitance/resistance");
    ("map-arrival-monotone", "arrival time decreases along a fanin chain");
    ( "map-sta-crit",
      "critical-path delay below the slowest reachable single stage" );
  ]

(* Shannon-expand a truth table into graph [g] over the literals [ins]. *)
let shannon g (ins : Aig.lit array) tt0 =
  let k = Array.length ins in
  let rec build tt i =
    if Tt.is_const0 tt then Aig.lit_false
    else if Tt.is_const1 tt then Aig.lit_true
    else if i >= k then Aig.lit_false
    else if not (Tt.depends_on tt i) then build tt (i + 1)
    else
      let lo = build (Tt.cofactor0 tt i) (i + 1) in
      let hi = build (Tt.cofactor1 tt i) (i + 1) in
      Aig.mk_mux g ins.(i) hi lo
  in
  build tt0 0

(* Shannon-expand a truth table into a fresh AIG over [k] inputs. *)
let aig_of_tt k tt =
  let g = Aig.create () in
  let ins = Array.init k (fun _ -> Aig.add_input g) in
  Aig.add_output g "f" (shannon g ins tt);
  g

(* Semantic cover check over the primary inputs: is [root_lit] equivalent
   to [inst_tt] — a function of the (positive) values of the leaf nodes
   [leaves] — composed with those nodes' functions?  This is the fallback
   when the recorded leaves are not a {e structural} cut of the root cone —
   the mapper shrinks cuts to their functional support, so a dropped
   don't-care leaf can leave the cone crossing the leaf boundary while the
   cover is still functionally sound. *)
let compose_equiv ?conflict_budget ?stats golden root_lit leaves inst_tt =
  let outs =
    ("r", root_lit)
    :: Array.to_list
         (Array.mapi
            (fun i n -> (Printf.sprintf "l%d" i, Aig.lit_of_node n))
            leaves)
  in
  let g, map = Aig.extract golden outs in
  let tr l =
    match Hashtbl.find_opt map (Aig.node_of l) with
    | Some nl -> if Aig.is_compl l then Aig.lnot nl else nl
    | None -> invalid_arg "Map_lint.compose_equiv"
  in
  let composed =
    shannon g (Array.map (fun n -> tr (Aig.lit_of_node n)) leaves) inst_tt
  in
  let miter = Aig.mk_xor g (tr root_lit) composed in
  (* re-extract to a single-output graph and compare against constant 0 *)
  let gm, _ = Aig.extract g [ ("m", miter) ] in
  let g0 = Aig.create () in
  for _ = 1 to Aig.num_inputs gm do
    ignore (Aig.add_input g0)
  done;
  Aig.add_output g0 "m" Aig.lit_false;
  Cec.check ?conflict_budget ?stats gm g0

exception Cut_violation

(* Copy the cone of [root_lit] above the node cut [leaves] into a fresh
   AIG whose inputs are the leaves in order.  Raises [Cut_violation] if
   the leaves do not cut the cone. *)
let aig_of_cut golden root_lit leaves =
  let g = Aig.create () in
  let map = Hashtbl.create 32 in
  Array.iter
    (fun nd ->
      let l = Aig.add_input g in
      if not (Hashtbl.mem map nd) then Hashtbl.add map nd l)
    leaves;
  Hashtbl.replace map 0 Aig.lit_false;
  let rec copy nd =
    match Hashtbl.find_opt map nd with
    | Some l -> l
    | None ->
        if not (Aig.is_and golden nd) then raise Cut_violation;
        let f0 = Aig.fanin0 golden nd and f1 = Aig.fanin1 golden nd in
        let a = copy (Aig.node_of f0) in
        let b = copy (Aig.node_of f1) in
        let a = if Aig.is_compl f0 then Aig.lnot a else a in
        let b = if Aig.is_compl f1 then Aig.lnot b else b in
        let l = Aig.mk_and g a b in
        Hashtbl.add map nd l;
        l
  in
  let out = copy (Aig.node_of root_lit) in
  Aig.add_output g "f" (if Aig.is_compl root_lit then Aig.lnot out else out);
  g

let check ?(name = "mapped") ?lib ?golden ?(tt_max_leaves = 16)
    ?conflict_budget ?stats (m : Mapped.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ninst = Array.length m.Mapped.instances in
  let inst_loc j =
    Diag.Inst
      ( name,
        j )
  in
  (* ---- structure ---- *)
  let refs = Array.make (max ninst 1) 0 in
  let check_net ~loc ~bound (net : Mapped.net) =
    match net.Mapped.driver with
    | Mapped.Pi i ->
        if i < 0 || i >= m.Mapped.num_inputs then begin
          add
            (Diag.errorf ~rule:"map-range" loc
               "references primary input %d outside [0, %d)" i
               m.Mapped.num_inputs);
          false
        end
        else true
    | Mapped.Const _ -> true
    | Mapped.Inst j ->
        if j < 0 || j >= ninst then begin
          add
            (Diag.errorf ~rule:"map-range" loc
               "references instance %d outside [0, %d)" j ninst);
          false
        end
        else begin
          refs.(j) <- refs.(j) + 1;
          (match bound with
          | Some self when j >= self ->
              add
                (Diag.errorf ~rule:"map-order" loc
                   "fanin references instance %d, not strictly earlier \
                    (combinational cycle or forward reference)"
                   j)
          | _ -> ());
          true
        end
  in
  let structure_ok = ref true in
  Array.iteri
    (fun j inst ->
      Array.iter
        (fun net ->
          if not (check_net ~loc:(inst_loc j) ~bound:(Some j) net) then
            structure_ok := false)
        inst.Mapped.fanins)
    m.Mapped.instances;
  Array.iter
    (fun (oname, net) ->
      if not (check_net ~loc:(Diag.Map_out (name, oname)) ~bound:None net)
      then structure_ok := false)
    m.Mapped.outputs;
  Array.iteri
    (fun j _ ->
      if refs.(j) = 0 then
        add
          (Diag.warnf ~rule:"map-unused" (inst_loc j)
             "instance '%s' drives no fanin and no output"
             m.Mapped.instances.(j).Mapped.cell_name))
    m.Mapped.instances;
  (* ---- timing sanity (STA invariants; needs a well-formed structure) ---- *)
  if !structure_ok && ninst > 0 then begin
    Array.iteri
      (fun j (inst : Mapped.instance) ->
        let is_nan x = x <> x in
        let bad_drive =
          match inst.Mapped.drive with
          | None -> false
          | Some d ->
              d.Charlib.c_par < 0.0 || is_nan d.Charlib.c_par
              || d.Charlib.cin_ref <= 0.0
              || Array.exists (fun r -> r < 0.0 || is_nan r) d.Charlib.rs
        in
        if
          inst.Mapped.delay < 0.0 || is_nan inst.Mapped.delay || bad_drive
          || Array.exists (fun c -> c < 0.0 || is_nan c) inst.Mapped.fanin_caps
        then
          add
            (Diag.errorf ~rule:"map-delay-negative" (inst_loc j)
               "instance '%s' carries negative or NaN delay, capacitance or \
                resistance data"
               inst.Mapped.cell_name))
      m.Mapped.instances;
    let delays = Mapped.instance_delays m in
    Array.iteri
      (fun j d ->
        if d < 0.0 || d <> d then
          add
            (Diag.errorf ~rule:"map-delay-negative" (inst_loc j)
               "load-dependent delay of instance '%s' is %g"
               m.Mapped.instances.(j).Mapped.cell_name d))
      delays;
    let arr = Mapped.arrival_times_with m delays in
    Array.iteri
      (fun j (inst : Mapped.instance) ->
        Array.iteri
          (fun i (net : Mapped.net) ->
            match net.Mapped.driver with
            | Mapped.Inst d ->
                if arr.(j) +. 1e-9 < arr.(d) then
                  add
                    (Diag.errorf ~rule:"map-arrival-monotone" (inst_loc j)
                       "arrival %.4g at instance '%s' is earlier than \
                        arrival %.4g of its fanin %d (instance %d)"
                       arr.(j) inst.Mapped.cell_name arr.(d) i d)
            | Mapped.Pi _ | Mapped.Const _ -> ())
          inst.Mapped.fanins)
      m.Mapped.instances;
    (* the critical path is at least as long as the slowest single stage
       among instances that reach an output *)
    let reach = Array.make ninst false in
    let rec mark j =
      if not reach.(j) then begin
        reach.(j) <- true;
        Array.iter
          (fun (net : Mapped.net) ->
            match net.Mapped.driver with
            | Mapped.Inst i -> mark i
            | Mapped.Pi _ | Mapped.Const _ -> ())
          m.Mapped.instances.(j).Mapped.fanins
      end
    in
    let crit = ref 0.0 in
    Array.iter
      (fun (_, (net : Mapped.net)) ->
        match net.Mapped.driver with
        | Mapped.Inst j ->
            mark j;
            if arr.(j) > !crit then crit := arr.(j)
        | Mapped.Pi _ | Mapped.Const _ -> ())
      m.Mapped.outputs;
    let maxd = ref 0.0 in
    Array.iteri (fun j d -> if reach.(j) && d > !maxd then maxd := d) delays;
    if !crit +. 1e-9 < !maxd then
      add
        (Diag.errorf ~rule:"map-sta-crit" (Diag.Circuit name)
           "critical-path delay %.4g is below the slowest reachable single \
            stage %.4g"
           !crit !maxd)
  end;
  (* ---- library conformance ---- *)
  (match lib with
  | None -> ()
  | Some lib ->
      let by_name = Hashtbl.create 64 in
      List.iter
        (fun (c : Cell_lib.cell) -> Hashtbl.replace by_name c.Cell_lib.name c)
        (Cell_lib.cells lib);
      Array.iteri
        (fun j (inst : Mapped.instance) ->
          match Hashtbl.find_opt by_name inst.Mapped.cell_name with
          | None ->
              add
                (Diag.errorf ~rule:"map-cell-unknown" (inst_loc j)
                   "cell '%s' is not in library %s" inst.Mapped.cell_name
                   (Cell_lib.name lib))
          | Some c ->
              let k = Array.length inst.Mapped.fanins in
              if k <> c.Cell_lib.arity then
                add
                  (Diag.errorf ~rule:"map-cell-npn" (inst_loc j)
                     "instance of '%s' has %d fanins, cell arity is %d"
                     inst.Mapped.cell_name k c.Cell_lib.arity)
              else if k > 0 && k <= 6
                      && Npn.canonical_cached k inst.Mapped.tt
                         <> Npn.canonical_cached k c.Cell_lib.tt
              then
                add
                  (Diag.errorf ~rule:"map-cell-npn" (inst_loc j)
                     "instance function %016Lx is not an NPN variant of \
                      cell '%s' (%016Lx)"
                     inst.Mapped.tt inst.Mapped.cell_name c.Cell_lib.tt);
              if
                abs_float (inst.Mapped.area -. c.Cell_lib.area) > 1e-9
                || abs_float (inst.Mapped.delay -. c.Cell_lib.delay) > 1e-9
              then
                add
                  (Diag.warnf ~rule:"map-cell-char" (inst_loc j)
                     "area/delay %.4g/%.4g differ from cell '%s' %.4g/%.4g"
                     inst.Mapped.area inst.Mapped.delay
                     inst.Mapped.cell_name c.Cell_lib.area c.Cell_lib.delay))
        m.Mapped.instances);
  (* ---- cover verification against the golden AIG ---- *)
  (match golden with
  | None -> ()
  | Some golden ->
      let io_ok = ref true in
      if m.Mapped.num_inputs <> Aig.num_inputs golden then begin
        io_ok := false;
        add
          (Diag.errorf ~rule:"map-io" (Diag.Circuit name)
             "netlist has %d inputs, golden AIG has %d" m.Mapped.num_inputs
             (Aig.num_inputs golden))
      end;
      if Array.length m.Mapped.outputs <> Aig.num_outputs golden then begin
        io_ok := false;
        add
          (Diag.errorf ~rule:"map-io" (Diag.Circuit name)
             "netlist has %d outputs, golden AIG has %d"
             (Array.length m.Mapped.outputs)
             (Aig.num_outputs golden))
      end;
      if !io_ok && !structure_ok then begin
        let nnodes = Aig.num_nodes golden in
        let covers =
          Array.map (fun (i : Mapped.instance) -> i.Mapped.cover)
            m.Mapped.instances
        in
        (* literal carried by a net, per the drivers' covers *)
        let net_lit (net : Mapped.net) =
          let base =
            match net.Mapped.driver with
            | Mapped.Pi i -> Some (Aig.input_lit golden i)
            | Mapped.Const b ->
                Some (if b then Aig.lit_true else Aig.lit_false)
            | Mapped.Inst j -> (
                match covers.(j) with
                | Some c -> Some c.Mapped.root_lit
                | None -> None)
          in
          match base with
          | Some l when net.Mapped.negated -> Some (Aig.lnot l)
          | x -> x
        in
        (* functional comparison of two literals of the golden AIG; cached *)
        let equiv_cache = Hashtbl.create 64 in
        let lit_equiv l1 l2 =
          if l1 = l2 then `Proven
          else if l1 = Aig.lnot l2 then `Refuted
          else begin
            let key = (min l1 l2, max l1 l2) in
            match Hashtbl.find_opt equiv_cache key with
            | Some v -> v
            | None ->
                let g1, _ = Aig.extract golden [ ("o", l1) ] in
                let g2, _ = Aig.extract golden [ ("o", l2) ] in
                let v =
                  match Cec.check ?conflict_budget ?stats g1 g2 with
                  | Cec.Equivalent -> `Proven
                  | Cec.Inequivalent _ -> `Refuted
                  | Cec.Undecided -> `Unknown
                in
                Hashtbl.add equiv_cache key v;
                v
          end
        in
        let lit_in_range l =
          let n = Aig.node_of l in
          n >= 0 && n < nnodes
        in
        Array.iteri
          (fun j (inst : Mapped.instance) ->
            match covers.(j) with
            | None ->
                add
                  (Diag.warnf ~rule:"map-cover-missing" (inst_loc j)
                     "instance '%s' carries no cover provenance; its \
                      function cannot be verified"
                     inst.Mapped.cell_name)
            | Some cov ->
                let k = Array.length cov.Mapped.fanin_lits in
                if k <> Array.length inst.Mapped.fanins then
                  add
                    (Diag.errorf ~rule:"map-cover-shape" (inst_loc j)
                       "cover records %d leaves for %d fanins" k
                       (Array.length inst.Mapped.fanins))
                else if k = 0 || k > 6 then
                  add
                    (Diag.errorf ~rule:"map-cover-shape" (inst_loc j)
                       "cover with %d leaves is outside the representable \
                        1..6 arity range"
                       k)
                else if
                  not
                    (lit_in_range cov.Mapped.root_lit
                    && Array.for_all lit_in_range cov.Mapped.fanin_lits)
                then
                  add
                    (Diag.errorf ~rule:"map-cover-shape" (inst_loc j)
                       "cover references nodes outside the golden AIG")
                else begin
                  let leaves = Array.map Aig.node_of cov.Mapped.fanin_lits in
                  (* instance output as a function of the leaf node values:
                     flip the inputs consumed complemented *)
                  let inst_tt =
                    let t = ref (Tt.of_bits k inst.Mapped.tt) in
                    Array.iteri
                      (fun i fl ->
                        if Aig.is_compl fl then t := Tt.flip !t i)
                      cov.Mapped.fanin_lits;
                    !t
                  in
                  (* [Some ok] when the leaves structurally cut the cone
                     (the comparison is then exact), [None] when they do
                     not — which is legitimate for support-reduced covers
                     and resolved by the semantic fallback below *)
                  let structural =
                    if k <= tt_max_leaves then
                      match
                        Aig.tt_of_cut golden cov.Mapped.root_lit leaves
                      with
                      | expected ->
                          if Tt.equal expected inst_tt then Some `Ok
                          else
                            Some
                              (`Mismatch
                                (Printf.sprintf
                                   "instance '%s' implements %s over its \
                                    cut, the covered cone computes %s"
                                   inst.Mapped.cell_name (Tt.to_hex inst_tt)
                                   (Tt.to_hex expected)))
                      | exception Invalid_argument _ -> None
                    else
                      (* SAT path for wide cuts: miter the cut cone against
                         the Shannon expansion of the local tt *)
                      match
                        aig_of_cut golden cov.Mapped.root_lit leaves
                      with
                      | cone -> (
                          match
                            Cec.check ?conflict_budget ?stats cone
                              (aig_of_tt k inst_tt)
                          with
                          | Cec.Equivalent -> Some `Ok
                          | Cec.Inequivalent _ ->
                              Some
                                (`Mismatch
                                  (Printf.sprintf
                                     "instance '%s' differs from the \
                                      covered cone (SAT counterexample)"
                                     inst.Mapped.cell_name))
                          | Cec.Undecided -> Some `Undecided)
                      | exception Cut_violation -> None
                  in
                  (* Second structural chance for support-reduced covers:
                     the cover records the original pre-shrink cut, whose
                     function — shrunk to its support — must equal the
                     instance function over exactly the recorded leaves. *)
                  let structural =
                    match structural with
                    | Some _ -> structural
                    | None -> (
                        let cn = cov.Mapped.cut_nodes in
                        let nc = Array.length cn in
                        if nc = 0 || nc > min tt_max_leaves 16 then None
                        else
                          match
                            Aig.tt_of_cut golden cov.Mapped.root_lit cn
                          with
                          | full -> (
                              let small, sup = Tt.shrink_to_support full in
                              if Array.length sup <> k then None
                              else if
                                not
                                  (Array.for_all
                                     (fun i -> cn.(sup.(i)) = leaves.(i))
                                     (Array.init k (fun i -> i)))
                              then None
                              else if Tt.equal small inst_tt then begin
                                add
                                  (Diag.infof ~rule:"map-cover-shrunk"
                                     (inst_loc j)
                                     "support-reduced cover (%d of %d cut \
                                      leaves); verified structurally via \
                                      the recorded cut"
                                     k nc);
                                Some `Ok
                              end
                              else
                                Some
                                  (`Mismatch
                                    (Printf.sprintf
                                       "instance '%s' implements %s over \
                                        its shrunk cut, the recorded cut's \
                                        cone shrinks to %s"
                                       inst.Mapped.cell_name
                                       (Tt.to_hex inst_tt) (Tt.to_hex small))))
                          | exception Invalid_argument _ -> None)
                  in
                  (match structural with
                  | Some `Ok -> ()
                  | Some (`Mismatch msg) ->
                      add
                        (Diag.errorf ~rule:"map-cell-function" (inst_loc j)
                           "%s" msg)
                  | Some `Undecided ->
                      add
                        (Diag.warnf ~rule:"map-cell-function" (inst_loc j)
                           "SAT budget exhausted verifying instance '%s' \
                            against its cone"
                           inst.Mapped.cell_name)
                  | None -> (
                      match
                        compose_equiv ?conflict_budget ?stats golden
                          cov.Mapped.root_lit leaves inst_tt
                      with
                      | Cec.Equivalent ->
                          add
                            (Diag.infof ~rule:"map-cover-cut" (inst_loc j)
                               "support-reduced cover (leaves are not a \
                                structural cut); verified semantically over \
                                the primary inputs")
                      | Cec.Inequivalent _ ->
                          add
                            (Diag.errorf ~rule:"map-cell-function"
                               (inst_loc j)
                               "instance '%s': leaves do not cut the cone \
                                and the composed function differs from the \
                                root (SAT counterexample)"
                               inst.Mapped.cell_name)
                      | Cec.Undecided ->
                          add
                            (Diag.warnf ~rule:"map-cover-cut" (inst_loc j)
                               "leaves do not cut the cone and the SAT \
                                budget was exhausted on the semantic check")
                      | exception Invalid_argument _ ->
                          add
                            (Diag.errorf ~rule:"map-cover-cut" (inst_loc j)
                               "recorded leaves do not cut the cone of the \
                                recorded root")));
                  (* chain rule: each fanin net carries the claimed leaf *)
                  Array.iteri
                    (fun i fnet ->
                      match net_lit fnet with
                      | None -> () (* driver uncovered; warned there *)
                      | Some actual -> (
                          let claimed = cov.Mapped.fanin_lits.(i) in
                          if actual <> claimed then
                            match lit_equiv actual claimed with
                            | `Proven -> ()
                            | `Refuted ->
                                add
                                  (Diag.errorf ~rule:"map-cover-chain"
                                     (inst_loc j)
                                     "fanin %d carries literal %d but the \
                                      cover claims %d (inequivalent)"
                                     i actual claimed)
                            | `Unknown ->
                                add
                                  (Diag.warnf ~rule:"map-cover-chain"
                                     (inst_loc j)
                                     "fanin %d: could not decide literal %d \
                                      against claimed %d"
                                     i actual claimed)))
                    inst.Mapped.fanins
                end)
          m.Mapped.instances;
        (* outputs against the golden output literals *)
        Array.iteri
          (fun idx (oname, onet) ->
            let gname, glit = Aig.output golden idx in
            if oname <> gname then
              add
                (Diag.warnf ~rule:"map-output-name"
                   (Diag.Map_out (name, oname))
                   "output is named '%s' in the golden AIG" gname);
            match net_lit onet with
            | None -> () (* uncovered driver; warned at the instance *)
            | Some actual -> (
                if actual <> glit then
                  match lit_equiv actual glit with
                  | `Proven -> ()
                  | `Refuted ->
                      add
                        (Diag.errorf ~rule:"map-output"
                           (Diag.Map_out (name, oname))
                           "output carries literal %d, the golden AIG \
                            drives literal %d (inequivalent)"
                           actual glit)
                  | `Unknown ->
                      add
                        (Diag.warnf ~rule:"map-output"
                           (Diag.Map_out (name, oname))
                           "could not decide output literal %d against \
                            golden %d"
                           actual glit)))
          m.Mapped.outputs
      end);
  List.rev !diags
