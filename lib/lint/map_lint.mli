(** Structural and functional lint for mapped netlists.

    Three groups of rules:

    {b Structure} (always on):
    - ["map-range"] — a fanin or output references a primary input or
      instance outside the netlist;
    - ["map-order"] — an instance's fanin references itself or a later
      instance (the instance array must be topologically ordered, so this
      is a combinational cycle or a forward reference);
    - ["map-unused"] — an instance drives no fanin and no output.

    {b Library conformance} (with [~lib]):
    - ["map-cell-unknown"] — instance names a cell absent from the
      library;
    - ["map-cell-npn"] — the instance's local function is not an NPN
      variant of the named cell's function (the mapper only instantiates
      negation/permutation variants, free or inverter-repaired — anything
      else means the match table or the extraction is corrupt);
    - ["map-cell-char"] — instance area/delay differ from the library
      cell's characterization.

    {b Cover verification} (with [~golden], the AIG the netlist was mapped
    from): uses the {!Mapped.cover} provenance each instance carries.
    - ["map-io"] — PI/PO counts differ from the golden AIG;
    - ["map-cover-missing"] — instance without provenance (nothing to
      verify);
    - ["map-cover-shape"] — provenance inconsistent with the fanin count
      or wider than the 6-variable instance representation;
    - ["map-cover-cut"] — the recorded leaves do not form a cut of the
      recorded root's cone;
    - ["map-cell-function"] — the instance's local function differs from
      the cut function it claims to cover: checked by exhaustive truth
      table for cuts up to [tt_max_leaves] leaves, by {!Cec} miter beyond;
    - ["map-cover-chain"] — a fanin net does not carry the literal the
      cover claims (checked against the driver's own cover; functionally,
      so that single-literal "wire" reductions across structurally
      distinct nodes are accepted only when SAT-provably equivalent);
    - ["map-output"] — an output net does not carry the golden AIG's
      output literal;
    - ["map-output-name"] — output name differs from the golden AIG's.

    When every instance carries a cover and no cover rule fires, the
    per-instance checks compose inductively into a full functional
    equivalence proof of the mapping — each net provably carries the value
    of its claimed AIG literal — at cost linear in the netlist (times
    [2^cut] per table), instead of one monolithic netlist-level CEC. *)

val rules : (string * string) list

val check :
  ?name:string ->
  ?lib:Cell_lib.t ->
  ?golden:Aig.t ->
  ?tt_max_leaves:int ->
  ?conflict_budget:int ->
  ?stats:Solver.stats ->
  Mapped.t ->
  Diag.t list
(** [tt_max_leaves] (default 16, i.e. always) bounds the cut width checked
    by exhaustive truth tables; wider covered cuts fall back to a SAT
    miter over the cut cone.  Lower it only to exercise the SAT path.
    [conflict_budget] caps every SAT fallback solve; exhaustion degrades
    the affected rule to a Warning ("budget exhausted") instead of an
    unbounded solve.  [stats], when given, accumulates the SAT effort of
    every fallback solve. *)
