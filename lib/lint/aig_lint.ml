let rules =
  [
    ("aig-range", "fanin or output literal out of node range");
    ("aig-order", "AND fanin index not smaller than the node");
    ("aig-cycle", "combinational cycle");
    ("aig-dup", "duplicate AND node (structural hashing violated)");
    ("aig-dangling", "AND node with no references");
    ("aig-unreachable", "referenced AND node outside every output cone");
    ("aig-bookkeeping", "levels/fanout bookkeeping inconsistent");
    ("aig-no-output", "graph has no outputs");
  ]

let check ?(name = "aig") g =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let num = Aig.num_nodes g in
  let node_loc n = Diag.Aig_node (name, n) in
  let in_range m = m >= 0 && m < num in
  (* ---- fanin range / topological order / duplicates ---- *)
  let range_ok = ref true in
  let seen_pairs = Hashtbl.create 256 in
  Aig.iter_ands g (fun n ->
      let f0 = Aig.fanin0 g n and f1 = Aig.fanin1 g n in
      List.iter
        (fun f ->
          let m = Aig.node_of f in
          if not (in_range m) then begin
            range_ok := false;
            add
              (Diag.errorf ~rule:"aig-range" (node_loc n)
                 "fanin literal %d references node %d outside [0, %d)" f m
                 num)
          end
          else if m >= n then
            add
              (Diag.errorf ~rule:"aig-order" (node_loc n)
                 "fanin node %d is not below the node (topological order \
                  broken)"
                 m))
        [ f0; f1 ];
      let a, b = if f0 <= f1 then (f0, f1) else (f1, f0) in
      match Hashtbl.find_opt seen_pairs (a, b) with
      | Some first ->
          add
            (Diag.errorf ~rule:"aig-dup" (node_loc n)
               "same fanins (%d, %d) as node %d" a b first)
      | None -> Hashtbl.add seen_pairs (a, b) n);
  (* ---- outputs ---- *)
  let nouts = Aig.num_outputs g in
  if nouts = 0 then
    add
      (Diag.warnf ~rule:"aig-no-output" (Diag.Circuit name)
         "graph has no outputs");
  let outs_ok = ref true in
  for i = 0 to nouts - 1 do
    let _, l = Aig.output g i in
    if not (in_range (Aig.node_of l)) then begin
      outs_ok := false;
      add
        (Diag.errorf ~rule:"aig-range" (Diag.Aig_out (name, i))
           "output literal %d references node %d outside [0, %d)" l
           (Aig.node_of l) num)
    end
  done;
  let structure_ok = !range_ok && !outs_ok in
  (* ---- cycle detection (iterative DFS; only meaningful edges) ---- *)
  let acyclic = ref true in
  if structure_ok then begin
    (* colors: 0 unvisited, 1 on stack, 2 done *)
    let color = Array.make num 0 in
    let fanins n = [ Aig.node_of (Aig.fanin0 g n); Aig.node_of (Aig.fanin1 g n) ] in
    let dfs root =
      let stack = ref [ (root, fanins root) ] in
      color.(root) <- 1;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (n, pending) :: rest -> (
            match pending with
            | [] ->
                color.(n) <- 2;
                stack := rest
            | m :: pending' ->
                stack := (n, pending') :: rest;
                if Aig.is_and g m then begin
                  if color.(m) = 1 then begin
                    acyclic := false;
                    add
                      (Diag.errorf ~rule:"aig-cycle" (node_loc n)
                         "edge to node %d closes a combinational cycle" m)
                  end
                  else if color.(m) = 0 then begin
                    color.(m) <- 1;
                    stack := (m, fanins m) :: !stack
                  end
                end)
      done
    in
    Aig.iter_ands g (fun n -> if color.(n) = 0 then dfs n)
  end;
  (* ---- references: dangling / unreachable ---- *)
  if structure_ok then begin
    let refs = Array.make num 0 in
    Aig.iter_ands g (fun n ->
        refs.(Aig.node_of (Aig.fanin0 g n)) <-
          refs.(Aig.node_of (Aig.fanin0 g n)) + 1;
        refs.(Aig.node_of (Aig.fanin1 g n)) <-
          refs.(Aig.node_of (Aig.fanin1 g n)) + 1);
    for i = 0 to nouts - 1 do
      let _, l = Aig.output g i in
      refs.(Aig.node_of l) <- refs.(Aig.node_of l) + 1
    done;
    (* reachability from the outputs; guard against cycles via a mark *)
    let marked = Array.make num false in
    let rec mark n =
      if in_range n && not marked.(n) then begin
        marked.(n) <- true;
        if Aig.is_and g n then begin
          mark (Aig.node_of (Aig.fanin0 g n));
          mark (Aig.node_of (Aig.fanin1 g n))
        end
      end
    in
    for i = 0 to nouts - 1 do
      let _, l = Aig.output g i in
      mark (Aig.node_of l)
    done;
    (* aggregated per graph: real netlists legitimately carry dead logic
       until a cleanup pass, and one diagnostic per node would swamp the
       report on a benchmark-sized graph *)
    let dangling = ref 0 and dangling_ex = ref 0 in
    let unreach = ref 0 and unreach_ex = ref 0 in
    Aig.iter_ands g (fun n ->
        if refs.(n) = 0 then begin
          if !dangling = 0 then dangling_ex := n;
          incr dangling
        end
        else if not marked.(n) then begin
          if !unreach = 0 then unreach_ex := n;
          incr unreach
        end);
    if !dangling > 0 then
      add
        (Diag.warnf ~rule:"aig-dangling" (node_loc !dangling_ex)
           "%d AND node%s referenced by no node and no output (first: node \
            %d); run Aig.cleanup before counting or mapping"
           !dangling
           (if !dangling = 1 then "" else "s")
           !dangling_ex);
    if !unreach > 0 then
      add
        (Diag.warnf ~rule:"aig-unreachable" (node_loc !unreach_ex)
           "%d referenced AND node%s outside every output cone (first: node \
            %d) — dead logic chains"
           !unreach
           (if !unreach = 1 then "" else "s")
           !unreach_ex);
    (* ---- bookkeeping: Aig.levels / Aig.fanout_counts vs recomputation.
       [Aig.levels] assumes index order, so an order-violating (but
       acyclic) graph shows up here as a divergence from the proper
       longest-path recomputation; on a cyclic graph levels are
       meaningless and the cycle error stands alone. ---- *)
    if !acyclic then begin
      let lv = Aig.levels g in
      let my_lv = Array.make num (-1) in
      let rec level n =
        if my_lv.(n) >= 0 then my_lv.(n)
        else begin
          let l =
            if Aig.is_and g n then
              1
              + max
                  (level (Aig.node_of (Aig.fanin0 g n)))
                  (level (Aig.node_of (Aig.fanin1 g n)))
            else 0
          in
          my_lv.(n) <- l;
          l
        end
      in
      let bad = ref None in
      Aig.iter_ands g (fun n ->
          if !bad = None && level n <> lv.(n) then bad := Some n);
      (match !bad with
      | Some n ->
          add
            (Diag.errorf ~rule:"aig-bookkeeping" (node_loc n)
               "Aig.levels reports %d, recomputation gives %d" lv.(n)
               my_lv.(n))
      | None -> ());
      let fc = Aig.fanout_counts g in
      let bad = ref None in
      Aig.iter_ands g (fun n -> if !bad = None && fc.(n) <> refs.(n) then bad := Some n);
      match !bad with
      | Some n ->
          add
            (Diag.errorf ~rule:"aig-bookkeeping" (node_loc n)
               "Aig.fanout_counts reports %d, recomputation gives %d" fc.(n)
               refs.(n))
      | None -> ()
    end
  end;
  List.rev !diags
