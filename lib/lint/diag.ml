type severity = Error | Warning | Info

type location =
  | Cell of string * string
  | Aig_node of string * int
  | Aig_out of string * int
  | Inst of string * int
  | Map_out of string * string
  | Circuit of string

type t = {
  severity : severity;
  rule : string;
  loc : location;
  msg : string;
}

let make severity ~rule loc fmt =
  Printf.ksprintf (fun msg -> { severity; rule; loc; msg }) fmt

let errorf ~rule loc fmt = make Error ~rule loc fmt
let warnf ~rule loc fmt = make Warning ~rule loc fmt
let infof ~rule loc fmt = make Info ~rule loc fmt

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let location_string = function
  | Cell (fam, cell) -> Printf.sprintf "%s/%s" fam cell
  | Aig_node (ckt, n) -> Printf.sprintf "%s:node %d" ckt n
  | Aig_out (ckt, i) -> Printf.sprintf "%s:output %d" ckt i
  | Inst (ckt, i) -> Printf.sprintf "%s:inst %d" ckt i
  | Map_out (ckt, name) -> Printf.sprintf "%s:output %s" ckt name
  | Circuit ckt -> ckt

let pp_location fmt loc = Format.pp_print_string fmt (location_string loc)

let pp fmt d =
  Format.fprintf fmt "%s[%s] %s: %s" (severity_name d.severity) d.rule
    (location_string d.loc) d.msg

(* One finding must always be exactly one TSV row of exactly four fields:
   separator and record characters embedded in a message (e.g. quoted user
   input from a parse error) are escaped, not flattened, so the row stays
   machine-parseable and lossless. *)
let tsv_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\t' -> Buffer.add_string b "\\t"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_tsv d =
  Printf.sprintf "%s\t%s\t%s\t%s" (severity_name d.severity) d.rule
    (tsv_escape (location_string d.loc))
    (tsv_escape d.msg)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count ds =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = compare a.rule b.rule in
        if c <> 0 then c else compare a.loc b.loc)
    ds

let pp_summary fmt ds =
  let e, w, i = count ds in
  Format.fprintf fmt "%d error%s, %d warning%s, %d note%s" e
    (if e = 1 then "" else "s")
    w
    (if w = 1 then "" else "s")
    i
    (if i = 1 then "" else "s")
