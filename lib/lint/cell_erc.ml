open Cell_netlist

let rules =
  [
    ("cell-contention", "both pull networks conduct on some assignment");
    ("cell-floating", "static cell output undriven on some assignment");
    ("cell-degraded", "degraded output level in a full-swing family");
    ("cell-function", "switch-level output disagrees with the spec");
    ("cell-sizing-path", "root-to-rail path off the family's drive target");
    ("cell-sizing-bias", "pseudo bias width differs from 1/3");
    ("cell-width", "non-positive device width");
    ("cell-structure", "pull-up/bias structure wrong for the family");
    ("cell-cmos-xor", "XOR term in a CMOS cell spec");
    ("cell-elaborate", "cell elaboration failed");
  ]

let eps = 1e-6

(* Exhaustive-scan cutoff: catalog cells have at most 6 inputs; anything
   beyond 16 would take 2^n switch evaluations. *)
let max_scan_vars = 16

let is_pseudo = function
  | Tg_pseudo | Pass_pseudo -> true
  | Tg_static | Pass_static | Cmos -> false

(* The pass-transistor pseudo family is documented by the paper as not
   full-swing (Sec. 4.2 calls it out as the slow, degraded option): its
   degraded levels are expected behaviour, reported as warnings. *)
let full_swing_promised = function
  | Pass_pseudo -> false
  | Tg_static | Tg_pseudo | Pass_static | Cmos -> true

let assignment_string n a =
  let buf = Buffer.create 16 in
  for v = 0 to n - 1 do
    if v > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (Gate_spec.var_name v);
    Buffer.add_char buf '=';
    Buffer.add_char buf (if a land (1 lsl v) <> 0 then '1' else '0')
  done;
  Buffer.contents buf

(* Resistance of every root-to-rail path of a sized network.  Series
   composition sums each combination of branch paths; the count is bounded
   by the product of parallel widths, tiny for catalog-shaped networks. *)
let rec path_resistances = function
  | D d -> [ res_factor d.kind /. d.width ]
  | T (d1, _) -> [ 2.0 /. 3.0 /. d1.width ]
  | S es ->
      List.fold_left
        (fun acc e ->
          let ps = path_resistances e in
          List.concat_map (fun a -> List.map (fun p -> a +. p) ps) acc)
        [ 0.0 ] es
  | P es -> List.concat_map path_resistances es

let check_paths ~loc ~which ~target diags net =
  let bad =
    List.filter (fun r -> abs_float (r -. target) > eps) (path_resistances net)
  in
  match bad with
  | [] -> diags
  | r :: _ ->
      Diag.errorf ~rule:"cell-sizing-path" loc
        "%d %s path(s) have resistance %.4g instead of %.4g" (List.length bad)
        which r target
      :: diags

let behavior_diags ~loc c =
  let n = Gate_spec.arity c.spec in
  if n > max_scan_vars then
    [
      Diag.infof ~rule:"cell-function" loc
        "cell has %d inputs; exhaustive switch-level scan skipped" n;
    ]
  else begin
    let inv = Switchsim.inverting c in
    let total = 1 lsl n in
    let contention = ref [] and floating = ref [] in
    let degraded = ref [] and wrong = ref [] in
    for a = 0 to total - 1 do
      let bits v = a land (1 lsl v) <> 0 in
      (match Switchsim.cell_output c bits with
      | Switchsim.Contention -> contention := a :: !contention
      | Switchsim.Floating -> floating := a :: !floating
      | Switchsim.Driven (_, Switchsim.Degraded) -> degraded := a :: !degraded
      | Switchsim.Driven (_, Switchsim.Strong) -> ());
      match Switchsim.logic_value c bits with
      | None -> () (* already a contention/floating finding *)
      | Some v ->
          if v <> (Gate_spec.eval c.spec bits <> inv) then wrong := a :: !wrong
    done;
    let report rule severity what assigns diags =
      match List.rev assigns with
      | [] -> diags
      | a :: _ as all ->
          Diag.make severity ~rule loc "%s on %d of %d assignments (e.g. %s)"
            what (List.length all) total (assignment_string n a)
          :: diags
    in
    let degraded_sev =
      if full_swing_promised c.family then Diag.Error else Diag.Warning
    in
    []
    |> report "cell-contention" Diag.Error
         "pull-up and pull-down both conduct" !contention
    |> report "cell-floating" Diag.Error "output floats" !floating
    |> report "cell-degraded" degraded_sev "output level is degraded"
         !degraded
    |> report "cell-function" Diag.Error "output disagrees with the spec"
         !wrong
  end

let structure_and_sizing_diags ~loc c =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  (* widths first: sizing checks divide by them *)
  let bad_width = ref 0 in
  List.iter
    (fun d -> if not (d.width > 0.0) then incr bad_width)
    (Cell_netlist.devices c);
  if !bad_width > 0 then
    add
      (Diag.errorf ~rule:"cell-width" loc
         "%d device(s) with non-positive width" !bad_width);
  if c.bias_width < 0.0 then
    add
      (Diag.errorf ~rule:"cell-width" loc "negative bias width %.4g"
         c.bias_width);
  let widths_ok = !bad_width = 0 && c.bias_width >= 0.0 in
  (if is_pseudo c.family then begin
     (* pseudo: no pull-up network, 4/3-conductance pull-down against a
        1/3 always-on bias (Sec. 4.2's 4:1 ratio) *)
     (match c.pull_up with
     | Some _ ->
         add
           (Diag.errorf ~rule:"cell-structure" loc
              "pseudo cell has a pull-up network")
     | None -> ());
     if abs_float (c.bias_width -. (1.0 /. 3.0)) > eps then
       add
         (Diag.errorf ~rule:"cell-sizing-bias" loc
            "bias width %.4g instead of 1/3" c.bias_width);
     if widths_ok then
       diags :=
         check_paths ~loc ~which:"pull-down" ~target:0.75 !diags c.pull_down
   end
   else begin
     if c.bias_width > 0.0 then
       add
         (Diag.errorf ~rule:"cell-structure" loc
            "static cell has an always-on bias (width %.4g)" c.bias_width);
     match c.pull_up with
     | None ->
         add
           (Diag.errorf ~rule:"cell-structure" loc
              "static cell has no pull-up network")
     | Some pu ->
         if widths_ok then begin
           diags := check_paths ~loc ~which:"pull-up" ~target:1.0 !diags pu;
           diags :=
             check_paths ~loc ~which:"pull-down" ~target:1.0 !diags
               c.pull_down
         end
   end);
  !diags

let check_cell ?name c =
  let name =
    match name with
    | Some n -> n
    | None -> Format.asprintf "%a" Gate_spec.pp c.spec
  in
  let loc = Diag.Cell (family_name c.family, name) in
  let xor_diags =
    if c.family = Cmos && Gate_spec.num_xors c.spec > 0 then
      [
        Diag.errorf ~rule:"cell-cmos-xor" loc
          "CMOS cell spec contains %d XOR term(s)"
          (Gate_spec.num_xors c.spec);
      ]
    else []
  in
  xor_diags @ structure_and_sizing_diags ~loc c @ behavior_diags ~loc c

let check_spec family ~name spec =
  let loc = Diag.Cell (family_name family, name) in
  if family = Cmos && Gate_spec.num_xors spec > 0 then
    [
      Diag.errorf ~rule:"cell-cmos-xor" loc
        "CMOS cell spec contains %d XOR term(s); the family cannot realize \
         XOR in a single stage"
        (Gate_spec.num_xors spec);
    ]
  else
    match elaborate family spec with
    | c -> check_cell ~name c
    | exception Invalid_argument m ->
        [ Diag.errorf ~rule:"cell-elaborate" loc "elaboration failed: %s" m ]

let check_entry family (e : Catalog.entry) =
  check_spec family ~name:e.Catalog.name e.Catalog.spec

let check_catalog () =
  List.concat_map
    (fun family ->
      let entries =
        if family = Cmos then Catalog.cmos_subset else Catalog.all
      in
      List.concat_map (check_entry family) entries)
    all_families
