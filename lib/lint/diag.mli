(** Shared diagnostic type of the lint subsystem.

    Every analyzer ({!Cell_erc}, {!Aig_lint}, {!Map_lint}) reports findings
    as a list of {!t}: a severity, a stable machine-readable rule
    identifier (e.g. ["cell-contention"]), a typed location, and a human
    message.  [Error] findings are electrical or structural rule violations
    that make the artifact illegal; [Warning] findings are legal but
    suspicious (dead logic, degraded levels in a family documented as
    degraded); [Info] findings are advisory. *)

type severity = Error | Warning | Info

type location =
  | Cell of string * string
      (** family name, cell name — a library cell under ERC *)
  | Aig_node of string * int  (** circuit name, node id *)
  | Aig_out of string * int   (** circuit name, output index *)
  | Inst of string * int      (** circuit name, mapped-instance index *)
  | Map_out of string * string  (** circuit name, output name *)
  | Circuit of string         (** whole-artifact finding *)

type t = {
  severity : severity;
  rule : string;  (** stable kebab-case identifier, e.g. "aig-cycle" *)
  loc : location;
  msg : string;
}

val make :
  severity -> rule:string -> location -> ('a, unit, string, t) format4 -> 'a

val errorf : rule:string -> location -> ('a, unit, string, t) format4 -> 'a
val warnf : rule:string -> location -> ('a, unit, string, t) format4 -> 'a
val infof : rule:string -> location -> ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string
val pp_location : Format.formatter -> location -> unit

val pp : Format.formatter -> t -> unit
(** One human-readable line: [severity[rule] location: message]. *)

val tsv_escape : string -> string
(** Backslash-escapes [\ ], tab, newline and carriage return so an
    arbitrary string occupies exactly one TSV field. *)

val to_tsv : t -> string
(** Machine-readable line: four tab-separated fields
    [severity, rule, location, message].  Tabs/newlines embedded in the
    location or message are {!tsv_escape}d, so one finding is always
    exactly one row of exactly four fields, losslessly. *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val count : t list -> int * int * int
(** [(errors, warnings, infos)]. *)

val sort : t list -> t list
(** Stable order: severity (errors first), then rule, then location. *)

val pp_summary : Format.formatter -> t list -> unit
(** ["N errors, M warnings, K notes"]. *)
