(** Structural lint for and-inverter graphs.

    A well-formed AIG (see {!Aig}) stores nodes in a dense topological
    order: node 0 is the constant, inputs precede AND nodes, and every AND
    node's fanins have strictly smaller indices — so a combinational cycle
    can only exist if that order is violated.  The regular constructors
    maintain these invariants; this analyzer re-establishes them
    independently, so that graphs produced by an optimizer bug (or broken
    deliberately through {!Aig.unsafe_set_and}) are caught statically:

    - ["aig-range"] — fanin or output literal referencing a node outside
      the graph;
    - ["aig-order"] — AND fanin with index >= the node itself (topological
      order broken);
    - ["aig-cycle"] — combinational cycle (DFS back edge);
    - ["aig-dup"] — two AND nodes with identical fanin pairs (structural
      hashing violated);
    - ["aig-dangling"] — AND node referenced by no AND node and no output;
    - ["aig-unreachable"] — AND node with references but outside every
      output cone (dead cluster);
    - ["aig-bookkeeping"] — {!Aig.levels} or {!Aig.fanout_counts} disagree
      with an independent recomputation (their index-order assumptions do
      not hold);
    - ["aig-no-output"] — the graph has no outputs. *)

val rules : (string * string) list

val check : ?name:string -> Aig.t -> Diag.t list
(** [name] labels diagnostic locations (default ["aig"]). *)
