(** The flowd supervisor: a select-loop daemon that accepts synthesis
    jobs over a Unix or TCP socket (one JSON object per line, {!Proto})
    and schedules them on a pool of forked single-job worker processes.

    Robustness contract:
    - a worker crash (segfault, uncaught exception, chaos SIGKILL) is
      retried with exponential backoff + jitter up to [max_attempts],
      then reported as a typed [job-crashed] reply — the daemon never
      dies with a job;
    - wall-clock ([job_budget_s]) and memory ([job_mem_mb]) budgets are
      enforced by the supervisor with SIGKILL and reported as
      [job-budget] / [job-oom] replies;
    - admission beyond [queue_high_water] sheds load with an
      [overloaded] reply carrying a [retry_after] estimate;
    - SIGTERM / SIGINT / a [drain] request stop admission, finish every
      accepted job, flush replies, and make {!run} return;
    - results are cached content-addressed (structural AIG hash +
      resolved script/family/params, see {!Job.cache_key}), with an
      exact-request-text fast path and coalescing of identical
      in-flight submissions. *)

type listen_addr = Unix_path of string | Tcp of string * int

type config = {
  listen : listen_addr;
  workers : int;              (** pool size (concurrent jobs) *)
  queue_high_water : int;     (** pending-queue bound before shedding *)
  max_attempts : int;         (** worker runs per job before job-crashed *)
  retry_base_s : float;       (** backoff base (doubles per attempt) *)
  retry_cap_s : float;        (** backoff ceiling *)
  job_budget_s : float option;(** per-job wall-clock budget *)
  job_mem_mb : int option;    (** per-job VmRSS budget *)
  cache_capacity : int;       (** result-cache entries (FIFO eviction) *)
  max_request_bytes : int;    (** request-line size bound *)
  warm_families : Cell_netlist.family list;
      (** libraries characterized once pre-fork; workers inherit CoW *)
  chaos_kill : float;
      (** fault-injection: probability a worker is SIGKILLed shortly
          after spawn (testing only; such kills are retried) *)
  seed : int64;               (** backoff-jitter / chaos RNG seed *)
  flow : Flow.config;         (** per-job defaults; submissions override *)
  verbose : bool;
}

val default_config : config

type t
(** Running daemon state, exposed to [on_ready] so tests can learn the
    bound address before the loop starts serving. *)

val listen_address : t -> listen_addr
(** The actual bound address — resolves [Tcp (_, 0)] to the kernel-chosen
    port. *)

val run : ?on_ready:(t -> unit) -> config -> unit
(** Blocks serving jobs until a drain completes.  Installs SIGTERM /
    SIGINT / SIGPIPE handlers; prints final statistics to stderr. *)
