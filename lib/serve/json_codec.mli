(** Minimal JSON codec for the daemon's line-delimited wire protocol.

    Parsing never raises: malformed input — including pathological
    nesting — comes back as [Error msg].  Printing is deterministic
    (field order preserved, integral numbers without a decimal point),
    so protocol replies built from the same data are byte-identical. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val num_to_string : float -> string
val parse : string -> (t, string) result

(** {1 Accessors} — [None] on shape mismatch, never an exception *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val int_ : t -> int option
(** Only integral numbers within [±10{^15}]. *)

val bool_ : t -> bool option
val arr : t -> t list option
val obj : t -> (string * t) list option

val mem_str : t -> string -> string option
val mem_int : t -> string -> int option
val mem_bool : t -> string -> bool option
