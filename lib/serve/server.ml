(* The flowd supervisor: a single-process select loop owning the listen
   socket, client connections, a bounded admission queue, the result
   cache, and a pool of forked single-job worker processes.

   Every failure mode is a first-class, typed behaviour:
   - a worker segfault / exception / chaos SIGKILL is observed as pipe
     EOF + wait status, retried with exponential backoff + jitter up to
     the attempt bound, then reported as a [job-crashed] reply — the
     daemon itself never dies with a job;
   - wall-clock and memory budgets are enforced *by the supervisor*
     (SIGKILL on overrun; the worker needs no cooperation) and reported
     as typed [job-budget] / [job-oom] replies;
   - queue depth beyond the high-water mark sheds load with an
     [overloaded] reply carrying a [retry_after] estimate;
   - SIGTERM / SIGINT / a [drain] request stop admission, finish every
     accepted job, flush replies, and return from [run].

   Workers run one job each and are forked from the daemon *after* the
   library cache is pre-warmed, so every child inherits the elaborated
   libraries copy-on-write and never re-characterizes a family.  The
   worker protocol is line-based over a pipe pair:

     worker -> parent:  K <cache-key>     (after parsing, before running)
                        R <result-json>   (terminal: success)
                        E <message-json>  (terminal: deterministic reject)
     parent -> worker:  G | S             (go / stop after K, one byte)

   so a structurally-cached job costs one parse in a worker and zero
   synthesis, and the supervisor never parses untrusted circuit text in
   its own process. *)

type listen_addr = Unix_path of string | Tcp of string * int

type config = {
  listen : listen_addr;
  workers : int;
  queue_high_water : int;
  max_attempts : int;
  retry_base_s : float;
  retry_cap_s : float;
  job_budget_s : float option;
  job_mem_mb : int option;
  cache_capacity : int;
  max_request_bytes : int;
  warm_families : Cell_netlist.family list;
  chaos_kill : float;
  seed : int64;
  flow : Flow.config;
  verbose : bool;
}

let default_config =
  {
    listen = Unix_path "flowd.sock";
    workers = 2;
    queue_high_water = 64;
    max_attempts = 4;
    retry_base_s = 0.05;
    retry_cap_s = 2.0;
    job_budget_s = None;
    job_mem_mb = None;
    cache_capacity = 256;
    max_request_bytes = 32 * 1024 * 1024;
    warm_families = Cell_netlist.all_families;
    chaos_kill = 0.0;
    seed = 2026L;
    flow = { Flow.default_config with Flow.isolate = true };
    verbose = false;
  }

(* ---------------- state ---------------- *)

type stats = {
  mutable st_received : int;
  mutable st_completed : int;
  mutable st_cache_hits : int;
  mutable st_cache_misses : int;
  mutable st_coalesced : int;
  mutable st_crashes : int;
  mutable st_retries : int;
  mutable st_budget_kills : int;
  mutable st_oom_kills : int;
  mutable st_shed : int;
  mutable st_rejected : int;
  mutable st_chaos_kills : int;
}

type client = {
  c_fd : Unix.file_descr;
  c_in : Buffer.t;
  mutable c_out : string;       (* unwritten reply bytes *)
  mutable c_overflow : bool;    (* discarding the rest of an oversized line *)
}

type entry = {
  e_sub : Proto.submit;
  e_tkey : string;                                   (* request-text key *)
  mutable e_attempts : int;                          (* worker runs started *)
  mutable e_not_before : float;                      (* backoff gate *)
  mutable e_waiters : (Unix.file_descr * string) list;  (* (client, id) *)
}

type kill_reason = No_kill | Budget_kill | Oom_kill | Chaos_kill

type worker = {
  w_pid : int;
  w_rfd : Unix.file_descr;      (* worker -> parent, nonblocking *)
  w_cfd : Unix.file_descr;      (* parent -> worker go/stop *)
  w_buf : Buffer.t;
  w_entry : entry;
  mutable w_deadline : float option;
  mutable w_chaos_at : float option;
  mutable w_killed : kill_reason;
  mutable w_concluded : bool;   (* a terminal reply was already sent *)
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  sig_r : Unix.file_descr;
  sig_w : Unix.file_descr;
  clients : (Unix.file_descr, client) Hashtbl.t;
  workers : (int, worker) Hashtbl.t;
  mutable pending : entry list;            (* admission queue, FIFO *)
  inflight : (string, entry) Hashtbl.t;    (* tkey -> queued/running entry *)
  cache : (string, string) Hashtbl.t;      (* structural key -> result json *)
  cache_fifo : string Queue.t;             (* eviction order *)
  text_index : (string, string) Hashtbl.t; (* text key -> structural key *)
  stats : stats;
  rng : Rand64.t;
  started : float;
  mutable draining : bool;
  mutable mem_poll_at : float;
  mutable avg_job_s : float;
}

let log t fmt =
  Printf.ksprintf
    (fun m -> if t.cfg.verbose then Printf.eprintf "[flowd] %s\n%!" m)
    fmt

let now () = Unix.gettimeofday ()

(* ---------------- small helpers ---------------- *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let text_key (sub : Proto.submit) =
  let b = Buffer.create 1024 in
  let add s = Buffer.add_string b s; Buffer.add_char b '\000' in
  add (Proto.format_name sub.Proto.sub_format);
  add sub.Proto.sub_circuit;
  add sub.Proto.sub_script;
  add (Cli_common.family_arg_name sub.Proto.sub_family);
  add (Json_codec.to_string (Proto.params_to_json sub.Proto.sub_params));
  add sub.Proto.sub_name;
  add (string_of_bool sub.Proto.sub_netlist);
  Digest.to_hex (Digest.string (Buffer.contents b))

let cache_store t skey json =
  if not (Hashtbl.mem t.cache skey) then begin
    Hashtbl.replace t.cache skey json;
    Queue.push skey t.cache_fifo;
    while Hashtbl.length t.cache > t.cfg.cache_capacity do
      let victim = Queue.pop t.cache_fifo in
      Hashtbl.remove t.cache victim
    done
  end

(* ---------------- client I/O ---------------- *)

let client_close t (c : client) =
  Hashtbl.remove t.clients c.c_fd;
  try Unix.close c.c_fd with Unix.Unix_error _ -> ()

let client_flush t (c : client) =
  if c.c_out <> "" then begin
    match
      Unix.write_substring c.c_fd c.c_out 0 (String.length c.c_out)
    with
    | n ->
        c.c_out <-
          (if n >= String.length c.c_out then ""
           else String.sub c.c_out n (String.length c.c_out - n))
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> client_close t c
  end

let client_send t (c : client) line =
  c.c_out <- c.c_out ^ line ^ "\n";
  client_flush t c

let send_to t fd line =
  match Hashtbl.find_opt t.clients fd with
  | Some c -> client_send t c line
  | None -> () (* client went away; the result still reached the cache *)

(* ---------------- worker processes ---------------- *)

(* Executed in the forked child.  Writes its terminal line and exits via
   [Unix._exit] so the parent's at_exit machinery and channel buffers
   are never replayed. *)
let worker_main (cfg : config) (sub : Proto.submit) ~(result_fd : Unix.file_descr)
    ~(ctrl_fd : Unix.file_descr) : 'a =
  let send line =
    let line = line ^ "\n" in
    write_all result_fd line 0 (String.length line)
  in
  (match
     let config = Job.flow_config ~base:cfg.flow sub in
     let steps = Job.parse_script sub in
     let aig = Job.parse_circuit sub in
     let skey = Job.cache_key ~config ~steps ~aig sub in
     send ("K " ^ skey);
     let go = Bytes.create 1 in
     let n = Unix.read ctrl_fd go 0 1 in
     if n = 1 && Bytes.get go 0 = 'G' then
       send ("R " ^ Job.result_json ~config ~steps ~aig sub)
   with
  | () -> ()
  | exception Job.Reject msg ->
      send ("E " ^ Json_codec.to_string (Json_codec.Str msg))
  | exception Out_of_memory ->
      send ("E " ^ Json_codec.to_string (Json_codec.Str "worker out of memory")));
  Unix._exit 0

let spawn t entry =
  let result_r, result_w = Unix.pipe () in
  let ctrl_r, ctrl_w = Unix.pipe () in
  entry.e_attempts <- entry.e_attempts + 1;
  match Unix.fork () with
  | 0 ->
      (* the child keeps only its own pipe ends: everything else the
         supervisor owns is closed so client sockets see EOF exactly when
         the daemon says so, and signals mean their defaults again *)
      List.iter
        (fun s -> Sys.set_signal s Sys.Signal_default)
        [ Sys.sigterm; Sys.sigint; Sys.sigpipe ];
      Unix.close result_r;
      Unix.close ctrl_w;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      Unix.close t.sig_r;
      Unix.close t.sig_w;
      Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.clients;
      Hashtbl.iter
        (fun _ w ->
          (try Unix.close w.w_rfd with Unix.Unix_error _ -> ());
          try Unix.close w.w_cfd with Unix.Unix_error _ -> ())
        t.workers;
      worker_main t.cfg entry.e_sub ~result_fd:result_w ~ctrl_fd:ctrl_r
  | pid ->
      Unix.close result_w;
      Unix.close ctrl_r;
      Unix.set_nonblock result_r;
      let tnow = now () in
      let chaos_at =
        if t.cfg.chaos_kill > 0.0
           && Rand64.int t.rng 1_000_000
              < int_of_float (t.cfg.chaos_kill *. 1_000_000.)
        then Some (tnow +. (0.002 +. (float_of_int (Rand64.int t.rng 30) /. 1000.)))
        else None
      in
      let w =
        {
          w_pid = pid;
          w_rfd = result_r;
          w_cfd = ctrl_w;
          w_buf = Buffer.create 256;
          w_entry = entry;
          w_deadline =
            Option.map (fun b -> tnow +. b) t.cfg.job_budget_s;
          w_chaos_at = chaos_at;
          w_killed = No_kill;
          w_concluded = false;
        }
      in
      Hashtbl.replace t.workers pid w;
      log t "spawned worker %d for %s (attempt %d)" pid
        entry.e_sub.Proto.sub_name entry.e_attempts

let kill_worker t (w : worker) reason =
  if w.w_killed = No_kill && not w.w_concluded then begin
    w.w_killed <- reason;
    (match reason with
    | Chaos_kill -> t.stats.st_chaos_kills <- t.stats.st_chaos_kills + 1
    | _ -> ());
    try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ()
  end

(* ---------------- job conclusion and retry ---------------- *)

let conclude t (w : worker) =
  w.w_concluded <- true;
  Hashtbl.remove t.inflight w.w_entry.e_tkey

let reply_waiters t entry line_of_id =
  List.iter
    (fun (fd, id) -> send_to t fd (line_of_id id))
    (List.rev entry.e_waiters)

let backoff_delay t attempts =
  let exp =
    t.cfg.retry_base_s *. (2.0 ** float_of_int (max 0 (attempts - 1)))
  in
  let jitter = 0.5 +. (float_of_int (Rand64.int t.rng 1000) /. 1000.) in
  Float.min t.cfg.retry_cap_s (exp *. jitter)

let handle_worker_line t (w : worker) line =
  let entry = w.w_entry in
  if String.length line >= 2 && String.sub line 0 2 = "K " then begin
    let skey = String.sub line 2 (String.length line - 2) in
    match Hashtbl.find_opt t.cache skey with
    | Some json ->
        (* structural cache hit discovered by the worker's parse: answer
           from cache and stop the worker before it synthesizes *)
        t.stats.st_cache_hits <- t.stats.st_cache_hits + 1;
        Hashtbl.replace t.text_index entry.e_tkey skey;
        conclude t w;
        reply_waiters t entry (fun id ->
            Proto.ok_reply ~id ~cached:true ~attempts:entry.e_attempts
              ~result_json:json);
        (try write_all w.w_cfd "S" 0 1 with Unix.Unix_error _ -> ())
    | None ->
        t.stats.st_cache_misses <- t.stats.st_cache_misses + 1;
        Hashtbl.replace t.text_index entry.e_tkey skey;
        w.w_deadline <-
          Option.map (fun b -> now () +. b) t.cfg.job_budget_s;
        (try write_all w.w_cfd "G" 0 1
         with Unix.Unix_error _ -> () (* already dying; EOF will classify *))
  end
  else if String.length line >= 2 && String.sub line 0 2 = "R " then begin
    let json = String.sub line 2 (String.length line - 2) in
    (match Hashtbl.find_opt t.text_index entry.e_tkey with
    | Some skey -> cache_store t skey json
    | None -> ());
    t.stats.st_completed <- t.stats.st_completed + 1;
    conclude t w;
    reply_waiters t entry (fun id ->
        Proto.ok_reply ~id ~cached:false ~attempts:entry.e_attempts
          ~result_json:json)
  end
  else if String.length line >= 2 && String.sub line 0 2 = "E " then begin
    let msg =
      match Json_codec.parse (String.sub line 2 (String.length line - 2)) with
      | Ok j -> Option.value (Json_codec.str j) ~default:"rejected"
      | Error _ -> "rejected"
    in
    t.stats.st_rejected <- t.stats.st_rejected + 1;
    conclude t w;
    reply_waiters t entry (fun id ->
        Proto.error_reply ~id ~kind:Proto.Parse_failed ~attempts:entry.e_attempts
          msg)
  end
  else log t "worker %d: unrecognized line %S" w.w_pid line

(* EOF: the worker exited (or was killed).  Classify, then either retry
   or send the typed failure reply. *)
let handle_worker_eof t (w : worker) =
  Hashtbl.remove t.workers w.w_pid;
  (try Unix.close w.w_rfd with Unix.Unix_error _ -> ());
  (try Unix.close w.w_cfd with Unix.Unix_error _ -> ());
  let status =
    match Unix.waitpid [] w.w_pid with
    | _, st -> Some st
    | exception Unix.Unix_error _ -> None
  in
  if not w.w_concluded then begin
    let entry = w.w_entry in
    match w.w_killed with
    | Budget_kill ->
        t.stats.st_budget_kills <- t.stats.st_budget_kills + 1;
        conclude t w;
        reply_waiters t entry (fun id ->
            Proto.error_reply ~id ~kind:Proto.Job_budget
              ~attempts:entry.e_attempts
              (Printf.sprintf
                 "job exceeded its %.2fs wall-clock budget and was killed"
                 (Option.value t.cfg.job_budget_s ~default:0.0)))
    | Oom_kill ->
        t.stats.st_oom_kills <- t.stats.st_oom_kills + 1;
        conclude t w;
        reply_waiters t entry (fun id ->
            Proto.error_reply ~id ~kind:Proto.Job_oom
              ~attempts:entry.e_attempts
              (Printf.sprintf
                 "job exceeded its %d MB memory budget and was killed"
                 (Option.value t.cfg.job_mem_mb ~default:0)))
    | No_kill | Chaos_kill ->
        t.stats.st_crashes <- t.stats.st_crashes + 1;
        let desc =
          match status with
          | Some (Unix.WSIGNALED s) -> Printf.sprintf "killed by signal %d" s
          | Some (Unix.WEXITED c) -> Printf.sprintf "exited with code %d" c
          | Some (Unix.WSTOPPED s) -> Printf.sprintf "stopped by signal %d" s
          | None -> "disappeared"
        in
        if entry.e_attempts < t.cfg.max_attempts then begin
          t.stats.st_retries <- t.stats.st_retries + 1;
          entry.e_not_before <- now () +. backoff_delay t entry.e_attempts;
          t.pending <- t.pending @ [ entry ];
          log t "worker %d %s; retrying %s (attempt %d/%d)" w.w_pid desc
            entry.e_sub.Proto.sub_name entry.e_attempts t.cfg.max_attempts
        end
        else begin
          conclude t w;
          reply_waiters t entry (fun id ->
              Proto.error_reply ~id ~kind:Proto.Job_crashed
                ~attempts:entry.e_attempts
                (Printf.sprintf "worker %s after %d attempts" desc
                   entry.e_attempts))
        end
  end

let handle_worker_readable t (w : worker) =
  let buf = Bytes.create 65536 in
  let rec drain () =
    match Unix.read w.w_rfd buf 0 (Bytes.length buf) with
    | 0 -> `Eof
    | n ->
        Buffer.add_subbytes w.w_buf buf 0 n;
        drain ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Open
    | exception Unix.Unix_error _ -> `Eof
  in
  let state = drain () in
  (* split complete lines off the worker buffer *)
  let rec lines () =
    let s = Buffer.contents w.w_buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear w.w_buf;
        Buffer.add_string w.w_buf
          (String.sub s (i + 1) (String.length s - i - 1));
        handle_worker_line t w (String.sub s 0 i);
        lines ()
    | None -> ()
  in
  lines ();
  if state = `Eof then handle_worker_eof t w

(* ---------------- requests ---------------- *)

let mem_rss_kb pid =
  match open_in (Printf.sprintf "/proc/%d/status" pid) with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmRSS:"
                then
                  try
                    Scanf.sscanf
                      (String.sub line 6 (String.length line - 6))
                      " %d kB"
                      (fun v -> Some v)
                  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
                else go ()
          in
          go ())

let status_json t =
  let open Json_codec in
  let s = t.stats in
  let lib = Cell_lib.cache_stats () in
  let pids =
    Hashtbl.fold (fun pid _ acc -> pid :: acc) t.workers []
    |> List.sort compare
  in
  let i n = Num (float_of_int n) in
  to_string
    (Obj
       [
         ("uptime_s", Num (now () -. t.started));
         ("draining", Bool t.draining);
         ( "workers",
           Obj
             [
               ("size", i t.cfg.workers);
               ("busy", i (Hashtbl.length t.workers));
               ("pids", Arr (List.map i pids));
             ] );
         ( "queue",
           Obj
             [
               ("depth", i (List.length t.pending));
               ("high_water", i t.cfg.queue_high_water);
             ] );
         ( "jobs",
           Obj
             [
               ("received", i s.st_received);
               ("completed", i s.st_completed);
               ("cache_hits", i s.st_cache_hits);
               ("cache_misses", i s.st_cache_misses);
               ("coalesced", i s.st_coalesced);
               ("crashes", i s.st_crashes);
               ("retries", i s.st_retries);
               ("budget_kills", i s.st_budget_kills);
               ("oom_kills", i s.st_oom_kills);
               ("shed", i s.st_shed);
               ("rejected", i s.st_rejected);
               ("chaos_kills", i s.st_chaos_kills);
             ] );
         ( "cache",
           Obj
             [
               ("entries", i (Hashtbl.length t.cache));
               ("capacity", i t.cfg.cache_capacity);
             ] );
         ( "lib_cache",
           Obj
             [
               ("hits", i lib.Cell_lib.hits);
               ("misses", i lib.Cell_lib.misses);
               ("entries", i lib.Cell_lib.entries);
             ] );
       ])

let retry_after_estimate t =
  let depth = List.length t.pending in
  Float.max 0.05
    (Float.min 30.0
       (t.avg_job_s *. float_of_int (depth + 1)
        /. float_of_int (max 1 t.cfg.workers)))

let handle_submit t (c : client) (sub : Proto.submit) =
  if t.draining then
    client_send t c
      (Proto.error_reply ~id:sub.Proto.sub_id ~kind:Proto.Draining
         "daemon is draining; resubmit elsewhere")
  else begin
    t.stats.st_received <- t.stats.st_received + 1;
    let tkey = text_key sub in
    let cached_result =
      Option.bind (Hashtbl.find_opt t.text_index tkey) (Hashtbl.find_opt t.cache)
    in
    match cached_result with
    | Some json ->
        t.stats.st_cache_hits <- t.stats.st_cache_hits + 1;
        client_send t c
          (Proto.ok_reply ~id:sub.Proto.sub_id ~cached:true ~attempts:0
             ~result_json:json)
    | None -> (
        match Hashtbl.find_opt t.inflight tkey with
        | Some entry ->
            (* identical request already queued or running: coalesce *)
            t.stats.st_coalesced <- t.stats.st_coalesced + 1;
            entry.e_waiters <-
              (c.c_fd, sub.Proto.sub_id) :: entry.e_waiters
        | None ->
            if List.length t.pending >= t.cfg.queue_high_water then begin
              t.stats.st_shed <- t.stats.st_shed + 1;
              client_send t c
                (Proto.error_reply ~id:sub.Proto.sub_id ~kind:Proto.Overloaded
                   ~retry_after:(retry_after_estimate t)
                   (Printf.sprintf "queue depth %d is at the high-water mark %d"
                      (List.length t.pending) t.cfg.queue_high_water))
            end
            else begin
              let entry =
                {
                  e_sub = sub;
                  e_tkey = tkey;
                  e_attempts = 0;
                  e_not_before = 0.0;
                  e_waiters = [ (c.c_fd, sub.Proto.sub_id) ];
                }
              in
              Hashtbl.replace t.inflight tkey entry;
              t.pending <- t.pending @ [ entry ]
            end)
  end

let handle_request_line t (c : client) line =
  if String.trim line = "" then ()
  else
    match Proto.parse_request line with
    | Error msg ->
        t.stats.st_rejected <- t.stats.st_rejected + 1;
        client_send t c
          (Proto.error_reply ~id:(Proto.request_id line)
             ~kind:Proto.Bad_request msg)
    | Ok Proto.Ping -> client_send t c (Proto.pong_reply ~id:"")
    | Ok Proto.Status ->
        client_send t c
          (Printf.sprintf "{\"id\":\"\",\"status\":\"ok\",\"result\":%s}"
             (status_json t))
    | Ok Proto.Drain ->
        log t "drain requested by client";
        t.draining <- true;
        client_send t c "{\"id\":\"\",\"status\":\"ok\",\"result\":\"draining\"}"
    | Ok (Proto.Submit sub) -> handle_submit t c sub

let handle_client_readable t (c : client) =
  let buf = Bytes.create 65536 in
  let rec drain () =
    match Unix.read c.c_fd buf 0 (Bytes.length buf) with
    | 0 -> `Eof
    | n ->
        Buffer.add_subbytes c.c_in buf 0 n;
        drain ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> `Open
    | exception Unix.Unix_error _ -> `Eof
  in
  let state = drain () in
  let rec lines () =
    let s = Buffer.contents c.c_in in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear c.c_in;
        Buffer.add_string c.c_in
          (String.sub s (i + 1) (String.length s - i - 1));
        let line = String.sub s 0 i in
        if c.c_overflow then c.c_overflow <- false
          (* the tail of an oversized request: swallowed *)
        else if String.length line > t.cfg.max_request_bytes then begin
          (* complete but over the limit: typed reject, never parsed *)
          t.stats.st_rejected <- t.stats.st_rejected + 1;
          client_send t c
            (Proto.error_reply ~id:"" ~kind:Proto.Oversized
               (Printf.sprintf "request line exceeds %d bytes"
                  t.cfg.max_request_bytes))
        end
        else handle_request_line t c line;
        lines ()
    | None -> ()
  in
  lines ();
  if (not c.c_overflow) && Buffer.length c.c_in > t.cfg.max_request_bytes
  then begin
    (* no newline within the limit: reject and swallow through the next
       newline so framing recovers *)
    t.stats.st_rejected <- t.stats.st_rejected + 1;
    Buffer.clear c.c_in;
    c.c_overflow <- true;
    client_send t c
      (Proto.error_reply ~id:"" ~kind:Proto.Oversized
         (Printf.sprintf "request line exceeds %d bytes"
            t.cfg.max_request_bytes))
  end;
  if state = `Eof then client_close t c

(* ---------------- scheduling and enforcement ---------------- *)

let schedule t =
  let tnow = now () in
  let rec go () =
    if Hashtbl.length t.workers < t.cfg.workers then begin
      (* first ready entry in FIFO order *)
      let rec pick acc = function
        | [] -> None
        | e :: rest when e.e_not_before <= tnow ->
            Some (e, List.rev_append acc rest)
        | e :: rest -> pick (e :: acc) rest
      in
      match pick [] t.pending with
      | Some (e, rest) ->
          t.pending <- rest;
          spawn t e;
          go ()
      | None -> ()
    end
  in
  go ()

let enforce_budgets t =
  let tnow = now () in
  Hashtbl.iter
    (fun _ w ->
      (match w.w_deadline with
      | Some d when tnow > d -> kill_worker t w Budget_kill
      | _ -> ());
      match w.w_chaos_at with
      | Some at when tnow > at ->
          w.w_chaos_at <- None;
          kill_worker t w Chaos_kill
      | _ -> ())
    t.workers;
  if t.cfg.job_mem_mb <> None && tnow > t.mem_poll_at then begin
    t.mem_poll_at <- tnow +. 0.2;
    let budget_kb = Option.get t.cfg.job_mem_mb * 1024 in
    Hashtbl.iter
      (fun pid w ->
        match mem_rss_kb pid with
        | Some kb when kb > budget_kb -> kill_worker t w Oom_kill
        | _ -> ())
      t.workers
  end

let next_timeout t =
  let tnow = now () in
  let acc = ref 0.5 in
  let consider at = if at > tnow then acc := Float.min !acc (at -. tnow)
                    else acc := 0.0 in
  Hashtbl.iter
    (fun _ w ->
      Option.iter consider w.w_deadline;
      Option.iter consider w.w_chaos_at)
    t.workers;
  List.iter (fun e -> if e.e_not_before > 0.0 then consider e.e_not_before)
    t.pending;
  if t.cfg.job_mem_mb <> None && Hashtbl.length t.workers > 0 then
    consider t.mem_poll_at;
  Float.max 0.01 !acc

(* ---------------- the loop ---------------- *)

let make_listen_fd = function
  | Unix_path path ->
      (try if (Unix.lstat path).Unix.st_kind = Unix.S_SOCK then Unix.unlink path
       with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let accept_clients t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace t.clients fd
          { c_fd = fd; c_in = Buffer.create 256; c_out = ""; c_overflow = false };
        go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let drain_signal_pipe t =
  let buf = Bytes.create 64 in
  match Unix.read t.sig_r buf 0 64 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let create cfg =
  let listen_fd = make_listen_fd cfg.listen in
  Unix.set_nonblock listen_fd;
  let sig_r, sig_w = Unix.pipe () in
  Unix.set_nonblock sig_r;
  Unix.set_nonblock sig_w;
  {
    cfg;
    listen_fd;
    sig_r;
    sig_w;
    clients = Hashtbl.create 16;
    workers = Hashtbl.create 16;
    pending = [];
    inflight = Hashtbl.create 64;
    cache = Hashtbl.create 256;
    cache_fifo = Queue.create ();
    text_index = Hashtbl.create 256;
    stats =
      {
        st_received = 0;
        st_completed = 0;
        st_cache_hits = 0;
        st_cache_misses = 0;
        st_coalesced = 0;
        st_crashes = 0;
        st_retries = 0;
        st_budget_kills = 0;
        st_oom_kills = 0;
        st_shed = 0;
        st_rejected = 0;
        st_chaos_kills = 0;
      };
    rng = Rand64.create cfg.seed;
    started = now ();
    draining = false;
    mem_poll_at = 0.0;
    avg_job_s = 0.1;
  }

let listen_address t =
  match Unix.getsockname t.listen_fd with
  | Unix.ADDR_UNIX p -> Unix_path p
  | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)

let run ?(on_ready = fun (_ : t) -> ()) cfg =
  let t = create cfg in
  (* every forked worker inherits the elaborated libraries copy-on-write:
     characterize each family exactly once, in the daemon, up front *)
  List.iter (fun f -> ignore (Cell_lib.cached f)) cfg.warm_families;
  let request_drain _ =
    t.draining <- true;
    try ignore (Unix.write_substring t.sig_w "d" 0 1)
    with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_drain);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_drain);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  log t "listening (%s), %d workers, queue high-water %d"
    (match cfg.listen with
    | Unix_path p -> "unix:" ^ p
    | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p)
    cfg.workers cfg.queue_high_water;
  on_ready t;
  let finished () =
    t.draining && t.pending = [] && Hashtbl.length t.workers = 0
  in
  while not (finished ()) do
    let reads =
      t.sig_r
      :: (if t.draining then [] else [ t.listen_fd ])
      @ Hashtbl.fold (fun fd _ acc -> fd :: acc) t.clients []
      @ Hashtbl.fold (fun _ w acc -> w.w_rfd :: acc) t.workers []
    in
    let writes =
      Hashtbl.fold
        (fun fd c acc -> if c.c_out <> "" then fd :: acc else acc)
        t.clients []
    in
    (match Unix.select reads writes [] (next_timeout t) with
    | rs, ws, _ ->
        if List.mem t.sig_r rs then drain_signal_pipe t;
        if (not t.draining) && List.mem t.listen_fd rs then accept_clients t;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt t.clients fd with
            | Some c -> client_flush t c
            | None -> ())
          ws;
        (* workers first: their results may enqueue client replies *)
        Hashtbl.fold (fun _ w acc -> w :: acc) t.workers []
        |> List.iter (fun w ->
               if List.mem w.w_rfd rs then handle_worker_readable t w);
        List.iter
          (fun fd ->
            if fd <> t.sig_r && fd <> t.listen_fd then
              match Hashtbl.find_opt t.clients fd with
              | Some c -> handle_client_readable t c
              | None -> ())
          rs
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    enforce_budgets t;
    schedule t
  done;
  (* graceful exit: flush what can be flushed, then close everything *)
  Hashtbl.fold (fun _ c acc -> c :: acc) t.clients []
  |> List.iter (fun c ->
         client_flush t c;
         client_close t c);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match cfg.listen with
  | Unix_path p -> (try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  log t "drained: %d completed, %d cache hits, %d crashes, %d retries"
    t.stats.st_completed t.stats.st_cache_hits t.stats.st_crashes
    t.stats.st_retries;
  Printf.eprintf "[flowd] final %s\n%!" (status_json t)
