(** Worker-side job execution: parsing, cache keying, flow run, result
    rendering.  Pure compute — process machinery lives in {!Server}. *)

exception Reject of string
(** Deterministic client error (malformed circuit, bad script): reported
    as a [parse-error] reply and never retried. *)

val parse_circuit : Proto.submit -> Aig.t
(** Raises {!Reject}. *)

val parse_script : Proto.submit -> Flow.step list
(** Raises {!Reject}. *)

val flow_config : base:Flow.config -> Proto.submit -> Flow.config
(** The submitted overrides resolved against the server defaults, with
    isolation forced on and within-job parallelism off. *)

val cache_key :
  config:Flow.config -> steps:Flow.step list -> aig:Aig.t -> Proto.submit ->
  string
(** Content-addressed result key: MD5 over the canonical BLIF print of
    the parsed AIG (structure, not request text), the canonical script,
    and the resolved parameters — so textual variants of one job, or an
    explicit parameter equal to the server default, share an entry. *)

val result_json :
  config:Flow.config -> steps:Flow.step list -> aig:Aig.t -> Proto.submit ->
  string
(** Runs the flow (isolated) and renders the deterministic result object:
    same job in, byte-identical JSON out — the property the result cache,
    retry logic, and the chaos harness all rest on. *)
