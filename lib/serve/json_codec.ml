(* Minimal JSON for the daemon's line-delimited wire protocol.

   The repo already *prints* JSON in several places (flow metrics, the
   bench harnesses); the daemon is the first consumer that must also
   *parse* untrusted JSON off a socket, so this codec is written for
   robustness first: a recursive-descent parser over a string with a
   depth bound (a 10 MB request of "[[[[..." must not blow the stack),
   returning [Error _] instead of raising on any malformed input.

   Printing is deterministic: object fields keep the order given,
   integral numbers print without a decimal point, and escaping matches
   the JSON the rest of the repo emits. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape_to b s =
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else "null" (* JSON has no inf/nan; the protocol never produces them *)

let rec add_to b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (num_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      escape_to b s;
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          add_to b x)
        xs;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_to b k;
          Buffer.add_string b "\":";
          add_to b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add_to b v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Bad of string

let max_depth = 128

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun m -> raise (Bad (Printf.sprintf "%s at byte %d" m !pos))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %c, got %c" c c'
    | None -> fail "expected %c, got end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal"
  in
  let utf8_add b code =
    (* decode \uXXXX escapes to UTF-8; unpaired surrogates become U+FFFD *)
    let code =
      if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code
    in
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape %s" hex
             in
             utf8_add b code
         | c -> fail "bad escape \\%c" c);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail "bad number %S" text
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting deeper than %d" max_depth;
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_ = function
  | Num f when Float.is_integer f && Float.abs f <= 1e15 ->
      Some (int_of_float f)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let arr = function Arr xs -> Some xs | _ -> None
let obj = function Obj fields -> Some fields | _ -> None

let mem_str j key = Option.bind (member key j) str
let mem_int j key = Option.bind (member key j) int_
let mem_bool j key = Option.bind (member key j) bool_
