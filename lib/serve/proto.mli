(** The flowd wire protocol: one JSON object per ['\n']-terminated line in
    both directions (see {!parse_request} / the reply builders).

    The [result] object of an [ok] reply is a pure function of the job;
    delivery metadata that may differ between runs of the same job (cache
    outcome, retry count) lives only in the envelope, so byte-comparing
    [result] across runs is meaningful — the chaos harness and
    [serve_bench] rely on this. *)

type format = Blif | Bench

val format_name : format -> string
val format_of_name : string -> format option

type params = {
  cut_size : int option;
  timing : bool option;
  seed : int64 option;
  verify_rounds : int option;
  conflict_budget : int option;
  fault_rounds : int option;
  max_cuts : int option;
}
(** Per-job overrides of the daemon's flow defaults; unset fields take the
    server configuration.  Every field is part of the result-cache key. *)

val default_params : params
val params_to_json : params -> Json_codec.t

type submit = {
  sub_id : string;       (** echoed in the reply envelope, not cached *)
  sub_name : string;     (** circuit tag used in reports (cache-keyed) *)
  sub_format : format;
  sub_circuit : string;  (** BLIF or BENCH text *)
  sub_script : string;
  sub_family : Cell_netlist.family;
  sub_params : params;
  sub_netlist : bool;    (** include the mapped BLIF in the result *)
}

type request =
  | Submit of submit
  | Status
  | Ping
  | Drain

type error_kind =
  | Bad_request   (** malformed request line — deterministic, not retried *)
  | Parse_failed  (** circuit or script failed to parse — not retried *)
  | Job_crashed   (** worker died; retried with backoff up to the bound *)
  | Job_budget    (** wall-clock budget SIGKILL *)
  | Job_oom       (** memory budget SIGKILL *)
  | Overloaded    (** queue above the high-water mark; see [retry_after] *)
  | Draining      (** daemon is shutting down gracefully *)
  | Oversized     (** request line exceeded the configured limit *)

val error_kind_name : error_kind -> string

val parse_request : string -> (request, string) result
(** Never raises; any malformed line is [Error reason]. *)

val request_id : string -> string
(** Best-effort [id] extraction from a line whose request failed
    validation, so the error reply can still be correlated. *)

val submit_to_line : submit -> string
val simple_to_line : string -> string
(** [simple_to_line op] for the bodyless ops [status], [ping], [drain]. *)

val ok_reply :
  id:string -> cached:bool -> attempts:int -> result_json:string -> string

val error_reply :
  ?attempts:int ->
  ?retry_after:float ->
  id:string ->
  kind:error_kind ->
  string ->
  string

val pong_reply : id:string -> string
