(* The flowd wire protocol: one JSON object per '\n'-terminated line, in
   both directions.  Requests:

     {"op":"submit","id":"j1","format":"blif","circuit":"...",
      "script":"synth(light); map; sta; lint","family":"static",
      "name":"add16","params":{"cut_size":6,"timing":true,...},
      "netlist":false}
     {"op":"status"}   {"op":"ping"}   {"op":"drain"}

   Terminal replies carry the request's [id] plus a [status]:

     {"id":"j1","status":"ok","cached":false,"attempts":1,"result":{...}}
     {"id":"j1","status":"error","kind":"job-crashed","message":...,
      "attempts":3}

   The [result] object is a pure function of the job (circuit structure,
   script, family, params, name) — delivery metadata that may legitimately
   differ between runs (cache outcome, retry count) lives only in the
   envelope, so byte-comparing [result] across runs is meaningful. *)

type format = Blif | Bench

let format_name = function Blif -> "blif" | Bench -> "bench"

let format_of_name = function
  | "blif" -> Some Blif
  | "bench" -> Some Bench
  | _ -> None

(* Per-job overrides of the daemon's flow defaults.  Unset fields take the
   server's configuration; every field is part of the cache key. *)
type params = {
  cut_size : int option;
  timing : bool option;
  seed : int64 option;
  verify_rounds : int option;
  conflict_budget : int option;
  fault_rounds : int option;
  max_cuts : int option;
}

let default_params =
  {
    cut_size = None;
    timing = None;
    seed = None;
    verify_rounds = None;
    conflict_budget = None;
    fault_rounds = None;
    max_cuts = None;
  }

type submit = {
  sub_id : string;                    (* echoed in the reply envelope *)
  sub_name : string;                  (* circuit tag used in reports *)
  sub_format : format;
  sub_circuit : string;               (* BLIF or BENCH text *)
  sub_script : string;
  sub_family : Cell_netlist.family;
  sub_params : params;
  sub_netlist : bool;                 (* include the mapped BLIF in the result *)
}

type request =
  | Submit of submit
  | Status
  | Ping
  | Drain

(* Everything the supervisor can say about a job that did not finish.
   [Bad_request] and [Parse_error] are deterministic client errors and
   never retried; [Crashed] is transient (the worker died — retried with
   backoff up to the attempt bound); the budget kinds are typed verdicts
   of the supervisor itself. *)
type error_kind =
  | Bad_request
  | Parse_failed                      (* circuit or script failed to parse *)
  | Job_crashed
  | Job_budget                        (* wall-clock budget SIGKILL *)
  | Job_oom                           (* memory budget SIGKILL *)
  | Overloaded                        (* queue above the high-water mark *)
  | Draining
  | Oversized

let error_kind_name = function
  | Bad_request -> "bad-request"
  | Parse_failed -> "parse-error"
  | Job_crashed -> "job-crashed"
  | Job_budget -> "job-budget"
  | Job_oom -> "job-oom"
  | Overloaded -> "overloaded"
  | Draining -> "draining"
  | Oversized -> "oversized"

(* ---------------- request parsing (server side) ---------------- *)

let params_of_json j =
  let i k = Json_codec.mem_int j k in
  let b k = Json_codec.mem_bool j k in
  {
    cut_size = i "cut_size";
    timing = b "timing";
    seed = Option.map Int64.of_int (i "seed");
    verify_rounds = i "verify_rounds";
    conflict_budget = i "conflict_budget";
    fault_rounds = i "fault_rounds";
    max_cuts = i "max_cuts";
  }

let parse_request line : (request, string) result =
  match Json_codec.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> (
      match Json_codec.mem_str j "op" with
      | None -> Error "missing op field"
      | Some "status" -> Ok Status
      | Some "ping" -> Ok Ping
      | Some "drain" -> Ok Drain
      | Some "submit" -> (
          let id = Option.value (Json_codec.mem_str j "id") ~default:"" in
          match
            ( Json_codec.mem_str j "circuit",
              Option.value (Json_codec.mem_str j "format") ~default:"blif" )
          with
          | None, _ -> Error "submit: missing circuit field"
          | Some _, fmt when format_of_name fmt = None ->
              Error (Printf.sprintf "submit: unknown format %S" fmt)
          | Some circuit, fmt ->
              let family_name =
                Option.value (Json_codec.mem_str j "family") ~default:"static"
              in
              (match Cli_common.family_of_name family_name with
              | None ->
                  Error (Printf.sprintf "submit: unknown family %S" family_name)
              | Some family ->
                  let params =
                    match Json_codec.member "params" j with
                    | Some p -> params_of_json p
                    | None -> default_params
                  in
                  Ok
                    (Submit
                       {
                         sub_id = id;
                         sub_name =
                           Option.value (Json_codec.mem_str j "name")
                             ~default:"job";
                         sub_format = Option.get (format_of_name fmt);
                         sub_circuit = circuit;
                         sub_script =
                           Option.value (Json_codec.mem_str j "script")
                             ~default:"synth(light); map; sta; lint";
                         sub_family = family;
                         sub_params = params;
                         sub_netlist =
                           Option.value (Json_codec.mem_bool j "netlist")
                             ~default:false;
                       })))
      | Some op -> Error (Printf.sprintf "unknown op %S" op))

(* the request id of a line that failed to parse as a request, so error
   replies can still be correlated when the JSON itself was well-formed *)
let request_id line =
  match Json_codec.parse line with
  | Ok j -> Option.value (Json_codec.mem_str j "id") ~default:""
  | Error _ -> ""

(* ---------------- request printing (client side) ---------------- *)

let params_to_json p =
  let num i = Json_codec.Num (float_of_int i) in
  Json_codec.Obj
    (List.filter_map Fun.id
       [
         Option.map (fun i -> ("cut_size", num i)) p.cut_size;
         Option.map (fun b -> ("timing", Json_codec.Bool b)) p.timing;
         Option.map
           (fun s -> ("seed", Json_codec.Num (Int64.to_float s)))
           p.seed;
         Option.map (fun i -> ("verify_rounds", num i)) p.verify_rounds;
         Option.map (fun i -> ("conflict_budget", num i)) p.conflict_budget;
         Option.map (fun i -> ("fault_rounds", num i)) p.fault_rounds;
         Option.map (fun i -> ("max_cuts", num i)) p.max_cuts;
       ])

let submit_to_line (s : submit) =
  Json_codec.to_string
    (Json_codec.Obj
       [
         ("op", Json_codec.Str "submit");
         ("id", Json_codec.Str s.sub_id);
         ("name", Json_codec.Str s.sub_name);
         ("format", Json_codec.Str (format_name s.sub_format));
         ("family", Json_codec.Str (Cli_common.family_arg_name s.sub_family));
         ("script", Json_codec.Str s.sub_script);
         ("params", params_to_json s.sub_params);
         ("netlist", Json_codec.Bool s.sub_netlist);
         ("circuit", Json_codec.Str s.sub_circuit);
       ])

let simple_to_line op = Printf.sprintf "{\"op\":%S}" op

(* ---------------- reply printing (server side) ---------------- *)

(* Replies embed the result as a pre-rendered JSON string (the worker
   computed and cached it); the envelope is assembled around it. *)
let ok_reply ~id ~cached ~attempts ~result_json =
  Printf.sprintf "{\"id\":%s,\"status\":\"ok\",\"cached\":%b,\"attempts\":%d,\"result\":%s}"
    (Json_codec.to_string (Json_codec.Str id))
    cached attempts result_json

let error_reply ?(attempts = 0) ?retry_after ~id ~kind message =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"id\":%s,\"status\":\"error\",\"kind\":\"%s\",\"message\":%s"
    (Json_codec.to_string (Json_codec.Str id))
    (error_kind_name kind)
    (Json_codec.to_string (Json_codec.Str message));
  if attempts > 0 then Printf.bprintf b ",\"attempts\":%d" attempts;
  (match retry_after with
  | Some s -> Printf.bprintf b ",\"retry_after\":%s" (Json_codec.num_to_string s)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let pong_reply ~id =
  Printf.sprintf "{\"id\":%s,\"status\":\"ok\",\"result\":\"pong\"}"
    (Json_codec.to_string (Json_codec.Str id))
