(* Worker-side job execution: parse the submitted circuit, compute the
   content-addressed cache key, run the flow, render the deterministic
   result object.  Everything here is pure compute — process machinery
   (fork, pipes, budgets) lives in Server.

   The cache key is MD5 over
     (canonical BLIF print of the parsed AIG,   -- structure, not text
      canonical script print,                   -- "b;  rw" == "b; rw"
      the *resolved* flow parameters,           -- explicit param == default
      report name, netlist flag)
   so two textually different submissions of the same circuit, or an
   explicit parameter equal to the server default, hit the same entry —
   the Cell_lib.cached model lifted to whole synthesis results. *)

exception Reject of string
(* deterministic client error (bad circuit / bad script): never retried *)

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

let parse_circuit (sub : Proto.submit) =
  match sub.Proto.sub_format with
  | Proto.Blif -> (
      try Blif.of_string ~file:sub.Proto.sub_name sub.Proto.sub_circuit with
      | Parse_error.Error e -> reject "%s" (Parse_error.to_string e)
      | Failure m -> reject "%s" m)
  | Proto.Bench -> (
      try Bench_fmt.of_string ~file:sub.Proto.sub_name sub.Proto.sub_circuit
      with
      | Parse_error.Error e -> reject "%s" (Parse_error.to_string e)
      | Failure m -> reject "%s" m)

let parse_script (sub : Proto.submit) =
  match Flow.parse_script sub.Proto.sub_script with
  | Ok steps -> steps
  | Error msg -> reject "bad script: %s" msg

(* The submitted overrides resolved against the server's defaults.  Jobs
   always run isolated (a crashing pass must degrade to a diagnostic, not
   kill the worker with a nonzero exit that would look transient) and
   sequential (worker processes are the parallelism). *)
let flow_config ~(base : Flow.config) (sub : Proto.submit) =
  let p = sub.Proto.sub_params in
  let v dflt o = Option.value o ~default:dflt in
  {
    base with
    Flow.family = sub.Proto.sub_family;
    cut_size = v base.Flow.cut_size p.Proto.cut_size;
    max_cuts = (match p.Proto.max_cuts with Some _ as m -> m | None -> base.Flow.max_cuts);
    timing = v base.Flow.timing p.Proto.timing;
    seed = v base.Flow.seed p.Proto.seed;
    verify_rounds = v base.Flow.verify_rounds p.Proto.verify_rounds;
    conflict_budget =
      (match p.Proto.conflict_budget with
      | Some _ as b -> b
      | None -> base.Flow.conflict_budget);
    fault_rounds = v base.Flow.fault_rounds p.Proto.fault_rounds;
    isolate = true;
    jobs = 1;
  }

let cache_key ~(config : Flow.config) ~steps ~aig (sub : Proto.submit) =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Blif.to_string aig);
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_char b '\000';
                                  Buffer.add_string b s) fmt in
  add "script=%s" (Flow.script_to_string steps);
  add "family=%s" (Cli_common.family_arg_name config.Flow.family);
  add "cut=%d" config.Flow.cut_size;
  add "max_cuts=%s"
    (match config.Flow.max_cuts with None -> "-" | Some n -> string_of_int n);
  add "timing=%b" config.Flow.timing;
  add "po=%g" config.Flow.po_fanout;
  add "unit=%b" config.Flow.unit_loads;
  add "seed=%Ld" config.Flow.seed;
  add "verify_rounds=%d" config.Flow.verify_rounds;
  add "conflict_budget=%s"
    (match config.Flow.conflict_budget with
    | None -> "-"
    | Some n -> string_of_int n);
  add "fault_rounds=%d" config.Flow.fault_rounds;
  add "name=%s" sub.Proto.sub_name;
  add "netlist=%b" sub.Proto.sub_netlist;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---------------- the result object ---------------- *)

let render_diag d = Format.asprintf "%a" Diag.pp d

let result_json ~(config : Flow.config) ~steps ~aig (sub : Proto.submit) =
  let ctx0 =
    Flow.init ~family:config.Flow.family ~name:sub.Proto.sub_name aig
  in
  let ctx, _samples = Flow.run ~config steps ctx0 in
  let e, w, i = Diag.count ctx.Flow.diags in
  let open Json_codec in
  let fnum f = Num f in
  let mapped_fields =
    match ctx.Flow.mapped with
    | None -> []
    | Some m ->
        let s = Mapped.stats m in
        [
          ("gates", Num (float_of_int s.Mapped.gates));
          ("area", fnum s.Mapped.area);
          ("levels", Num (float_of_int s.Mapped.levels));
          ("norm_delay", fnum s.Mapped.norm_delay);
          ("abs_ps", fnum s.Mapped.abs_delay_ps);
        ]
  in
  let sta_fields =
    match ctx.Flow.sta with
    | None -> []
    | Some sta -> [ ("sta_ps", fnum (Sta.abs_delay_ps sta)) ]
  in
  let verified =
    match ctx.Flow.verified with
    | None -> Null
    | Some ok -> Bool ok
  in
  let netlist_fields =
    match (sub.Proto.sub_netlist, ctx.Flow.mapped) with
    | true, Some m ->
        [ ("netlist", Str (Blif.mapped_to_string ~model:sub.Proto.sub_name m)) ]
    | _ -> []
  in
  let crashed =
    List.exists
      (fun (d : Diag.t) -> d.Diag.rule = "flow-pass-crash")
      ctx.Flow.diags
  in
  to_string
    (Obj
       ([
          ("name", Str sub.Proto.sub_name);
          ("family", Str (Cli_common.family_arg_name config.Flow.family));
          ("script", Str (Flow.script_to_string steps));
          ("ands", Num (float_of_int (Aig.num_ands ctx.Flow.aig)));
          ("depth", Num (float_of_int (Aig.depth ctx.Flow.aig)));
        ]
       @ mapped_fields @ sta_fields
       @ [
           ("verified", verified);
           ("pass_crashed", Bool crashed);
           ("errors", Num (float_of_int e));
           ("warnings", Num (float_of_int w));
           ("infos", Num (float_of_int i));
           ("line", Str (Flow.summary_line ctx));
           ("diags", Arr (List.map (fun d -> Str (render_diag d)) ctx.Flow.diags));
         ]
       @ netlist_fields))
