type verdict =
  | Equivalent
  | Inequivalent of bool array
  | Undecided

type engine = Cdcl | Reference

exception Undecided_budget

let simulate_differs a b rng =
  let n = Aig.num_inputs a in
  let words = Array.init n (fun _ -> Rand64.next rng) in
  let oa = Aig.simulate_outputs a words in
  let ob = Aig.simulate_outputs b words in
  let diff = ref (-1) in
  Array.iteri
    (fun i w -> if !diff < 0 && w <> ob.(i) then diff := i)
    oa;
  if !diff < 0 then None
  else begin
    (* Find a differing bit position and decode the assignment. *)
    let w = Int64.logxor oa.(!diff) ob.(!diff) in
    let rec bitpos k =
      if Int64.(logand (shift_right_logical w k) 1L) <> 0L then k
      else bitpos (k + 1)
    in
    let k = bitpos 0 in
    Some
      (Array.init n (fun i ->
           Int64.(logand (shift_right_logical words.(i) k) 1L) <> 0L))
  end

(* The SAT side of the check, generic over the solver engine: build the
   miter (shared inputs, per-output XOR, "some output differs") and run
   one solve. *)
module Miter (E : Solver.CORE) = struct
  module C = Cnf.Make (E)

  let check ~conflict_budget ~stats a b =
    let s = E.create () in
    let inputs = Array.init (Aig.num_inputs a) (fun _ -> E.new_var s) in
    let va = C.encode_shared s a ~inputs in
    let vb = C.encode_shared s b ~inputs in
    (* xor_i <-> (out_a_i <> out_b_i); at least one xor_i true *)
    let xors =
      Array.init (Aig.num_outputs a) (fun i ->
          let la = C.lit_of va (snd (Aig.output a i)) in
          let lb = C.lit_of vb (snd (Aig.output b i)) in
          let x = Solver.pos (E.new_var s) in
          let nx = Solver.lit_not x in
          let nla = Solver.lit_not la and nlb = Solver.lit_not lb in
          E.add_clause s [ nx; la; lb ];
          E.add_clause s [ nx; nla; nlb ];
          E.add_clause s [ x; la; nlb ];
          E.add_clause s [ x; nla; lb ];
          x)
    in
    E.add_clause s (Array.to_list xors);
    let r = E.solve ~conflict_budget s in
    (match stats with
    | Some acc -> Solver.stats_accum acc (E.stats_of s)
    | None -> ());
    match r with
    | Solver.Unsat -> Equivalent
    | Solver.Unknown -> Undecided
    | Solver.Sat -> Inequivalent (Array.map (E.model_value s) inputs)
end

module Miter_cdcl = Miter (Solver)
module Miter_ref = Miter (Solver.Reference)

let check ?(engine = Cdcl) ?(sim_rounds = 16) ?(conflict_budget = max_int)
    ?(seed = 42L) ?stats a b =
  if Aig.num_inputs a <> Aig.num_inputs b then
    invalid_arg "Cec.check: input counts differ";
  if Aig.num_outputs a <> Aig.num_outputs b then
    invalid_arg "Cec.check: output counts differ";
  let rng = Rand64.create seed in
  let rec sim k =
    if k = 0 then None else
    match simulate_differs a b rng with
    | Some cex -> Some cex
    | None -> sim (k - 1)
  in
  match sim sim_rounds with
  | Some cex -> Inequivalent cex
  | None -> (
      match engine with
      | Cdcl -> Miter_cdcl.check ~conflict_budget ~stats a b
      | Reference -> Miter_ref.check ~conflict_budget ~stats a b)

let equivalent ?engine ?conflict_budget a b =
  match check ?engine ?conflict_budget a b with
  | Equivalent -> true
  | Inequivalent _ -> false
  | Undecided -> raise Undecided_budget
