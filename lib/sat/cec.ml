type verdict =
  | Equivalent
  | Inequivalent of bool array
  | Undecided

let simulate_differs a b rng =
  let n = Aig.num_inputs a in
  let words = Array.init n (fun _ -> Rand64.next rng) in
  let oa = Aig.simulate_outputs a words in
  let ob = Aig.simulate_outputs b words in
  let diff = ref (-1) in
  Array.iteri
    (fun i w -> if !diff < 0 && w <> ob.(i) then diff := i)
    oa;
  if !diff < 0 then None
  else begin
    (* Find a differing bit position and decode the assignment. *)
    let w = Int64.logxor oa.(!diff) ob.(!diff) in
    let rec bitpos k =
      if Int64.(logand (shift_right_logical w k) 1L) <> 0L then k
      else bitpos (k + 1)
    in
    let k = bitpos 0 in
    Some
      (Array.init n (fun i ->
           Int64.(logand (shift_right_logical words.(i) k) 1L) <> 0L))
  end

let check ?(sim_rounds = 16) ?(conflict_budget = max_int) ?(seed = 42L) a b =
  if Aig.num_inputs a <> Aig.num_inputs b then
    invalid_arg "Cec.check: input counts differ";
  if Aig.num_outputs a <> Aig.num_outputs b then
    invalid_arg "Cec.check: output counts differ";
  let rng = Rand64.create seed in
  let rec sim k =
    if k = 0 then None else
    match simulate_differs a b rng with
    | Some cex -> Some cex
    | None -> sim (k - 1)
  in
  match sim sim_rounds with
  | Some cex -> Inequivalent cex
  | None ->
      let s = Solver.create () in
      let inputs =
        Array.init (Aig.num_inputs a) (fun _ -> Solver.new_var s)
      in
      let va = Cnf.encode_shared s a ~inputs in
      let vb = Cnf.encode_shared s b ~inputs in
      (* xor_i <-> (out_a_i <> out_b_i); at least one xor_i true *)
      let xors =
        Array.init (Aig.num_outputs a) (fun i ->
            let la = Cnf.lit_of va (snd (Aig.output a i)) in
            let lb = Cnf.lit_of vb (snd (Aig.output b i)) in
            let x = Solver.pos (Solver.new_var s) in
            let nx = Solver.lit_not x in
            let nla = Solver.lit_not la and nlb = Solver.lit_not lb in
            Solver.add_clause s [ nx; la; lb ];
            Solver.add_clause s [ nx; nla; nlb ];
            Solver.add_clause s [ x; la; nlb ];
            Solver.add_clause s [ x; nla; lb ];
            x)
      in
      Solver.add_clause s (Array.to_list xors);
      (match Solver.solve ~conflict_budget s with
      | Solver.Unsat -> Equivalent
      | Solver.Unknown -> Undecided
      | Solver.Sat ->
          let cex =
            Array.map (fun v -> Solver.model_value s v) inputs
          in
          Inequivalent cex)

let equivalent ?conflict_budget a b =
  match check ?conflict_budget a b with
  | Equivalent -> true
  | Inequivalent _ -> false
  | Undecided -> failwith "Cec.equivalent: undecided"
