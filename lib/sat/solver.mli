(** CDCL SAT solving.

    Two engines behind one signature ({!CORE}):

    - the default engine (this module's top level): two-watched-literal
      propagation with blocker literals, clauses in a flat int arena,
      VSIDS branching, phase saving, Luby restarts, an LBD-scored learned
      clause database with periodic compacting GC, and {e incremental
      solving under assumptions} with final-conflict (unsat-core)
      extraction;
    - {!Reference}: the original seed solver, kept verbatim for
      differential testing (like [Cut.Reference]); assumptions are
      implemented by monolithic re-solve, so it also defines what
      "incremental ≡ monolithic" means.

    Literal encoding: variable [v] yields the positive literal [2*v] and
    the negative literal [2*v+1]. *)

type result = Sat | Unsat | Unknown

(** {1 Literals} *)

val pos : int -> int
(** Positive literal of a variable. *)

val neg : int -> int
(** Negative literal of a variable. *)

val lit_not : int -> int
val lit_var : int -> int

val lit_sign : int -> bool
(** [true] for positive literals. *)

(** {1 Aggregated statistics}

    A plain mutable accumulator consumers thread through verification
    passes ([Cec], [Map_lint], [Gate_fault]) and the flow metrics.
    Accumulate each solver instance exactly once, after its last
    [solve], with [stats_accum acc (S.stats_of s)]. *)

type stats = {
  mutable sat_solves : int;        (** [solve] calls *)
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable sat_restarts : int;
  mutable sat_learned : int;       (** learned clauses stored in the DB *)
}

val stats_create : unit -> stats
val stats_accum : stats -> stats -> unit
(** [stats_accum dst src] adds [src]'s counters into [dst]. *)

(** {1 The common engine signature} *)

module type CORE = sig
  type t

  val create : unit -> t

  val new_var : t -> int
  (** Returns the new variable's index. *)

  val num_vars : t -> int

  val add_clause : t -> int list -> unit
  (** Adding the empty clause (or clauses that simplify to it at level 0)
      makes the instance trivially unsatisfiable. *)

  val solve : ?assumptions:int list -> ?conflict_budget:int -> t -> result
  (** Runs the search under the given assumption literals, optionally
      bounded by a number of conflicts ([Unknown] when exhausted).  May be
      called repeatedly, with different assumptions and after adding more
      clauses (incremental use).  [Unsat] under non-empty assumptions does
      {e not} poison the solver: a subsequent call with different
      assumptions can be [Sat]; use {!unsat_core} to retrieve the failed
      assumption subset. *)

  val model_value : t -> int -> bool
  (** Value of a variable in the model found by the last [Sat] answer. *)

  val unsat_core : t -> int list
  (** After [solve ~assumptions] returned [Unsat]: a subset of the
      assumption literals whose conjunction with the clauses is
      unsatisfiable ([[]] when the clauses alone are unsatisfiable).
      Not necessarily minimal. *)

  val stats_of : t -> stats
  (** Snapshot of the solver's cumulative counters. *)

  val num_conflicts : t -> int
  val num_decisions : t -> int
  val num_propagations : t -> int
  val num_restarts : t -> int
  val num_learned : t -> int
end

(** {1 The default engine} *)

type t

val create : unit -> t
val new_var : t -> int
val num_vars : t -> int
val add_clause : t -> int list -> unit
val solve : ?assumptions:int list -> ?conflict_budget:int -> t -> result
val model_value : t -> int -> bool
val unsat_core : t -> int list
val stats_of : t -> stats
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int
val num_restarts : t -> int
val num_learned : t -> int

val num_gc_runs : t -> int
(** Learned-database compactions performed so far. *)

(** {1 The seed engine} *)

module Reference : CORE
