(** Tseitin encoding of AIGs into CNF, generic over the solver engine,
    plus DIMACS import/export for reproducing solver behaviour outside
    the flow. *)

type formula = {
  fm_vars : int;                (** number of variables *)
  fm_clauses : int list list;   (** clauses of solver literals *)
}
(** A plain clause list, the exchange format between DIMACS text and
    either solver engine. *)

val lit_of : int array -> Aig.lit -> int
(** [lit_of vars l] is the solver literal for AIG literal [l], given the
    node-to-variable map returned by [encode].  Pure literal arithmetic —
    valid for every engine. *)

(** {1 Engine-generic encoding} *)

module type S = sig
  type solver

  val lit_of : int array -> Aig.lit -> int

  val encode : solver -> Aig.t -> int array
  (** Adds one solver variable per AIG node (constant node included,
      clamped to false) and the three AND-gate clauses per node.  Returns
      the node-indexed variable map.  Can be called for several graphs on
      one solver; to share inputs use {!encode_shared}. *)

  val encode_shared : solver -> Aig.t -> inputs:int array -> int array
  (** Like {!encode} but uses the given solver variables for the primary
      inputs ([inputs.(i)] for input [i]). *)

  val add_formula : solver -> formula -> unit
  (** Creates variables up to [fm_vars] (if the solver has fewer) and adds
      every clause. *)
end

module Make (E : Solver.CORE) : S with type solver = E.t

(** The default instance, over the default engine. *)

val encode : Solver.t -> Aig.t -> int array
val encode_shared : Solver.t -> Aig.t -> inputs:int array -> int array
val add_formula : Solver.t -> formula -> unit

(** {1 DIMACS} *)

val to_dimacs : formula -> string
(** Standard DIMACS CNF: [p cnf vars clauses] header, one 0-terminated
    clause per line, variable [v] (internal) printed as [v+1]. *)

val of_dimacs : string -> (formula, string) result
(** Parses DIMACS CNF text ([c] comment lines and a trailing [%] section
    tolerated).  Literals out of the header's variable range, a missing
    header or trailing garbage are reported as [Error _]. *)
