(* Two CDCL solvers behind the CORE signature.

   The default engine stores clauses in a single int arena as
   [header; size; lit_0; ...; lit_{size-1}], referred to by the offset of
   the header word.  The header packs [(lbd lsl 1) lor learned]; the first
   two literals (offsets +2 and +3) are the watches.  Watcher lists are
   stride-2 int vectors of [cref; blocker] pairs: a watcher whose blocker
   literal is already true is skipped without touching the arena.  Learned
   clauses are LBD-scored and periodically garbage-collected by compacting
   the arena.  [solve ~assumptions] follows MiniSat: assumptions are
   replayed as the first decision levels on every (re)start, an already
   true assumption opens a dummy level, and a false one triggers
   final-conflict analysis yielding the unsat core.

   [Reference] is the seed solver, kept verbatim (plus restart/learned
   counters) for differential testing; it implements assumptions by
   monolithic re-solve over a recorded clause list. *)

type result = Sat | Unsat | Unknown

type stats = {
  mutable sat_solves : int;
  mutable sat_conflicts : int;
  mutable sat_decisions : int;
  mutable sat_propagations : int;
  mutable sat_restarts : int;
  mutable sat_learned : int;
}

let stats_create () =
  {
    sat_solves = 0;
    sat_conflicts = 0;
    sat_decisions = 0;
    sat_propagations = 0;
    sat_restarts = 0;
    sat_learned = 0;
  }

let stats_accum dst src =
  dst.sat_solves <- dst.sat_solves + src.sat_solves;
  dst.sat_conflicts <- dst.sat_conflicts + src.sat_conflicts;
  dst.sat_decisions <- dst.sat_decisions + src.sat_decisions;
  dst.sat_propagations <- dst.sat_propagations + src.sat_propagations;
  dst.sat_restarts <- dst.sat_restarts + src.sat_restarts;
  dst.sat_learned <- dst.sat_learned + src.sat_learned

let pos v = 2 * v
let neg v = (2 * v) + 1
let lit_not l = l lxor 1
let lit_var l = l lsr 1
let lit_sign l = l land 1 = 0 (* true for positive *)

module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 16 0; n = 0 }

  let push v x =
    if v.n >= Array.length v.a then begin
      let b = Array.make (2 * Array.length v.a) 0 in
      Array.blit v.a 0 b 0 v.n;
      v.a <- b
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
  let size v = v.n
  let shrink v n = v.n <- n
  let clear v = v.n <- 0
end

module type CORE = sig
  type t

  val create : unit -> t
  val new_var : t -> int
  val num_vars : t -> int
  val add_clause : t -> int list -> unit
  val solve : ?assumptions:int list -> ?conflict_budget:int -> t -> result
  val model_value : t -> int -> bool
  val unsat_core : t -> int list
  val stats_of : t -> stats
  val num_conflicts : t -> int
  val num_decisions : t -> int
  val num_propagations : t -> int
  val num_restarts : t -> int
  val num_learned : t -> int
end

(* The reluctant-doubling (Luby) sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 … *)
let rec luby i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do incr k done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby (i - (1 lsl (!k - 1)) + 1)

(* ------------------------------------------------------------------ *)
(* The default engine                                                 *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable nvars : int;
  mutable assigns : int array;      (* var -> -1 unassigned / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : int array;       (* var -> clause offset, or -1 *)
  mutable activity : float array;
  mutable polarity : bool array;    (* saved phase *)
  mutable heap_pos : int array;     (* var -> heap index or -1 *)
  heap : Vec.t;                     (* binary max-heap of vars *)
  mutable arena : Vec.t;
  mutable watches : Vec.t array;    (* lit -> [cref; blocker; ...] pairs *)
  trail : Vec.t;
  trail_lim : Vec.t;
  mutable qhead : int;
  mutable var_inc : float;
  mutable seen : bool array;
  mutable stamp : int array;        (* level -> epoch, for LBD counting *)
  mutable stamp_epoch : int;
  learnts : Vec.t;                  (* crefs of learned clauses *)
  mutable max_learnts : int;
  mutable ok : bool;
  mutable core : int list;          (* failed assumptions of the last solve *)
  mutable solves : int;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learned_total : int;
  mutable gc_runs : int;
}

let create () =
  {
    nvars = 0;
    assigns = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    polarity = Array.make 16 false;
    heap_pos = Array.make 16 (-1);
    heap = Vec.create ();
    arena = Vec.create ();
    watches = Array.init 32 (fun _ -> Vec.create ());
    trail = Vec.create ();
    trail_lim = Vec.create ();
    qhead = 0;
    var_inc = 1.0;
    seen = Array.make 16 false;
    stamp = Array.make 17 (-1);
    stamp_epoch = 0;
    learnts = Vec.create ();
    max_learnts = 2000;
    ok = true;
    core = [];
    solves = 0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learned_total = 0;
    gc_runs = 0;
  }

let num_vars s = s.nvars
let num_conflicts s = s.conflicts
let num_decisions s = s.decisions
let num_propagations s = s.propagations
let num_restarts s = s.restarts
let num_learned s = s.learned_total
let num_gc_runs s = s.gc_runs
let unsat_core s = s.core

let stats_of s =
  {
    sat_solves = s.solves;
    sat_conflicts = s.conflicts;
    sat_decisions = s.decisions;
    sat_propagations = s.propagations;
    sat_restarts = s.restarts;
    sat_learned = s.learned_total;
  }

(* -1 unassigned, 0 false, 1 true *)
let lit_value s l =
  let a = s.assigns.(lit_var l) in
  if a < 0 then -1 else if lit_sign l then a else 1 - a

(* Heap operations (max-heap on activity). *)
let heap_less s v1 v2 = s.activity.(v1) > s.activity.(v2)

let heap_swap s i j =
  let a = Vec.get s.heap i and b = Vec.get s.heap j in
  Vec.set s.heap i b;
  Vec.set s.heap j a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_less s (Vec.get s.heap i) (Vec.get s.heap p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let n = Vec.size s.heap in
  let best = ref i in
  if l < n && heap_less s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_less s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.size s.heap - 1;
    heap_up s (Vec.size s.heap - 1)
  end

let heap_pop s =
  let top = Vec.get s.heap 0 in
  let last = Vec.get s.heap (Vec.size s.heap - 1) in
  Vec.shrink s.heap (Vec.size s.heap - 1);
  s.heap_pos.(top) <- -1;
  if Vec.size s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  top

let grow_arrays s =
  let n = Array.length s.assigns in
  let m = 2 * n in
  let ext def a =
    let b = Array.make m def in
    Array.blit a 0 b 0 n;
    b
  in
  s.assigns <- ext (-1) s.assigns;
  s.level <- ext 0 s.level;
  s.reason <- ext (-1) s.reason;
  s.activity <- Array.append s.activity (Array.make n 0.0);
  s.polarity <- Array.append s.polarity (Array.make n false);
  s.heap_pos <- ext (-1) s.heap_pos;
  s.seen <- Array.append s.seen (Array.make n false);
  let st = Array.make (m + 1) (-1) in
  Array.blit s.stamp 0 st 0 (Array.length s.stamp);
  s.stamp <- st;
  let w = Array.init (2 * m) (fun _ -> Vec.create ()) in
  Array.blit s.watches 0 w 0 (2 * n);
  s.watches <- w

let new_var s =
  if s.nvars >= Array.length s.assigns then grow_arrays s;
  let v = s.nvars in
  s.nvars <- v + 1;
  s.assigns.(v) <- -1;
  s.reason.(v) <- -1;
  s.heap_pos.(v) <- -1;
  heap_insert s v;
  v

let decision_level s = Vec.size s.trail_lim

let enqueue s l reason =
  s.assigns.(lit_var l) <- (if lit_sign l then 1 else 0);
  s.level.(lit_var l) <- decision_level s;
  s.reason.(lit_var l) <- reason;
  Vec.push s.trail l

(* Clause accessors: header at [cref], size at [cref+1], literals at
   [cref+2 .. cref+1+size].  The two watches are the literals in slots 0
   and 1 (offsets +2 and +3); [propagate] maintains the invariant that
   slot 0 holds the unit-implied literal of a reason clause. *)
let clause_size s cref = Vec.get s.arena (cref + 1)
let clause_lbd s cref = Vec.get s.arena cref lsr 1

(* Returns the offset of a conflicting clause, or -1. *)
let propagate s =
  let confl = ref (-1) in
  while !confl < 0 && s.qhead < Vec.size s.trail do
    let p = Vec.get s.trail s.qhead in
    s.qhead <- s.qhead + 1;
    s.propagations <- s.propagations + 1;
    let false_lit = lit_not p in
    let ws = s.watches.(false_lit) in
    let i = ref 0 and j = ref 0 in
    let n = Vec.size ws in
    while !i < n do
      let cref = Vec.get ws !i and blocker = Vec.get ws (!i + 1) in
      i := !i + 2;
      if !confl >= 0 || lit_value s blocker = 1 then begin
        (* conflict already found, or the blocker satisfies the clause:
           keep the watcher without touching the arena *)
        Vec.set ws !j cref;
        Vec.set ws (!j + 1) blocker;
        j := !j + 2
      end
      else begin
        let size = clause_size s cref in
        (* Ensure the false literal is in slot 1. *)
        if Vec.get s.arena (cref + 2) = false_lit then begin
          Vec.set s.arena (cref + 2) (Vec.get s.arena (cref + 3));
          Vec.set s.arena (cref + 3) false_lit
        end;
        let first = Vec.get s.arena (cref + 2) in
        if lit_value s first = 1 then begin
          (* satisfied: keep watching, remember [first] as the blocker *)
          Vec.set ws !j cref;
          Vec.set ws (!j + 1) first;
          j := !j + 2
        end
        else begin
          (* find a new watch *)
          let found = ref false in
          let k = ref 4 in
          while (not !found) && !k <= size + 1 do
            let l = Vec.get s.arena (cref + !k) in
            if lit_value s l <> 0 then begin
              Vec.set s.arena (cref + 3) l;
              Vec.set s.arena (cref + !k) false_lit;
              (* [l] is not false, hence [l <> false_lit]: never the list
                 being compacted. *)
              Vec.push s.watches.(l) cref;
              Vec.push s.watches.(l) first;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            (* unit or conflict *)
            Vec.set ws !j cref;
            Vec.set ws (!j + 1) first;
            j := !j + 2;
            if lit_value s first = 0 then confl := cref
            else enqueue s first cref
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

let var_bump s v =
  s.activity.(v) <- s.activity.(v) +. s.var_inc;
  if s.activity.(v) > 1e100 then begin
    for u = 0 to s.nvars - 1 do
      s.activity.(u) <- s.activity.(u) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

let var_decay s = s.var_inc <- s.var_inc /. 0.95

let attach s cref =
  let l0 = Vec.get s.arena (cref + 2) and l1 = Vec.get s.arena (cref + 3) in
  Vec.push s.watches.(l0) cref;
  Vec.push s.watches.(l0) l1;
  Vec.push s.watches.(l1) cref;
  Vec.push s.watches.(l1) l0

let push_clause s ~learned ~lbd lits =
  let cref = Vec.size s.arena in
  Vec.push s.arena ((lbd lsl 1) lor (if learned then 1 else 0));
  Vec.push s.arena (List.length lits);
  List.iter (Vec.push s.arena) lits;
  attach s cref;
  if learned then begin
    Vec.push s.learnts cref;
    s.learned_total <- s.learned_total + 1
  end;
  cref

let backtrack s lvl =
  if decision_level s > lvl then begin
    let bound = Vec.get s.trail_lim lvl in
    for i = Vec.size s.trail - 1 downto bound do
      let l = Vec.get s.trail i in
      let v = lit_var l in
      s.assigns.(v) <- -1;
      s.polarity.(v) <- lit_sign l;
      heap_insert s v
    done;
    Vec.shrink s.trail bound;
    Vec.shrink s.trail_lim lvl;
    s.qhead <- Vec.size s.trail
  end

(* Number of distinct decision levels among [lits] (the literal block
   distance of a learned clause), via an epoch-stamped per-level array. *)
let compute_lbd s lits =
  s.stamp_epoch <- s.stamp_epoch + 1;
  let e = s.stamp_epoch in
  let n = ref 0 in
  List.iter
    (fun l ->
      let lv = s.level.(lit_var l) in
      if s.stamp.(lv) <> e then begin
        s.stamp.(lv) <- e;
        incr n
      end)
    lits;
  !n

(* First-UIP conflict analysis.  Returns (learned clause with the asserting
   literal first, backtrack level). *)
let analyze s confl =
  let learned = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let idx = ref (Vec.size s.trail - 1) in
  let confl = ref confl in
  let continue = ref true in
  let btlevel = ref 0 in
  while !continue do
    let size = clause_size s !confl in
    (* slot 0 of a reason clause is the literal just resolved on: skip it *)
    let start = if !p < 0 then 2 else 3 in
    for k = start to size + 1 do
      let q = Vec.get s.arena (!confl + k) in
      let v = lit_var q in
      if (not s.seen.(v)) && s.level.(v) > 0 then begin
        s.seen.(v) <- true;
        var_bump s v;
        if s.level.(v) >= decision_level s then incr path
        else begin
          learned := q :: !learned;
          if s.level.(v) > !btlevel then btlevel := s.level.(v)
        end
      end
    done;
    (* find next literal to expand on the trail *)
    while not s.seen.(lit_var (Vec.get s.trail !idx)) do
      decr idx
    done;
    p := Vec.get s.trail !idx;
    decr idx;
    s.seen.(lit_var !p) <- false;
    decr path;
    if !path > 0 then confl := s.reason.(lit_var !p) else continue := false
  done;
  let clause = lit_not !p :: !learned in
  List.iter (fun l -> s.seen.(lit_var l) <- false) !learned;
  (clause, !btlevel)

(* Final-conflict analysis, MiniSat's [analyzeFinal]: assumption literal
   [p] is false under the current trail; walk the reason chains of its
   complement back to the assumption decisions responsible.  Returns the
   failed subset of the assumptions, including [p]. *)
let analyze_final s p =
  let core = ref [ p ] in
  if decision_level s > 0 then begin
    s.seen.(lit_var p) <- true;
    for i = Vec.size s.trail - 1 downto Vec.get s.trail_lim 0 do
      let q = Vec.get s.trail i in
      let v = lit_var q in
      if s.seen.(v) then begin
        (let r = s.reason.(v) in
         if r < 0 then
           (* a decision above level 0 is an assumption *)
           core := q :: !core
         else
           (* slot 0 is [q] itself: expand the rest of its reason *)
           let size = clause_size s r in
           for k = 3 to size + 1 do
             let l = Vec.get s.arena (r + k) in
             if s.level.(lit_var l) > 0 then s.seen.(lit_var l) <- true
           done);
        s.seen.(v) <- false
      end
    done;
    s.seen.(lit_var p) <- false
  end;
  !core

let add_clause s lits =
  if s.ok then begin
    (* Incremental use: undo any model left by a previous [solve]. *)
    backtrack s 0;
    (* Level-0 simplification: drop false literals, detect satisfied or
       tautological clauses, deduplicate. *)
    let lits = List.sort_uniq compare lits in
    let tauto =
      List.exists (fun l -> List.mem (lit_not l) lits) lits
      || List.exists (fun l -> lit_value s l = 1) lits
    in
    if not tauto then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      match lits with
      | [] -> s.ok <- false
      | [ l ] ->
          enqueue s l (-1);
          if propagate s >= 0 then s.ok <- false
      | lits -> ignore (push_clause s ~learned:false ~lbd:0 lits)
    end
  end

(* A learned clause is locked while it is the reason of its slot-0
   literal's assignment; locked clauses survive every reduction. *)
let locked s cref =
  let l0 = Vec.get s.arena (cref + 2) in
  lit_value s l0 = 1 && s.reason.(lit_var l0) = cref

(* Learned-database reduction + compacting arena GC.  Called at decision
   level 0 only (every clause's slot-0/1 watches are then valid to rebuild
   from, and no reason above level 0 exists to remap). *)
let reduce_db s =
  let glue_lbd = 3 in
  let keep = ref [] and cand = ref [] in
  for i = 0 to Vec.size s.learnts - 1 do
    let c = Vec.get s.learnts i in
    if clause_lbd s c <= glue_lbd || locked s c then keep := c :: !keep
    else cand := c :: !cand
  done;
  let cand = Array.of_list !cand in
  Array.sort
    (fun a b ->
      let c = compare (clause_lbd s a) (clause_lbd s b) in
      if c <> 0 then c else compare (clause_size s a) (clause_size s b))
    cand;
  let n_keep = Array.length cand / 2 in
  let removed = Hashtbl.create 64 in
  for i = n_keep to Array.length cand - 1 do
    Hashtbl.replace removed cand.(i) ()
  done;
  (* Compact the arena, building a forwarding table. *)
  let old = s.arena in
  let na = Vec.create () in
  let fwd = Hashtbl.create 256 in
  let cref = ref 0 in
  while !cref < Vec.size old do
    let header = Vec.get old !cref in
    let size = Vec.get old (!cref + 1) in
    if not (header land 1 = 1 && Hashtbl.mem removed !cref) then begin
      Hashtbl.replace fwd !cref (Vec.size na);
      Vec.push na header;
      Vec.push na size;
      for k = 2 to size + 1 do
        Vec.push na (Vec.get old (!cref + k))
      done
    end;
    cref := !cref + 2 + size
  done;
  s.arena <- na;
  (* Remap the learned list... *)
  let old_learnts = Array.init (Vec.size s.learnts) (Vec.get s.learnts) in
  Vec.clear s.learnts;
  Array.iter
    (fun c ->
      match Hashtbl.find_opt fwd c with
      | Some nc -> Vec.push s.learnts nc
      | None -> ())
    old_learnts;
  (* ... and the reasons of the (level-0) trail.  Removed clauses are
     never reasons — locked ones are kept — but be defensive. *)
  for i = 0 to Vec.size s.trail - 1 do
    let v = lit_var (Vec.get s.trail i) in
    let r = s.reason.(v) in
    if r >= 0 then
      s.reason.(v) <-
        (match Hashtbl.find_opt fwd r with Some nc -> nc | None -> -1)
  done;
  (* Rebuild the watcher lists from slots 0/1. *)
  for l = 0 to (2 * s.nvars) - 1 do
    Vec.clear s.watches.(l)
  done;
  let cref = ref 0 in
  while !cref < Vec.size s.arena do
    attach s !cref;
    cref := !cref + 2 + clause_size s !cref
  done;
  s.gc_runs <- s.gc_runs + 1;
  s.max_learnts <- s.max_learnts + (s.max_learnts / 2)

exception Finished of result

(* Pick the next decision.  The first [Array.length assumps] levels are
   the assumptions: an already true one opens a dummy level, a false one
   ends the search with the failed core. *)
let rec decide s assumps =
  let dl = decision_level s in
  if dl < Array.length assumps then begin
    let p = assumps.(dl) in
    match lit_value s p with
    | 1 ->
        (* dummy decision level *)
        Vec.push s.trail_lim (Vec.size s.trail);
        decide s assumps
    | 0 ->
        s.core <- analyze_final s p;
        raise (Finished Unsat)
    | _ ->
        s.decisions <- s.decisions + 1;
        Vec.push s.trail_lim (Vec.size s.trail);
        enqueue s p (-1)
  end
  else begin
    let rec pick () =
      if Vec.size s.heap = 0 then -1
      else
        let v = heap_pop s in
        if s.assigns.(v) < 0 then v else pick ()
    in
    let v = pick () in
    if v < 0 then
      (* Full assignment without conflict: the trail is the model; it is
         kept in place so [model_value] can read it. *)
      raise (Finished Sat)
    else begin
      s.decisions <- s.decisions + 1;
      Vec.push s.trail_lim (Vec.size s.trail);
      enqueue s (if s.polarity.(v) then pos v else neg v) (-1)
    end
  end

let solve ?(assumptions = []) ?(conflict_budget = max_int) s =
  s.solves <- s.solves + 1;
  s.core <- [];
  if not s.ok then Unsat
  else begin
    backtrack s 0;
    let assumps = Array.of_list assumptions in
    let budget = ref conflict_budget in
    let restart_num = ref 1 in
    let until_restart = ref (100 * luby !restart_num) in
    try
      while true do
        let confl = propagate s in
        if confl >= 0 then begin
          s.conflicts <- s.conflicts + 1;
          decr budget;
          decr until_restart;
          if decision_level s = 0 then begin
            s.ok <- false;
            raise (Finished Unsat)
          end;
          if !budget <= 0 then begin
            backtrack s 0;
            raise (Finished Unknown)
          end;
          let clause, btlevel = analyze s confl in
          backtrack s btlevel;
          (match clause with
          | [ l ] -> enqueue s l (-1)
          | l :: _ ->
              let lbd = compute_lbd s clause in
              let cref = push_clause s ~learned:true ~lbd clause in
              enqueue s l cref
          | [] -> assert false);
          var_decay s
        end
        else if !until_restart <= 0 then begin
          s.restarts <- s.restarts + 1;
          incr restart_num;
          until_restart := 100 * luby !restart_num;
          backtrack s 0;
          if Vec.size s.learnts > s.max_learnts then reduce_db s
        end
        else decide s assumps
      done;
      assert false
    with Finished r -> r
  end

let model_value s v =
  if v < 0 || v >= s.nvars then invalid_arg "Solver.model_value";
  s.assigns.(v) = 1

(* ------------------------------------------------------------------ *)
(* The seed engine                                                    *)
(* ------------------------------------------------------------------ *)

module Reference = struct
  (* The seed CDCL solver, verbatim apart from the [restarts] and
     [learned] counters: no blockers, no clause headers (a clause is
     [size; lits...]), no learned-database reduction, no assumptions. *)
  module Seed = struct
    type t = {
      mutable nvars : int;
      mutable assigns : int array;
      mutable level : int array;
      mutable reason : int array;
      mutable activity : float array;
      mutable polarity : bool array;
      mutable heap_pos : int array;
      heap : Vec.t;
      arena : Vec.t;
      mutable watches : Vec.t array;
      trail : Vec.t;
      trail_lim : Vec.t;
      mutable qhead : int;
      mutable var_inc : float;
      mutable seen : bool array;
      mutable ok : bool;
      mutable conflicts : int;
      mutable decisions : int;
      mutable propagations : int;
      mutable restarts : int;
      mutable learned : int;
    }

    let create () =
      {
        nvars = 0;
        assigns = Array.make 16 (-1);
        level = Array.make 16 0;
        reason = Array.make 16 (-1);
        activity = Array.make 16 0.0;
        polarity = Array.make 16 false;
        heap_pos = Array.make 16 (-1);
        heap = Vec.create ();
        arena = Vec.create ();
        watches = Array.init 32 (fun _ -> Vec.create ());
        trail = Vec.create ();
        trail_lim = Vec.create ();
        qhead = 0;
        var_inc = 1.0;
        seen = Array.make 16 false;
        ok = true;
        conflicts = 0;
        decisions = 0;
        propagations = 0;
        restarts = 0;
        learned = 0;
      }

    let lit_value s l =
      let a = s.assigns.(lit_var l) in
      if a < 0 then -1 else if lit_sign l then a else 1 - a

    let heap_less s v1 v2 = s.activity.(v1) > s.activity.(v2)

    let heap_swap s i j =
      let a = Vec.get s.heap i and b = Vec.get s.heap j in
      Vec.set s.heap i b;
      Vec.set s.heap j a;
      s.heap_pos.(a) <- j;
      s.heap_pos.(b) <- i

    let rec heap_up s i =
      if i > 0 then begin
        let p = (i - 1) / 2 in
        if heap_less s (Vec.get s.heap i) (Vec.get s.heap p) then begin
          heap_swap s i p;
          heap_up s p
        end
      end

    let rec heap_down s i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let n = Vec.size s.heap in
      let best = ref i in
      if l < n && heap_less s (Vec.get s.heap l) (Vec.get s.heap !best) then
        best := l;
      if r < n && heap_less s (Vec.get s.heap r) (Vec.get s.heap !best) then
        best := r;
      if !best <> i then begin
        heap_swap s i !best;
        heap_down s !best
      end

    let heap_insert s v =
      if s.heap_pos.(v) < 0 then begin
        Vec.push s.heap v;
        s.heap_pos.(v) <- Vec.size s.heap - 1;
        heap_up s (Vec.size s.heap - 1)
      end

    let heap_pop s =
      let top = Vec.get s.heap 0 in
      let last = Vec.get s.heap (Vec.size s.heap - 1) in
      Vec.shrink s.heap (Vec.size s.heap - 1);
      s.heap_pos.(top) <- -1;
      if Vec.size s.heap > 0 then begin
        Vec.set s.heap 0 last;
        s.heap_pos.(last) <- 0;
        heap_down s 0
      end;
      top

    let grow_arrays s =
      let n = Array.length s.assigns in
      let m = 2 * n in
      let ext def a =
        let b = Array.make m def in
        Array.blit a 0 b 0 n;
        b
      in
      s.assigns <- ext (-1) s.assigns;
      s.level <- ext 0 s.level;
      s.reason <- ext (-1) s.reason;
      s.activity <- Array.append s.activity (Array.make n 0.0);
      s.polarity <- Array.append s.polarity (Array.make n false);
      s.heap_pos <- ext (-1) s.heap_pos;
      s.seen <- Array.append s.seen (Array.make n false);
      let w = Array.init (2 * m) (fun _ -> Vec.create ()) in
      Array.blit s.watches 0 w 0 (2 * n);
      s.watches <- w

    let new_var s =
      if s.nvars >= Array.length s.assigns then grow_arrays s;
      let v = s.nvars in
      s.nvars <- v + 1;
      s.assigns.(v) <- -1;
      s.reason.(v) <- -1;
      s.heap_pos.(v) <- -1;
      heap_insert s v;
      v

    let decision_level s = Vec.size s.trail_lim

    let enqueue s l reason =
      s.assigns.(lit_var l) <- (if lit_sign l then 1 else 0);
      s.level.(lit_var l) <- decision_level s;
      s.reason.(lit_var l) <- reason;
      Vec.push s.trail l

    let propagate s =
      let confl = ref (-1) in
      while !confl < 0 && s.qhead < Vec.size s.trail do
        let p = Vec.get s.trail s.qhead in
        s.qhead <- s.qhead + 1;
        s.propagations <- s.propagations + 1;
        let false_lit = lit_not p in
        let ws = s.watches.(false_lit) in
        let i = ref 0 and j = ref 0 in
        let n = Vec.size ws in
        while !i < n do
          let cref = Vec.get ws !i in
          incr i;
          if !confl >= 0 then begin
            Vec.set ws !j cref;
            incr j
          end
          else begin
            let size = Vec.get s.arena cref in
            if Vec.get s.arena (cref + 1) = false_lit then begin
              Vec.set s.arena (cref + 1) (Vec.get s.arena (cref + 2));
              Vec.set s.arena (cref + 2) false_lit
            end;
            let first = Vec.get s.arena (cref + 1) in
            if lit_value s first = 1 then begin
              Vec.set ws !j cref;
              incr j
            end
            else begin
              let found = ref false in
              let k = ref 3 in
              while (not !found) && !k <= size do
                let l = Vec.get s.arena (cref + !k) in
                if lit_value s l <> 0 then begin
                  Vec.set s.arena (cref + 2) l;
                  Vec.set s.arena (cref + !k) false_lit;
                  Vec.push s.watches.(l) cref;
                  found := true
                end;
                incr k
              done;
              if not !found then begin
                Vec.set ws !j cref;
                incr j;
                if lit_value s first = 0 then confl := cref
                else enqueue s first cref
              end
            end
          end
        done;
        Vec.shrink ws !j
      done;
      !confl

    let var_bump s v =
      s.activity.(v) <- s.activity.(v) +. s.var_inc;
      if s.activity.(v) > 1e100 then begin
        for u = 0 to s.nvars - 1 do
          s.activity.(u) <- s.activity.(u) *. 1e-100
        done;
        s.var_inc <- s.var_inc *. 1e-100
      end;
      if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

    let var_decay s = s.var_inc <- s.var_inc /. 0.95

    let attach s cref =
      Vec.push s.watches.(Vec.get s.arena (cref + 1)) cref;
      Vec.push s.watches.(Vec.get s.arena (cref + 2)) cref

    let push_clause s lits =
      let cref = Vec.size s.arena in
      Vec.push s.arena (List.length lits);
      List.iter (Vec.push s.arena) lits;
      attach s cref;
      cref

    let backtrack s lvl =
      if decision_level s > lvl then begin
        let bound = Vec.get s.trail_lim lvl in
        for i = Vec.size s.trail - 1 downto bound do
          let l = Vec.get s.trail i in
          let v = lit_var l in
          s.assigns.(v) <- -1;
          s.polarity.(v) <- lit_sign l;
          heap_insert s v
        done;
        Vec.shrink s.trail bound;
        Vec.shrink s.trail_lim lvl;
        s.qhead <- Vec.size s.trail
      end

    let analyze s confl =
      let learned = ref [] in
      let path = ref 0 in
      let p = ref (-1) in
      let idx = ref (Vec.size s.trail - 1) in
      let confl = ref confl in
      let continue = ref true in
      let btlevel = ref 0 in
      while !continue do
        let size = Vec.get s.arena !confl in
        let start = if !p < 0 then 1 else 2 in
        for k = start to size do
          let q = Vec.get s.arena (!confl + k) in
          let v = lit_var q in
          if (not s.seen.(v)) && s.level.(v) > 0 then begin
            s.seen.(v) <- true;
            var_bump s v;
            if s.level.(v) >= decision_level s then incr path
            else begin
              learned := q :: !learned;
              if s.level.(v) > !btlevel then btlevel := s.level.(v)
            end
          end
        done;
        while not s.seen.(lit_var (Vec.get s.trail !idx)) do
          decr idx
        done;
        p := Vec.get s.trail !idx;
        decr idx;
        s.seen.(lit_var !p) <- false;
        decr path;
        if !path > 0 then confl := s.reason.(lit_var !p) else continue := false
      done;
      let clause = lit_not !p :: !learned in
      List.iter (fun l -> s.seen.(lit_var l) <- false) !learned;
      (clause, !btlevel)

    let add_clause s lits =
      if s.ok then begin
        backtrack s 0;
        let lits = List.sort_uniq compare lits in
        let tauto =
          List.exists (fun l -> List.mem (lit_not l) lits) lits
          || List.exists (fun l -> lit_value s l = 1) lits
        in
        if not tauto then begin
          let lits = List.filter (fun l -> lit_value s l <> 0) lits in
          match lits with
          | [] -> s.ok <- false
          | [ l ] ->
              enqueue s l (-1);
              if propagate s >= 0 then s.ok <- false
          | lits -> ignore (push_clause s lits)
        end
      end

    let decide s =
      let rec pick () =
        if Vec.size s.heap = 0 then -1
        else
          let v = heap_pop s in
          if s.assigns.(v) < 0 then v else pick ()
      in
      let v = pick () in
      if v < 0 then false
      else begin
        s.decisions <- s.decisions + 1;
        Vec.push s.trail_lim (Vec.size s.trail);
        enqueue s (if s.polarity.(v) then pos v else neg v) (-1);
        true
      end

    let solve ?(conflict_budget = max_int) s =
      if not s.ok then Unsat
      else begin
        let budget = ref conflict_budget in
        let restart_num = ref 1 in
        let until_restart = ref (100 * luby !restart_num) in
        try
          while true do
            let confl = propagate s in
            if confl >= 0 then begin
              s.conflicts <- s.conflicts + 1;
              decr budget;
              decr until_restart;
              if decision_level s = 0 then begin
                s.ok <- false;
                raise (Finished Unsat)
              end;
              if !budget <= 0 then begin
                backtrack s 0;
                raise (Finished Unknown)
              end;
              let clause, btlevel = analyze s confl in
              backtrack s btlevel;
              (match clause with
              | [ l ] -> enqueue s l (-1)
              | l :: _ ->
                  let cref = push_clause s clause in
                  s.learned <- s.learned + 1;
                  enqueue s l cref
              | [] -> assert false);
              var_decay s
            end
            else if !until_restart <= 0 then begin
              s.restarts <- s.restarts + 1;
              incr restart_num;
              until_restart := 100 * luby !restart_num;
              backtrack s 0
            end
            else if not (decide s) then raise (Finished Sat)
          done;
          assert false
        with Finished r -> r
      end

    let model_value s v =
      if v < 0 || v >= s.nvars then invalid_arg "Solver.model_value";
      s.assigns.(v) = 1
  end

  (* Assumption support by monolithic re-solve: the wrapper records every
     clause; [solve ~assumptions] builds a fresh seed solver over the
     recorded clauses plus the assumptions as unit clauses.  This is the
     definition of "incremental ≡ monolithic" the default engine is
     differential-tested against. *)
  type t = {
    seed : Seed.t;                  (* serves the no-assumption solves *)
    mutable nv : int;
    mutable clauses : int list list;  (* recorded raw clauses, newest first *)
    mutable model : bool array;     (* model of the last assumption solve *)
    mutable use_model : bool;       (* read [model] instead of [seed]? *)
    mutable core : int list;
    mutable solves : int;
    (* counters inherited from discarded re-solve instances *)
    mutable acc_conflicts : int;
    mutable acc_decisions : int;
    mutable acc_propagations : int;
    mutable acc_restarts : int;
    mutable acc_learned : int;
  }

  let create () =
    {
      seed = Seed.create ();
      nv = 0;
      clauses = [];
      model = [||];
      use_model = false;
      core = [];
      solves = 0;
      acc_conflicts = 0;
      acc_decisions = 0;
      acc_propagations = 0;
      acc_restarts = 0;
      acc_learned = 0;
    }

  let new_var t =
    let v = Seed.new_var t.seed in
    t.nv <- t.nv + 1;
    v

  let num_vars t = t.nv

  let add_clause t lits =
    t.clauses <- lits :: t.clauses;
    Seed.add_clause t.seed lits

  let solve ?(assumptions = []) ?(conflict_budget = max_int) t =
    t.solves <- t.solves + 1;
    t.core <- [];
    match assumptions with
    | [] ->
        t.use_model <- false;
        Seed.solve ~conflict_budget t.seed
    | _ ->
        let s2 = Seed.create () in
        for _ = 1 to t.nv do
          ignore (Seed.new_var s2)
        done;
        List.iter (Seed.add_clause s2) (List.rev t.clauses);
        List.iter (fun a -> Seed.add_clause s2 [ a ]) assumptions;
        let r = Seed.solve ~conflict_budget s2 in
        t.acc_conflicts <- t.acc_conflicts + s2.Seed.conflicts;
        t.acc_decisions <- t.acc_decisions + s2.Seed.decisions;
        t.acc_propagations <- t.acc_propagations + s2.Seed.propagations;
        t.acc_restarts <- t.acc_restarts + s2.Seed.restarts;
        t.acc_learned <- t.acc_learned + s2.Seed.learned;
        (match r with
        | Sat ->
            t.model <- Array.init t.nv (Seed.model_value s2);
            t.use_model <- true
        | Unsat ->
            (* trivial (non-minimal) core: every assumption *)
            t.core <- assumptions
        | Unknown -> ());
        r

  let model_value t v =
    if t.use_model then begin
      if v < 0 || v >= t.nv then invalid_arg "Solver.model_value";
      t.model.(v)
    end
    else Seed.model_value t.seed v

  let unsat_core t = t.core
  let num_conflicts t = t.seed.Seed.conflicts + t.acc_conflicts
  let num_decisions t = t.seed.Seed.decisions + t.acc_decisions
  let num_propagations t = t.seed.Seed.propagations + t.acc_propagations
  let num_restarts t = t.seed.Seed.restarts + t.acc_restarts
  let num_learned t = t.seed.Seed.learned + t.acc_learned

  let stats_of t =
    {
      sat_solves = t.solves;
      sat_conflicts = num_conflicts t;
      sat_decisions = num_decisions t;
      sat_propagations = num_propagations t;
      sat_restarts = num_restarts t;
      sat_learned = num_learned t;
    }
end
