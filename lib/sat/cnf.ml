type formula = { fm_vars : int; fm_clauses : int list list }

let lit_of vars l =
  let v = vars.(Aig.node_of l) in
  if Aig.is_compl l then Solver.neg v else Solver.pos v

module type S = sig
  type solver

  val lit_of : int array -> Aig.lit -> int
  val encode : solver -> Aig.t -> int array
  val encode_shared : solver -> Aig.t -> inputs:int array -> int array
  val add_formula : solver -> formula -> unit
end

module Make (E : Solver.CORE) = struct
  type solver = E.t

  let lit_of = lit_of

  let encode_with s aig mk_input_var =
    let n = Aig.num_nodes aig in
    let vars = Array.make n (-1) in
    (* constant node *)
    vars.(0) <- E.new_var s;
    E.add_clause s [ Solver.neg vars.(0) ];
    for i = 0 to Aig.num_inputs aig - 1 do
      vars.(i + 1) <- mk_input_var i
    done;
    Aig.iter_ands aig (fun nd ->
        let v = E.new_var s in
        vars.(nd) <- v;
        let a = lit_of vars (Aig.fanin0 aig nd) in
        let b = lit_of vars (Aig.fanin1 aig nd) in
        let y = Solver.pos v in
        (* y <-> a & b *)
        E.add_clause s [ Solver.lit_not y; a ];
        E.add_clause s [ Solver.lit_not y; b ];
        E.add_clause s [ y; Solver.lit_not a; Solver.lit_not b ]);
    vars

  let encode s aig = encode_with s aig (fun _ -> E.new_var s)

  let encode_shared s aig ~inputs =
    if Array.length inputs <> Aig.num_inputs aig then
      invalid_arg "Cnf.encode_shared";
    encode_with s aig (fun i -> inputs.(i))

  let add_formula s fm =
    while E.num_vars s < fm.fm_vars do
      ignore (E.new_var s)
    done;
    List.iter (E.add_clause s) fm.fm_clauses
end

module Default = Make (Solver)

let encode = Default.encode
let encode_shared = Default.encode_shared
let add_formula = Default.add_formula

(* ------------------------------------------------------------------ *)
(* DIMACS                                                             *)
(* ------------------------------------------------------------------ *)

let to_dimacs fm =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "p cnf %d %d\n" fm.fm_vars (List.length fm.fm_clauses));
  List.iter
    (fun clause ->
      List.iter
        (fun l ->
          let v = Solver.lit_var l + 1 in
          Buffer.add_string b
            (string_of_int (if Solver.lit_sign l then v else -v));
          Buffer.add_char b ' ')
        clause;
      Buffer.add_string b "0\n")
    fm.fm_clauses;
  Buffer.contents b

let of_dimacs text =
  (* Tokenize, dropping [c] comment lines and anything after a lone [%]
     (the SATLIB benchmark trailer). *)
  let lines = String.split_on_char '\n' text in
  let tokens = ref [] in
  (try
     List.iter
       (fun line ->
         let line = String.trim line in
         if line = "%" then raise Exit
         else if line <> "" && line.[0] <> 'c' then
           String.split_on_char ' ' line
           |> List.iter (fun tok -> if tok <> "" then tokens := tok :: !tokens))
       lines
   with Exit -> ());
  match List.rev !tokens with
  | "p" :: "cnf" :: nv :: nc :: rest -> (
      match (int_of_string_opt nv, int_of_string_opt nc) with
      | Some nv, Some nc when nv >= 0 && nc >= 0 -> (
          let err = ref None in
          let clauses = ref [] in
          let current = ref [] in
          List.iter
            (fun tok ->
              if !err = None then
                match int_of_string_opt tok with
                | None -> err := Some (Printf.sprintf "bad literal %S" tok)
                | Some 0 ->
                    clauses := List.rev !current :: !clauses;
                    current := []
                | Some d when abs d > nv ->
                    err := Some (Printf.sprintf "literal %d out of range" d)
                | Some d ->
                    let l =
                      if d > 0 then Solver.pos (d - 1) else Solver.neg (-d - 1)
                    in
                    current := l :: !current)
            rest;
          match !err with
          | Some e -> Error e
          | None ->
              if !current <> [] then Error "unterminated clause"
              else
                let clauses = List.rev !clauses in
                if List.length clauses <> nc then
                  Error
                    (Printf.sprintf "header says %d clauses, found %d" nc
                       (List.length clauses))
                else Ok { fm_vars = nv; fm_clauses = clauses })
      | _ -> Error "bad p-line counts")
  | _ -> Error "missing 'p cnf' header"
