(** Combinational equivalence checking of two AIGs.

    The graphs must have the same number of primary inputs and outputs;
    outputs are compared positionally.  A random-simulation filter runs
    first (cheap counterexamples), then a SAT miter decides. *)

type verdict =
  | Equivalent
  | Inequivalent of bool array  (** a distinguishing input assignment *)
  | Undecided                   (** conflict budget exhausted *)

val check :
  ?sim_rounds:int -> ?conflict_budget:int -> ?seed:int64 ->
  Aig.t -> Aig.t -> verdict

val equivalent : ?conflict_budget:int -> Aig.t -> Aig.t -> bool
(** [check] specialized: raises [Failure] on [Undecided] (which can only
    happen when a [conflict_budget] is given). *)
