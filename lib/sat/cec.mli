(** Combinational equivalence checking of two AIGs.

    The graphs must have the same number of primary inputs and outputs;
    outputs are compared positionally.  A random-simulation filter runs
    first (cheap counterexamples), then a SAT miter decides. *)

type verdict =
  | Equivalent
  | Inequivalent of bool array  (** a distinguishing input assignment *)
  | Undecided                   (** conflict budget exhausted *)

type engine = Cdcl | Reference
(** [Cdcl] (default) is the {!Solver} default engine; [Reference] is the
    seed solver ({!Solver.Reference}), kept for differential testing.
    Verdicts must agree; only the counterexample bits may differ. *)

exception Undecided_budget
(** Raised by {!equivalent} when the conflict budget is exhausted. *)

val check :
  ?engine:engine ->
  ?sim_rounds:int -> ?conflict_budget:int -> ?seed:int64 ->
  ?stats:Solver.stats ->
  Aig.t -> Aig.t -> verdict
(** [stats], when given, accumulates the SAT effort of the miter solve
    (nothing is added when simulation already found a counterexample). *)

val equivalent :
  ?engine:engine -> ?conflict_budget:int -> Aig.t -> Aig.t -> bool
(** [check] specialized: raises {!Undecided_budget} on [Undecided] (which
    can only happen when a [conflict_budget] is given). *)
