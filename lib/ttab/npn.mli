(** NPN transformations of single-word truth tables.

    All functions here operate on 64-bit words holding a function of
    [k <= 6] variables replicated to fill the word (the {!Tt} convention for
    small tables).  They are the hot path of technology-library expansion,
    where every input-negation / input-permutation / output-negation variant
    of every cell function is tabulated. *)

val flip : int64 -> int -> int64
(** [flip t i] substitutes [NOT x_i] for variable [i] ([0 <= i < 6]). *)

val swap_adjacent : int64 -> int -> int64
(** [swap_adjacent t i] exchanges variables [i] and [i+1] ([0 <= i < 5]). *)

val permute : int64 -> int array -> int64
(** [permute t p] (with [p] a permutation of [0..k-1], [k <= 6]): the result
    [r] satisfies [r (x_0, .., x_{k-1}) = t (y)] where [y_(p.(i)) = x_i];
    i.e. position [p.(i)] of [t] is driven by variable [i] of the result. *)

val apply_phase : int64 -> int -> int64
(** [apply_phase t mask] flips every variable whose bit is set in [mask]. *)

type transform = {
  perm : int array;  (** gate pin [perm.(i)] is driven by cut variable [i] *)
  phase : int;       (** bit [i] set: cut variable [i] enters complemented *)
  neg : bool;        (** output is complemented *)
}

val identity : int -> transform

val enumerate : int -> int64 -> (int64 -> transform -> unit) -> unit
(** [enumerate k t f] calls [f variant tr] for every NPN variant of the
    [k]-variable function [t]: all [k! * 2^k * 2] combinations (duplicates
    possible when [t] has symmetries).  The [transform] arrays are fresh for
    each permutation but shared across its phases; copy if retained. *)

val canonical : int -> int64 -> int64
(** Exhaustive NPN-canonical representative (numerically smallest variant,
    comparing words as unsigned). *)

val canonical_cached : int -> int64 -> int64
(** [canonical], memoized per domain behind a size-bounded cache keyed by
    [(k, t)].  Same result as [canonical]; use on hot paths where the same
    functions recur (mapper lint, paper coverage). *)

val shrink : int64 -> int -> int64 * int array
(** [shrink t m] removes the non-support variables of the [m]-variable
    function [t] ([m <= 6], replicated-word convention): returns
    [(small, sup)] where [sup] lists the support variables in ascending
    order and [small] is [t] re-expressed over variables [0..len sup - 1]
    (variable [j] of [small] is variable [sup.(j)] of [t]).  Word-level
    equivalent of {!Tt.shrink_to_support} for single-word tables. *)

val num_classes : int -> int
(** Number of NPN equivalence classes among all functions of exactly [k <= 4]
    variables (exhaustive; exponential in [2^k], for tests and tooling). *)
