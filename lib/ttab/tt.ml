type t = { n : int; w : int64 array }

let max_vars = 16

(* Masks of positions where in-word variable [i] is 1. *)
let mask1 =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let mask0 = Array.map Int64.lognot mask1

let nwords n = if n <= 6 then 1 else 1 lsl (n - 6)

let nvars t = t.n
let words t = t.w

let check_nvars n =
  if n < 0 || n > max_vars then invalid_arg "Tt: variable count out of range"

let const0 n = check_nvars n; { n; w = Array.make (nwords n) 0L }
let const1 n = check_nvars n; { n; w = Array.make (nwords n) (-1L) }

let var n i =
  check_nvars n;
  if i < 0 || i >= n then invalid_arg "Tt.var";
  if i < 6 then { n; w = Array.make (nwords n) mask1.(i) }
  else begin
    let w = Array.make (nwords n) 0L in
    let stride = 1 lsl (i - 6) in
    for k = 0 to Array.length w - 1 do
      if k land stride <> 0 then w.(k) <- -1L
    done;
    { n; w }
  end

(* Replicate the low [2^n] bits of [b] ([n <= 6]) across the word. *)
let replicate n b =
  let rec go width b =
    if width >= 64 then b
    else go (2 * width) Int64.(logor b (shift_left b width))
  in
  let width = 1 lsl n in
  let low =
    if width >= 64 then b
    else Int64.(logand b (sub (shift_left 1L width) 1L))
  in
  go width low

let of_bits n b =
  check_nvars n;
  if n > 6 then invalid_arg "Tt.of_bits: more than 6 variables";
  { n; w = [| replicate n b |] }

let of_words n w =
  check_nvars n;
  if Array.length w <> nwords n then invalid_arg "Tt.of_words: bad length";
  { n; w = Array.copy w }

let of_fun n f =
  check_nvars n;
  if n <= 6 then begin
    let b = ref 0L in
    for a = (1 lsl n) - 1 downto 0 do
      b := Int64.shift_left !b 1;
      if f a then b := Int64.logor !b 1L
    done;
    of_bits n !b
  end else begin
    let w = Array.make (nwords n) 0L in
    for a = 0 to (1 lsl n) - 1 do
      if f a then
        w.(a lsr 6) <- Int64.logor w.(a lsr 6) (Int64.shift_left 1L (a land 63))
    done;
    { n; w }
  end

let lift1 f a = { a with w = Array.map f a.w }

let lift2 name f a b =
  if a.n <> b.n then invalid_arg name;
  { a with w = Array.init (Array.length a.w) (fun i -> f a.w.(i) b.w.(i)) }

let bnot a = lift1 Int64.lognot a
let band a b = lift2 "Tt.band" Int64.logand a b
let bor a b = lift2 "Tt.bor" Int64.logor a b
let bxor a b = lift2 "Tt.bxor" Int64.logxor a b
let bandn a b = lift2 "Tt.bandn" (fun x y -> Int64.(logand x (lognot y))) a b
let mux s a b = bor (band s a) (bandn b s)

let equal a b =
  a.n = b.n
  &&
  let w1 = a.w and w2 = b.w in
  let len = Array.length w1 in
  let rec go i = i >= len || (Int64.equal w1.(i) w2.(i) && go (i + 1)) in
  go 0
let compare a b = Stdlib.compare (a.n, a.w) (b.n, b.w)

let hash a =
  Array.fold_left
    (fun acc w -> (acc * 65599) + Int64.to_int w)
    (a.n + 17) a.w
  land max_int

let is_const0 a = Array.for_all (fun w -> w = 0L) a.w
let is_const1 a = Array.for_all (fun w -> w = -1L) a.w

let eval t a =
  if a < 0 || a >= 1 lsl t.n then invalid_arg "Tt.eval";
  Int64.(logand (shift_right_logical t.w.(a lsr 6) (a land 63)) 1L) <> 0L

let popcount64 x =
  let x = Int64.(sub x (logand (shift_right_logical x 1) 0x5555555555555555L)) in
  let x =
    Int64.(add (logand x 0x3333333333333333L)
             (logand (shift_right_logical x 2) 0x3333333333333333L))
  in
  let x = Int64.(logand (add x (shift_right_logical x 4)) 0x0F0F0F0F0F0F0F0FL) in
  Int64.(to_int (shift_right_logical (mul x 0x0101010101010101L) 56))

let count_ones t =
  if t.n >= 6 then Array.fold_left (fun acc w -> acc + popcount64 w) 0 t.w
  else begin
    let width = 1 lsl t.n in
    let low = Int64.(logand t.w.(0) (sub (shift_left 1L width) 1L)) in
    popcount64 low
  end

let cofactor0 t i =
  if i < 0 || i >= t.n then invalid_arg "Tt.cofactor0";
  if i < 6 then
    let d = 1 lsl i in
    lift1
      (fun w ->
        let z = Int64.logand w mask0.(i) in
        Int64.(logor z (shift_left z d)))
      t
  else begin
    let stride = 1 lsl (i - 6) in
    let w = Array.copy t.w in
    for k = 0 to Array.length w - 1 do
      if k land stride <> 0 then w.(k) <- t.w.(k lxor stride)
    done;
    { t with w }
  end

let cofactor1 t i =
  if i < 0 || i >= t.n then invalid_arg "Tt.cofactor1";
  if i < 6 then
    let d = 1 lsl i in
    lift1
      (fun w ->
        let z = Int64.logand w mask1.(i) in
        Int64.(logor z (shift_right_logical z d)))
      t
  else begin
    let stride = 1 lsl (i - 6) in
    let w = Array.copy t.w in
    for k = 0 to Array.length w - 1 do
      if k land stride = 0 then w.(k) <- t.w.(k lxor stride)
    done;
    { t with w }
  end

(* Allocation-free: a table depends on [i] iff some position with var_i = 0
   differs from its var_i = 1 partner.  This is the inner loop of the ISOP
   top-variable scan, so it early-exits on the first differing word instead
   of materializing both cofactors. *)
let depends_on t i =
  if i < 0 || i >= t.n then invalid_arg "Tt.depends_on";
  let w = t.w in
  let len = Array.length w in
  if i < 6 then begin
    let d = 1 lsl i in
    let m = mask0.(i) in
    let rec go k =
      k < len
      && (Int64.logand (Int64.logxor w.(k) (Int64.shift_right_logical w.(k) d)) m
          <> 0L
         || go (k + 1))
    in
    go 0
  end
  else begin
    let stride = 1 lsl (i - 6) in
    let rec go k =
      k < len
      && ((k land stride = 0 && w.(k) <> w.(k lor stride)) || go (k + 1))
    in
    go 0
  end

let support t =
  let rec go i = if i >= t.n then [] else
    if depends_on t i then i :: go (i + 1) else go (i + 1)
  in
  go 0

let support_size t = List.length (support t)

let exists_tt t i = bor (cofactor0 t i) (cofactor1 t i)
let forall_tt t i = band (cofactor0 t i) (cofactor1 t i)
let exists t i = not (is_const0 (exists_tt t i))

let flip t i =
  if i < 0 || i >= t.n then invalid_arg "Tt.flip";
  if i < 6 then
    let d = 1 lsl i in
    lift1
      (fun w ->
        Int64.(logor
                 (shift_right_logical (logand w mask1.(i)) d)
                 (shift_left (logand w mask0.(i)) d)))
      t
  else begin
    let stride = 1 lsl (i - 6) in
    let w = Array.copy t.w in
    for k = 0 to Array.length w - 1 do
      w.(k) <- t.w.(k lxor stride)
    done;
    { t with w }
  end

(* Swap in-word variables i and i+1 (both < 6): move bits at positions where
   (var_{i+1}, var_i) = (0,1) up by [2^i], and bits where (1,0) down. *)
let swap_adjacent_inword t i =
  let d = 1 lsl i in
  let hi_lo = Int64.logand mask1.(i + 1) mask0.(i) in
  let lo_hi = Int64.logand mask0.(i + 1) mask1.(i) in
  let keep = Int64.lognot (Int64.logor hi_lo lo_hi) in
  lift1
    (fun w ->
      Int64.(logor (logand w keep)
               (logor
                  (shift_left (logand w lo_hi) d)
                  (shift_right_logical (logand w hi_lo) d))))
    t

let swap_adjacent t i =
  if i < 0 || i + 1 >= t.n then invalid_arg "Tt.swap_adjacent";
  if i + 1 < 6 then swap_adjacent_inword t i
  else if i >= 6 then begin
    (* Both across words: swap word blocks. *)
    let s0 = 1 lsl (i - 6) and s1 = 1 lsl (i - 5) in
    let w = Array.copy t.w in
    for k = 0 to Array.length w - 1 do
      let b0 = k land s0 <> 0 and b1 = k land s1 <> 0 in
      if b0 <> b1 then w.(k) <- t.w.(k lxor s0 lxor s1)
    done;
    { t with w }
  end else begin
    (* i = 5: variable 5 is the top half of each word, variable 6 selects
       word parity.  Exchange the high half of even words with the low half
       of odd words. *)
    let w = Array.copy t.w in
    let k = ref 0 in
    while !k < Array.length w do
      let lo = t.w.(!k) and hi = t.w.(!k + 1) in
      w.(!k) <-
        Int64.(logor (logand lo 0x00000000FFFFFFFFL) (shift_left hi 32));
      w.(!k + 1) <-
        Int64.(logor (shift_right_logical lo 32)
                 (logand hi 0xFFFFFFFF00000000L));
      k := !k + 2
    done;
    { t with w }
  end

let swap t i j =
  if i = j then t
  else begin
    let i, j = if i < j then (i, j) else (j, i) in
    (* Bubble i up to j, then bubble the old j (now at j-1... ) — the classic
       three-phase bubble: bring i next to j, swap, bring back. *)
    let r = ref t in
    for k = i to j - 1 do r := swap_adjacent !r k done;
    for k = j - 2 downto i do r := swap_adjacent !r k done;
    !r
  end

let permute t p =
  if Array.length p <> t.n then invalid_arg "Tt.permute";
  (* Result reads its variable i from t's variable p.(i): apply as a
     sequence of swaps on a working copy, tracking current positions. *)
  let n = t.n in
  let pos = Array.init n (fun i -> i) in      (* pos.(v) = current index of t-var v *)
  let at = Array.init n (fun i -> i) in       (* inverse *)
  let r = ref t in
  for i = 0 to n - 1 do
    let v = p.(i) in
    let cur = pos.(v) in
    if cur <> i then begin
      r := swap !r i cur;
      let u = at.(i) in
      at.(i) <- v; at.(cur) <- u;
      pos.(v) <- i; pos.(u) <- cur
    end
  done;
  !r

let extend t n =
  check_nvars n;
  if n < t.n then invalid_arg "Tt.extend"
  else if n = t.n then t
  else if n <= 6 then { n; w = t.w }
  else begin
    let w = Array.make (nwords n) 0L in
    let old = nwords t.n in
    for k = 0 to Array.length w - 1 do
      w.(k) <- t.w.(k mod old)
    done;
    { n; w }
  end

let shrink_to_support t =
  let sup = Array.of_list (support t) in
  let k = Array.length sup in
  (* Move support variable j to position j by swapping. *)
  let r = ref t in
  Array.iteri
    (fun j v ->
      if v <> j then
        (* v > j always, since earlier swaps only move smaller vars down *)
        for x = v - 1 downto j do r := swap_adjacent !r x done)
    sup;
  let small =
    if k <= 6 then of_bits k (words !r).(0)
    else { n = k; w = Array.sub (words !r) 0 (nwords k) }
  in
  (small, sup)

let to_hex t =
  let buf = Buffer.create 16 in
  let digits = max 1 ((1 lsl t.n) / 4) in
  let dig_per_word = min digits 16 in
  for k = Array.length t.w - 1 downto 0 do
    let s = Printf.sprintf "%016Lx" t.w.(k) in
    Buffer.add_string buf (String.sub s (16 - dig_per_word) dig_per_word)
  done;
  Buffer.contents buf

let pp fmt t = Format.fprintf fmt "%d'h%s" (1 lsl t.n) (to_hex t)
