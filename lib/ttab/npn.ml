let mask1 =
  [| 0xAAAAAAAAAAAAAAAAL; 0xCCCCCCCCCCCCCCCCL; 0xF0F0F0F0F0F0F0F0L;
     0xFF00FF00FF00FF00L; 0xFFFF0000FFFF0000L; 0xFFFFFFFF00000000L |]

let mask0 = Array.map Int64.lognot mask1

let flip t i =
  let d = 1 lsl i in
  Int64.(logor
           (shift_right_logical (logand t mask1.(i)) d)
           (shift_left (logand t mask0.(i)) d))

let swap_adjacent t i =
  let d = 1 lsl i in
  let hi_lo = Int64.logand mask1.(i + 1) mask0.(i) in
  let lo_hi = Int64.logand mask0.(i + 1) mask1.(i) in
  let keep = Int64.lognot (Int64.logor hi_lo lo_hi) in
  Int64.(logor (logand t keep)
           (logor
              (shift_left (logand t lo_hi) d)
              (shift_right_logical (logand t hi_lo) d)))

let swap t i j =
  if i = j then t
  else begin
    let i, j = if i < j then (i, j) else (j, i) in
    let r = ref t in
    for k = i to j - 1 do r := swap_adjacent !r k done;
    for k = j - 2 downto i do r := swap_adjacent !r k done;
    !r
  end

let permute t p =
  let n = Array.length p in
  let pos = Array.init 6 (fun i -> i) in
  let at = Array.init 6 (fun i -> i) in
  let r = ref t in
  for i = 0 to n - 1 do
    let v = p.(i) in
    let cur = pos.(v) in
    if cur <> i then begin
      r := swap !r i cur;
      let u = at.(i) in
      at.(i) <- v; at.(cur) <- u;
      pos.(v) <- i; pos.(u) <- cur
    end
  done;
  !r

let apply_phase t mask =
  let r = ref t in
  for i = 0 to 5 do
    if mask land (1 lsl i) <> 0 then r := flip !r i
  done;
  !r

type transform = { perm : int array; phase : int; neg : bool }

let identity k = { perm = Array.init k (fun i -> i); phase = 0; neg = false }

(* Number of trailing zeros of a positive int. *)
let ntz x =
  let rec go x i = if x land 1 = 1 then i else go (x lsr 1) (i + 1) in
  go x 0

let iter_permutations k f =
  let a = Array.init k (fun i -> i) in
  let rec go m =
    if m = k then f (Array.copy a)
    else
      for i = m to k - 1 do
        let tmp = a.(m) in a.(m) <- a.(i); a.(i) <- tmp;
        go (m + 1);
        let tmp = a.(m) in a.(m) <- a.(i); a.(i) <- tmp
      done
  in
  go 0

let enumerate k t f =
  if k < 0 || k > 6 then invalid_arg "Npn.enumerate";
  iter_permutations k (fun p ->
      let base = permute t p in
      (* Walk phases in Gray-code order: one flip per step. *)
      let cur = ref base in
      let phase = ref 0 in
      f !cur { perm = p; phase = 0; neg = false };
      f (Int64.lognot !cur) { perm = p; phase = 0; neg = true };
      for g = 1 to (1 lsl k) - 1 do
        let bit = ntz g in
        cur := flip !cur bit;
        phase := !phase lxor (1 lsl bit);
        f !cur { perm = p; phase = !phase; neg = false };
        f (Int64.lognot !cur) { perm = p; phase = !phase; neg = true }
      done)

let ule a b =
  (* unsigned 64-bit comparison *)
  Int64.unsigned_compare a b <= 0

let canonical k t =
  let best = ref t in
  enumerate k t (fun v _ -> if not (ule !best v) then best := v);
  !best

(* Word-level mirror of [Tt.shrink_to_support] for replicated words.  A word
   replicated at width [2^m] that does not depend on in-word variable [i] is
   invariant under [flip _ i]; once every support variable has been bubbled
   down below the dead ones, the word is already replicated at width
   [2^(support size)], so no re-replication step is needed. *)
let shrink t m =
  let sup = ref [] in
  for i = m - 1 downto 0 do
    if flip t i <> t then sup := i :: !sup
  done;
  let sup = Array.of_list !sup in
  let r = ref t in
  Array.iteri
    (fun j v ->
      if v <> j then
        (* v > j always: earlier iterations only move smaller vars down *)
        for x = v - 1 downto j do r := swap_adjacent !r x done)
    sup;
  (!r, sup)

(* Exhaustive canonicalization costs O(k! * 2^(k+1)) word ops; cut functions
   repeat heavily, so memoize per domain (no locking) behind a size bound.
   The table is flushed wholesale when full — cheap, and the working set of
   distinct cut functions per benchmark is far below the bound. *)
let canon_cache_bound = 1 lsl 16

let canon_cache : (int * int64, int64) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let canonical_cached k t =
  let tbl = Domain.DLS.get canon_cache in
  match Hashtbl.find_opt tbl (k, t) with
  | Some c -> c
  | None ->
      let c = canonical k t in
      if Hashtbl.length tbl >= canon_cache_bound then Hashtbl.reset tbl;
      Hashtbl.add tbl (k, t) c;
      c

let num_classes k =
  if k < 0 || k > 4 then invalid_arg "Npn.num_classes";
  let seen = Hashtbl.create 1024 in
  let bits = 1 lsl k in
  let total = 1 lsl bits in
  (* Replicate the low [2^k] bits across the word, as Tt does. *)
  let replicate b =
    let rec go width b =
      if width >= 64 then b else go (2 * width) Int64.(logor b (shift_left b width))
    in
    go bits (Int64.of_int b)
  in
  let count = ref 0 in
  for fbits = 0 to total - 1 do
    let t = replicate fbits in
    let c = canonical k t in
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      incr count
    end
  done;
  !count
