(** Drivers that regenerate the paper's evaluation artifacts.

    Each [run_*] function returns structured results; each [render_*]
    produces a markdown report comparing computed values against the
    published numbers in {!Paper_data}. *)

type char_source =
  | Computed   (** our switch-level characterization ({!Charlib}) *)
  | Published  (** the numbers printed in the paper's Table 2 *)

type options = {
  char_source : char_source;
  delay : Cell_lib.delay_choice;
  synthesize : bool;       (** run the resyn2rs-like script before mapping *)
  cut_size : int;
  free_output_polarity : bool;
      (** CNTFET cells provide both output polarities (the paper's
          output-inverter convention); disabling charges inverters like
          CMOS (ablation) *)
  verify : bool;           (** check every mapping by random simulation *)
  verify_seed : int64;
      (** RNG seed of the verification patterns (default 2026) — explicit
          so CI runs are reproducible *)
  timing_map : bool;
      (** map with {!Mapper}'s STA-backed load-aware delay cost instead of
          the fixed unit-load FO4 (default false — the paper's setup) *)
}

val default_options : options

(** {1 Table 1} *)

val render_table1 : unit -> string

(** {1 Table 2} *)

type t2_row = {
  gate : string;
  family : Cell_netlist.family;
  computed : Charlib.row;
  published : Paper_data.gate_char option;
}

val run_table2 : unit -> t2_row list
val render_table2 : unit -> string

(** {1 Table 3 / Figure 6} *)

type t3_cell = {
  stats : Mapped.stats;
  cells_used : (string * int) list;
}

type t3_row = {
  bench : string;
  description : string;
  aig_size : int;                  (** AND nodes after synthesis *)
  static_r : t3_cell;
  pseudo_r : t3_cell;
  cmos_r : t3_cell;
}

val verify_by_simulation :
  ?seed:int64 -> ?rounds:int -> Aig.t -> Mapped.t -> bool
(** [rounds] batches of 64 random patterns (default 8) from a {!Rand64}
    stream seeded with [seed] (default 2026). *)

val libraries : options -> Cell_lib.t * Cell_lib.t * Cell_lib.t
(** (static, pseudo, cmos) — the default computed/free-polarity
    configuration is served from the process-wide {!Cell_lib.cached}
    cache. *)

val run_bench : options -> Cell_lib.t * Cell_lib.t * Cell_lib.t ->
  Bench_suite.entry -> t3_row

val run_table3 : ?options:options -> ?benches:string list -> unit -> t3_row list
val render_table3 : ?options:options -> ?benches:string list -> unit -> string

val run_fig6 : ?options:options -> ?benches:string list -> unit ->
  (string * float * float) list
(** Per benchmark: (name, static speed-up vs CMOS, pseudo speed-up). *)

val run_fig6_sta : ?options:options -> ?benches:string list -> unit ->
  (string * float * float) list
(** Same ratios computed from the load-aware STA delays on both sides. *)

val render_fig6 : ?options:options -> ?benches:string list -> unit -> string

val summarize :
  t3_row list ->
  (string * float) list
(** Aggregate improvement metrics matching Table 3's last rows:
    gate/area/level/delay reductions and absolute speed-ups for both
    CNTFET families. *)
