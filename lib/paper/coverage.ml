type report = {
  k : int;
  total : int;
  covered_free : int;
  covered_any : int;
  npn_classes_total : int;
  npn_classes_covered : int;
}

let replicate k bits =
  let rec go width b =
    if width >= 64 then b
    else go (2 * width) Int64.(logor b (shift_left b width))
  in
  go (1 lsl k) (Int64.of_int bits)

let full_support k tt =
  let t = Tt.of_bits k tt in
  Tt.support_size t = k

let analyze lib k =
  if k < 1 || k > 4 then invalid_arg "Coverage.analyze";
  let total = ref 0 and free = ref 0 and any = ref 0 in
  let classes = Hashtbl.create 64 in
  (* class -> covered with a free match? *)
  for bits = 0 to (1 lsl (1 lsl k)) - 1 do
    let tt = replicate k bits in
    if full_support k tt then begin
      incr total;
      let ms = Cell_lib.matches lib k tt in
      let is_free (m : Cell_lib.match_entry) =
        if Cell_lib.free_phases lib then true
        else m.Cell_lib.phase = 0 && not m.Cell_lib.out_neg
      in
      let has_free = List.exists is_free ms in
      let has_any =
        ms <> []
        || Cell_lib.matches lib k (Int64.lognot tt) <> []
      in
      if has_free then incr free;
      if has_any then incr any;
      let c = Npn.canonical_cached k tt in
      let prev = try Hashtbl.find classes c with Not_found -> false in
      Hashtbl.replace classes c (prev || has_free)
    end
  done;
  let npn_total = Hashtbl.length classes in
  let npn_cov = Hashtbl.fold (fun _ b acc -> if b then acc + 1 else acc) classes 0 in
  {
    k;
    total = !total;
    covered_free = !free;
    covered_any = !any;
    npn_classes_total = npn_total;
    npn_classes_covered = npn_cov;
  }

let render libs ks =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "# Single-cell expressive power\n\n\
     Fraction of all Boolean functions of exactly k support variables that\n\
     one library cell realizes (free = without any inverter; any = allowing\n\
     inverted pins/output at extra cost).\n\n\
     | library | k | functions | free | any | NPN classes covered |\n\
     |---------|---|-----------|------|-----|---------------------|\n";
  List.iter
    (fun lib ->
      List.iter
        (fun k ->
          let r = analyze lib k in
          Printf.bprintf b "| %s | %d | %d | %d (%.0f%%) | %d (%.0f%%) | %d/%d |\n"
            (Cell_lib.name lib) r.k r.total r.covered_free
            (100.0 *. float_of_int r.covered_free /. float_of_int r.total)
            r.covered_any
            (100.0 *. float_of_int r.covered_any /. float_of_int r.total)
            r.npn_classes_covered r.npn_classes_total)
        ks)
    libs;
  Buffer.contents b
