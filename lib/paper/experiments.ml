type char_source = Computed | Published

type options = {
  char_source : char_source;
  delay : Cell_lib.delay_choice;
  synthesize : bool;
  cut_size : int;
  free_output_polarity : bool;
  verify : bool;
  verify_seed : int64;
  timing_map : bool;
}

let default_options =
  {
    char_source = Computed;
    delay = Cell_lib.Worst;
    synthesize = true;
    cut_size = 6;
    free_output_polarity = true;
    verify = false;
    verify_seed = 2026L;
    timing_map = false;
  }

(* ---------------- Table 1 ---------------- *)

let render_table1 () =
  let b = Buffer.create 2048 in
  Buffer.add_string b "# Table 1 — ambipolar CNTFET gate catalog\n\n";
  Buffer.add_string b "| Gate | Function | Inputs | XORs | CMOS-expressible |\n";
  Buffer.add_string b "|------|----------|--------|------|------------------|\n";
  List.iter
    (fun (e : Catalog.entry) ->
      Printf.bprintf b "| %s | `%s` | %d | %d | %s |\n" e.Catalog.name
        (Format.asprintf "%a" Gate_spec.pp e.Catalog.spec)
        (Gate_spec.arity e.Catalog.spec)
        (Gate_spec.num_xors e.Catalog.spec)
        (if Catalog.is_cmos_expressible e then "yes" else "")
      )
    Catalog.all;
  Printf.bprintf b "\n%d gates total; %d CMOS-expressible (the paper: 46 vs 7).\n"
    (List.length Catalog.all)
    (List.length Catalog.cmos_subset);
  Buffer.contents b

(* ---------------- Table 2 ---------------- *)

type t2_row = {
  gate : string;
  family : Cell_netlist.family;
  computed : Charlib.row;
  published : Paper_data.gate_char option;
}

let published_of family gate =
  let row = Paper_data.table2_find gate in
  match family with
  | Cell_netlist.Tg_static -> Some row.Paper_data.tg_static
  | Cell_netlist.Tg_pseudo -> Some row.Paper_data.tg_pseudo
  | Cell_netlist.Pass_pseudo -> Some row.Paper_data.pass_pseudo
  | Cell_netlist.Cmos -> row.Paper_data.cmos
  | Cell_netlist.Pass_static -> None

let table2_families =
  (* Pass_static is characterized too (Sec. 3.2 discusses and dismisses
     it); the paper prints no column for it, so it appears computed-only. *)
  [ Cell_netlist.Tg_static; Cell_netlist.Tg_pseudo; Cell_netlist.Pass_pseudo;
    Cell_netlist.Pass_static; Cell_netlist.Cmos ]

let run_table2 () =
  List.concat_map
    (fun family ->
      List.map
        (fun (r : Charlib.row) ->
          {
            gate = r.Charlib.name;
            family;
            computed = r;
            published = published_of family r.Charlib.name;
          })
        (Charlib.characterize_catalog family))
    table2_families

let render_table2 () =
  let b = Buffer.create 16384 in
  Buffer.add_string b
    "# Table 2 — library characterization (computed vs published)\n\n\
     T = transistors, A = normalized area, w/a = worst/average FO4 delay\n\
     normalized to tau (tau1 = 0.59 ps CNTFET, tau2 = 3.00 ps CMOS).\n";
  List.iter
    (fun family ->
      Printf.bprintf b "\n## %s\n\n" (Cell_netlist.family_name family);
      Buffer.add_string b
        "| Gate | T | A | FO4 w | FO4 a | paper T | paper A | paper w | paper a |\n\
         |------|---|---|-------|-------|---------|---------|---------|----------|\n";
      let rows = Charlib.characterize_catalog family in
      List.iter
        (fun (r : Charlib.row) ->
          match published_of family r.Charlib.name with
          | Some p ->
              Printf.bprintf b
                "| %s | %d | %.2f | %.2f | %.2f | %d | %.1f | %.1f | %.1f |\n"
                r.Charlib.name r.Charlib.transistors r.Charlib.area
                r.Charlib.fo4_worst r.Charlib.fo4_avg p.Paper_data.t
                p.Paper_data.a p.Paper_data.w p.Paper_data.avg
          | None ->
              Printf.bprintf b "| %s | %d | %.2f | %.2f | %.2f | – | – | – | – |\n"
                r.Charlib.name r.Charlib.transistors r.Charlib.area
                r.Charlib.fo4_worst r.Charlib.fo4_avg)
        rows;
      let t, a, w, v = Charlib.averages rows in
      Printf.bprintf b "| **avg** | %.1f | %.1f | %.1f | %.1f | | | | |\n" t a w v)
    table2_families;
  Buffer.contents b

(* ---------------- libraries ---------------- *)

let published_lib family ~delay ~free_phases =
  let pick (gc : Paper_data.gate_char) =
    match delay with
    | Cell_lib.Worst -> gc.Paper_data.w
    | Cell_lib.Average -> gc.Paper_data.avg
  in
  let entries =
    match family with
    | Cell_netlist.Cmos -> Catalog.cmos_subset
    | _ -> Catalog.all
  in
  let cells =
    List.mapi
      (fun i (e : Catalog.entry) ->
        let gc =
          match published_of family e.Catalog.name with
          | Some gc -> gc
          | None -> invalid_arg "published_lib"
        in
        let base_tt = Gate_spec.tt6 e.Catalog.spec in
        {
          Cell_lib.id = i;
          name =
            (if family = Cell_netlist.Cmos then Cell_lib.cmos_cell_name e.Catalog.name
             else e.Catalog.name);
          arity = Gate_spec.arity e.Catalog.spec;
          tt =
            (if family = Cell_netlist.Cmos then Int64.lognot base_tt else base_tt);
          area = gc.Paper_data.a;
          delay = pick gc;
          timing = None;
        })
      entries
  in
  Cell_lib.of_cells
    ~name:(Cell_netlist.family_name family ^ "(paper)")
    ~free_phases ~tau_ps:(Charlib.tau_ps family) cells

let libraries opts =
  let fp = opts.free_output_polarity in
  match opts.char_source with
  | Computed ->
      ( Cell_lib.cached ~delay:opts.delay Cell_netlist.Tg_static,
        Cell_lib.cached ~delay:opts.delay Cell_netlist.Tg_pseudo,
        Cell_lib.cached ~delay:opts.delay Cell_netlist.Cmos )
      |> fun (s, p, c) ->
      if fp then (s, p, c)
      else
        (* ablation: rebuild CNTFET libraries without free phases; they
           then need an explicit inverter cell, modeled by F00 *)
        let strip lib =
          Cell_lib.of_cells
            ~name:(Cell_lib.name lib ^ "(no-free-pol)")
            ~free_phases:false ~tau_ps:(Cell_lib.tau_ps lib)
            (List.map
               (fun (c : Cell_lib.cell) ->
                 if c.Cell_lib.name = "F00" then
                   { c with Cell_lib.tt = Int64.lognot c.Cell_lib.tt }
                 else c)
               (Cell_lib.cells lib))
        in
        (strip s, strip p, c)
  | Published ->
      ( published_lib Cell_netlist.Tg_static ~delay:opts.delay ~free_phases:fp,
        published_lib Cell_netlist.Tg_pseudo ~delay:opts.delay ~free_phases:fp,
        published_lib Cell_netlist.Cmos ~delay:opts.delay ~free_phases:false )

(* ---------------- Table 3 ---------------- *)

type t3_cell = {
  stats : Mapped.stats;
  cells_used : (string * int) list;
}

type t3_row = {
  bench : string;
  description : string;
  aig_size : int;
  static_r : t3_cell;
  pseudo_r : t3_cell;
  cmos_r : t3_cell;
}

let verify_by_simulation ?(seed = 2026L) ?(rounds = 8) aig mapped =
  let rng = Rand64.create seed in
  let ok = ref true in
  for _ = 1 to rounds do
    let words =
      Array.init (Aig.num_inputs aig) (fun _ -> Rand64.next rng)
    in
    let oa = Aig.simulate_outputs aig words in
    let om = Mapped.simulate mapped words in
    if oa <> om then ok := false
  done;
  !ok

let run_bench opts (lib_s, lib_p, lib_c) (e : Bench_suite.entry) =
  let aig = e.Bench_suite.build () in
  let opt = if opts.synthesize then Synth.resyn2rs aig else aig in
  let params =
    {
      Mapper.default_params with
      Mapper.cut_size = opts.cut_size;
      timing = opts.timing_map;
    }
  in
  let one lib =
    let m = Mapper.map ~params lib opt in
    if opts.verify && not (verify_by_simulation ~seed:opts.verify_seed opt m)
    then
      failwith (Printf.sprintf "mapping of %s against %s is not equivalent"
                  e.Bench_suite.name (Cell_lib.name lib));
    { stats = Mapped.stats m; cells_used = Mapped.count_cells m }
  in
  {
    bench = e.Bench_suite.name;
    description = e.Bench_suite.description;
    aig_size = Aig.num_ands opt;
    static_r = one lib_s;
    pseudo_r = one lib_p;
    cmos_r = one lib_c;
  }

let run_table3 ?(options = default_options) ?benches () =
  let libs = libraries options in
  let entries =
    match benches with
    | None -> Bench_suite.all
    | Some names -> List.map Bench_suite.find names
  in
  List.map (run_bench options libs) entries

let favg f rows =
  List.fold_left (fun a r -> a +. f r) 0.0 rows /. float_of_int (List.length rows)

let summarize rows =
  let g sel (r : t3_row) = float_of_int (sel r).stats.Mapped.gates in
  let a sel (r : t3_row) = (sel r).stats.Mapped.area in
  let l sel (r : t3_row) = float_of_int (sel r).stats.Mapped.levels in
  let d sel (r : t3_row) = (sel r).stats.Mapped.norm_delay in
  let abs_ sel (r : t3_row) = (sel r).stats.Mapped.abs_delay_ps in
  let sta_abs sel (r : t3_row) = (sel r).stats.Mapped.sta_abs_delay_ps in
  let st r = r.static_r and ps r = r.pseudo_r and cm r = r.cmos_r in
  let red f sel = 1.0 -. (favg (f sel) rows /. favg (f cm) rows) in
  let speedup sel = favg (fun r -> abs_ cm r /. abs_ sel r) rows in
  let sta_speedup sel = favg (fun r -> sta_abs cm r /. sta_abs sel r) rows in
  [
    ("gate_reduction_static", red g st);
    ("gate_reduction_pseudo", red g ps);
    ("area_reduction_static", red a st);
    ("area_reduction_pseudo", red a ps);
    ("level_reduction_static", red l st);
    ("level_reduction_pseudo", red l ps);
    ("delay_reduction_static", red d st);
    ("delay_reduction_pseudo", red d ps);
    ("speedup_static", speedup st);
    ("speedup_pseudo", speedup ps);
    ("sta_speedup_static", sta_speedup st);
    ("sta_speedup_pseudo", sta_speedup ps);
  ]

let render_table3 ?(options = default_options) ?benches () =
  let rows = run_table3 ~options ?benches () in
  let b = Buffer.create 16384 in
  Buffer.add_string b
    "# Table 3 — technology mapping results (computed | paper)\n\n\
     Per benchmark and library: gate count, normalized area, logic levels,\n\
     normalized delay and absolute delay (ps); `sta ps` is the\n\
     load-aware STA delay (real fanout loads, FO4 outputs) alongside the\n\
     paper's fixed unit-load convention.\n\n";
  Buffer.add_string b
    "| Bench | lib | gates | area | levels | delay | ps | sta ps | paper gates | paper area | paper levels | paper delay | paper ps |\n\
     |-------|-----|-------|------|--------|-------|----|--------|------------|-----------|--------------|-------------|----------|\n";
  List.iter
    (fun r ->
      let paper = try Some (Paper_data.table3_find r.bench) with Not_found -> None in
      let line name (c : t3_cell) (p : Paper_data.mapping_result option) =
        let s = c.stats in
        (match p with
        | Some p ->
            Printf.bprintf b
              "| %s | %s | %d | %.1f | %d | %.1f | %.1f | %.1f | %d | %.1f | %d | %.1f | %.1f |\n"
              r.bench name s.Mapped.gates s.Mapped.area s.Mapped.levels
              s.Mapped.norm_delay s.Mapped.abs_delay_ps
              s.Mapped.sta_abs_delay_ps p.Paper_data.gates
              p.Paper_data.area p.Paper_data.levels p.Paper_data.norm_delay
              p.Paper_data.abs_delay_ps
        | None ->
            Printf.bprintf b
              "| %s | %s | %d | %.1f | %d | %.1f | %.1f | %.1f | | | | | |\n"
              r.bench name s.Mapped.gates s.Mapped.area s.Mapped.levels
              s.Mapped.norm_delay s.Mapped.abs_delay_ps
              s.Mapped.sta_abs_delay_ps)
      in
      line "static" r.static_r
        (Option.map (fun p -> p.Paper_data.static) paper);
      line "pseudo" r.pseudo_r
        (Option.map (fun p -> p.Paper_data.pseudo) paper);
      line "cmos" r.cmos_r
        (Option.map (fun p -> p.Paper_data.cmos_map) paper))
    rows;
  Buffer.add_string b "\n## Aggregate improvements vs CMOS\n\n";
  Buffer.add_string b "| metric | computed | paper |\n|--------|----------|-------|\n";
  let paper_of = function
    | "gate_reduction_static" -> Some 0.386
    | "area_reduction_static" -> Some 0.377
    | "area_reduction_pseudo" -> Some 0.645
    | "level_reduction_static" -> Some 0.415
    | "level_reduction_pseudo" -> Some 0.404
    | "speedup_static" -> Some 6.9
    | "speedup_pseudo" -> Some 5.8
    | _ -> None
  in
  List.iter
    (fun (k, v) ->
      match paper_of k with
      | Some p -> Printf.bprintf b "| %s | %.3f | %.3f |\n" k v p
      | None -> Printf.bprintf b "| %s | %.3f | |\n" k v)
    (summarize rows);
  Buffer.contents b

let run_fig6 ?(options = default_options) ?benches () =
  let rows = run_table3 ~options ?benches () in
  List.map
    (fun r ->
      ( r.bench,
        r.cmos_r.stats.Mapped.abs_delay_ps /. r.static_r.stats.Mapped.abs_delay_ps,
        r.cmos_r.stats.Mapped.abs_delay_ps /. r.pseudo_r.stats.Mapped.abs_delay_ps ))
    rows

let run_fig6_sta ?(options = default_options) ?benches () =
  let rows = run_table3 ~options ?benches () in
  List.map
    (fun r ->
      ( r.bench,
        r.cmos_r.stats.Mapped.sta_abs_delay_ps
        /. r.static_r.stats.Mapped.sta_abs_delay_ps,
        r.cmos_r.stats.Mapped.sta_abs_delay_ps
        /. r.pseudo_r.stats.Mapped.sta_abs_delay_ps ))
    rows

let render_fig6 ?(options = default_options) ?benches () =
  let rows = run_table3 ~options ?benches () in
  let data =
    List.map
      (fun r ->
        ( r.bench,
          r.cmos_r.stats.Mapped.abs_delay_ps
          /. r.static_r.stats.Mapped.abs_delay_ps,
          r.cmos_r.stats.Mapped.abs_delay_ps
          /. r.pseudo_r.stats.Mapped.abs_delay_ps,
          r.cmos_r.stats.Mapped.sta_abs_delay_ps
          /. r.static_r.stats.Mapped.sta_abs_delay_ps,
          r.cmos_r.stats.Mapped.sta_abs_delay_ps
          /. r.pseudo_r.stats.Mapped.sta_abs_delay_ps ))
      rows
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "# Figure 6 — absolute-delay ratio of CMOS to CNTFET implementations\n\n\
     (bars of the paper's figure; paper values derived from Table 3;\n\
     `sta` columns use the load-aware STA delay on both sides)\n\n\
     | Bench | static (computed) | pseudo (computed) | static (sta) | pseudo (sta) | static (paper) | pseudo (paper) |\n\
     |-------|-------------------|-------------------|--------------|--------------|----------------|----------------|\n";
  List.iter
    (fun (bench, s, p, ss, sp) ->
      let ps, pp =
        match
          List.find_opt (fun (n, _, _) -> n = bench) Paper_data.fig6_speedups
        with
        | Some (_, a, c) -> (a, c)
        | None -> (nan, nan)
      in
      Printf.bprintf b "| %s | %.2f | %.2f | %.2f | %.2f | %.2f | %.2f |\n"
        bench s p ss sp ps pp)
    data;
  let avg sel =
    favg sel (List.map (fun (_, s, p, ss, sp) -> ((s, p), (ss, sp))) data)
  in
  Printf.bprintf b "| **avg** | %.2f | %.2f | %.2f | %.2f | 6.9 | 5.8 |\n"
    (avg (fun ((s, _), _) -> s))
    (avg (fun ((_, p), _) -> p))
    (avg (fun (_, (ss, _)) -> ss))
    (avg (fun (_, (_, sp)) -> sp));
  Buffer.contents b
