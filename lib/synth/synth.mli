(** Multi-level logic optimization on AIGs.

    The passes mirror the algorithm family behind ABC's [resyn2rs] script,
    which the paper runs before mapping (Sec. 4.4):
    - {!balance} — rebuilds AND trees in minimum-depth (Huffman) order;
    - {!rewrite} — DAG-aware replacement of small (4-cut) cones by better
      factored-form structures;
    - {!refactor} — the same with large reconvergent cuts (10 leaves),
      using ISOP + algebraic factoring to re-express each cone;
    - {!resyn2rs} — the composed script.

    Every pass returns a fresh, structurally hashed, dead-node-free AIG
    that is combinationally equivalent to its input (tested by CEC). *)

val balance : Aig.t -> Aig.t

(** The cut-based passes take the cut engine to enumerate candidate cones
    with ({!Cut.Packed}, the default, reads each cone's function straight
    out of the packed enumeration and keeps its per-node bookkeeping in
    timestamp-stamped scratch arrays; {!Cut.Reference} is the legacy
    per-cut cone-walk path kept for differential testing — both produce
    identical results), and an optional [stats] record that accumulates the
    engine's hot-path counters across the pass (and across every sub-pass
    of the composed scripts).

    [jobs] (default 1) runs each pass's per-node candidate analysis — cut
    enumeration, cone functions, ISOP factoring, MFFC accounting — across
    a {!Par} pool of that many domains, window by window; the commit into
    the rebuilt graph stays sequential.  Because the analysis is a pure
    function of the immutable source graph, the output is byte-identical
    for every [jobs] value. *)

val rewrite :
  ?zero_gain:bool ->
  ?engine:Cut.engine ->
  ?stats:Cut.stats ->
  ?jobs:int ->
  Aig.t ->
  Aig.t
(** Cut size 4; replaces a cone when the factored rebuild uses fewer nodes
    than the cone's MFFC ([zero_gain] accepts equal size, useful as a
    perturbation between other passes). *)

val refactor :
  ?zero_gain:bool ->
  ?cut_size:int ->
  ?engine:Cut.engine ->
  ?stats:Cut.stats ->
  ?jobs:int ->
  Aig.t ->
  Aig.t
(** Default cut size 10 (at most {!Tt.max_vars}); cut sizes above 6 use a
    single greedy reconvergent cut per node, where the packed engine's
    incremental tables do not apply. *)

val resyn2rs :
  ?engine:Cut.engine -> ?stats:Cut.stats -> ?jobs:int -> Aig.t -> Aig.t
(** b; rw; rf; b; rw; rw -z; b; rf -z; rw -z; b. *)

val light :
  ?engine:Cut.engine -> ?stats:Cut.stats -> ?jobs:int -> Aig.t -> Aig.t
(** b; rw; b — a cheap script for quick runs. *)
