(* Multi-level AIG optimization: balance / rewrite / refactor.

   Every pass rebuilds into a fresh graph (keeping structural hashing
   dense) and finishes with a cleanup copy that drops dead nodes. *)

let lit_map_get map l =
  let nl = Hashtbl.find map (Aig.node_of l) in
  if Aig.is_compl l then Aig.lnot nl else nl

(* ---------------- balance ---------------- *)

module Lvl_heap = struct
  (* tiny binary min-heap of (level, lit) *)
  type t = { mutable a : (int * int) array; mutable n : int }

  let create () = { a = Array.make 16 (0, 0); n = 0 }

  let push h x =
    if h.n >= Array.length h.a then begin
      let b = Array.make (2 * Array.length h.a) (0, 0) in
      Array.blit h.a 0 b 0 h.n;
      h.a <- b
    end;
    h.a.(h.n) <- x;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while !i > 0 && fst h.a.((!i - 1) / 2) > fst h.a.(!i) do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let best = ref !i in
      if l < h.n && fst h.a.(l) < fst h.a.(!best) then best := l;
      if r < h.n && fst h.a.(r) < fst h.a.(!best) then best := r;
      if !best = !i then continue := false
      else begin
        let tmp = h.a.(!best) in
        h.a.(!best) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !best
      end
    done;
    top

  let size h = h.n
end

let balance aig =
  let fresh = Aig.create ~size_hint:(Aig.num_nodes aig) () in
  let map = Hashtbl.create (Aig.num_nodes aig) in
  Hashtbl.add map 0 Aig.lit_false;
  for i = 0 to Aig.num_inputs aig - 1 do
    Hashtbl.add map (i + 1) (Aig.add_input ~name:(Aig.input_name aig i) fresh)
  done;
  let refs = Aig.fanout_counts aig in
  let lvl = Hashtbl.create (Aig.num_nodes aig) in
  let level_of l =
    try Hashtbl.find lvl (Aig.node_of l) with Not_found -> 0
  in
  (* Collect the leaves of the AND tree rooted at [nd], flattening through
     non-complemented single-fanout AND fanins. *)
  let rec leaves_of acc l root =
    let nd = Aig.node_of l in
    if
      (not root)
      && (Aig.is_compl l || (not (Aig.is_and aig nd)) || refs.(nd) > 1)
    then l :: acc
    else leaves_of (leaves_of acc (Aig.fanin0 aig nd) false)
           (Aig.fanin1 aig nd) false
  in
  Aig.iter_ands aig (fun nd ->
      let leaves = leaves_of [] (Aig.lit_of_node nd) true in
      let h = Lvl_heap.create () in
      List.iter
        (fun l ->
          let nl = lit_map_get map l in
          Lvl_heap.push h (level_of nl, nl))
        leaves;
      let result =
        if Lvl_heap.size h = 0 then Aig.lit_true
        else begin
          while Lvl_heap.size h > 1 do
            let l1, a = Lvl_heap.pop h in
            let l2, b = Lvl_heap.pop h in
            let c = Aig.mk_and fresh a b in
            let lv = 1 + max l1 l2 in
            Hashtbl.replace lvl (Aig.node_of c) lv;
            Lvl_heap.push h (lv, c)
          done;
          snd (Lvl_heap.pop h)
        end
      in
      Hashtbl.replace map nd result);
  Array.iter
    (fun (name, l) -> Aig.add_output fresh name (lit_map_get map l))
    (Aig.outputs aig);
  Aig.cleanup fresh

(* ---------------- refactor / rewrite ---------------- *)

(* Greedy reconvergence-driven cut of at most [k] leaves. *)
let greedy_cut aig nd k =
  let leaves = Hashtbl.create 8 in
  let add n = Hashtbl.replace leaves n () in
  add (Aig.node_of (Aig.fanin0 aig nd));
  add (Aig.node_of (Aig.fanin1 aig nd));
  let continue = ref true in
  let steps = ref 0 in
  while !continue && !steps < 64 do
    incr steps;
    (* pick the expandable leaf with the smallest growth *)
    let best = ref None in
    Hashtbl.iter
      (fun leaf () ->
        if Aig.is_and aig leaf then begin
          let f0 = Aig.node_of (Aig.fanin0 aig leaf) in
          let f1 = Aig.node_of (Aig.fanin1 aig leaf) in
          let growth =
            (if Hashtbl.mem leaves f0 || f0 = leaf then 0 else 1)
            + (if Hashtbl.mem leaves f1 || f1 = leaf then 0 else 1)
            - 1
          in
          let size' = Hashtbl.length leaves + growth in
          if size' <= k then
            match !best with
            | Some (_, g) when g <= growth -> ()
            | _ -> best := Some (leaf, growth)
        end)
      leaves;
    match !best with
    | None -> continue := false
    | Some (leaf, _) ->
        Hashtbl.remove leaves leaf;
        add (Aig.node_of (Aig.fanin0 aig leaf));
        add (Aig.node_of (Aig.fanin1 aig leaf))
  done;
  let arr = Array.of_seq (Hashtbl.to_seq_keys leaves) in
  Array.sort compare arr;
  arr

let rec build_form g leaf_lits = function
  | Factored.Const b -> if b then Aig.lit_true else Aig.lit_false
  | Factored.Lit (i, s) ->
      if s then leaf_lits.(i) else Aig.lnot leaf_lits.(i)
  | Factored.And fs ->
      Aig.mk_and_list g (List.map (build_form g leaf_lits) fs)
  | Factored.Or fs ->
      Aig.mk_or_list g (List.map (build_form g leaf_lits) fs)

let max_isop_cubes = 96

(* ISOP + factoring of a cone function is a pure function of its truth
   table, and the same tables recur constantly across nodes and across the
   sub-passes of a script (~96% repeats on the benchmark suite).  The
   packed engine memoizes the result per domain; the reference engine
   keeps the legacy always-recompute path.  The cache changes nothing but
   wall time: identical inputs map to the identical factored form. *)
let form_cache_bound = 1 lsl 15

(* Keyed on {!Tt.hash}, which mixes every word of the table; the generic
   [Hashtbl.hash] samples only a prefix of the boxed int64s, and wide
   tables that share a prefix would pile into a handful of buckets. *)
module Form_tbl = Hashtbl.Make (struct
  type t = Tt.t

  let equal = Tt.equal
  let hash = Tt.hash
end)

(* Two generations instead of a single table with a full reset: a large
   circuit's refactor sweep holds more distinct cone functions than one
   generation, and wiping everything mid-pass made even the warm repeat
   passes pay full ISOP cost.  On overflow the current generation is
   demoted to fallback (and fallback hits are promoted back), so the hot
   working set survives while memory stays capped at ~2x the bound per
   domain. *)
type form_caches = {
  mutable cur : (Factored.t * int) option Form_tbl.t;
  mutable prev : (Factored.t * int) option Form_tbl.t;
}

let form_cache : form_caches Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { cur = Form_tbl.create 1024; prev = Form_tbl.create 16 })

let pick_form_raw t =
  let sop = Sop.isop t in
  if Sop.num_cubes sop > max_isop_cubes then None
  else
    let f = Factored.factor sop in
    Some (f, Factored.num_and2 f)

let pick_form_cached t =
  let c = Domain.DLS.get form_cache in
  match Form_tbl.find_opt c.cur t with
  | Some r -> r
  | None ->
      let r =
        match Form_tbl.find_opt c.prev t with
        | Some r -> r
        | None -> pick_form_raw t
      in
      if Form_tbl.length c.cur >= form_cache_bound then begin
        let o = c.prev in
        c.prev <- c.cur;
        Form_tbl.reset o;
        c.cur <- o
      end;
      Form_tbl.add c.cur t r;
      r

(* Number of AND nodes that stop being referenced when the cone of [nd]
   above the cut is bypassed: the node's MFFC restricted to the cone.
   [refs] are whole-graph fanout counts. *)
let deaths_in_cone aig refs nd cut =
  let in_cut = Hashtbl.create 8 in
  Array.iter (fun n -> Hashtbl.replace in_cut n ()) cut;
  let dec = Hashtbl.create 8 in
  let deref n =
    let d = try Hashtbl.find dec n with Not_found -> 0 in
    Hashtbl.replace dec n (d + 1);
    refs.(n) - (d + 1) = 0
  in
  let count = ref 0 in
  let rec go n =
    incr count;
    let visit f =
      let m = Aig.node_of f in
      if Aig.is_and aig m && (not (Hashtbl.mem in_cut m)) && deref m then go m
    in
    visit (Aig.fanin0 aig n);
    visit (Aig.fanin1 aig n)
  in
  go nd;
  !count

(* Per-worker scratch of the refactor sweep's packed-engine helpers:
   timestamped marks (a stamp bump invalidates all marks at once, so no
   per-call table is ever built or cleared) plus the greedy-cut leaf
   arrays.  One instance per pool worker — every helper's result is a
   pure function of the source graph, so which worker analyzes which
   node cannot change any value. *)
type ts_scratch = {
  ts_mark : int array;
  ts_dec : int array;
  ts_dec_stamp : int array;
  mutable ts_stamp : int;
  ts_glv : int array;
  ts_gseq : int array;
}

let refactor_impl ?(zero_gain = false) ?(cut_size = 10)
    ?(engine = Cut.Packed) ?stats ?(jobs = 1) aig =
  let st = match stats with Some s -> s | None -> Cut.stats_create () in
  let cut_size = min cut_size Tt.max_vars in
  let fresh = Aig.create ~size_hint:(Aig.num_nodes aig) () in
  let map = Hashtbl.create (Aig.num_nodes aig) in
  Hashtbl.add map 0 Aig.lit_false;
  for i = 0 to Aig.num_inputs aig - 1 do
    Hashtbl.add map (i + 1) (Aig.add_input ~name:(Aig.input_name aig i) fresh)
  done;
  let n = Aig.num_nodes aig in
  let refs = Aig.fanout_counts aig in
  let gcap = cut_size + 4 in
  let mk_scratch () =
    {
      ts_mark = Array.make n 0;
      ts_dec = Array.make n 0;
      ts_dec_stamp = Array.make n 0;
      ts_stamp = 0;
      ts_glv = Array.make gcap 0;
      ts_gseq = Array.make gcap 0;
    }
  in
  let deref sc s m =
    if sc.ts_dec_stamp.(m) <> s then begin
      sc.ts_dec_stamp.(m) <- s;
      sc.ts_dec.(m) <- 0
    end;
    sc.ts_dec.(m) <- sc.ts_dec.(m) + 1;
    refs.(m) - sc.ts_dec.(m) = 0
  in
  (* [deaths_in_cone], timestamp edition: same traversal, same count. *)
  let deaths_in_cone_ts sc nd cut =
    sc.ts_stamp <- sc.ts_stamp + 1;
    let s = sc.ts_stamp in
    Array.iter (fun l -> sc.ts_mark.(l) <- s) cut;
    let count = ref 0 in
    let rec go nd' =
      incr count;
      let visit f =
        let m = Aig.node_of f in
        if Aig.is_and aig m && sc.ts_mark.(m) <> s && deref sc s m then go m
      in
      visit (Aig.fanin0 aig nd');
      visit (Aig.fanin1 aig nd')
    in
    go nd;
    !count
  in
  (* [Aig.mffc_size], timestamp edition. *)
  let mffc_size_ts sc root =
    if not (Aig.is_and aig root) then 0
    else begin
      sc.ts_stamp <- sc.ts_stamp + 1;
      let s = sc.ts_stamp in
      let count = ref 0 in
      let rec go nd' =
        incr count;
        let visit f =
          let m = Aig.node_of f in
          if Aig.is_and aig m && deref sc s m then go m
        in
        visit (Aig.fanin0 aig nd');
        visit (Aig.fanin1 aig nd')
      in
      go root;
      !count
    end
  in
  (* [greedy_cut] without the Hashtbl: leaves live in a small scratch
     array.  The reference picks the first minimal-growth leaf in
     [Hashtbl.iter] order, so to stay result-identical this edition breaks
     growth ties exactly the way that table iterates: ascending bucket
     ([Hashtbl.hash leaf land 15] — 16 buckets, seed 0, and the table never
     grows past the 32-binding resize threshold here), then
     most-recently-inserted first within a bucket. *)
  let greedy_cut_ts sc nd k =
    let glv = sc.ts_glv and gseq = sc.ts_gseq in
    let gcnt = ref 0 and seqc = ref 0 in
    let mem x =
      let r = ref false in
      for i = 0 to !gcnt - 1 do
        if glv.(i) = x then r := true
      done;
      !r
    in
    let add x =
      if not (mem x) then begin
        glv.(!gcnt) <- x;
        incr seqc;
        gseq.(!gcnt) <- !seqc;
        incr gcnt
      end
    in
    let remove x =
      let idx = ref (-1) in
      for i = 0 to !gcnt - 1 do
        if glv.(i) = x then idx := i
      done;
      if !idx >= 0 then begin
        glv.(!idx) <- glv.(!gcnt - 1);
        gseq.(!idx) <- gseq.(!gcnt - 1);
        decr gcnt
      end
    in
    add (Aig.node_of (Aig.fanin0 aig nd));
    add (Aig.node_of (Aig.fanin1 aig nd));
    let continue = ref true in
    let steps = ref 0 in
    while !continue && !steps < 64 do
      incr steps;
      (* pick the expandable leaf with the smallest growth *)
      let best = ref (-1) in
      let bg = ref 0 and bb = ref 0 and bs = ref 0 in
      for i = 0 to !gcnt - 1 do
        let leaf = glv.(i) in
        if Aig.is_and aig leaf then begin
          let f0 = Aig.node_of (Aig.fanin0 aig leaf) in
          let f1 = Aig.node_of (Aig.fanin1 aig leaf) in
          let growth =
            (if mem f0 || f0 = leaf then 0 else 1)
            + (if mem f1 || f1 = leaf then 0 else 1)
            - 1
          in
          if !gcnt + growth <= k then begin
            let bucket = Hashtbl.hash leaf land 15 in
            if
              !best < 0
              || growth < !bg
              || (growth = !bg
                 && (bucket < !bb || (bucket = !bb && gseq.(i) > !bs)))
            then begin
              best := leaf;
              bg := growth;
              bb := bucket;
              bs := gseq.(i)
            end
          end
        end
      done;
      if !best < 0 then continue := false
      else begin
        let leaf = !best in
        remove leaf;
        add (Aig.node_of (Aig.fanin0 aig leaf));
        add (Aig.node_of (Aig.fanin1 aig leaf))
      end
    done;
    let arr = Array.sub glv 0 !gcnt in
    Array.sort compare arr;
    arr
  in
  let greedy sc =
    match engine with
    | Cut.Packed -> greedy_cut_ts sc
    | Cut.Reference -> greedy_cut aig
  in
  let deaths sc =
    match engine with
    | Cut.Packed -> deaths_in_cone_ts sc
    | Cut.Reference -> deaths_in_cone aig refs
  in
  let mffc_of sc =
    match engine with
    | Cut.Packed -> mffc_size_ts sc
    | Cut.Reference -> Aig.mffc_size aig refs
  in
  (* Small cuts: use the priority-cut enumeration (several candidate cones
     per node, like ABC's rewrite); large cuts: one greedy reconvergent
     cut per node (like ABC's refactor).  Each cut is paired with its
     function when the engine already knows it (packed priority cuts);
     [None] falls back to the cone walk. *)
  let enum_cuts : ts_scratch -> int -> (int array * Tt.t option) list =
    if cut_size <= 6 then begin
      match engine with
      | Cut.Packed ->
          let cs = Cut.compute_packed ~stats:st aig ~k:cut_size ~limit:8 in
          fun sc nd ->
            let prio = ref [] in
            for j = Cut.num_cuts cs nd - 1 downto 0 do
              let m = Cut.cut_nleaves cs nd j in
              if m >= 2 then
                prio :=
                  ( Cut.cut_leaves cs nd j,
                    Some (Tt.of_bits m (Cut.cut_tt cs nd j)) )
                  :: !prio
            done;
            let prio = !prio in
            let g = greedy sc nd cut_size in
            if
              Array.length g >= 2
              && not (List.exists (fun (l, _) -> l = g) prio)
            then (g, None) :: prio
            else prio
      | Cut.Reference ->
          let cuts = Cut.compute aig ~k:cut_size ~limit:8 in
          fun sc nd ->
            (* priority cuts plus the greedy reconvergent cut (the
               enumeration favors small cuts and can crowd out the
               reconvergent one) *)
            let prio =
              List.filter_map
                (fun c ->
                  let l = c.Cut.leaves in
                  if Array.length l < 2 then None else Some (l, None))
                cuts.(nd)
            in
            let g = greedy sc nd cut_size in
            if
              Array.length g >= 2
              && not (List.exists (fun (l, _) -> l = g) prio)
            then (g, None) :: prio
            else prio
    end
    else fun sc nd ->
      let c = greedy sc nd cut_size in
      if Array.length c >= 2 then [ (c, None) ] else []
  in
  let pick_form =
    match engine with
    | Cut.Packed -> pick_form_cached
    | Cut.Reference -> pick_form_raw
  in
  (* The sweep runs in two phases per window of node ids.

     Phase A (parallel): per-node candidate analysis — cut enumeration,
     cone functions, ISOP factoring, MFFC/death counts.  All of it reads
     only the immutable source graph and [refs], so nodes are
     independent: a Domain pool chews a window with disjoint writes into
     the [analysis] slots, and the values are identical whatever the
     pool width (the DLS form cache only memoizes a pure function).

     Phase B (sequential): the dry-run strash-aware costing and the
     commit into [fresh] — inherently ordered, because cost and
     replacement depend on everything committed so far.  Keeping phase B
     byte-for-byte the old loop is what makes [--jobs n] output
     identical to [--jobs 1].

     Candidates are scored and sorted in phase A; only the first 12
     (the dry-run budget below) are kept, bounding a window's analysis
     memory at a few thousand small tuples. *)
  let analyze sc nd =
    if (not (Aig.is_and aig nd)) || refs.(nd) = 0 then (0, [])
    else begin
      let mffc = mffc_of sc nd in
      (* Candidates over all cuts and both output polarities.  The value
         of a candidate is (nodes that die) - (strash-aware rebuild
         cost); the plain copy scores 0, so any positive score is a
         strict improvement. *)
      let candidates =
        List.concat_map
          (fun (cut, tt_opt) ->
            let deaths = deaths sc nd cut in
            let tt =
              match tt_opt with
              | Some t -> t
              | None -> Aig.tt_of_cut aig (Aig.lit_of_node nd) cut
            in
            List.filter_map
              (fun (t, neg) ->
                match pick_form t with
                | Some (f, est) -> Some (cut, f, neg, deaths, deaths - est)
                | None -> None)
              [ (tt, false); (Tt.bnot tt, true) ])
          (enum_cuts sc nd)
      in
      let candidates =
        List.sort
          (fun (_, _, _, _, a) (_, _, _, _, b) -> compare b a)
          candidates
      in
      let rec take i = function
        | (cut, form, neg, deaths, _) :: tl when i < 12 ->
            (cut, form, neg, deaths) :: take (i + 1) tl
        | _ -> []
      in
      (mffc, take 0 candidates)
    end
  in
  let commit nd (mffc, cands) =
    let replaced = ref false in
    if refs.(nd) > 0 then begin
      (* Dry-run candidates (strash-aware cost), keep the best score. *)
      let best = ref None in
      List.iter
        (fun (cut, form, neg, deaths) ->
          let leaf_lits =
            Array.map (fun nd' -> lit_map_get map (Aig.lit_of_node nd')) cut
          in
          let ckpt = Aig.checkpoint fresh in
          ignore (build_form fresh leaf_lits form);
          let cost = Aig.checkpoint fresh - ckpt in
          Aig.rollback fresh ckpt;
          (* Optimistic score (full MFFC as savings) with the real
             deaths as tie-breaker, preferring larger cuts: enables
             cross-node sharing that per-node accounting cannot see;
             the pass-level guard bounds the risk. *)
          let score = (mffc - cost, deaths - cost, Array.length cut) in
          let ok =
            if zero_gain then mffc - cost >= 0 && deaths - cost >= -1
            else mffc - cost > 0 && deaths - cost >= 0
          in
          if ok then
            match !best with
            | Some (sc, _, _, _) when sc >= score -> ()
            | _ -> best := Some (score, cut, form, neg))
        cands;
      match !best with
      | Some (_, cut, form, neg) ->
          let leaf_lits =
            Array.map (fun nd' -> lit_map_get map (Aig.lit_of_node nd')) cut
          in
          let l = build_form fresh leaf_lits form in
          Hashtbl.replace map nd (if neg then Aig.lnot l else l);
          replaced := true
      | None -> ()
    end;
    if not !replaced then begin
      let a = lit_map_get map (Aig.fanin0 aig nd) in
      let b = lit_map_get map (Aig.fanin1 aig nd) in
      Hashtbl.replace map nd (Aig.mk_and fresh a b)
    end
  in
  let window = 1 lsl 15 in
  let analysis = Array.make (min window (max 1 (n - 1))) (0, []) in
  Par.with_pool ~jobs (fun pool ->
      let scratches = Array.make (Par.width pool) None in
      let scratch w =
        match scratches.(w) with
        | Some sc -> sc
        | None ->
            let sc = mk_scratch () in
            scratches.(w) <- Some sc;
            sc
      in
      let w0 = ref 1 in
      while !w0 < n do
        let w1 = min n (!w0 + window) in
        let base = !w0 in
        Par.run pool ~n:(w1 - base) (fun w lo hi ->
            let sc = scratch w in
            for i = lo to hi - 1 do
              analysis.(i) <- analyze sc (base + i)
            done);
        for i = 0 to w1 - base - 1 do
          let nd = base + i in
          if Aig.is_and aig nd then commit nd analysis.(i)
        done;
        w0 := w1
      done);
  Array.iter
    (fun (name, l) -> Aig.add_output fresh name (lit_map_get map l))
    (Aig.outputs aig);
  Aig.cleanup fresh

(* The rebuild-based gain test compares against the source graph's MFFC,
   which can overestimate savings once earlier replacements strash-merge
   copies; a whole-pass guard keeps every pass size-monotone. *)
let guard pass aig =
  let out = pass aig in
  (if Sys.getenv_opt "SYNTH_DEBUG" <> None then
     Printf.eprintf "[synth] pass: %d -> %d ands\n%!" (Aig.num_ands aig)
       (Aig.num_ands out));
  if Aig.num_ands out <= Aig.num_ands aig then out else aig

let refactor ?zero_gain ?cut_size ?engine ?stats ?jobs aig =
  guard (refactor_impl ?zero_gain ?cut_size ?engine ?stats ?jobs) aig

let rewrite ?(zero_gain = false) ?engine ?stats ?jobs aig =
  refactor ~zero_gain ~cut_size:4 ?engine ?stats ?jobs aig

let resyn2rs ?engine ?stats ?jobs aig =
  let rewrite ?zero_gain a = rewrite ?zero_gain ?engine ?stats ?jobs a in
  let refactor ?zero_gain a = refactor ?zero_gain ?engine ?stats ?jobs a in
  aig |> rewrite |> refactor |> balance |> rewrite
  |> rewrite ~zero_gain:true |> balance |> refactor ~zero_gain:true
  |> rewrite ~zero_gain:true |> balance

let light ?engine ?stats ?jobs aig = aig |> rewrite ?engine ?stats ?jobs |> balance
