let family_of_name = function
  | "static" -> Some Cell_netlist.Tg_static
  | "pseudo" -> Some Cell_netlist.Tg_pseudo
  | "pass-pseudo" -> Some Cell_netlist.Pass_pseudo
  | "pass-static" -> Some Cell_netlist.Pass_static
  | "cmos" -> Some Cell_netlist.Cmos
  | _ -> None

let family_arg_name = function
  | Cell_netlist.Tg_static -> "static"
  | Cell_netlist.Tg_pseudo -> "pseudo"
  | Cell_netlist.Pass_pseudo -> "pass-pseudo"
  | Cell_netlist.Pass_static -> "pass-static"
  | Cell_netlist.Cmos -> "cmos"

let usage_die ~prog msg =
  prerr_endline (prog ^ ": " ^ msg);
  exit 2

let parse_families ~prog ?(allowed = Cell_netlist.all_families) s =
  if s = "all" then
    List.filter (fun f -> List.mem f allowed) Cell_netlist.all_families
  else
    List.map
      (fun f ->
        match family_of_name f with
        | Some fam when List.mem fam allowed -> fam
        | _ -> usage_die ~prog ("unknown family " ^ f))
      (String.split_on_char ',' s)

let bench_entries ~prog = function
  | [] -> Bench_suite.all
  | names ->
      List.map
        (fun s ->
          match Bench_suite.find s with
          | e -> e
          | exception Not_found -> usage_die ~prog ("unknown benchmark " ^ s))
        (List.rev names)

let synth_steps ~prog = function
  | "none" -> ""
  | "light" -> "light"
  | "full" -> "resyn2rs"
  | m -> usage_die ~prog ("unknown synth mode " ^ m)

let fast_subset = [ "C1908"; "t481"; "C1355"; "add-16"; "add-32"; "add-64" ]

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:"
                then
                  try
                    Scanf.sscanf
                      (String.sub line 6 (String.length line - 6))
                      " %d kB"
                      (fun v -> Some v)
                  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None
                else go ()
          in
          go ())
