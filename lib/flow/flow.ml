exception Flow_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Flow_error s)) fmt

(* ---------------- configuration and context ---------------- *)

type config = {
  family : Cell_netlist.family;
  cut_size : int;
  cut_engine : Cut.engine;
  max_cuts : int option;
  timing : bool;
  po_fanout : float;
  unit_loads : bool;
  seed : int64;
  verify_rounds : int;
  conflict_budget : int option;
  isolate : bool;
  pass_budget_s : float option;
  fault_rounds : int;
  jobs : int;
}

let default_config =
  {
    family = Cell_netlist.Tg_static;
    cut_size = 6;
    cut_engine = Cut.Packed;
    max_cuts = None;
    timing = false;
    po_fanout = 4.0;
    unit_loads = false;
    seed = 2026L;
    verify_rounds = 8;
    conflict_budget = None;
    isolate = false;
    pass_budget_s = None;
    fault_rounds = 32;
    jobs = 1;
  }

type ctx = {
  name : string;
  family : Cell_netlist.family;
  aig : Aig.t;
  golden : Aig.t option;
  lib : Cell_lib.t option;
  mapped : Mapped.t option;
  sta : Sta.t option;
  placement : Fabric.placement option;
  fault : Gate_fault.summary option;
  testability : Testability.summary option;
  diags : Diag.t list;
  verified : bool option;
}

let init ?(family = Cell_netlist.Tg_static) ~name aig =
  {
    name;
    family;
    aig;
    golden = None;
    lib = None;
    mapped = None;
    sta = None;
    placement = None;
    fault = None;
    testability = None;
    diags = [];
    verified = None;
  }

let diags_since before after =
  let rec drop n l = if n <= 0 then l else drop (n - 1) (List.tl l) in
  drop (List.length before.diags) after.diags

(* ---------------- pass arguments ---------------- *)

type step = { pass : string; args : (string * string option) list }

let arg_value step key =
  match List.assoc_opt key step.args with
  | Some (Some v) -> Some v
  | Some None -> fail "%s: argument %s needs a value" step.pass key
  | None -> None

let arg_flag step key =
  match List.assoc_opt key step.args with
  | Some None -> true
  | Some (Some _) -> fail "%s: %s is a flag, not key=value" step.pass key
  | None -> false

let arg_int step key =
  Option.map
    (fun v ->
      try int_of_string v
      with _ -> fail "%s: %s expects an integer, got %s" step.pass key v)
    (arg_value step key)

let arg_float step key =
  Option.map
    (fun v ->
      try float_of_string v
      with _ -> fail "%s: %s expects a number, got %s" step.pass key v)
    (arg_value step key)

let arg_family step key =
  Option.map
    (fun v ->
      match Cli_common.family_of_name v with
      | Some f -> f
      | None -> fail "%s: unknown family %s" step.pass v)
    (arg_value step key)

let arg_engine cfg step =
  match arg_value step "engine" with
  | None -> cfg.cut_engine
  | Some v -> (
      match Cut.engine_of_string v with
      | Some e -> e
      | None -> fail "%s: unknown engine %s (packed|reference)" step.pass v)

(* The per-pass library-cache outcome is threaded to the metrics layer
   through this domain-local box (set by [map], read by the engine wrapper
   right after the pass returns — never across pass boundaries). *)
let last_cache_status : [ `Hit | `Miss ] option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* Same channel for the cut-engine hot-path counters of the pass that just
   ran ([map] and the cut-based synthesis passes). *)
let last_cut_stats : Cut.stats option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* And for the SAT-solver counters of the passes that solve ([lint]'s
   functional fallback, [fault]'s ATPG). *)
let last_sat_stats : Solver.stats option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* ---------------- passes ---------------- *)

let with_aig ctx aig =
  { ctx with aig }

let pass_balance _cfg _step ctx = with_aig ctx (Synth.balance ctx.aig)

(* The cut-based synthesis passes accumulate the engine's counters into a
   fresh stats record and publish it for the metrics wrapper. *)
let with_cut_stats f =
  let stats = Cut.stats_create () in
  let r = f stats in
  Domain.DLS.set last_cut_stats (Some stats);
  r

let pass_rewrite cfg step ctx =
  let engine = arg_engine cfg step in
  with_aig ctx
    (with_cut_stats (fun stats ->
         Synth.rewrite ~zero_gain:(arg_flag step "z") ~engine ~stats
           ~jobs:cfg.jobs ctx.aig))

let pass_refactor cfg step ctx =
  let engine = arg_engine cfg step in
  with_aig ctx
    (with_cut_stats (fun stats ->
         Synth.refactor ~zero_gain:(arg_flag step "z")
           ?cut_size:(arg_int step "cut") ~engine ~stats ~jobs:cfg.jobs
           ctx.aig))

let pass_resyn2rs cfg step ctx =
  let engine = arg_engine cfg step in
  with_aig ctx
    (with_cut_stats (fun stats ->
         Synth.resyn2rs ~engine ~stats ~jobs:cfg.jobs ctx.aig))

let pass_light cfg step ctx =
  let engine = arg_engine cfg step in
  with_aig ctx
    (with_cut_stats (fun stats ->
         Synth.light ~engine ~stats ~jobs:cfg.jobs ctx.aig))

let pass_synth cfg step ctx =
  let engine = arg_engine cfg step in
  let mode =
    match List.filter (fun (k, _) -> k <> "engine") step.args with
    | [] -> "full"
    | [ (m, None) ] -> m
    | _ -> fail "synth: expects a single mode (none|light|full)"
  in
  match mode with
  | "none" -> ctx
  | "light" ->
      with_aig ctx
        (with_cut_stats (fun stats ->
             Synth.light ~engine ~stats ~jobs:cfg.jobs ctx.aig))
  | "full" ->
      with_aig ctx
        (with_cut_stats (fun stats ->
             Synth.resyn2rs ~engine ~stats ~jobs:cfg.jobs ctx.aig))
  | m -> fail "synth: unknown mode %s (none|light|full)" m

let pass_map cfg step ctx =
  let family = Option.value (arg_family step "family") ~default:ctx.family in
  let cut_size = Option.value (arg_int step "cut") ~default:cfg.cut_size in
  let max_cuts =
    match arg_int step "max-cuts" with
    | Some n when n > 0 -> Some n
    | Some _ -> fail "map: max-cuts expects a positive integer"
    | None -> cfg.max_cuts
  in
  let timing =
    if arg_flag step "timing" then true
    else if arg_flag step "no-timing" then false
    else cfg.timing
  in
  let engine = arg_engine cfg step in
  let cost =
    match arg_value step "cost" with
    | None | Some "area" -> None
    | Some "testability" -> Some Testability.cell_cost
    | Some c -> fail "map: unknown cost %s (area|testability)" c
  in
  let lib, status = Cell_lib.cached_with_status family in
  Domain.DLS.set last_cache_status (Some status);
  let params =
    {
      Mapper.default_params with
      Mapper.cut_size;
      timing;
      engine;
      cost;
      max_cuts;
      jobs = cfg.jobs;
    }
  in
  let mapped, stats = Mapper.map_with_stats ~params lib ctx.aig in
  Domain.DLS.set last_cut_stats (Some stats);
  {
    ctx with
    family;
    lib = Some lib;
    mapped = Some mapped;
    golden = Some ctx.aig;
    sta = None;
    placement = None;
    fault = None;
    testability = None;
    verified = None;
  }

let mapped_or_fail step ctx =
  match ctx.mapped with
  | Some m -> m
  | None -> fail "%s: no mapped netlist in the flow (run map first)" step.pass

let pass_sta cfg step ctx =
  let m = mapped_or_fail step ctx in
  let model =
    {
      Sta.unit_loads = arg_flag step "unit" || cfg.unit_loads;
      po_fanout = Option.value (arg_float step "po") ~default:cfg.po_fanout;
    }
  in
  { ctx with sta = Some (Sta.analyze ~model m) }

let lint_name step ctx ~mapped =
  match arg_value step "name" with
  | Some n -> n
  | None -> (
      match arg_value step "tag" with
      | Some t -> ctx.name ^ "/" ^ t
      | None ->
          if mapped then ctx.name ^ "/" ^ Cli_common.family_arg_name ctx.family
          else ctx.name)

let pass_lint cfg step ctx =
  let ds =
    match ctx.mapped with
    | Some m when not (arg_flag step "aig") ->
        let stats = Solver.stats_create () in
        let ds =
          Map_lint.check
            ~name:(lint_name step ctx ~mapped:true)
            ?lib:ctx.lib ?golden:ctx.golden
            ?conflict_budget:cfg.conflict_budget ~stats m
        in
        if stats.Solver.sat_solves > 0 then
          Domain.DLS.set last_sat_stats (Some stats);
        ds
    | _ -> Aig_lint.check ~name:(lint_name step ctx ~mapped:false) ctx.aig
  in
  { ctx with diags = ctx.diags @ ds }

let pass_verify cfg step ctx =
  let m = mapped_or_fail step ctx in
  let golden =
    match ctx.golden with
    | Some g -> g
    | None -> fail "verify: the mapping's source AIG is unknown"
  in
  let seed =
    match arg_value step "seed" with
    | Some s -> (
        try Int64.of_string s
        with _ -> fail "verify: seed expects an integer, got %s" s)
    | None -> cfg.seed
  in
  let rounds = Option.value (arg_int step "rounds") ~default:cfg.verify_rounds in
  let ok = Experiments.verify_by_simulation ~seed ~rounds golden m in
  let diags =
    if ok then ctx.diags
    else
      ctx.diags
      @ [
          Diag.errorf ~rule:"map-verify" (Diag.Circuit ctx.name)
            "mapped netlist disagrees with its source AIG (seed %Ld, %d x 64 \
             patterns)"
            seed rounds;
        ]
  in
  { ctx with verified = Some ok; diags }

let pass_place _cfg step ctx =
  let m = mapped_or_fail step ctx in
  let gates = Array.length m.Mapped.instances in
  let side () = 1 + int_of_float (sqrt (float_of_int (2 * gates))) in
  let rows = Option.value (arg_int step "rows") ~default:(side ()) in
  let cols = Option.value (arg_int step "cols") ~default:(side ()) in
  let fab = Fabric.create ~rows ~cols in
  match Fabric.place fab m with
  | Ok p -> { ctx with placement = Some p }
  | Error e ->
      {
        ctx with
        placement = None;
        diags =
          ctx.diags
          @ [
              Diag.errorf ~rule:"fabric-place" (Diag.Circuit ctx.name) "%s"
                (Fabric.error_message e);
            ];
      }

let pass_fault cfg step ctx =
  let m = mapped_or_fail step ctx in
  let rounds = Option.value (arg_int step "rounds") ~default:cfg.fault_rounds in
  let seed =
    match arg_value step "seed" with
    | Some s -> (
        try Int64.of_string s
        with _ -> fail "fault: seed expects an integer, got %s" s)
    | None -> cfg.seed
  in
  let conflict_budget =
    match arg_int step "budget" with
    | Some b -> b
    | None -> Option.value cfg.conflict_budget ~default:100_000
  in
  let atpg =
    match arg_value step "atpg" with
    | None | Some "incremental" -> Gate_fault.Incremental
    | Some "rebuild" -> Gate_fault.Rebuild
    | Some a -> fail "fault: unknown atpg %s (incremental|rebuild)" a
  in
  let stats = Solver.stats_create () in
  let _, summary =
    Gate_fault.analyze ~rounds ~seed ~conflict_budget ~atpg ~stats m
  in
  if stats.Solver.sat_solves > 0 then
    Domain.DLS.set last_sat_stats (Some stats);
  let diags =
    if summary.Gate_fault.g_unknown = 0 then ctx.diags
    else
      ctx.diags
      @ [
          Diag.warnf ~rule:"fault-budget" (Diag.Circuit ctx.name)
            "%d of %d faults unresolved: ATPG conflict budget (%d) exhausted"
            summary.Gate_fault.g_unknown summary.Gate_fault.g_total
            conflict_budget;
        ]
  in
  { ctx with fault = Some summary; diags }

(* SAT equivalence of the mapping against its source AIG.  Unlike [verify]
   (random simulation) this is complete — but under a conflict budget the
   solver may give up, and that outcome must stay a structured, typed
   report ([cec-undecided] Warning), never an exception escaping a served
   job. *)
let pass_cec cfg step ctx =
  let m = mapped_or_fail step ctx in
  let golden =
    match ctx.golden with
    | Some g -> g
    | None -> fail "cec: the mapping's source AIG is unknown"
  in
  let budget =
    match arg_int step "budget" with
    | Some b when b > 0 -> Some b
    | Some _ -> fail "cec: budget expects a positive integer"
    | None -> cfg.conflict_budget
  in
  let engine =
    match arg_value step "engine" with
    | None | Some "cdcl" -> Cec.Cdcl
    | Some "reference" -> Cec.Reference
    | Some e -> fail "cec: unknown engine %s (cdcl|reference)" e
  in
  let stats = Solver.stats_create () in
  let verdict =
    Cec.check ~engine ?conflict_budget:budget ~seed:cfg.seed ~stats golden
      (Mapped.to_aig m)
  in
  if stats.Solver.sat_solves > 0 then
    Domain.DLS.set last_sat_stats (Some stats);
  match verdict with
  | Cec.Equivalent -> { ctx with verified = Some true }
  | Cec.Inequivalent _ ->
      {
        ctx with
        verified = Some false;
        diags =
          ctx.diags
          @ [
              Diag.errorf ~rule:"cec-inequivalent" (Diag.Circuit ctx.name)
                "mapped netlist is SAT-inequivalent to its source AIG";
            ];
      }
  | Cec.Undecided ->
      (* typed Cec.Undecided_budget territory: surface as a report *)
      {
        ctx with
        diags =
          ctx.diags
          @ [
              Diag.warnf ~rule:"cec-undecided" (Diag.Circuit ctx.name)
                "SAT conflict budget (%d) exhausted before the equivalence \
                 miter was decided"
                (Option.value budget ~default:0);
            ];
      }

(* A deliberately slow pass: the negative fixture behind the wall-clock
   budget machinery (pass budgets in test_flow, job budgets in the serve
   chaos harness). *)
let pass_sleep _cfg step ctx =
  let s = Option.value (arg_float step "s") ~default:0.05 in
  if s < 0.0 then fail "sleep: s expects a non-negative number";
  Unix.sleepf s;
  ctx

let pass_testability _cfg step ctx =
  let m = mapped_or_fail step ctx in
  let t = Testability.analyze ~learn:(not (arg_flag step "no-learn")) m in
  let diags =
    if arg_flag step "lint" then
      ctx.diags @ Testability.lint ~name:(lint_name step ctx ~mapped:true) m t
    else ctx.diags
  in
  { ctx with testability = Some t.Testability.summary; diags }

(* A deliberately failing pass: the negative fixture behind the isolation
   machinery (test_flow and the CI exit-nonzero-with-report job).  Filters
   restrict the crash to one matrix cell. *)
let pass_fail _cfg step ctx =
  let applies =
    (match arg_value step "circuit" with
    | Some n -> n = ctx.name
    | None -> true)
    && (match arg_family step "family" with
       | Some f -> f = ctx.family
       | None -> true)
  in
  if applies then
    failwith
      (Option.value (arg_value step "msg") ~default:"deliberate test failure")
  else ctx

(* ---------------- registry ---------------- *)

type pass_info = {
  p_doc : string;
  p_args : string list option;  (* None = free-form (validated by the pass) *)
  p_apply : config -> step -> ctx -> ctx;
}

let registry : (string * pass_info) list =
  [
    ( "b",
      { p_doc = "balance: minimum-depth AND-tree rebuild";
        p_args = Some []; p_apply = pass_balance } );
    ( "rw",
      { p_doc = "rewrite: 4-cut DAG-aware resubstitution [z, engine=E]";
        p_args = Some [ "z"; "engine" ]; p_apply = pass_rewrite } );
    ( "rf",
      { p_doc = "refactor: large-cut ISOP refactoring [z, cut=K, engine=E]";
        p_args = Some [ "z"; "cut"; "engine" ]; p_apply = pass_refactor } );
    ( "resyn2rs",
      { p_doc = "the full optimization script (b;rw;rf;b;rw;rw -z;b;rf -z;rw -z;b)";
        p_args = Some [ "engine" ]; p_apply = pass_resyn2rs } );
    ( "light",
      { p_doc = "the cheap optimization script (b;rw;b)";
        p_args = Some [ "engine" ]; p_apply = pass_light } );
    ( "synth",
      { p_doc = "optimization by effort name: synth(none|light|full)";
        p_args = None; p_apply = pass_synth } );
    ( "map",
      { p_doc =
          "technology mapping [family=F, cut=K, max-cuts=N, timing, \
           no-timing, engine=E, cost=area|testability]";
        p_args =
          Some
            [ "family"; "cut"; "max-cuts"; "timing"; "no-timing"; "engine";
              "cost" ];
        p_apply = pass_map } );
    ( "sta",
      { p_doc = "static timing analysis of the mapping [po=N, unit]";
        p_args = Some [ "po"; "unit" ]; p_apply = pass_sta } );
    ( "lint",
      { p_doc = "lint the mapping (or the AIG before map) [aig, tag=T, name=N]";
        p_args = Some [ "aig"; "tag"; "name" ]; p_apply = pass_lint } );
    ( "verify",
      { p_doc = "random-simulation equivalence of the mapping [seed=N, rounds=R]";
        p_args = Some [ "seed"; "rounds" ]; p_apply = pass_verify } );
    ( "place",
      { p_doc = "place onto the Sec. 5 regular fabric [rows=R, cols=C]";
        p_args = Some [ "rows"; "cols" ]; p_apply = pass_place } );
    ( "fault",
      { p_doc =
          "stuck-at fault simulation + SAT ATPG of the mapping [rounds=N, \
           seed=N, budget=N, atpg=incremental|rebuild]";
        p_args = Some [ "rounds"; "seed"; "budget"; "atpg" ];
        p_apply = pass_fault } );
    ( "testability",
      { p_doc =
          "static testability analysis: SCOAP, fault collapsing, redundancy \
           [no-learn, lint, tag=T, name=N]";
        p_args = Some [ "no-learn"; "lint"; "tag"; "name" ];
        p_apply = pass_testability } );
    ( "cec",
      { p_doc =
          "SAT equivalence of the mapping vs its source AIG [budget=N, \
           engine=cdcl|reference]; budget exhaustion degrades to a \
           cec-undecided Warning";
        p_args = Some [ "budget"; "engine" ]; p_apply = pass_cec } );
    ( "fail",
      { p_doc =
          "deliberately raise (crash-isolation fixture) [circuit=N, \
           family=F, msg=M]";
        p_args = Some [ "circuit"; "family"; "msg" ]; p_apply = pass_fail } );
    ( "sleep",
      { p_doc = "sleep s seconds (wall-clock budget fixture) [s=S]";
        p_args = Some [ "s" ]; p_apply = pass_sleep } );
  ]

let passes = List.map (fun (n, i) -> (n, i.p_doc)) registry

let find_pass name =
  match List.assoc_opt name registry with
  | Some i -> i
  | None -> fail "unknown pass %s (see flow --list-passes)" name

(* ---------------- script parsing ---------------- *)

let step_to_string s =
  match s.args with
  | [] -> s.pass
  | args ->
      let one = function k, None -> k | k, Some v -> k ^ "=" ^ v in
      s.pass ^ "(" ^ String.concat "," (List.map one args) ^ ")"

let script_to_string steps = String.concat "; " (List.map step_to_string steps)

let parse_step text =
  let text = String.trim text in
  let name, rest =
    match String.index_opt text '(' with
    | Some i ->
        if text.[String.length text - 1] <> ')' then
          fail "missing ) in %s" text
        else
          ( String.trim (String.sub text 0 i),
            `Parens (String.sub text (i + 1) (String.length text - i - 2)) )
    | None -> (
        (* ABC style: "rw -z" *)
        match String.index_opt text ' ' with
        | Some i ->
            ( String.sub text 0 i,
              `Dashes
                (String.sub text (i + 1) (String.length text - i - 1)) )
        | None -> (text, `Parens ""))
  in
  let args =
    match rest with
    | `Parens "" -> []
    | `Parens inner ->
        List.filter_map
          (fun a ->
            let a = String.trim a in
            if a = "" then None
            else
              match String.index_opt a '=' with
              | Some i ->
                  Some
                    ( String.trim (String.sub a 0 i),
                      Some
                        (String.trim
                           (String.sub a (i + 1) (String.length a - i - 1))) )
              | None -> Some (a, None))
          (String.split_on_char ',' inner)
    | `Dashes tail ->
        List.filter_map
          (fun t ->
            let t = String.trim t in
            if t = "" then None
            else if String.length t > 1 && t.[0] = '-' then
              Some (String.sub t 1 (String.length t - 1), None)
            else fail "unexpected token %s in %s" t text)
          (String.split_on_char ' ' tail)
  in
  let step = { pass = name; args } in
  (* validate the pass name and (where declared) the argument keys *)
  let info = find_pass name in
  (match info.p_args with
  | None -> ()
  | Some allowed ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k allowed) then
            fail "%s: unknown argument %s (allowed: %s)" name k
              (String.concat ", " allowed))
        args);
  step

let parse_script_exn text =
  text
  |> String.split_on_char ';'
  |> List.filter_map (fun s ->
         if String.trim s = "" then None else Some (parse_step s))

let parse_script text =
  match parse_script_exn text with
  | steps -> Ok steps
  | exception Flow_error msg -> Error msg

let split_at_map steps =
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | { pass = "map"; _ } :: _ as suffix -> (List.rev acc, suffix)
    | s :: tl -> go (s :: acc) tl
  in
  go [] steps

(* ---------------- metrics ---------------- *)

type gc_delta = {
  gd_minor_words : float;
  gd_major_words : float;
  gd_compactions : int;
}

type sample = {
  sm_circuit : string;
  sm_family : string;
  sm_pass : string;
  sm_wall_s : float;
  sm_ands_before : int;
  sm_ands_after : int;
  sm_depth_before : int;
  sm_depth_after : int;
  sm_mapped : Mapped.stats option;
  sm_sta_ps : float option;
  sm_cache : [ `Hit | `Miss ] option;
  sm_cut : Cut.stats option;
  sm_fault : Gate_fault.summary option;
  sm_testability : Testability.summary option;
  sm_sat : Solver.stats option;
  sm_gc : gc_delta option;
  sm_new_diags : int;
}

let opt_changed before after =
  match (before, after) with
  | Some x, Some y -> not (x == y)
  | None, None -> false
  | _ -> true

let run_step cfg step ctx =
  let info = find_pass step.pass in
  Domain.DLS.set last_cache_status None;
  Domain.DLS.set last_cut_stats None;
  Domain.DLS.set last_sat_stats None;
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let ctx' = info.p_apply cfg step ctx in
  let wall = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let gc =
    {
      gd_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      gd_major_words = g1.Gc.major_words -. g0.Gc.major_words;
      gd_compactions = g1.Gc.compactions - g0.Gc.compactions;
    }
  in
  let mapped_stats =
    if opt_changed ctx.mapped ctx'.mapped then
      Option.map Mapped.stats ctx'.mapped
    else None
  in
  let sta_ps =
    if opt_changed ctx.sta ctx'.sta then
      Option.map Sta.abs_delay_ps ctx'.sta
    else None
  in
  let sample =
    {
      sm_circuit = ctx'.name;
      sm_family =
        (if ctx'.mapped <> None then Cli_common.family_arg_name ctx'.family
         else "-");
      sm_pass = step_to_string step;
      sm_wall_s = wall;
      sm_ands_before = Aig.num_ands ctx.aig;
      sm_ands_after = Aig.num_ands ctx'.aig;
      sm_depth_before = Aig.depth ctx.aig;
      sm_depth_after = Aig.depth ctx'.aig;
      sm_mapped = mapped_stats;
      sm_sta_ps = sta_ps;
      sm_cache = Domain.DLS.get last_cache_status;
      sm_cut = Domain.DLS.get last_cut_stats;
      sm_fault = (if opt_changed ctx.fault ctx'.fault then ctx'.fault else None);
      sm_testability =
        (if opt_changed ctx.testability ctx'.testability then ctx'.testability
         else None);
      sm_sat = Domain.DLS.get last_sat_stats;
      sm_gc = Some gc;
      sm_new_diags = List.length ctx'.diags - List.length ctx.diags;
    }
  in
  (ctx', sample)

(* the sample recorded for a pass that crashed under isolation: nothing
   changed except the diagnostics *)
let crash_sample step wall before after =
  {
    sm_circuit = after.name;
    sm_family =
      (if after.mapped <> None then Cli_common.family_arg_name after.family
       else "-");
    sm_pass = step_to_string step;
    sm_wall_s = wall;
    sm_ands_before = Aig.num_ands before.aig;
    sm_ands_after = Aig.num_ands after.aig;
    sm_depth_before = Aig.depth before.aig;
    sm_depth_after = Aig.depth after.aig;
    sm_mapped = None;
    sm_sta_ps = None;
    sm_cache = None;
    sm_cut = None;
    sm_fault = None;
    sm_testability = None;
    sm_sat = None;
    sm_gc = None;
    sm_new_diags = List.length after.diags - List.length before.diags;
  }

let budget_diags config step ctx wall =
  match config.pass_budget_s with
  | Some budget when wall > budget ->
      [
        Diag.warnf ~rule:"flow-pass-budget" (Diag.Circuit ctx.name)
          "pass %s took %.2fs, over the %.2fs wall-clock budget"
          (step_to_string step) wall budget;
      ]
  | _ -> []

let run ?(config = default_config) steps ctx =
  if not config.isolate then begin
    let ctx, rev_samples =
      List.fold_left
        (fun (ctx, acc) step ->
          let t0 = Unix.gettimeofday () in
          let ctx', s = run_step config step ctx in
          let ctx' =
            {
              ctx' with
              diags =
                ctx'.diags
                @ budget_diags config step ctx' (Unix.gettimeofday () -. t0);
            }
          in
          (ctx', s :: acc))
        (ctx, []) steps
    in
    (ctx, List.rev rev_samples)
  end
  else begin
    (* crash isolation: a raising pass becomes a Diag error and aborts the
       rest of this pipeline (later passes would observe a broken context),
       but never the caller — the other matrix cells keep going *)
    let rec go ctx acc = function
      | [] -> (ctx, List.rev acc)
      | step :: rest -> (
          let t0 = Unix.gettimeofday () in
          match run_step config step ctx with
          | ctx', s ->
              let ctx' =
                {
                  ctx' with
                  diags =
                    ctx'.diags
                    @ budget_diags config step ctx'
                        (Unix.gettimeofday () -. t0);
                }
              in
              go ctx' (s :: acc) rest
          | exception Sys.Break -> raise Sys.Break
          | exception e ->
              let wall = Unix.gettimeofday () -. t0 in
              let msg =
                match e with
                | Flow_error m -> m
                | Failure m -> m
                | e -> Printexc.to_string e
              in
              let skipped =
                match rest with
                | [] -> []
                | rest ->
                    [
                      Diag.infof ~rule:"flow-passes-skipped"
                        (Diag.Circuit ctx.name)
                        "skipped after the crash: %s"
                        (script_to_string rest);
                    ]
              in
              let ctx' =
                {
                  ctx with
                  diags =
                    ctx.diags
                    @ Diag.errorf ~rule:"flow-pass-crash"
                        (Diag.Circuit ctx.name) "pass %s raised: %s"
                        (step_to_string step) msg
                      :: skipped;
                }
              in
              (ctx', List.rev (crash_sample step wall ctx ctx' :: acc)))
    in
    go ctx [] steps
  end

(* ---- rendering ---- *)

let fopt = function None -> "-" | Some f -> Printf.sprintf "%.1f" f
let iopt = function None -> "-" | Some i -> string_of_int i

let cut_counter f s = Option.map f s.sm_cut
let cut_built s = cut_counter (fun c -> c.Cut.built) s
let cut_dominated s = cut_counter (fun c -> c.Cut.dominated) s
let cut_sign_rejects s = cut_counter (fun c -> c.Cut.sign_rejects) s
let cut_tt_merges s = cut_counter (fun c -> c.Cut.tt_merges) s
let cut_probes s = cut_counter (fun c -> c.Cut.probes) s
let cut_reevals s = cut_counter (fun c -> c.Cut.reevals) s
let cut_reeval_skips s = cut_counter (fun c -> c.Cut.reeval_skips) s

(* GC words as integers: the float counters are exact below 2^53 *)
let gc_words_str f s =
  match s.sm_gc with
  | None -> "-"
  | Some g -> Printf.sprintf "%.0f" (f g)

let fault_cov_str s =
  match s.sm_fault with
  | None -> "-"
  | Some f -> Printf.sprintf "%.1f" (100.0 *. Gate_fault.coverage f)

let render_samples samples =
  let b = Buffer.create 2048 in
  Printf.bprintf b
    "%-10s %-12s %-22s %9s %13s %9s %6s %9s %8s %8s %6s %8s %8s %5s %5s\n"
    "circuit" "family" "pass" "wall(ms)" "ands" "depth" "gates" "area"
    "delay" "sta-ps" "fault%" "cuts" "probes" "cache" "diags";
  List.iter
    (fun s ->
      let delta fmt a b = if a = b then "" else Printf.sprintf fmt (b - a) in
      Printf.bprintf b
        "%-10s %-12s %-22s %9.2f %8d%-5s %5d%-4s %6s %9s %8s %8s %6s %8s %8s \
         %5s %5d\n"
        s.sm_circuit s.sm_family s.sm_pass (1000.0 *. s.sm_wall_s)
        s.sm_ands_after
        (delta "%+d" s.sm_ands_before s.sm_ands_after)
        s.sm_depth_after
        (delta "%+d" s.sm_depth_before s.sm_depth_after)
        (match s.sm_mapped with
        | Some m -> string_of_int m.Mapped.gates
        | None -> "-")
        (fopt (Option.map (fun m -> m.Mapped.area) s.sm_mapped))
        (fopt (Option.map (fun m -> m.Mapped.norm_delay) s.sm_mapped))
        (fopt s.sm_sta_ps)
        (fault_cov_str s)
        (iopt (cut_built s))
        (iopt (cut_probes s))
        (match s.sm_cache with
        | Some `Hit -> "hit"
        | Some `Miss -> "miss"
        | None -> "-")
        s.sm_new_diags)
    samples;
  Buffer.contents b

let samples_tsv_header =
  "#circuit\tfamily\tpass\twall_ms\tands_in\tands_out\tdepth_in\tdepth_out\t\
   gates\tarea\tnorm_delay\tabs_ps\tsta_ps\tcache\tcuts_built\t\
   cuts_dominated\tsign_rejects\ttt_merges\tmatch_probes\tmatch_reevals\t\
   match_skips\tfaults\t\
   fault_cov\tfault_unknown\ttb_classes\ttb_collapsed\ttb_redundant\t\
   sat_solves\tsat_conflicts\tsat_props\tsat_restarts\tsat_learned\t\
   gc_minor_words\tgc_major_words\tgc_compactions\tnew_diags"

let sample_to_tsv s =
  Printf.sprintf
    "%s\t%s\t%s\t%.3f\t%d\t%d\t%d\t%d\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t\
     %s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%d"
    s.sm_circuit s.sm_family s.sm_pass (1000.0 *. s.sm_wall_s) s.sm_ands_before
    s.sm_ands_after s.sm_depth_before s.sm_depth_after
    (match s.sm_mapped with
    | Some m -> string_of_int m.Mapped.gates
    | None -> "-")
    (fopt (Option.map (fun m -> m.Mapped.area) s.sm_mapped))
    (fopt (Option.map (fun m -> m.Mapped.norm_delay) s.sm_mapped))
    (fopt (Option.map (fun m -> m.Mapped.abs_delay_ps) s.sm_mapped))
    (fopt s.sm_sta_ps)
    (match s.sm_cache with
    | Some `Hit -> "hit"
    | Some `Miss -> "miss"
    | None -> "-")
    (iopt (cut_built s))
    (iopt (cut_dominated s))
    (iopt (cut_sign_rejects s))
    (iopt (cut_tt_merges s))
    (iopt (cut_probes s))
    (iopt (cut_reevals s))
    (iopt (cut_reeval_skips s))
    (iopt (Option.map (fun f -> f.Gate_fault.g_total) s.sm_fault))
    (fault_cov_str s)
    (iopt (Option.map (fun f -> f.Gate_fault.g_unknown) s.sm_fault))
    (iopt (Option.map (fun t -> t.Testability.t_classes) s.sm_testability))
    (iopt (Option.map (fun t -> t.Testability.t_collapsed) s.sm_testability))
    (iopt (Option.map (fun t -> t.Testability.t_redundant) s.sm_testability))
    (iopt (Option.map (fun st -> st.Solver.sat_solves) s.sm_sat))
    (iopt (Option.map (fun st -> st.Solver.sat_conflicts) s.sm_sat))
    (iopt (Option.map (fun st -> st.Solver.sat_propagations) s.sm_sat))
    (iopt (Option.map (fun st -> st.Solver.sat_restarts) s.sm_sat))
    (iopt (Option.map (fun st -> st.Solver.sat_learned) s.sm_sat))
    (gc_words_str (fun g -> g.gd_minor_words) s)
    (gc_words_str (fun g -> g.gd_major_words) s)
    (iopt (Option.map (fun g -> g.gd_compactions) s.sm_gc))
    s.sm_new_diags

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let samples_to_json samples =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      let jnum_opt = function
        | None -> "null"
        | Some f -> Printf.sprintf "%.3f" f
      in
      Printf.bprintf b
        "  {\"circuit\":\"%s\",\"family\":\"%s\",\"pass\":\"%s\",\
         \"wall_ms\":%.3f,\"ands_in\":%d,\"ands_out\":%d,\"depth_in\":%d,\
         \"depth_out\":%d,\"gates\":%s,\"area\":%s,\"norm_delay\":%s,\
         \"abs_ps\":%s,\"sta_ps\":%s,\"cache\":%s,\"cut\":%s,\
         \"fault\":%s,\"testability\":%s,\"sat\":%s,\"gc\":%s,\
         \"new_diags\":%d}"
        (json_escape s.sm_circuit) (json_escape s.sm_family)
        (json_escape s.sm_pass) (1000.0 *. s.sm_wall_s) s.sm_ands_before
        s.sm_ands_after s.sm_depth_before s.sm_depth_after
        (match s.sm_mapped with
        | Some m -> string_of_int m.Mapped.gates
        | None -> "null")
        (jnum_opt (Option.map (fun m -> m.Mapped.area) s.sm_mapped))
        (jnum_opt (Option.map (fun m -> m.Mapped.norm_delay) s.sm_mapped))
        (jnum_opt (Option.map (fun m -> m.Mapped.abs_delay_ps) s.sm_mapped))
        (jnum_opt s.sm_sta_ps)
        (match s.sm_cache with
        | Some `Hit -> "\"hit\""
        | Some `Miss -> "\"miss\""
        | None -> "null")
        (match s.sm_cut with
        | None -> "null"
        | Some c ->
            Printf.sprintf
              "{\"built\":%d,\"dominated\":%d,\"sign_rejects\":%d,\
               \"tt_merges\":%d,\"probes\":%d,\"reevals\":%d,\
               \"reeval_skips\":%d}"
              c.Cut.built c.Cut.dominated c.Cut.sign_rejects c.Cut.tt_merges
              c.Cut.probes c.Cut.reevals c.Cut.reeval_skips)
        (match s.sm_fault with
        | None -> "null"
        | Some f ->
            Printf.sprintf
              "{\"total\":%d,\"sim\":%d,\"atpg\":%d,\"redundant\":%d,\
               \"unknown\":%d,\"coverage\":%.4f}"
              f.Gate_fault.g_total f.Gate_fault.g_sim f.Gate_fault.g_atpg
              f.Gate_fault.g_redundant f.Gate_fault.g_unknown
              (Gate_fault.coverage f))
        (match s.sm_testability with
        | None -> "null"
        | Some t ->
            Printf.sprintf
              "{\"faults\":%d,\"classes\":%d,\"dominated\":%d,\
               \"collapsed\":%d,\"redundant\":%d,\"const_lines\":%d,\
               \"score_mean\":%.3f}"
              t.Testability.t_faults t.Testability.t_classes
              t.Testability.t_dominated t.Testability.t_collapsed
              t.Testability.t_redundant t.Testability.t_const_lines
              t.Testability.t_score_mean)
        (match s.sm_sat with
        | None -> "null"
        | Some st ->
            Printf.sprintf
              "{\"solves\":%d,\"conflicts\":%d,\"decisions\":%d,\
               \"propagations\":%d,\"restarts\":%d,\"learned\":%d}"
              st.Solver.sat_solves st.Solver.sat_conflicts
              st.Solver.sat_decisions st.Solver.sat_propagations
              st.Solver.sat_restarts st.Solver.sat_learned)
        (match s.sm_gc with
        | None -> "null"
        | Some g ->
            Printf.sprintf
              "{\"minor_words\":%.0f,\"major_words\":%.0f,\
               \"compactions\":%d}"
              g.gd_minor_words g.gd_major_words g.gd_compactions)
        s.sm_new_diags)
    samples;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let summary_line ctx =
  match ctx.mapped with
  | None ->
      Printf.sprintf "%-20s ands=%d depth=%d" ctx.name (Aig.num_ands ctx.aig)
        (Aig.depth ctx.aig)
  | Some m ->
      let s = Mapped.stats m in
      let tag = ctx.name ^ "/" ^ Cell_netlist.family_name ctx.family in
      let base =
        Printf.sprintf
          "%-28s gates=%-5d area=%-9.1f levels=%-3d delay=%-7.1f ps=%-8.1f \
           sta-ps=%.1f"
          tag s.Mapped.gates s.Mapped.area s.Mapped.levels s.Mapped.norm_delay
          s.Mapped.abs_delay_ps s.Mapped.sta_abs_delay_ps
      in
      let extras =
        (match ctx.verified with
        | Some true -> [ "verify=ok" ]
        | Some false -> [ "verify=FAIL" ]
        | None -> [])
        @ (match ctx.fault with
          | Some f ->
              [ Printf.sprintf "fault=%.1f%%(%d)"
                  (100.0 *. Gate_fault.coverage f) f.Gate_fault.g_total ]
          | None -> [])
        @ (match ctx.testability with
          | Some t ->
              [ Printf.sprintf "tb=%d/%d(red %d)" t.Testability.t_collapsed
                  t.Testability.t_classes t.Testability.t_redundant ]
          | None -> [])
        @ (match ctx.placement with
          | Some p ->
              [ Printf.sprintf "fabric=%d/%d(%.0f%%)" p.Fabric.tiles_used
                  p.Fabric.tiles_total (100.0 *. p.Fabric.utilization) ]
          | None -> [])
        @
        match ctx.diags with
        | [] -> []
        | ds ->
            let e, w, i = Diag.count ds in
            [ Printf.sprintf "lint=%dE/%dW/%dI" e w i ]
      in
      if extras = [] then base else base ^ "  " ^ String.concat " " extras

(* ---------------- deterministic parallel runner ---------------- *)

module Runner = struct
  let recommended_domains () = Domain.recommended_domain_count ()

  let map_jobs ?(domains = 1) f jobs =
    let n = Array.length jobs in
    let d = max 1 (min domains n) in
    if d = 1 then Array.map f jobs
    else begin
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            let r = try Ok (f jobs.(i)) with e -> Error e in
            results.(i) <- Some r;
            match r with Ok _ -> loop () | Error _ -> ()
          end
        in
        loop ()
      in
      let others = List.init (d - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join others;
      (* re-raise the first failure in input order; unclaimed jobs can only
         exist when some worker failed *)
      Array.iter
        (function Some (Error e) -> raise e | Some (Ok _) | None -> ())
        results;
      Array.map
        (function
          | Some (Ok r) -> r
          | Some (Error _) | None -> assert false)
        results
    end
end

(* ---------------- the benchmark x family matrix ---------------- *)

type bench_result = {
  br_bench : string;
  br_ctx0 : ctx;
  br_prefix_samples : sample list;
  br_per_family : (Cell_netlist.family * ctx * sample list) list;
}

let run_matrix ?(domains = 1) ?(config = default_config) ?on_result ~script
    ~families entries =
  let prefix, suffix = split_at_map script in
  (* pre-warm the library cache in the calling domain: each needed family is
     characterized exactly once, and the workers only ever hit *)
  let explicit =
    List.filter_map
      (fun s ->
        if s.pass = "map" then
          try arg_family s "family" with Flow_error _ -> None
        else None)
      script
  in
  List.iter
    (fun f -> ignore (Cell_lib.cached f))
    (List.sort_uniq compare (families @ explicit));
  let run_job (e : Bench_suite.entry) =
    let ctx0 =
      init ~family:config.family ~name:e.Bench_suite.name (e.Bench_suite.build ())
    in
    let ctx0, prefix_samples = run ~config prefix ctx0 in
    let per_family =
      List.map
        (fun f ->
          let cfg = { config with family = f } in
          let ctx, samples = run ~config:cfg suffix { ctx0 with family = f } in
          (f, ctx, samples))
        families
    in
    {
      br_bench = e.Bench_suite.name;
      br_ctx0 = ctx0;
      br_prefix_samples = prefix_samples;
      br_per_family = per_family;
    }
  in
  let job (e : Bench_suite.entry) =
    let r =
      if not config.isolate then run_job e
      else
        (* isolation also covers circuit construction / input parsing: a
           benchmark whose builder raises becomes one error-carrying result
           while the rest of the matrix completes *)
        match run_job e with
        | r -> r
        | exception Sys.Break -> raise Sys.Break
        | exception exn ->
            let msg =
              match exn with
              | Flow_error m -> m
              | Failure m -> m
              | e -> Printexc.to_string e
            in
            let ctx0 =
              init ~family:config.family ~name:e.Bench_suite.name
                (Aig.create ())
            in
            let ctx0 =
              {
                ctx0 with
                diags =
                  [
                    Diag.errorf ~rule:"flow-bench-crash"
                      (Diag.Circuit e.Bench_suite.name)
                      "benchmark failed before the flow could isolate it: %s"
                      msg;
                  ];
              }
            in
            {
              br_bench = e.Bench_suite.name;
              br_ctx0 = ctx0;
              br_prefix_samples = [];
              br_per_family = [];
            }
    in
    (match on_result with Some f -> f r | None -> ());
    r
  in
  Runner.map_jobs ~domains job (Array.of_list entries)

let matrix_samples results =
  Array.to_list results
  |> List.concat_map (fun r ->
         r.br_prefix_samples
         @ List.concat_map (fun (_, _, ss) -> ss) r.br_per_family)

(* ---------------- checkpoint / resume ---------------- *)

module Checkpoint = struct
  (* Only plain data goes to disk: the rendered report lines plus the raw
     diagnostics and metric samples of each completed benchmark.  Contexts
     hold closures (libraries, AIG arenas) and stay in memory. *)
  type entry = {
    ck_bench : string;
    ck_lines : string list;
    ck_diags : Diag.t list;
    ck_samples : sample list;
  }

  let magic = "cntfet-flow-checkpoint-v1\n"

  (* Atomic: marshal to a process-unique temp file in the same directory,
     then rename over the target.  A crash (even SIGKILL) mid-save leaves
     either the old checkpoint or a stray temp file — never a truncated
     checkpoint that would poison resume; any failure path removes the
     temp before re-raising. *)
  let save path entries =
    let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc magic;
          Marshal.to_channel oc (entries : entry list) []);
      Sys.rename tmp path
    with
    | () -> ()
    | exception e ->
        (try Sys.remove tmp with Sys_error _ -> ());
        raise e

  (* A missing, truncated or foreign file is worth no more than an empty
     checkpoint: resume recomputes whatever could not be read back. *)
  let load path =
    if not (Sys.file_exists path) then []
    else
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          try
            let m = really_input_string ic (String.length magic) in
            if m <> magic then []
            else (Marshal.from_channel ic : entry list)
          with _ -> [])

  let of_result (r : bench_result) ~lines =
    let diags =
      r.br_ctx0.diags
      @ List.concat_map
          (fun (_, ctx, _) -> diags_since r.br_ctx0 ctx)
          r.br_per_family
    in
    let samples =
      r.br_prefix_samples
      @ List.concat_map (fun (_, _, ss) -> ss) r.br_per_family
    in
    {
      ck_bench = r.br_bench;
      ck_lines = lines;
      ck_diags = diags;
      ck_samples = samples;
    }

  let mem entries bench = List.exists (fun e -> e.ck_bench = bench) entries
end
