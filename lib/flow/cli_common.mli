(** Argument conventions shared by every command-line driver.

    The binaries ([flow], [sta], [lint], [cntfet_map], [experiments]) accept
    the same [--bench], [--family], [--synth] and [--cut-size] vocabulary;
    this module is the single implementation of the name tables, the
    comma-separated family lists (including the ["all"] shorthand) and the
    benchmark-name resolution, with the per-binary [prog: message] + exit 2
    error convention the original drivers used. *)

val family_of_name : string -> Cell_netlist.family option
(** ["static"], ["pseudo"], ["pass-pseudo"], ["pass-static"], ["cmos"]. *)

val family_arg_name : Cell_netlist.family -> string
(** Inverse of {!family_of_name} — the short CLI name of a family. *)

val usage_die : prog:string -> string -> 'a
(** [prerr_endline (prog ^ ": " ^ msg); exit 2]. *)

val parse_families :
  prog:string -> ?allowed:Cell_netlist.family list -> string ->
  Cell_netlist.family list
(** Parses a comma-separated family list; ["all"] expands to [allowed]
    (default: every family) in {!Cell_netlist.all_families} order.  Dies
    with [prog: unknown family f] on names outside [allowed]. *)

val bench_entries : prog:string -> string list -> Bench_suite.entry list
(** Resolves benchmark names accumulated by a repeatable [--bench] flag
    (newest first, as [Arg.String] pushes them); [[]] means the whole
    suite.  Dies with [prog: unknown benchmark n] on unknown names. *)

val synth_steps : prog:string -> string -> string
(** Script fragment of a [--synth] mode: [none] -> [""], [light] ->
    ["light"], [full] -> ["resyn2rs"].  Dies with
    [prog: unknown synth mode m] otherwise. *)

val fast_subset : string list
(** The small-benchmark subset the harnesses use for quick runs. *)

val peak_rss_kb : unit -> int option
(** Peak resident-set size of this process in kB ([VmHWM] from
    [/proc/self/status]); [None] on platforms without procfs.  Used by the
    bench harnesses to record memory alongside wall time. *)
