(** The pass-pipeline engine: one typed implementation of the paper's
    optimize → map → characterize → verify flow, shared by every driver.

    A {e pass} is a named transform over a flow {!ctx} (AIG, mapped
    netlist, STA results, diagnostics).  Scripts compose ABC-style from a
    parsed spec string, e.g.

    {[ "b; rw; rf; map(cut=6,timing); sta; lint" ]}

    The engine owns
    - the shared library cache ({!Cell_lib.cached}) so each family is
      elaborated and characterized exactly once per process,
    - an observability layer recording one {!sample} per executed pass
      (wall time, node/level/area/delay deltas, library-cache hits),
      renderable human-readable, as TSV and as JSON,
    - a {!Runner} fanning job arrays across {!Domain}s with deterministic,
      sequential-identical output ordering, and a {!run_matrix} driver for
      the benchmark × family sweep. *)

exception Flow_error of string
(** Raised on engine misuse (e.g. [sta] before [map]) and bad pass
    arguments.  Script {e syntax} errors are reported by {!parse_script}
    as [Error _] instead. *)

(** {1 Configuration and context} *)

type config = {
  family : Cell_netlist.family;  (** default target of [map] *)
  cut_size : int;                (** default mapper cut size (6) *)
  cut_engine : Cut.engine;       (** default cut engine ({!Cut.Packed}) *)
  max_cuts : int option;
      (** default mapper per-node candidate-cut scratch bound
          ({!Mapper.params.max_cuts}; [None] = exact [cut_limit²]).
          Overridable per step with [map(max-cuts=N)]. *)
  timing : bool;                 (** default STA-backed timing mapping *)
  po_fanout : float;             (** default STA primary-output load (4.0) *)
  unit_loads : bool;             (** default fixed-FO4 STA convention *)
  seed : int64;                  (** default [verify] simulation seed *)
  verify_rounds : int;           (** default [verify] pattern batches (8) *)
  conflict_budget : int option;
      (** SAT conflict cap for [lint]'s functional fallback and the [fault]
          pass's ATPG; exhaustion degrades to a Warning diagnostic
          ([None] = solver default / unbounded lint solves) *)
  isolate : bool;
      (** catch per-pass exceptions: a raising pass becomes a
          [flow-pass-crash] Error diagnostic and aborts only its own
          pipeline (default [false]: exceptions propagate) *)
  pass_budget_s : float option;
      (** wall-clock budget per pass; overruns add a [flow-pass-budget]
          Warning (the pass still completes — there is no preemption) *)
  fault_rounds : int;            (** default [fault] random rounds (32) *)
  jobs : int;
      (** within-circuit domains for the cut-based synthesis passes and
          the mapper's cover selection (default 1).  Output is
          byte-identical for every value; see {!Par}.  Distinct from
          {!Runner.map_jobs}'s across-circuit fan-out — a driver should
          use one or the other, not both. *)
}

val default_config : config

type ctx = {
  name : string;                  (** circuit tag used in reports *)
  family : Cell_netlist.family;   (** target family of the next [map] *)
  aig : Aig.t;                    (** current logic network *)
  golden : Aig.t option;          (** the AIG the mapping was derived from *)
  lib : Cell_lib.t option;        (** library of the last [map] *)
  mapped : Mapped.t option;
  sta : Sta.t option;
  placement : Fabric.placement option;
  fault : Gate_fault.summary option;  (** result of the last [fault] pass *)
  testability : Testability.summary option;
      (** result of the last [testability] pass *)
  diags : Diag.t list;            (** accumulated findings, oldest first *)
  verified : bool option;         (** result of the last [verify] *)
}

val init : ?family:Cell_netlist.family -> name:string -> Aig.t -> ctx

val diags_since : ctx -> ctx -> Diag.t list
(** [diags_since before after]: the findings added between the two
    contexts (diagnostics are append-only). *)

(** {1 Scripts} *)

type step = {
  pass : string;
  args : (string * string option) list;
      (** [key=value] or bare [flag] arguments, in source order *)
}

val parse_script : string -> (step list, string) result
(** Splits on [;], each step [name], [name(arg,key=value,...)] or ABC-style
    [name -flag].  Unknown pass names are reported here; argument values
    are validated when the pass runs. *)

val parse_script_exn : string -> step list
(** Raises {!Flow_error}. *)

val script_to_string : step list -> string
val step_to_string : step -> string

val split_at_map : step list -> step list * step list
(** [(prefix, suffix)] around the first [map] step: the prefix is
    family-independent (pure AIG transforms and AIG lint), so a matrix
    driver hoists it and runs it once per benchmark. *)

val passes : (string * string) list
(** [(name, one-line description)] of every registered pass. *)

(** {1 Per-pass metrics} *)

type gc_delta = {
  gd_minor_words : float;   (** words allocated in the minor heap *)
  gd_major_words : float;   (** words allocated in / promoted to the major heap *)
  gd_compactions : int;
}
(** Allocation pressure of one pass: {!Gc.quick_stat} deltas taken around
    the pass body in the domain that ran it (with [config.jobs] > 1 the
    mapper's worker-domain allocations are not included — compare runs at
    like [jobs]). *)

type sample = {
  sm_circuit : string;
  sm_family : string;     (** short family name, ["-"] while unmapped *)
  sm_pass : string;       (** rendered step, e.g. ["map(cut=6)"] *)
  sm_wall_s : float;
  sm_ands_before : int;
  sm_ands_after : int;
  sm_depth_before : int;
  sm_depth_after : int;
  sm_mapped : Mapped.stats option;  (** set when the pass (re)built the mapping *)
  sm_sta_ps : float option;         (** set by [sta]: absolute critical delay *)
  sm_cache : [ `Hit | `Miss ] option;
      (** library-cache outcome when the pass fetched a library *)
  sm_cut : Cut.stats option;
      (** cut-engine hot-path counters when the pass enumerated cuts
          ([map] and the cut-based synthesis passes) *)
  sm_fault : Gate_fault.summary option;
      (** fault-coverage summary when the pass ran fault analysis *)
  sm_testability : Testability.summary option;
      (** static-testability summary when the pass ran the analysis *)
  sm_sat : Solver.stats option;
      (** SAT-solver effort when the pass issued solver queries ([lint]
          cover verification and [fault] ATPG) *)
  sm_gc : gc_delta option;
      (** allocation deltas of the pass ([None] only for the crash sample
          of an isolated failing pass) *)
  sm_new_diags : int;     (** findings added by the pass *)
}

val render_samples : sample list -> string
(** Human-readable per-pass table with node/depth/area/delay deltas. *)

val samples_tsv_header : string
val sample_to_tsv : sample -> string
val samples_to_json : sample list -> string

(** {1 Running} *)

val run : ?config:config -> step list -> ctx -> ctx * sample list
(** Applies the steps in order; each executed pass contributes one
    {!sample} (in order).  With [config.isolate] a raising pass is
    converted into a [flow-pass-crash] Error diagnostic (plus a
    [flow-passes-skipped] note for the steps not run) and the function
    returns normally; with [config.pass_budget_s] slow passes add a
    [flow-pass-budget] Warning. *)

val summary_line : ctx -> string
(** One deterministic report line: [name/family gates=… area=… levels=…
    delay=… ps=… sta-ps=…] (falls back to AIG statistics while unmapped). *)

(** {1 Deterministic parallel runner} *)

module Runner : sig
  val recommended_domains : unit -> int

  val map_jobs : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
    (** [map_jobs ~domains f jobs] applies [f] to every job, fanning the
        array across [domains] {!Domain}s (default 1 = in-process, no
        spawn).  Jobs are claimed dynamically from an atomic counter;
        results always return in input order, so output built from them is
        byte-identical to a sequential run.  The first job exception (in
        input order) is re-raised after all domains join. *)
end

type bench_result = {
  br_bench : string;
  br_ctx0 : ctx;
      (** context after the hoisted family-independent prefix; its [diags]
          are shared by every family (use {!diags_since} against it to get
          one family's own findings) *)
  br_prefix_samples : sample list;
      (** metrics of the hoisted family-independent prefix *)
  br_per_family : (Cell_netlist.family * ctx * sample list) list;
      (** per family: final context and suffix metrics, in input order *)
}

val run_matrix :
  ?domains:int ->
  ?config:config ->
  ?on_result:(bench_result -> unit) ->
  script:step list ->
  families:Cell_netlist.family list ->
  Bench_suite.entry list ->
  bench_result array
(** The benchmark × family sweep: per benchmark, build the circuit, run the
    family-independent script prefix once, then run the [map]-onward suffix
    once per family.  Benchmarks fan out across [domains]; the needed
    libraries are pre-warmed in the calling domain so the cache is
    populated exactly once.  Results are in input order regardless of
    [domains].

    With [config.isolate], a crash anywhere in one benchmark (including its
    circuit builder) yields a [flow-bench-crash] / [flow-pass-crash] Error
    diagnostic in that benchmark's result while every other matrix cell
    completes.  [on_result] is called once per finished benchmark {e in the
    worker domain that ran it} (completion order, not input order) — guard
    shared state with a mutex; used for checkpointing. *)

val matrix_samples : bench_result array -> sample list
(** All samples of a sweep, flattened in deterministic (bench-major,
    prefix-then-family) order. *)

(** {1 Checkpoint / resume for long matrix runs} *)

module Checkpoint : sig
  type entry = {
    ck_bench : string;
    ck_lines : string list;  (** the report lines the driver printed *)
    ck_diags : Diag.t list;
    ck_samples : sample list;
  }

  val save : string -> entry list -> unit
  (** Atomic (write-to-temp + rename) snapshot. *)

  val load : string -> entry list
  (** [[]] when the file is missing, truncated or not a checkpoint —
      resume then simply recomputes everything. *)

  val of_result : bench_result -> lines:string list -> entry
  (** Plain-data projection of one finished benchmark (all its diags and
      samples plus the rendered [lines]). *)

  val mem : entry list -> string -> bool
end
