(** Public umbrella API of the ambipolar-CNTFET synthesis library.

    The underlying modules ([Aig], [Synth], [Cell_lib], [Mapper], [Mapped],
    [Catalog], [Charlib], [Experiments], …) are all usable directly; this
    module bundles the common flow — build a circuit, optimize it, map it
    against one of the paper's libraries — into a few calls.

    {[
      let aig = Arith.adder 16 in
      let result = Core.run ~family:`Tg_static aig in
      Format.printf "%a@." Mapped.pp_stats result.Core.mapped
    ]} *)

type family = [ `Tg_static | `Tg_pseudo | `Pass_pseudo | `Pass_static | `Cmos ]

val netlist_family : family -> Cell_netlist.family
val of_netlist_family : Cell_netlist.family -> family

val library :
  ?delay:Cell_lib.delay_choice -> family -> Cell_lib.t
(** The characterized match library, served from the process-wide
    {!Cell_lib.cached} cache (each family is elaborated at most once per
    process, across all drivers and {!Domain}s). *)

type result = {
  original : Aig.t;
  optimized : Aig.t;
  mapped : Mapped.t;
}

val run :
  ?synthesize:bool ->
  ?cut_size:int ->
  ?verify:bool ->
  ?family:family ->
  Aig.t ->
  result
(** The full flow: [resyn2rs]-style optimization (unless [synthesize] is
    false), technology mapping (default family [`Tg_static]), and — with
    [verify] (default true for graphs below 10k nodes) — a random-simulation
    equivalence check of the mapping.  Raises [Failure] if verification
    fails. *)

val compare_families :
  ?synthesize:bool -> Aig.t -> (string * Mapped.stats) list
(** Maps the circuit against the static, pseudo and CMOS libraries and
    returns the per-library statistics (the paper's Table 3 row). *)
