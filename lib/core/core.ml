type family = [ `Tg_static | `Tg_pseudo | `Pass_pseudo | `Pass_static | `Cmos ]

let netlist_family = function
  | `Tg_static -> Cell_netlist.Tg_static
  | `Tg_pseudo -> Cell_netlist.Tg_pseudo
  | `Pass_pseudo -> Cell_netlist.Pass_pseudo
  | `Pass_static -> Cell_netlist.Pass_static
  | `Cmos -> Cell_netlist.Cmos

let of_netlist_family = function
  | Cell_netlist.Tg_static -> `Tg_static
  | Cell_netlist.Tg_pseudo -> `Tg_pseudo
  | Cell_netlist.Pass_pseudo -> `Pass_pseudo
  | Cell_netlist.Pass_static -> `Pass_static
  | Cell_netlist.Cmos -> `Cmos

let library ?(delay = Cell_lib.Worst) family =
  Cell_lib.cached ~delay (netlist_family family)

type result = {
  original : Aig.t;
  optimized : Aig.t;
  mapped : Mapped.t;
}

let simulation_check aig mapped =
  let rng = Rand64.create 97L in
  let ok = ref true in
  for _ = 1 to 8 do
    let words = Array.init (Aig.num_inputs aig) (fun _ -> Rand64.next rng) in
    if Aig.simulate_outputs aig words <> Mapped.simulate mapped words then
      ok := false
  done;
  !ok

let run ?(synthesize = true) ?(cut_size = 6) ?verify ?(family = `Tg_static) aig =
  let optimized = if synthesize then Synth.resyn2rs aig else aig in
  let params = { Mapper.default_params with Mapper.cut_size } in
  let mapped = Mapper.map ~params (library family) optimized in
  let verify =
    match verify with Some v -> v | None -> Aig.num_nodes aig < 10_000
  in
  if verify && not (simulation_check optimized mapped) then
    failwith "Core.run: mapped netlist disagrees with the source circuit";
  { original = aig; optimized; mapped }

let compare_families ?(synthesize = true) aig =
  let optimized = if synthesize then Synth.resyn2rs aig else aig in
  List.map
    (fun family ->
      let m = Mapper.map (library family) optimized in
      (Cell_lib.name (library family), Mapped.stats m))
    [ `Tg_static; `Tg_pseudo; `Cmos ]
