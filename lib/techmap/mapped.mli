(** Mapped netlists: the result of technology mapping, with the statistics
    the paper's Table 3 reports (gate count, area, logic depth, normalized
    and absolute delay), plus simulation for verification. *)

type driver =
  | Pi of int        (** primary input index *)
  | Inst of int      (** instance index *)
  | Const of bool

type net = { driver : driver; negated : bool }
(** [negated] uses the complemented value of the driver — free for
    free-phase (ambipolar) libraries whose cells expose both polarities,
    and for complemented constants/inputs where the library allows it. *)

type cover = { root_lit : int; fanin_lits : int array }
(** Provenance of an instance with respect to the source AIG it was mapped
    from: the instance output carries the value of AIG literal [root_lit],
    and fanin [i] carries the value of AIG literal [fanin_lits.(i)] (the
    cut leaf, in the polarity the match consumes it).  Recorded by
    {!Mapper.map} so that a static checker ({!Map_lint}) can re-derive and
    verify every covered cut function without re-running the mapper. *)

type instance = {
  cell_name : string;
  area : float;
  delay : float;
  fanins : net array;
  tt : int64;  (** output function over the fanin values (Tt convention) *)
  cover : cover option;  (** [None] when the provenance is unknown (e.g.
                             netlists built by hand or read from a file) *)
}

type t = {
  lib_name : string;
  tau_ps : float;
  num_inputs : int;
  input_names : string array;
  instances : instance array;  (** topologically ordered *)
  outputs : (string * net) array;
}

type stats = {
  gates : int;
  area : float;
  levels : int;
  norm_delay : float;
  abs_delay_ps : float;
}

val stats : t -> stats

val arrival_times : t -> float array
(** Per-instance arrival (sum of cell delays along the slowest path). *)

val instance_levels : t -> int array

val simulate : t -> int64 array -> int64 array
(** 64 parallel patterns: word per input, word per output. *)

val eval : t -> bool array -> bool array

val to_aig : t -> Aig.t
(** Re-expands every instance function into AND/INV logic — used to verify
    a mapping against its source AIG with the {!Cec} checker. *)

val count_cells : t -> (string * int) list
(** Instance count per cell name, descending. *)

val pp_stats : Format.formatter -> t -> unit
