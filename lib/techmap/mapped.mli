(** Mapped netlists: the result of technology mapping, with the statistics
    the paper's Table 3 reports (gate count, area, logic depth, normalized
    and absolute delay), plus simulation for verification. *)

type driver =
  | Pi of int        (** primary input index *)
  | Inst of int      (** instance index *)
  | Const of bool

type net = { driver : driver; negated : bool }
(** [negated] uses the complemented value of the driver — free for
    free-phase (ambipolar) libraries whose cells expose both polarities,
    and for complemented constants/inputs where the library allows it. *)

type cover = {
  root_lit : int;
  fanin_lits : int array;
  cut_nodes : int array;
      (** the structural cut of the source AIG the cover was derived from,
          {e before} support reduction — node ids, ascending.  Equal to the
          fanin nodes when the cut function depended on every leaf; wider
          when the mapper shrank a don't-care leaf away.  Lets a checker
          re-derive the cut function structurally even for support-reduced
          instances. *)
}
(** Provenance of an instance with respect to the source AIG it was mapped
    from: the instance output carries the value of AIG literal [root_lit],
    and fanin [i] carries the value of AIG literal [fanin_lits.(i)] (the
    cut leaf, in the polarity the match consumes it).  Recorded by
    {!Mapper.map} so that a static checker ({!Map_lint}) can re-derive and
    verify every covered cut function without re-running the mapper. *)

type instance = {
  cell_name : string;
  area : float;
  delay : float;  (** fixed unit-load FO4 delay (the legacy convention) *)
  drive : Charlib.drive option;
      (** output drive for load-dependent delay; [None] when the cell was
          not characterized *)
  fanin_caps : float array;
      (** capacitance each fanin pin presents to its driver, permuted to
          fanin order; [[||]] when unknown (one reference load assumed) *)
  fanins : net array;
  tt : int64;  (** output function over the fanin values (Tt convention) *)
  cover : cover option;  (** [None] when the provenance is unknown (e.g.
                             netlists built by hand or read from a file) *)
}

type t = {
  lib_name : string;
  tau_ps : float;
  num_inputs : int;
  input_names : string array;
  instances : instance array;  (** topologically ordered *)
  outputs : (string * net) array;
}

type stats = {
  gates : int;
  area : float;
  levels : int;
  norm_delay : float;  (** unit-load: sum of fixed FO4 delays (legacy) *)
  abs_delay_ps : float;
  sta_norm_delay : float;
      (** load-aware: arrival under {!instance_delays} with the default
          [Loaded 4.0] model (real fanout loads, FO4 primary outputs) *)
  sta_abs_delay_ps : float;
}

val stats : t -> stats

(** {1 Delay models}

    [Unit_load] charges every instance its fixed [delay] field — the
    paper's FO4-per-cell convention.  [Loaded po_fanout] computes each
    instance's delay from its {e actual} output load — the sum of the
    fanin-pin capacitances it drives, plus [po_fanout] reference-inverter
    loads on every primary output — through {!Charlib.drive_delay}. *)

type delay_model = Unit_load | Loaded of float

val output_loads : ?po_fanout:float -> t -> float array
(** Capacitive load on each instance output (default [po_fanout] 4.0). *)

val instance_delays : ?model:delay_model -> t -> float array
(** Per-instance delay under the model (default [Loaded 4.0]). *)

val arrival_times_with : t -> float array -> float array
(** Arrival times given per-instance delays (topological propagation). *)

val arrival_times : t -> float array
(** Per-instance arrival (sum of cell delays along the slowest path).
    Equals [arrival_times_with m (instance_delays ~model:Unit_load m)]. *)

val instance_levels : t -> int array

val simulate : t -> int64 array -> int64 array
(** 64 parallel patterns: word per input, word per output. *)

val simulate_values : t -> int64 array -> int64 array
(** Like {!simulate} but returns the packed value of every {e instance}
    (indexed like [instances]); output nets are [net_value] over these.
    The fault simulator resimulates fanout cones against this baseline. *)

val net_value : int64 array -> int64 array -> net -> int64
(** [net_value input_words instance_vals net] resolves one net against
    packed input/instance values, applying the net's polarity. *)

val eval_instance : int64 array -> int64 array -> instance -> int64
(** One instance's packed output word given packed input words and the
    packed values of (at least) its fanin instances. *)

val eval : t -> bool array -> bool array

val to_aig : t -> Aig.t
(** Re-expands every instance function into AND/INV logic — used to verify
    a mapping against its source AIG with the {!Cec} checker. *)

val count_cells : t -> (string * int) list
(** Instance count per cell name, descending. *)

val pp_stats : Format.formatter -> t -> unit
