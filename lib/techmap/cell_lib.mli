(** Technology libraries for the mapper.

    A library is a set of cells (name, pin count, output function, area,
    delay) expanded into per-arity match tables: every useful
    negation/permutation variant of every cell function is tabulated so
    that Boolean matching during covering is a hash lookup.

    Phase economics differ per technology and drive the expansion:
    - {e free-phase} libraries (the ambipolar CNTFET families): any input
      may be consumed in either polarity (the polarity gate is set in-field)
      and every cell carries an output inverter providing both output
      polarities (Sec. 4.3) — so the full NPN orbit of every cell maps at
      the cell's own cost;
    - CMOS: only pin permutations are free; input or output complementation
      requires explicit inverter cells, which the mapper inserts. *)

type cell = {
  id : int;
  name : string;
  arity : int;
  tt : int64;      (** output function, 6-var replicated word over pins 0.. *)
  area : float;
  delay : float;   (** pin-to-pin delay, FO4 normalized to the family's tau *)
  timing : Charlib.timing option;
      (** pin capacitances and output drive for load-dependent delay;
          [None] for libraries without characterization (genlib, published
          numbers) — such cells fall back to the fixed [delay] *)
}

type match_entry = {
  cell : cell;
  perm : int array;  (** cut variable [i] drives cell pin [perm.(i)] *)
  phase : int;       (** bit [i]: cut variable [i] is consumed complemented *)
  out_neg : bool;    (** realized on the cell's complemented output
                         (free-phase libraries only) *)
}

type t

val name : t -> string
val cells : t -> cell list
val free_phases : t -> bool
val inverter : t -> cell option
(** The explicit inverter cell (phase repair in non-free-phase libraries). *)

val tau_ps : t -> float

val matches : t -> int -> int64 -> match_entry list
(** [matches lib arity tt]: entries whose expanded variant equals [tt] (a
    function of exactly [arity] support variables, replicated word).  For a
    free-phase library this already includes output-complemented variants
    ([out_neg]); for CMOS, query the complement separately and bridge with
    {!inverter}. *)

val num_entries : t -> int

val avg_pin_cap : t -> float option
(** Mean input-pin capacitance over all characterized cells — the mapper's
    a-priori estimate of the load one fanout contributes.  [None] when no
    cell carries timing data. *)

(** {1 Construction} *)

type delay_choice = Worst | Average

val cntfet :
  ?family:Cell_netlist.family ->
  ?delay:delay_choice ->
  ?with_output_inverter:bool ->
  unit -> t
(** Library of the 46 catalog cells characterized by {!Charlib} for the
    given family (default [Tg_static]).  [with_output_inverter] charges
    every cell with its output inverter (default [false]).  Free-phase. *)

val cmos : ?delay:delay_choice -> unit -> t
(** The CMOS reference library: INV, NAND2, NOR2, NAND3, NOR3, OAI21,
    AOI21 — the inverting forms of the 7 CMOS-expressible catalog entries
    — with Table 2 characterization.  Input phases cost inverters. *)

val cmos_cell_name : string -> string
(** Conventional name of the inverting CMOS form of a catalog entry
    (["F03"] -> ["NAND2"], ...). *)

(** {1 Process-wide library cache}

    Every characterized library the flow can target, elaborated at most once
    per process and shared across {!Domain}s (the cache is mutex-guarded;
    the libraries themselves are immutable once built). *)

val cached : ?delay:delay_choice -> Cell_netlist.family -> t
(** [cached family] is {!cntfet} (or {!cmos} for [Cell_netlist.Cmos]) served
    from the cache. *)

val cached_with_status :
  ?delay:delay_choice -> Cell_netlist.family -> t * [ `Hit | `Miss ]
(** Like {!cached}, also reporting whether this call was served from the
    cache — the flow engine's per-pass cache metric. *)

type cache_stats = { hits : int; misses : int; entries : int }
(** [entries] is the number of distinct (family, delay) libraries built. *)

val cache_stats : unit -> cache_stats
(** Counters since process start, read as one consistent snapshot under
    the same mutex that guards the cache itself (served verbatim in the
    synthesis daemon's status reply). *)

val of_cells :
  name:string -> free_phases:bool -> tau_ps:float -> cell list -> t
(** Build a library from explicit cells (used by the genlib reader).  The
    inverter is detected by function. *)
