type cell = {
  id : int;
  name : string;
  arity : int;
  tt : int64;
  area : float;
  delay : float;
  timing : Charlib.timing option;
}

type match_entry = {
  cell : cell;
  perm : int array;
  phase : int;
  out_neg : bool;
}

type t = {
  lib_name : string;
  lib_cells : cell list;
  lib_free_phases : bool;
  lib_inv : cell option;
  tables : (int64, match_entry list) Hashtbl.t array; (* index = arity *)
  lib_tau : float;
  mutable entry_count : int;
}

let name t = t.lib_name
let cells t = t.lib_cells

let avg_pin_cap t =
  let pins = ref 0 and cap = ref 0.0 in
  List.iter
    (fun c ->
      match c.timing with
      | Some tm ->
          Array.iter
            (fun pc ->
              incr pins;
              cap := !cap +. pc)
            tm.Charlib.pin_caps
      | None -> ())
    t.lib_cells;
  if !pins = 0 then None else Some (!cap /. float_of_int !pins)
let free_phases t = t.lib_free_phases
let inverter t = t.lib_inv
let tau_ps t = t.lib_tau
let num_entries t = t.entry_count

type delay_choice = Worst | Average

let matches t arity tt =
  if arity < 0 || arity > 6 then []
  else
    match Hashtbl.find_opt t.tables.(arity) tt with
    | Some es -> es
    | None -> []

(* Keep a small pareto set per key: no entry both larger and slower than
   another. *)
let insert_entry t arity key ke =
  let tbl = t.tables.(arity) in
  let existing = try Hashtbl.find tbl key with Not_found -> [] in
  let dominated e =
    e.cell.area >= ke.cell.area -. 1e-12 && e.cell.delay >= ke.cell.delay -. 1e-12
  in
  let dominates e =
    e.cell.area <= ke.cell.area +. 1e-12 && e.cell.delay <= ke.cell.delay +. 1e-12
  in
  if List.exists dominates existing then ()
  else begin
    let kept = List.filter (fun e -> not (dominated e)) existing in
    t.entry_count <- t.entry_count + 1 - (List.length existing - List.length kept);
    Hashtbl.replace tbl key (ke :: kept)
  end

let expand t cell =
  let k = cell.arity in
  if k = 0 then ()
  else
    Npn.enumerate k cell.tt (fun v tr ->
        if tr.Npn.neg && not t.lib_free_phases then ()
        else if tr.Npn.phase <> 0 && not t.lib_free_phases then
          (* CMOS: input phases are handled by the mapper via leaf phases;
             tabulating them here would hide the inverter cost.  Only
             pin permutations are free. *)
          ()
        else
          insert_entry t k v
            { cell; perm = Array.copy tr.Npn.perm; phase = tr.Npn.phase;
              out_neg = tr.Npn.neg })

(* CMOS: pin permutations are free; input phases are tabulated but the
   mapper charges the leaf's complement phase (eventually an inverter);
   output negation is excluded — the opposite node phase is queried
   separately and bridged with the inverter cell. *)
let expand_cmos t cell =
  let k = cell.arity in
  if k = 0 then ()
  else
    Npn.enumerate k cell.tt (fun v tr ->
        if tr.Npn.neg then ()
        else
          insert_entry t k v
            { cell; perm = Array.copy tr.Npn.perm; phase = tr.Npn.phase;
              out_neg = false })

let is_inverter c =
  c.arity = 1 && c.tt = Npn.flip 0xAAAAAAAAAAAAAAAAL 0

let build ~name ~free_phases ~tau_ps cells =
  let t =
    {
      lib_name = name;
      lib_cells = cells;
      lib_free_phases = free_phases;
      lib_inv = List.find_opt is_inverter cells;
      tables = Array.init 7 (fun _ -> Hashtbl.create 1024);
      lib_tau = tau_ps;
      entry_count = 0;
    }
  in
  List.iter (fun c -> if free_phases then expand t c else expand_cmos t c) cells;
  t

let of_cells ~name ~free_phases ~tau_ps cells = build ~name ~free_phases ~tau_ps cells

let pick_delay choice (r : Charlib.row) =
  match choice with Worst -> r.Charlib.fo4_worst | Average -> r.Charlib.fo4_avg

let cntfet ?(family = Cell_netlist.Tg_static) ?(delay = Worst)
    ?(with_output_inverter = false) () =
  let rows = Charlib.characterize_catalog family in
  let rows =
    if with_output_inverter then List.map Charlib.with_output_inverter rows
    else rows
  in
  let cells =
    List.mapi
      (fun i (r : Charlib.row) ->
        {
          id = i;
          name = r.Charlib.name;
          arity = Gate_spec.arity r.Charlib.spec;
          tt = Gate_spec.tt6 r.Charlib.spec;
          area = r.Charlib.area;
          delay = pick_delay delay r;
          timing = Some r.Charlib.timing;
        })
      rows
  in
  build
    ~name:(Cell_netlist.family_name family)
    ~free_phases:true
    ~tau_ps:(Charlib.tau_ps family)
    cells

let cmos_cell_name = function
  | "F00" -> "INV"
  | "F02" -> "NOR2"
  | "F03" -> "NAND2"
  | "F10" -> "NOR3"
  | "F11" -> "OAI21"
  | "F12" -> "AOI21"
  | "F13" -> "NAND3"
  | n -> n ^ "N"

let cmos ?(delay = Worst) () =
  let rows = Charlib.characterize_catalog Cell_netlist.Cmos in
  let cells =
    List.mapi
      (fun i (r : Charlib.row) ->
        {
          id = i;
          name = cmos_cell_name r.Charlib.name;
          arity = Gate_spec.arity r.Charlib.spec;
          (* single-stage CMOS cells realize the complement of the
             catalog's positive function (NAND, NOR, AOI, OAI) *)
          tt = Int64.lognot (Gate_spec.tt6 r.Charlib.spec);
          area = r.Charlib.area;
          delay = pick_delay delay r;
          (* the physical netlist Charlib characterized is this inverting
             cell, so its pin table and drive carry over unchanged *)
          timing = Some r.Charlib.timing;
        })
      rows
  in
  build ~name:"cmos-static" ~free_phases:false
    ~tau_ps:(Charlib.tau_ps Cell_netlist.Cmos) cells

(* ---- process-wide library cache ----

   Characterizing and NPN-expanding a family costs far more than any lookup,
   and every driver of the flow needs the same handful of libraries; the
   cache guarantees each (family, delay) pair is elaborated exactly once per
   process.  Guarded by a mutex so Domain-parallel runners can share it —
   the returned libraries themselves are immutable after construction. *)

let cache : (Cell_netlist.family * delay_choice, t) Hashtbl.t =
  Hashtbl.create 16

let cache_lock = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0

let cached_with_status ?(delay = Worst) family =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache (family, delay) with
      | Some lib ->
          incr cache_hits;
          (lib, `Hit)
      | None ->
          incr cache_misses;
          let lib =
            match family with
            | Cell_netlist.Cmos -> cmos ~delay ()
            | family -> cntfet ~family ~delay ()
          in
          Hashtbl.replace cache (family, delay) lib;
          (lib, `Miss))

let cached ?delay family = fst (cached_with_status ?delay family)

type cache_stats = { hits : int; misses : int; entries : int }

(* One consistent snapshot: all three counters are read under the same
   mutex that guards the cache and its hit/miss increments, so a reader
   racing Domain-parallel [cached] calls can never observe hits and
   misses from different instants (e.g. hits+misses < entries). *)
let cache_stats () =
  Mutex.protect cache_lock (fun () ->
      { hits = !cache_hits; misses = !cache_misses;
        entries = Hashtbl.length cache })
