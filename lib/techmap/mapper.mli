(** Cut-based structural technology mapping (the algorithm family of ABC's
    [map]): K-feasible priority cuts, Boolean matching by hash lookup in the
    NPN-expanded library tables, delay-optimal covering, and required-time
    driven area recovery.

    Both node phases are mapped.  In free-phase libraries (ambipolar
    CNTFET) the complement of every net is available for free — matching
    the paper's convention that each cell carries an output inverter — so a
    single phase is computed.  In the CMOS library, complement phases cost
    explicit inverter cells, which the mapper inserts and charges. *)

type params = {
  cut_size : int;      (** K, at most 6 (the largest library pin count) *)
  cut_limit : int;     (** priority cuts kept per node *)
  area_passes : int;   (** required-time-driven area-recovery iterations *)
  timing : bool;
      (** STA-backed timing mode: the delay-optimal cover and the
          required-time feasibility checks of area recovery charge each
          candidate cell its load-dependent delay
          ({!Charlib.drive_delay}) at an estimated load of one average
          library pin per AIG fanout, instead of the fixed unit-load FO4.
          Cells without characterization fall back to the fixed delay.
          Default [false] (the paper's convention). *)
  engine : Cut.engine;
      (** Cut enumeration engine.  Both produce identical netlists;
          {!Cut.Packed} (the default) is the fast path, {!Cut.Reference}
          re-walks each cut's cone and exists for differential testing and
          benchmarking. *)
  cost : (Cell_lib.cell -> float) option;
      (** Pluggable covering cost (the opening move of the ROADMAP's
          cost-generic mapping refactor).  When set, this function replaces
          raw cell area as the flow currency of matching, phase bridging
          and area recovery: delay stays lexicographically primary, but
          ties and the recovery passes minimize the plugged cost instead of
          area.  The caller supplies any [Cell_lib.cell -> float] — e.g.
          [Testability.cell_cost] charges cells with poorly-sensitizable
          pins.  [None] (the default) is exact area flow; reported netlist
          area is always real cell area either way. *)
  jobs : int;
      (** Domains for within-circuit parallel cover selection (default 1).
          Cut-info precomputation fans out over nodes, and every matching
          pass runs level-synchronized across a {!Par} pool: a cut's
          support lies strictly below its root's level, so the nodes of
          one level match independently from finished lower levels.  The
          chosen cover — and hence the netlist — is byte-identical for
          every [jobs] value. *)
}

val default_params : params

val map : ?params:params -> Cell_lib.t -> Aig.t -> Mapped.t
(** Maps a combinational AIG.  The mapped netlist is logically equivalent
    to the AIG (checkable with {!Mapped.to_aig} and {!Cec}). *)

val map_with_stats :
  ?params:params -> Cell_lib.t -> Aig.t -> Mapped.t * Cut.stats
(** Same as {!map}, also returning the cut-engine counters of the run
    (enumeration counters are only filled by the packed engine;
    [probes] — match-table lookups — is counted under both). *)
