(** Cut-based structural technology mapping (the algorithm family of ABC's
    [map]): K-feasible priority cuts, Boolean matching by hash lookup in the
    NPN-expanded library tables, delay-optimal covering, and required-time
    driven area recovery.

    Both node phases are mapped.  In free-phase libraries (ambipolar
    CNTFET) the complement of every net is available for free — matching
    the paper's convention that each cell carries an output inverter — so a
    single phase is computed.  In the CMOS library, complement phases cost
    explicit inverter cells, which the mapper inserts and charges. *)

type params = {
  cut_size : int;      (** K, at most 6 (the largest library pin count) *)
  cut_limit : int;     (** priority cuts kept per node *)
  area_passes : int;   (** required-time-driven area-recovery iterations *)
  timing : bool;
      (** STA-backed timing mode: the delay-optimal cover and the
          required-time feasibility checks of area recovery charge each
          candidate cell its load-dependent delay
          ({!Charlib.drive_delay}) at an estimated load of one average
          library pin per AIG fanout, instead of the fixed unit-load FO4.
          Cells without characterization fall back to the fixed delay.
          Default [false] (the paper's convention). *)
  engine : Cut.engine;
      (** Cut enumeration engine.  Both produce identical netlists;
          {!Cut.Packed} (the default) is the fast path, {!Cut.Reference}
          re-walks each cut's cone and exists for differential testing and
          benchmarking. *)
  cost : (Cell_lib.cell -> float) option;
      (** Pluggable covering cost (the opening move of the ROADMAP's
          cost-generic mapping refactor).  When set, this function replaces
          raw cell area as the flow currency of matching, phase bridging
          and area recovery: delay stays lexicographically primary, but
          ties and the recovery passes minimize the plugged cost instead of
          area.  The caller supplies any [Cell_lib.cell -> float] — e.g.
          [Testability.cell_cost] charges cells with poorly-sensitizable
          pins.  [None] (the default) is exact area flow; reported netlist
          area is always real cell area either way. *)
  jobs : int;
      (** Domains for within-circuit parallel cover selection (default 1).
          Cut-info precomputation fans out over nodes, and every matching
          pass runs as a level-ordered wavefront across a {!Par} pool: a
          cut's support lies strictly below its root's level, so the
          nodes of one level match independently from finished lower
          levels.  Large levels are chunked across the pool and runs of
          small levels execute sequentially between lock-free barriers,
          all under a single pool dispatch per pass
          ({!Par.run_phases}).  The chosen cover — and hence the
          netlist — is byte-identical for every [jobs] value. *)
  max_cuts : int option;
      (** Per-node candidate scratch bound handed to
          {!Cut.compute_packed} (default [None] = [cut_limit²], which is
          exact; see its doc for the truncation semantics of lower
          values).  Ignored by the reference engine. *)
  incremental : bool;
      (** Incremental pass re-evaluation (default [true]).  An
          area-recovery pass skips a node when none of its candidate
          cuts' leaves changed their (arrival, flow) slot in the current
          pass and its effective required times equal the previous
          pass's — an exact criterion, so covers are bit-identical to
          full re-evaluation ([false], which exists for differential
          testing).  Skip/evaluate totals are reported in
          {!Cut.stats.reeval_skips} / [reevals].  Timing mode always
          re-evaluates fully (its load fixed-point rewrites the cost
          model between passes). *)
}

val default_params : params

(** {1 Per-phase wall-clock breakdown} *)

type phase_ms = {
  mutable pm_cuts_ms : float;
      (** cut enumeration + match-arena construction *)
  mutable pm_match_ms : float;   (** delay-objective matching sweeps *)
  mutable pm_required_ms : float;
      (** required-time / load-measurement analyses *)
  mutable pm_recover_ms : float; (** area-recovery matching sweeps *)
  mutable pm_extract_ms : float; (** netlist extraction *)
}

val phase_ms_create : unit -> phase_ms
(** All-zero record; {!map_with_stats} {e adds} into the record it is
    handed, so one record can accumulate across calls. *)

val map : ?params:params -> Cell_lib.t -> Aig.t -> Mapped.t
(** Maps a combinational AIG.  The mapped netlist is logically equivalent
    to the AIG (checkable with {!Mapped.to_aig} and {!Cec}). *)

val map_with_stats :
  ?params:params -> ?phase:phase_ms -> Cell_lib.t -> Aig.t -> Mapped.t * Cut.stats
(** Same as {!map}, also returning the cut-engine counters of the run
    (enumeration counters are only filled by the packed engine;
    [probes] — match-table lookups — and the [reevals] /
    [reeval_skips] pair are counted under both).  [phase] receives the
    run's wall-clock breakdown (added into the record). *)
