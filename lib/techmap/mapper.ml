type params = {
  cut_size : int;
  cut_limit : int;
  area_passes : int;
  timing : bool;
  engine : Cut.engine;
  cost : (Cell_lib.cell -> float) option;
  jobs : int;
}

let default_params =
  {
    cut_size = 6;
    cut_limit = 12;
    area_passes = 3;
    timing = false;
    engine = Cut.Packed;
    cost = None;
    jobs = 1;
  }

(* A mapping choice for (node, phase): how the value [node ^ phase] is
   produced. *)
type choice =
  | Unmapped
  | Wire of int * bool
    (** [Wire (leaf, ph)]: the value equals [leaf ^ ph] (support-1 cut) *)
  | Match of Cell_lib.match_entry * int array * int array * int64
    (** entry, cut leaves (support only), original structural cut leaves
        (pre-shrink), implemented function over the support leaves (the
        lookup key) *)
  | Bridge  (** inverter from the opposite phase (non-free libraries) *)

type slot = {
  mutable choice : choice;
  mutable arrival : float;
  mutable flow : float;  (** area flow estimate *)
}

let infinity_f = infinity

let map_with_stats ?(params = default_params) lib aig =
  let stats = Cut.stats_create () in
  let k = min 6 params.cut_size in
  let free = Cell_lib.free_phases lib in
  let nph = if free then 1 else 2 in
  let inv = Cell_lib.inverter lib in
  (* Covering cost of a cell.  The flow/"area" currency of the matcher is
     pluggable (ROADMAP: cost-generic mapping): [params.cost] replaces raw
     cell area in every flow computation — matching, bridging and the
     recovery passes — while arrival time stays lexicographically primary
     and the reported netlist area is always the real cell area. *)
  let cell_cost (c : Cell_lib.cell) =
    match params.cost with Some f -> f c | None -> c.Cell_lib.area
  in
  let inv_area =
    match inv with Some c -> cell_cost c | None -> infinity_f
  in
  if (not free) && inv = None then
    invalid_arg "Mapper.map: non-free-phase library without an inverter";
  let n = Aig.num_nodes aig in
  let refs = Aig.fanout_counts aig in
  let refs_f = Array.map (fun r -> float_of_int (max 1 r)) refs in
  (* Load-aware cost (timing mode): a cell rooted at [nd] will drive
     roughly one average library pin per internal AIG fanout, plus the
     reference output load (the model's [po_fanout] inverters) per primary
     output — a pre-cover estimate of the final netlist load, refined
     nowhere (the cover isn't known during matching).  Classic mode charges
     the fixed unit-load FO4. *)
  let timing_on = params.timing in
  let avg_cin =
    match Cell_lib.avg_pin_cap lib with Some c -> c | None -> 1.0
  in
  let cref =
    (* the family's reference inverter input capacitance *)
    List.fold_left
      (fun acc (c : Cell_lib.cell) ->
        match (acc, c.Cell_lib.timing) with
        | Some _, _ -> acc
        | None, Some tm -> Some tm.Charlib.drive.Charlib.cin_ref
        | None, None -> None)
      None (Cell_lib.cells lib)
    |> Option.value ~default:2.0
  in
  let po_f = Array.make n 0.0 in
  Array.iter
    (fun (_, l) ->
      let nd = Aig.node_of l in
      po_f.(nd) <- po_f.(nd) +. 1.0)
    (Aig.outputs aig);
  let est_load nd =
    let po = po_f.(nd) in
    (Float.max 0.0 (refs_f.(nd) -. po) *. avg_cin) +. (po *. 4.0 *. cref)
  in
  (* Once a full cover exists, [measure_loads] replaces the a-priori
     estimate with the loads the chosen cover actually presents; until
     then the estimate stands. *)
  let loads_cur = ref None in
  let node_load nd p =
    match !loads_cur with Some a -> a.(nd).(p) | None -> est_load nd
  in
  let cell_delay_loaded (c : Cell_lib.cell) load =
    match c.Cell_lib.timing with
    | Some tm -> Charlib.drive_delay tm.Charlib.drive ~load
    | None -> c.Cell_lib.delay
  in
  (* The first delay pass always runs with the legacy fixed-FO4 cost, so
     timing mode starts from exactly the cover the default mode produces;
     load-aware refinement switches this on afterwards. *)
  let use_loads = ref false in
  let cell_delay_at nd p c =
    if timing_on && !use_loads then cell_delay_loaded c (node_load nd p)
    else c.Cell_lib.delay
  in
  let inv_delay_at nd p =
    match inv with Some c -> cell_delay_at nd p c | None -> infinity_f
  in
  let inv_pin_cap =
    match inv with
    | Some { Cell_lib.timing = Some tm; _ } -> tm.Charlib.pin_caps.(0)
    | _ -> avg_cin
  in
  let slots =
    Array.init n (fun _ ->
        Array.init nph (fun _ ->
            { choice = Unmapped; arrival = infinity_f; flow = infinity_f }))
  in
  let slot node ph = slots.(node).(if free then 0 else ph) in
  (* primary inputs and the constant node (re-run when loads change) *)
  let init_leaf_slots () =
    for i = 0 to Aig.num_inputs aig do
      (* node 0 is the constant; inputs are 1..num_inputs *)
      let s0 = slots.(i).(0) in
      s0.choice <- Wire (i, false);
      s0.arrival <- 0.0;
      s0.flow <- 0.0;
      if nph = 2 then begin
        let s1 = slots.(i).(1) in
        if i = 0 then begin
          (* complemented constant is still a constant *)
          s1.choice <- Wire (0, true);
          s1.arrival <- 0.0;
          s1.flow <- 0.0
        end
        else begin
          s1.choice <- Bridge;
          s1.arrival <- inv_delay_at i 1;
          s1.flow <- inv_area
        end
      end
    done
  in
  init_leaf_slots ();
  (* ---- within-circuit parallelism ----
     One pool serves cut-info precomputation (independent per node) and
     the level-synchronized matching passes.  Worker-visible writes are
     limited to disjoint per-node slots plus per-worker scratch, so the
     chosen cover is byte-identical for every pool width.  On the
     exception paths the pool leaks its parked workers; that is benign
     (the runtime exits with parked domains) and keeps the passes
     uncluttered. *)
  let pool = Par.create ~jobs:(max 1 params.jobs) in
  let pw = Par.width pool in
  let probe_ctr = Array.make pw 0 in
  (* Per-worker result cells of [eval_match] (float refs are unboxed). *)
  let em_arr = Array.init pw (fun _ -> ref 0.0) in
  let em_fl = Array.init pw (fun _ -> ref 0.0) in
  (* Nodes bucketed by logic level: every leaf of a cut of [nd] lies in
     [nd]'s strict fan-in, hence strictly below [nd]'s level, so the
     nodes of one level match independently once lower levels are
     final — the matching passes sweep level by level with a barrier
     in between, computing exactly the sequential pass's values. *)
  let level = Array.make n 0 in
  let nlevels = ref 1 in
  Aig.iter_ands aig (fun nd ->
      let l0 = level.(Aig.node_of (Aig.fanin0 aig nd))
      and l1 = level.(Aig.node_of (Aig.fanin1 aig nd)) in
      let l = 1 + if l0 > l1 then l0 else l1 in
      level.(nd) <- l;
      if l >= !nlevels then nlevels := l + 1);
  let lcount = Array.make !nlevels 0 in
  Aig.iter_ands aig (fun nd -> lcount.(level.(nd)) <- lcount.(level.(nd)) + 1);
  let levels = Array.map (fun c -> Array.make c 0) lcount in
  let lfill = Array.make !nlevels 0 in
  Aig.iter_ands aig (fun nd ->
      let l = level.(nd) in
      levels.(l).(lfill.(l)) <- nd;
      lfill.(l) <- lfill.(l) + 1);
  let for_ands_leveled f =
    Array.iter
      (fun lvl ->
        Par.run pool ~n:(Array.length lvl) (fun w lo hi ->
            for i = lo to hi - 1 do
              f w lvl.(i)
            done))
      levels
  in
  (* Precompute, per AND node, the list of usable (leaves, key) pairs:
     cut function shrunk to its support.  The packed engine hands us each
     cut's function straight out of the enumeration; the reference engine
     re-walks the cone per cut.  Both produce the same info lists.  The
     library match lists for both output phases are resolved here, once —
     every matching pass (1 delay + area_passes + the timing refinement)
     used to repeat the same [Cell_lib.matches] lookups per node. *)
  let node_cutinfo = Array.make n [] in
  let mk_info real_leaves leaves s key =
    let ents_pos = if s >= 2 then Cell_lib.matches lib s key else [] in
    let ents_neg =
      if s >= 2 then Cell_lib.matches lib s (Int64.lognot key) else []
    in
    (real_leaves, leaves, s, key, ents_pos, ents_neg)
  in
  (* Enumeration itself is sequential (the packed slab grows front to
     back); support shrinking and the library lookups fan out over nodes
     with disjoint writes into [node_cutinfo]. *)
  (match params.engine with
  | Cut.Packed ->
      let cs = Cut.compute_packed ~stats aig ~k ~limit:params.cut_limit in
      Par.run pool ~n (fun _ lo hi ->
          for nd = lo to hi - 1 do
            if Aig.is_and aig nd then begin
              let infos = ref [] in
              for j = Cut.num_cuts cs nd - 1 downto 0 do
                let m = Cut.cut_nleaves cs nd j in
                if not (m = 1 && Cut.cut_leaf cs nd j 0 = nd) then begin
                  let key, sup = Npn.shrink (Cut.cut_tt cs nd j) m in
                  let real_leaves = Array.map (Cut.cut_leaf cs nd j) sup in
                  infos :=
                    mk_info real_leaves (Cut.cut_leaves cs nd j)
                      (Array.length sup) key
                    :: !infos
                end
              done;
              node_cutinfo.(nd) <- !infos
            end
          done)
  | Cut.Reference ->
      let cuts = Cut.compute aig ~k ~limit:params.cut_limit in
      Par.run pool ~n (fun _ lo hi ->
          for nd = lo to hi - 1 do
            if Aig.is_and aig nd then begin
              let infos =
                List.filter_map
                  (fun cut ->
                    let leaves = cut.Cut.leaves in
                    if Array.length leaves = 1 && leaves.(0) = nd then None
                    else begin
                      let tt = Aig.tt_of_cut aig (Aig.lit_of_node nd) leaves in
                      let small, sup = Tt.shrink_to_support tt in
                      let s = Tt.nvars small in
                      if s > 6 then None
                      else
                        let real_leaves = Array.map (fun i -> leaves.(i)) sup in
                        let key = (Tt.words small).(0) in
                        Some (mk_info real_leaves leaves s key)
                    end)
                  cuts.(nd)
              in
              node_cutinfo.(nd) <- infos
            end
          done));
  (* arrival/flow of consuming (leaf ^ want_ph) where want_ph already
     accounts for the entry phase bit and the AIG edge complement *)
  let leaf_cost leaf want_ph =
    let s = slot leaf want_ph in
    (s.arrival, s.flow /. refs_f.(leaf))
  in
  (* Hot loop of every matching pass: results via the worker's
     [em_arr]/[em_fl] cells so evaluating an entry allocates nothing. *)
  let eval_match em_a em_f nd p leaves entry =
    let cell = entry.Cell_lib.cell in
    let arr = ref 0.0 and fl = ref (cell_cost cell) in
    let np = Array.length leaves in
    let phase = entry.Cell_lib.phase in
    for i = 0 to np - 1 do
      let leaf = leaves.(i) in
      let s = slot leaf ((phase lsr i) land 1) in
      if s.arrival > !arr then arr := s.arrival;
      fl := !fl +. (s.flow /. refs_f.(leaf))
    done;
    em_a := !arr +. cell_delay_at nd p cell;
    em_f := !fl
  in
  (* One matching pass.  [mode] selects the objective:
     `Delay: lexicographic (arrival, flow);
     `Area reqs: minimize flow subject to arrival <= reqs(ph). *)
  let match_node w mode nd =
    let em_a = em_arr.(w) and em_f = em_fl.(w) in
    for ph = 0 to nph - 1 do
      let s = slot nd ph in
      let mode =
        match mode with
        | `Delay -> `Delay
        | `Area reqs -> `Area (reqs ph)
      in
      let best_choice = ref Unmapped
      and best_arr = ref infinity_f
      and best_flow = ref infinity_f in
      let consider choice arr flow =
        let better =
          match mode with
          | `Delay ->
              arr < !best_arr -. 1e-9
              || (arr < !best_arr +. 1e-9 && flow < !best_flow -. 1e-9)
          | `Area req ->
              let feasible x = x <= req +. 1e-6 in
              if feasible arr && not (feasible !best_arr) then true
              else if feasible arr = feasible !best_arr then
                flow < !best_flow -. 1e-9
                || (flow < !best_flow +. 1e-9 && arr < !best_arr -. 1e-9)
              else false
        in
        if better then begin
          best_choice := choice;
          best_arr := arr;
          best_flow := flow
        end
      in
      List.iter
        (fun (leaves, orig_leaves, s_arity, key, ents_pos, ents_neg) ->
          let want_key = if ph = 0 then key else Int64.lognot key in
          if s_arity = 0 then begin
            (* constant function: should not happen in a strashed AIG *)
            ()
          end
          else if s_arity = 1 then begin
            (* wire or complement of a single leaf *)
            let neg_leaf = want_key = Npn.flip 0xAAAAAAAAAAAAAAAAL 0 in
            let pos_leaf = want_key = 0xAAAAAAAAAAAAAAAAL in
            if pos_leaf || neg_leaf then begin
              let lph = if neg_leaf then 1 else 0 in
              if free then begin
                let a, f = leaf_cost leaves.(0) 0 in
                consider (Wire (leaves.(0), neg_leaf)) a f
              end
              else begin
                let a, f = leaf_cost leaves.(0) lph in
                consider (Wire (leaves.(0), neg_leaf)) a f
              end
            end
          end
          else begin
            probe_ctr.(w) <- probe_ctr.(w) + 1;
            List.iter
              (fun entry ->
                eval_match em_a em_f nd (if free then 0 else ph) leaves entry;
                consider
                  (Match (entry, leaves, orig_leaves, want_key))
                  !em_a !em_f)
              (if ph = 0 then ents_pos else ents_neg)
          end)
        node_cutinfo.(nd);
      s.choice <- !best_choice;
      s.arrival <- !best_arr;
      s.flow <- !best_flow
    done;
    (* inverter bridging between phases *)
    if nph = 2 then begin
      let s0 = slot nd 0 and s1 = slot nd 1 in
      if s1.arrival +. inv_delay_at nd 0 < s0.arrival then begin
        s0.choice <- Bridge;
        s0.arrival <- s1.arrival +. inv_delay_at nd 0;
        s0.flow <- s1.flow +. inv_area
      end;
      if s0.arrival +. inv_delay_at nd 1 < s1.arrival then begin
        s1.choice <- Bridge;
        s1.arrival <- s0.arrival +. inv_delay_at nd 1;
        s1.flow <- s0.flow +. inv_area
      end
    end
  in
  (* delay-oriented pass *)
  for_ands_leveled (fun w nd -> match_node w `Delay nd);
  (* verify every node got mapped *)
  Aig.iter_ands aig (fun nd ->
      for ph = 0 to nph - 1 do
        if (slot nd ph).choice = Unmapped then
          failwith
            (Printf.sprintf "Mapper: node %d phase %d has no match" nd ph)
      done);
  let outputs = Aig.outputs aig in
  let output_slots () =
    Array.to_list outputs
    |> List.filter_map (fun (_, l) ->
           let nd = Aig.node_of l in
           if Aig.is_and aig nd then
             Some (nd, if Aig.is_compl l then 1 mod nph else 0)
           else None)
  in
  let global_arrival () =
    List.fold_left
      (fun acc (nd, ph) -> max acc (slot nd ph).arrival)
      0.0 (output_slots ())
  in
  (* required-time computation over the current cover *)
  let compute_required () =
    let req = Array.init n (fun _ -> Array.make nph infinity_f) in
    let t = global_arrival () in
    List.iter
      (fun (nd, ph) ->
        let p = if free then 0 else ph in
        if t < req.(nd).(p) then req.(nd).(p) <- t)
      (output_slots ());
    for nd = n - 1 downto 1 do
      if Aig.is_and aig nd then
        for p = 0 to nph - 1 do
          let r = req.(nd).(p) in
          if r < infinity_f then begin
            match (slot nd p).choice with
            | Unmapped -> ()
            | Wire (leaf, lph) ->
                let lp = if free || not lph then 0 else 1 in
                if r < req.(leaf).(lp) then req.(leaf).(lp) <- r
            | Bridge ->
                let other = 1 - p in
                let r' = r -. inv_delay_at nd p in
                if r' < req.(nd).(other) then req.(nd).(other) <- r'
            | Match (entry, leaves, _, _) ->
                let r' = r -. cell_delay_at nd p entry.Cell_lib.cell in
                Array.iteri
                  (fun i leaf ->
                    let want =
                      if free then 0
                      else (entry.Cell_lib.phase lsr i) land 1
                    in
                    if r' < req.(leaf).(want) then req.(leaf).(want) <- r')
                  leaves
          end
        done
    done;
    (req, t)
  in
  (* Walk the chosen cover from the outputs and accumulate the pin
     capacitance every consumer presents to each (node, phase) driver —
     the same accounting {!Mapped.output_loads} applies after extraction
     (reference output load per PO, cell pin caps per fanin, a Wire
     passes its accumulated load through to the aliased driver).
     Slots outside the cover keep the a-priori estimate. *)
  let measure_loads () =
    let loads = Array.init n (fun _ -> Array.make nph 0.0) in
    let used = Array.init n (fun _ -> Array.make nph false) in
    List.iter
      (fun (nd, ph) ->
        let p = if free then 0 else ph in
        used.(nd).(p) <- true;
        loads.(nd).(p) <- loads.(nd).(p) +. (4.0 *. cref))
      (output_slots ());
    for nd = n - 1 downto 1 do
      if Aig.is_and aig nd then begin
        (* a Bridge loads the same node's other phase: resolve it first so
           that phase's own propagation below sees the inverter's pin *)
        for p = 0 to nph - 1 do
          if used.(nd).(p) then
            match (slot nd p).choice with
            | Bridge ->
                let other = 1 - p in
                used.(nd).(other) <- true;
                loads.(nd).(other) <- loads.(nd).(other) +. inv_pin_cap
            | _ -> ()
        done;
        for p = 0 to nph - 1 do
          if used.(nd).(p) then
            match (slot nd p).choice with
            | Unmapped | Bridge -> ()
            | Wire (leaf, lph) ->
                let lp = if free || not lph then 0 else 1 in
                used.(leaf).(lp) <- true;
                loads.(leaf).(lp) <- loads.(leaf).(lp) +. loads.(nd).(p)
            | Match (entry, leaves, _, _) ->
                Array.iteri
                  (fun i leaf ->
                    let want =
                      if free then 0 else (entry.Cell_lib.phase lsr i) land 1
                    in
                    used.(leaf).(want) <- true;
                    let pc =
                      match entry.Cell_lib.cell.Cell_lib.timing with
                      | Some tm ->
                          tm.Charlib.pin_caps.(entry.Cell_lib.perm.(i))
                      | None -> avg_cin
                    in
                    loads.(leaf).(want) <- loads.(leaf).(want) +. pc)
                  leaves
        done
      end
    done;
    for nd = 0 to n - 1 do
      for p = 0 to nph - 1 do
        if not used.(nd).(p) then loads.(nd).(p) <- est_load nd
      done
    done;
    loads
  in
  (* Snapshot/restore the cover (timing mode keeps the best one seen:
     the load fixed-point iteration is not monotone). *)
  let snapshot () =
    Array.map
      (Array.map (fun s ->
           { choice = s.choice; arrival = s.arrival; flow = s.flow }))
      slots
  in
  let restore snap =
    Array.iteri
      (fun nd row ->
        Array.iteri
          (fun p (s : slot) ->
            let d = slots.(nd).(p) in
            d.choice <- s.choice;
            d.arrival <- s.arrival;
            d.flow <- s.flow)
          row)
      snap
  in
  (* True critical delay of the current cover: forward arrival using the
     loads the cover itself presents — what the post-extraction STA will
     report, as opposed to the (estimated-load) slot arrivals. *)
  let eval_cover () =
    let loads = measure_loads () in
    let arr = Array.init n (fun _ -> Array.make nph 0.0) in
    for nd = 1 to n - 1 do
      if Aig.is_input aig nd then begin
        if nph = 2 then
          arr.(nd).(1) <-
            (match inv with
            | Some c -> cell_delay_loaded c loads.(nd).(1)
            | None -> 0.0)
      end
      else if Aig.is_and aig nd then begin
        let eval p =
          match (slot nd p).choice with
          | Unmapped | Bridge -> 0.0
          | Wire (leaf, lph) -> arr.(leaf).(if free || not lph then 0 else 1)
          | Match (entry, leaves, _, _) ->
              let a = ref 0.0 in
              Array.iteri
                (fun i leaf ->
                  let want =
                    if free then 0 else (entry.Cell_lib.phase lsr i) land 1
                  in
                  if arr.(leaf).(want) > !a then a := arr.(leaf).(want))
                leaves;
              !a +. cell_delay_loaded entry.Cell_lib.cell loads.(nd).(p)
        in
        for p = 0 to nph - 1 do
          match (slot nd p).choice with Bridge -> () | _ -> arr.(nd).(p) <- eval p
        done;
        for p = 0 to nph - 1 do
          match (slot nd p).choice with
          | Bridge ->
              arr.(nd).(p) <-
                arr.(nd).(1 - p)
                +. (match inv with
                   | Some c -> cell_delay_loaded c loads.(nd).(p)
                   | None -> 0.0)
          | _ -> ()
        done
      end
    done;
    List.fold_left
      (fun acc (nd, ph) -> Float.max acc arr.(nd).(if free then 0 else ph))
      0.0 (output_slots ())
  in
  (* area-recovery passes with the legacy fixed-FO4 cost — in timing mode
     too, so refinement below starts from exactly the default-mode cover *)
  let area_pass () =
    let req, t = compute_required () in
    for_ands_leveled (fun w nd ->
        let reqs ph =
          let r = req.(nd).(if free then 0 else ph) in
          if r = infinity_f then t else r
        in
        match_node w (`Area reqs) nd)
  in
  for _ = 1 to params.area_passes do
    area_pass ()
  done;
  (* Timing mode: iterate toward a load fixed point — re-map against the
     loads the current cover actually presents — keeping the best cover by
     its true (measured-load) critical delay; the default cover seeds the
     comparison, so load-aware mapping never ends up slower than it.
     Then recover area under the load-aware cost, slack-guarded: a pass
     that slows the measured critical delay is rolled back and recovery
     stops. *)
  if timing_on then begin
    let best = ref (snapshot ()) and best_crit = ref (eval_cover ()) in
    use_loads := true;
    for _ = 1 to 2 do
      loads_cur := Some (measure_loads ());
      init_leaf_slots ();
      for_ands_leveled (fun w nd -> match_node w `Delay nd);
      let c = eval_cover () in
      if c < !best_crit -. 1e-9 then begin
        best_crit := c;
        best := snapshot ()
      end
    done;
    restore !best;
    loads_cur := Some (measure_loads ());
    init_leaf_slots ();
    let area_ok = ref true in
    for _ = 1 to params.area_passes do
      if !area_ok then begin
        let snap = snapshot () and crit0 = eval_cover () in
        area_pass ();
        if eval_cover () > crit0 +. 1e-9 then begin
          restore snap;
          area_ok := false
        end
        else begin
          loads_cur := Some (measure_loads ());
          init_leaf_slots ()
        end
      end
    done
  end;
  (* Probe totals are a sum of per-node counts, so merging the workers'
     counters reproduces the sequential tally exactly. *)
  stats.Cut.probes <- stats.Cut.probes + Array.fold_left ( + ) 0 probe_ctr;
  Par.shutdown pool;
  (* ---- extraction ---- *)
  let insts = ref [] in
  let ninsts = ref 0 in
  let memo = Hashtbl.create 1024 in
  let rec resolve nd ph : Mapped.net =
    if nd = 0 then { Mapped.driver = Mapped.Const (ph = 1); negated = false }
    else if Aig.is_input aig nd then begin
      if ph = 0 then { Mapped.driver = Mapped.Pi (nd - 1); negated = false }
      else if free then { Mapped.driver = Mapped.Pi (nd - 1); negated = true }
      else begin
        match Hashtbl.find_opt memo (nd, 1) with
        | Some net -> net
        | None ->
            let net =
              emit_inverter (Aig.lit_of_node nd)
                { Mapped.driver = Mapped.Pi (nd - 1); negated = false }
            in
            Hashtbl.add memo (nd, 1) net;
            net
      end
    end
    else begin
      let p = if free then 0 else ph in
      match Hashtbl.find_opt memo (nd, p) with
      | Some net ->
          if free && ph = 1 then { net with Mapped.negated = not net.Mapped.negated }
          else net
      | None ->
          let net =
            match (slot nd p).choice with
            | Unmapped -> assert false
            | Wire (leaf, lph) ->
                if free then begin
                  let base = resolve leaf 0 in
                  if lph then
                    { base with Mapped.negated = not base.Mapped.negated }
                  else base
                end
                else resolve leaf (if lph then 1 else 0)
            | Bridge ->
                emit_inverter
                  (Aig.lit_of_node nd ~compl:(1 - p = 1))
                  (resolve nd (1 - p))
            | Match (entry, leaves, orig_leaves, key) ->
                let fanins =
                  Array.mapi
                    (fun i leaf ->
                      let want = (entry.Cell_lib.phase lsr i) land 1 in
                      if free then begin
                        let base = resolve leaf 0 in
                        if want = 1 then
                          { base with Mapped.negated = not base.Mapped.negated }
                        else base
                      end
                      else resolve leaf want)
                    leaves
                in
                (* instance function over fanin values: fanin i carries
                   leaf_i ^ phase_i, so substitute back *)
                let tt = Npn.apply_phase key entry.Cell_lib.phase in
                let cover =
                  {
                    Mapped.root_lit = Aig.lit_of_node nd ~compl:(p = 1);
                    fanin_lits =
                      Array.mapi
                        (fun i leaf ->
                          let want = (entry.Cell_lib.phase lsr i) land 1 in
                          Aig.lit_of_node leaf ~compl:(want = 1))
                        leaves;
                    cut_nodes = orig_leaves;
                  }
                in
                let cell = entry.Cell_lib.cell in
                let idx = !ninsts in
                incr ninsts;
                insts :=
                  {
                    Mapped.cell_name = cell.Cell_lib.name;
                    area = cell.Cell_lib.area;
                    delay = cell.Cell_lib.delay;
                    drive =
                      (match cell.Cell_lib.timing with
                      | Some tm -> Some tm.Charlib.drive
                      | None -> None);
                    fanin_caps =
                      (* fanin [i] enters cell pin [perm.(i)] *)
                      (match cell.Cell_lib.timing with
                      | Some tm ->
                          Array.mapi
                            (fun i _ ->
                              tm.Charlib.pin_caps.(entry.Cell_lib.perm.(i)))
                            leaves
                      | None -> [||]);
                    fanins;
                    tt;
                    cover = Some cover;
                  }
                  :: !insts;
                { Mapped.driver = Mapped.Inst idx; negated = false }
          in
          Hashtbl.add memo (nd, p) net;
          if free && ph = 1 then { net with Mapped.negated = not net.Mapped.negated }
          else net
    end
  and emit_inverter in_lit input : Mapped.net =
    (* [in_lit] is the AIG literal whose value the [input] net carries;
       recorded in the cover so Map_lint can verify inverter chains too. *)
    match inv with
    | None ->
        (* free-phase library: complement is free *)
        { input with Mapped.negated = not input.Mapped.negated }
    | Some c ->
        let idx = !ninsts in
        incr ninsts;
        insts :=
          {
            Mapped.cell_name = c.Cell_lib.name;
            area = c.Cell_lib.area;
            delay = c.Cell_lib.delay;
            drive =
              (match c.Cell_lib.timing with
              | Some tm -> Some tm.Charlib.drive
              | None -> None);
            fanin_caps =
              (match c.Cell_lib.timing with
              | Some tm -> [| tm.Charlib.pin_caps.(0) |]
              | None -> [||]);
            fanins = [| input |];
            tt = Int64.lognot 0xAAAAAAAAAAAAAAAAL;
            cover =
              Some
                {
                  Mapped.root_lit = Aig.lnot in_lit;
                  fanin_lits = [| in_lit |];
                  cut_nodes = [| Aig.node_of in_lit |];
                };
          }
          :: !insts;
        { Mapped.driver = Mapped.Inst idx; negated = false }
  in
  let out_nets =
    Array.map
      (fun (name, l) ->
        let nd = Aig.node_of l in
        let c = Aig.is_compl l in
        let net =
          if free then begin
            let base = resolve nd 0 in
            if c then { base with Mapped.negated = not base.Mapped.negated }
            else base
          end
          else resolve nd (if c then 1 else 0)
        in
        (name, net))
      outputs
  in
  ( {
      Mapped.lib_name = Cell_lib.name lib;
      tau_ps = Cell_lib.tau_ps lib;
      num_inputs = Aig.num_inputs aig;
      input_names =
        Array.init (Aig.num_inputs aig) (fun i -> Aig.input_name aig i);
      instances = Array.of_list (List.rev !insts);
      outputs = out_nets;
    },
    stats )

let map ?params lib aig = fst (map_with_stats ?params lib aig)
