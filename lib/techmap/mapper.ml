type params = {
  cut_size : int;
  cut_limit : int;
  area_passes : int;
  timing : bool;
  engine : Cut.engine;
  cost : (Cell_lib.cell -> float) option;
  jobs : int;
  max_cuts : int option;
  incremental : bool;
}

let default_params =
  {
    cut_size = 6;
    cut_limit = 12;
    area_passes = 3;
    timing = false;
    engine = Cut.Packed;
    cost = None;
    jobs = 1;
    max_cuts = None;
    incremental = true;
  }

type phase_ms = {
  mutable pm_cuts_ms : float;
  mutable pm_match_ms : float;
  mutable pm_required_ms : float;
  mutable pm_recover_ms : float;
  mutable pm_extract_ms : float;
}

let phase_ms_create () =
  {
    pm_cuts_ms = 0.0;
    pm_match_ms = 0.0;
    pm_required_ms = 0.0;
    pm_recover_ms = 0.0;
    pm_extract_ms = 0.0;
  }

let infinity_f = infinity

(* Mapping choices are stored per (node, phase) slot as two plain ints
   (see the arena comment below): [ch1] is a small negative code for the
   structural choices, or a candidate index for a library match. *)
let code_unmapped = -1
let code_bridge = -2
let code_wire = -3

let tt_var0 = 0xAAAAAAAAAAAAAAAAL
let tt_nvar0 = Npn.flip tt_var0 0

let now () = Unix.gettimeofday ()

let map_with_stats ?(params = default_params) ?phase lib aig =
  let stats = Cut.stats_create () in
  let k = min 6 params.cut_size in
  let free = Cell_lib.free_phases lib in
  let nph = if free then 1 else 2 in
  (* phase mask: slot index of (node, ph) is [node * nph + (ph land phm)],
     so free-phase libraries alias both phases onto one slot *)
  let phm = nph - 1 in
  let inv = Cell_lib.inverter lib in
  (* Covering cost of a cell.  The flow/"area" currency of the matcher is
     pluggable (ROADMAP: cost-generic mapping): [params.cost] replaces raw
     cell area in every flow computation — matching, bridging and the
     recovery passes — while arrival time stays lexicographically primary
     and the reported netlist area is always the real cell area. *)
  let cell_cost (c : Cell_lib.cell) =
    match params.cost with Some f -> f c | None -> c.Cell_lib.area
  in
  let inv_area =
    match inv with Some c -> cell_cost c | None -> infinity_f
  in
  if (not free) && inv = None then
    invalid_arg "Mapper.map: non-free-phase library without an inverter";
  let n = Aig.num_nodes aig in
  let refs = Aig.fanout_counts aig in
  let refs_f = Array.map (fun r -> float_of_int (max 1 r)) refs in
  (* Load-aware cost (timing mode): a cell rooted at [nd] will drive
     roughly one average library pin per internal AIG fanout, plus the
     reference output load (the model's [po_fanout] inverters) per primary
     output — a pre-cover estimate of the final netlist load, refined
     nowhere (the cover isn't known during matching).  Classic mode charges
     the fixed unit-load FO4. *)
  let timing_on = params.timing in
  let avg_cin =
    match Cell_lib.avg_pin_cap lib with Some c -> c | None -> 1.0
  in
  let cref =
    (* the family's reference inverter input capacitance *)
    List.fold_left
      (fun acc (c : Cell_lib.cell) ->
        match (acc, c.Cell_lib.timing) with
        | Some _, _ -> acc
        | None, Some tm -> Some tm.Charlib.drive.Charlib.cin_ref
        | None, None -> None)
      None (Cell_lib.cells lib)
    |> Option.value ~default:2.0
  in
  let po_f = Array.make n 0.0 in
  Array.iter
    (fun (_, l) ->
      let nd = Aig.node_of l in
      po_f.(nd) <- po_f.(nd) +. 1.0)
    (Aig.outputs aig);
  let est_load nd =
    let po = po_f.(nd) in
    (Float.max 0.0 (refs_f.(nd) -. po) *. avg_cin) +. (po *. 4.0 *. cref)
  in
  (* Once a full cover exists, [measure_loads] replaces the a-priori
     estimate with the loads the chosen cover actually presents; until
     then the estimate stands. *)
  let loads_cur = ref None in
  let node_load nd p =
    match !loads_cur with Some a -> a.(nd).(p) | None -> est_load nd
  in
  let cell_delay_loaded (c : Cell_lib.cell) load =
    match c.Cell_lib.timing with
    | Some tm -> Charlib.drive_delay tm.Charlib.drive ~load
    | None -> c.Cell_lib.delay
  in
  (* The first delay pass always runs with the legacy fixed-FO4 cost, so
     timing mode starts from exactly the cover the default mode produces;
     load-aware refinement switches this on afterwards. *)
  let use_loads = ref false in
  let cell_delay_at nd p c =
    if timing_on && !use_loads then cell_delay_loaded c (node_load nd p)
    else c.Cell_lib.delay
  in
  let inv_delay_at nd p =
    match inv with Some c -> cell_delay_at nd p c | None -> infinity_f
  in
  let inv_pin_cap =
    match inv with
    | Some { Cell_lib.timing = Some tm; _ } -> tm.Charlib.pin_caps.(0)
    | _ -> avg_cin
  in
  (* ---- slots, struct-of-arrays ----
     (arrival, flow, choice) per (node, phase), flattened into plain
     float/int arrays.  The seed kept a record per slot; records mixing
     float and non-float fields box every float, so each matching pass
     allocated and chased a boxed float per read/write.  Flat float
     arrays store unboxed and index arithmetic replaces two pointer
     hops. *)
  let nslots = n * nph in
  let arrival = Array.make nslots infinity_f in
  let flow = Array.make nslots infinity_f in
  let ch1 = Array.make nslots code_unmapped in
  let ch2 = Array.make nslots 0 in
  (* primary inputs and the constant node (re-run when loads change) *)
  let init_leaf_slots () =
    for i = 0 to Aig.num_inputs aig do
      (* node 0 is the constant; inputs are 1..num_inputs *)
      let b = i * nph in
      ch1.(b) <- code_wire;
      ch2.(b) <- i lsl 1;
      arrival.(b) <- 0.0;
      flow.(b) <- 0.0;
      if nph = 2 then
        if i = 0 then begin
          (* complemented constant is still a constant *)
          ch1.(b + 1) <- code_wire;
          ch2.(b + 1) <- 1;
          arrival.(b + 1) <- 0.0;
          flow.(b + 1) <- 0.0
        end
        else begin
          ch1.(b + 1) <- code_bridge;
          arrival.(b + 1) <- inv_delay_at i 1;
          flow.(b + 1) <- inv_area
        end
    done
  in
  init_leaf_slots ();
  (* ---- within-circuit parallelism ----
     One pool serves cut-info precomputation (independent per node) and
     the level-synchronized matching passes.  Worker-visible writes are
     limited to disjoint per-node slots plus per-worker scratch, so the
     chosen cover is byte-identical for every pool width.  On the
     exception paths the pool leaks its parked workers; that is benign
     (the runtime exits with parked domains) and keeps the passes
     uncluttered. *)
  let pool = Par.create ~jobs:(max 1 params.jobs) in
  let pw = Par.width pool in
  let probe_ctr = Array.make pw 0 in
  let reeval_ctr = Array.make pw 0 in
  let skip_ctr = Array.make pw 0 in
  (* Per-worker float/int scratch, so the hot loops allocate nothing:
     fa.(0,1) best (arrival, flow); fa.(2,3) candidate (arrival, flow);
     fa.(4..7) the node's slot values before re-evaluation (change
     detection); fi.(0,1) best (ch1, ch2). *)
  let wa = Array.init pw (fun _ -> Array.make 8 0.0) in
  let wi = Array.init pw (fun _ -> Array.make 2 0) in
  (* Nodes bucketed by logic level: every leaf of a cut of [nd] lies in
     [nd]'s strict fan-in, hence strictly below [nd]'s level, so the
     nodes of one level match independently once lower levels are
     final — the matching passes sweep level by level, computing exactly
     the sequential pass's values. *)
  let level = Array.make n 0 in
  let nlevels = ref 1 in
  Aig.iter_ands aig (fun nd ->
      let l0 = level.(Aig.node_of (Aig.fanin0 aig nd))
      and l1 = level.(Aig.node_of (Aig.fanin1 aig nd)) in
      let l = 1 + if l0 > l1 then l0 else l1 in
      level.(nd) <- l;
      if l >= !nlevels then nlevels := l + 1);
  let lcount = Array.make !nlevels 0 in
  Aig.iter_ands aig (fun nd -> lcount.(level.(nd)) <- lcount.(level.(nd)) + 1);
  let levels = Array.map (fun c -> Array.make c 0) lcount in
  let lfill = Array.make !nlevels 0 in
  Aig.iter_ands aig (fun nd ->
      let l = level.(nd) in
      levels.(l).(lfill.(l)) <- nd;
      lfill.(l) <- lfill.(l) + 1);
  (* ---- wavefront schedule ----
     The seed dispatched one pool hand-off per level — O(depth)
     mutex/condvar round-trips per matching pass.  Here each pass is a
     single {!Par.run_phases} dispatch over a precomputed schedule: a
     level with at least [par_grain] nodes is a chunked parallel phase
     (the same threshold below which {!Par.run} would have run it inline
     anyway), and every maximal run of consecutive smaller levels is
     merged into one sequential phase executed in topological order by
     worker 0.  Barriers separate phases, so deep circuits with thin
     levels cross O(depth / merged-run length) barriers instead of
     O(depth) hand-offs, and the barriers themselves are lock-free. *)
  let par_grain = max 32 (2 * pw) in
  let ph_nodes, ph_par =
    let phases = ref [] and pending = ref [] in
    let flush () =
      if !pending <> [] then begin
        phases := (Array.concat (List.rev !pending), false) :: !phases;
        pending := []
      end
    in
    Array.iter
      (fun lvl ->
        let c = Array.length lvl in
        if c = 0 then ()
        else if c >= par_grain then begin
          flush ();
          phases := (lvl, true) :: !phases
        end
        else pending := lvl :: !pending)
      levels;
    flush ();
    let a = Array.of_list (List.rev !phases) in
    (Array.map fst a, Array.map snd a)
  in
  let ph_counts = Array.map Array.length ph_nodes in
  let sweep f =
    Par.run_phases pool ~counts:ph_counts ~parallel:ph_par (fun w p lo hi ->
        let nodes = ph_nodes.(p) in
        for i = lo to hi - 1 do
          f w nodes.(i)
        done)
  in
  (* ---- candidate match arena ----
     Per AND node, the usable (cut, key) candidates: cut function shrunk
     to its support, plus the library match lists for both output
     phases, resolved once — every matching pass (1 delay + area_passes
     + the timing refinement) used to repeat the same [Cell_lib.matches]
     lookups per node.  The seed stored one heap tuple + two leaf arrays
     + two entry lists per candidate; at 10^6 nodes that is tens of
     millions of long-lived blocks the GC re-traces on every major
     cycle.  The arena packs the same data into flat parallel arrays:

       cand_off  : per node, candidate range [cand_off.(nd),
                   cand_off.(nd+1)) in canonical (ascending cut) order
       cand_arity: support size s (0..6), one byte each
       cand_key  : support-shrunk function, int64 bigarray (unboxed)
       cand_slo  : offset of the s support leaves in leaf_buf
       cand_olo/olen : offset/length of the original structural cut
                   leaves in leaf_buf (shared with the support run when
                   no shrink occurred — s = olen implies identity)
       cand_gid  : entry-group id (s >= 2 only)

     Distinct candidates overwhelmingly share the same (arity, key) —
     a library has thousands of distinct match keys, a million-node
     graph tens of millions of candidates — so the match-entry lists are
     deduplicated into groups: group g's positive/negative entries are
     the ranges [gpos_off.(g), +gpos_len.(g)) / [gneg_off.(g),
     +gneg_len.(g)) of the flat entry arrays, with the per-entry phase,
     fixed delay and covering cost mirrored into scalar arrays so the
     hot loop touches no heap records.

     dleaf_off/dleaf_buf hold each node's deduplicated union of
     candidate support leaves — the exact read set of a re-evaluation,
     used by the incremental pass-skipping dirty check. *)
  let climit = params.cut_limit in
  let t0 = now () in
  (* Engine-generic candidate iterator, canonical order; [kf m s key sup
     leaf_at]: m structural leaves ([leaf_at i]), support [sup] into
     them, function [key] over the support. *)
  let iter_cands =
    match params.engine with
    | Cut.Packed ->
        let cs =
          Cut.compute_packed ~stats ?max_cuts:params.max_cuts aig ~k
            ~limit:climit
        in
        fun nd kf ->
          for j = 0 to Cut.num_cuts cs nd - 1 do
            let m = Cut.cut_nleaves cs nd j in
            if not (m = 1 && Cut.cut_leaf cs nd j 0 = nd) then begin
              let key, sup = Npn.shrink (Cut.cut_tt cs nd j) m in
              kf m (Array.length sup) key sup (Cut.cut_leaf cs nd j)
            end
          done
    | Cut.Reference ->
        let cuts = Cut.compute aig ~k ~limit:climit in
        fun nd kf ->
          List.iter
            (fun cut ->
              let leaves = cut.Cut.leaves in
              let m = Array.length leaves in
              if not (m = 1 && leaves.(0) = nd) then begin
                let tt = Aig.tt_of_cut aig (Aig.lit_of_node nd) leaves in
                let small, sup = Tt.shrink_to_support tt in
                let s = Tt.nvars small in
                if s <= 6 then
                  kf m s (Tt.words small).(0) sup (fun i -> leaves.(i))
              end)
            cuts.(nd)
  in
  (* Pass A (parallel): count candidates, leaf words and deduped support
     union per node; pass B (parallel) re-enumerates and fills the
     disjoint per-node ranges.  Counting twice avoids materializing the
     seed's transient per-node lists next to the arena. *)
  let c_cnt = Array.make n 0 in
  let l_cnt = Array.make n 0 in
  let d_cnt = Array.make n 0 in
  let uscratch = Array.init pw (fun _ -> Array.make ((6 * climit) + 8) 0) in
  Par.run pool ~n (fun w lo hi ->
      let us = uscratch.(w) in
      for nd = lo to hi - 1 do
        if Aig.is_and aig nd then begin
          let nc = ref 0 and nl = ref 0 and nu = ref 0 in
          iter_cands nd (fun m s _key sup leaf_at ->
              incr nc;
              nl := !nl + m + (if s < m then s else 0);
              for i = 0 to s - 1 do
                let lf = leaf_at sup.(i) in
                let j = ref 0 in
                while !j < !nu && us.(!j) <> lf do
                  incr j
                done;
                if !j = !nu then begin
                  us.(!nu) <- lf;
                  incr nu
                end
              done);
          c_cnt.(nd) <- !nc;
          l_cnt.(nd) <- !nl;
          d_cnt.(nd) <- !nu
        end
      done);
  let cand_off = Array.make (n + 1) 0 in
  let l_off = Array.make (n + 1) 0 in
  let dleaf_off = Array.make (n + 1) 0 in
  for nd = 0 to n - 1 do
    cand_off.(nd + 1) <- cand_off.(nd) + c_cnt.(nd);
    l_off.(nd + 1) <- l_off.(nd) + l_cnt.(nd);
    dleaf_off.(nd + 1) <- dleaf_off.(nd) + d_cnt.(nd)
  done;
  let ncand = cand_off.(n) in
  let cand_arity = Bytes.make (max 1 ncand) '\000' in
  let cand_key =
    Bigarray.Array1.create Bigarray.int64 Bigarray.c_layout (max 1 ncand)
  in
  let cand_gid = Array.make (max 1 ncand) (-1) in
  let cand_slo = Array.make (max 1 ncand) 0 in
  let cand_olo = Array.make (max 1 ncand) 0 in
  let cand_olen = Array.make (max 1 ncand) 0 in
  let leaf_buf = Array.make (max 1 l_off.(n)) 0 in
  let dleaf_buf = Array.make (max 1 dleaf_off.(n)) 0 in
  Par.run pool ~n (fun w lo hi ->
      let us = uscratch.(w) in
      for nd = lo to hi - 1 do
        if Aig.is_and aig nd then begin
          let c = ref cand_off.(nd) and lp = ref l_off.(nd) and nu = ref 0 in
          iter_cands nd (fun m s key sup leaf_at ->
              let ci = !c in
              incr c;
              Bytes.set cand_arity ci (Char.chr s);
              Bigarray.Array1.set cand_key ci key;
              cand_olo.(ci) <- !lp;
              cand_olen.(ci) <- m;
              for i = 0 to m - 1 do
                leaf_buf.(!lp + i) <- leaf_at i
              done;
              if s = m then cand_slo.(ci) <- !lp
              else begin
                cand_slo.(ci) <- !lp + m;
                for i = 0 to s - 1 do
                  leaf_buf.(!lp + m + i) <- leaf_at sup.(i)
                done
              end;
              lp := !lp + m + (if s < m then s else 0);
              for i = 0 to s - 1 do
                let lf = leaf_at sup.(i) in
                let j = ref 0 in
                while !j < !nu && us.(!j) <> lf do
                  incr j
                done;
                if !j = !nu then begin
                  us.(!nu) <- lf;
                  incr nu
                end
              done);
          for i = 0 to !nu - 1 do
            dleaf_buf.(dleaf_off.(nd) + i) <- us.(i)
          done
        end
      done);
  (* Pass C (sequential): assign entry groups and resolve the library
     match lists, once per distinct (arity, key). *)
  let gtbl : (int * int64, int) Hashtbl.t = Hashtbl.create 4096 in
  let groups = ref [] and ngroups = ref 0 in
  for c = 0 to ncand - 1 do
    let s = Bytes.get_uint8 cand_arity c in
    if s >= 2 then begin
      let key = Bigarray.Array1.get cand_key c in
      match Hashtbl.find_opt gtbl (s, key) with
      | Some g -> cand_gid.(c) <- g
      | None ->
          let g = !ngroups in
          incr ngroups;
          Hashtbl.add gtbl (s, key) g;
          let ep = Cell_lib.matches lib s key in
          let en =
            (* free-phase libraries map a single phase; the negative
               lists would never be read *)
            if free then [] else Cell_lib.matches lib s (Int64.lognot key)
          in
          groups := (ep, en) :: !groups;
          cand_gid.(c) <- g
    end
  done;
  let garr = Array.of_list (List.rev !groups) in
  let ng = Array.length garr in
  let gpos_off = Array.make (max 1 ng) 0 in
  let gpos_len = Array.make (max 1 ng) 0 in
  let gneg_off = Array.make (max 1 ng) 0 in
  let gneg_len = Array.make (max 1 ng) 0 in
  let ents_rev = ref [] and epos = ref 0 in
  Array.iteri
    (fun g (ep, en) ->
      gpos_off.(g) <- !epos;
      List.iter
        (fun e ->
          ents_rev := e :: !ents_rev;
          incr epos)
        ep;
      gpos_len.(g) <- !epos - gpos_off.(g);
      gneg_off.(g) <- !epos;
      List.iter
        (fun e ->
          ents_rev := e :: !ents_rev;
          incr epos)
        en;
      gneg_len.(g) <- !epos - gneg_off.(g))
    garr;
  let ent = Array.of_list (List.rev !ents_rev) in
  let ent_phase = Array.map (fun e -> e.Cell_lib.phase) ent in
  let ent_delay =
    Array.map (fun e -> e.Cell_lib.cell.Cell_lib.delay) ent
  in
  let ent_cost = Array.map (fun e -> cell_cost e.Cell_lib.cell) ent in
  let t_cuts = now () -. t0 in
  (* ---- incremental pass re-evaluation ----
     A matching pass recomputes each slot from its candidate leaves'
     current (arrival, flow) plus, in area mode, the node's effective
     required time.  If none of those inputs changed since the previous
     pass, recomputation is the identity, so the node is skipped — an
     exact criterion, hence bit-identical covers (asserted by the
     differential test).  [changed] marks nodes whose slot values
     actually changed in the current sweep; leaves are processed before
     consumers, so dirtiness propagates transitively within one sweep.
     [req_seen] holds last area pass's effective required times
     (neg_infinity sentinel: the first area pass is fully dirty).
     Delay-objective sweeps always evaluate (they follow an objective or
     load change), and timing mode disables skipping entirely: its load
     fixed-point rewrites the cost model between sweeps. *)
  let force_full = (not params.incremental) || timing_on in
  let changed = Bytes.make n '\000' in
  let req_seen = Array.make nslots neg_infinity in
  let rec req_changed ra t base p =
    if p >= nph then false
    else
      let r = ra.(base + p) in
      let e = if r = infinity_f then t else r in
      e <> req_seen.(base + p) || req_changed ra t base (p + 1)
  in
  let rec leaves_changed i hi =
    if i >= hi then false
    else
      Bytes.get changed dleaf_buf.(i) <> '\000' || leaves_changed (i + 1) hi
  in
  (* Candidate-vs-best comparison; epsilons as in the seed.  `Delay:
     lexicographic (arrival, flow); `Area: minimize flow subject to
     arrival <= req. *)
  let consider fa fi area req c1 c2 arr fl =
    let better =
      if not area then
        arr < fa.(0) -. 1e-9 || (arr < fa.(0) +. 1e-9 && fl < fa.(1) -. 1e-9)
      else begin
        let fx = arr <= req +. 1e-6 and fb = fa.(0) <= req +. 1e-6 in
        if fx && not fb then true
        else if fx = fb then
          fl < fa.(1) -. 1e-9 || (fl < fa.(1) +. 1e-9 && arr < fa.(0) -. 1e-9)
        else false
      end
    in
    if better then begin
      fa.(0) <- arr;
      fa.(1) <- fl;
      fi.(0) <- c1;
      fi.(1) <- c2
    end
  in
  (* One matching evaluation of a node: both phases plus inverter
     bridging.  [reqm] is [None] for a delay-objective sweep or
     [Some (required-times, t)] for area recovery. *)
  let process w reqm nd =
    let base = nd * nph in
    let must =
      force_full
      ||
      match reqm with
      | None -> true
      | Some (ra, t) ->
          req_changed ra t base 0
          || leaves_changed dleaf_off.(nd) dleaf_off.(nd + 1)
    in
    if not must then skip_ctr.(w) <- skip_ctr.(w) + 1
    else begin
      reeval_ctr.(w) <- reeval_ctr.(w) + 1;
      let fa = wa.(w) and fi = wi.(w) in
      fa.(4) <- arrival.(base);
      fa.(5) <- flow.(base);
      if nph = 2 then begin
        fa.(6) <- arrival.(base + 1);
        fa.(7) <- flow.(base + 1)
      end;
      for ph = 0 to nph - 1 do
        let area, rq =
          match reqm with
          | None -> (false, 0.0)
          | Some (ra, t) ->
              let r = ra.(base + ph) in
              let e = if r = infinity_f then t else r in
              req_seen.(base + ph) <- e;
              (true, e)
        in
        fa.(0) <- infinity_f;
        fa.(1) <- infinity_f;
        fi.(0) <- code_unmapped;
        fi.(1) <- 0;
        for c = cand_off.(nd) to cand_off.(nd + 1) - 1 do
          let s = Bytes.get_uint8 cand_arity c in
          if s = 1 then begin
            (* wire or complement of a single leaf *)
            let key = Bigarray.Array1.get cand_key c in
            let want_key = if ph = 0 then key else Int64.lognot key in
            let neg_leaf = want_key = tt_nvar0 in
            if want_key = tt_var0 || neg_leaf then begin
              let leaf = leaf_buf.(cand_slo.(c)) in
              let lph = if neg_leaf then 1 else 0 in
              let sx = (leaf * nph) + (lph land phm) in
              consider fa fi area rq code_wire
                ((leaf lsl 1) lor lph)
                arrival.(sx)
                (flow.(sx) /. refs_f.(leaf))
            end
          end
          else if s >= 2 then begin
            probe_ctr.(w) <- probe_ctr.(w) + 1;
            let g = cand_gid.(c) in
            let off = if ph = 0 then gpos_off.(g) else gneg_off.(g) in
            let len = if ph = 0 then gpos_len.(g) else gneg_len.(g) in
            let slo = cand_slo.(c) in
            for ei = off to off + len - 1 do
              (* hot loop of every matching pass: flat loads/stores
                 only, no allocation *)
              let ephase = ent_phase.(ei) in
              fa.(2) <- 0.0;
              fa.(3) <- ent_cost.(ei);
              for i = 0 to s - 1 do
                let leaf = leaf_buf.(slo + i) in
                let sx = (leaf * nph) + ((ephase lsr i) land phm) in
                let a = arrival.(sx) in
                if a > fa.(2) then fa.(2) <- a;
                fa.(3) <- fa.(3) +. (flow.(sx) /. refs_f.(leaf))
              done;
              let d =
                if timing_on && !use_loads then
                  cell_delay_loaded ent.(ei).Cell_lib.cell (node_load nd ph)
                else ent_delay.(ei)
              in
              consider fa fi area rq c ei (fa.(2) +. d) fa.(3)
            done
          end
        done;
        let six = base + ph in
        ch1.(six) <- fi.(0);
        ch2.(six) <- fi.(1);
        arrival.(six) <- fa.(0);
        flow.(six) <- fa.(1)
      done;
      (* inverter bridging between phases *)
      if nph = 2 then begin
        let i0 = base and i1 = base + 1 in
        if arrival.(i1) +. inv_delay_at nd 0 < arrival.(i0) then begin
          ch1.(i0) <- code_bridge;
          arrival.(i0) <- arrival.(i1) +. inv_delay_at nd 0;
          flow.(i0) <- flow.(i1) +. inv_area
        end;
        if arrival.(i0) +. inv_delay_at nd 1 < arrival.(i1) then begin
          ch1.(i1) <- code_bridge;
          arrival.(i1) <- arrival.(i0) +. inv_delay_at nd 1;
          flow.(i1) <- flow.(i0) +. inv_area
        end
      end;
      if
        arrival.(base) <> fa.(4)
        || flow.(base) <> fa.(5)
        || (nph = 2
           && (arrival.(base + 1) <> fa.(6) || flow.(base + 1) <> fa.(7)))
      then Bytes.set changed nd '\001'
    end
  in
  let delay_sweep () =
    Bytes.fill changed 0 n '\000';
    sweep (fun w nd -> process w None nd)
  in
  let area_sweep reqm =
    Bytes.fill changed 0 n '\000';
    let rm = Some reqm in
    sweep (fun w nd -> process w rm nd)
  in
  (* phase timing (wall clock; [Sys.time] is CPU time and lies at
     jobs > 1) *)
  let t_match = ref 0.0
  and t_required = ref 0.0
  and t_recover = ref 0.0 in
  (* delay-oriented pass *)
  let t1 = now () in
  delay_sweep ();
  t_match := !t_match +. (now () -. t1);
  (* verify every node got mapped *)
  Aig.iter_ands aig (fun nd ->
      for ph = 0 to nph - 1 do
        if ch1.((nd * nph) + ph) = code_unmapped then
          failwith
            (Printf.sprintf "Mapper: node %d phase %d has no match" nd ph)
      done);
  let outputs = Aig.outputs aig in
  let output_slots () =
    Array.to_list outputs
    |> List.filter_map (fun (_, l) ->
           let nd = Aig.node_of l in
           if Aig.is_and aig nd then
             Some (nd, if Aig.is_compl l then 1 mod nph else 0)
           else None)
  in
  let global_arrival () =
    List.fold_left
      (fun acc (nd, ph) -> max acc arrival.((nd * nph) + ph))
      0.0 (output_slots ())
  in
  (* required-time computation over the current cover *)
  let compute_required () =
    let req = Array.make nslots infinity_f in
    let t = global_arrival () in
    List.iter
      (fun (nd, ph) ->
        let ix = (nd * nph) + ph in
        if t < req.(ix) then req.(ix) <- t)
      (output_slots ());
    for nd = n - 1 downto 1 do
      if Aig.is_and aig nd then
        for p = 0 to nph - 1 do
          let ix = (nd * nph) + p in
          let r = req.(ix) in
          if r < infinity_f then begin
            let c1 = ch1.(ix) in
            if c1 = code_wire then begin
              let v = ch2.(ix) in
              let leaf = v lsr 1 in
              let lp = if free || v land 1 = 0 then 0 else 1 in
              let lix = (leaf * nph) + lp in
              if r < req.(lix) then req.(lix) <- r
            end
            else if c1 = code_bridge then begin
              let r' = r -. inv_delay_at nd p in
              let oix = (nd * nph) + (1 - p) in
              if r' < req.(oix) then req.(oix) <- r'
            end
            else if c1 >= 0 then begin
              let ei = ch2.(ix) in
              let r' = r -. cell_delay_at nd p ent.(ei).Cell_lib.cell in
              let s = Bytes.get_uint8 cand_arity c1 in
              let slo = cand_slo.(c1) and ephase = ent_phase.(ei) in
              for i = 0 to s - 1 do
                let leaf = leaf_buf.(slo + i) in
                let want = if free then 0 else (ephase lsr i) land 1 in
                let lix = (leaf * nph) + want in
                if r' < req.(lix) then req.(lix) <- r'
              done
            end
          end
        done
    done;
    (req, t)
  in
  (* Walk the chosen cover from the outputs and accumulate the pin
     capacitance every consumer presents to each (node, phase) driver —
     the same accounting {!Mapped.output_loads} applies after extraction
     (reference output load per PO, cell pin caps per fanin, a Wire
     passes its accumulated load through to the aliased driver).
     Slots outside the cover keep the a-priori estimate. *)
  let measure_loads () =
    let loads = Array.init n (fun _ -> Array.make nph 0.0) in
    let used = Array.init n (fun _ -> Array.make nph false) in
    List.iter
      (fun (nd, ph) ->
        used.(nd).(ph) <- true;
        loads.(nd).(ph) <- loads.(nd).(ph) +. (4.0 *. cref))
      (output_slots ());
    for nd = n - 1 downto 1 do
      if Aig.is_and aig nd then begin
        (* a Bridge loads the same node's other phase: resolve it first so
           that phase's own propagation below sees the inverter's pin *)
        for p = 0 to nph - 1 do
          if used.(nd).(p) && ch1.((nd * nph) + p) = code_bridge then begin
            let other = 1 - p in
            used.(nd).(other) <- true;
            loads.(nd).(other) <- loads.(nd).(other) +. inv_pin_cap
          end
        done;
        for p = 0 to nph - 1 do
          if used.(nd).(p) then begin
            let ix = (nd * nph) + p in
            let c1 = ch1.(ix) in
            if c1 = code_wire then begin
              let v = ch2.(ix) in
              let leaf = v lsr 1 in
              let lp = if free || v land 1 = 0 then 0 else 1 in
              used.(leaf).(lp) <- true;
              loads.(leaf).(lp) <- loads.(leaf).(lp) +. loads.(nd).(p)
            end
            else if c1 >= 0 then begin
              let ei = ch2.(ix) in
              let entry = ent.(ei) in
              let s = Bytes.get_uint8 cand_arity c1 in
              let slo = cand_slo.(c1) in
              for i = 0 to s - 1 do
                let leaf = leaf_buf.(slo + i) in
                let want =
                  if free then 0 else (entry.Cell_lib.phase lsr i) land 1
                in
                used.(leaf).(want) <- true;
                let pc =
                  match entry.Cell_lib.cell.Cell_lib.timing with
                  | Some tm -> tm.Charlib.pin_caps.(entry.Cell_lib.perm.(i))
                  | None -> avg_cin
                in
                loads.(leaf).(want) <- loads.(leaf).(want) +. pc
              done
            end
          end
        done
      end
    done;
    for nd = 0 to n - 1 do
      for p = 0 to nph - 1 do
        if not used.(nd).(p) then loads.(nd).(p) <- est_load nd
      done
    done;
    loads
  in
  (* Snapshot/restore the cover (timing mode keeps the best one seen:
     the load fixed-point iteration is not monotone). *)
  let snapshot () =
    (Array.copy arrival, Array.copy flow, Array.copy ch1, Array.copy ch2)
  in
  let restore (a, f, c1, c2) =
    Array.blit a 0 arrival 0 nslots;
    Array.blit f 0 flow 0 nslots;
    Array.blit c1 0 ch1 0 nslots;
    Array.blit c2 0 ch2 0 nslots
  in
  (* True critical delay of the current cover: forward arrival using the
     loads the cover itself presents — what the post-extraction STA will
     report, as opposed to the (estimated-load) slot arrivals. *)
  let eval_cover () =
    let loads = measure_loads () in
    let arr = Array.init n (fun _ -> Array.make nph 0.0) in
    for nd = 1 to n - 1 do
      if Aig.is_input aig nd then begin
        if nph = 2 then
          arr.(nd).(1) <-
            (match inv with
            | Some c -> cell_delay_loaded c loads.(nd).(1)
            | None -> 0.0)
      end
      else if Aig.is_and aig nd then begin
        let eval p =
          let ix = (nd * nph) + p in
          let c1 = ch1.(ix) in
          if c1 = code_unmapped || c1 = code_bridge then 0.0
          else if c1 = code_wire then begin
            let v = ch2.(ix) in
            let leaf = v lsr 1 in
            arr.(leaf).(if free || v land 1 = 0 then 0 else 1)
          end
          else begin
            let ei = ch2.(ix) in
            let entry = ent.(ei) in
            let s = Bytes.get_uint8 cand_arity c1 in
            let slo = cand_slo.(c1) in
            let a = ref 0.0 in
            for i = 0 to s - 1 do
              let leaf = leaf_buf.(slo + i) in
              let want =
                if free then 0 else (entry.Cell_lib.phase lsr i) land 1
              in
              if arr.(leaf).(want) > !a then a := arr.(leaf).(want)
            done;
            !a +. cell_delay_loaded entry.Cell_lib.cell loads.(nd).(p)
          end
        in
        for p = 0 to nph - 1 do
          if ch1.((nd * nph) + p) <> code_bridge then arr.(nd).(p) <- eval p
        done;
        for p = 0 to nph - 1 do
          if ch1.((nd * nph) + p) = code_bridge then
            arr.(nd).(p) <-
              arr.(nd).(1 - p)
              +. (match inv with
                 | Some c -> cell_delay_loaded c loads.(nd).(p)
                 | None -> 0.0)
        done
      end
    done;
    List.fold_left
      (fun acc (nd, ph) -> Float.max acc arr.(nd).(ph))
      0.0 (output_slots ())
  in
  (* area-recovery passes with the legacy fixed-FO4 cost — in timing mode
     too, so refinement below starts from exactly the default-mode cover *)
  let area_pass () =
    let tr = now () in
    let reqm = compute_required () in
    t_required := !t_required +. (now () -. tr);
    let ta = now () in
    area_sweep reqm;
    t_recover := !t_recover +. (now () -. ta)
  in
  for _ = 1 to params.area_passes do
    area_pass ()
  done;
  (* Timing mode: iterate toward a load fixed point — re-map against the
     loads the current cover actually presents — keeping the best cover by
     its true (measured-load) critical delay; the default cover seeds the
     comparison, so load-aware mapping never ends up slower than it.
     Then recover area under the load-aware cost, slack-guarded: a pass
     that slows the measured critical delay is rolled back and recovery
     stops. *)
  if timing_on then begin
    let tr0 = now () in
    let best = ref (snapshot ()) and best_crit = ref (eval_cover ()) in
    t_required := !t_required +. (now () -. tr0);
    use_loads := true;
    for _ = 1 to 2 do
      let tr = now () in
      loads_cur := Some (measure_loads ());
      init_leaf_slots ();
      t_required := !t_required +. (now () -. tr);
      let tm = now () in
      delay_sweep ();
      t_match := !t_match +. (now () -. tm);
      let tr2 = now () in
      let c = eval_cover () in
      if c < !best_crit -. 1e-9 then begin
        best_crit := c;
        best := snapshot ()
      end;
      t_required := !t_required +. (now () -. tr2)
    done;
    restore !best;
    loads_cur := Some (measure_loads ());
    init_leaf_slots ();
    let area_ok = ref true in
    for _ = 1 to params.area_passes do
      if !area_ok then begin
        let snap = snapshot () and crit0 = eval_cover () in
        area_pass ();
        if eval_cover () > crit0 +. 1e-9 then begin
          restore snap;
          area_ok := false
        end
        else begin
          loads_cur := Some (measure_loads ());
          init_leaf_slots ()
        end
      end
    done
  end;
  (* Totals are sums of per-node counts, so merging the workers'
     counters reproduces the sequential tally exactly; the skip decision
     itself is deterministic, so all three are [jobs]-independent. *)
  stats.Cut.probes <- stats.Cut.probes + Array.fold_left ( + ) 0 probe_ctr;
  stats.Cut.reevals <- stats.Cut.reevals + Array.fold_left ( + ) 0 reeval_ctr;
  stats.Cut.reeval_skips <-
    stats.Cut.reeval_skips + Array.fold_left ( + ) 0 skip_ctr;
  Par.shutdown pool;
  (* ---- extraction ---- *)
  let t_x0 = now () in
  let insts = ref [] in
  let ninsts = ref 0 in
  let memo = Hashtbl.create 1024 in
  let rec resolve nd ph : Mapped.net =
    if nd = 0 then { Mapped.driver = Mapped.Const (ph = 1); negated = false }
    else if Aig.is_input aig nd then begin
      if ph = 0 then { Mapped.driver = Mapped.Pi (nd - 1); negated = false }
      else if free then { Mapped.driver = Mapped.Pi (nd - 1); negated = true }
      else begin
        match Hashtbl.find_opt memo (nd, 1) with
        | Some net -> net
        | None ->
            let net =
              emit_inverter (Aig.lit_of_node nd)
                { Mapped.driver = Mapped.Pi (nd - 1); negated = false }
            in
            Hashtbl.add memo (nd, 1) net;
            net
      end
    end
    else begin
      let p = if free then 0 else ph in
      match Hashtbl.find_opt memo (nd, p) with
      | Some net ->
          if free && ph = 1 then { net with Mapped.negated = not net.Mapped.negated }
          else net
      | None ->
          let ix = (nd * nph) + p in
          let c1 = ch1.(ix) in
          let net =
            if c1 = code_unmapped then assert false
            else if c1 = code_wire then begin
              let v = ch2.(ix) in
              let leaf = v lsr 1 and lph = v land 1 = 1 in
              if free then begin
                let base = resolve leaf 0 in
                if lph then
                  { base with Mapped.negated = not base.Mapped.negated }
                else base
              end
              else resolve leaf (if lph then 1 else 0)
            end
            else if c1 = code_bridge then
              emit_inverter
                (Aig.lit_of_node nd ~compl:(1 - p = 1))
                (resolve nd (1 - p))
            else begin
              let ei = ch2.(ix) in
              let entry = ent.(ei) in
              let s = Bytes.get_uint8 cand_arity c1 in
              let slo = cand_slo.(c1) in
              let leaves = Array.init s (fun i -> leaf_buf.(slo + i)) in
              let orig_leaves =
                Array.sub leaf_buf cand_olo.(c1) cand_olen.(c1)
              in
              let key = Bigarray.Array1.get cand_key c1 in
              let want_key = if p = 1 then Int64.lognot key else key in
              let fanins =
                Array.mapi
                  (fun i leaf ->
                    let want = (entry.Cell_lib.phase lsr i) land 1 in
                    if free then begin
                      let base = resolve leaf 0 in
                      if want = 1 then
                        { base with Mapped.negated = not base.Mapped.negated }
                      else base
                    end
                    else resolve leaf want)
                  leaves
              in
              (* instance function over fanin values: fanin i carries
                 leaf_i ^ phase_i, so substitute back *)
              let tt = Npn.apply_phase want_key entry.Cell_lib.phase in
              let cover =
                {
                  Mapped.root_lit = Aig.lit_of_node nd ~compl:(p = 1);
                  fanin_lits =
                    Array.mapi
                      (fun i leaf ->
                        let want = (entry.Cell_lib.phase lsr i) land 1 in
                        Aig.lit_of_node leaf ~compl:(want = 1))
                      leaves;
                  cut_nodes = orig_leaves;
                }
              in
              let cell = entry.Cell_lib.cell in
              let idx = !ninsts in
              incr ninsts;
              insts :=
                {
                  Mapped.cell_name = cell.Cell_lib.name;
                  area = cell.Cell_lib.area;
                  delay = cell.Cell_lib.delay;
                  drive =
                    (match cell.Cell_lib.timing with
                    | Some tm -> Some tm.Charlib.drive
                    | None -> None);
                  fanin_caps =
                    (* fanin [i] enters cell pin [perm.(i)] *)
                    (match cell.Cell_lib.timing with
                    | Some tm ->
                        Array.mapi
                          (fun i _ ->
                            tm.Charlib.pin_caps.(entry.Cell_lib.perm.(i)))
                          leaves
                    | None -> [||]);
                  fanins;
                  tt;
                  cover = Some cover;
                }
                :: !insts;
              { Mapped.driver = Mapped.Inst idx; negated = false }
            end
          in
          Hashtbl.add memo (nd, p) net;
          if free && ph = 1 then { net with Mapped.negated = not net.Mapped.negated }
          else net
    end
  and emit_inverter in_lit input : Mapped.net =
    (* [in_lit] is the AIG literal whose value the [input] net carries;
       recorded in the cover so Map_lint can verify inverter chains too. *)
    match inv with
    | None ->
        (* free-phase library: complement is free *)
        { input with Mapped.negated = not input.Mapped.negated }
    | Some c ->
        let idx = !ninsts in
        incr ninsts;
        insts :=
          {
            Mapped.cell_name = c.Cell_lib.name;
            area = c.Cell_lib.area;
            delay = c.Cell_lib.delay;
            drive =
              (match c.Cell_lib.timing with
              | Some tm -> Some tm.Charlib.drive
              | None -> None);
            fanin_caps =
              (match c.Cell_lib.timing with
              | Some tm -> [| tm.Charlib.pin_caps.(0) |]
              | None -> [||]);
            fanins = [| input |];
            tt = Int64.lognot 0xAAAAAAAAAAAAAAAAL;
            cover =
              Some
                {
                  Mapped.root_lit = Aig.lnot in_lit;
                  fanin_lits = [| in_lit |];
                  cut_nodes = [| Aig.node_of in_lit |];
                };
          }
          :: !insts;
        { Mapped.driver = Mapped.Inst idx; negated = false }
  in
  let out_nets =
    Array.map
      (fun (name, l) ->
        let nd = Aig.node_of l in
        let c = Aig.is_compl l in
        let net =
          if free then begin
            let base = resolve nd 0 in
            if c then { base with Mapped.negated = not base.Mapped.negated }
            else base
          end
          else resolve nd (if c then 1 else 0)
        in
        (name, net))
      outputs
  in
  (match phase with
  | None -> ()
  | Some pm ->
      pm.pm_cuts_ms <- pm.pm_cuts_ms +. (t_cuts *. 1e3);
      pm.pm_match_ms <- pm.pm_match_ms +. (!t_match *. 1e3);
      pm.pm_required_ms <- pm.pm_required_ms +. (!t_required *. 1e3);
      pm.pm_recover_ms <- pm.pm_recover_ms +. (!t_recover *. 1e3);
      pm.pm_extract_ms <- pm.pm_extract_ms +. ((now () -. t_x0) *. 1e3));
  ( {
      Mapped.lib_name = Cell_lib.name lib;
      tau_ps = Cell_lib.tau_ps lib;
      num_inputs = Aig.num_inputs aig;
      input_names =
        Array.init (Aig.num_inputs aig) (fun i -> Aig.input_name aig i);
      instances = Array.of_list (List.rev !insts);
      outputs = out_nets;
    },
    stats )

let map ?params lib aig = fst (map_with_stats ?params lib aig)
