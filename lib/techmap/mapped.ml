type driver = Pi of int | Inst of int | Const of bool
type net = { driver : driver; negated : bool }

type cover = {
  root_lit : int;
  fanin_lits : int array;
  cut_nodes : int array;
}

type instance = {
  cell_name : string;
  area : float;
  delay : float;
  drive : Charlib.drive option;
  fanin_caps : float array;
  fanins : net array;
  tt : int64;
  cover : cover option;
}

type t = {
  lib_name : string;
  tau_ps : float;
  num_inputs : int;
  input_names : string array;
  instances : instance array;
  outputs : (string * net) array;
}

type stats = {
  gates : int;
  area : float;
  levels : int;
  norm_delay : float;
  abs_delay_ps : float;
  sta_norm_delay : float;
  sta_abs_delay_ps : float;
}

type delay_model = Unit_load | Loaded of float

(* Capacitance fanin pin [i] of [inst] presents to its driver.  Netlists
   without recorded pin capacitances (hand-built, genlib) default to the
   reference inverter input — one standard load per fanout. *)
let pin_cap (inst : instance) i =
  if i < Array.length inst.fanin_caps then inst.fanin_caps.(i)
  else
    match inst.drive with
    | Some d -> d.Charlib.cin_ref
    | None -> 1.0

let output_loads ?(po_fanout = 4.0) m =
  let loads = Array.make (Array.length m.instances) 0.0 in
  Array.iter
    (fun inst ->
      Array.iteri
        (fun i net ->
          match net.driver with
          | Inst j -> loads.(j) <- loads.(j) +. pin_cap inst i
          | Pi _ | Const _ -> ())
        inst.fanins)
    m.instances;
  (* each primary output drives [po_fanout] copies of a reference inverter
     (the FO4 convention of Sec. 4 at the default of 4) *)
  Array.iter
    (fun (_, net) ->
      match net.driver with
      | Inst j ->
          let cref =
            match m.instances.(j).drive with
            | Some d -> d.Charlib.cin_ref
            | None -> 1.0
          in
          loads.(j) <- loads.(j) +. (po_fanout *. cref)
      | Pi _ | Const _ -> ())
    m.outputs;
  loads

let instance_delays ?(model = Loaded 4.0) m =
  match model with
  | Unit_load -> Array.map (fun (i : instance) -> i.delay) m.instances
  | Loaded po_fanout ->
      let loads = output_loads ~po_fanout m in
      Array.mapi
        (fun j (inst : instance) ->
          match inst.drive with
          | Some d -> Charlib.drive_delay d ~load:loads.(j)
          | None -> inst.delay)
        m.instances

let arrival_times_with m delays =
  let arr = Array.make (Array.length m.instances) 0.0 in
  Array.iteri
    (fun j inst ->
      let worst =
        Array.fold_left
          (fun acc net ->
            match net.driver with
            | Inst i -> max acc arr.(i)
            | Pi _ | Const _ -> acc)
          0.0 inst.fanins
      in
      arr.(j) <- worst +. delays.(j))
    m.instances;
  arr

let arrival_times m = arrival_times_with m (instance_delays ~model:Unit_load m)

let instance_levels m =
  let lv = Array.make (Array.length m.instances) 0 in
  Array.iteri
    (fun j inst ->
      let worst =
        Array.fold_left
          (fun acc net ->
            match net.driver with
            | Inst i -> max acc lv.(i)
            | Pi _ | Const _ -> acc)
          0 inst.fanins
      in
      lv.(j) <- worst + 1)
    m.instances;
  lv

let stats m =
  let area =
    Array.fold_left (fun a (i : instance) -> a +. i.area) 0.0 m.instances
  in
  let arr = arrival_times m in
  let sta_arr = arrival_times_with m (instance_delays m) in
  let lv = instance_levels m in
  let out_max f dflt =
    Array.fold_left
      (fun acc (_, net) ->
        match net.driver with
        | Inst i -> max acc (f i)
        | Pi _ | Const _ -> acc)
      dflt m.outputs
  in
  {
    gates = Array.length m.instances;
    area;
    levels = out_max (fun i -> lv.(i)) 0;
    norm_delay = out_max (fun i -> arr.(i)) 0.0;
    abs_delay_ps = out_max (fun i -> arr.(i)) 0.0 *. m.tau_ps;
    sta_norm_delay = out_max (fun i -> sta_arr.(i)) 0.0;
    sta_abs_delay_ps = out_max (fun i -> sta_arr.(i)) 0.0 *. m.tau_ps;
  }

let net_value words vals net =
  let v =
    match net.driver with
    | Pi i -> words.(i)
    | Inst j -> vals.(j)
    | Const b -> if b then -1L else 0L
  in
  if net.negated then Int64.lognot v else v

(* evaluate one instance's 6-var function bit-sliced over the fanin words *)
let eval_instance words vals inst =
  let k = Array.length inst.fanins in
  let out = ref 0L in
  for bit = 0 to 63 do
    let idx = ref 0 in
    for i = 0 to k - 1 do
      if
        Int64.(
          logand
            (shift_right_logical (net_value words vals inst.fanins.(i)) bit)
            1L)
        <> 0L
      then idx := !idx lor (1 lsl i)
    done;
    if Int64.(logand (shift_right_logical inst.tt !idx) 1L) <> 0L then
      out := Int64.logor !out (Int64.shift_left 1L bit)
  done;
  !out

let simulate_values m words =
  if Array.length words <> m.num_inputs then invalid_arg "Mapped.simulate";
  let vals = Array.make (Array.length m.instances) 0L in
  Array.iteri (fun j inst -> vals.(j) <- eval_instance words vals inst)
    m.instances;
  vals

let simulate m words =
  let vals = simulate_values m words in
  Array.map (fun (_, net) -> net_value words vals net) m.outputs

let eval m bits =
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  let out = simulate m words in
  Array.map (fun w -> Int64.logand w 1L <> 0L) out

let to_aig m =
  let g = Aig.create ~size_hint:(Array.length m.instances * 8) () in
  let pis = Array.init m.num_inputs (fun i -> Aig.add_input ~name:m.input_names.(i) g) in
  let vals = Array.make (Array.length m.instances) Aig.lit_false in
  let net_lit net =
    let l =
      match net.driver with
      | Pi i -> pis.(i)
      | Inst j -> vals.(j)
      | Const b -> if b then Aig.lit_true else Aig.lit_false
    in
    if net.negated then Aig.lnot l else l
  in
  Array.iteri
    (fun j inst ->
      let k = Array.length inst.fanins in
      let leaves = Array.map net_lit inst.fanins in
      (* Shannon-expand the instance function over its fanin literals. *)
      let tt = Tt.of_bits (max k 1) inst.tt in
      let rec build tt i =
        if Tt.is_const0 tt then Aig.lit_false
        else if Tt.is_const1 tt then Aig.lit_true
        else if i >= k then Aig.lit_false
        else if not (Tt.depends_on tt i) then build tt (i + 1)
        else
          let lo = build (Tt.cofactor0 tt i) (i + 1) in
          let hi = build (Tt.cofactor1 tt i) (i + 1) in
          Aig.mk_mux g leaves.(i) hi lo
      in
      vals.(j) <- build tt 0)
    m.instances;
  Array.iter (fun (name, net) -> Aig.add_output g name (net_lit net)) m.outputs;
  g

let count_cells m =
  let h = Hashtbl.create 16 in
  Array.iter
    (fun i ->
      let c = try Hashtbl.find h i.cell_name with Not_found -> 0 in
      Hashtbl.replace h i.cell_name (c + 1))
    m.instances;
  List.sort
    (fun (_, a) (_, b) -> compare b a)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let pp_stats fmt m =
  let s = stats m in
  Format.fprintf fmt
    "%s: gates=%d area=%.1f levels=%d delay=%.1f (%.1f ps) sta=%.1f (%.1f ps)"
    m.lib_name s.gates s.area s.levels s.norm_delay s.abs_delay_ps
    s.sta_norm_delay s.sta_abs_delay_ps
