

type t = { n : int; cubes : Cube.t list }

let const0 n = { n; cubes = [] }
let const1 n = { n; cubes = [ Cube.top ] }
let make n cubes = { n; cubes }
let num_cubes s = List.length s.cubes
let num_literals s =
  List.fold_left (fun acc c -> acc + Cube.num_literals c) 0 s.cubes

let to_tt s =
  List.fold_left
    (fun acc c -> Tt.bor acc (Cube.to_tt s.n c))
    (Tt.const0 s.n) s.cubes

(* Minato–Morreale: returns the cover together with its truth table.
   [hint] bounds the support from above: both bounds are known independent
   of variables >= hint (cofactoring on the split variable removes it, and
   all combinations preserve independence), so the top-variable scan starts
   at [hint - 1] instead of [n - 1].  The result is identical to scanning
   from the top — the skipped variables test false — but deep recursion on
   wide tables no longer pays a full-table scan per already-removed
   variable. *)
let rec isop_rec n hint lower upper =
  if Tt.is_const0 lower then ([], Tt.const0 n)
  else begin
    (* Split on the largest variable in the support of either bound. *)
    let top_var =
      let rec go i =
        if i < 0 then -1
        else if Tt.depends_on lower i || Tt.depends_on upper i then i
        else go (i - 1)
      in
      go (hint - 1)
    in
    if top_var < 0 then
      (* lower is constant true here (non-zero and support-free). *)
      ([ Cube.top ], Tt.const1 n)
    else begin
      let x = top_var in
      let l0 = Tt.cofactor0 lower x and l1 = Tt.cofactor1 lower x in
      let u0 = Tt.cofactor0 upper x and u1 = Tt.cofactor1 upper x in
      let c0, t0 = isop_rec n x (Tt.bandn l0 u1) u0 in
      let c1, t1 = isop_rec n x (Tt.bandn l1 u0) u1 in
      let lnew = Tt.bor (Tt.bandn l0 t0) (Tt.bandn l1 t1) in
      let cd, td = isop_rec n x lnew (Tt.band u0 u1) in
      let add_lit sign c =
        match Cube.and_lit c x sign with
        | Some c -> c
        | None -> assert false
      in
      let cover =
        List.map (add_lit false) c0
        @ List.map (add_lit true) c1
        @ cd
      in
      let v = Tt.var n x in
      let tt =
        Tt.bor (Tt.bor (Tt.bandn t0 v) (Tt.band t1 v)) td
      in
      (cover, tt)
    end
  end

let isop_lu lower upper =
  let n = Tt.nvars lower in
  if n <> Tt.nvars upper then invalid_arg "Sop.isop_lu";
  if not (Tt.is_const0 (Tt.bandn lower upper)) then
    invalid_arg "Sop.isop_lu: lower not contained in upper";
  let cover, tt = isop_rec n n lower upper in
  (* The cover must lie between the bounds. *)
  assert (Tt.is_const0 (Tt.bandn lower tt));
  assert (Tt.is_const0 (Tt.bandn tt upper));
  { n; cubes = cover }

let isop f = isop_lu f f

let pp fmt s =
  if s.cubes = [] then Format.fprintf fmt "0"
  else
    List.iteri
      (fun k c ->
        if k > 0 then Format.fprintf fmt " + ";
        Cube.pp fmt c)
      s.cubes
