(** Static timing analysis over mapped netlists.

    The delay model is the switch-level RC model of Sec. 4, applied at the
    {e actual} load of every instance output instead of the fixed
    fanout-of-4 convention: instance [j] driving total capacitance [L]
    contributes [Charlib.drive_delay d ~load:L] where [d] is the cell's
    characterized output drive and [L] sums the input-pin capacitances of
    the fanout pins (plus [po_fanout] reference-inverter loads on every
    primary output).  Arrival times propagate forward through the netlist,
    required times backward from the latest endpoint, and the difference is
    the per-instance slack.  With [unit_loads] set the engine degenerates
    to the legacy fixed-FO4 model and reproduces
    [Mapped.stats.norm_delay] exactly. *)

type model = {
  unit_loads : bool;
      (** charge every instance its fixed FO4 [delay] field instead of the
          load-dependent delay (the paper's Table 3 convention) *)
  po_fanout : float;
      (** reference-inverter loads assumed on each primary output
          (default 4.0 — the FO4 convention) *)
}

val default_model : model
(** [{ unit_loads = false; po_fanout = 4.0 }] *)

type endpoint = {
  ep_name : string;  (** primary-output name *)
  ep_arrival : float;
  ep_required : float;
  ep_slack : float;
}

type stage = {
  st_inst : int;      (** instance index *)
  st_cell : string;
  st_pin : int;       (** fanin pin the critical signal enters through *)
  st_load : float;    (** capacitive load on the instance output *)
  st_delay : float;   (** stage delay under the model *)
  st_arrival : float; (** arrival at the instance output *)
}

type t = {
  netlist : Mapped.t;
  model : model;
  loads : float array;
  delays : float array;
  arrival : float array;
  required : float array;  (** [infinity] for instances reaching no output *)
  slack : float array;
  crit : float;            (** latest endpoint arrival (normalized) *)
  endpoints : endpoint array;  (** one per primary output, netlist order *)
}

val analyze : ?model:model -> Mapped.t -> t
(** Full forward/backward propagation.  Every endpoint's required time is
    the latest endpoint arrival, so the worst endpoint has slack 0 and
    every slack is nonnegative. *)

val norm_delay : t -> float
(** The critical-path delay, normalized (= [crit]). *)

val abs_delay_ps : t -> float
(** [crit] scaled by the library's technology constant. *)

val critical_path : t -> stage list
(** The slowest register-free path, endpoint backwards to a primary input,
    returned input-first.  Empty when no output is driven by an instance. *)

val slack_histogram : ?bins:int -> t -> (float * float * int) list
(** [(lo, hi, count)] buckets over the slacks of output-reaching instances
    (default 10 bins). *)

(** {1 Reports}

    Human-readable by default; [~tsv:true] emits tab-separated rows with a
    leading [#]-commented header. *)

val render_path : ?tsv:bool -> t -> string
val render_endpoints : ?tsv:bool -> t -> string
val render_histogram : ?tsv:bool -> ?bins:int -> t -> string
val summary : t -> string
(** One line: instance count, critical delay (normalized and ps), worst
    slack, endpoint count. *)
