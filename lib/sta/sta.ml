type model = { unit_loads : bool; po_fanout : float }

let default_model = { unit_loads = false; po_fanout = 4.0 }

type endpoint = {
  ep_name : string;
  ep_arrival : float;
  ep_required : float;
  ep_slack : float;
}

type stage = {
  st_inst : int;
  st_cell : string;
  st_pin : int;
  st_load : float;
  st_delay : float;
  st_arrival : float;
}

type t = {
  netlist : Mapped.t;
  model : model;
  loads : float array;
  delays : float array;
  arrival : float array;
  required : float array;
  slack : float array;
  crit : float;
  endpoints : endpoint array;
}

let net_arrival arrival (net : Mapped.net) =
  match net.Mapped.driver with
  | Mapped.Inst j -> arrival.(j)
  | Mapped.Pi _ | Mapped.Const _ -> 0.0

let analyze ?(model = default_model) (m : Mapped.t) =
  let n = Array.length m.Mapped.instances in
  let loads = Mapped.output_loads ~po_fanout:model.po_fanout m in
  let delays =
    Mapped.instance_delays
      ~model:
        (if model.unit_loads then Mapped.Unit_load
         else Mapped.Loaded model.po_fanout)
      m
  in
  let arrival = Mapped.arrival_times_with m delays in
  let crit =
    Array.fold_left
      (fun acc (_, net) -> max acc (net_arrival arrival net))
      0.0 m.Mapped.outputs
  in
  (* backward pass: an endpoint's required time is the latest endpoint
     arrival; an instance's required time is the tightest over its fanouts *)
  let required = Array.make n infinity in
  Array.iter
    (fun (_, net) ->
      match net.Mapped.driver with
      | Mapped.Inst j -> if crit < required.(j) then required.(j) <- crit
      | Mapped.Pi _ | Mapped.Const _ -> ())
    m.Mapped.outputs;
  for j = n - 1 downto 0 do
    if required.(j) < infinity then begin
      let r = required.(j) -. delays.(j) in
      Array.iter
        (fun (net : Mapped.net) ->
          match net.Mapped.driver with
          | Mapped.Inst i -> if r < required.(i) then required.(i) <- r
          | Mapped.Pi _ | Mapped.Const _ -> ())
        m.Mapped.instances.(j).Mapped.fanins
    end
  done;
  let slack = Array.mapi (fun j r -> r -. arrival.(j)) required in
  let endpoints =
    Array.map
      (fun (name, net) ->
        let a = net_arrival arrival net in
        { ep_name = name; ep_arrival = a; ep_required = crit;
          ep_slack = crit -. a })
      m.Mapped.outputs
  in
  { netlist = m; model; loads; delays; arrival; required; slack; crit;
    endpoints }

let norm_delay t = t.crit
let abs_delay_ps t = t.crit *. t.netlist.Mapped.tau_ps

let critical_path t =
  let m = t.netlist in
  (* endpoint with the latest arrival *)
  let start =
    Array.fold_left
      (fun acc (_, net) ->
        match net.Mapped.driver with
        | Mapped.Inst j -> (
            match acc with
            | Some k when t.arrival.(k) >= t.arrival.(j) -> acc
            | _ -> Some j)
        | Mapped.Pi _ | Mapped.Const _ -> acc)
      None m.Mapped.outputs
  in
  match start with
  | None -> []
  | Some j0 ->
      let rec walk j acc =
        let inst = m.Mapped.instances.(j) in
        (* critical input: the fanin with the latest arrival *)
        let pin = ref 0 and best = ref neg_infinity in
        Array.iteri
          (fun i net ->
            let a = net_arrival t.arrival net in
            if a > !best then begin
              best := a;
              pin := i
            end)
          inst.Mapped.fanins;
        let stage =
          {
            st_inst = j;
            st_cell = inst.Mapped.cell_name;
            st_pin = !pin;
            st_load = t.loads.(j);
            st_delay = t.delays.(j);
            st_arrival = t.arrival.(j);
          }
        in
        let acc = stage :: acc in
        if Array.length inst.Mapped.fanins = 0 then acc
        else
          match inst.Mapped.fanins.(!pin).Mapped.driver with
          | Mapped.Inst i -> walk i acc
          | Mapped.Pi _ | Mapped.Const _ -> acc
      in
      walk j0 []

let slack_histogram ?(bins = 10) t =
  let xs =
    Array.to_list t.slack |> List.filter (fun s -> s < infinity)
  in
  match xs with
  | [] -> []
  | x0 :: _ ->
      let lo = List.fold_left min x0 xs and hi = List.fold_left max x0 xs in
      if hi -. lo < 1e-12 then [ (lo, hi, List.length xs) ]
      else begin
        let bins = max 1 bins in
        let w = (hi -. lo) /. float_of_int bins in
        let counts = Array.make bins 0 in
        List.iter
          (fun s ->
            let b = min (bins - 1) (int_of_float ((s -. lo) /. w)) in
            counts.(b) <- counts.(b) + 1)
          xs;
        List.init bins (fun b ->
            (lo +. (w *. float_of_int b), lo +. (w *. float_of_int (b + 1)),
             counts.(b)))
      end

let driver_name (m : Mapped.t) (net : Mapped.net) =
  let base =
    match net.Mapped.driver with
    | Mapped.Pi i ->
        if i < Array.length m.Mapped.input_names then
          m.Mapped.input_names.(i)
        else Printf.sprintf "pi%d" i
    | Mapped.Inst j -> Printf.sprintf "i%d" j
    | Mapped.Const b -> if b then "1'b1" else "1'b0"
  in
  if net.Mapped.negated then "~" ^ base else base

let render_path ?(tsv = false) t =
  let buf = Buffer.create 512 in
  let tau = t.netlist.Mapped.tau_ps in
  let stages = critical_path t in
  if tsv then begin
    Buffer.add_string buf
      "#stage\tinst\tcell\tpin\tfrom\tload\tdelay\tarrival\tarrival_ps\n";
    List.iteri
      (fun i st ->
        let inst = t.netlist.Mapped.instances.(st.st_inst) in
        let from = driver_name t.netlist inst.Mapped.fanins.(st.st_pin) in
        Buffer.add_string buf
          (Printf.sprintf "%d\ti%d\t%s\t%d\t%s\t%.3f\t%.3f\t%.3f\t%.3f\n" i
             st.st_inst st.st_cell st.st_pin from st.st_load st.st_delay
             st.st_arrival (st.st_arrival *. tau)))
      stages
  end
  else begin
    Buffer.add_string buf
      (Printf.sprintf "critical path (%d stages, delay %.2f = %.2f ps):\n"
         (List.length stages) t.crit (t.crit *. tau));
    List.iteri
      (fun i st ->
        let inst = t.netlist.Mapped.instances.(st.st_inst) in
        let from = driver_name t.netlist inst.Mapped.fanins.(st.st_pin) in
        Buffer.add_string buf
          (Printf.sprintf
             "  %2d  i%-5d %-8s pin %d <- %-10s load %6.2f  delay %6.2f  \
              arrival %7.2f\n"
             i st.st_inst st.st_cell st.st_pin from st.st_load st.st_delay
             st.st_arrival))
      stages
  end;
  Buffer.contents buf

let render_endpoints ?(tsv = false) t =
  let buf = Buffer.create 512 in
  let tau = t.netlist.Mapped.tau_ps in
  (* slowest first *)
  let eps = Array.copy t.endpoints in
  Array.sort (fun a b -> compare b.ep_arrival a.ep_arrival) eps;
  if tsv then begin
    Buffer.add_string buf "#output\tarrival\tarrival_ps\trequired\tslack\n";
    Array.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf "%s\t%.3f\t%.3f\t%.3f\t%.3f\n" e.ep_name
             e.ep_arrival (e.ep_arrival *. tau) e.ep_required e.ep_slack))
      eps
  end
  else begin
    Buffer.add_string buf
      (Printf.sprintf "endpoints (%d, required %.2f):\n" (Array.length eps)
         t.crit);
    Array.iter
      (fun e ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-12s arrival %7.2f (%8.2f ps)  slack %7.2f%s\n" e.ep_name
             e.ep_arrival (e.ep_arrival *. tau) e.ep_slack
             (if e.ep_slack < 1e-9 then "  <- critical" else "")))
      eps
  end;
  Buffer.contents buf

let render_histogram ?(tsv = false) ?bins t =
  let buf = Buffer.create 256 in
  let h = slack_histogram ?bins t in
  if tsv then begin
    Buffer.add_string buf "#slack_lo\tslack_hi\tcount\n";
    List.iter
      (fun (lo, hi, c) ->
        Buffer.add_string buf (Printf.sprintf "%.3f\t%.3f\t%d\n" lo hi c))
      h
  end
  else begin
    Buffer.add_string buf "slack histogram (output-reaching instances):\n";
    let total =
      List.fold_left (fun a (_, _, c) -> a + c) 0 h |> max 1
    in
    List.iter
      (fun (lo, hi, c) ->
        let bar = String.make (c * 50 / total) '#' in
        Buffer.add_string buf
          (Printf.sprintf "  [%7.2f, %7.2f)  %5d %s\n" lo hi c bar))
      h
  end;
  Buffer.contents buf

let summary t =
  let worst =
    Array.fold_left
      (fun acc s -> if s < infinity then min acc s else acc)
      infinity t.slack
  in
  let worst = if worst = infinity then 0.0 else worst in
  Printf.sprintf
    "%s: %d instances, %d endpoints, critical %.2f (%.2f ps), worst slack \
     %.2f%s"
    t.netlist.Mapped.lib_name
    (Array.length t.netlist.Mapped.instances)
    (Array.length t.endpoints) t.crit (abs_delay_ps t) worst
    (if t.model.unit_loads then " [unit loads]" else "")
