(* genlib writing *)

(* Render a 6-var replicated truth table as an expression over pins
   a..f via ISOP on the shrunk function. *)
let expr_of_tt arity tt =
  let t = Tt.of_bits (max arity 1) tt in
  if Tt.is_const0 t then "CONST0"
  else if Tt.is_const1 t then "CONST1"
  else begin
    let sop = Sop.isop t in
    let pin i = String.make 1 (Char.chr (Char.code 'a' + i)) in
    let cube c =
      match Cube.literals c with
      | [] -> "CONST1"
      | lits ->
          String.concat "*"
            (List.map (fun (i, s) -> if s then pin i else "!" ^ pin i) lits)
    in
    String.concat "+" (List.map cube sop.Sop.cubes)
  end

let to_string lib =
  let b = Buffer.create 1024 in
  List.iter
    (fun (c : Cell_lib.cell) ->
      Printf.bprintf b "GATE %s %.4f o=%s;\n" c.Cell_lib.name c.Cell_lib.area
        (expr_of_tt c.Cell_lib.arity c.Cell_lib.tt);
      Printf.bprintf b "  PIN * NONINV 1 999 %.4f 0.0 %.4f 0.0\n"
        c.Cell_lib.delay c.Cell_lib.delay)
    (Cell_lib.cells lib);
  Buffer.contents b

(* ---------------- parsing ---------------- *)

type token =
  | Tid of string
  | Tnum of float
  | Tpunct of char

(* positioned token: (token, 1-based line, 1-based column) *)
type ptoken = token * int * int

let tokenize text : ptoken list =
  let toks = ref [] in
  let n = String.length text in
  let i = ref 0 in
  let line = ref 1 and bol = ref 0 in
  let col at = at - !bol + 1 in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '.' || c = '-'
  in
  while !i < n do
    let c = text.[!i] in
    if c = '#' then begin
      (* comment to end of line *)
      while !i < n && text.[!i] <> '\n' do incr i done
    end
    else if c = '\n' then begin
      incr i;
      incr line;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if is_id c then begin
      let start = !i in
      while !i < n && is_id text.[!i] do incr i done;
      let word = String.sub text start (!i - start) in
      let pos = (!line, col start) in
      match float_of_string_opt word with
      | Some f when word.[0] >= '0' && word.[0] <= '9' || word.[0] = '-' ->
          toks := (Tnum f, fst pos, snd pos) :: !toks
      | _ -> toks := (Tid word, fst pos, snd pos) :: !toks
    end
    else begin
      toks := (Tpunct c, !line, col !i) :: !toks;
      incr i
    end
  done;
  List.rev !toks

(* Boolean expression parser over pin names.  Returns an evaluator over a
   pin-index map built on the fly. *)
type bexpr =
  | Bconst of bool
  | Bpin of string
  | Bnot of bexpr
  | Band of bexpr * bexpr
  | Bor of bexpr * bexpr
  | Bxor of bexpr * bexpr

let parse_expr ?file toks =
  (* grammar:  or := xor ('+' xor)* ; xor := and ('^' and)* ;
     and := unary (('*')? unary)* ; unary := '!' unary | primary ('’)* ;
     primary := id | '(' or ')' | CONST0 | CONST1 *)
  let rest = ref toks in
  let pos = ref (match toks with (_, l, c) :: _ -> (l, c) | [] -> (0, 0)) in
  let fail_here fmt =
    let l, c = !pos in
    Parse_error.fail ?file ~line:l ~col:c fmt
  in
  let peek () =
    match !rest with
    | [] -> None
    | (t, l, c) :: _ ->
        pos := (l, c);
        Some t
  in
  let advance () = match !rest with [] -> () | _ :: t -> rest := t in
  let rec p_or () =
    let l = ref (p_xor ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some (Tpunct '+') ->
          advance ();
          l := Bor (!l, p_xor ())
      | _ -> continue := false
    done;
    !l
  and p_xor () =
    let l = ref (p_and ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some (Tpunct '^') ->
          advance ();
          l := Bxor (!l, p_and ())
      | _ -> continue := false
    done;
    !l
  and p_and () =
    let l = ref (p_unary ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some (Tpunct '*') ->
          advance ();
          l := Band (!l, p_unary ())
      | Some (Tid _) | Some (Tpunct '(') | Some (Tpunct '!') ->
          (* juxtaposition is AND in genlib *)
          l := Band (!l, p_unary ())
      | _ -> continue := false
    done;
    !l
  and p_unary () =
    match peek () with
    | Some (Tpunct '!') ->
        advance ();
        Bnot (p_unary ())
    | _ -> p_postfix ()
  and p_postfix () =
    let e = ref (p_primary ()) in
    let continue = ref true in
    while !continue do
      match peek () with
      | Some (Tpunct '\'') ->
          advance ();
          e := Bnot !e
      | _ -> continue := false
    done;
    !e
  and p_primary () =
    match peek () with
    | Some (Tpunct '(') ->
        advance ();
        let e = p_or () in
        (match peek () with
        | Some (Tpunct ')') -> advance ()
        | _ -> fail_here "expected )");
        e
    | Some (Tid "CONST0") -> advance (); Bconst false
    | Some (Tid "CONST1") -> advance (); Bconst true
    | Some (Tid name) -> advance (); Bpin name
    | _ -> fail_here "expected expression"
  in
  let e = p_or () in
  (e, !rest)

let rec pins_of acc = function
  | Bconst _ -> acc
  | Bpin p -> if List.mem p acc then acc else acc @ [ p ]
  | Bnot e -> pins_of acc e
  | Band (a, b) | Bor (a, b) | Bxor (a, b) -> pins_of (pins_of acc a) b

let rec eval_bexpr env = function
  | Bconst b -> b
  | Bpin p -> env p
  | Bnot e -> not (eval_bexpr env e)
  | Band (a, b) -> eval_bexpr env a && eval_bexpr env b
  | Bor (a, b) -> eval_bexpr env a || eval_bexpr env b
  | Bxor (a, b) -> eval_bexpr env a <> eval_bexpr env b

let of_string ?file ~name ~free_phases ~tau_ps text =
  let toks = tokenize text in
  let cells = ref [] in
  let id = ref 0 in
  let rec go toks =
    match toks with
    | [] -> ()
    | (Tid "GATE", gl, gc)
      :: (Tid gname, _, _)
      :: (Tnum area, _, _)
      :: (Tid _out, _, _)
      :: (Tpunct '=', _, _)
      :: rest ->
        let e, rest = parse_expr ?file rest in
        let rest =
          match rest with
          | (Tpunct ';', _, _) :: r -> r
          | r -> r
        in
        (* PIN lines: collect the max block delay.  The pin-name slot is
           an identifier or the wildcard '*'. *)
        let delay = ref 0.0 in
        let rec pins rest =
          match rest with
          | (Tid "PIN", _, _)
            :: ((Tid _ | Tpunct '*'), _, _)
            :: (Tid _, _, _)
            :: (Tnum _, _, _)
            :: (Tnum _, _, _)
            :: (Tnum rb, _, _)
            :: (Tnum _, _, _)
            :: (Tnum fb, _, _)
            :: (Tnum _, _, _)
            :: r ->
              delay := max !delay (max rb fb);
              pins r
          | r -> r
        in
        let rest = pins rest in
        (* deterministic pin order: sorted by name (our writer emits a..f) *)
        let pin_names = List.sort compare (pins_of [] e) in
        let arity = List.length pin_names in
        if arity > 6 then
          Parse_error.fail ?file ~line:gl ~col:gc "gate too wide: %s" gname;
        let tt =
          Tt.of_fun (max arity 1) (fun a ->
              eval_bexpr
                (fun p ->
                  let rec idx i = function
                    | [] -> failwith "Genlib: pin"
                    | q :: _ when q = p -> i
                    | _ :: t -> idx (i + 1) t
                  in
                  a land (1 lsl idx 0 pin_names) <> 0)
                e)
        in
        cells :=
          {
            Cell_lib.id = !id;
            name = gname;
            arity;
            tt = (Tt.words (Tt.extend tt 6)).(0);
            area;
            delay = !delay;
            timing = None;
          }
          :: !cells;
        incr id;
        go rest
    | (Tid "GATE", gl, gc) :: _ ->
        Parse_error.fail ?file ~line:gl ~col:gc
          "malformed GATE header (expected GATE name area out=expr;)"
    | _ :: rest -> go rest
  in
  go toks;
  Cell_lib.of_cells ~name ~free_phases ~tau_ps (List.rev !cells)
