(** The SIS/ABC [genlib] gate-library exchange format.

    Writing emits one [GATE] line per cell with a uniform [PIN *] timing
    record carrying the cell's delay; reading parses the Boolean expression
    grammar ([! ' * + ^ ( )], constants [CONST0]/[CONST1]) and tabulates
    each gate's function (at most 6 pins).  This is how the paper's
    libraries were handed to ABC (Sec. 4.4). *)

val to_string : Cell_lib.t -> string

val of_string :
  ?file:string ->
  name:string -> free_phases:bool -> tau_ps:float -> string -> Cell_lib.t
(** Raises {!Parse_error.Error} with the source line and column (and
    [?file], when given) on malformed input. *)
