(** ISCAS-style [.bench] format: [INPUT(x)], [OUTPUT(y)],
    [y = OP(a, b, ...)] with OP in AND/NAND/OR/NOR/XOR/XNOR/NOT/BUFF.
    Multi-operand gates associate left. *)

val to_string : Aig.t -> string
val write : out_channel -> Aig.t -> unit

val of_string : ?file:string -> string -> Aig.t
(** Raises {!Parse_error.Error} with the source line (and [?file], when
    given) on malformed input. *)

val read : ?file:string -> in_channel -> Aig.t
