(** Typed parse errors for the interchange-format readers ({!Blif},
    {!Bench_fmt}, {!Genlib}).

    Every reader reports malformed input by raising {!Error} carrying the
    source file (when known), the 1-based line, the 1-based column when the
    format is token-oriented (0 = whole line), and a message.  Drivers
    catch the exception and render {!to_string} as a diagnostic instead of
    dying with a backtrace. *)

type t = {
  file : string option;  (** source file, [None] for in-memory input *)
  line : int;            (** 1-based; 0 when no position is known *)
  col : int;             (** 1-based; 0 when the format is line-oriented *)
  msg : string;
}

exception Error of t

val to_string : t -> string
(** [file:line:col: msg] ([<input>] when the file is unknown, column
    omitted when 0). *)

val fail : ?file:string -> ?col:int -> line:int -> ('a, unit, string, 'b) format4 -> 'a
(** Printf-style raise of {!Error}. *)
