(** BLIF (Berkeley Logic Interchange Format) reading and writing for
    combinational networks.

    Writing flattens an AIG into two-input [.names] tables (one per AND
    node, complemented edges folded into the input patterns).  Reading
    accepts the combinational subset: [.model], [.inputs], [.outputs],
    [.names] with multi-cube covers (both 1- and 0-phase), constants, and
    backslash line continuation. *)

val write : out_channel -> ?model:string -> Aig.t -> unit
val to_string : ?model:string -> Aig.t -> string

val read : ?file:string -> in_channel -> Aig.t
val of_string : ?file:string -> string -> Aig.t
(** Raises {!Parse_error.Error} with the source line (and [?file], when
    given) on malformed input. *)

val write_mapped : out_channel -> ?model:string -> Mapped.t -> unit
val mapped_to_string : ?model:string -> Mapped.t -> string
(** Mapped netlists are emitted as [.gate] instantiations (the BLIF
    mapped-network extension). *)
