(* Typed parse errors for the interchange-format readers. *)

type t = { file : string option; line : int; col : int; msg : string }

exception Error of t

let to_string e =
  let file = match e.file with Some f -> f | None -> "<input>" in
  if e.col > 0 then Printf.sprintf "%s:%d:%d: %s" file e.line e.col e.msg
  else Printf.sprintf "%s:%d: %s" file e.line e.msg

let fail ?file ?(col = 0) ~line fmt =
  Printf.ksprintf (fun msg -> raise (Error { file; line; col; msg })) fmt

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Parse_error.Error(%s)" (to_string e))
    | _ -> None)
