(* BLIF I/O for combinational networks. *)

let node_name aig n =
  if n = 0 then "const0"
  else if Aig.is_input aig n then Aig.input_name aig (n - 1)
  else Printf.sprintf "n%d" n

let to_string ?model aig =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let model = match model with Some m -> m | None -> "circuit" in
  add ".model %s\n" model;
  add ".inputs";
  for i = 0 to Aig.num_inputs aig - 1 do
    add " %s" (Aig.input_name aig i)
  done;
  add "\n.outputs";
  Array.iter (fun (name, _) -> add " %s" name) (Aig.outputs aig);
  add "\n";
  let uses_const = ref false in
  Aig.iter_ands aig (fun n ->
      if Aig.node_of (Aig.fanin0 aig n) = 0 || Aig.node_of (Aig.fanin1 aig n) = 0
      then uses_const := true);
  Array.iter
    (fun (_, l) -> if Aig.node_of l = 0 then uses_const := true)
    (Aig.outputs aig);
  if !uses_const then add ".names const0\n";
  Aig.iter_ands aig (fun n ->
      let f0 = Aig.fanin0 aig n and f1 = Aig.fanin1 aig n in
      add ".names %s %s %s\n"
        (node_name aig (Aig.node_of f0))
        (node_name aig (Aig.node_of f1))
        (node_name aig n);
      add "%c%c 1\n"
        (if Aig.is_compl f0 then '0' else '1')
        (if Aig.is_compl f1 then '0' else '1'));
  Array.iter
    (fun (name, l) ->
      add ".names %s %s\n" (node_name aig (Aig.node_of l)) name;
      add "%c 1\n" (if Aig.is_compl l then '0' else '1'))
    (Aig.outputs aig);
  add ".end\n";
  Buffer.contents b

let write oc ?model aig = output_string oc (to_string ?model aig)

(* ---------------- reading ---------------- *)

type pending = {
  p_line : int;            (* source line of the .names directive *)
  p_inputs : string list;  (* fanin signal names *)
  p_output : string;
  p_cubes : (int * string * char) list;  (* line, input pattern, phase *)
}

let tokenize line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let of_string ?file text =
  let fail ~line fmt = Parse_error.fail ?file ~line fmt in
  let raw_lines = String.split_on_char '\n' text in
  (* join continuations, strip comments; each logical line keeps the
     source line where it started *)
  let lines =
    let rec go acc start pending lineno = function
      | [] -> List.rev (if pending = "" then acc else (start, pending) :: acc)
      | line :: rest ->
          let line =
            match String.index_opt line '#' with
            | Some i -> String.sub line 0 i
            | None -> line
          in
          let joined = String.trim (pending ^ " " ^ line) in
          let start = if pending = "" then lineno else start in
          if String.length joined > 0 && joined.[String.length joined - 1] = '\\'
          then
            go acc start
              (String.sub joined 0 (String.length joined - 1))
              (lineno + 1) rest
          else if joined = "" then go acc 0 "" (lineno + 1) rest
          else go ((start, joined) :: acc) 0 "" (lineno + 1) rest
    in
    go [] 0 "" 1 raw_lines
  in
  let inputs = ref [] and outputs = ref [] in
  let tables = ref [] in
  let current = ref None in
  let push_current () =
    match !current with
    | Some p -> tables := p :: !tables; current := None
    | None -> ()
  in
  List.iter
    (fun (lnum, line) ->
      match tokenize line with
      | [] -> ()
      | tok :: args when tok = ".model" -> ignore args
      | tok :: args when tok = ".inputs" ->
          push_current ();
          inputs := !inputs @ args
      | tok :: args when tok = ".outputs" ->
          push_current ();
          outputs := !outputs @ List.map (fun a -> (lnum, a)) args
      | tok :: args when tok = ".names" ->
          push_current ();
          (match List.rev args with
          | out :: ins_rev ->
              current :=
                Some
                  {
                    p_line = lnum;
                    p_inputs = List.rev ins_rev;
                    p_output = out;
                    p_cubes = [];
                  }
          | [] -> fail ~line:lnum ".names without signals")
      | [ tok ] when tok = ".end" -> push_current ()
      | tok :: _ when String.length tok > 0 && tok.[0] = '.' ->
          push_current () (* ignore other directives (.latch unsupported) *)
      | toks -> (
          match !current with
          | None -> fail ~line:lnum "stray line %S (no open .names table)" line
          | Some p -> (
              match toks with
              | [ pat; out ] when (out = "0" || out = "1") ->
                  current :=
                    Some { p with p_cubes = (lnum, pat, out.[0]) :: p.p_cubes }
              | [ out ] when (out = "0" || out = "1") && p.p_inputs = [] ->
                  current :=
                    Some { p with p_cubes = (lnum, "", out.[0]) :: p.p_cubes }
              | _ -> fail ~line:lnum "bad cube line %S" line)))
    lines;
  push_current ();
  (* Size the graph from the parse: each cube elaborates to about one AND
     per literal plus the OR chain, so the cube-literal total is a tight
     upper bound — million-node inputs then build without repeated
     reallocation of the node arrays and strash. *)
  let n_est =
    List.fold_left
      (fun acc p ->
        let nin = List.length p.p_inputs in
        acc + (List.length p.p_cubes * (nin + 1)))
      (1 + List.length !inputs)
      !tables
  in
  let g = Aig.create ~size_hint:n_est () in
  let signals = Hashtbl.create (max 64 n_est) in
  List.iter
    (fun name -> Hashtbl.replace signals name (Aig.add_input ~name g))
    !inputs;
  (* topological elaboration of tables by need *)
  let table_of = Hashtbl.create (max 64 (List.length !tables)) in
  List.iter (fun p -> Hashtbl.replace table_of p.p_output p) !tables;
  let rec signal ~line name =
    match Hashtbl.find_opt signals name with
    | Some l -> l
    | None -> (
        match Hashtbl.find_opt table_of name with
        | None -> fail ~line "undriven signal %s" name
        | Some p ->
            Hashtbl.replace signals name Aig.lit_false (* cycle guard *)
            |> ignore;
            let ins = List.map (signal ~line:p.p_line) p.p_inputs in
            let l = build_table p ins in
            Hashtbl.replace signals name l;
            l)
  and build_table p ins =
    (* all cubes of a table must share the output phase per BLIF *)
    let phase =
      match p.p_cubes with
      | [] -> '1'
      | (_, _, ph) :: _ -> ph
    in
    let n_ins = List.length ins in
    let cube (lnum, pat, _) =
      if String.length pat <> n_ins then
        fail ~line:lnum "cube %S has %d columns for %d table inputs" pat
          (String.length pat) n_ins;
      let lits =
        List.mapi
          (fun i l ->
            match pat.[i] with
            | '1' -> l
            | '0' -> Aig.lnot l
            | '-' -> Aig.lit_true
            | c -> fail ~line:lnum "bad pattern char %c" c)
          ins
      in
      Aig.mk_and_list g lits
    in
    let sum = Aig.mk_or_list g (List.map cube p.p_cubes) in
    if phase = '1' then sum else Aig.lnot sum
  in
  List.iter
    (fun (lnum, name) -> Aig.add_output g name (signal ~line:lnum name))
    !outputs;
  g

let read ?file ic = of_string ?file (In_channel.input_all ic)

let mapped_to_buffer oc ?(model = "mapped") (m : Mapped.t) =
  Printf.bprintf oc ".model %s\n" model;
  Printf.bprintf oc ".inputs";
  Array.iter (fun n -> Printf.bprintf oc " %s" n) m.Mapped.input_names;
  Printf.bprintf oc "\n.outputs";
  Array.iter (fun (n, _) -> Printf.bprintf oc " %s" n) m.Mapped.outputs;
  Printf.bprintf oc "\n";
  let base_name (net : Mapped.net) =
    match net.Mapped.driver with
    | Mapped.Pi i -> m.Mapped.input_names.(i)
    | Mapped.Inst j -> Printf.sprintf "g%d" j
    | Mapped.Const b -> if b then "const1" else "const0"
  in
  let net_name (net : Mapped.net) =
    let base = base_name net in
    if net.Mapped.negated then base ^ "_bar" else base
  in
  (* define complemented rails used by free-phase cells *)
  let bars = Hashtbl.create 16 in
  let scan net =
    if net.Mapped.negated then Hashtbl.replace bars (base_name net) ()
  in
  Array.iter
    (fun (inst : Mapped.instance) -> Array.iter scan inst.Mapped.fanins)
    m.Mapped.instances;
  Array.iter (fun (_, net) -> scan net) m.Mapped.outputs;
  Printf.bprintf oc ".names const0
";
  Printf.bprintf oc ".names const1
1
";
  Hashtbl.iter
    (fun base () -> Printf.bprintf oc ".names %s %s_bar
0 1
" base base)
    bars;
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      Printf.bprintf oc ".gate %s" inst.Mapped.cell_name;
      Array.iteri
        (fun i f -> Printf.bprintf oc " %c=%s" (Char.chr (Char.code 'a' + i)) (net_name f))
        inst.Mapped.fanins;
      Printf.bprintf oc " o=g%d\n" j)
    m.Mapped.instances;
  Array.iter
    (fun (name, net) ->
      Printf.bprintf oc ".names %s %s\n1 1\n" (net_name net) name)
    m.Mapped.outputs;
  Printf.bprintf oc ".end\n"

let mapped_to_string ?model m =
  let b = Buffer.create 4096 in
  mapped_to_buffer b ?model m;
  Buffer.contents b

let write_mapped oc ?model m = output_string oc (mapped_to_string ?model m)
