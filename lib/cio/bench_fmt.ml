let node_name aig n =
  if n = 0 then "GND"
  else if Aig.is_input aig n then Aig.input_name aig (n - 1)
  else Printf.sprintf "n%d" n

let lit_ref aig buf l =
  (* .bench has no complemented references: emit NOT gates on demand *)
  let n = Aig.node_of l in
  if Aig.is_compl l then begin
    let bar = node_name aig n ^ "_b" in
    if not (Hashtbl.mem buf bar) then Hashtbl.replace buf bar (node_name aig n);
    bar
  end
  else node_name aig n

let to_string aig =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  for i = 0 to Aig.num_inputs aig - 1 do
    add "INPUT(%s)\n" (Aig.input_name aig i)
  done;
  Array.iter (fun (name, _) -> add "OUTPUT(%s)\n" name) (Aig.outputs aig);
  let bars = Hashtbl.create 64 in
  let body = Buffer.create 4096 in
  let addb fmt = Printf.ksprintf (Buffer.add_string body) fmt in
  Aig.iter_ands aig (fun n ->
      let a = lit_ref aig bars (Aig.fanin0 aig n) in
      let c = lit_ref aig bars (Aig.fanin1 aig n) in
      addb "%s = AND(%s, %s)\n" (node_name aig n) a c);
  Array.iter
    (fun (name, l) ->
      let r = lit_ref aig bars l in
      addb "%s = BUFF(%s)\n" name r)
    (Aig.outputs aig);
  Hashtbl.iter (fun bar base -> add "%s = NOT(%s)\n" bar base) bars;
  Buffer.add_buffer b body;
  Buffer.contents b

let write oc aig = output_string oc (to_string aig)

(* ---------------- reading ---------------- *)

let of_string ?file text =
  let fail ~line fmt = Parse_error.fail ?file ~line fmt in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l ->
           let l =
             match String.index_opt l '#' with
             | Some j -> String.sub l 0 j
             | None -> l
           in
           (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let inputs = ref [] and outputs = ref [] and defs = ref [] in
  let parse_call ~line s =
    (* "OP(a, b, ...)" *)
    match String.index_opt s '(' with
    | None -> fail ~line "expected call, got %S" s
    | Some i ->
        let op = String.trim (String.sub s 0 i) in
        (match String.rindex_opt s ')' with
        | None -> fail ~line "unclosed call %S" s
        | Some close when close < i -> fail ~line "unclosed call %S" s
        | Some close ->
            let args = String.sub s (i + 1) (close - i - 1) in
            let args =
              String.split_on_char ',' args |> List.map String.trim
              |> List.filter (fun a -> a <> "")
            in
            (String.uppercase_ascii op, args))
  in
  List.iter
    (fun (line, text) ->
      match String.index_opt text '=' with
      | None ->
          let op, args = parse_call ~line text in
          (match (op, args) with
          | "INPUT", [ x ] -> inputs := x :: !inputs
          | "OUTPUT", [ x ] -> outputs := (line, x) :: !outputs
          | _ -> fail ~line "bad declaration %S" text)
      | Some i ->
          let name = String.trim (String.sub text 0 i) in
          let rhs = String.sub text (i + 1) (String.length text - i - 1) in
          defs := (name, line, parse_call ~line (String.trim rhs)) :: !defs)
    lines;
  let inputs = List.rev !inputs and outputs = List.rev !outputs in
  (* Size the graph from the parse: an m-input AND/OR chain is m-1 AND
     nodes and an m-input XOR/XNOR is 3(m-1), so 3*arity per definition
     is a safe upper bound.  Large external .bench files then build
     without repeated reallocation of the node arrays and strash. *)
  let n_est =
    List.fold_left
      (fun acc (_, _, (_, args)) -> acc + (3 * List.length args))
      (1 + List.length inputs)
      !defs
  in
  let g = Aig.create ~size_hint:n_est () in
  let signals = Hashtbl.create (max 64 n_est) in
  List.iter
    (fun name -> Hashtbl.replace signals name (Aig.add_input ~name g))
    inputs;
  let def_of = Hashtbl.create (max 64 (List.length !defs)) in
  List.iter (fun (n, line, d) -> Hashtbl.replace def_of n (line, d)) !defs;
  let rec signal ~line name =
    match Hashtbl.find_opt signals name with
    | Some l -> l
    | None -> (
        match Hashtbl.find_opt def_of name with
        | None -> fail ~line "undriven signal %s" name
        | Some (dline, (op, args)) ->
            let ins = List.map (signal ~line:dline) args in
            let l =
              match (op, ins) with
              | "AND", ls -> Aig.mk_and_list g ls
              | "NAND", ls -> Aig.lnot (Aig.mk_and_list g ls)
              | "OR", ls -> Aig.mk_or_list g ls
              | "NOR", ls -> Aig.lnot (Aig.mk_or_list g ls)
              | "XOR", l0 :: ls -> List.fold_left (Aig.mk_xor g) l0 ls
              | "XNOR", l0 :: ls ->
                  Aig.lnot (List.fold_left (Aig.mk_xor g) l0 ls)
              | "NOT", [ l ] -> Aig.lnot l
              | "BUFF", [ l ] | "BUF", [ l ] -> l
              | _ -> fail ~line:dline "bad gate %s" op
            in
            Hashtbl.replace signals name l;
            l)
  in
  List.iter
    (fun (line, name) -> Aig.add_output g name (signal ~line name))
    outputs;
  g

let read ?file ic = of_string ?file (In_channel.input_all ic)
