(* Arithmetic benchmark circuits. *)

(* n-bit ripple-carry adder: the paper's add-16/32/64 benchmarks
   (inputs: a, b, cin; outputs: n-bit sum + carry-out). *)
let adder n =
  let g = Aig.create ~size_hint:(16 * n) () in
  let a = Bitvec.inputs g "a" n in
  let b = Bitvec.inputs g "b" n in
  let cin = Aig.add_input ~name:"cin" g in
  let sum, cout = Bitvec.add g ~cin a b in
  Bitvec.outputs g "s" sum;
  Aig.add_output g "cout" cout;
  g

(* n x n array multiplier: C6288 is the 16 x 16 instance. *)
let multiplier n =
  let g = Aig.create ~size_hint:(12 * n * n) () in
  let a = Bitvec.inputs g "a" n in
  let b = Bitvec.inputs g "b" n in
  let p = Bitvec.mul g a b in
  (* C6288 exposes 32 product bits *)
  Bitvec.outputs g "p" p;
  g

(* Adder/subtractor with comparison flags. *)
let addsub n =
  let g = Aig.create ~size_hint:(32 * n) () in
  let a = Bitvec.inputs g "a" n in
  let b = Bitvec.inputs g "b" n in
  let sel = Aig.add_input ~name:"sub" g in
  let s_add, c_add = Bitvec.add g a b in
  let s_sub, c_sub = Bitvec.sub g a b in
  let s = Bitvec.mux g sel s_sub s_add in
  let c = Aig.mk_mux g sel c_sub c_add in
  Bitvec.outputs g "s" s;
  Aig.add_output g "cout" c;
  Aig.add_output g "zero" (Aig.lnot (Bitvec.reduce_or g s));
  Aig.add_output g "eq" (Bitvec.equal g a b);
  Aig.add_output g "lt" (Bitvec.ult g a b);
  g

(* Restoring array divider: one row per quotient bit, MSB first.  The
   partial remainder is shifted left by one (the next dividend bit enters
   at the LSB), the divisor is trial-subtracted at width n+1, and the
   no-borrow flag both becomes the quotient bit and selects between the
   difference and the unsubtracted value.  For d <> 0 the remainder stays
   < d, so the n low bits always hold it exactly; d = 0 yields q = all-ones
   and r = a's low bits (the conventional array-divider behavior).
   ~8 n^2 AND nodes — with the multiplier, the EPFL-style arithmetic
   workload for the million-node scale benches. *)
let divider n =
  let g = Aig.create ~size_hint:(10 * n * n) () in
  let a = Bitvec.inputs g "a" n in
  let d = Bitvec.inputs g "d" n in
  let dext = Array.append d [| Aig.lit_false |] in
  let q = Array.make n Aig.lit_false in
  let r = ref (Array.make n Aig.lit_false) in
  for i = n - 1 downto 0 do
    let rext = Array.append [| a.(i) |] !r in
    let diff, no_borrow = Bitvec.sub g rext dext in
    q.(i) <- no_borrow;
    r := Array.init n (fun j -> Aig.mk_mux g no_borrow diff.(j) rext.(j))
  done;
  Bitvec.outputs g "q" q;
  Bitvec.outputs g "r" !r;
  (* the trial subtraction's top difference bit is never consumed (only
     its borrow is); drop those dead chains so the graph is lint-clean *)
  Aig.cleanup g

(* Carry-select adder: blocks of [block] bits computed for both carry
   assumptions and selected by the incoming carry — a lower-depth
   alternative to the ripple structure (used by the depth ablations). *)
let carry_select_adder n ~block =
  if block <= 0 then invalid_arg "Arith.carry_select_adder";
  let g = Aig.create ~size_hint:(48 * n) () in
  let a = Bitvec.inputs g "a" n in
  let b = Bitvec.inputs g "b" n in
  let cin = Aig.add_input ~name:"cin" g in
  let sum = Array.make n Aig.lit_false in
  let carry = ref cin in
  let pos = ref 0 in
  while !pos < n do
    let w = min block (n - !pos) in
    let sa = Array.sub a !pos w and sb = Array.sub b !pos w in
    let s0, c0 = Bitvec.add g ~cin:Aig.lit_false sa sb in
    let s1, c1 = Bitvec.add g ~cin:Aig.lit_true sa sb in
    let sel = Bitvec.mux g !carry s1 s0 in
    Array.blit sel 0 sum !pos w;
    carry := Aig.mk_mux g !carry c1 c0;
    pos := !pos + w
  done;
  Bitvec.outputs g "s" sum;
  Aig.add_output g "cout" !carry;
  g
