(* Feistel-cipher datapath: the substitution for the MCNC "des" benchmark
   ("data encryption").  The structure is DES-shaped — expansion, key
   mixing, 6-to-4-bit S-boxes, permutation, Feistel XOR — with
   deterministic seeded S-box tables (the original tables carry no
   structural property a mapper could exploit; what matters for the
   benchmark is the XOR-rich Feistel skeleton and the random-logic
   S-boxes). *)

let sbox_table rng =
  Array.init 64 (fun _ -> Rand64.int rng 16)

(* A 6-input/4-output S-box as two-level logic over the table. *)
let sbox g table (bits : Aig.lit array) =
  Array.init 4 (fun o ->
      (* sum of minterms whose table entry has output bit o set *)
      let minterms = ref [] in
      for m = 0 to 63 do
        if table.(m) land (1 lsl o) <> 0 then begin
          let lits =
            List.init 6 (fun i ->
                if m land (1 lsl i) <> 0 then bits.(i) else Aig.lnot bits.(i))
          in
          minterms := Aig.mk_and_list g lits :: !minterms
        end
      done;
      Aig.mk_or_list g !minterms)

(* Expansion of 32 bits to 48 (DES E-box shape: 8 groups of 6 with
   overlap). *)
let expand (r : Aig.lit array) =
  let sel i = r.((i + 32) mod 32) in
  Array.init 48 (fun k ->
      let group = k / 6 and pos = k mod 6 in
      sel ((group * 4) - 1 + pos))

(* P-permutation: a fixed seeded permutation of 32 bits. *)
let permutation rng n =
  let p = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Rand64.int rng (i + 1) in
    let t = p.(i) in
    p.(i) <- p.(j);
    p.(j) <- t
  done;
  p

let feistel_round g rng (l, r) key =
  let e = expand r in
  let x = Array.map2 (Aig.mk_xor g) e key in
  let sboxed =
    Array.concat
      (List.init 8 (fun s ->
           let bits = Array.sub x (6 * s) 6 in
           sbox g (sbox_table rng) bits))
  in
  let p = permutation rng 32 in
  let f = Array.init 32 (fun i -> sboxed.(p.(i))) in
  let l' = r in
  let r' = Array.map2 (Aig.mk_xor g) l f in
  (l', r')

(* [rounds] Feistel rounds with independent round keys; outputs every
   round's right half plus the final state (245-ish outputs for 3 rounds at
   64-bit state like the original des benchmark's profile). *)
let feistel ~rounds () =
  let g = Aig.create ~size_hint:((2400 * rounds) + 1024) () in
  let rng = Rand64.create 0xDE5L in
  let l0 = Bitvec.inputs g "l" 32 in
  let r0 = Bitvec.inputs g "r" 32 in
  let keys = Array.init rounds (fun i -> Bitvec.inputs g (Printf.sprintf "k%d" i) 48) in
  let state = ref (l0, r0) in
  for i = 0 to rounds - 1 do
    state := feistel_round g rng !state keys.(i);
    let _, r = !state in
    Bitvec.outputs g (Printf.sprintf "t%d_" i) r
  done;
  let l, r = !state in
  Bitvec.outputs g "ol" l;
  Bitvec.outputs g "or" r;
  g

let des_like () = feistel ~rounds:3 ()
