(* Structured synthetic control logic: the substitution for the MCNC
   benchmarks i10, i18 and t481 ("Logic").  Deterministically seeded
   layered networks of mixed AND/OR/XOR/MUX operators — the XOR share is
   kept moderate, matching the paper's observation that these circuits gain
   less from the ambipolar library than the arithmetic ones. *)

type op = Oand | Oor | Oxor | Omux

(* Pick an operator with a bounded XOR share. *)
let pick_op rng xor_pct =
  let r = Rand64.int rng 100 in
  if r < xor_pct then Oxor
  else if r < xor_pct + 30 then Oand
  else if r < xor_pct + 60 then Oor
  else Omux

let random_lit rng pool =
  let l = pool.(Rand64.int rng (Array.length pool)) in
  if Rand64.bool rng then Aig.lnot l else l

let layered ~seed ~num_inputs ~num_outputs ~layers ~layer_width ~xor_pct () =
  let g = Aig.create ~size_hint:(8 * layers * layer_width) () in
  let rng = Rand64.create (Int64.of_int seed) in
  let inputs =
    Array.init num_inputs (fun i -> Aig.add_input ~name:(Printf.sprintf "x%d" i) g)
  in
  let pool = ref inputs in
  for _ = 1 to layers do
    let fresh =
      Array.init layer_width (fun _ ->
          let a = random_lit rng !pool
          and b = random_lit rng !pool in
          match pick_op rng xor_pct with
          | Oand -> Aig.mk_and g a b
          | Oor -> Aig.mk_or g a b
          | Oxor -> Aig.mk_xor g a b
          | Omux ->
              let s = random_lit rng !pool in
              Aig.mk_mux g s a b)
    in
    (* keep some earlier signals visible to later layers *)
    let keep =
      Array.init (Array.length !pool / 2) (fun _ -> random_lit rng !pool)
    in
    pool := Array.append fresh keep
  done;
  for o = 0 to num_outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" o) (random_lit rng !pool)
  done;
  (* pool nodes the random outputs never sampled are dead; drop them so the
     raw-graph statistics are meaningful *)
  Aig.cleanup g

let i10_like () =
  layered ~seed:10 ~num_inputs:257 ~num_outputs:224 ~layers:14
    ~layer_width:220 ~xor_pct:12 ()

let i18_like () =
  layered ~seed:18 ~num_inputs:133 ~num_outputs:81 ~layers:8
    ~layer_width:160 ~xor_pct:8 ()

(* A 16-input single-output decision function (t481's profile): a mux tree
   over 4 control bits selecting among products/xors of the remaining 12
   inputs. *)
let t481_like () =
  let g = Aig.create ~size_hint:4096 () in
  let x = Array.init 16 (fun i -> Aig.add_input ~name:(Printf.sprintf "x%d" i) g) in
  let rng = Rand64.create 481L in
  let ctrl = Array.sub x 0 4 in
  let rest = Array.sub x 4 12 in
  let leaf k =
    (* each selected case mixes the 12 data inputs differently *)
    let rng' = Rand64.create (Int64.of_int (k * 7919)) in
    let acc = ref (if k land 1 = 0 then Aig.lit_true else Aig.lit_false) in
    Array.iteri
      (fun i l ->
        let l = if Rand64.bool rng' then Aig.lnot l else l in
        acc :=
          (match (k + i) mod 3 with
          | 0 -> Aig.mk_and g !acc l
          | 1 -> Aig.mk_or g !acc l
          | _ -> Aig.mk_xor g !acc l))
      rest;
    !acc
  in
  ignore rng;
  let ways = Array.init 16 (fun k -> [| leaf k |]) in
  let out = Bitvec.mux_tree g ctrl ways in
  Aig.add_output g "y" out.(0);
  g
