type entry = {
  name : string;
  description : string;
  build : unit -> Aig.t;
}

let all =
  [
    { name = "C2670"; description = "ALU and control"; build = Alu.c2670_like };
    { name = "C1908"; description = "Error correcting"; build = Ecc.c1908_like };
    { name = "C3540"; description = "ALU and control"; build = Alu.c3540_like };
    { name = "dalu"; description = "Dedicated ALU"; build = Alu.dalu_like };
    { name = "C7552"; description = "ALU and control"; build = Alu.c7552_like };
    { name = "C6288"; description = "Multiplier";
      build = (fun () -> Arith.multiplier 16) };
    { name = "C5315"; description = "ALU and selector"; build = Alu.c5315_like };
    { name = "des"; description = "Data encryption"; build = Crypto.des_like };
    { name = "i10"; description = "Logic"; build = Logic_gen.i10_like };
    { name = "t481"; description = "Logic"; build = Logic_gen.t481_like };
    { name = "i18"; description = "Logic"; build = Logic_gen.i18_like };
    { name = "C1355"; description = "Error correcting"; build = Ecc.c1355_like };
    { name = "add-16"; description = "16-bit adder";
      build = (fun () -> Arith.adder 16) };
    { name = "add-32"; description = "32-bit adder";
      build = (fun () -> Arith.adder 32) };
    { name = "add-64"; description = "64-bit adder";
      build = (fun () -> Arith.adder 64) };
  ]

(* Parameterized scale entries, resolved by name: [add-N], [mult-N],
   [div-N], [addsub-N], [crypto-N] (N Feistel rounds).  The static suite
   above stays the paper's 15 benchmarks (and shadows the dynamic names it
   already uses, with identical builders); these exist so the drivers and
   bench harnesses can ask for million-node workloads — e.g. [mult-336] is
   ~10^6 AND nodes — without a combinatorial static list. *)
let dynamic name =
  match String.index_opt name '-' with
  | None -> None
  | Some i -> (
      let base = String.sub name 0 i in
      let arg = String.sub name (i + 1) (String.length name - i - 1) in
      match int_of_string_opt arg with
      | None -> None
      | Some n when n < 1 -> None
      | Some n -> (
          let mk description build = Some { name; description; build } in
          match base with
          | "add" when n <= 1 lsl 20 ->
              mk
                (Printf.sprintf "%d-bit adder" n)
                (fun () -> Arith.adder n)
          | "addsub" when n <= 1 lsl 18 ->
              mk
                (Printf.sprintf "%d-bit adder/subtractor" n)
                (fun () -> Arith.addsub n)
          | "mult" when n <= 1024 ->
              mk
                (Printf.sprintf "%dx%d multiplier" n n)
                (fun () -> Arith.multiplier n)
          | "div" when n <= 1024 ->
              mk
                (Printf.sprintf "%d-bit divider" n)
                (fun () -> Arith.divider n)
          | "crypto" when n <= 4096 ->
              mk
                (Printf.sprintf "%d-round Feistel cipher" n)
                (fun () -> Crypto.feistel ~rounds:n ())
          | _ -> None))

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None -> ( match dynamic name with Some e -> e | None -> raise Not_found)

let names = List.map (fun e -> e.name) all
