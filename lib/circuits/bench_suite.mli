(** The 15-benchmark suite of the paper's Table 3.

    The original ISCAS-85 / MCNC netlists are not redistributable here, so
    each entry is a structural generator of the same function class with a
    comparable interface profile (see DESIGN.md §3 for the substitution
    rationale).  Generators are deterministic: repeated calls build
    identical graphs. *)

type entry = {
  name : string;            (** the paper's benchmark name *)
  description : string;     (** Table 3's "Function" column *)
  build : unit -> Aig.t;
}

val all : entry list
(** In the paper's Table 3 order. *)

val find : string -> entry
(** Resolves a static suite name, or a parameterized scale entry:
    [add-N] / [addsub-N] (N-bit operands), [mult-N] / [div-N] (N-bit
    array multiplier / restoring divider, [N <= 1024]), [crypto-N]
    (N Feistel rounds).  [mult-336] is roughly a million AND nodes.
    Raises [Not_found] for anything else. *)

val names : string list
(** Static suite names only (dynamic entries are unbounded). *)
