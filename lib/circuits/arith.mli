(** Arithmetic benchmark circuits (Table 3's adders and multiplier). *)

val adder : int -> Aig.t
(** [adder n]: n-bit ripple-carry adder; inputs [a0..], [b0..], [cin],
    outputs [s0..], [cout] — the paper's add-16/32/64 benchmarks. *)

val multiplier : int -> Aig.t
(** [multiplier n]: n x n carry-save array multiplier (C6288 is the 16 x 16
    instance); outputs the [2n] product bits. *)

val divider : int -> Aig.t
(** [divider n]: n-bit restoring array divider; inputs [a0..] (dividend)
    and [d0..] (divisor), outputs [q0..] (quotient) and [r0..]
    (remainder).  For [d = 0] the quotient is all-ones.  ~8 n^2 AND
    nodes — the scale workload alongside {!multiplier}. *)

val addsub : int -> Aig.t
(** Adder/subtractor with zero/eq/lt flags (datapath building block). *)

val carry_select_adder : int -> block:int -> Aig.t
(** Carry-select adder: per-block dual sums selected by the incoming
    carry; same interface as {!adder}, lower depth, more area. *)
