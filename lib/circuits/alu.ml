(* ALU-and-control benchmark circuits: the substitutions for the ISCAS-85
   "ALU and control" benchmarks (C2670, C3540, C5315, C7552) and the MCNC
   "dalu".  All are parameterized word-level datapaths with operation
   decode, masking, comparison and parity — the function classes the
   original netlists implement. *)

(* Eight-operation ALU core over existing bit vectors. *)
let alu_core g a b cin sel =
  let sum, cadd = Bitvec.add g ~cin a b in
  let dif, csub = Bitvec.sub g a b in
  let ops =
    [|
      sum;                          (* 0: a + b + cin *)
      dif;                          (* 1: a - b *)
      Bitvec.band g a b;            (* 2 *)
      Bitvec.bor g a b;             (* 3 *)
      Bitvec.bxor g a b;            (* 4 *)
      Bitvec.bnot (Bitvec.bor g a b); (* 5: nor *)
      Array.init (Bitvec.width a) (fun i ->
          if i = 0 then cin else a.(i - 1));  (* 6: shift left *)
      Bitvec.bnot a;                (* 7 *)
    |]
  in
  let result = Bitvec.mux_tree g sel ops in
  let cout = Aig.mk_mux g sel.(0) csub cadd in
  (result, cout)

let flags g a b result cout =
  [
    ("cout", cout);
    ("zero", Aig.lnot (Bitvec.reduce_or g result));
    ("neg", result.(Bitvec.width result - 1));
    ("eq", Bitvec.equal g a b);
    ("lt", Bitvec.ult g a b);
    ("par", Bitvec.parity g result);
  ]

(* Masked ALU with control decode: C3540-like at width 16, dalu-like at
   width 18 (result-only outputs). *)
let alu ~width ~masked ~result_only () =
  let g = Aig.create ~size_hint:(256 * width) () in
  let a = Bitvec.inputs g "a" width in
  let b = Bitvec.inputs g "b" width in
  let m = if masked then Bitvec.inputs g "m" width else [||] in
  let sel = Bitvec.inputs g "sel" 3 in
  let cin = Aig.add_input ~name:"cin" g in
  let b = if masked then Bitvec.band g b m else b in
  let result, cout = alu_core g a b cin sel in
  Bitvec.outputs g "r" result;
  if not result_only then
    List.iter (fun (n, l) -> Aig.add_output g n l) (flags g a b result cout);
  (* [result_only] leaves cout and the non-result ALU ops dead; prune *)
  Aig.cleanup g

(* Wide ALU + selector + comparator + parity datapath: C2670/C5315/C7552
   class.  [banks] adds a (count x bank_width) selector unit. *)
let datapath ~width ~masked ~banks ~aux_compare ~parity_bytes () =
  let g = Aig.create ~size_hint:(512 * width) () in
  let a = Bitvec.inputs g "a" width in
  let b = Bitvec.inputs g "b" width in
  let m = if masked then Bitvec.inputs g "m" width else [||] in
  let bank_vecs =
    match banks with
    | None -> [||]
    | Some (count, w) ->
        Array.init count (fun i -> Bitvec.inputs g (Printf.sprintf "k%d" i) w)
  in
  let bank_sel =
    match banks with
    | None -> [||]
    | Some (count, _) ->
        let bits = max 1 (int_of_float (ceil (log (float_of_int count) /. log 2.0))) in
        Bitvec.inputs g "bs" bits
  in
  let cmp = if aux_compare > 0 then Bitvec.inputs g "c" aux_compare else [||] in
  let sel = Bitvec.inputs g "sel" 3 in
  let cin = Aig.add_input ~name:"cin" g in
  let b' = if masked then Bitvec.band g b m else b in
  let result, cout = alu_core g a b' cin sel in
  Bitvec.outputs g "r" result;
  List.iter (fun (n, l) -> Aig.add_output g n l) (flags g a b' result cout);
  (match banks with
  | None -> ()
  | Some (count, _) ->
      (* pad the ways to a power of two by wrapping around *)
      let bits = Bitvec.width bank_sel in
      let ways =
        Array.init (1 lsl bits) (fun i -> bank_vecs.(i mod count))
      in
      let chosen = Bitvec.mux_tree g bank_sel ways in
      (* selected bank combined with the ALU result slice *)
      let w = Bitvec.width chosen in
      let slice = Array.sub result 0 (min w width) in
      let combined =
        Bitvec.bxor g chosen (Array.append slice (Array.sub chosen (Array.length slice) (w - Array.length slice)))
      in
      Bitvec.outputs g "q" combined);
  if aux_compare > 0 then begin
    let half = aux_compare / 2 in
    let x = Array.sub cmp 0 half and y = Array.sub cmp half half in
    Aig.add_output g "ceq" (Bitvec.equal g x y);
    Aig.add_output g "clt" (Bitvec.ult g x y);
    Bitvec.outputs g "cx" (Bitvec.bxor g x y)
  end;
  if parity_bytes > 0 then
    for k = 0 to parity_bytes - 1 do
      let lo = k * width / parity_bytes in
      let hi = (k + 1) * width / parity_bytes in
      let byte = Array.sub result lo (hi - lo) in
      Aig.add_output g (Printf.sprintf "pb%d" k) (Bitvec.parity g byte)
    done;
  (* the wrapped-around mux ways and unused ALU ops leave dead nodes *)
  Aig.cleanup g

let c3540_like () = alu ~width:16 ~masked:true ~result_only:false ()
let dalu_like () = alu ~width:18 ~masked:true ~result_only:true ()

let c2670_like () =
  datapath ~width:64 ~masked:true ~banks:None ~aux_compare:32 ~parity_bytes:8 ()

let c5315_like () =
  datapath ~width:40 ~masked:false ~banks:(Some (4, 16)) ~aux_compare:16
    ~parity_bytes:4 ()

let c7552_like () =
  datapath ~width:56 ~masked:true ~banks:None ~aux_compare:28 ~parity_bytes:8 ()
