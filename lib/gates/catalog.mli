(** The gate catalog of the paper.

    Table 1: the 46 functions implementable with at most three transmission
    gates or transistors in series in each pull network of an ambipolar
    CNTFET gate.  The CMOS-expressible subset (same topology constraint,
    no XOR terms) is exactly {F00, F02, F03, F10, F11, F12, F13}. *)

type entry = {
  index : int;            (** 0..45 *)
  name : string;          (** "F00".."F45" *)
  spec : Gate_spec.expr;
}

val all : entry list
(** The 46 entries in index order. *)

val find : string -> entry
(** Lookup by name; raises [Not_found]. *)

val cmos_subset : entry list
(** Entries whose function needs no XOR term. *)

val is_cmos_expressible : entry -> bool

type function_match =
  | Exact of entry       (** same truth table, same variable roles *)
  | Complement of entry  (** complement of an entry's table *)
  | Npn_class of entry
      (** same NPN class (lowest-index member; NPN merges e.g. F02/F03) *)

val match_entry : function_match -> entry

val find_by_function : int64 -> function_match option
(** [find_by_function tt] names the catalog function a 6-variable
    replicated-word truth table implements, trying exact, complemented and
    NPN-class matches in that order; [None] for constants and tables
    outside every catalog class.  Used to identify {e function-morphing}
    faults (DESIGN.md §11). *)
