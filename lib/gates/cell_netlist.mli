(** Transistor-level cell netlists for every logic family of the paper.

    A cell is a pair of pull networks made of series/parallel compositions
    of switch elements.  Three element kinds exist:
    - a {e configured} ambipolar transistor (polarity set statically, the
      input drives the gate): on-resistance [R/w];
    - a {e transmission gate} (two ambipolar devices in parallel driven by
      complementary gate/polarity-gate signals): one device always conducts
      in its good direction, giving [2R/3] per unit device width;
    - a {e pass} ambipolar device whose polarity gate is driven by a signal
      (a one-transistor XOR switch): worst-case weak-direction resistance
      [2R/w];
    - a CMOS transistor: [R/w] for n-type, [2R/w] for p-type (hole
      mobility), whereas CNTFET p- and n-devices are equal.

    Sizing follows Sec. 4 of the paper: every root-to-rail path of a static
    pull network is sized for the drive of a unit inverter; pseudo families
    size the pull-down for conductance 4/3 and use an always-on weak
    pull-up of conductance 1/3 (net worst-case drive 1, ratio 4). *)

type family =
  | Tg_static     (** transmission-gate static (the paper's main family) *)
  | Tg_pseudo     (** transmission-gate pseudo logic *)
  | Pass_pseudo   (** pass-transistor pseudo logic *)
  | Pass_static   (** pass-transistor static + restoring inverter (Sec 3.2) *)
  | Cmos          (** reference static CMOS *)

val family_name : family -> string
val all_families : family list

type signal = { v : int; ph : bool }

type kind =
  | Configured        (** polarity fixed in-field; good direction *)
  | Pass              (** polarity gate driven by a signal; may be weak *)
  | Cmos_n
  | Cmos_p

type device = {
  kind : kind;
  gate : signal;            (** signal driving the gate terminal *)
  polgate : signal option;  (** driven polarity gate (TG halves, pass XOR) *)
  on : bool;                (** single-control devices conduct when the raw
                                input variable equals [on] *)
  width : float;
}

type net =
  | D of device
  | T of device * device  (** transmission gate: complementary pair *)
  | S of net list         (** series, head adjacent to the output *)
  | P of net list

type cell = {
  family : family;
  spec : Gate_spec.expr;
  pull_up : net option;   (** [None] for pseudo families *)
  pull_down : net;
  bias_width : float;     (** weak pull-up width (pseudo), else 0 *)
  restoring_inverter : bool;  (** pass-static output stage *)
}

val res_factor : kind -> float
(** Worst-direction resistance factor of a unit-width device: 1 for a
    configured ambipolar or n-type CMOS device, 2 for a driven-polarity
    pass device or p-type CMOS device. *)

val elaborate : family -> Gate_spec.expr -> cell
(** Builds and sizes the cell.  For [Cmos] the expression must contain no
    XOR term. *)

val devices : cell -> device list
(** All devices of the pull networks (bias and restoring inverter excluded;
    see {!num_transistors}). *)

val num_transistors : cell -> int
val area : cell -> float
(** Normalized area: sum of W/L over every transistor, restoring inverter
    and bias included. *)

val top_cap : net -> float
(** Capacitance presented to the adjacent node (one drain per device). *)

val resistance : net -> float
(** Worst-case switch resistance of a sized network (single conducting
    path assumption for parallel branches). *)

val signal_value : (int -> bool) -> signal -> bool
(** Value of a signal under a raw-variable assignment. *)

val device_conducts : device -> (int -> bool) -> bool

val net_conducts : net -> (int -> bool) -> bool
(** Whether the network conducts under an assignment of the raw input
    variables; transmission gates and pass devices conduct when their gate
    and polarity-gate signal values differ. *)

val pp_cell : Format.formatter -> cell -> unit
