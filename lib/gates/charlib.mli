(** Switch-level RC characterization of library cells (Sec. 4.1–4.3).

    The model the paper reports with:
    - every gate is sized to drive the current of a unit inverter
      ({!Cell_netlist} handles sizing);
    - the FO4 delay of input pin [s] is
      [R_path * (C_par + 4 * C_in(s)) / C_inv], where [C_par] is the
      parasitic capacitance on the output node (one drain per adjacent
      device), [C_in(s)] the capacitance the signal drives (gate and
      polarity-gate capacitances assumed equal), and [C_inv] the input
      capacitance of a unit inverter (2 for CNTFETs — equal n/p widths — and
      3 for CMOS);
    - the worst case maximizes over input signals and transitions, the
      average averages the per-variable worst over the gate's variables;
    - normalized delays convert to picoseconds with the technology constants
      τ1 = 0.59 ps (CNTFET) and τ2 = 3.00 ps (CMOS) from Deng et al. [1].

    Beyond the fixed FO4 numbers, every row carries a {!timing} record — the
    per-pin capacitance table and the output {!drive} — from which the delay
    at an {e arbitrary} capacitive load is computed with {!drive_delay}.
    This is what the STA subsystem ({!module:Sta}) and the mapper's timing
    mode consume; the FO4 columns are exactly [drive_delay] evaluated at
    [load = 4 * C_in(pin)]. *)

type drive = {
  rs : float array;
      (** worst-case path resistance of each transition (static: pull-up
          then pull-down; pseudo: weak rise then ratioed fall) *)
  avg : bool;
      (** ratioed pseudo families average the transitions; static families
          take the worst *)
  c_par : float;  (** parasitic capacitance on the driving node *)
  cin_ref : float;  (** normalizing inverter input capacitance *)
  second_stage : float option;
      (** [Some c2] when the output is restored through a unit inverter of
          input capacitance [c2]: the cell's networks drive [c_par + c2],
          the inverter (R = 1, parasitic 2) drives the external load *)
}

type timing = {
  pin_caps : float array;
      (** per-variable input capacitance, worst over the two phases *)
  drive : drive;
}

type row = {
  name : string;
  family : Cell_netlist.family;
  spec : Gate_spec.expr;
  transistors : int;
  area : float;
  fo4_worst : float;
  fo4_avg : float;
  timing : timing;
}

val tau_ps : Cell_netlist.family -> float
(** Technology-dependent intrinsic delay of a fanout-1 inverter. *)

val inverter_cin : Cell_netlist.family -> float

val drive_delay : drive -> load:float -> float
(** Normalized delay of the cell driving [load] units of capacitance.
    [drive_delay d ~load:(4.0 *. c_in)] is the FO4 delay of the pin with
    input capacitance [c_in]. *)

val cell_timing : Cell_netlist.family -> Cell_netlist.cell -> timing
(** Pin-capacitance table and output drive of an elaborated cell. *)

val characterize : Cell_netlist.family -> Catalog.entry -> row

val characterize_catalog : Cell_netlist.family -> row list
(** Every catalog entry the family can implement (the full 46 for CNTFET
    families, the 7-entry subset for CMOS). *)

val input_cap : Cell_netlist.cell -> Cell_netlist.signal -> float
val output_parasitic : Cell_netlist.cell -> float

val averages : row list -> float * float * float * float
(** [(transistors, area, fo4_worst, fo4_avg)] averaged over the rows. *)

val with_output_inverter : row -> row
(** The paper appends an output inverter to every cell so both output
    polarities are available; this adds the inverter's transistors, area,
    and average FO4 contribution (Table 2, penultimate row).  The drive
    model becomes the two-stage one unless the cell is already buffered. *)
