open Gate_spec

type entry = { index : int; name : string; spec : Gate_spec.expr }

(* Variable conventions of Table 1: A=0, B=1, C=2, D=3, E=4, F=5. *)
let a = 0
and b = 1
and c = 2
and d = 3
and e = 4
and f = 5

let specs =
  [|
    (* F00 *) lit a;
    (* F01 *) a ^: b;
    (* F02 *) Or [ lit a; lit b ];
    (* F03 *) And [ lit a; lit b ];
    (* F04 *) Or [ a ^: b; lit c ];
    (* F05 *) And [ a ^: b; lit c ];
    (* F06 *) Or [ a ^: b; a ^: c ];
    (* F07 *) And [ a ^: b; a ^: c ];
    (* F08 *) Or [ a ^: b; c ^: d ];
    (* F09 *) And [ a ^: b; c ^: d ];
    (* F10 *) Or [ lit a; lit b; lit c ];
    (* F11 *) And [ Or [ lit a; lit b ]; lit c ];
    (* F12 *) Or [ lit a; And [ lit b; lit c ] ];
    (* F13 *) And [ lit a; lit b; lit c ];
    (* F14 *) Or [ a ^: d; lit b; lit c ];
    (* F15 *) Or [ a ^: d; b ^: d; lit c ];
    (* F16 *) Or [ a ^: d; b ^: d; c ^: d ];
    (* F17 *) And [ Or [ a ^: d; lit b ]; lit c ];
    (* F18 *) And [ Or [ a ^: d; b ^: d ]; lit c ];
    (* F19 *) And [ Or [ a ^: d; lit b ]; c ^: d ];
    (* F20 *) And [ Or [ a ^: d; b ^: d ]; c ^: d ];
    (* F21 *) And [ Or [ lit a; lit b ]; c ^: d ];
    (* F22 *) Or [ a ^: d; And [ lit b; lit c ] ];
    (* F23 *) Or [ lit a; And [ b ^: d; lit c ] ];
    (* F24 *) Or [ a ^: d; And [ b ^: d; lit c ] ];
    (* F25 *) Or [ lit a; And [ b ^: d; c ^: d ] ];
    (* F26 *) Or [ a ^: d; And [ b ^: d; c ^: d ] ];
    (* F27 *) And [ a ^: d; lit b; lit c ];
    (* F28 *) And [ a ^: d; b ^: d; lit c ];
    (* F29 *) And [ a ^: d; b ^: d; c ^: d ];
    (* F30 *) Or [ a ^: d; b ^: e; lit c ];
    (* F31 *) Or [ a ^: d; b ^: d; c ^: e ];
    (* F32 *) And [ Or [ a ^: d; b ^: e ]; lit c ];
    (* F33 *) And [ Or [ a ^: d; lit b ]; c ^: e ];
    (* F34 *) And [ Or [ a ^: d; b ^: d ]; c ^: e ];
    (* F35 *) And [ Or [ a ^: d; b ^: e ]; c ^: d ];
    (* F36 *) Or [ a ^: d; And [ b ^: e; lit c ] ];
    (* F37 *) Or [ lit a; And [ b ^: d; c ^: e ] ];
    (* F38 *) Or [ a ^: d; And [ b ^: e; c ^: e ] ];
    (* F39 *) Or [ a ^: d; And [ b ^: e; c ^: d ] ];
    (* F40 *) And [ a ^: d; b ^: e; lit c ];
    (* F41 *) And [ a ^: d; b ^: d; c ^: e ];
    (* F42 *) Or [ a ^: d; b ^: e; c ^: f ];
    (* F43 *) And [ Or [ a ^: d; b ^: e ]; c ^: f ];
    (* F44 *) Or [ a ^: d; And [ b ^: e; c ^: f ] ];
    (* F45 *) And [ a ^: d; b ^: e; c ^: f ];
  |]

let all =
  Array.to_list
    (Array.mapi
       (fun i spec -> { index = i; name = Printf.sprintf "F%02d" i; spec })
       specs)

let find name = List.find (fun e -> e.name = name) all

let is_cmos_expressible e = Gate_spec.num_xors e.spec = 0
let cmos_subset = List.filter is_cmos_expressible all

(* ---- reverse lookup: which catalog function is this truth table? ----

   Used by the fault analyzer to name the function a defective cell has
   morphed into.  Three confidence levels, tried in order: the exact table
   (same variable roles), its complement, then the NPN class (note that NPN
   merges some catalog entries, e.g. F02/F03 are one class; the class hit
   reports the lowest-index member). *)

type function_match = Exact of entry | Complement of entry | Npn_class of entry

let match_entry = function
  | Exact e | Complement e | Npn_class e -> e

let lookup_tables =
  lazy
    (let exact = Hashtbl.create 97 in
     let compl_ = Hashtbl.create 97 in
     let npn = Hashtbl.create 97 in
     List.iter
       (fun e ->
         let tt = Gate_spec.tt6 e.spec in
         if not (Hashtbl.mem exact tt) then Hashtbl.add exact tt e;
         if not (Hashtbl.mem compl_ (Int64.lognot tt)) then
           Hashtbl.add compl_ (Int64.lognot tt) e;
         let small, sup = Npn.shrink tt 6 in
         let k = Array.length sup in
         let key = (k, Npn.canonical_cached k small) in
         if not (Hashtbl.mem npn key) then Hashtbl.add npn key e)
       all;
     (exact, compl_, npn))

let find_by_function tt =
  let exact, compl_, npn = Lazy.force lookup_tables in
  match Hashtbl.find_opt exact tt with
  | Some e -> Some (Exact e)
  | None -> (
      match Hashtbl.find_opt compl_ tt with
      | Some e -> Some (Complement e)
      | None ->
          let small, sup = Npn.shrink tt 6 in
          let k = Array.length sup in
          if k = 0 then None
          else
            Option.map
              (fun e -> Npn_class e)
              (Hashtbl.find_opt npn (k, Npn.canonical_cached k small)))
