open Cell_netlist

type drive = {
  rs : float array;
  avg : bool;
  c_par : float;
  cin_ref : float;
  second_stage : float option;
}

type timing = { pin_caps : float array; drive : drive }

type row = {
  name : string;
  family : Cell_netlist.family;
  spec : Gate_spec.expr;
  transistors : int;
  area : float;
  fo4_worst : float;
  fo4_avg : float;
  timing : timing;
}

let tau_ps = function Cmos -> 3.00 | _ -> 0.59
let inverter_cin = function Cmos -> 3.0 | _ -> 2.0
let inverter_area = function Cmos -> 3.0 | _ -> 2.0

let output_parasitic (c : cell) =
  (match c.pull_up with Some n -> top_cap n | None -> c.bias_width)
  +. top_cap c.pull_down

let cap_table (c : cell) =
  let caps : (signal, float) Hashtbl.t = Hashtbl.create 16 in
  let add s w =
    let cur = try Hashtbl.find caps s with Not_found -> 0.0 in
    Hashtbl.replace caps s (cur +. w)
  in
  List.iter
    (fun d ->
      add d.gate d.width;
      match d.polgate with Some pg -> add pg d.width | None -> ())
    (devices c);
  caps

let input_cap c s =
  match Hashtbl.find_opt (cap_table c) s with Some x -> x | None -> 0.0

(* Worst-case path resistances of the cell's transitions. *)
let transition_resistances (c : cell) =
  match c.family with
  | Tg_static | Pass_static | Cmos ->
      [ (match c.pull_up with
        | Some pu -> resistance pu
        | None -> assert false);
        resistance c.pull_down ]
  | Tg_pseudo | Pass_pseudo ->
      (* rising through the weak always-on pull-up, falling through the
         pull-down fighting it (net conductance 4/3 - 1/3 = 1) *)
      [ 1.0 /. c.bias_width; 1.0 ]

(* Resistance-weighted capacitance term of the first stage.  Static
   families take the worst transition (rise and fall are sized equal
   anyway); ratioed pseudo families report the rise/fall average, which is
   what Table 2's numbers correspond to (effective R of 2 between the weak
   pull-up's 3 and the fighting pull-down's 1). *)
let stage_delay d cap =
  if d.avg then
    Array.fold_left (fun a r -> a +. (r *. cap)) 0.0 d.rs
    /. float_of_int (Array.length d.rs)
  else Array.fold_left (fun a r -> max a (r *. cap)) 0.0 d.rs

let drive_delay d ~load =
  match d.second_stage with
  | Some c2 ->
      (* first stage drives the restoring inverter; the inverter (unit,
         R = 1, parasitic 2) drives the load *)
      (stage_delay d (d.c_par +. c2) +. (2.0 +. load)) /. d.cin_ref
  | None -> stage_delay d (d.c_par +. load) /. d.cin_ref

let cell_timing family (c : cell) =
  let caps = cap_table c in
  let vars = Gate_spec.vars c.spec in
  let arity = 1 + List.fold_left max 0 vars in
  let pin_caps = Array.make arity 0.0 in
  (* A pin's effective capacitance is the worst over its two phases (true
     and complemented rails are routed separately; the delay model keys on
     the heavier one, matching the per-variable worst of Table 2). *)
  Hashtbl.iter
    (fun s cap -> if s.v < arity then pin_caps.(s.v) <- max pin_caps.(s.v) cap)
    caps;
  let drive =
    {
      rs = Array.of_list (transition_resistances c);
      avg =
        (match c.family with Tg_pseudo | Pass_pseudo -> true | _ -> false);
      c_par = output_parasitic c;
      cin_ref = inverter_cin family;
      second_stage = (if c.restoring_inverter then Some 2.0 else None);
    }
  in
  { pin_caps; drive }

let characterize family (entry : Catalog.entry) =
  let c = elaborate family entry.Catalog.spec in
  let timing = cell_timing family c in
  let fo4_of_pin v =
    drive_delay timing.drive ~load:(4.0 *. timing.pin_caps.(v))
  in
  let vars = Gate_spec.vars entry.Catalog.spec in
  let fo4_worst = List.fold_left (fun a v -> max a (fo4_of_pin v)) 0.0 vars in
  let fo4_avg =
    List.fold_left (fun a v -> a +. fo4_of_pin v) 0.0 vars
    /. float_of_int (List.length vars)
  in
  {
    name = entry.Catalog.name;
    family;
    spec = entry.Catalog.spec;
    transistors = num_transistors c;
    area = area c;
    fo4_worst;
    fo4_avg;
    timing;
  }

let characterize_catalog family =
  let entries =
    match family with Cmos -> Catalog.cmos_subset | _ -> Catalog.all
  in
  List.map (characterize family) entries

let averages rows =
  let n = float_of_int (List.length rows) in
  let t, a, w, v =
    List.fold_left
      (fun (t, a, w, v) r ->
        (t +. float_of_int r.transistors, a +. r.area, w +. r.fo4_worst,
         v +. r.fo4_avg))
      (0.0, 0.0, 0.0, 0.0) rows
  in
  (t /. n, a /. n, w /. n, v /. n)

let with_output_inverter r =
  (* Appending the unit inverter: +2 transistors, + inverter area; the
     inverter input adds parasitic load on the cell (one more FO1-ish term)
     — a first-order documented approximation kept in the fo4 fields.  The
     drive model is the honest two-stage one: the cell's own networks drive
     the inverter's input capacitance, the inverter drives the load. *)
  let cin_ref = inverter_cin r.family in
  let extra = (inverter_cin r.family +. 2.0) /. cin_ref in
  let timing =
    let d = r.timing.drive in
    let drive =
      match d.second_stage with
      | None -> { d with second_stage = Some (inverter_cin r.family) }
      | Some _ ->
          (* already buffered (pass-static); the extra inverter's fo4 term
             is folded into the fixed fields above *)
          d
    in
    { r.timing with drive }
  in
  {
    r with
    transistors = r.transistors + 2;
    area = r.area +. inverter_area r.family;
    fo4_worst = r.fo4_worst +. extra;
    fo4_avg = r.fo4_avg +. extra;
    timing;
  }
