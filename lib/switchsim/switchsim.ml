open Cell_netlist

type level = L0 | L1
type strength = Strong | Degraded
type drive = Driven of level * strength | Floating | Contention

(* ---------------- fault models ---------------- *)

module Fault = struct
  type device_fault =
    | Stuck_open
    | Stuck_short
    | Pol_stuck of bool

  type t =
    | Device of int * device_fault
    | Short of int

  (* Both the site enumeration and the faulty evaluator traverse the cell
     the same way — pull-up first (when present), then pull-down, each in
     pre-order — and assign two id streams: device ids (D contributes one,
     T contributes two, first the d1 half) and net-node ids (every D/T/S/P
     constructor).  The invariant that ties the two traversals together is
     local to this module. *)

  type site_info = {
    si_region : [ `Pu | `Pd ];
    si_dev : (int * Cell_netlist.device) option;  (* device sites *)
    si_node : (int * string) option;              (* composite-node sites *)
  }

  let traverse (c : cell) =
    let dev = ref 0 and node = ref 0 in
    let acc = ref [] in
    let rec go region n =
      let nid = !node in
      incr node;
      match n with
      | D d ->
          let id = !dev in
          incr dev;
          acc := { si_region = region; si_dev = Some (id, d); si_node = None }
                 :: !acc
      | T (d1, d2) ->
          let id1 = !dev in
          incr dev;
          let id2 = !dev in
          incr dev;
          acc :=
            { si_region = region; si_dev = None; si_node = Some (nid, "TG") }
            :: { si_region = region; si_dev = Some (id2, d2); si_node = None }
            :: { si_region = region; si_dev = Some (id1, d1); si_node = None }
            :: !acc
      | S es ->
          acc := { si_region = region; si_dev = None;
                   si_node = Some (nid, "series") } :: !acc;
          List.iter (go region) es
      | P es ->
          acc := { si_region = region; si_dev = None;
                   si_node = Some (nid, "par") } :: !acc;
          List.iter (go region) es
    in
    (match c.pull_up with Some pu -> go `Pu pu | None -> ());
    go `Pd c.pull_down;
    List.rev !acc

  let sites (c : cell) =
    let infos = traverse c in
    let dev_faults =
      List.concat_map
        (fun i ->
          match i.si_dev with
          | None -> []
          | Some (id, d) ->
              [ Device (id, Stuck_open); Device (id, Stuck_short) ]
              @ (match d.polgate with
                | Some _ -> [ Device (id, Pol_stuck false);
                              Device (id, Pol_stuck true) ]
                | None -> []))
        infos
    in
    let shorts =
      List.filter_map
        (fun i ->
          match i.si_node with Some (id, _) -> Some (Short id) | None -> None)
        infos
    in
    dev_faults @ shorts

  let describe (c : cell) f =
    let infos = traverse c in
    let region r = match r with `Pu -> "PU" | `Pd -> "PD" in
    match f with
    | Device (id, df) -> (
        let kind =
          match df with
          | Stuck_open -> "stuck-open"
          | Stuck_short -> "stuck-short"
          | Pol_stuck false -> "polarity-gate stuck-at-n"
          | Pol_stuck true -> "polarity-gate stuck-at-p"
        in
        match
          List.find_opt
            (fun i -> match i.si_dev with
              | Some (d, _) -> d = id
              | None -> false)
            infos
        with
        | Some ({ si_dev = Some (_, d); _ } as i) ->
            let ctrl =
              match d.polgate with
              | Some pg ->
                  Printf.sprintf "G=%s%s,PG=%s%s"
                    (Gate_spec.var_name d.gate.v)
                    (if d.gate.ph then "" else "'")
                    (Gate_spec.var_name pg.v)
                    (if pg.ph then "" else "'")
              | None ->
                  Printf.sprintf "G=%s%s" (Gate_spec.var_name d.gate.v)
                    (if d.on then "" else "'")
            in
            Printf.sprintf "%s dev%d(%s) %s" (region i.si_region) id ctrl kind
        | _ -> Printf.sprintf "dev%d %s (unknown site)" id kind)
    | Short id -> (
        match
          List.find_opt
            (fun i -> match i.si_node with
              | Some (n, _) -> n = id
              | None -> false)
            infos
        with
        | Some ({ si_node = Some (_, k); _ } as i) ->
            Printf.sprintf "%s %s node%d bridged" (region i.si_region) k id
        | _ -> Printf.sprintf "node%d bridged (unknown site)" id)
end

(* ---------------- switch-level evaluation ---------------- *)

(* Effective polarity of a device whose polarity gate is driven: PG = 0
   configures n-type, PG = 1 configures p-type (Fig. 1d).  An n-type device
   passes 0 strongly and 1 weakly; p-type the other way around.  Devices
   with a statically configured polarity are always placed in their good
   direction by construction. *)
let polarity_strength is_p level =
  match (level, is_p) with
  | L1, true | L0, false -> Strong
  | L1, false | L0, true -> Degraded

let device_strength d bits level =
  match d.polgate with
  | None -> Strong
  | Some pg -> polarity_strength (signal_value bits pg) level

(* Mutable id streams threading the Fault-module numbering through an
   evaluation.  The traversal below visits every device and node
   unconditionally (no short-circuiting), so the ids are deterministic. *)
type eval_state = { mutable dev : int; mutable node : int }

(* (conducts, best strength among conducting paths) of one device, with an
   optional fault applied to it *)
let device_drive st fault d bits level =
  let id = st.dev in
  st.dev <- st.dev + 1;
  let fault_here =
    match fault with
    | Some (Fault.Device (i, df)) when i = id -> Some df
    | _ -> None
  in
  match fault_here with
  | Some Fault.Stuck_open -> (false, Degraded)
  | Some Fault.Stuck_short -> (true, Strong)
  | Some (Fault.Pol_stuck p) when d.polgate <> None ->
      let conducts = signal_value bits d.gate <> p in
      (conducts,
       if conducts then polarity_strength p level else Degraded)
  | Some (Fault.Pol_stuck _) | None ->
      if device_conducts d bits then (true, device_strength d bits level)
      else (false, Degraded)

let rec net_drive_f st fault n bits level =
  let nid = st.node in
  st.node <- st.node + 1;
  let shorted =
    match fault with Some (Fault.Short i) -> i = nid | _ -> false
  in
  let result =
    match n with
    | D d -> device_drive st fault d bits level
    | T (d1, d2) ->
        let c1, s1 = device_drive st fault d1 bits level in
        let c2, s2 = device_drive st fault d2 bits level in
        if not (c1 || c2) then (false, Degraded)
        else
          let s1 = if c1 then s1 else Degraded in
          let s2 = if c2 then s2 else Degraded in
          (true, if s1 = Strong || s2 = Strong then Strong else Degraded)
    | S es ->
        List.fold_left
          (fun (c, s) e ->
            let ce, se = net_drive_f st fault e bits level in
            (c && ce, if se = Degraded then Degraded else s))
          (true, Strong) es
    | P es ->
        let results =
          List.map (fun e -> net_drive_f st fault e bits level) es
        in
        let conducts = List.exists fst results in
        let strong = List.exists (fun (c, s) -> c && s = Strong) results in
        (conducts, if strong then Strong else Degraded)
  in
  if shorted then (true, Strong) else result

let stage_output_with fault (c : cell) bits =
  let st = { dev = 0; node = 0 } in
  match c.pull_up with
  | Some pu -> (
      let up, sup = net_drive_f st fault pu bits L1 in
      let dn, sdn = net_drive_f st fault c.pull_down bits L0 in
      match (up, dn) with
      | true, true -> Contention
      | false, false -> Floating
      | true, false -> Driven (L1, sup)
      | false, true -> Driven (L0, sdn))
  | None ->
      (* ratioed pseudo logic: pull-down fights the weak always-on bias *)
      let dn, sdn = net_drive_f st fault c.pull_down bits L0 in
      if dn then Driven (L0, sdn) else Driven (L1, Strong)

let cell_output_with ?fault (c : cell) bits =
  let s = stage_output_with fault c bits in
  if not c.restoring_inverter then s
  else
    match s with
    | Driven (L0, _) -> Driven (L1, Strong)
    | Driven (L1, _) -> Driven (L0, Strong)
    | other -> other

let cell_output (c : cell) bits = cell_output_with c bits

let logic_value_with ?fault c bits =
  match cell_output_with ?fault c bits with
  | Driven (L1, _) -> Some true
  | Driven (L0, _) -> Some false
  | Floating | Contention -> None

let logic_value c bits = logic_value_with c bits

let for_all_assignments (c : cell) f =
  let n = Gate_spec.arity c.spec in
  let ok = ref true in
  for a = 0 to (1 lsl n) - 1 do
    if not (f a (fun v -> a land (1 lsl v) <> 0)) then ok := false
  done;
  !ok

let full_swing c =
  for_all_assignments c (fun _ bits ->
      match cell_output c bits with
      | Driven (_, Strong) -> true
      | Driven (_, Degraded) | Floating | Contention -> false)

let inverting (c : cell) =
  match c.family with
  | Tg_static -> false
  | Pass_static -> true (* restored node carries the complement *)
  | Tg_pseudo | Pass_pseudo | Cmos -> true

let check_function c =
  let inv = inverting c in
  for_all_assignments c (fun _ bits ->
      match logic_value c bits with
      | None -> false
      | Some v -> v = (Gate_spec.eval c.spec bits <> inv))

(* ---------------- dynamic GNOR (Sec. 3, Fig. 2) ---------------- *)

module Dynamic = struct
  type term = { input : bool; control : bool }

  (* The dynamic GNOR's pull-down is a parallel bank of single ambipolar
     devices: gate = input, polarity gate = control; a device conducts iff
     input <> control and is n-type (strong pull-down) iff the control is
     low.  The output is precharged high and discharges through whatever
     conducts during evaluation — the paper's problem case is every
     conducting device configured p-type (all controls high), which only
     pulls the output to ~|VTp| above ground. *)
  let gnor terms =
    let conducting =
      List.filter (fun t -> t.input <> t.control) terms
    in
    if conducting = [] then Driven (L1, Strong) (* stays precharged *)
    else if List.exists (fun t -> not t.control) conducting then
      Driven (L0, Strong)
    else Driven (L0, Degraded)

  (* Value of the gate seen as Y = OR of (input XOR control) terms, at the
     discharge node (inverting). *)
  let value terms =
    match gnor terms with
    | Driven (L0, _) -> false
    | Driven (L1, _) -> true
    | Floating | Contention -> assert false

  (* Does some input assignment degrade the output?  True for any GNOR with
     at least one term — the weakness that motivates the transmission-gate
     static family (Sec. 3.1). *)
  let has_degraded_assignment nterms =
    nterms >= 1
    &&
    (* all controls high, all inputs low: every device conducts as p-type *)
    let terms =
      List.init nterms (fun _ -> { input = false; control = true })
    in
    gnor terms = Driven (L0, Degraded)
end
