(** Switch-level simulation of cell netlists with signal-strength tracking.

    This substitutes for the paper's SPICE runs (Sec. 4): it verifies the
    logic function of every elaborated cell and, crucially, reproduces the
    Sec. 3 argument about output levels — an ambipolar device passing a
    level in its weak direction only reaches [VDD - VTn] (or [|VTp|]), so a
    path whose every branch crosses such a device yields a {e degraded}
    level, while transmission gates always provide one strong branch and
    hence full swing. *)

type level = L0 | L1

type strength =
  | Strong    (** full swing: some conducting path passes strongly *)
  | Degraded  (** every conducting path crosses a weak-direction device *)

type drive =
  | Driven of level * strength
  | Floating     (** neither network conducts (dynamic nodes) *)
  | Contention   (** both networks conduct — a design error *)

(** Transistor-level defect models over a cell netlist (DESIGN.md §11).
    Sites are addressed positionally: device ids follow
    {!Cell_netlist.devices} order (pull-up pre-order then pull-down; a
    transmission gate contributes its two halves in order), node ids number
    every series/parallel/TG tree node in the same traversal. *)
module Fault : sig
  type device_fault =
    | Stuck_open
        (** the tube never conducts (open CNT); a conducting path through it
            is lost *)
    | Stuck_short
        (** source–drain short (metallic CNT): conducts strongly whatever the
            gates say *)
    | Pol_stuck of bool
        (** ambipolar polarity gate stuck: [false] = stuck-at-n, [true] =
            stuck-at-p.  The device keeps switching on its signal gate but
            with a frozen polarity — conduction condition {e and} strong
            direction both change.  Only meaningful on devices with a driven
            polarity gate; enumerated only for those. *)

  type t =
    | Device of int * device_fault  (** fault on one device, by id *)
    | Short of int
        (** bridge across a composite net node (TG / series / parallel
            sub-network shorted end to end), by node id *)

  val sites : Cell_netlist.cell -> t list
  (** Every modeled fault site of the cell, deterministically ordered:
      device faults in device order (open, short, then the two polarity
      stuck-ats where applicable), then bridges in node order. *)

  val describe : Cell_netlist.cell -> t -> string
  (** Human-readable site description, e.g.
      ["PU dev3(G=a,PG=b') polarity-gate stuck-at-p"]. *)
end

val cell_output : Cell_netlist.cell -> (int -> bool) -> drive
(** Output of a cell under a raw-input assignment.  Pseudo cells never
    float (the weak pull-up is always on); cells with a restoring inverter
    report the restored (always strong) level. *)

val cell_output_with :
  ?fault:Fault.t -> Cell_netlist.cell -> (int -> bool) -> drive
(** [cell_output] with one fault injected ([?fault:None] is exactly
    [cell_output] — asserted by a property test over the whole catalog).
    Faulty cells may float or contend where the good cell never does. *)

val logic_value : Cell_netlist.cell -> (int -> bool) -> bool option
(** Just the Boolean value ([None] on [Floating]/[Contention]).  Note that
    pseudo and CMOS single-stage cells are inverting: this is the value at
    the cell's output node, to be compared against the spec or its
    complement according to the family. *)

val logic_value_with :
  ?fault:Fault.t -> Cell_netlist.cell -> (int -> bool) -> bool option
(** [logic_value] under an injected fault. *)

val inverting : Cell_netlist.cell -> bool
(** Whether the cell's output node carries the complement of its spec:
    true for pseudo, CMOS and restored pass-static cells, false for the
    transmission-gate static family. *)

val full_swing : Cell_netlist.cell -> bool
(** True when every input assignment yields a strongly driven output. *)

val check_function : Cell_netlist.cell -> bool
(** Verifies the cell's output against its spec on all assignments:
    non-inverting for static CNTFET families, inverting for pseudo and
    CMOS; restoring-inverter cells are inverting as well (the inverter
    flips the pass-network stage, which itself implements the spec). *)

(** Dynamic generalized-NOR gates (the paper's Fig. 2), modeled at switch
    level.  These are the prior-art gates whose two weaknesses — dynamic
    signal races and non-full-swing outputs when every conducting pull-down
    device is configured p-type — motivate the paper's transmission-gate
    static family. *)
module Dynamic : sig
  type term = { input : bool; control : bool }

  val gnor : term list -> drive
  (** Evaluation-phase output of a precharged GNOR whose pull-down is one
      ambipolar device per term (conducting iff [input <> control]). *)

  val value : term list -> bool
  (** Boolean value at the dynamic node: [not (OR of (input XOR control))]. *)

  val has_degraded_assignment : int -> bool
  (** Whether a GNOR with that many terms has an input assignment with a
      degraded output level (it always does, for >= 1 term). *)
end
