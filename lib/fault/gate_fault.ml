(* Gate-level stuck-at fault simulation over mapped netlists.

   The classic single-stuck-at model at mapped-netlist granularity: every
   primary input, every instance output and every instance input pin can be
   stuck at 0 or 1.  Detection runs 64 random patterns per word
   (Mapped.simulate_values gives the fault-free baseline once per round;
   each live fault then only resimulates its fanout cone against a scratch
   copy, with fault dropping), and the survivors go to SAT-based ATPG: a
   miter between the good netlist and a structurally injected faulty copy,
   decided by Cec under a conflict budget, degrading to Unknown — reported,
   never raised — when the budget runs out. *)

type site =
  | Pi_sa of int        (* primary input stuck *)
  | Out_sa of int       (* instance output stuck *)
  | Pin_sa of int * int (* instance fanin pin stuck *)

type fault = { site : site; stuck : bool }

type status =
  | Detected_sim
  | Detected_atpg of bool array
  | Redundant
  | Unknown

type result = { fault : fault; status : status }

type summary = {
  g_total : int;
  g_sim : int;
  g_atpg : int;
  g_redundant : int;
  g_unknown : int;
  g_rounds : int;
}

let coverage s =
  if s.g_total = 0 then 1.0
  else float_of_int (s.g_sim + s.g_atpg) /. float_of_int s.g_total

let testable_coverage s =
  let testable = s.g_total - s.g_redundant in
  if testable = 0 then 1.0
  else float_of_int (s.g_sim + s.g_atpg) /. float_of_int testable

let faults_of (m : Mapped.t) =
  let acc = ref [] in
  let push site =
    acc := { site; stuck = true } :: { site; stuck = false } :: !acc
  in
  for i = 0 to m.Mapped.num_inputs - 1 do
    push (Pi_sa i)
  done;
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      Array.iteri (fun p _ -> push (Pin_sa (j, p))) inst.Mapped.fanins;
      push (Out_sa j))
    m.Mapped.instances;
  Array.of_list (List.rev !acc)

let describe (m : Mapped.t) f =
  let sa = if f.stuck then "sa1" else "sa0" in
  match f.site with
  | Pi_sa i -> Printf.sprintf "pi:%s %s" m.Mapped.input_names.(i) sa
  | Out_sa j ->
      Printf.sprintf "inst%d:%s out %s" j
        m.Mapped.instances.(j).Mapped.cell_name sa
  | Pin_sa (j, p) ->
      Printf.sprintf "inst%d:%s pin%d %s" j
        m.Mapped.instances.(j).Mapped.cell_name p sa

let const_word b = if b then -1L else 0L

let cofactor_word tt v b =
  let t = Tt.of_words 6 [| tt |] in
  let t' = if b then Tt.cofactor1 t v else Tt.cofactor0 t v in
  (Tt.words t').(0)

(* Structural injection: a copy of the netlist computing the faulty
   function.  Used for ATPG miters and as the slow reference the packed
   simulator is property-tested against. *)
let inject (m : Mapped.t) f =
  let instances = Array.copy m.Mapped.instances in
  let outputs = ref m.Mapped.outputs in
  (match f.site with
  | Out_sa j ->
      instances.(j) <-
        { instances.(j) with Mapped.tt = const_word f.stuck }
  | Pin_sa (j, p) ->
      instances.(j) <-
        { instances.(j) with
          Mapped.tt = cofactor_word instances.(j).Mapped.tt p f.stuck }
  | Pi_sa i ->
      Array.iteri
        (fun j (inst : Mapped.instance) ->
          let tt = ref inst.Mapped.tt in
          Array.iteri
            (fun p (net : Mapped.net) ->
              match net.Mapped.driver with
              | Mapped.Pi k when k = i ->
                  tt := cofactor_word !tt p (f.stuck <> net.Mapped.negated)
              | _ -> ())
            inst.Mapped.fanins;
          if !tt <> inst.Mapped.tt then
            instances.(j) <- { inst with Mapped.tt = !tt })
        instances;
      outputs :=
        Array.map
          (fun (name, (net : Mapped.net)) ->
            match net.Mapped.driver with
            | Mapped.Pi k when k = i ->
                (name, { net with Mapped.driver = Mapped.Const f.stuck })
            | _ -> (name, net))
          m.Mapped.outputs);
  { m with Mapped.instances; Mapped.outputs = !outputs }

(* ---------------- packed simulation ---------------- *)

type cones = {
  fanout : int list array;       (* instance -> consuming instances *)
  pi_consumers : int list array; (* pi -> consuming instances *)
  visited : int array;           (* epoch stamps *)
  mutable epoch : int;
}

let build_cones (m : Mapped.t) =
  let n = Array.length m.Mapped.instances in
  let fanout = Array.make n [] in
  let pi_consumers = Array.make m.Mapped.num_inputs [] in
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      Array.iter
        (fun (net : Mapped.net) ->
          match net.Mapped.driver with
          | Mapped.Inst k ->
              if not (List.mem j fanout.(k)) then fanout.(k) <- j :: fanout.(k)
          | Mapped.Pi i ->
              if not (List.mem j pi_consumers.(i)) then
                pi_consumers.(i) <- j :: pi_consumers.(i)
          | Mapped.Const _ -> ())
        inst.Mapped.fanins)
    m.Mapped.instances;
  { fanout; pi_consumers; visited = Array.make (max n 1) 0; epoch = 0 }

(* topologically sorted transitive fanout closure of the seed instances
   (instances are emitted in topological index order) *)
let cone_of cones seeds =
  cones.epoch <- cones.epoch + 1;
  let e = cones.epoch in
  let acc = ref [] in
  let rec go j =
    if cones.visited.(j) <> e then begin
      cones.visited.(j) <- e;
      acc := j :: !acc;
      List.iter go cones.fanout.(j)
    end
  in
  List.iter go seeds;
  List.sort compare !acc

let outputs_word (m : Mapped.t) words vals =
  Array.map
    (fun (_, net) -> Mapped.net_value words vals net)
    m.Mapped.outputs

(* Simulate one fault against the baseline for this round.  [scratch] must
   equal [base_vals]; it is restored before returning. *)
let sim_fault (m : Mapped.t) cones words base_vals base_outs scratch f =
  let words', seeds, injected =
    match f.site with
    | Pi_sa i ->
        let w = Array.copy words in
        w.(i) <- const_word f.stuck;
        (w, cones.pi_consumers.(i), None)
    | Out_sa j ->
        scratch.(j) <- const_word f.stuck;
        (words, cones.fanout.(j), Some j)
    | Pin_sa (j, p) ->
        let inst = m.Mapped.instances.(j) in
        let faulty =
          { inst with Mapped.tt = cofactor_word inst.Mapped.tt p f.stuck }
        in
        scratch.(j) <- Mapped.eval_instance words scratch faulty;
        (words, cones.fanout.(j), Some j)
  in
  let cone = cone_of cones seeds in
  List.iter
    (fun k ->
      scratch.(k) <-
        Mapped.eval_instance words' scratch m.Mapped.instances.(k))
    cone;
  let detected =
    (* output nets read PIs directly too, so compare against the faulty
       words for PI faults *)
    let outs = outputs_word m words' scratch in
    outs <> base_outs
  in
  List.iter (fun k -> scratch.(k) <- base_vals.(k)) cone;
  (match injected with Some j -> scratch.(j) <- base_vals.(j) | None -> ());
  detected

(* ---------------- the analysis driver ---------------- *)

let analyze ?(rounds = 32) ?(seed = 2026L) ?(conflict_budget = 100_000)
    (m : Mapped.t) =
  let faults = faults_of m in
  let n = Array.length faults in
  let status = Array.make n None in
  let cones = build_cones m in
  let rng = Rand64.create seed in
  let live = ref n in
  let round = ref 0 in
  while !round < rounds && !live > 0 do
    incr round;
    let words =
      Array.init m.Mapped.num_inputs (fun _ -> Rand64.next rng)
    in
    let base_vals = Mapped.simulate_values m words in
    let base_outs = outputs_word m words base_vals in
    let scratch = Array.copy base_vals in
    Array.iteri
      (fun i f ->
        if status.(i) = None then
          if sim_fault m cones words base_vals base_outs scratch f then begin
            status.(i) <- Some Detected_sim;
            decr live
          end)
      faults
  done;
  (* ATPG sweep over the survivors *)
  (if !live > 0 then
     let good = Mapped.to_aig m in
     Array.iteri
       (fun i f ->
         if status.(i) = None then
           let bad = Mapped.to_aig (inject m f) in
           status.(i) <-
             Some
               (match Cec.check ~sim_rounds:4 ~conflict_budget ~seed good bad
                with
               | Cec.Equivalent -> Redundant
               | Cec.Inequivalent cex -> Detected_atpg cex
               | Cec.Undecided -> Unknown))
       faults);
  let results =
    Array.mapi
      (fun i f ->
        { fault = f; status = Option.value ~default:Unknown status.(i) })
      faults
  in
  let count p = Array.fold_left (fun a r -> if p r.status then a + 1 else a)
      0 results in
  let summary =
    {
      g_total = n;
      g_sim = count (fun s -> s = Detected_sim);
      g_atpg = count (function Detected_atpg _ -> true | _ -> false);
      g_redundant = count (fun s -> s = Redundant);
      g_unknown = count (fun s -> s = Unknown);
      g_rounds = !round;
    }
  in
  (results, summary)

(* ---------------- rendering ---------------- *)

let summary_line s =
  Printf.sprintf
    "faults=%d detected=%d (sim %d + atpg %d) redundant=%d unknown=%d \
     coverage=%.1f%%"
    s.g_total (s.g_sim + s.g_atpg) s.g_sim s.g_atpg s.g_redundant s.g_unknown
    (100.0 *. coverage s)

let status_name = function
  | Detected_sim -> "detected-sim"
  | Detected_atpg _ -> "detected-atpg"
  | Redundant -> "redundant"
  | Unknown -> "unknown"

let tsv_header = String.concat "\t" [ "fault"; "status" ]

let results_tsv (m : Mapped.t) results =
  tsv_header
  :: (Array.to_list results
     |> List.map (fun r ->
            Printf.sprintf "%s\t%s" (describe m r.fault)
              (status_name r.status)))
  |> String.concat "\n"
