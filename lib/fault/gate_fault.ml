(* Gate-level stuck-at fault simulation over mapped netlists.

   The classic single-stuck-at model at mapped-netlist granularity: every
   primary input, every instance output and every instance input pin can be
   stuck at 0 or 1.  Detection runs 64 random patterns per word
   (Mapped.simulate_values gives the fault-free baseline once per round;
   each live fault then only resimulates its fanout cone against a scratch
   copy, with fault dropping), and the survivors go to SAT-based ATPG: a
   miter between the good netlist and a structurally injected faulty copy,
   decided by Cec under a conflict budget, degrading to Unknown — reported,
   never raised — when the budget runs out. *)

type site =
  | Pi_sa of int        (* primary input stuck *)
  | Out_sa of int       (* instance output stuck *)
  | Pin_sa of int * int (* instance fanin pin stuck *)

type fault = { site : site; stuck : bool }

type status =
  | Detected_sim
  | Detected_atpg of bool array
  | Redundant
  | Unknown

type result = { fault : fault; status : status }

type summary = {
  g_total : int;
  g_sim : int;
  g_atpg : int;
  g_redundant : int;
  g_unknown : int;
  g_rounds : int;
}

let coverage s =
  if s.g_total = 0 then 1.0
  else float_of_int (s.g_sim + s.g_atpg) /. float_of_int s.g_total

let testable_coverage s =
  let testable = s.g_total - s.g_redundant in
  if testable = 0 then 1.0
  else float_of_int (s.g_sim + s.g_atpg) /. float_of_int testable

let faults_of (m : Mapped.t) =
  let acc = ref [] in
  let push site =
    acc := { site; stuck = true } :: { site; stuck = false } :: !acc
  in
  for i = 0 to m.Mapped.num_inputs - 1 do
    push (Pi_sa i)
  done;
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      Array.iteri (fun p _ -> push (Pin_sa (j, p))) inst.Mapped.fanins;
      push (Out_sa j))
    m.Mapped.instances;
  Array.of_list (List.rev !acc)

let describe (m : Mapped.t) f =
  let sa = if f.stuck then "sa1" else "sa0" in
  match f.site with
  | Pi_sa i -> Printf.sprintf "pi:%s %s" m.Mapped.input_names.(i) sa
  | Out_sa j ->
      Printf.sprintf "inst%d:%s out %s" j
        m.Mapped.instances.(j).Mapped.cell_name sa
  | Pin_sa (j, p) ->
      Printf.sprintf "inst%d:%s pin%d %s" j
        m.Mapped.instances.(j).Mapped.cell_name p sa

let const_word b = if b then -1L else 0L

let cofactor_word tt v b =
  let t = Tt.of_words 6 [| tt |] in
  let t' = if b then Tt.cofactor1 t v else Tt.cofactor0 t v in
  (Tt.words t').(0)

(* Structural injection: a copy of the netlist computing the faulty
   function.  Used for ATPG miters and as the slow reference the packed
   simulator is property-tested against. *)
let inject (m : Mapped.t) f =
  let instances = Array.copy m.Mapped.instances in
  let outputs = ref m.Mapped.outputs in
  (match f.site with
  | Out_sa j ->
      instances.(j) <-
        { instances.(j) with Mapped.tt = const_word f.stuck }
  | Pin_sa (j, p) ->
      instances.(j) <-
        { instances.(j) with
          Mapped.tt = cofactor_word instances.(j).Mapped.tt p f.stuck }
  | Pi_sa i ->
      Array.iteri
        (fun j (inst : Mapped.instance) ->
          let tt = ref inst.Mapped.tt in
          Array.iteri
            (fun p (net : Mapped.net) ->
              match net.Mapped.driver with
              | Mapped.Pi k when k = i ->
                  tt := cofactor_word !tt p (f.stuck <> net.Mapped.negated)
              | _ -> ())
            inst.Mapped.fanins;
          if !tt <> inst.Mapped.tt then
            instances.(j) <- { inst with Mapped.tt = !tt })
        instances;
      outputs :=
        Array.map
          (fun (name, (net : Mapped.net)) ->
            match net.Mapped.driver with
            | Mapped.Pi k when k = i ->
                (name, { net with Mapped.driver = Mapped.Const f.stuck })
            | _ -> (name, net))
          m.Mapped.outputs);
  { m with Mapped.instances; Mapped.outputs = !outputs }

(* ---------------- packed simulation ---------------- *)

type cones = {
  fanout : int list array;       (* instance -> consuming instances *)
  pi_consumers : int list array; (* pi -> consuming instances *)
  visited : int array;           (* epoch stamps *)
  mutable epoch : int;
}

let build_cones (m : Mapped.t) =
  let n = Array.length m.Mapped.instances in
  let fanout = Array.make n [] in
  let pi_consumers = Array.make m.Mapped.num_inputs [] in
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      Array.iter
        (fun (net : Mapped.net) ->
          match net.Mapped.driver with
          | Mapped.Inst k ->
              if not (List.mem j fanout.(k)) then fanout.(k) <- j :: fanout.(k)
          | Mapped.Pi i ->
              if not (List.mem j pi_consumers.(i)) then
                pi_consumers.(i) <- j :: pi_consumers.(i)
          | Mapped.Const _ -> ())
        inst.Mapped.fanins)
    m.Mapped.instances;
  { fanout; pi_consumers; visited = Array.make (max n 1) 0; epoch = 0 }

(* topologically sorted transitive fanout closure of the seed instances
   (instances are emitted in topological index order) *)
let cone_of cones seeds =
  cones.epoch <- cones.epoch + 1;
  let e = cones.epoch in
  let acc = ref [] in
  let rec go j =
    if cones.visited.(j) <> e then begin
      cones.visited.(j) <- e;
      acc := j :: !acc;
      List.iter go cones.fanout.(j)
    end
  in
  List.iter go seeds;
  List.sort compare !acc

let outputs_word (m : Mapped.t) words vals =
  Array.map
    (fun (_, net) -> Mapped.net_value words vals net)
    m.Mapped.outputs

(* Simulate one fault against the baseline for this round.  [scratch] must
   equal [base_vals]; it is restored before returning. *)
let sim_fault (m : Mapped.t) cones words base_vals base_outs scratch f =
  let words', seeds, injected =
    match f.site with
    | Pi_sa i ->
        let w = Array.copy words in
        w.(i) <- const_word f.stuck;
        (w, cones.pi_consumers.(i), None)
    | Out_sa j ->
        scratch.(j) <- const_word f.stuck;
        (words, cones.fanout.(j), Some j)
    | Pin_sa (j, p) ->
        let inst = m.Mapped.instances.(j) in
        let faulty =
          { inst with Mapped.tt = cofactor_word inst.Mapped.tt p f.stuck }
        in
        scratch.(j) <- Mapped.eval_instance words scratch faulty;
        (words, cones.fanout.(j), Some j)
  in
  let cone = cone_of cones seeds in
  List.iter
    (fun k ->
      scratch.(k) <-
        Mapped.eval_instance words' scratch m.Mapped.instances.(k))
    cone;
  let detected =
    (* output nets read PIs directly too, so compare against the faulty
       words for PI faults *)
    let outs = outputs_word m words' scratch in
    outs <> base_outs
  in
  List.iter (fun k -> scratch.(k) <- base_vals.(k)) cone;
  (match injected with Some j -> scratch.(j) <- base_vals.(j) | None -> ());
  detected

(* ---------------- incremental ATPG ---------------- *)

type atpg_engine = Incremental | Rebuild

(* One CNF miter per netlist: a good copy and a faulty copy sharing the
   primary inputs, with every surviving fault wired through a selector
   variable.  A fault is then decided by one [solve ~assumptions] with its
   selector true and all others false — the learned clauses, variable
   activities and the encoding itself are shared across the whole sweep,
   instead of rebuilding a fresh miter per fault as [Rebuild] does.

   Injection matches [inject]'s semantics exactly: an output stuck forces
   the instance output, a pin stuck forces the {e post-negation} pin value
   feeding the truth table, and a PI stuck forces the {e pre-negation}
   input value (output nets reading the PI directly see it too). *)
module Atpg = struct
  type miter = {
    s : Solver.t;
    piv : int array;    (* good (= shared) primary-input variables *)
    sels : int array;   (* per-survivor selector variables *)
  }

  (* y <-> tt(lits), via ISOP covers of the on- and off-set: every on-set
     cube c contributes (y \/ ~c), every off-set cube d contributes
     (~y \/ ~d). *)
  let encode_tt s lits arity tt y =
    let t = Tt.of_bits arity tt in
    let cube_clause base c =
      let cl = ref [ base ] in
      for i = 0 to arity - 1 do
        if Cube.has_pos c i then cl := Solver.lit_not lits.(i) :: !cl
        else if Cube.has_neg c i then cl := lits.(i) :: !cl
      done;
      Solver.add_clause s !cl
    in
    List.iter (cube_clause y) (Sop.isop t).Sop.cubes;
    List.iter
      (cube_clause (Solver.lit_not y))
      (Sop.isop (Tt.bnot t)).Sop.cubes

  let build (m : Mapped.t) (survivors : fault array) =
    let s = Solver.create () in
    (* a dedicated constant-false variable *)
    let cfalse = Solver.new_var s in
    Solver.add_clause s [ Solver.neg cfalse ];
    let const_lit b = if b then Solver.neg cfalse else Solver.pos cfalse in
    let piv = Array.init m.Mapped.num_inputs (fun _ -> Solver.new_var s) in
    let sels = Array.map (fun _ -> Solver.new_var s) survivors in
    (* z = if sel then b else x *)
    let mux sel b x =
      let z = Solver.pos (Solver.new_var s) in
      let sl = Solver.pos sel in
      let nsl = Solver.lit_not sl in
      if b then Solver.add_clause s [ nsl; z ]
      else Solver.add_clause s [ nsl; Solver.lit_not z ];
      Solver.add_clause s [ sl; Solver.lit_not z; x ];
      Solver.add_clause s [ sl; z; Solver.lit_not x ];
      z
    in
    let chain faults x =
      List.fold_left (fun x (sel, b) -> mux sel b x) x faults
    in
    (* survivor lookup per injection point, in survivor order *)
    let pi_faults = Array.make m.Mapped.num_inputs [] in
    let n_inst = Array.length m.Mapped.instances in
    let out_faults = Array.make (max n_inst 1) [] in
    let pin_faults = Hashtbl.create 64 in
    Array.iteri
      (fun k f ->
        match f.site with
        | Pi_sa i -> pi_faults.(i) <- (sels.(k), f.stuck) :: pi_faults.(i)
        | Out_sa j -> out_faults.(j) <- (sels.(k), f.stuck) :: out_faults.(j)
        | Pin_sa (j, p) ->
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt pin_faults (j, p))
            in
            Hashtbl.replace pin_faults (j, p) ((sels.(k), f.stuck) :: prev))
      survivors;
    (* faulty primary-input values *)
    let fpi =
      Array.init m.Mapped.num_inputs (fun i ->
          chain pi_faults.(i) (Solver.pos piv.(i)))
    in
    (* the two circuit copies, in (topological) instance order *)
    let gv = Array.make (max n_inst 1) 0 in
    let fout = Array.make (max n_inst 1) 0 in
    let good_driver_lit (net : Mapped.net) =
      match net.Mapped.driver with
      | Mapped.Pi i -> Solver.pos piv.(i)
      | Mapped.Inst k -> Solver.pos gv.(k)
      | Mapped.Const b -> const_lit b
    in
    let faulty_driver_lit (net : Mapped.net) =
      match net.Mapped.driver with
      | Mapped.Pi i -> fpi.(i)
      | Mapped.Inst k -> fout.(k)
      | Mapped.Const b -> const_lit b
    in
    let net_lit driver_lit (net : Mapped.net) =
      let l = driver_lit net in
      if net.Mapped.negated then Solver.lit_not l else l
    in
    Array.iteri
      (fun j (inst : Mapped.instance) ->
        let arity = Array.length inst.Mapped.fanins in
        (* good copy *)
        let g = Solver.new_var s in
        gv.(j) <- g;
        let glits = Array.map (net_lit good_driver_lit) inst.Mapped.fanins in
        encode_tt s glits arity inst.Mapped.tt (Solver.pos g);
        (* faulty copy: pin stucks apply after the net negation *)
        let flits =
          Array.mapi
            (fun p net ->
              let x = net_lit faulty_driver_lit net in
              match Hashtbl.find_opt pin_faults (j, p) with
              | Some faults -> chain faults x
              | None -> x)
            inst.Mapped.fanins
        in
        let fr = Solver.new_var s in
        encode_tt s flits arity inst.Mapped.tt (Solver.pos fr);
        fout.(j) <- chain out_faults.(j) (Solver.pos fr))
      m.Mapped.instances;
    (* miter outputs: some output must differ *)
    let xors =
      Array.map
        (fun (_, net) ->
          let la = net_lit good_driver_lit net in
          let lb = net_lit faulty_driver_lit net in
          let x = Solver.pos (Solver.new_var s) in
          let nx = Solver.lit_not x in
          let nla = Solver.lit_not la and nlb = Solver.lit_not lb in
          Solver.add_clause s [ nx; la; lb ];
          Solver.add_clause s [ nx; nla; nlb ];
          Solver.add_clause s [ x; la; nlb ];
          Solver.add_clause s [ x; nla; lb ];
          x)
        m.Mapped.outputs
    in
    Solver.add_clause s (Array.to_list xors);
    { s; piv; sels }

  (* Decide survivor [k]: its selector true, every other selector false. *)
  let query mt ~conflict_budget k =
    let assumptions =
      Solver.pos mt.sels.(k)
      :: (Array.to_list
            (Array.mapi
               (fun g sel -> if g = k then -1 else Solver.neg sel)
               mt.sels)
         |> List.filter (fun l -> l >= 0))
    in
    match Solver.solve ~assumptions ~conflict_budget mt.s with
    | Solver.Unsat -> Redundant
    | Solver.Unknown -> Unknown
    | Solver.Sat ->
        Detected_atpg (Array.map (Solver.model_value mt.s) mt.piv)
end

(* ---------------- the analysis driver ---------------- *)

let analyze ?(rounds = 32) ?(seed = 2026L) ?(conflict_budget = 100_000)
    ?(atpg = Incremental) ?stats (m : Mapped.t) =
  let faults = faults_of m in
  let n = Array.length faults in
  let status = Array.make n None in
  let cones = build_cones m in
  let rng = Rand64.create seed in
  let live = ref n in
  let round = ref 0 in
  while !round < rounds && !live > 0 do
    incr round;
    let words =
      Array.init m.Mapped.num_inputs (fun _ -> Rand64.next rng)
    in
    let base_vals = Mapped.simulate_values m words in
    let base_outs = outputs_word m words base_vals in
    let scratch = Array.copy base_vals in
    Array.iteri
      (fun i f ->
        if status.(i) = None then
          if sim_fault m cones words base_vals base_outs scratch f then begin
            status.(i) <- Some Detected_sim;
            decr live
          end)
      faults
  done;
  (* ATPG sweep over the survivors *)
  (if !live > 0 then
     match atpg with
     | Rebuild ->
         let good = Mapped.to_aig m in
         Array.iteri
           (fun i f ->
             if status.(i) = None then
               let bad = Mapped.to_aig (inject m f) in
               status.(i) <-
                 Some
                   (match
                      Cec.check ~sim_rounds:4 ~conflict_budget ~seed ?stats
                        good bad
                    with
                   | Cec.Equivalent -> Redundant
                   | Cec.Inequivalent cex -> Detected_atpg cex
                   | Cec.Undecided -> Unknown))
           faults
     | Incremental ->
         let surv_idx = ref [] in
         Array.iteri
           (fun i _ -> if status.(i) = None then surv_idx := i :: !surv_idx)
           faults;
         let surv_idx = Array.of_list (List.rev !surv_idx) in
         let survivors = Array.map (fun i -> faults.(i)) surv_idx in
         let mt = Atpg.build m survivors in
         Array.iteri
           (fun k i -> status.(i) <- Some (Atpg.query mt ~conflict_budget k))
           surv_idx;
         (match stats with
         | Some acc -> Solver.stats_accum acc (Solver.stats_of mt.Atpg.s)
         | None -> ()));
  let results =
    Array.mapi
      (fun i f ->
        { fault = f; status = Option.value ~default:Unknown status.(i) })
      faults
  in
  let count p = Array.fold_left (fun a r -> if p r.status then a + 1 else a)
      0 results in
  let summary =
    {
      g_total = n;
      g_sim = count (fun s -> s = Detected_sim);
      g_atpg = count (function Detected_atpg _ -> true | _ -> false);
      g_redundant = count (fun s -> s = Redundant);
      g_unknown = count (fun s -> s = Unknown);
      g_rounds = !round;
    }
  in
  (results, summary)

(* ---------------- rendering ---------------- *)

let summary_line s =
  Printf.sprintf
    "faults=%d detected=%d (sim %d + atpg %d) redundant=%d unknown=%d \
     coverage=%.1f%%"
    s.g_total (s.g_sim + s.g_atpg) s.g_sim s.g_atpg s.g_redundant s.g_unknown
    (100.0 *. coverage s)

let status_name = function
  | Detected_sim -> "detected-sim"
  | Detected_atpg _ -> "detected-atpg"
  | Redundant -> "redundant"
  | Unknown -> "unknown"

let tsv_header = String.concat "\t" [ "fault"; "status" ]

let results_tsv (m : Mapped.t) results =
  tsv_header
  :: (Array.to_list results
     |> List.map (fun r ->
            Printf.sprintf "%s\t%s" (describe m r.fault)
              (status_name r.status)))
  |> String.concat "\n"
