(** Gate-level single-stuck-at fault simulation and ATPG over {!Mapped.t}.

    Random-pattern detection runs 64 patterns per word with per-fault
    fanout-cone resimulation and fault dropping; undetected faults go to a
    SAT miter ({!Cec.check}) between the netlist and a structurally
    injected faulty copy under a conflict budget, so a hard fault degrades
    to {!Unknown} instead of an unbounded solve. *)

type site =
  | Pi_sa of int         (** primary input stuck *)
  | Out_sa of int        (** instance output stuck *)
  | Pin_sa of int * int  (** instance fanin pin stuck *)

type fault = { site : site; stuck : bool }

type status =
  | Detected_sim
  | Detected_atpg of bool array  (** a detecting input assignment *)
  | Redundant                    (** SAT-proved undetectable *)
  | Unknown                      (** conflict budget exhausted *)

type result = { fault : fault; status : status }

type summary = {
  g_total : int;
  g_sim : int;
  g_atpg : int;
  g_redundant : int;
  g_unknown : int;
  g_rounds : int;  (** random rounds actually run (stops when all drop) *)
}

val coverage : summary -> float
(** detected / total. *)

val testable_coverage : summary -> float
(** detected / (total - redundant). *)

val faults_of : Mapped.t -> fault array
(** The full stuck-at list in deterministic order: PI faults, then per
    instance its pin faults and output faults, sa0 before sa1. *)

val describe : Mapped.t -> fault -> string

val inject : Mapped.t -> fault -> Mapped.t
(** A copy of the netlist computing the faulty function (stuck values are
    folded into instance truth tables / output nets).  The copy simulates
    and converts with the ordinary {!Mapped} API; its cover provenance is
    stale by construction, so don't lint it. *)

type atpg_engine =
  | Incremental
      (** one CNF miter per netlist, survivors decided as assumption
          queries against per-fault selector variables (default) *)
  | Rebuild
      (** the pre-incremental behaviour: a fresh {!Cec.check} miter per
          surviving fault *)

val analyze :
  ?rounds:int ->
  ?seed:int64 ->
  ?conflict_budget:int ->
  ?atpg:atpg_engine ->
  ?stats:Solver.stats ->
  Mapped.t ->
  result array * summary
(** Full fault-simulation + ATPG run (defaults: 32 rounds, seed 2026,
    budget 100k conflicts per fault, [Incremental] ATPG).  Deterministic
    for fixed arguments; never raises on hard SAT instances.  [stats],
    when given, accumulates the SAT effort of the ATPG sweep.

    Both engines agree on every decided verdict (Redundant vs Detected);
    only counterexample bits and the Unknown frontier under a conflict
    budget may differ. *)

val summary_line : summary -> string
val status_name : status -> string
val tsv_header : string
val results_tsv : Mapped.t -> result array -> string
