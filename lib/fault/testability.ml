(* Static testability analysis over mapped netlists.

   Everything here is computed from structure and truth tables alone —
   no simulation, no SAT.  The netlist is viewed as a set of *lines*
   (primary inputs, then instance outputs); cells are only known by their
   truth tables, so the per-cell testability models (SCOAP combination
   rules, local fault error sets, implication tables) are derived by
   exhaustive enumeration of the at most 2^6 pin assignments.

   Soundness matters more than strength: every redundancy claim made here
   is cross-checked against Gate_fault's SAT ATPG by test_fault.ml, so the
   rules below only fire when the proof argument is airtight:

   - Vacuous: the faulty truth table equals the good one, so the injected
     netlist *is* the good netlist.
   - Dead: the fault site has no path to any primary output; injection
     changes only logic outside every output cone.
   - Const_line: the implication engine proved the line constant v in the
     good circuit (assuming the opposite value propagates to a
     contradiction, which is sound because implications only follow
     necessary consequences).  Sticking the line at v then changes no
     value anywhere, for any input.
   - Blocked: every consumer of the faulty line is provably insensitive to
     it once its other pins are cofactored by proven constants whose
     driving cones are disjoint from the fault's fanout cone (disjointness
     makes the constants valid in the faulty circuit too). *)

(* ---------------- lines and netlist indexing ---------------- *)

let line_of_net (m : Mapped.t) (net : Mapped.net) =
  match net.Mapped.driver with
  | Mapped.Pi i -> Some i
  | Mapped.Inst j -> Some (m.Mapped.num_inputs + j)
  | Mapped.Const _ -> None

(* readers.(l): consumer (instance, pin) pairs of line l;
   po_reads.(l): number of primary outputs reading line l directly *)
type wiring = {
  ni : int;
  nlines : int;
  readers : (int * int) list array;
  po_reads : int array;
}

let line_of_driver ni = function
  | Mapped.Pi i -> Some i
  | Mapped.Inst j -> Some (ni + j)
  | Mapped.Const _ -> None

let wiring_of (m : Mapped.t) =
  let ni = m.Mapped.num_inputs in
  let n = Array.length m.Mapped.instances in
  let nlines = ni + n in
  let readers = Array.make nlines [] in
  let po_reads = Array.make nlines 0 in
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      Array.iteri
        (fun p (net : Mapped.net) ->
          match line_of_driver ni net.Mapped.driver with
          | Some l -> readers.(l) <- (j, p) :: readers.(l)
          | None -> ())
        inst.Mapped.fanins)
    m.Mapped.instances;
  Array.iter
    (fun (_, (net : Mapped.net)) ->
      match line_of_driver ni net.Mapped.driver with
      | Some l -> po_reads.(l) <- po_reads.(l) + 1
      | None -> ())
    m.Mapped.outputs;
  (* reader lists in deterministic ascending order *)
  Array.iteri (fun l rs -> readers.(l) <- List.rev rs) readers;
  { ni; nlines; readers; po_reads }

let tt_bit tt a = Int64.to_int (Int64.logand (Int64.shift_right_logical tt a) 1L)

let const_word b = if b then -1L else 0L

let cofactor_word tt v b =
  let t = Tt.of_words 6 [| tt |] in
  let t' = if b then Tt.cofactor1 t v else Tt.cofactor0 t v in
  (Tt.words t').(0)

let popcount64 x =
  let c = ref 0 and w = ref x in
  while !w <> 0L do
    w := Int64.logand !w (Int64.sub !w 1L);
    incr c
  done;
  !c

(* ---------------- SCOAP ---------------- *)

type scoap = {
  cc0 : float array;
  cc1 : float array;
  co : float array;
  pin_co : float array array;
}

let inf = infinity

(* controllability of the value *seen* at a pin, through the net polarity *)
let pin_cc (m : Mapped.t) cc0 cc1 (net : Mapped.net) want =
  let want_line = want <> net.Mapped.negated in
  match net.Mapped.driver with
  | Mapped.Const b -> if b = want_line then 0.0 else inf
  | Mapped.Pi i -> if want_line then cc1.(i) else cc0.(i)
  | Mapped.Inst j ->
      let l = m.Mapped.num_inputs + j in
      if want_line then cc1.(l) else cc0.(l)

let scoap_of (m : Mapped.t) =
  let ni = m.Mapped.num_inputs in
  let n = Array.length m.Mapped.instances in
  let nlines = ni + n in
  let cc0 = Array.make nlines inf and cc1 = Array.make nlines inf in
  for i = 0 to ni - 1 do
    cc0.(i) <- 1.0;
    cc1.(i) <- 1.0
  done;
  (* forward: per instance, minimize the summed pin cost over the
     assignments producing each output value *)
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      let k = Array.length inst.Mapped.fanins in
      let p0 = Array.make k inf and p1 = Array.make k inf in
      for p = 0 to k - 1 do
        p0.(p) <- pin_cc m cc0 cc1 inst.Mapped.fanins.(p) false;
        p1.(p) <- pin_cc m cc0 cc1 inst.Mapped.fanins.(p) true
      done;
      let best = [| inf; inf |] in
      for a = 0 to (1 lsl k) - 1 do
        let b = tt_bit inst.Mapped.tt a in
        let cost = ref 1.0 in
        for p = 0 to k - 1 do
          cost :=
            !cost +. (if (a lsr p) land 1 = 1 then p1.(p) else p0.(p))
        done;
        if !cost < best.(b) then best.(b) <- !cost
      done;
      cc0.(ni + j) <- best.(0);
      cc1.(ni + j) <- best.(1))
    m.Mapped.instances;
  (* backward: observability, primary outputs first, then instances in
     reverse topological order (consumers always have larger indices) *)
  let co = Array.make nlines inf in
  Array.iter
    (fun (_, (net : Mapped.net)) ->
      match line_of_driver ni net.Mapped.driver with
      | Some l -> co.(l) <- 0.0
      | None -> ())
    m.Mapped.outputs;
  let pin_co =
    Array.map
      (fun (inst : Mapped.instance) ->
        Array.make (Array.length inst.Mapped.fanins) inf)
      m.Mapped.instances
  in
  for j = n - 1 downto 0 do
    let inst = m.Mapped.instances.(j) in
    let k = Array.length inst.Mapped.fanins in
    let p0 = Array.make k inf and p1 = Array.make k inf in
    for p = 0 to k - 1 do
      p0.(p) <- pin_cc m cc0 cc1 inst.Mapped.fanins.(p) false;
      p1.(p) <- pin_cc m cc0 cc1 inst.Mapped.fanins.(p) true
    done;
    let col = co.(ni + j) in
    for p = 0 to k - 1 do
      (* cheapest side-pin assignment sensitizing the output to pin p *)
      let best = ref inf in
      for a = 0 to (1 lsl k) - 1 do
        if (a lsr p) land 1 = 0 then begin
          let a1 = a lor (1 lsl p) in
          if tt_bit inst.Mapped.tt a <> tt_bit inst.Mapped.tt a1 then begin
            let cost = ref 1.0 in
            for q = 0 to k - 1 do
              if q <> p then
                cost :=
                  !cost +. (if (a lsr q) land 1 = 1 then p1.(q) else p0.(q))
            done;
            if !cost < !best then best := !cost
          end
        end
      done;
      pin_co.(j).(p) <- col +. !best;
      match line_of_driver ni inst.Mapped.fanins.(p).Mapped.driver with
      | Some l -> if pin_co.(j).(p) < co.(l) then co.(l) <- pin_co.(j).(p)
      | None -> ()
    done
  done;
  { cc0; cc1; co; pin_co }

let aig_scoap aig =
  let n = Aig.num_nodes aig in
  let cc0 = Array.make n inf and cc1 = Array.make n inf in
  let co = Array.make n inf in
  cc0.(0) <- 0.0 (* node 0 is constant false *);
  for nd = 1 to n - 1 do
    if Aig.is_input aig nd then begin
      cc0.(nd) <- 1.0;
      cc1.(nd) <- 1.0
    end
  done;
  let lit_cc want l =
    let nd = Aig.node_of l in
    if want <> Aig.is_compl l then cc1.(nd) else cc0.(nd)
  in
  let ands = ref [] in
  Aig.iter_ands aig (fun nd -> ands := nd :: !ands);
  let ands_rev = !ands in
  let ands_fwd = List.rev ands_rev in
  List.iter
    (fun nd ->
      let f0 = Aig.fanin0 aig nd and f1 = Aig.fanin1 aig nd in
      cc1.(nd) <- lit_cc true f0 +. lit_cc true f1 +. 1.0;
      cc0.(nd) <- Float.min (lit_cc false f0) (lit_cc false f1) +. 1.0)
    ands_fwd;
  Array.iter (fun (_, l) -> co.(Aig.node_of l) <- 0.0) (Aig.outputs aig);
  List.iter
    (fun nd ->
      let f0 = Aig.fanin0 aig nd and f1 = Aig.fanin1 aig nd in
      let relax fin other =
        let c = co.(nd) +. lit_cc true other +. 1.0 in
        let fnd = Aig.node_of fin in
        if c < co.(fnd) then co.(fnd) <- c
      in
      relax f0 f1;
      relax f1 f0)
    ands_rev;
  (cc0, cc1, co)

(* ---------------- COP-style detection probabilities ----------------

   The additive SCOAP estimates above measure deterministic justification
   effort; on tree-like netlists cc grows toward the POs exactly as co
   shrinks, so their sum is nearly constant and ranks nothing.  Random-
   pattern detection *hardness* is multiplicative instead — probability of
   exciting the site times probability of propagating the error — so the
   per-fault score is computed from a signal-probability pass (COP):
   forward, each line's probability of carrying 1 under independent
   uniform inputs (exact per cell by weighted truth-table enumeration);
   backward, each pin's probability of being sensitized to an observing
   output (side pins at their signal probabilities, readers combined by
   best case).  Independence is an approximation; the ranking is what the
   property test in test_fault.ml holds to account. *)

let cop_of (m : Mapped.t) =
  let ni = m.Mapped.num_inputs in
  let n = Array.length m.Mapped.instances in
  let nlines = ni + n in
  let p1 = Array.make nlines 0.5 in
  let pin_p (net : Mapped.net) =
    let pl =
      match net.Mapped.driver with
      | Mapped.Const b -> if b then 1.0 else 0.0
      | Mapped.Pi i -> p1.(i)
      | Mapped.Inst j -> p1.(ni + j)
    in
    if net.Mapped.negated then 1.0 -. pl else pl
  in
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      let k = Array.length inst.Mapped.fanins in
      let pp = Array.map pin_p inst.Mapped.fanins in
      let t = ref 0.0 in
      for a = 0 to (1 lsl k) - 1 do
        if tt_bit inst.Mapped.tt a = 1 then begin
          let w = ref 1.0 in
          for p = 0 to k - 1 do
            w := !w *. (if (a lsr p) land 1 = 1 then pp.(p) else 1.0 -. pp.(p))
          done;
          t := !t +. !w
        end
      done;
      p1.(ni + j) <- !t)
    m.Mapped.instances;
  let obs = Array.make nlines 0.0 in
  Array.iter
    (fun (_, (net : Mapped.net)) ->
      match line_of_driver ni net.Mapped.driver with
      | Some l -> obs.(l) <- 1.0
      | None -> ())
    m.Mapped.outputs;
  let pin_obs =
    Array.map
      (fun (inst : Mapped.instance) ->
        Array.make (Array.length inst.Mapped.fanins) 0.0)
      m.Mapped.instances
  in
  for j = n - 1 downto 0 do
    let inst = m.Mapped.instances.(j) in
    let k = Array.length inst.Mapped.fanins in
    let pp = Array.map pin_p inst.Mapped.fanins in
    let oj = obs.(ni + j) in
    for p = 0 to k - 1 do
      (* probability a random side assignment sensitizes the output to p *)
      let s = ref 0.0 in
      for a = 0 to (1 lsl k) - 1 do
        if (a lsr p) land 1 = 0 then
          if tt_bit inst.Mapped.tt a <> tt_bit inst.Mapped.tt (a lor (1 lsl p))
          then begin
            let w = ref 1.0 in
            for q = 0 to k - 1 do
              if q <> p then
                w :=
                  !w *. (if (a lsr q) land 1 = 1 then pp.(q) else 1.0 -. pp.(q))
            done;
            s := !s +. !w
          end
      done;
      pin_obs.(j).(p) <- oj *. !s;
      match line_of_driver ni inst.Mapped.fanins.(p).Mapped.driver with
      | Some l -> if pin_obs.(j).(p) > obs.(l) then obs.(l) <- pin_obs.(j).(p)
      | None -> ()
    done
  done;
  (p1, obs, pin_obs)

(* detection-hardness score: -log2(excitation x propagation probability),
   [inf] when the estimate is zero (nothing random can do) *)
let cop_score (m : Mapped.t) (p1, obs, pin_obs) (f : Gate_fault.fault) =
  let ni = m.Mapped.num_inputs in
  let est =
    match f.Gate_fault.site with
    | Gate_fault.Pi_sa i ->
        (if f.Gate_fault.stuck then 1.0 -. p1.(i) else p1.(i)) *. obs.(i)
    | Gate_fault.Out_sa j ->
        let l = ni + j in
        (if f.Gate_fault.stuck then 1.0 -. p1.(l) else p1.(l)) *. obs.(l)
    | Gate_fault.Pin_sa (j, p) ->
        let net = m.Mapped.instances.(j).Mapped.fanins.(p) in
        let pl =
          match net.Mapped.driver with
          | Mapped.Const b -> if b then 1.0 else 0.0
          | Mapped.Pi i -> p1.(i)
          | Mapped.Inst jj -> p1.(ni + jj)
        in
        let seen1 = if net.Mapped.negated then 1.0 -. pl else pl in
        (if f.Gate_fault.stuck then 1.0 -. seen1 else seen1)
        *. pin_obs.(j).(p)
  in
  if est > 0.0 then -.(Float.log est /. Float.log 2.0) else inf

(* ---------------- fault universe indexing ---------------- *)

(* Mirrors Gate_fault.faults_of order: PI faults, then per instance its
   pin faults and output faults, sa0 before sa1.  analyze asserts the
   layout against the real array so the two can never drift apart. *)
type layout = { inst_off : int array; nf : int }

let layout_of (m : Mapped.t) =
  let n = Array.length m.Mapped.instances in
  let inst_off = Array.make n 0 in
  let off = ref (2 * m.Mapped.num_inputs) in
  for j = 0 to n - 1 do
    inst_off.(j) <- !off;
    off :=
      !off + (2 * (Array.length m.Mapped.instances.(j).Mapped.fanins + 1))
  done;
  { inst_off; nf = !off }

let pi_idx i stuck = (2 * i) + Bool.to_int stuck

let pin_idx lay j p stuck = lay.inst_off.(j) + (2 * p) + Bool.to_int stuck

let out_idx (m : Mapped.t) lay j stuck =
  lay.inst_off.(j)
  + (2 * Array.length m.Mapped.instances.(j).Mapped.fanins)
  + Bool.to_int stuck

let check_layout (m : Mapped.t) lay (faults : Gate_fault.fault array) =
  assert (Array.length faults = lay.nf);
  Array.iteri
    (fun fi (f : Gate_fault.fault) ->
      let fi' =
        match f.Gate_fault.site with
        | Gate_fault.Pi_sa i -> pi_idx i f.Gate_fault.stuck
        | Gate_fault.Pin_sa (j, p) -> pin_idx lay j p f.Gate_fault.stuck
        | Gate_fault.Out_sa j -> out_idx m lay j f.Gate_fault.stuck
      in
      assert (fi = fi'))
    faults

(* ---------------- 3-valued implication engine ---------------- *)

exception Contradiction

(* vals.(l): -1 unknown, 0, 1.  Setting a line enqueues its consumer
   instances (forward) and, for instance outputs, the driving instance
   (backward justification). *)
let set_line w vals (queue : int Queue.t) l v =
  if vals.(l) = v then ()
  else if vals.(l) >= 0 then raise Contradiction
  else begin
    vals.(l) <- v;
    List.iter (fun (j, _) -> Queue.add j queue) w.readers.(l);
    if l >= w.ni then Queue.add (l - w.ni) queue
  end

(* Re-derive everything one instance implies from its currently-known pin
   and output values, by enumerating the consistent assignments of its
   truth table. *)
let exam (m : Mapped.t) w vals queue j =
  let inst = m.Mapped.instances.(j) in
  let k = Array.length inst.Mapped.fanins in
  let pv = Array.make k (-1) in
  for p = 0 to k - 1 do
    let net = inst.Mapped.fanins.(p) in
    let lv =
      match net.Mapped.driver with
      | Mapped.Const b -> Bool.to_int b
      | Mapped.Pi i -> vals.(i)
      | Mapped.Inst d -> vals.(w.ni + d)
    in
    pv.(p) <- (if lv < 0 then -1 else if net.Mapped.negated then 1 - lv else lv)
  done;
  let ol = w.ni + j in
  let o = vals.(ol) in
  let seen0 = ref false and seen1 = ref false in
  let can = Array.make (2 * k) false in
  for a = 0 to (1 lsl k) - 1 do
    let ok = ref true in
    for p = 0 to k - 1 do
      if pv.(p) >= 0 && (a lsr p) land 1 <> pv.(p) then ok := false
    done;
    if !ok then begin
      let b = tt_bit inst.Mapped.tt a in
      if o < 0 || b = o then begin
        if b = 0 then seen0 := true else seen1 := true;
        for p = 0 to k - 1 do
          if pv.(p) < 0 then can.((2 * p) + ((a lsr p) land 1)) <- true
        done
      end
    end
  done;
  if (not !seen0) && not !seen1 then raise Contradiction;
  if o < 0 && !seen0 <> !seen1 then
    set_line w vals queue ol (if !seen1 then 1 else 0);
  for p = 0 to k - 1 do
    if pv.(p) < 0 && can.(2 * p) <> can.((2 * p) + 1) then begin
      let forced = if can.(2 * p) then 0 else 1 in
      let net = inst.Mapped.fanins.(p) in
      let lv = if net.Mapped.negated then 1 - forced else forced in
      match net.Mapped.driver with
      | Mapped.Const b -> if Bool.to_int b <> lv then raise Contradiction
      | Mapped.Pi i -> set_line w vals queue i lv
      | Mapped.Inst d -> set_line w vals queue (w.ni + d) lv
    end
  done

let drain m w vals queue =
  while not (Queue.is_empty queue) do
    exam m w vals queue (Queue.pop queue)
  done

(* constant lines of the good circuit: forward propagation from explicit
   constants, then (learn) assume-and-propagate static learning — a line
   whose assumed value implies a contradiction is constant at the other *)
let learn_constants ?(learn = true) (m : Mapped.t) w =
  let n = Array.length m.Mapped.instances in
  let base = Array.make w.nlines (-1) in
  let queue = Queue.create () in
  for j = 0 to n - 1 do
    Queue.add j queue
  done;
  (* the unconstrained circuit is always consistent *)
  (try drain m w base queue with Contradiction -> assert false);
  let probe l v =
    let vals = Array.copy base in
    let q = Queue.create () in
    match
      set_line w vals q l v;
      drain m w vals q
    with
    | () -> true
    | exception Contradiction -> false
  in
  let fix l v =
    let q = Queue.create () in
    try
      set_line w base q l v;
      drain m w base q
    with Contradiction -> assert false
  in
  if learn then begin
    let changed = ref true and sweeps = ref 0 in
    while !changed && !sweeps < 4 do
      changed := false;
      incr sweeps;
      for l = w.ni to w.nlines - 1 do
        if base.(l) < 0 then
          if not (probe l 0) then begin
            fix l 1;
            changed := true
          end
          else if not (probe l 1) then begin
            fix l 0;
            changed := true
          end
      done
    done
  end;
  base

(* ---------------- collapsing, redundancy, scoring ---------------- *)

type reason = Vacuous | Dead | Const_line of bool | Blocked

let reason_name = function
  | Vacuous -> "vacuous"
  | Dead -> "dead"
  | Const_line b -> if b then "const1" else "const0"
  | Blocked -> "blocked"

type summary = {
  t_faults : int;
  t_classes : int;
  t_dominated : int;
  t_collapsed : int;
  t_redundant : int;
  t_vacuous : int;
  t_dead : int;
  t_const : int;
  t_blocked : int;
  t_const_lines : int;
  t_cc_mean : float;
  t_cc_max : float;
  t_co_mean : float;
  t_co_max : float;
  t_score_mean : float;
}

type t = {
  faults : Gate_fault.fault array;
  scoap : scoap;
  score : float array;
  cls : int array;
  rep : int array;
  dominated : bool array;
  dom_by : int array;
  redundant : reason option array;
  summary : summary;
}

(* union-find with path halving *)
let uf_find uf i =
  let i = ref i in
  while uf.(!i) <> !i do
    uf.(!i) <- uf.(uf.(!i));
    i := uf.(!i)
  done;
  !i

let uf_union uf a b =
  let ra = uf_find uf a and rb = uf_find uf b in
  if ra <> rb then if ra < rb then uf.(rb) <- ra else uf.(ra) <- rb

(* excitation cost, propagation cost — the two SCOAP score components *)
let score_parts (m : Mapped.t) sc (f : Gate_fault.fault) =
  let ni = m.Mapped.num_inputs in
  let line_cc l want = if want then sc.cc1.(l) else sc.cc0.(l) in
  match f.Gate_fault.site with
  | Gate_fault.Pi_sa i ->
      (line_cc i (not f.Gate_fault.stuck), sc.co.(i))
  | Gate_fault.Out_sa j ->
      (line_cc (ni + j) (not f.Gate_fault.stuck), sc.co.(ni + j))
  | Gate_fault.Pin_sa (j, p) ->
      let net = m.Mapped.instances.(j).Mapped.fanins.(p) in
      let want_seen = not f.Gate_fault.stuck in
      let exc =
        match net.Mapped.driver with
        | Mapped.Const b ->
            if b <> net.Mapped.negated = want_seen then 0.0 else inf
        | _ ->
            let l =
              match line_of_driver ni net.Mapped.driver with
              | Some l -> l
              | None -> assert false
            in
            line_cc l (want_seen <> net.Mapped.negated)
      in
      (exc, sc.pin_co.(j).(p))

let analyze ?(learn = true) (m : Mapped.t) =
  let ni = m.Mapped.num_inputs in
  let n = Array.length m.Mapped.instances in
  let w = wiring_of m in
  let faults = Gate_fault.faults_of m in
  let lay = layout_of m in
  check_layout m lay faults;
  let nf = lay.nf in
  let sc = scoap_of m in
  (* local error words: faulty tt XOR good tt, per instance fault *)
  let err = Array.make nf None in
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      let k = Array.length inst.Mapped.fanins in
      let tt = inst.Mapped.tt in
      List.iter
        (fun stuck ->
          for p = 0 to k - 1 do
            err.(pin_idx lay j p stuck) <-
              Some (Int64.logxor tt (cofactor_word tt p stuck))
          done;
          err.(out_idx m lay j stuck) <-
            Some (Int64.logxor tt (const_word stuck)))
        [ false; true ])
    m.Mapped.instances;
  (* ---- equivalence ---- *)
  let uf = Array.init nf (fun i -> i) in
  (* same-instance equal error functions *)
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      let k = Array.length inst.Mapped.fanins in
      let tbl = Hashtbl.create 16 in
      let see fi =
        match err.(fi) with
        | None -> ()
        | Some e -> (
            match Hashtbl.find_opt tbl e with
            | Some fi0 -> uf_union uf fi0 fi
            | None -> Hashtbl.add tbl e fi)
      in
      List.iter
        (fun stuck ->
          for p = 0 to k - 1 do
            see (pin_idx lay j p stuck)
          done;
          see (out_idx m lay j stuck))
        [ false; true ])
    m.Mapped.instances;
  (* single-fanout wires: the driver's output fault is the consumer's pin
     fault seen through the net polarity *)
  for l = 0 to w.nlines - 1 do
    match (w.readers.(l), w.po_reads.(l)) with
    | [ (k, p) ], 0 ->
        let neg = m.Mapped.instances.(k).Mapped.fanins.(p).Mapped.negated in
        List.iter
          (fun stuck ->
            let src =
              if l < ni then pi_idx l stuck else out_idx m lay (l - ni) stuck
            in
            uf_union uf src (pin_idx lay k p (stuck <> neg)))
          [ false; true ]
    | _ -> ()
  done;
  (* renumber classes in fault-index order; representative = min member *)
  let cls = Array.make nf (-1) in
  let rep_rev = ref [] and n_classes = ref 0 in
  let root_cls = Hashtbl.create 256 in
  for fi = 0 to nf - 1 do
    let r = uf_find uf fi in
    match Hashtbl.find_opt root_cls r with
    | Some c -> cls.(fi) <- c
    | None ->
        let c = !n_classes in
        incr n_classes;
        Hashtbl.add root_cls r c;
        cls.(fi) <- c;
        rep_rev := fi :: !rep_rev
  done;
  let rep = Array.of_list (List.rev !rep_rev) in
  let n_classes = !n_classes in
  (* ---- liveness (reverse reachability from the primary outputs) ---- *)
  let live_inst = Array.make n false in
  let line_live l =
    w.po_reads.(l) > 0
    || List.exists (fun (k, _) -> live_inst.(k)) w.readers.(l)
  in
  for j = n - 1 downto 0 do
    live_inst.(j) <- line_live (ni + j)
  done;
  (* ---- constant lines ---- *)
  let base = learn_constants ~learn m w in
  let n_const_lines = ref 0 in
  for l = ni to w.nlines - 1 do
    if base.(l) >= 0 then incr n_const_lines
  done;
  (* ---- blocked lines ----
     A line is blocked when no primary output reads it and every consumer
     pin is provably insensitive to it: cofactoring the consumer's truth
     table by constant side pins (explicit constants, or learned-constant
     lines whose driving logic lies outside the fault's fanout cone)
     leaves a function independent of the pin. *)
  let cone_cache = Hashtbl.create 16 in
  let fanout_cone l =
    match Hashtbl.find_opt cone_cache l with
    | Some c -> c
    | None ->
        let c = Array.make n false in
        let rec go l =
          List.iter
            (fun (k, _) ->
              if not c.(k) then begin
                c.(k) <- true;
                go (ni + k)
              end)
            w.readers.(l)
        in
        go l;
        Hashtbl.add cone_cache l c;
        c
  in
  let reader_blocked l (k, p) =
    let inst = m.Mapped.instances.(k) in
    let nk = Array.length inst.Mapped.fanins in
    let tt = ref inst.Mapped.tt in
    for q = 0 to nk - 1 do
      if q <> p then begin
        let net = inst.Mapped.fanins.(q) in
        let const_seen =
          match net.Mapped.driver with
          | Mapped.Const b -> Some (b <> net.Mapped.negated)
          | Mapped.Pi i ->
              if base.(i) >= 0 then
                Some ((base.(i) = 1) <> net.Mapped.negated)
              else None
          | Mapped.Inst d ->
              if
                base.(ni + d) >= 0
                && (ni + d <> l)
                && not (fanout_cone l).(d)
              then Some ((base.(ni + d) = 1) <> net.Mapped.negated)
              else None
        in
        match const_seen with
        | Some b -> tt := cofactor_word !tt q b
        | None -> ()
      end
    done;
    Int64.equal (cofactor_word !tt p false) (cofactor_word !tt p true)
  in
  let line_blocked l =
    w.po_reads.(l) = 0
    && w.readers.(l) <> []
    && List.for_all (reader_blocked l) w.readers.(l)
  in
  (* ---- redundancy marking (first applicable reason wins) ---- *)
  let redundant = Array.make nf None in
  let mark fi r = if redundant.(fi) = None then redundant.(fi) <- Some r in
  (* vacuous instance faults *)
  for fi = 0 to nf - 1 do
    match err.(fi) with Some 0L -> mark fi Vacuous | _ -> ()
  done;
  (* dead sites *)
  for i = 0 to ni - 1 do
    if not (line_live i) then
      List.iter (fun s -> mark (pi_idx i s) Dead) [ false; true ]
  done;
  for j = 0 to n - 1 do
    if not live_inst.(j) then begin
      let k = Array.length m.Mapped.instances.(j).Mapped.fanins in
      List.iter
        (fun s ->
          for p = 0 to k - 1 do
            mark (pin_idx lay j p s) Dead
          done;
          mark (out_idx m lay j s) Dead)
        [ false; true ]
    end
  done;
  (* proven-constant lines and constant pins *)
  for j = 0 to n - 1 do
    if base.(ni + j) >= 0 then begin
      let v = base.(ni + j) = 1 in
      mark (out_idx m lay j v) (Const_line v)
    end
  done;
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      Array.iteri
        (fun p (net : Mapped.net) ->
          let seen =
            match net.Mapped.driver with
            | Mapped.Const b -> Some (b <> net.Mapped.negated)
            | Mapped.Pi i ->
                if base.(i) >= 0 then
                  Some ((base.(i) = 1) <> net.Mapped.negated)
                else None
            | Mapped.Inst d ->
                if base.(ni + d) >= 0 then
                  Some ((base.(ni + d) = 1) <> net.Mapped.negated)
                else None
          in
          match seen with
          | Some v -> mark (pin_idx lay j p v) (Const_line v)
          | None -> ())
        inst.Mapped.fanins)
    m.Mapped.instances;
  (* blocked propagation *)
  for i = 0 to ni - 1 do
    if redundant.(pi_idx i false) = None || redundant.(pi_idx i true) = None
    then
      if line_blocked i then
        List.iter (fun s -> mark (pi_idx i s) Blocked) [ false; true ]
  done;
  for j = 0 to n - 1 do
    if live_inst.(j) && line_blocked (ni + j) then begin
      let k = Array.length m.Mapped.instances.(j).Mapped.fanins in
      List.iter
        (fun s ->
          for p = 0 to k - 1 do
            mark (pin_idx lay j p s) Blocked
          done;
          mark (out_idx m lay j s) Blocked)
        [ false; true ]
    end
  done;
  (* equivalent faults compute identical faulty netlists: redundancy
     propagates across each class *)
  let cls_reason = Array.make n_classes None in
  for fi = 0 to nf - 1 do
    match (redundant.(fi), cls_reason.(cls.(fi))) with
    | Some r, None -> cls_reason.(cls.(fi)) <- Some r
    | _ -> ()
  done;
  for fi = 0 to nf - 1 do
    match (redundant.(fi), cls_reason.(cls.(fi))) with
    | None, Some r -> redundant.(fi) <- Some r
    | _ -> ()
  done;
  (* ---- dominance ----
     For faults of one instance, containment of local error sets gives
     test-set containment (excitation is local, propagation identical):
     E(g) subset-of E(f) means every test for g detects f, so f's class is
     removable as long as g is testable and in a different class. *)
  let dominated = Array.make n_classes false in
  let dom_by = Array.make n_classes (-1) in
  Array.iteri
    (fun j (inst : Mapped.instance) ->
      let k = Array.length inst.Mapped.fanins in
      let idxs = ref [] in
      List.iter
        (fun s ->
          idxs := out_idx m lay j s :: !idxs;
          for p = k - 1 downto 0 do
            idxs := pin_idx lay j p s :: !idxs
          done)
        [ true; false ];
      let idxs = !idxs in
      List.iter
        (fun f ->
          if redundant.(f) = None then
            List.iter
              (fun g ->
                if
                  g <> f
                  && cls.(g) <> cls.(f)
                  && redundant.(g) = None
                then
                  match (err.(g), err.(f)) with
                  | Some eg, Some ef ->
                      if
                        eg <> 0L && eg <> ef
                        && Int64.equal
                             (Int64.logand eg (Int64.lognot ef))
                             0L
                      then begin
                        dominated.(cls.(f)) <- true;
                        if dom_by.(cls.(f)) < 0 then dom_by.(cls.(f)) <- g
                      end
                  | _ -> ())
              idxs)
        idxs)
    m.Mapped.instances;
  (* ---- scores and summary ---- *)
  let cop = cop_of m in
  let score = Array.map (fun f -> cop_score m cop f) faults in
  let n_redundant = ref 0
  and n_vac = ref 0
  and n_dead = ref 0
  and n_const = ref 0
  and n_blocked = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some r -> (
          incr n_redundant;
          match r with
          | Vacuous -> incr n_vac
          | Dead -> incr n_dead
          | Const_line _ -> incr n_const
          | Blocked -> incr n_blocked))
    redundant;
  let n_red_classes = ref 0 and n_dom_classes = ref 0 in
  for c = 0 to n_classes - 1 do
    if redundant.(rep.(c)) <> None then incr n_red_classes
    else if dominated.(c) then incr n_dom_classes
  done;
  let mean_max a b =
    let sum = ref 0.0 and cnt = ref 0 and mx = ref 0.0 in
    for l = 0 to w.nlines - 1 do
      let v = Float.max a.(l) b.(l) in
      if Float.is_finite v then begin
        sum := !sum +. v;
        incr cnt;
        if v > !mx then mx := v
      end
    done;
    ((if !cnt = 0 then 0.0 else !sum /. float_of_int !cnt), !mx)
  in
  let cc_mean, cc_max = mean_max sc.cc0 sc.cc1 in
  let co_mean, co_max = mean_max sc.co sc.co in
  let score_mean =
    let sum = ref 0.0 and cnt = ref 0 in
    Array.iteri
      (fun fi s ->
        if redundant.(fi) = None && Float.is_finite s then begin
          sum := !sum +. s;
          incr cnt
        end)
      score;
    if !cnt = 0 then 0.0 else !sum /. float_of_int !cnt
  in
  let summary =
    {
      t_faults = nf;
      t_classes = n_classes;
      t_dominated = !n_dom_classes;
      t_collapsed = n_classes - !n_red_classes - !n_dom_classes;
      t_redundant = !n_redundant;
      t_vacuous = !n_vac;
      t_dead = !n_dead;
      t_const = !n_const;
      t_blocked = !n_blocked;
      t_const_lines = !n_const_lines;
      t_cc_mean = cc_mean;
      t_cc_max = cc_max;
      t_co_mean = co_mean;
      t_co_max = co_max;
      t_score_mean = score_mean;
    }
  in
  { faults; scoap = sc; score; cls; rep; dominated; dom_by; redundant; summary }

(* ---------------- reporting ---------------- *)

let summary_line s =
  Printf.sprintf
    "faults=%d classes=%d collapsed=%d dominated=%d redundant=%d(vac:%d \
     dead:%d const:%d blk:%d) const-lines=%d cc=%.1f/%.1f co=%.1f/%.1f \
     score=%.1f"
    s.t_faults s.t_classes s.t_collapsed s.t_dominated s.t_redundant
    s.t_vacuous s.t_dead s.t_const s.t_blocked s.t_const_lines s.t_cc_mean
    s.t_cc_max s.t_co_mean s.t_co_max s.t_score_mean

let tsv_header =
  "#idx\tfault\tclass\trep\tdominated\tredundant\texc_cc\tobs_co\tscore"

let fstr v = if Float.is_finite v then Printf.sprintf "%.1f" v else "inf"

let to_tsv (m : Mapped.t) t =
  let b = Buffer.create 4096 in
  Buffer.add_string b tsv_header;
  Buffer.add_char b '\n';
  Array.iteri
    (fun fi (f : Gate_fault.fault) ->
      let exc, obs = score_parts m t.scoap f in
      Printf.bprintf b "%d\t%s\t%d\t%c\t%c\t%s\t%s\t%s\t%s\n" fi
        (Gate_fault.describe m f)
        t.cls.(fi)
        (if t.rep.(t.cls.(fi)) = fi then 'R' else '-')
        (if t.dominated.(t.cls.(fi)) then 'D' else '-')
        (match t.redundant.(fi) with
        | None -> "-"
        | Some r -> reason_name r)
        (fstr exc) (fstr obs)
        (fstr t.score.(fi)))
    t.faults;
  Buffer.contents b

(* ---------------- lint ---------------- *)

let lint ?threshold ~name (m : Mapped.t) t =
  let ni = m.Mapped.num_inputs in
  let n = Array.length m.Mapped.instances in
  let lay = layout_of m in
  let dead j =
    t.redundant.(out_idx m lay j false) = Some Dead
  in
  (* threshold: 3x the median finite instance-output observability *)
  let finite =
    Array.to_list t.scoap.co
    |> List.filteri (fun l _ -> l >= ni)
    |> List.filter Float.is_finite
    |> List.sort compare
  in
  let median =
    match finite with
    | [] -> 0.0
    | l -> List.nth l (List.length l / 2)
  in
  let thr =
    match threshold with Some x -> x | None -> Float.max (3.0 *. median) 10.0
  in
  let ds = ref [] in
  (* unobservable / hard-to-observe live instances, worst first, capped *)
  let ranked =
    List.init n (fun j -> (t.scoap.co.(ni + j), j))
    |> List.filter (fun (co, j) ->
           (not (dead j)) && ((not (Float.is_finite co)) || co > thr))
    |> List.sort (fun (a, i) (b, j) -> compare (b, i) (a, j))
  in
  let total_low = List.length ranked in
  List.iteri
    (fun rank (co, j) ->
      if rank < 12 then
        let loc = Diag.Inst (name, j) in
        let cell = m.Mapped.instances.(j).Mapped.cell_name in
        ds :=
          (if Float.is_finite co then
             Diag.infof ~rule:"map-low-observability" loc
               "%s output is hard to observe (CO %.1f, median %.1f): faults \
                here resist random patterns"
               cell co median
           else
             Diag.warnf ~rule:"map-low-observability" loc
               "%s output is statically unobservable: any fault here morphs \
                the circuit silently"
               cell)
          :: !ds)
    ranked;
  if total_low > 12 then
    ds :=
      Diag.infof ~rule:"map-low-observability" (Diag.Circuit name)
        "%d more low-observability instances not listed" (total_low - 12)
      :: !ds;
  (* statically redundant faults, aggregated per instance *)
  let emitted = ref 0 in
  for j = 0 to n - 1 do
    if not (dead j) then begin
      let k = Array.length m.Mapped.instances.(j).Mapped.fanins in
      let count = ref 0 and reasons = ref [] in
      List.iter
        (fun s ->
          for p = 0 to k - 1 do
            match t.redundant.(pin_idx lay j p s) with
            | Some r ->
                incr count;
                if not (List.mem (reason_name r) !reasons) then
                  reasons := reason_name r :: !reasons
            | None -> ()
          done;
          match t.redundant.(out_idx m lay j s) with
          | Some r ->
              incr count;
              if not (List.mem (reason_name r) !reasons) then
                reasons := reason_name r :: !reasons
          | None -> ())
        [ false; true ];
      if !count > 0 && !emitted < 20 then begin
        incr emitted;
        ds :=
          Diag.infof ~rule:"map-untestable-fault" (Diag.Inst (name, j))
            "%d statically redundant fault%s (%s)" !count
            (if !count = 1 then "" else "s")
            (String.concat ", " (List.sort compare !reasons))
          :: !ds
      end
    end
  done;
  List.rev !ds

(* ---------------- testability-driven covering cost ---------------- *)

(* The covering cost behind [map(cost=testability)]: real area scaled by a
   penalty for poorly-sensitizable pins.  A pin whose value reaches the
   output under a fraction [s] of the side-pin assignments contributes
   [1/s - 1] (0 for always-sensitized pins; an unsensitizable pin is
   charged as if [s = 1/128], worse than anything a 6-input table can
   produce), normalized by pin count so wide cells are not punished for
   merely having more pins.  The 1/8 weight keeps area the dominant term:
   tuned on the Table-3 suite, it trades a bounded area regression for
   strictly better tg-pseudo random-pattern fault detection (see the
   bench harness's testability section). *)
let cell_cost (c : Cell_lib.cell) =
  let k = c.Cell_lib.arity in
  if k = 0 then c.Cell_lib.area
  else begin
    let pen = ref 0.0 in
    for p = 0 to k - 1 do
      let d =
        Int64.logxor
          (cofactor_word c.Cell_lib.tt p false)
          (cofactor_word c.Cell_lib.tt p true)
      in
      let s = float_of_int (popcount64 d) /. 64.0 in
      pen := !pen +. ((if s > 0.0 then 1.0 /. s else 128.0) -. 1.0)
    done;
    c.Cell_lib.area *. (1.0 +. (!pen /. (8.0 *. float_of_int (k + 1))))
  end
