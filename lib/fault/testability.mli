(** Static testability analysis: SCOAP measures, fault collapsing and
    redundancy identification — all without simulation or SAT.

    Three classic analyses over a mapped netlist, generalized to arbitrary
    cells whose behaviour is only known as a truth table (the per-cell
    testability models are derived by exhaustive enumeration of the at most
    [2^6] pin assignments):

    {ul
    {- {b SCOAP.}  Controllability [CC0]/[CC1] (difficulty of setting a
       line to 0/1) and observability [CO] (difficulty of propagating a
       line's value to a primary output), per line and per instance pin.
       Scores are the usual additive SCOAP estimates: every finite score is
       achievable in isolation, and larger means harder; [infinity] means
       the analysis can prove no local assignment exists.  A companion
       COP-style signal-probability pass turns these into the per-fault
       detection-hardness {!t.score}.}
    {- {b Fault collapsing.}  Equivalence and dominance classes over the
       {!Gate_fault.faults_of} universe, computed from per-instance local
       error functions (the XOR of the good and faulty truth tables): equal
       error functions on one instance are equivalent; single-fanout wires
       identify a driver's output faults with the consumer's pin faults;
       containment of error sets gives dominance.  Detecting one
       representative per remaining class detects every fault outside the
       statically-redundant set.}
    {- {b Redundancy identification.}  A 3-valued implication engine
       (forward constant propagation through truth-table cofactors,
       backward justification, and static learning by
       assume-and-propagate) proves lines constant; faults that stick a
       line at its proven constant value, faults on logic that cannot
       reach an output, faults that do not change the cell function, and
       faults whose every propagation path is provably blocked by
       fanout-cone-disjoint constants are reported untestable without a
       single SAT call.  Every claim is {e sound} — [test_fault.ml]
       cross-checks each one against {!Gate_fault} ATPG.}}

    The derived per-cell pin-sensitization statistics also yield
    {!cell_cost}, the first plug-in for {!Mapper.params}[.cost]
    (testability-driven covering). *)

(** {1 SCOAP}

    Lines are numbered [0 .. num_inputs - 1] for primary inputs, then
    [num_inputs + j] for the output of instance [j].  Polarity is free:
    negated nets read the complemented line at no extra cost (the
    free-phase convention of the ambipolar libraries; CMOS inverters are
    explicit instances and charge their own level). *)

type scoap = {
  cc0 : float array;  (** per line: difficulty of driving it to 0 *)
  cc1 : float array;  (** per line: difficulty of driving it to 1 *)
  co : float array;   (** per line: difficulty of observing it at a PO *)
  pin_co : float array array;
      (** [pin_co.(j).(p)]: observability of instance [j]'s pin [p] —
          the cost of sensitizing the cell to that pin plus observing the
          instance output.  [infinity] when no side-pin assignment makes
          the output depend on the pin. *)
}

val line_of_net : Mapped.t -> Mapped.net -> int option
(** The line a net reads, if any ([None] for constants). *)

val scoap_of : Mapped.t -> scoap

val aig_scoap : Aig.t -> float array * float array * float array
(** [(cc0, cc1, co)] per AIG node, for the pre-mapping netlist: AND nodes
    combine fanins the classic way, complement edges swap CC0/CC1 for
    free.  Gives the synthesis side the same hardness signal the mapped
    analysis gives the covering side. *)

(** {1 Collapsing and redundancy} *)

type reason =
  | Vacuous  (** the faulty truth table equals the good one *)
  | Dead     (** the site cannot reach any primary output *)
  | Const_line of bool
      (** the line is proven constant and the fault sticks it at exactly
          that value *)
  | Blocked
      (** every fanout path is blocked by proven-constant side pins whose
          cones are disjoint from the fault's fanout cone *)

val reason_name : reason -> string

type summary = {
  t_faults : int;      (** full fault universe, [Gate_fault.faults_of] *)
  t_classes : int;     (** equivalence classes *)
  t_dominated : int;   (** classes removable by dominance *)
  t_collapsed : int;   (** classes left after dominance and redundancy *)
  t_redundant : int;   (** faults statically proven untestable *)
  t_vacuous : int;     (** ... of which: function-preserving faults *)
  t_dead : int;        (** ... on logic with no path to an output *)
  t_const : int;       (** ... sticking a proven-constant line at itself *)
  t_blocked : int;     (** ... with all propagation paths blocked *)
  t_const_lines : int; (** lines proven constant by implication *)
  t_cc_mean : float;   (** mean over lines of [max cc0 cc1] (finite only) *)
  t_cc_max : float;
  t_co_mean : float;   (** mean over lines of [co] (finite only) *)
  t_co_max : float;
  t_score_mean : float;
      (** mean COP detection-hardness score (bits) over non-redundant
          faults with a finite score *)
}

type t = {
  faults : Gate_fault.fault array;  (** [Gate_fault.faults_of] order *)
  scoap : scoap;
  score : float array;
      (** per fault: random-pattern detection hardness, [-log2] of the
          COP-style estimate (excitation probability x propagation
          probability under independent uniform inputs); larger is harder,
          [infinity] when the estimate is zero.  The additive SCOAP parts
          stay available via {!scoap} — their sum is near-constant along
          circuit paths, so it ranks deterministic ATPG effort, not
          random-pattern hardness. *)
  cls : int array;     (** per fault: its equivalence class id *)
  rep : int array;     (** per class: smallest member fault index *)
  dominated : bool array;
      (** per class: removable because some fault of another,
          non-redundant class has a contained error set *)
  dom_by : int array;
      (** per class: the witness — a fault index of another class whose
          test set is contained in this class's, so any test detecting it
          detects this class; [-1] when the class is not dominated *)
  redundant : reason option array;  (** per fault *)
  summary : summary;
}

val analyze : ?learn:bool -> Mapped.t -> t
(** The full static analysis.  [learn] (default [true]) enables the
    assume-and-propagate constant learning; without it only forward
    propagation from explicit constants runs, so redundancy identification
    is weaker but the analysis is linear. *)

(** {1 Reporting} *)

val summary_line : summary -> string
val tsv_header : string

val to_tsv : Mapped.t -> t -> string
(** One row per fault: description, class, representative flag, dominated
    flag, redundancy reason, SCOAP score components. *)

val lint : ?threshold:float -> name:string -> Mapped.t -> t -> Diag.t list
(** Static findings: [map-low-observability] (instances whose output
    observability is [infinity] or beyond [threshold] — default 3x the
    median finite observability — the sites where a fault morphs
    silently), and [map-untestable-fault] (instances carrying statically
    redundant faults).  Severity [Warning] for unobservable / redundant,
    [Info] for merely hard. *)

(** {1 Testability-driven covering} *)

val cell_cost : Cell_lib.cell -> float
(** Covering cost for {!Mapper.params}[.cost]: the cell's area plus a
    penalty for poorly-sensitizable pins, computed from the truth table
    alone.  A pin sensitized by a fraction [s] of side-pin assignments
    contributes [1/s - 1] — zero for always-sensitized pins (inverter,
    XOR), large for the late pins of wide AND-like cells — so the mapper
    prefers covers whose internal faults stay excitable and observable. *)
