(** Transistor-level fault dictionaries for the catalog cells.

    Each fault site of an elaborated cell ({!Switchsim.Fault.sites}) is
    injected and the cell exhaustively re-simulated against the fault-free
    golden output.  Outcomes follow the taxonomy of DESIGN.md §11; the
    library-specific phenomenon is {e function morphing} — a fault (most
    often a stuck polarity gate) silently re-mapping the cell onto a
    different Boolean function, which is matched back against the
    F00–F45 catalog. *)

type outcome =
  | Masked  (** no observable difference on any assignment *)
  | Degraded_only of int
      (** logic intact; that many assignments lose full swing *)
  | Morphed of {
      target : Catalog.function_match option;
          (** catalog identity of the faulty function, if any *)
      faulty_tt : int64;  (** 6-var replicated word, spec convention *)
      flipped : int;      (** assignments with flipped output *)
    }
  | Broken of { contention : int; floating : int; flipped : int }
      (** some assignment short-circuits or floats the output *)

type fault_entry = {
  fe_fault : Switchsim.Fault.t;
  fe_desc : string;
  fe_polarity : bool;  (** is a polarity-gate stuck-at *)
  fe_outcome : outcome;
}

type cell_report = {
  cr_entry : Catalog.entry;
  cr_family : Cell_netlist.family;
  cr_faults : fault_entry list;
}

val detected : outcome -> bool
(** Morphed or Broken — the fault changes what the cell computes. *)

val target_name : outcome -> string
(** ["F11"] exact, ["!F11"] complement, ["~F11"] NPN class, ["const0/1"],
    ["other"], or ["-"] for non-morph outcomes. *)

val outcome_name : outcome -> string

val analyze_fault : Cell_netlist.cell -> Switchsim.Fault.t -> fault_entry
val analyze_cell : Cell_netlist.family -> Catalog.entry -> cell_report

val catalog_for : Cell_netlist.family -> Catalog.entry list
(** Full catalog, or the CMOS-expressible subset for {!Cell_netlist.Cmos}. *)

val analyze_family : Cell_netlist.family -> cell_report list

type summary = {
  s_family : Cell_netlist.family;
  s_cells : int;
  s_faults : int;
  s_masked : int;
  s_degraded : int;
  s_morphed : int;
  s_broken : int;
  s_pol_faults : int;
  s_pol_morphed : int;
}

val summarize : Cell_netlist.family -> cell_report list -> summary

val coverage : summary -> float
(** (morphed + broken) / faults — the fraction of defects that change the
    computed function (degraded-only faults are parametric, not logical). *)

val summary_header : string
val summary_line : summary -> string

val morph_lines : ?polarity_only:bool -> cell_report list -> string list
(** One ["family Fxx: site -> target"] line per function-morphing fault. *)

val tsv_header : string
val reports_tsv : cell_report list -> string

val render_markdown :
  (Cell_netlist.family * cell_report list * summary) list -> string
(** The committed FAULTS.md document. *)
