(* Transistor-level fault dictionaries for the catalog cells (DESIGN.md §11).

   Every fault site of an elaborated cell (Switchsim.Fault.sites) is
   injected in turn and the cell exhaustively re-simulated.  The outcome
   taxonomy is driven by what makes this library special: an ambipolar
   polarity-gate fault does not usually kill the output — it re-maps the
   cell onto a different Boolean function, often another catalog entry
   (e.g. freezing the XOR-side polarity gate of F21 = (a+b)(c⊕d) turns the
   ⊕ into a literal and the cell computes F11 = (a+b)c).  Those
   function-morphing faults get first-class treatment: the faulty truth
   table is matched back against the catalog. *)

type outcome =
  | Masked
  | Degraded_only of int
  | Morphed of {
      target : Catalog.function_match option;
      faulty_tt : int64;  (* 6-var replicated word, spec convention *)
      flipped : int;
    }
  | Broken of { contention : int; floating : int; flipped : int }

type fault_entry = {
  fe_fault : Switchsim.Fault.t;
  fe_desc : string;
  fe_polarity : bool;
  fe_outcome : outcome;
}

type cell_report = {
  cr_entry : Catalog.entry;
  cr_family : Cell_netlist.family;
  cr_faults : fault_entry list;
}

let is_polarity = function
  | Switchsim.Fault.Device (_, Switchsim.Fault.Pol_stuck _) -> true
  | _ -> false

let detected = function
  | Morphed _ | Broken _ -> true
  | Masked | Degraded_only _ -> false

let target_name (o : outcome) =
  match o with
  | Morphed { target = Some m; _ } -> (
      let e = Catalog.match_entry m in
      match m with
      | Catalog.Exact _ -> e.Catalog.name
      | Catalog.Complement _ -> "!" ^ e.Catalog.name
      | Catalog.Npn_class _ -> "~" ^ e.Catalog.name)
  | Morphed { target = None; faulty_tt; _ } ->
      if faulty_tt = 0L then "const0"
      else if faulty_tt = -1L then "const1"
      else "other"
  | Masked -> "-"
  | Degraded_only _ -> "-"
  | Broken _ -> "-"

let outcome_name = function
  | Masked -> "masked"
  | Degraded_only _ -> "degraded"
  | Morphed _ -> "morphed"
  | Broken _ -> "broken"

let analyze_fault (cell : Cell_netlist.cell) fault =
  let open Switchsim in
  let n = Gate_spec.arity cell.Cell_netlist.spec in
  let inv = inverting cell in
  let contention = ref 0
  and floating = ref 0
  and flipped = ref 0
  and degraded = ref 0 in
  let faulty_bits = Array.make (1 lsl n) false in
  for a = 0 to (1 lsl n) - 1 do
    let bits v = a land (1 lsl v) <> 0 in
    let good = cell_output cell bits in
    let bad = cell_output_with ~fault cell bits in
    match bad with
    | Contention -> incr contention
    | Floating -> incr floating
    | Driven (lv, st) -> (
        let bv = lv = L1 in
        faulty_bits.(a) <- bv <> inv;
        match good with
        | Driven (glv, gst) ->
            if glv <> lv then incr flipped
            else if gst = Strong && st = Degraded then incr degraded
        | Floating | Contention ->
            (* a good cell never floats or contends (ERC-clean catalog);
               count defensively as a flip if it ever does *)
            incr flipped)
  done;
  let outcome =
    if !contention > 0 || !floating > 0 then
      Broken { contention = !contention; floating = !floating;
               flipped = !flipped }
    else if !flipped > 0 then begin
      let tt =
        (Tt.words (Tt.of_fun n (fun a -> faulty_bits.(a)))).(0)
      in
      Morphed
        { target = Catalog.find_by_function tt; faulty_tt = tt;
          flipped = !flipped }
    end
    else if !degraded > 0 then Degraded_only !degraded
    else Masked
  in
  {
    fe_fault = fault;
    fe_desc = Switchsim.Fault.describe cell fault;
    fe_polarity = is_polarity fault;
    fe_outcome = outcome;
  }

let analyze_cell family (entry : Catalog.entry) =
  let cell = Cell_netlist.elaborate family entry.Catalog.spec in
  let faults =
    List.map (analyze_fault cell) (Switchsim.Fault.sites cell)
  in
  { cr_entry = entry; cr_family = family; cr_faults = faults }

let catalog_for family =
  match family with
  | Cell_netlist.Cmos -> Catalog.cmos_subset
  | _ -> Catalog.all

let analyze_family family =
  List.map (analyze_cell family) (catalog_for family)

(* ---------------- aggregation ---------------- *)

type summary = {
  s_family : Cell_netlist.family;
  s_cells : int;
  s_faults : int;
  s_masked : int;
  s_degraded : int;
  s_morphed : int;
  s_broken : int;
  s_pol_faults : int;
  s_pol_morphed : int;
}

let summarize family reports =
  let s =
    ref
      {
        s_family = family;
        s_cells = List.length reports;
        s_faults = 0;
        s_masked = 0;
        s_degraded = 0;
        s_morphed = 0;
        s_broken = 0;
        s_pol_faults = 0;
        s_pol_morphed = 0;
      }
  in
  List.iter
    (fun r ->
      List.iter
        (fun fe ->
          let t = !s in
          let t = { t with s_faults = t.s_faults + 1 } in
          let t =
            match fe.fe_outcome with
            | Masked -> { t with s_masked = t.s_masked + 1 }
            | Degraded_only _ -> { t with s_degraded = t.s_degraded + 1 }
            | Morphed _ -> { t with s_morphed = t.s_morphed + 1 }
            | Broken _ -> { t with s_broken = t.s_broken + 1 }
          in
          let t =
            if fe.fe_polarity then
              {
                t with
                s_pol_faults = t.s_pol_faults + 1;
                s_pol_morphed =
                  (t.s_pol_morphed
                  + match fe.fe_outcome with Morphed _ -> 1 | _ -> 0);
              }
            else t
          in
          s := t)
        r.cr_faults)
    reports;
  !s

let coverage s =
  if s.s_faults = 0 then 1.0
  else float_of_int (s.s_morphed + s.s_broken) /. float_of_int s.s_faults

(* ---------------- rendering ---------------- *)

let summary_header =
  Printf.sprintf "%-12s %6s %7s %7s %9s %8s %7s %6s %10s %10s"
    "family" "cells" "faults" "masked" "degraded" "morphed" "broken"
    "cov%" "pol-faults" "pol-morphs"

let summary_line s =
  Printf.sprintf "%-12s %6d %7d %7d %9d %8d %7d %6.1f %10d %10d"
    (Cell_netlist.family_name s.s_family)
    s.s_cells s.s_faults s.s_masked s.s_degraded s.s_morphed s.s_broken
    (100.0 *. coverage s) s.s_pol_faults s.s_pol_morphed

(* the function-morph lines, polarity faults first (the report the paper's
   structure makes interesting) *)
let morph_lines ?(polarity_only = false) reports =
  List.concat_map
    (fun r ->
      List.filter_map
        (fun fe ->
          match fe.fe_outcome with
          | Morphed _ when fe.fe_polarity || not polarity_only ->
              Some
                (Printf.sprintf "%s %s: %s -> %s"
                   (Cell_netlist.family_name r.cr_family)
                   r.cr_entry.Catalog.name fe.fe_desc
                   (target_name fe.fe_outcome))
          | _ -> None)
        r.cr_faults)
    reports

let tsv_header =
  String.concat "\t"
    [ "family"; "cell"; "fault"; "outcome"; "target"; "flipped";
      "contention"; "floating"; "degraded"; "polarity" ]

let entry_to_tsv family (r : cell_report) fe =
  let flipped, contention, floating, degraded =
    match fe.fe_outcome with
    | Masked -> (0, 0, 0, 0)
    | Degraded_only d -> (0, 0, 0, d)
    | Morphed { flipped; _ } -> (flipped, 0, 0, 0)
    | Broken { contention; floating; flipped } ->
        (flipped, contention, floating, 0)
  in
  String.concat "\t"
    [
      Cell_netlist.family_name family;
      r.cr_entry.Catalog.name;
      fe.fe_desc;
      outcome_name fe.fe_outcome;
      target_name fe.fe_outcome;
      string_of_int flipped;
      string_of_int contention;
      string_of_int floating;
      string_of_int degraded;
      (if fe.fe_polarity then "1" else "0");
    ]

let reports_tsv reports =
  tsv_header :: List.concat_map
    (fun r -> List.map (entry_to_tsv r.cr_family r) r.cr_faults)
    reports
  |> String.concat "\n"

(* FAULTS.md-style markdown for a set of analyzed families *)
let render_markdown per_family =
  let b = Buffer.create (1 lsl 16) in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# Catalog fault dictionary\n\n";
  pf "Transistor-level fault dictionary of the full catalog (every fault\n";
  pf "site of every cell, exhaustively simulated; see DESIGN.md §11).\n";
  pf "Generated by `fault --catalog --md`.\n\n";
  pf "## Per-family summary\n\n";
  pf "| family | cells | faults | masked | degraded | morphed | broken | \
      coverage | polarity faults | polarity morphs |\n";
  pf "|---|--:|--:|--:|--:|--:|--:|--:|--:|--:|\n";
  List.iter
    (fun (_, _, s) ->
      pf "| %s | %d | %d | %d | %d | %d | %d | %.1f%% | %d | %d |\n"
        (Cell_netlist.family_name s.s_family)
        s.s_cells s.s_faults s.s_masked s.s_degraded s.s_morphed s.s_broken
        (100.0 *. coverage s) s.s_pol_faults s.s_pol_morphed)
    per_family;
  pf "\nCoverage counts the faults that change the Boolean function\n";
  pf "(morphed) or break the output (broken: contention / floating);\n";
  pf "degraded-only faults weaken levels without flipping logic and\n";
  pf "masked faults are unobservable at any input assignment.\n";
  List.iter
    (fun (family, reports, _) ->
      let lines = morph_lines ~polarity_only:true reports in
      if lines <> [] then begin
        pf "\n## %s: function-morphing polarity-gate faults (%d)\n\n"
          (Cell_netlist.family_name family)
          (List.length lines);
        pf "A stuck polarity gate re-maps the cell onto another function\n";
        pf "(`Fxx` exact table, `!Fxx` its complement, `~Fxx` same NPN\n";
        pf "class, `const0/1` a constant, `other` outside the catalog):\n\n";
        pf "```\n";
        List.iter (fun l -> pf "%s\n" l) lines;
        pf "```\n"
      end)
    per_family;
  Buffer.contents b
