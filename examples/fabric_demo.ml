(* Sec. 5 of the paper proposes regular fabrics of interleaved generalized
   NOR/NAND blocks, functionalized in-field through the polarity gates.
   This example maps an adder to the static CNTFET library and places the
   mapped cells onto such a fabric, reporting utilization and the number of
   in-field configuration bits.

     dune exec examples/fabric_demo.exe *)

let () =
  let aig = Arith.adder 16 in
  let r = Core.run ~family:`Tg_static aig in
  Format.printf "mapped: %a@." Mapped.pp_stats r.Core.mapped;

  let gates = (Mapped.stats r.Core.mapped).Mapped.gates in
  let side = 1 + int_of_float (sqrt (float_of_int (2 * gates))) in
  let fab = Fabric.create ~rows:side ~cols:side in
  Format.printf "fabric: %dx%d checkerboard of GNOR/GNAND blocks@."
    (Fabric.rows fab) (Fabric.cols fab);

  let p =
    match Fabric.place fab r.Core.mapped with
    | Ok p -> p
    | Error e ->
        prerr_endline (Fabric.error_message e);
        exit 1
  in
  Format.printf "%a@." Fabric.pp_placement p;

  (* show the first few block configurations *)
  Format.printf "first configured tiles:@.";
  List.iteri
    (fun i (row, col, (c : Fabric.config)) ->
      if i < 8 then
        Format.printf "  (%2d,%2d) %s block <- %s, polarity bits %02x@." row col
          (match Fabric.block_type fab row col with
          | Fabric.Gnor -> "GNOR "
          | Fabric.Gnand -> "GNAND")
          c.Fabric.cell c.Fabric.polarities)
    p.Fabric.placed;
  Format.printf "per-block configuration: %d bits (function select + polarity)@."
    Fabric.config_bits_per_block
