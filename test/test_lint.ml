(* Tests for the lint subsystem: a positive run over the real catalog and
   flow, plus deliberately-broken fixtures proving that every analyzer rule
   actually fires.  Well-formed artifacts cannot be made ill-formed through
   the public constructors, so the AIG fixtures use [Aig.unsafe_set_and]
   and the cell/netlist fixtures are built by hand. *)

let has ?sev rule diags =
  List.exists
    (fun (d : Diag.t) ->
      d.Diag.rule = rule
      && match sev with None -> true | Some s -> d.Diag.severity = s)
    diags

let check_fires name ?sev rule diags =
  Alcotest.(check bool) (name ^ " fires " ^ rule) true (has ?sev rule diags)

let check_clean name diags =
  Alcotest.(check int) (name ^ " has no errors") 0
    (List.length (Diag.errors diags))

(* ---------------- cell ERC ---------------- *)

let rec map_widths f (net : Cell_netlist.net) =
  match net with
  | Cell_netlist.D d -> Cell_netlist.D { d with Cell_netlist.width = f d.Cell_netlist.width }
  | Cell_netlist.T (d1, d2) ->
      Cell_netlist.T
        ( { d1 with Cell_netlist.width = f d1.Cell_netlist.width },
          { d2 with Cell_netlist.width = f d2.Cell_netlist.width } )
  | Cell_netlist.S l -> Cell_netlist.S (List.map (map_widths f) l)
  | Cell_netlist.P l -> Cell_netlist.P (List.map (map_widths f) l)

let cell_map_widths f (c : Cell_netlist.cell) =
  {
    c with
    Cell_netlist.pull_up = Option.map (map_widths f) c.Cell_netlist.pull_up;
    pull_down = map_widths f c.Cell_netlist.pull_down;
  }

let spec_of n = (Catalog.find n).Catalog.spec

let test_catalog_clean () =
  let diags = Cell_erc.check_catalog () in
  check_clean "catalog" diags;
  (* the only expected warnings are the paper-documented degraded levels of
     the pass-transistor pseudo family (its Sec. 4.2 "bad choice") *)
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check string) "only degraded warnings" "cell-degraded"
        d.Diag.rule;
      match d.Diag.loc with
      | Diag.Cell (fam, _) ->
          Alcotest.(check string) "only on pass-pseudo" "cntfet-pass-pseudo"
            fam
      | _ -> Alcotest.fail "warning not located at a cell")
    (Diag.warnings diags)

let test_contention_floating () =
  (* both networks conduct on A=1, neither on A=0 *)
  let dev =
    {
      Cell_netlist.kind = Cell_netlist.Configured;
      gate = { Cell_netlist.v = 0; ph = true };
      polgate = None;
      on = true;
      width = 1.0;
    }
  in
  let broken =
    {
      Cell_netlist.family = Cell_netlist.Tg_static;
      spec = Gate_spec.lit 0;
      pull_up = Some (Cell_netlist.D dev);
      pull_down = Cell_netlist.D dev;
      bias_width = 0.0;
      restoring_inverter = false;
    }
  in
  let diags = Cell_erc.check_cell ~name:"fixture" broken in
  check_fires "contending cell" ~sev:Diag.Error "cell-contention" diags;
  check_fires "contending cell" ~sev:Diag.Error "cell-floating" diags

let test_degraded () =
  (* a pass-static cell stripped of its restoring inverter emits degraded
     levels while its family still promises full swing *)
  let c = Cell_netlist.elaborate Cell_netlist.Pass_static (spec_of "F01") in
  let broken = { c with Cell_netlist.restoring_inverter = false } in
  let diags = Cell_erc.check_cell ~name:"fixture" broken in
  check_fires "unrestored pass cell" ~sev:Diag.Error "cell-degraded" diags;
  (* with the inverter in place the same cell is clean *)
  check_clean "restored pass cell" (Cell_erc.check_cell c)

let test_function_mismatch () =
  let c = Cell_netlist.elaborate Cell_netlist.Tg_static (spec_of "F02") in
  let broken = { c with Cell_netlist.spec = spec_of "F03" } in
  check_fires "OR network with AND spec" ~sev:Diag.Error "cell-function"
    (Cell_erc.check_cell ~name:"fixture" broken)

let test_sizing () =
  let c = Cell_netlist.elaborate Cell_netlist.Tg_static (spec_of "F00") in
  check_fires "double-width static cell" ~sev:Diag.Error "cell-sizing-path"
    (Cell_erc.check_cell ~name:"fixture" (cell_map_widths (fun w -> 2. *. w) c));
  let p = Cell_netlist.elaborate Cell_netlist.Tg_pseudo (spec_of "F00") in
  check_fires "overgrown bias" ~sev:Diag.Error "cell-sizing-bias"
    (Cell_erc.check_cell ~name:"fixture"
       { p with Cell_netlist.bias_width = 2. *. p.Cell_netlist.bias_width })

let test_width_structure () =
  let c = Cell_netlist.elaborate Cell_netlist.Tg_static (spec_of "F03") in
  check_fires "zero-width devices" ~sev:Diag.Error "cell-width"
    (Cell_erc.check_cell ~name:"fixture" (cell_map_widths (fun _ -> 0.) c));
  check_fires "static cell without pull-up" ~sev:Diag.Error "cell-structure"
    (Cell_erc.check_cell ~name:"fixture" { c with Cell_netlist.pull_up = None })

let test_cmos_xor () =
  check_fires "XOR spec in CMOS" ~sev:Diag.Error "cell-cmos-xor"
    (Cell_erc.check_spec Cell_netlist.Cmos ~name:"F01" (spec_of "F01"))

(* ---------------- AIG lint ---------------- *)

(* inputs a=node 1, b=node 2; first AND is node 3 *)
let two_input_base () =
  let g = Aig.create () in
  let a = Aig.add_input ~name:"a" g in
  let b = Aig.add_input ~name:"b" g in
  (g, a, b)

let test_aig_clean () =
  let g, a, b = two_input_base () in
  Aig.add_output g "o" (Aig.mk_mux g a b (Aig.lnot b));
  Alcotest.(check int) "clean AIG has no diagnostics" 0
    (List.length (Aig_lint.check g))

let test_aig_cycle () =
  let g, a, b = two_input_base () in
  let n = Aig.mk_and g a b in
  Aig.add_output g "o" n;
  Aig.unsafe_set_and g (Aig.node_of n) n a;
  let diags = Aig_lint.check g in
  check_fires "self-loop" ~sev:Diag.Error "aig-cycle" diags;
  check_fires "self-loop" ~sev:Diag.Error "aig-order" diags

let test_aig_order_bookkeeping () =
  (* acyclic but order-violating: node 3 reads node 4, so [Aig.levels]'s
     single index-order pass disagrees with a true longest-path pass *)
  let g, a, b = two_input_base () in
  let n3 = Aig.mk_and g a b in
  let n4 = Aig.mk_and g a (Aig.lnot b) in
  Aig.unsafe_set_and g (Aig.node_of n3) n4 a;
  Aig.add_output g "o" n3;
  let diags = Aig_lint.check g in
  check_fires "forward reference" ~sev:Diag.Error "aig-order" diags;
  check_fires "forward reference" ~sev:Diag.Error "aig-bookkeeping" diags

let test_aig_dup () =
  let g, a, b = two_input_base () in
  let n3 = Aig.mk_and g a b in
  let n4 = Aig.mk_and g a (Aig.lnot b) in
  Aig.add_output g "o" (Aig.mk_and g n3 n4);
  Aig.unsafe_set_and g (Aig.node_of n4) a b;
  check_fires "copied fanins" ~sev:Diag.Error "aig-dup" (Aig_lint.check g)

let test_aig_range () =
  let g, a, b = two_input_base () in
  let n = Aig.mk_and g a b in
  Aig.add_output g "o" n;
  Aig.unsafe_set_and g (Aig.node_of n) (Aig.lit_of_node 99) a;
  check_fires "fanin out of range" ~sev:Diag.Error "aig-range"
    (Aig_lint.check g)

let test_aig_dead () =
  let g, a, b = two_input_base () in
  let x = Aig.mk_and g a b in
  let _y = Aig.mk_and g x (Aig.lnot a) in
  Aig.add_output g "o" (Aig.mk_and g (Aig.lnot a) (Aig.lnot b)) ;
  let diags = Aig_lint.check g in
  check_fires "dead top node" ~sev:Diag.Warning "aig-dangling" diags;
  check_fires "dead chain interior" ~sev:Diag.Warning "aig-unreachable" diags

let test_aig_no_output () =
  let g, a, b = two_input_base () in
  ignore (Aig.mk_and g a b);
  check_fires "outputless graph" ~sev:Diag.Warning "aig-no-output"
    (Aig_lint.check g)

(* ---------------- mapped-netlist lint ---------------- *)

let tt_and2 = 0x8888888888888888L
let tt_var0 = 0xAAAAAAAAAAAAAAAAL

let pi i = { Mapped.driver = Mapped.Pi i; negated = false }
let of_inst j = { Mapped.driver = Mapped.Inst j; negated = false }

(* golden: o = a AND b (node 3, literal 6) *)
let and_golden () =
  let g, a, b = two_input_base () in
  Aig.add_output g "o" (Aig.mk_and g a b);
  g

let and_instance ?(tt = tt_and2) ?(cover = true) () =
  {
    Mapped.cell_name = "F03";
    area = 1.0;
    delay = 1.0;
    drive = None;
    fanin_caps = [||];
    fanins = [| pi 0; pi 1 |];
    tt;
    cover =
      (if cover then
         Some
           {
             Mapped.root_lit = Aig.lit_of_node 3;
             fanin_lits = [| Aig.lit_of_node 1; Aig.lit_of_node 2 |];
             cut_nodes = [| 1; 2 |];
           }
       else None);
  }

let and_netlist ?tt ?cover ?(outputs = [| ("o", of_inst 0) |])
    ?(num_inputs = 2) ?(extra = [||]) () =
  {
    Mapped.lib_name = "fixture";
    tau_ps = 1.0;
    num_inputs;
    input_names = [| "a"; "b" |];
    instances = Array.append [| and_instance ?tt ?cover () |] extra;
    outputs;
  }

let test_map_clean () =
  let golden = and_golden () in
  let m = and_netlist () in
  check_clean "hand-built AND netlist" (Map_lint.check ~golden m);
  (* same netlist through the SAT path *)
  check_clean "AND netlist, SAT path"
    (Map_lint.check ~golden ~tt_max_leaves:1 m)

let test_map_function () =
  let golden = and_golden () in
  check_fires "OR tt on an AND cover" ~sev:Diag.Error "map-cell-function"
    (Map_lint.check ~golden (and_netlist ~tt:0xEEEEEEEEEEEEEEEEL ()));
  check_fires "OR tt on an AND cover, SAT path" ~sev:Diag.Error
    "map-cell-function"
    (Map_lint.check ~golden ~tt_max_leaves:1
       (and_netlist ~tt:0xEEEEEEEEEEEEEEEEL ()))

let test_map_chain () =
  let golden = and_golden () in
  let m = and_netlist () in
  let inst = m.Mapped.instances.(0) in
  let cov =
    {
      Mapped.root_lit = Aig.lit_of_node 3;
      (* claims inverted a; the net really carries positive a *)
      fanin_lits = [| Aig.lit_of_node 1 ~compl:true; Aig.lit_of_node 2 |];
      cut_nodes = [| 1; 2 |];
    }
  in
  let m =
    { m with Mapped.instances = [| { inst with Mapped.cover = Some cov } |] }
  in
  check_fires "fanin carries the wrong literal" ~sev:Diag.Error
    "map-cover-chain"
    (Map_lint.check ~golden m)

let test_map_output () =
  let golden = and_golden () in
  let wrong = { Mapped.driver = Mapped.Inst 0; negated = true } in
  check_fires "inverted output" ~sev:Diag.Error "map-output"
    (Map_lint.check ~golden (and_netlist ~outputs:[| ("o", wrong) |] ()));
  check_fires "renamed output" ~sev:Diag.Warning "map-output-name"
    (Map_lint.check ~golden (and_netlist ~outputs:[| ("z", of_inst 0) |] ()))

let test_map_structure () =
  let bad_ref = { Mapped.driver = Mapped.Inst 5; negated = false } in
  let inst = and_instance () in
  let m =
    and_netlist
      ~extra:[| { inst with Mapped.fanins = [| bad_ref; pi 1 |] } |]
      ()
  in
  let diags = Map_lint.check m in
  check_fires "fanin instance out of range" ~sev:Diag.Error "map-range" diags;
  check_fires "extra instance drives nothing" ~sev:Diag.Warning "map-unused"
    diags;
  let self = { Mapped.driver = Mapped.Inst 0; negated = false } in
  let m =
    and_netlist ~extra:[||] ()
  in
  let inst0 = { (m.Mapped.instances.(0)) with Mapped.fanins = [| self; pi 1 |] } in
  let m = { m with Mapped.instances = [| inst0 |] } in
  check_fires "self-referencing instance" ~sev:Diag.Error "map-order"
    (Map_lint.check m)

let test_map_io_cover () =
  let golden = and_golden () in
  check_fires "PI count mismatch" ~sev:Diag.Error "map-io"
    (Map_lint.check ~golden (and_netlist ~num_inputs:3 ()));
  check_fires "cover stripped" ~sev:Diag.Warning "map-cover-missing"
    (Map_lint.check ~golden (and_netlist ~cover:false ()));
  let m = and_netlist () in
  let inst = m.Mapped.instances.(0) in
  let cov =
    {
      Mapped.root_lit = Aig.lit_of_node 3;
      fanin_lits = [| 2 |];
      cut_nodes = [| 1 |];
    }
  in
  let m =
    { m with Mapped.instances = [| { inst with Mapped.cover = Some cov } |] }
  in
  check_fires "cover arity mismatch" ~sev:Diag.Error "map-cover-shape"
    (Map_lint.check ~golden m)

let test_map_library () =
  let lib = Core.library `Tg_static in
  let m = and_netlist () in
  let inst = m.Mapped.instances.(0) in
  check_fires "unknown cell name" ~sev:Diag.Error "map-cell-unknown"
    (Map_lint.check ~lib
       { m with Mapped.instances = [| { inst with Mapped.cell_name = "BOGUS" } |] });
  (* XOR is in no NPN class with AND/OR, so an F03 instance carrying an
     XOR table is a miswire even though both are 2-input cells *)
  check_fires "XOR tt under an AND cell" ~sev:Diag.Error "map-cell-npn"
    (Map_lint.check ~lib
       { m with Mapped.instances = [| { inst with Mapped.tt = 0x6666666666666666L } |] })

(* support-reduced covers: leaves that are not a structural cut must be
   accepted when (and only when) the composition over the PIs checks out *)
let test_map_support_reduced () =
  let g, a, b = two_input_base () in
  let n3 = Aig.mk_and g a b in
  let n4 = Aig.mk_and g n3 a in
  (* = a AND b *)
  Aig.add_output g "o" n4;
  let inst0 = and_instance () in
  let buf tt =
    {
      Mapped.cell_name = "BUF";
      area = 1.0;
      delay = 1.0;
      drive = None;
      fanin_caps = [||];
      fanins = [| of_inst 0 |];
      tt;
      cover =
        Some
          {
            Mapped.root_lit = n4;
            fanin_lits = [| n3 |];
            (* deliberately NOT a wider structural cut: forces the
               semantic (SAT) fallback path *)
            cut_nodes = [| Aig.node_of n3 |];
          };
    }
  in
  let m tt =
    {
      Mapped.lib_name = "fixture";
      tau_ps = 1.0;
      num_inputs = 2;
      input_names = [| "a"; "b" |];
      instances = [| inst0; buf tt |];
      outputs = [| ("o", of_inst 1) |];
    }
  in
  (* [n3] does not cut cone(n4) — the cone also reaches input a — but a
     buffer of n3 is functionally the root, so only an Info is reported *)
  let diags = Map_lint.check ~golden:g (m tt_var0) in
  check_clean "support-reduced buffer" diags;
  check_fires "support-reduced buffer" ~sev:Diag.Info "map-cover-cut" diags;
  (* an inverter in the same position is semantically refuted *)
  check_fires "support-reduced inverter" ~sev:Diag.Error "map-cell-function"
    (Map_lint.check ~golden:g (m (Int64.lognot tt_var0)))

(* ---------------- full flow ---------------- *)

let test_flow_clean () =
  List.iter
    (fun fam ->
      let e = Bench_suite.find "add-16" in
      let aig = e.Bench_suite.build () in
      check_clean "raw adder AIG" (Aig_lint.check aig);
      let opt = Synth.light aig in
      check_clean "optimized adder AIG" (Aig_lint.check opt);
      let lib = Core.library fam in
      let m = Mapper.map lib opt in
      check_clean
        ("mapped adder, " ^ Cell_lib.name lib)
        (Map_lint.check ~lib ~golden:opt m))
    [ `Tg_static; `Cmos ]

(* ---------------- diagnostic rendering ---------------- *)

(* Negative fixture: a message carrying embedded tabs, newlines, CRs and
   backslashes (e.g. quoted user input from a parse error) must still render
   as exactly one TSV row of exactly four fields, losslessly. *)
let test_diag_tsv_escaping () =
  let d =
    Diag.errorf ~rule:"input-parse"
      (Diag.Circuit "bad\tname")
      "line 3: unexpected token %S near\n\tcol\r4 (path C:\\tmp)" "a\tb"
  in
  let row = Diag.to_tsv d in
  Alcotest.(check int)
    "one row" 1
    (List.length (String.split_on_char '\n' row));
  Alcotest.(check bool) "no raw CR" false (String.contains row '\r');
  (match String.split_on_char '\t' row with
  | [ sev; rule; loc; msg ] ->
      Alcotest.(check string) "severity field" "error" sev;
      Alcotest.(check string) "rule field" "input-parse" rule;
      Alcotest.(check string) "location field" "bad\\tname" loc;
      Alcotest.(check bool) "message keeps escaped newline" true
        (String.length msg > 0
        && not (String.contains msg '\n')
        && not (String.contains msg '\r'))
  | fields ->
      Alcotest.failf "expected exactly 4 TSV fields, got %d"
        (List.length fields));
  (* escaping is injective: distinct messages stay distinct *)
  let mk m = Diag.to_tsv (Diag.errorf ~rule:"r" (Diag.Circuit "c") "%s" m) in
  Alcotest.(check bool) "tab vs literal backslash-t differ" true
    (mk "a\tb" <> mk "a\\tb");
  (* a tab-free, newline-free finding renders byte-identically to the
     pre-escaping convention *)
  Alcotest.(check string) "plain findings unchanged"
    "warning\tw-rule\tplain\thello world"
    (Diag.to_tsv (Diag.warnf ~rule:"w-rule" (Diag.Circuit "plain") "hello world"))

(* ---------------- dynamic-gate edge cases ---------------- *)

let test_dynamic_edges () =
  Alcotest.(check bool) "0-term GNOR never degrades" false
    (Switchsim.Dynamic.has_degraded_assignment 0);
  Alcotest.(check bool) "1-term GNOR has a degraded assignment" true
    (Switchsim.Dynamic.has_degraded_assignment 1);
  (match Switchsim.Dynamic.gnor [] with
  | Switchsim.Driven (Switchsim.L1, Switchsim.Strong) -> ()
  | _ -> Alcotest.fail "empty GNOR must hold the precharged 1");
  Alcotest.(check bool) "empty GNOR value" true (Switchsim.Dynamic.value [])

let () =
  Alcotest.run "lint"
    [
      ( "cell-erc",
        [
          Alcotest.test_case "catalog clean" `Quick test_catalog_clean;
          Alcotest.test_case "contention/floating" `Quick
            test_contention_floating;
          Alcotest.test_case "degraded" `Quick test_degraded;
          Alcotest.test_case "function mismatch" `Quick test_function_mismatch;
          Alcotest.test_case "sizing" `Quick test_sizing;
          Alcotest.test_case "width/structure" `Quick test_width_structure;
          Alcotest.test_case "cmos xor" `Quick test_cmos_xor;
        ] );
      ( "aig-lint",
        [
          Alcotest.test_case "clean" `Quick test_aig_clean;
          Alcotest.test_case "cycle" `Quick test_aig_cycle;
          Alcotest.test_case "order/bookkeeping" `Quick
            test_aig_order_bookkeeping;
          Alcotest.test_case "duplicates" `Quick test_aig_dup;
          Alcotest.test_case "range" `Quick test_aig_range;
          Alcotest.test_case "dangling/unreachable" `Quick test_aig_dead;
          Alcotest.test_case "no output" `Quick test_aig_no_output;
        ] );
      ( "map-lint",
        [
          Alcotest.test_case "clean" `Quick test_map_clean;
          Alcotest.test_case "function" `Quick test_map_function;
          Alcotest.test_case "chain" `Quick test_map_chain;
          Alcotest.test_case "outputs" `Quick test_map_output;
          Alcotest.test_case "structure" `Quick test_map_structure;
          Alcotest.test_case "io/cover" `Quick test_map_io_cover;
          Alcotest.test_case "library" `Quick test_map_library;
          Alcotest.test_case "support-reduced" `Quick
            test_map_support_reduced;
        ] );
      ( "flow",
        [
          Alcotest.test_case "add-16 clean" `Quick test_flow_clean;
          Alcotest.test_case "diag tsv escaping" `Quick test_diag_tsv_escaping;
          Alcotest.test_case "dynamic edges" `Quick test_dynamic_edges;
        ] );
    ]
