(* Tests for the synthesis passes: equivalence (SAT-checked), size
   monotonicity, and effectiveness on known-reducible structures. *)

let rng = Rand64.create 37L

let random_aig nin nnodes seed =
  let rng = Rand64.create (Int64.of_int seed) in
  let g = Aig.create () in
  let pool = ref (Array.to_list (Array.init nin (fun _ -> Aig.add_input g))) in
  for _ = 1 to nnodes do
    let pick () =
      let l = List.nth !pool (Rand64.int rng (List.length !pool)) in
      if Rand64.bool rng then Aig.lnot l else l
    in
    let x =
      match Rand64.int rng 4 with
      | 0 -> Aig.mk_and g (pick ()) (pick ())
      | 1 -> Aig.mk_or g (pick ()) (pick ())
      | 2 -> Aig.mk_xor g (pick ()) (pick ())
      | _ -> Aig.mk_mux g (pick ()) (pick ()) (pick ())
    in
    pool := x :: !pool
  done;
  List.iteri
    (fun i l -> if i < 6 then Aig.add_output g (Printf.sprintf "o%d" i) l)
    !pool;
  g

let passes : (string * (Aig.t -> Aig.t)) list =
  [
    ("balance", Synth.balance);
    ("rewrite", (fun a -> Synth.rewrite a));
    ("rewrite -z", (fun a -> Synth.rewrite ~zero_gain:true a));
    ("refactor", (fun a -> Synth.refactor a));
    ("resyn2rs", (fun a -> Synth.resyn2rs a));
    ("light", (fun a -> Synth.light a));
  ]

let test_equivalence () =
  for seed = 1 to 5 do
    let aig = random_aig 7 50 seed in
    List.iter
      (fun (name, pass) ->
        let out = pass aig in
        match Cec.check aig out with
        | Cec.Equivalent -> ()
        | Cec.Inequivalent _ -> Alcotest.failf "%s broke seed %d" name seed
        | Cec.Undecided -> Alcotest.failf "%s undecided" name)
      passes
  done;
  Alcotest.(check pass) "all passes preserve semantics" () ()

let test_equivalence_structured () =
  List.iter
    (fun (cname, aig) ->
      List.iter
        (fun (pname, pass) ->
          let out = pass aig in
          match Cec.check aig out with
          | Cec.Equivalent -> ()
          | _ -> Alcotest.failf "%s broke %s" pname cname)
        passes)
    [ ("adder10", Arith.adder 10);
      ("mult5", Arith.multiplier 5);
      ("ecc", Ecc.decoder ~data:8 ~checks:5 ~detect:false) ];
  Alcotest.(check pass) "structured circuits preserved" () ()

let test_monotone_size () =
  for seed = 10 to 16 do
    let aig = random_aig 8 80 seed in
    List.iter
      (fun (name, pass) ->
        if name <> "balance" then begin
          let out = pass aig in
          if Aig.num_ands out > Aig.num_ands aig then
            Alcotest.failf "%s grew seed %d (%d -> %d)" name seed
              (Aig.num_ands aig) (Aig.num_ands out)
        end)
      passes
  done;
  Alcotest.(check pass) "passes are size-monotone" () ()

let test_balance_reduces_depth () =
  (* a 32-input AND chain balances from depth 31 to depth 5 *)
  let g = Aig.create () in
  let ins = Array.init 32 (fun _ -> Aig.add_input g) in
  let chain = Array.fold_left (fun acc l -> Aig.mk_and g acc l) ins.(0)
      (Array.sub ins 1 31) in
  Aig.add_output g "y" chain;
  Alcotest.(check int) "chain depth" 31 (Aig.depth g);
  let b = Synth.balance g in
  Alcotest.(check int) "balanced depth" 5 (Aig.depth b);
  Alcotest.(check int) "same size" 31 (Aig.num_ands b)

let test_rewrite_removes_redundancy () =
  (* f = ab + a!b is a, built redundantly: rewrite must collapse it *)
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let x = Aig.mk_or g (Aig.mk_and g a b) (Aig.mk_and g a (Aig.lnot b)) in
  Aig.add_output g "y" x;
  Alcotest.(check int) "redundant build" 3 (Aig.num_ands g);
  let out = Synth.rewrite g in
  Alcotest.(check int) "collapsed to wire" 0 (Aig.num_ands out);
  match Cec.check g out with
  | Cec.Equivalent -> ()
  | _ -> Alcotest.fail "collapse broke the function"

let test_resyn_improves_adder () =
  (* a deliberately redundant full-adder chain (majority carry built
     independently of the sum xors); resyn2rs must find the sharing *)
  let g = Aig.create () in
  let n = 16 in
  let xs = Array.init n (fun _ -> Aig.add_input g) in
  let ys = Array.init n (fun _ -> Aig.add_input g) in
  let carry = ref Aig.lit_false in
  for i = 0 to n - 1 do
    let a = xs.(i) and b = ys.(i) in
    let s = Aig.mk_xor g (Aig.mk_xor g a b) !carry in
    Aig.add_output g (Printf.sprintf "s%d" i) s;
    carry := Aig.mk_maj3 g a b !carry
  done;
  Aig.add_output g "cout" !carry;
  let out = Synth.resyn2rs g in
  Alcotest.(check bool) "smaller" true (Aig.num_ands out < Aig.num_ands g);
  Alcotest.(check bool) "shallower" true (Aig.depth out < Aig.depth g)

let test_passes_keep_io () =
  let aig = Arith.adder 6 in
  List.iter
    (fun (_, pass) ->
      let out = pass aig in
      Alcotest.(check int) "inputs" (Aig.num_inputs aig) (Aig.num_inputs out);
      Alcotest.(check int) "outputs" (Aig.num_outputs aig) (Aig.num_outputs out);
      (* names preserved *)
      Array.iteri
        (fun i (n, _) ->
          Alcotest.(check string) "output name" n (fst (Aig.output out i)))
        (Aig.outputs aig))
    passes

let test_jobs_byte_identical () =
  (* Within-circuit Domain parallelism must not change a single literal:
     the analysis phase is distributed, the commit phase replays the
     sequential order (see Par and the synth .mli contract). *)
  let circuits =
    [
      ("addsub-12", fun () -> Arith.addsub 12);
      ("div-10", fun () -> Arith.divider 10);
      ("random", fun () -> random_aig 10 160 4242);
    ]
  in
  List.iter
    (fun (name, build) ->
      let blif jobs =
        Blif.to_string (Synth.resyn2rs ~jobs (build ()))
      in
      let seq = blif 1 in
      List.iter
        (fun jobs ->
          if blif jobs <> seq then
            Alcotest.failf "%s: resyn2rs jobs=%d diverges" name jobs)
        [ 2; 3; 5 ])
    circuits;
  (* the light script too, which exercises rewrite and refactor *)
  let g = Arith.addsub 10 in
  Alcotest.(check string) "light jobs=4"
    (Blif.to_string (Synth.light (Arith.addsub 10)))
    (Blif.to_string (Synth.light ~jobs:4 g))

let test_idempotent_enough () =
  (* running resyn2rs twice must not grow the graph *)
  let aig = random_aig 8 70 (Rand64.int rng 1000) in
  let once = Synth.resyn2rs aig in
  let twice = Synth.resyn2rs once in
  Alcotest.(check bool) "no growth on reapplication" true
    (Aig.num_ands twice <= Aig.num_ands once)

let () =
  Alcotest.run "synth"
    [
      ( "synth",
        [
          Alcotest.test_case "random equivalence" `Quick test_equivalence;
          Alcotest.test_case "structured equivalence" `Quick
            test_equivalence_structured;
          Alcotest.test_case "size monotone" `Quick test_monotone_size;
          Alcotest.test_case "balance depth" `Quick test_balance_reduces_depth;
          Alcotest.test_case "redundancy removal" `Quick
            test_rewrite_removes_redundancy;
          Alcotest.test_case "adder improves" `Quick test_resyn_improves_adder;
          Alcotest.test_case "io preserved" `Quick test_passes_keep_io;
          Alcotest.test_case "jobs byte-identical" `Quick
            test_jobs_byte_identical;
          Alcotest.test_case "idempotent" `Quick test_idempotent_enough;
        ] );
    ]
