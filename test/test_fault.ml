(* Tests for the fault subsystem: the transistor-level cell dictionaries
   (zero-fault fidelity, determinism, the known family-level physics) and
   the gate-level packed stuck-at simulator (property-tested against a
   serial structurally-injected reference) plus the ATPG bookkeeping. *)

(* ---- transistor level ---- *)

(* The fault-capable evaluator with no fault injected is the golden
   switch-level simulator: every catalog cell of every family still
   computes its spec function through the fault path. *)
let test_zero_fault_golden () =
  List.iter
    (fun family ->
      List.iter
        (fun (entry : Catalog.entry) ->
          let cell = Cell_netlist.elaborate family entry.Catalog.spec in
          let n = Gate_spec.arity entry.Catalog.spec in
          for a = 0 to (1 lsl n) - 1 do
            let bits v = a land (1 lsl v) <> 0 in
            if
              Switchsim.cell_output_with cell bits
              <> Switchsim.cell_output cell bits
            then
              Alcotest.failf "%s %s: zero-fault drive differs on %d"
                (Cell_netlist.family_name family)
                entry.Catalog.name a;
            match Switchsim.logic_value_with cell bits with
            | Some v ->
                (* the output node of an inverting family carries the
                   complement of the spec *)
                if v <> Switchsim.inverting cell
                   <> Gate_spec.eval entry.Catalog.spec bits
                then
                  Alcotest.failf "%s %s: wrong logic value on %d"
                    (Cell_netlist.family_name family)
                    entry.Catalog.name a
            | None ->
                Alcotest.failf "%s %s: output floats/contends on %d"
                  (Cell_netlist.family_name family)
                  entry.Catalog.name a
          done)
        (Cell_fault.catalog_for family))
    Cell_netlist.all_families;
  Alcotest.(check pass) "zero-fault golden" () ()

(* The dictionary is a pure function of (family, catalog): two runs agree
   structurally, fault for fault. *)
let test_dictionary_deterministic () =
  List.iter
    (fun family ->
      let r1 = Cell_fault.analyze_family family in
      let r2 = Cell_fault.analyze_family family in
      Alcotest.(check bool)
        (Cell_netlist.family_name family ^ " dictionary deterministic")
        true (r1 = r2))
    [ Cell_netlist.Tg_static; Cell_netlist.Tg_pseudo; Cell_netlist.Cmos ]

(* Family-level physics the dictionary must reproduce: complementary
   (static) cells turn defects into contention/floating, ratioed pseudo
   cells morph silently, and ambipolar polarity-gate faults are the
   function-morphing mechanism the paper's library is built on. *)
let test_dictionary_physics () =
  let sum fam = Cell_fault.summarize fam (Cell_fault.analyze_family fam) in
  let st = sum Cell_netlist.Tg_static in
  Alcotest.(check bool) "static: defects break outputs" true
    (st.Cell_fault.s_broken > 0);
  Alcotest.(check bool) "static: polarity faults exist" true
    (st.Cell_fault.s_pol_faults > 0);
  let ps = sum Cell_netlist.Tg_pseudo in
  Alcotest.(check bool) "pseudo: silent function morphs" true
    (ps.Cell_fault.s_morphed > 0);
  Alcotest.(check bool) "pseudo: polarity faults morph" true
    (ps.Cell_fault.s_pol_morphed > 0);
  List.iter
    (fun (s : Cell_fault.summary) ->
      let c = Cell_fault.coverage s in
      Alcotest.(check bool) "coverage in [0,1]" true (c >= 0.0 && c <= 1.0);
      Alcotest.(check int) "outcomes partition the faults" s.Cell_fault.s_faults
        (s.Cell_fault.s_masked + s.Cell_fault.s_degraded
        + s.Cell_fault.s_morphed + s.Cell_fault.s_broken))
    [ st; ps ];
  (* the CMOS dictionary covers exactly the CMOS-expressible subset *)
  Alcotest.(check int) "cmos subset"
    (List.length Catalog.cmos_subset)
    (List.length (Cell_fault.catalog_for Cell_netlist.Cmos))

(* A morph target, when matched, must actually describe the faulty table:
   exact match = same word, complement = negated word. *)
let test_morph_targets_honest () =
  List.iter
    (fun (r : Cell_fault.cell_report) ->
      List.iter
        (fun (fe : Cell_fault.fault_entry) ->
          match fe.Cell_fault.fe_outcome with
          | Cell_fault.Morphed
              { target = Some m; faulty_tt; _ } -> (
              let e = Catalog.match_entry m in
              let target_tt = Gate_spec.tt6 e.Catalog.spec in
              match m with
              | Catalog.Exact _ ->
                  Alcotest.(check bool) "exact target" true
                    (Int64.equal faulty_tt target_tt)
              | Catalog.Complement _ ->
                  Alcotest.(check bool) "complement target" true
                    (Int64.equal faulty_tt (Int64.lognot target_tt))
              | Catalog.Npn_class _ -> ())
          | _ -> ())
        r.Cell_fault.cr_faults)
    (Cell_fault.analyze_family Cell_netlist.Tg_pseudo)

(* ---- gate level ---- *)

let mapped_of name =
  let e = Bench_suite.find name in
  let ctx = Flow.init ~name (e.Bench_suite.build ()) in
  let ctx, _ =
    Flow.run
      (Flow.parse_script_exn "synth(light); map(family=static)")
      ctx
  in
  Option.get ctx.Flow.mapped

(* The packed cone-resimulating fault simulator agrees, fault for fault,
   with the slow reference: structurally inject the fault (Gate_fault.inject)
   and fully resimulate the copy on the same pattern stream. *)
let test_packed_equals_serial () =
  List.iter
    (fun name ->
      let m = mapped_of name in
      let seed = 99L in
      let results, s =
        Gate_fault.analyze ~rounds:4 ~seed ~conflict_budget:5_000 m
      in
      let rng = Rand64.create seed in
      let pats =
        Array.init s.Gate_fault.g_rounds (fun _ ->
            Array.init m.Mapped.num_inputs (fun _ -> Rand64.next rng))
      in
      let base = Array.map (Mapped.simulate m) pats in
      Array.iter
        (fun (r : Gate_fault.result) ->
          let faulty = Gate_fault.inject m r.Gate_fault.fault in
          let serial =
            Array.exists2
              (fun words b -> Mapped.simulate faulty words <> b)
              pats base
          in
          let packed = r.Gate_fault.status = Gate_fault.Detected_sim in
          if packed <> serial then
            Alcotest.failf "%s: %s packed=%b serial=%b" name
              (Gate_fault.describe m r.Gate_fault.fault)
              packed serial)
        results)
    [ "add-16"; "t481"; "C1355" ];
  Alcotest.(check pass) "packed = serial" () ()

let test_gate_analysis_deterministic () =
  let m = mapped_of "add-16" in
  let r1, s1 = Gate_fault.analyze ~rounds:4 ~seed:7L m in
  let r2, s2 = Gate_fault.analyze ~rounds:4 ~seed:7L m in
  Alcotest.(check bool) "results identical" true (r1 = r2);
  Alcotest.(check bool) "summaries identical" true (s1 = s2);
  Alcotest.(check string) "tsv identical"
    (Gate_fault.results_tsv m r1)
    (Gate_fault.results_tsv m r2)

(* ATPG bookkeeping: statuses partition the fault list, and every ATPG
   counterexample really distinguishes the faulty netlist. *)
let test_atpg_bookkeeping () =
  let m = mapped_of "t481" in
  (* one round only, so plenty of faults reach the ATPG stage *)
  let results, s = Gate_fault.analyze ~rounds:1 ~seed:3L m in
  Alcotest.(check int) "statuses partition" s.Gate_fault.g_total
    (s.Gate_fault.g_sim + s.Gate_fault.g_atpg + s.Gate_fault.g_redundant
    + s.Gate_fault.g_unknown);
  Alcotest.(check int) "one result per fault" s.Gate_fault.g_total
    (Array.length (Gate_fault.faults_of m));
  Alcotest.(check bool) "atpg exercised" true (s.Gate_fault.g_atpg > 0);
  let checked = ref 0 in
  Array.iter
    (fun (r : Gate_fault.result) ->
      match r.Gate_fault.status with
      | Gate_fault.Detected_atpg cex ->
          let words =
            Array.map (fun b -> if b then 1L else 0L) cex
          in
          let faulty = Gate_fault.inject m r.Gate_fault.fault in
          let bit w = Int64.logand w 1L in
          if
            Array.map bit (Mapped.simulate m words)
            = Array.map bit (Mapped.simulate faulty words)
          then
            Alcotest.failf "cex does not detect %s"
              (Gate_fault.describe m r.Gate_fault.fault);
          incr checked
      | _ -> ())
    results;
  Alcotest.(check bool) "checked some counterexamples" true (!checked > 0);
  let cov = Gate_fault.coverage s in
  Alcotest.(check bool) "coverage in [0,1]" true (cov >= 0.0 && cov <= 1.0);
  Alcotest.(check bool) "testable coverage >= coverage" true
    (Gate_fault.testable_coverage s >= cov -. 1e-9)

(* The incremental ATPG engine (one miter, assumption queries) must agree
   with the rebuild engine (a fresh CEC miter per fault) on every decided
   verdict: a fault detected by one and proved redundant by the other
   would be a soundness bug.  Unknown is only possible under a conflict
   budget, which this test doesn't set, so the statuses must classify
   identically (counterexample bits may differ — the engines search
   differently). *)
let test_atpg_engines_agree () =
  List.iter
    (fun name ->
      let m = mapped_of name in
      let ri, si =
        Gate_fault.analyze ~rounds:1 ~seed:3L ~atpg:Gate_fault.Incremental m
      in
      let rr, sr =
        Gate_fault.analyze ~rounds:1 ~seed:3L ~atpg:Gate_fault.Rebuild m
      in
      Alcotest.(check bool)
        (name ^ ": atpg stage exercised")
        true
        (si.Gate_fault.g_atpg > 0);
      Alcotest.(check int)
        (name ^ ": redundant counts equal")
        sr.Gate_fault.g_redundant si.Gate_fault.g_redundant;
      Alcotest.(check int) (name ^ ": no unknowns") 0 si.Gate_fault.g_unknown;
      Array.iteri
        (fun k (a : Gate_fault.result) ->
          let b = rr.(k) in
          let cls (r : Gate_fault.result) =
            match r.Gate_fault.status with
            | Gate_fault.Detected_sim -> "sim"
            | Gate_fault.Detected_atpg _ -> "atpg"
            | Gate_fault.Redundant -> "redundant"
            | Gate_fault.Unknown -> "unknown"
          in
          if cls a <> cls b then
            Alcotest.failf "%s: %s classified %s (incremental) vs %s (rebuild)"
              name
              (Gate_fault.describe m a.Gate_fault.fault)
              (cls a) (cls b))
        ri)
    [ "t481"; "C1908" ]

(* ---- static testability ---- *)

let mapped_for family name =
  let e = Bench_suite.find name in
  let ctx = Flow.init ~family ~name (e.Bench_suite.build ()) in
  let ctx, _ = Flow.run (Flow.parse_script_exn "synth(light); map") ctx in
  Option.get ctx.Flow.mapped

(* Per-fault detection vector: one word per pattern batch, bit b set iff
   pattern b distinguishes the faulty netlist on some output. *)
let det_signature base pats faulty =
  Array.map2
    (fun words good ->
      let out = Mapped.simulate faulty words in
      let d = ref 0L in
      Array.iteri
        (fun i w -> d := Int64.logor !d (Int64.logxor w good.(i)))
        out;
      !d)
    pats base

let random_pats m ~rounds ~seed =
  let rng = Rand64.create seed in
  Array.init rounds (fun _ ->
      Array.init m.Mapped.num_inputs (fun _ -> Rand64.next rng))

(* Soundness of every static redundancy claim, cross-checked by the ATPG
   path on the full benchmark x family matrix: a claimed-redundant fault
   must never be proved testable (CEC Inequivalent) — only Equivalent
   (confirmed redundant) or Undecided (budget) are acceptable. *)
let test_redundancy_sound () =
  let checked = ref 0 in
  List.iter
    (fun (e : Bench_suite.entry) ->
      List.iter
        (fun fam ->
          let m = mapped_for fam e.Bench_suite.name in
          let t = Testability.analyze m in
          let good = lazy (Mapped.to_aig m) in
          Array.iteri
            (fun i -> function
              | None -> ()
              | Some reason -> (
                  let f = t.Testability.faults.(i) in
                  let bad = Mapped.to_aig (Gate_fault.inject m f) in
                  (* a modest conflict budget keeps the full-matrix sweep
                     affordable: a *false* claim is caught by the random-
                     simulation rounds or a quick SAT refutation, while a
                     true redundancy that is expensive to prove UNSAT
                     degrades to Undecided — never Inequivalent *)
                  match
                    Cec.check ~sim_rounds:2 ~conflict_budget:2_000 ~seed:5L
                      (Lazy.force good) bad
                  with
                  | Cec.Inequivalent _ ->
                      Alcotest.failf "%s/%s: %s claimed %s but is testable"
                        e.Bench_suite.name
                        (Cell_netlist.family_name fam)
                        (Gate_fault.describe m f)
                        (Testability.reason_name reason)
                  | Cec.Equivalent | Cec.Undecided -> incr checked))
            t.Testability.redundant)
        Cell_netlist.all_families)
    Bench_suite.all;
  Alcotest.(check bool) "some redundancy claims checked" true (!checked > 0)

(* Collapsing agrees with the simulator: faults of one equivalence class
   have identical per-pattern detection vectors under random patterns. *)
let test_classes_agree_with_sim () =
  List.iter
    (fun name ->
      let m = mapped_of name in
      let t = Testability.analyze m in
      let pats = random_pats m ~rounds:4 ~seed:42L in
      let base = Array.map (Mapped.simulate m) pats in
      let by_class = Hashtbl.create 997 in
      Array.iteri
        (fun i f ->
          let s = det_signature base pats (Gate_fault.inject m f) in
          let c = t.Testability.cls.(i) in
          match Hashtbl.find_opt by_class c with
          | None -> Hashtbl.add by_class c (f, s)
          | Some (f0, s0) ->
              if s0 <> s then
                Alcotest.failf
                  "%s: class %d: %s and %s detected by different patterns"
                  name c
                  (Gate_fault.describe m f0)
                  (Gate_fault.describe m f))
        t.Testability.faults;
      Alcotest.(check int)
        (name ^ ": one signature set per class")
        (Array.length t.Testability.rep)
        (Hashtbl.length by_class))
    [ "add-16"; "t481"; "C1355" ]

(* Dominance agrees with the simulator, per pattern: a dominated class
   records the witness fault whose test set is contained in its own, so
   every random pattern detecting the witness must detect the class. *)
let test_dominance_sound () =
  List.iter
    (fun name ->
      let m = mapped_of name in
      let t = Testability.analyze m in
      let pats = random_pats m ~rounds:8 ~seed:7L in
      let base = Array.map (Mapped.simulate m) pats in
      let checked = ref 0 in
      Array.iteri
        (fun c g ->
          if g >= 0 then begin
            let f = t.Testability.rep.(c) in
            let sf =
              det_signature base pats
                (Gate_fault.inject m t.Testability.faults.(f))
            and sg =
              det_signature base pats
                (Gate_fault.inject m t.Testability.faults.(g))
            in
            Array.iteri
              (fun r wg ->
                if Int64.logand wg (Int64.lognot sf.(r)) <> 0L then
                  Alcotest.failf
                    "%s: witness %s detected where dominated %s is not" name
                    (Gate_fault.describe m t.Testability.faults.(g))
                    (Gate_fault.describe m t.Testability.faults.(f)))
              sg;
            incr checked
          end)
        t.Testability.dom_by;
      Alcotest.(check bool)
        (name ^ ": dominated classes checked")
        true (!checked > 0))
    [ "add-16"; "t481"; "C1355" ]

(* SCOAP scores predict random-pattern detection hardness: Spearman rank
   correlation between the static score (higher = harder) and the
   empirical detection probability (fraction of patterns detecting the
   fault; lower = harder) must be clearly negative. *)
let spearman xs ys =
  let n = Array.length xs in
  let rank v =
    let idx = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare v.(a) v.(b)) idx;
    let r = Array.make n 0.0 in
    let i = ref 0 in
    while !i < n do
      let j = ref !i in
      while !j < n - 1 && v.(idx.(!j + 1)) = v.(idx.(!i)) do incr j done;
      let avg = float_of_int (!i + !j) /. 2.0 in
      for k = !i to !j do
        r.(idx.(k)) <- avg
      done;
      i := !j + 1
    done;
    r
  in
  let rx = rank xs and ry = rank ys in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  let mx = mean rx and my = mean ry in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  for i = 0 to n - 1 do
    let a = rx.(i) -. mx and b = ry.(i) -. my in
    num := !num +. (a *. b);
    dx := !dx +. (a *. a);
    dy := !dy +. (b *. b)
  done;
  !num /. sqrt (!dx *. !dy)

let test_scoap_predicts_hardness () =
  List.iter
    (fun name ->
      let m = mapped_of name in
      let t = Testability.analyze m in
      let pats = random_pats m ~rounds:8 ~seed:11L in
      let base = Array.map (Mapped.simulate m) pats in
      let scores = ref [] and probs = ref [] in
      Array.iteri
        (fun i f ->
          let s = t.Testability.score.(i) in
          if t.Testability.redundant.(i) = None && s < infinity then begin
            let sg = det_signature base pats (Gate_fault.inject m f) in
            let hits =
              Array.fold_left
                (fun acc w ->
                  let c = ref 0 in
                  for b = 0 to 63 do
                    if Int64.logand (Int64.shift_right_logical w b) 1L = 1L
                    then incr c
                  done;
                  acc + !c)
                0 sg
            in
            scores := s :: !scores;
            probs :=
              (float_of_int hits /. float_of_int (64 * Array.length sg))
              :: !probs
          end)
        t.Testability.faults;
      let xs = Array.of_list !scores and ys = Array.of_list !probs in
      let rho = spearman xs ys in
      if rho >= -0.3 then
        Alcotest.failf "%s: SCOAP score vs detection probability rho=%.3f"
          name rho)
    [ "add-16"; "t481"; "C1355" ]

let () =
  Alcotest.run "fault"
    [
      ( "cell",
        [
          Alcotest.test_case "zero-fault = golden sim" `Quick
            test_zero_fault_golden;
          Alcotest.test_case "dictionary deterministic" `Quick
            test_dictionary_deterministic;
          Alcotest.test_case "family physics" `Quick test_dictionary_physics;
          Alcotest.test_case "morph targets honest" `Quick
            test_morph_targets_honest;
        ] );
      ( "gate",
        [
          Alcotest.test_case "packed = serial reference" `Quick
            test_packed_equals_serial;
          Alcotest.test_case "analysis deterministic" `Quick
            test_gate_analysis_deterministic;
          Alcotest.test_case "atpg bookkeeping" `Quick test_atpg_bookkeeping;
          Alcotest.test_case "atpg engines agree" `Quick
            test_atpg_engines_agree;
        ] );
      ( "testability",
        [
          Alcotest.test_case "redundancy claims sound (full matrix)" `Slow
            test_redundancy_sound;
          Alcotest.test_case "classes agree with simulation" `Quick
            test_classes_agree_with_sim;
          Alcotest.test_case "dominance witnesses sound" `Quick
            test_dominance_sound;
          Alcotest.test_case "scoap predicts hardness" `Quick
            test_scoap_predicts_hardness;
        ] );
    ]
