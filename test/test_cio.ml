(* Tests for the file formats: BLIF and .bench roundtrips (checked by CEC),
   genlib parse/print. *)

let roundtrip_equiv fmt_name to_s of_s aig =
  let text = to_s aig in
  let back = of_s text in
  (match Cec.check aig back with
  | Cec.Equivalent -> ()
  | Cec.Inequivalent _ -> Alcotest.failf "%s roundtrip broke semantics" fmt_name
  | Cec.Undecided -> Alcotest.failf "%s roundtrip undecided" fmt_name);
  Alcotest.(check int)
    (fmt_name ^ " inputs")
    (Aig.num_inputs aig) (Aig.num_inputs back);
  Alcotest.(check int)
    (fmt_name ^ " outputs")
    (Aig.num_outputs aig) (Aig.num_outputs back)

let circuits () =
  [ ("adder", Arith.adder 8);
    ("ecc", Ecc.decoder ~data:8 ~checks:5 ~detect:true);
    ("t481", Logic_gen.t481_like ()) ]

let test_blif_roundtrip () =
  List.iter
    (fun (name, aig) ->
      roundtrip_equiv ("blif:" ^ name)
        (fun a -> Blif.to_string a)
        Blif.of_string aig)
    (circuits ());
  Alcotest.(check pass) "blif roundtrips" () ()

let test_bench_roundtrip () =
  List.iter
    (fun (name, aig) ->
      roundtrip_equiv ("bench:" ^ name) Bench_fmt.to_string Bench_fmt.of_string
        aig)
    (circuits ());
  Alcotest.(check pass) "bench roundtrips" () ()

let test_blif_parser_features () =
  let text =
    ".model demo\n\
     .inputs a b c\n\
     .outputs y z\n\
     # a comment\n\
     .names a b t1\n\
     11 1\n\
     .names t1 \\\n\
     c y\n\
     1- 1\n\
     -1 1\n\
     .names a z\n\
     0 1\n\
     .end\n"
  in
  let g = Blif.of_string text in
  Alcotest.(check int) "inputs" 3 (Aig.num_inputs g);
  Alcotest.(check int) "outputs" 2 (Aig.num_outputs g);
  (* y = (a&b) | c ; z = !a *)
  let check a b c =
    let out = Aig.eval g [| a; b; c |] in
    Alcotest.(check bool) "y" ((a && b) || c) out.(0);
    Alcotest.(check bool) "z" (not a) out.(1)
  in
  check true true false;
  check false false true;
  check true false false

(* Round-trip over the whole benchmark suite, in both formats.  The
   parser rebuilds nodes demand-driven from the outputs, so the first
   print ∘ parse normalizes node names; from then on the text must be a
   fixpoint (print ∘ parse = id), and the reparsed circuit must agree
   with the original on shape and on random simulation. *)
let test_print_parse_fixpoint () =
  let rng = Rand64.create 11L in
  List.iter
    (fun (e : Bench_suite.entry) ->
      let aig = e.Bench_suite.build () in
      List.iter
        (fun (fmt, to_s, of_s) ->
          let back = of_s (to_s aig) in
          let t2 = to_s back in
          let t3 = to_s (of_s t2) in
          if not (String.equal t2 t3) then
            Alcotest.failf "%s: %s print/parse is not a fixpoint" fmt
              e.Bench_suite.name;
          if
            Aig.num_inputs back <> Aig.num_inputs aig
            || Aig.num_outputs back <> Aig.num_outputs aig
          then
            Alcotest.failf "%s: %s i/o changed across the roundtrip" fmt
              e.Bench_suite.name;
          for _ = 1 to 4 do
            let words =
              Array.init (Aig.num_inputs aig) (fun _ -> Rand64.next rng)
            in
            if Aig.simulate_outputs aig words
               <> Aig.simulate_outputs back words
            then
              Alcotest.failf "%s: %s roundtrip broke semantics" fmt
                e.Bench_suite.name
          done)
        [ ("blif", (fun a -> Blif.to_string a), fun s -> Blif.of_string s);
          ("bench", Bench_fmt.to_string, fun s -> Bench_fmt.of_string s) ])
    Bench_suite.all;
  Alcotest.(check pass) "fixpoint on the suite" () ()

let test_blif_zero_phase () =
  (* 0-phase cover: complement of the cube sum *)
  let text =
    ".model inv\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n"
  in
  let g = Blif.of_string text in
  let out = Aig.eval g [| true; true |] in
  Alcotest.(check bool) "nand" false out.(0);
  let out = Aig.eval g [| true; false |] in
  Alcotest.(check bool) "nand2" true out.(0)

let test_bench_parser () =
  let text =
    "INPUT(a)\nINPUT(b)\nOUTPUT(y)\n\
     t = XOR(a, b)\nu = NAND(a, b)\ny = AND(t, u)\n"
  in
  let g = Bench_fmt.of_string text in
  let f a b = (a <> b) && not (a && b) in
  List.iter
    (fun (a, b) ->
      let out = Aig.eval g [| a; b |] in
      Alcotest.(check bool) "bench semantics" (f a b) out.(0))
    [ (false, false); (false, true); (true, false); (true, true) ]

(* malformed inputs raise the typed Parse_error.Error carrying the file
   and the source position, not a bare Failure *)
let test_bad_inputs_rejected () =
  (match
     Blif.of_string ~file:"m.blif" ".model m\n.inputs a\n.outputs q\n.end\n"
   with
  | exception Parse_error.Error e ->
      Alcotest.(check string) "rendered position"
        "m.blif:3: undriven signal q" (Parse_error.to_string e)
  | _ -> Alcotest.fail "undriven blif accepted");
  (match
     Blif.of_string ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n"
   with
  | exception Parse_error.Error e ->
      Alcotest.(check int) "bad cube line" 5 e.Parse_error.line;
      Alcotest.(check (option string)) "no file" None e.Parse_error.file
  | _ -> Alcotest.fail "bad cube accepted");
  (match Blif.of_string ".model m\n.inputs a\nstray\n.end\n" with
  | exception Parse_error.Error e ->
      Alcotest.(check int) "stray line" 3 e.Parse_error.line
  | _ -> Alcotest.fail "stray line accepted");
  (match Bench_fmt.of_string "INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n" with
  | exception Parse_error.Error e ->
      Alcotest.(check int) "bad gate line" 3 e.Parse_error.line
  | _ -> Alcotest.fail "bad gate accepted");
  (match Bench_fmt.of_string "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\n" with
  | exception Parse_error.Error e ->
      Alcotest.(check int) "undriven bench line" 3 e.Parse_error.line
  | _ -> Alcotest.fail "undriven bench accepted");
  match
    Genlib.of_string ~name:"bad" ~free_phases:false ~tau_ps:1.0
      "GATE BAD 1.0 o=(a;\n"
  with
  | exception Parse_error.Error e ->
      Alcotest.(check int) "genlib line" 1 e.Parse_error.line;
      Alcotest.(check bool) "genlib column" true (e.Parse_error.col > 0)
  | _ -> Alcotest.fail "bad genlib accepted"

let test_genlib_parse () =
  let text =
    "# tiny library\n\
     GATE INV 1.0 o=!a; PIN * INV 1 999 1.0 0.0 1.0 0.0\n\
     GATE NAND2 2.0 o=!(a*b); PIN * INV 1 999 1.5 0.0 1.5 0.0\n\
     GATE XOR2 3.0 o=a*!b+!a*b; PIN * NONINV 1 999 2.0 0.0 2.0 0.0\n"
  in
  let lib = Genlib.of_string ~name:"tiny" ~free_phases:false ~tau_ps:1.0 text in
  Alcotest.(check int) "three cells" 3 (List.length (Cell_lib.cells lib));
  Alcotest.(check bool) "inverter found" true (Cell_lib.inverter lib <> None);
  (* map an xor with it: must use the XOR2 cell *)
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  Aig.add_output g "y" (Aig.mk_xor g a b);
  let m = Mapper.map lib g in
  Alcotest.(check (list (pair string int))) "xor cell" [ ("XOR2", 1) ]
    (Mapped.count_cells m)

let test_mapped_blif_writer () =
  let aig = Arith.adder 4 in
  let m = Mapper.map (Cell_lib.cntfet ()) aig in
  let buf_path = Filename.temp_file "mapped" ".blif" in
  let oc = open_out buf_path in
  Blif.write_mapped oc m;
  close_out oc;
  let content = In_channel.with_open_text buf_path In_channel.input_all in
  Sys.remove buf_path;
  Alcotest.(check bool) "has gates" true
    (String.length content > 100
    && String.index_opt content 'g' <> None);
  (* every instance appears *)
  let count_sub sub =
    let n = ref 0 in
    let sl = String.length sub in
    for i = 0 to String.length content - sl do
      if String.sub content i sl = sub then incr n
    done;
    !n
  in
  Alcotest.(check int) "gate lines" (Array.length m.Mapped.instances)
    (count_sub ".gate ")

let () =
  Alcotest.run "cio"
    [
      ( "blif",
        [
          Alcotest.test_case "roundtrip" `Quick test_blif_roundtrip;
          Alcotest.test_case "print-parse fixpoint (suite)" `Quick
            test_print_parse_fixpoint;
          Alcotest.test_case "parser features" `Quick test_blif_parser_features;
          Alcotest.test_case "zero phase" `Quick test_blif_zero_phase;
          Alcotest.test_case "mapped writer" `Quick test_mapped_blif_writer;
        ] );
      ( "bench",
        [
          Alcotest.test_case "roundtrip" `Quick test_bench_roundtrip;
          Alcotest.test_case "parser" `Quick test_bench_parser;
          Alcotest.test_case "errors" `Quick test_bad_inputs_rejected;
        ] );
      ( "genlib",
        [ Alcotest.test_case "parse and map" `Quick test_genlib_parse ] );
    ]
