(* Tests for the gate catalog, netlist elaboration, sizing, switch-level
   functionality and the Table 2 characterization. *)

open Cell_netlist

let test_catalog_size () =
  Alcotest.(check int) "46 functions" 46 (List.length Catalog.all);
  List.iteri
    (fun i e ->
      Alcotest.(check int) "index" i e.Catalog.index;
      Alcotest.(check string) "name" (Printf.sprintf "F%02d" i) e.Catalog.name)
    Catalog.all

let test_cmos_subset () =
  (* The paper: exactly F00, F02, F03, F10, F11, F12, F13. *)
  let names = List.map (fun e -> e.Catalog.name) Catalog.cmos_subset in
  Alcotest.(check (list string)) "cmos subset"
    [ "F00"; "F02"; "F03"; "F10"; "F11"; "F12"; "F13" ]
    names

let test_distinct_functions () =
  (* All 46 catalog functions are pairwise distinct as truth tables. *)
  let tts = List.map (fun e -> Gate_spec.tt6 e.Catalog.spec) Catalog.all in
  let uniq = List.sort_uniq compare tts in
  Alcotest.(check int) "distinct" 46 (List.length uniq)

let test_distinct_npn_46 () =
  (* Sec. 3.1: the 46 gates are distinct even up to input-polarity swaps
     only when XOR phase freedom is not applied; however no two distinct
     catalog entries may be equal as raw functions of their pins.  Check a
     stronger structural claim: arities match the variable lists. *)
  List.iter
    (fun e ->
      let sup = Tt.support (Gate_spec.to_tt 6 e.Catalog.spec) in
      Alcotest.(check (list int))
        (e.Catalog.name ^ " support")
        (Gate_spec.vars e.Catalog.spec) sup)
    Catalog.all

let test_max_stack_bound () =
  (* Table 1's defining constraint: no more than 3 elements in series. *)
  List.iter
    (fun e ->
      let s = Gate_spec.max_stack e.Catalog.spec in
      if s < 1 || s > 3 then
        Alcotest.failf "%s has series depth %d" e.Catalog.name s)
    Catalog.all;
  Alcotest.(check pass) "series depth within 3" () ()

let test_complement_form () =
  List.iter
    (fun e ->
      let tt = Gate_spec.to_tt 6 e.Catalog.spec in
      let ctt = Gate_spec.to_tt 6 (Gate_spec.complement_form e.Catalog.spec) in
      if not (Tt.equal (Tt.bnot tt) ctt) then
        Alcotest.failf "complement_form wrong for %s" e.Catalog.name)
    Catalog.all;
  Alcotest.(check pass) "complement forms" () ()

(* ---- elaboration and electrical checks ---- *)

let families =
  [ Tg_static; Tg_pseudo; Pass_pseudo; Pass_static ]

let test_all_cells_function () =
  (* Switch-level simulation: every cell of every family implements its
     spec (inverted where the family is inverting). *)
  List.iter
    (fun fam ->
      List.iter
        (fun e ->
          let c = elaborate fam e.Catalog.spec in
          if not (Switchsim.check_function c) then
            Alcotest.failf "%s/%s misbehaves" (family_name fam) e.Catalog.name)
        Catalog.all)
    families;
  List.iter
    (fun e ->
      let c = elaborate Cmos e.Catalog.spec in
      if not (Switchsim.check_function c) then
        Alcotest.failf "cmos/%s misbehaves" e.Catalog.name)
    Catalog.cmos_subset;
  Alcotest.(check pass) "all cells implement their spec" () ()

let test_full_swing () =
  (* The paper's Sec. 3.1 claim: transmission-gate static cells are full
     swing on every assignment; so are CMOS cells, pseudo cells (the weak
     PU is a real pull to VDD) and restored pass-static cells. *)
  List.iter
    (fun e ->
      let c = elaborate Tg_static e.Catalog.spec in
      if not (Switchsim.full_swing c) then
        Alcotest.failf "tg-static %s not full swing" e.Catalog.name)
    Catalog.all;
  Alcotest.(check pass) "tg static full swing" () ()

let test_pass_network_degrades () =
  (* A naked pass-transistor XOR network (pass-pseudo pull-down before any
     restoration) must show degraded pull for some assignment — the Sec. 3
     motivation for transmission gates.  F01 = A xor B. *)
  let c = elaborate Pass_pseudo (Catalog.find "F01").Catalog.spec in
  let degraded = ref false in
  for a = 0 to 3 do
    match Switchsim.cell_output c (fun v -> a land (1 lsl v) <> 0) with
    | Switchsim.Driven (Switchsim.L0, Switchsim.Degraded) -> degraded := true
    | _ -> ()
  done;
  Alcotest.(check bool) "some pulldown degraded" true !degraded

let test_no_contention_no_float () =
  List.iter
    (fun e ->
      let c = elaborate Tg_static e.Catalog.spec in
      let n = Gate_spec.arity e.Catalog.spec in
      for a = 0 to (1 lsl n) - 1 do
        match Switchsim.cell_output c (fun v -> a land (1 lsl v) <> 0) with
        | Switchsim.Contention -> Alcotest.failf "%s contention" e.Catalog.name
        | Switchsim.Floating -> Alcotest.failf "%s floating" e.Catalog.name
        | Switchsim.Driven _ -> ()
      done)
    Catalog.all;
  Alcotest.(check pass) "static outputs always driven" () ()

let test_unit_drive_sizing () =
  (* Static networks are sized for unit worst-case resistance. *)
  List.iter
    (fun e ->
      let c = elaborate Tg_static e.Catalog.spec in
      (match c.pull_up with
      | Some pu ->
          Alcotest.(check (float 1e-9)) "pu resistance" 1.0 (resistance pu)
      | None -> Alcotest.fail "static cell without PU");
      Alcotest.(check (float 1e-9)) "pd resistance" 1.0
        (resistance c.pull_down))
    Catalog.all

let test_pseudo_ratio () =
  List.iter
    (fun e ->
      let c = elaborate Tg_pseudo e.Catalog.spec in
      Alcotest.(check (float 1e-9)) "pd conductance 4/3" (3.0 /. 4.0)
        (resistance c.pull_down);
      Alcotest.(check (float 1e-9)) "bias width" (1.0 /. 3.0) c.bias_width)
    Catalog.all

(* ---- Table 2 reproduction ---- *)

let pick fam (r : Paper_data.table2_row) =
  match fam with
  | Tg_static -> Some r.Paper_data.tg_static
  | Tg_pseudo -> Some r.Paper_data.tg_pseudo
  | Pass_pseudo -> Some r.Paper_data.pass_pseudo
  | Cmos -> r.Paper_data.cmos
  | Pass_static -> None

let close ?(tol = 0.11) got want = abs_float (got -. want) <= tol *. want

let count_matching fam =
  let rows = Charlib.characterize_catalog fam in
  List.fold_left
    (fun (n, total) (r : Charlib.row) ->
      match pick fam (Paper_data.table2_find r.Charlib.name) with
      | None -> (n, total)
      | Some p ->
          let ok =
            close r.Charlib.area p.Paper_data.a
            && close r.Charlib.fo4_avg p.Paper_data.avg
          in
          ((if ok then n + 1 else n), total + 1))
    (0, 0) rows

let test_table2_static_exact_areas () =
  (* Transmission-gate static: transistor counts and areas must match the
     published Table 2 exactly (0.05 rounding slack on areas). *)
  List.iter
    (fun (r : Charlib.row) ->
      let p = (Paper_data.table2_find r.Charlib.name).Paper_data.tg_static in
      if not (List.mem r.Charlib.name [ "F34"; "F44"; "F45" ]) then begin
        (* Rows the paper itself lists inconsistently: F34 shows T=14/A=12.7
           while its topological twin F35 shows T=12/A=14.7, and the
           F44/F45 areas are swapped relative to their De Morgan duals
           F43/F42 (we compute F44=14.7, F45=16; the paper prints the
           reverse). *)
        Alcotest.(check int) (r.Charlib.name ^ " T") p.Paper_data.t
          r.Charlib.transistors;
        if abs_float (r.Charlib.area -. p.Paper_data.a) > 0.051 then
          Alcotest.failf "%s area %.2f vs %.2f" r.Charlib.name r.Charlib.area
            p.Paper_data.a
      end)
    (Charlib.characterize_catalog Tg_static);
  Alcotest.(check pass) "static areas match Table 2" () ()

let test_table2_family_coverage () =
  (* Across every family, the characterization should agree with the
     published numbers for the bulk of the cells (the paper has a few
     internally inconsistent entries; Fig. 5 labels agree with us). *)
  List.iter
    (fun (fam, minimum) ->
      let n, total = count_matching fam in
      if n < minimum then
        Alcotest.failf "%s: only %d/%d rows within 11%%" (family_name fam) n
          total)
    [ (Tg_static, 42); (Tg_pseudo, 36); (Pass_pseudo, 38); (Cmos, 6) ];
  Alcotest.(check pass) "per-family coverage" () ()

let test_table2_averages () =
  (* The averages of Table 2's last data row. *)
  let t, a, w, v = Charlib.averages (Charlib.characterize_catalog Tg_static) in
  Alcotest.(check bool) "static avg T" true (close ~tol:0.02 t 9.1);
  Alcotest.(check bool) "static avg A" true (close ~tol:0.02 a 12.3);
  Alcotest.(check bool) "static avg w" true (close ~tol:0.05 w 11.3);
  Alcotest.(check bool) "static avg a" true (close ~tol:0.05 v 9.0);
  let _, a2, _, v2 = Charlib.averages (Charlib.characterize_catalog Tg_pseudo) in
  Alcotest.(check bool) "pseudo 31% smaller" true
    (close ~tol:0.08 (a2 /. a) (8.5 /. 12.3));
  Alcotest.(check bool) "pseudo 33% slower" true
    (close ~tol:0.10 (v2 /. v) (12.0 /. 9.0));
  let _, a3, _, v3 =
    Charlib.averages (Charlib.characterize_catalog Pass_pseudo)
  in
  Alcotest.(check bool) "pass pseudo slower than tg pseudo" true (v3 > v2);
  Alcotest.(check bool) "pass pseudo barely smaller than static" true
    (a3 < a && a3 > a2)

(* ---- load-dependent timing model (pin caps, parasitics, drives) ---- *)

let timing_of fam name =
  (Charlib.characterize fam (Catalog.find name)).Charlib.timing

let feq ?(eps = 1e-9) msg want got = Alcotest.(check (float eps)) msg want got

let worst_cap cell v =
  Float.max
    (Charlib.input_cap cell { v; ph = false })
    (Charlib.input_cap cell { v; ph = true })

let test_timing_inverter () =
  (* Unit inverter: two unit-width devices, so 2 units of gate capacitance
     on the input and one drain each (2 units) on the output. *)
  let cell = elaborate Tg_static (Catalog.find "F00").Catalog.spec in
  feq "parasitic" 2.0 (Charlib.output_parasitic cell);
  feq "input cap" 2.0 (worst_cap cell 0);
  let tm = timing_of Tg_static "F00" in
  feq "pin cap" 2.0 tm.Charlib.pin_caps.(0);
  feq "c_par" 2.0 tm.Charlib.drive.Charlib.c_par;
  feq "cin_ref" 2.0 tm.Charlib.drive.Charlib.cin_ref;
  (* FO4 = R (C_par + 4 C_in) / C_inv = (2 + 8) / 2 *)
  feq "fo4" 5.0 (Charlib.drive_delay tm.Charlib.drive ~load:8.0);
  (* unloaded: only the self-parasitic remains *)
  feq "intrinsic" 1.0 (Charlib.drive_delay tm.Charlib.drive ~load:0.0)

let test_timing_or2 () =
  (* F02 = a + b.  TG-static: 3 units of gate cap per input (device +
     polarity gates), 4 drains on the output node. *)
  let cell = elaborate Tg_static (Catalog.find "F02").Catalog.spec in
  feq "static parasitic" 4.0 (Charlib.output_parasitic cell);
  feq "static input cap" 3.0 (worst_cap cell 0);
  let tm = timing_of Tg_static "F02" in
  feq "static pin a" 3.0 tm.Charlib.pin_caps.(0);
  feq "static pin b" 3.0 tm.Charlib.pin_caps.(1);
  feq "static fo4" 8.0 (Charlib.drive_delay tm.Charlib.drive ~load:12.0);
  (* CMOS realizes the complement (NOR2): series PU of width-4 devices and
     unit parallel PD gives 5 units of input cap and 6 of parasitic. *)
  let nor2 = elaborate Cmos (Catalog.find "F02").Catalog.spec in
  feq "nor2 parasitic" 6.0 (Charlib.output_parasitic nor2);
  feq "nor2 input cap" 5.0 (worst_cap nor2 0);
  let tmc = timing_of Cmos "F02" in
  feq "nor2 pin a" 5.0 tmc.Charlib.pin_caps.(0);
  feq "nor2 cin_ref" 3.0 tmc.Charlib.drive.Charlib.cin_ref;
  (* FO4 = (6 + 20) / 3 *)
  feq "nor2 fo4" (26.0 /. 3.0)
    (Charlib.drive_delay tmc.Charlib.drive ~load:20.0)

let test_timing_xor_families () =
  (* F01 = a ^ b, the transmission-gate poster child, per family. *)
  let tm = timing_of Tg_static "F01" in
  feq "tg-static pin" (4.0 /. 3.0) tm.Charlib.pin_caps.(0);
  feq "tg-static c_par" (8.0 /. 3.0) tm.Charlib.drive.Charlib.c_par;
  feq "tg-static fo4" 4.0
    (Charlib.drive_delay tm.Charlib.drive ~load:(16.0 /. 3.0));
  let tp = timing_of Tg_pseudo "F01" in
  Alcotest.(check bool) "tg-pseudo averages" true tp.Charlib.drive.Charlib.avg;
  feq "tg-pseudo pin" (8.0 /. 9.0) tp.Charlib.pin_caps.(0);
  feq "tg-pseudo c_par" (19.0 /. 9.0) tp.Charlib.drive.Charlib.c_par;
  feq "tg-pseudo fo4" (17.0 /. 3.0)
    (Charlib.drive_delay tp.Charlib.drive ~load:(32.0 /. 9.0));
  let pp = timing_of Pass_pseudo "F01" in
  feq "pass-pseudo pin" (8.0 /. 3.0) pp.Charlib.pin_caps.(0);
  feq "pass-pseudo c_par" 3.0 pp.Charlib.drive.Charlib.c_par;
  feq "pass-pseudo fo4" (41.0 /. 3.0)
    (Charlib.drive_delay pp.Charlib.drive ~load:(32.0 /. 3.0));
  (* Pass-static restores through an inverter: asymmetric pins (the pass
     input sees twice the gate area of the control) and a two-stage drive. *)
  let ps = (Charlib.characterize Pass_static (Catalog.find "F01")).Charlib.timing
  in
  feq "pass-static pin a" 4.0 ps.Charlib.pin_caps.(0);
  feq "pass-static pin b" 2.0 ps.Charlib.pin_caps.(1);
  feq "pass-static c_par" 4.0 ps.Charlib.drive.Charlib.c_par;
  (match ps.Charlib.drive.Charlib.second_stage with
  | Some c2 -> feq "restoring inverter cap" 2.0 c2
  | None -> Alcotest.fail "pass-static drive should be two-stage");
  let r = Charlib.characterize Pass_static (Catalog.find "F01") in
  feq "pass-static fo4 worst" 12.0 r.Charlib.fo4_worst;
  feq "pass-static fo4 avg" 10.0 r.Charlib.fo4_avg

let test_fo4_is_drive_delay_at_4cin () =
  (* The published FO4 columns are exactly the load-dependent model
     evaluated at four copies of the pin's own input capacitance. *)
  List.iter
    (fun fam ->
      List.iter
        (fun (r : Charlib.row) ->
          let tm = r.Charlib.timing in
          let n = Array.length tm.Charlib.pin_caps in
          let worst = ref 0.0 and sum = ref 0.0 in
          for v = 0 to n - 1 do
            let d =
              Charlib.drive_delay tm.Charlib.drive
                ~load:(4.0 *. tm.Charlib.pin_caps.(v))
            in
            if d > !worst then worst := d;
            sum := !sum +. d
          done;
          feq
            (family_name fam ^ "/" ^ r.Charlib.name ^ " worst")
            r.Charlib.fo4_worst !worst;
          feq
            (family_name fam ^ "/" ^ r.Charlib.name ^ " avg")
            r.Charlib.fo4_avg
            (!sum /. float_of_int n))
        (Charlib.characterize_catalog fam))
    Cell_netlist.all_families;
  Alcotest.(check pass) "fo4 = drive_delay at 4 C_in" () ()

let test_expressive_power () =
  (* Headline of Sec. 3.1: 46 CNTFET gates vs 7 CMOS gates with the same
     topology constraints. *)
  Alcotest.(check int) "46 vs 7" 7 (List.length Catalog.cmos_subset);
  Alcotest.(check int) "46 total" 46 (List.length Catalog.all)

let test_xor_cheaper_than_cmos () =
  (* An XOR2 in the CNTFET static family is smaller than a CMOS-mapped
     XOR (which needs at least NAND2 x4 = 32 area units). *)
  let r = Charlib.characterize Tg_static (Catalog.find "F01") in
  Alcotest.(check bool) "xor area tiny" true (r.Charlib.area < 3.0);
  Alcotest.(check bool) "xor beats inverter FO4" true
    (r.Charlib.fo4_worst < 5.0)

let () =
  Alcotest.run "gates"
    [
      ( "catalog",
        [
          Alcotest.test_case "size and names" `Quick test_catalog_size;
          Alcotest.test_case "cmos subset" `Quick test_cmos_subset;
          Alcotest.test_case "distinct" `Quick test_distinct_functions;
          Alcotest.test_case "supports" `Quick test_distinct_npn_46;
          Alcotest.test_case "series depth" `Quick test_max_stack_bound;
          Alcotest.test_case "complement form" `Quick test_complement_form;
          Alcotest.test_case "expressive power" `Quick test_expressive_power;
        ] );
      ( "cells",
        [
          Alcotest.test_case "functionality" `Quick test_all_cells_function;
          Alcotest.test_case "full swing" `Quick test_full_swing;
          Alcotest.test_case "pass degradation" `Quick test_pass_network_degrades;
          Alcotest.test_case "driven outputs" `Quick test_no_contention_no_float;
          Alcotest.test_case "unit drive" `Quick test_unit_drive_sizing;
          Alcotest.test_case "pseudo ratio" `Quick test_pseudo_ratio;
        ] );
      ( "timing",
        [
          Alcotest.test_case "inverter" `Quick test_timing_inverter;
          Alcotest.test_case "or2" `Quick test_timing_or2;
          Alcotest.test_case "xor families" `Quick test_timing_xor_families;
          Alcotest.test_case "fo4 property" `Quick
            test_fo4_is_drive_delay_at_4cin;
        ] );
      ( "table2",
        [
          Alcotest.test_case "static T/A exact" `Quick test_table2_static_exact_areas;
          Alcotest.test_case "family coverage" `Quick test_table2_family_coverage;
          Alcotest.test_case "averages" `Quick test_table2_averages;
          Alcotest.test_case "xor advantage" `Quick test_xor_cheaper_than_cmos;
        ] );
    ]
