(* Tests for the STA subsystem: load-dependent arrival/required/slack,
   critical paths, consistency with the legacy unit-load convention, the
   mapper's timing mode, and the benchmark suite's structural health. *)

let lib_static = Cell_lib.cntfet ()
let lib_pseudo = Cell_lib.cntfet ~family:Cell_netlist.Tg_pseudo ()
let lib_cmos = Cell_lib.cmos ()

let mapped ?params lib name =
  let e = Bench_suite.find name in
  Mapper.map ?params lib (Synth.light (e.Bench_suite.build ()))

(* The acceptance identity: under unit loads the STA engine must reproduce
   the legacy fixed-FO4 arrival computation bit for bit. *)
let test_unit_loads_exact () =
  List.iter
    (fun (lib, name) ->
      let m = mapped lib name in
      let s = Mapped.stats m in
      let sta =
        Sta.analyze ~model:{ Sta.unit_loads = true; po_fanout = 4.0 } m
      in
      Alcotest.(check (float 0.0))
        (name ^ " unit-load crit = legacy norm_delay")
        s.Mapped.norm_delay (Sta.norm_delay sta))
    [
      (lib_static, "add-16"); (lib_static, "C1908"); (lib_static, "t481");
      (lib_static, "C1355"); (lib_pseudo, "add-16"); (lib_pseudo, "C1908");
      (lib_cmos, "add-16"); (lib_cmos, "t481");
    ]

(* Loaded-model stats fields agree with a fresh analysis. *)
let test_stats_sta_fields () =
  let m = mapped lib_static "add-16" in
  let s = Mapped.stats m in
  let sta = Sta.analyze m in
  Alcotest.(check (float 1e-9)) "sta_norm_delay" (Sta.norm_delay sta)
    s.Mapped.sta_norm_delay;
  Alcotest.(check (float 1e-6)) "sta_abs_delay_ps" (Sta.abs_delay_ps sta)
    s.Mapped.sta_abs_delay_ps

let test_slack_invariants () =
  List.iter
    (fun (lib, name) ->
      let m = mapped lib name in
      let sta = Sta.analyze m in
      (* required times are seeded at the latest endpoint, so slacks are
         nonnegative and the worst endpoint sits at zero *)
      Array.iter
        (fun s ->
          if s < -1e-6 then Alcotest.failf "%s: negative slack %f" name s)
        sta.Sta.slack;
      let worst =
        Array.fold_left
          (fun acc (e : Sta.endpoint) -> Float.min acc e.Sta.ep_slack)
          infinity sta.Sta.endpoints
      in
      Alcotest.(check (float 1e-6)) (name ^ " worst endpoint slack") 0.0 worst;
      Array.iter
        (fun (e : Sta.endpoint) ->
          Alcotest.(check (float 1e-9))
            (name ^ " endpoint required = crit")
            sta.Sta.crit e.Sta.ep_required)
        sta.Sta.endpoints)
    [ (lib_static, "add-16"); (lib_cmos, "t481") ]

let test_critical_path () =
  List.iter
    (fun (lib, name) ->
      let m = mapped lib name in
      let sta = Sta.analyze m in
      let path = Sta.critical_path sta in
      Alcotest.(check bool) (name ^ " path nonempty") true (path <> []);
      (* arrivals increase monotonically; each stage adds its own delay;
         the endpoint stage lands exactly on the critical delay *)
      let acc = ref 0.0 in
      List.iter
        (fun (st : Sta.stage) ->
          if st.Sta.st_delay < 0.0 then
            Alcotest.failf "%s: negative stage delay" name;
          if st.Sta.st_load < 0.0 then
            Alcotest.failf "%s: negative stage load" name;
          let a = !acc +. st.Sta.st_delay in
          Alcotest.(check (float 1e-6)) (name ^ " stage arrival") a
            st.Sta.st_arrival;
          acc := a)
        path;
      Alcotest.(check (float 1e-6)) (name ^ " path total = crit") sta.Sta.crit
        !acc;
      (* the critical delay dominates every single instance delay that
         reaches an output *)
      Array.iteri
        (fun j d ->
          if sta.Sta.required.(j) < infinity && d > sta.Sta.crit +. 1e-9 then
            Alcotest.failf "%s: instance %d delay beyond crit" name j)
        sta.Sta.delays)
    [ (lib_static, "add-16"); (lib_static, "C1908"); (lib_cmos, "add-16") ]

let test_histogram () =
  let m = mapped lib_static "C1908" in
  let sta = Sta.analyze m in
  let bins = Sta.slack_histogram ~bins:8 sta in
  let reaching =
    Array.fold_left
      (fun n r -> if r < infinity then n + 1 else n)
      0 sta.Sta.required
  in
  let counted = List.fold_left (fun n (_, _, c) -> n + c) 0 bins in
  Alcotest.(check int) "histogram covers reaching instances" reaching counted;
  List.iter
    (fun (lo, hi, _) ->
      Alcotest.(check bool) "bin ordered" true (lo <= hi +. 1e-9))
    bins

let test_reports_render () =
  let m = mapped lib_static "add-16" in
  let sta = Sta.analyze m in
  let nonempty s = String.length s > 0 in
  Alcotest.(check bool) "path" true (nonempty (Sta.render_path sta));
  Alcotest.(check bool) "endpoints" true (nonempty (Sta.render_endpoints sta));
  Alcotest.(check bool) "histogram" true (nonempty (Sta.render_histogram sta));
  Alcotest.(check bool) "summary" true (nonempty (Sta.summary sta));
  (* TSV mode: header comment + one row per stage/endpoint *)
  let tsv = Sta.render_path ~tsv:true sta in
  let lines = String.split_on_char '\n' (String.trim tsv) in
  Alcotest.(check bool) "tsv header" true
    (String.length (List.hd lines) > 0 && (List.hd lines).[0] = '#');
  Alcotest.(check int) "tsv stage rows"
    (List.length (Sta.critical_path sta))
    (List.length (List.tl lines));
  let etsv = Sta.render_endpoints ~tsv:true sta in
  let elines = String.split_on_char '\n' (String.trim etsv) in
  Alcotest.(check int) "tsv endpoint rows"
    (Array.length sta.Sta.endpoints)
    (List.length (List.tl elines))

(* STA-backed timing mode is guarded: it must never end slower (by the
   loaded model it optimizes) than the default mapping. *)
let test_timing_map_no_regress () =
  let tm = { Mapper.default_params with Mapper.timing = true } in
  List.iter
    (fun (lib, name) ->
      let e = Bench_suite.find name in
      let opt = Synth.light (e.Bench_suite.build ()) in
      let s0 = Mapped.stats (Mapper.map lib opt) in
      let s1 = Mapped.stats (Mapper.map ~params:tm lib opt) in
      if s1.Mapped.sta_norm_delay > s0.Mapped.sta_norm_delay +. 1e-6 then
        Alcotest.failf "%s: timing map regressed %.3f -> %.3f" name
          s0.Mapped.sta_norm_delay s1.Mapped.sta_norm_delay)
    [
      (lib_static, "add-16"); (lib_static, "C1908"); (lib_static, "t481");
      (lib_cmos, "add-16"); (lib_cmos, "C1908");
    ];
  Alcotest.(check pass) "timing map no regress" () ()

(* Timing mode must still produce functionally equivalent netlists. *)
let test_timing_map_equivalent () =
  let tm = { Mapper.default_params with Mapper.timing = true } in
  List.iter
    (fun lib ->
      let aig = Synth.light (Arith.adder 8) in
      let m = Mapper.map ~params:tm lib aig in
      match Cec.check aig (Mapped.to_aig m) with
      | Cec.Equivalent -> ()
      | _ -> Alcotest.fail "timing-mapped netlist differs")
    [ lib_static; lib_cmos ];
  Alcotest.(check pass) "equivalent" () ()

(* Regression for the benchmark builders: every suite circuit must be free
   of dead AIG nodes (i10, i18, C2670, C7552, C5315 and dalu once emitted
   dangling/unreachable clusters from pruned operators). *)
let test_bench_suite_dead_node_free () =
  List.iter
    (fun (e : Bench_suite.entry) ->
      let g = e.Bench_suite.build () in
      List.iter
        (fun (d : Diag.t) ->
          if d.Diag.rule = "aig-dangling" || d.Diag.rule = "aig-unreachable"
          then
            Alcotest.failf "%s: %s" e.Bench_suite.name
              (Format.asprintf "%a" Diag.pp d))
        (Aig_lint.check ~name:e.Bench_suite.name g))
    Bench_suite.all;
  Alcotest.(check pass) "suite dead-node free" () ()

let () =
  Alcotest.run "sta"
    [
      ( "consistency",
        [
          Alcotest.test_case "unit loads exact" `Quick test_unit_loads_exact;
          Alcotest.test_case "stats fields" `Quick test_stats_sta_fields;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "slack invariants" `Quick test_slack_invariants;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "reports" `Quick test_reports_render;
        ] );
      ( "timing-map",
        [
          Alcotest.test_case "no regress" `Quick test_timing_map_no_regress;
          Alcotest.test_case "equivalent" `Quick test_timing_map_equivalent;
        ] );
      ( "bench-suite",
        [
          Alcotest.test_case "dead-node free" `Quick
            test_bench_suite_dead_node_free;
        ] );
    ]
