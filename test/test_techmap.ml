(* Tests for library expansion and technology mapping: match-table
   correctness, mapping equivalence (SAT-checked), cost accounting, and
   phase economics. *)

let rng = Rand64.create 31L

let lib_static = Cell_lib.cntfet ()
let lib_pseudo = Cell_lib.cntfet ~family:Cell_netlist.Tg_pseudo ()
let lib_cmos = Cell_lib.cmos ()

let test_library_sizes () =
  Alcotest.(check int) "static cells" 46 (List.length (Cell_lib.cells lib_static));
  Alcotest.(check int) "cmos cells" 7 (List.length (Cell_lib.cells lib_cmos));
  Alcotest.(check bool) "static is free-phase" true (Cell_lib.free_phases lib_static);
  Alcotest.(check bool) "cmos is not" false (Cell_lib.free_phases lib_cmos);
  Alcotest.(check bool) "cmos has inverter" true (Cell_lib.inverter lib_cmos <> None);
  Alcotest.(check bool) "tables are nonempty" true (Cell_lib.num_entries lib_static > 1000)

(* Every match entry, applied to its transform, must reproduce the key. *)
let test_match_semantics () =
  let checked = ref 0 in
  List.iter
    (fun (e : Catalog.entry) ->
      let k = Gate_spec.arity e.Catalog.spec in
      if k >= 2 && k <= 4 then begin
        (* probe with random NPN variants of the gate function *)
        let base = Gate_spec.tt6 e.Catalog.spec in
        Npn.enumerate k base (fun v _ ->
            if !checked < 2000 && Rand64.int rng 7 = 0 then begin
              incr checked;
              let ms = Cell_lib.matches lib_static k v in
              if ms = [] then
                Alcotest.failf "no match for a variant of %s" e.Catalog.name;
              List.iter
                (fun (m : Cell_lib.match_entry) ->
                  (* reconstruct: apply perm, phase, neg to the cell tt *)
                  let t = Npn.permute m.Cell_lib.cell.Cell_lib.tt m.Cell_lib.perm in
                  let t = Npn.apply_phase t m.Cell_lib.phase in
                  let t = if m.Cell_lib.out_neg then Int64.lognot t else t in
                  if t <> v then Alcotest.failf "bad entry for %s" e.Catalog.name)
                ms
            end)
      end)
    Catalog.all;
  Alcotest.(check bool) "checked some variants" true (!checked > 100)

let test_cmos_no_free_neg () =
  (* AND2 (positive) is only reachable in CMOS by complementing leaves
     (NOR2 with both inputs inverted): every match must carry a nonzero
     phase, whereas NAND2 has a phase-free match. *)
  let and2 = 0x8888888888888888L in
  Alcotest.(check bool) "and2 needs inverted leaves" true
    (List.for_all
       (fun (m : Cell_lib.match_entry) -> m.Cell_lib.phase <> 0)
       (Cell_lib.matches lib_cmos 2 and2));
  Alcotest.(check bool) "nand2 matches phase-free" true
    (List.exists
       (fun (m : Cell_lib.match_entry) -> m.Cell_lib.phase = 0)
       (Cell_lib.matches lib_cmos 2 (Int64.lognot and2)));
  (* the free-phase library matches both *)
  Alcotest.(check bool) "static matches and2" true
    (Cell_lib.matches lib_static 2 and2 <> [])

let random_aig nin nnodes seed =
  let rng = Rand64.create (Int64.of_int seed) in
  let g = Aig.create () in
  let pool = ref (Array.to_list (Array.init nin (fun _ -> Aig.add_input g))) in
  for _ = 1 to nnodes do
    let pick () =
      let l = List.nth !pool (Rand64.int rng (List.length !pool)) in
      if Rand64.bool rng then Aig.lnot l else l
    in
    let x =
      match Rand64.int rng 3 with
      | 0 -> Aig.mk_and g (pick ()) (pick ())
      | 1 -> Aig.mk_or g (pick ()) (pick ())
      | _ -> Aig.mk_xor g (pick ()) (pick ())
    in
    pool := x :: !pool
  done;
  List.iteri
    (fun i l -> if i < 8 then Aig.add_output g (Printf.sprintf "o%d" i) l)
    !pool;
  g

let check_equivalent aig lib =
  let m = Mapper.map lib aig in
  let back = Mapped.to_aig m in
  match Cec.check aig back with
  | Cec.Equivalent -> true
  | Cec.Inequivalent _ -> false
  | Cec.Undecided -> failwith "undecided"

let test_mapping_equivalence_random () =
  for seed = 1 to 6 do
    let aig = random_aig 8 60 seed in
    List.iter
      (fun lib ->
        if not (check_equivalent aig lib) then
          Alcotest.failf "seed %d not equivalent on %s" seed (Cell_lib.name lib))
      [ lib_static; lib_pseudo; lib_cmos ]
  done;
  Alcotest.(check pass) "random mappings equivalent" () ()

let test_mapping_equivalence_structured () =
  List.iter
    (fun (name, aig) ->
      List.iter
        (fun lib ->
          if not (check_equivalent aig lib) then
            Alcotest.failf "%s not equivalent on %s" name (Cell_lib.name lib))
        [ lib_static; lib_cmos ])
    [ ("adder8", Arith.adder 8);
      ("ecc", Ecc.decoder ~data:8 ~checks:5 ~detect:true);
      ("alu", Alu.alu ~width:4 ~masked:true ~result_only:false ()) ];
  Alcotest.(check pass) "structured mappings equivalent" () ()

let test_mapped_outputs_on_constants_and_pis () =
  (* outputs driven by constants and inputs directly *)
  let g = Aig.create () in
  let a = Aig.add_input g in
  Aig.add_output g "t" Aig.lit_true;
  Aig.add_output g "f" Aig.lit_false;
  Aig.add_output g "w" a;
  Aig.add_output g "n" (Aig.lnot a);
  List.iter
    (fun lib ->
      let m = Mapper.map lib g in
      let out = Mapped.eval m [| true |] in
      Alcotest.(check (array bool)) "consts and wires"
        [| true; false; true; false |] out)
    [ lib_static; lib_cmos ];
  Alcotest.(check pass) "constant outputs" () ()

let test_xor_uses_xor_cell () =
  (* mapping a single xor with the static library must give one F01 cell *)
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  Aig.add_output g "y" (Aig.mk_xor g a b);
  let m = Mapper.map lib_static g in
  let s = Mapped.stats m in
  Alcotest.(check int) "one gate" 1 s.Mapped.gates;
  Alcotest.(check (list (pair string int))) "an F01" [ ("F01", 1) ]
    (Mapped.count_cells m);
  (* CMOS needs several gates for the same function *)
  let mc = Mapper.map lib_cmos g in
  Alcotest.(check bool) "cmos needs more" true
    ((Mapped.stats mc).Mapped.gates > 2)

let test_stats_consistency () =
  let aig = Arith.adder 12 in
  let m = Mapper.map lib_static aig in
  let s = Mapped.stats m in
  Alcotest.(check bool) "area positive" true (s.Mapped.area > 0.0);
  Alcotest.(check bool) "levels <= gates" true (s.Mapped.levels <= s.Mapped.gates);
  Alcotest.(check bool) "abs = norm * tau" true
    (abs_float (s.Mapped.abs_delay_ps -. (s.Mapped.norm_delay *. 0.59)) < 1e-6);
  (* levels from instance_levels agree with stats *)
  let lv = Mapped.instance_levels m in
  Alcotest.(check bool) "levels bound" true
    (Array.for_all (fun l -> l <= s.Mapped.levels) lv)

let test_cmos_inverter_accounting () =
  (* a bare inverter output in CMOS must cost exactly one INV *)
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  Aig.add_output g "y" (Aig.mk_and g a b);
  let m = Mapper.map lib_cmos g in
  (* and2 = NAND2 + INV *)
  let cells = Mapped.count_cells m in
  Alcotest.(check bool) "nand+inv" true
    (List.mem ("NAND2", 1) cells && List.mem ("INV", 1) cells)

let test_area_recovery_never_hurts_delay () =
  let aig = Synth.resyn2rs (Arith.adder 16) in
  let d0 =
    Mapper.map ~params:{ Mapper.default_params with Mapper.area_passes = 0 }
      lib_static aig
  in
  let d3 =
    Mapper.map ~params:{ Mapper.default_params with Mapper.area_passes = 3 }
      lib_static aig
  in
  let s0 = Mapped.stats d0 and s3 = Mapped.stats d3 in
  Alcotest.(check bool) "area recovery reduces area" true
    (s3.Mapped.area <= s0.Mapped.area +. 1e-9);
  Alcotest.(check bool) "delay within tolerance" true
    (s3.Mapped.norm_delay <= s0.Mapped.norm_delay +. 1e-6)

let test_mapper_jobs_byte_identical () =
  (* The level-synchronized matching sweeps must pick the same cover at
     every domain count (every cut leaf sits strictly below its root's
     level, so per-level matches are order-independent). *)
  let circuits =
    [
      ("addsub-12", Arith.addsub 12);
      ("div-12", Arith.divider 12);
      ("csa-16", Arith.carry_select_adder 16 ~block:4);
    ]
  in
  List.iter
    (fun (name, aig) ->
      List.iter
        (fun (lname, lib, timing) ->
          let image jobs =
            let params =
              { Mapper.default_params with Mapper.jobs; timing }
            in
            Marshal.to_string (Mapper.map ~params lib aig)
              [ Marshal.No_sharing ]
          in
          let seq = image 1 in
          List.iter
            (fun jobs ->
              if image jobs <> seq then
                Alcotest.failf "%s/%s: mapping jobs=%d diverges" name lname
                  jobs)
            [ 2; 3 ])
        [
          ("static", lib_static, false);
          ("cmos", lib_cmos, false);
          ("static-timing", lib_static, true);
        ])
    circuits

let test_mapper_tiny_circuits_any_jobs () =
  (* degenerate circuits with a pool wider than the node count: a pure
     wire (zero AND nodes) and a single AND, identical at every jobs *)
  let wire = Aig.create () in
  let a = Aig.add_input wire in
  Aig.add_output wire "y" a;
  let one = Aig.create () in
  let x = Aig.add_input one in
  let y = Aig.add_input one in
  Aig.add_output one "z" (Aig.mk_and one x y);
  List.iter
    (fun (name, aig) ->
      let image jobs =
        let params = { Mapper.default_params with Mapper.jobs } in
        Marshal.to_string (Mapper.map ~params lib_static aig)
          [ Marshal.No_sharing ]
      in
      if image 4 <> image 1 then
        Alcotest.failf "%s: jobs=4 diverges from jobs=1" name)
    [ ("wire", wire); ("one-and", one) ];
  Alcotest.(check pass) "tiny circuits map" () ()

let test_incremental_matches_full_matrix () =
  (* the dirty-propagation criterion is exact, so incremental re-evaluation
     must pick bit-identical covers on the whole benchmark x family matrix *)
  List.iter
    (fun (e : Bench_suite.entry) ->
      let aig = Synth.light (e.Bench_suite.build ()) in
      List.iter
        (fun fam ->
          let lib = Cell_lib.cached fam in
          let image incremental =
            let params = { Mapper.default_params with Mapper.incremental } in
            Digest.string
              (Marshal.to_string (Mapper.map ~params lib aig)
                 [ Marshal.No_sharing ])
          in
          if image true <> image false then
            Alcotest.failf "%s/%s: incremental cover diverges from full"
              e.Bench_suite.name
              (Cli_common.family_arg_name fam))
        Cell_netlist.all_families)
    Bench_suite.all

let test_genlib_roundtrip_library () =
  (* write the static library to genlib, parse it back, map with it:
     stats must be identical *)
  let text = Genlib.to_string lib_static in
  let lib2 =
    Genlib.of_string ~name:"roundtrip" ~free_phases:true ~tau_ps:0.59 text
  in
  Alcotest.(check int) "cells survive" 46 (List.length (Cell_lib.cells lib2));
  let aig = Arith.adder 8 in
  let s1 = Mapped.stats (Mapper.map lib_static aig) in
  let s2 = Mapped.stats (Mapper.map lib2 aig) in
  Alcotest.(check int) "same gates" s1.Mapped.gates s2.Mapped.gates;
  Alcotest.(check bool) "same area" true
    (abs_float (s1.Mapped.area -. s2.Mapped.area) < 0.1)

let () =
  Alcotest.run "techmap"
    [
      ( "library",
        [
          Alcotest.test_case "sizes" `Quick test_library_sizes;
          Alcotest.test_case "match semantics" `Quick test_match_semantics;
          Alcotest.test_case "cmos phases" `Quick test_cmos_no_free_neg;
          Alcotest.test_case "genlib roundtrip" `Quick test_genlib_roundtrip_library;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "random equivalence" `Quick test_mapping_equivalence_random;
          Alcotest.test_case "structured equivalence" `Quick
            test_mapping_equivalence_structured;
          Alcotest.test_case "const/pi outputs" `Quick
            test_mapped_outputs_on_constants_and_pis;
          Alcotest.test_case "xor cell used" `Quick test_xor_uses_xor_cell;
          Alcotest.test_case "stats consistency" `Quick test_stats_consistency;
          Alcotest.test_case "cmos inverters" `Quick test_cmos_inverter_accounting;
          Alcotest.test_case "area recovery" `Quick test_area_recovery_never_hurts_delay;
          Alcotest.test_case "jobs byte-identical" `Quick
            test_mapper_jobs_byte_identical;
          Alcotest.test_case "tiny circuits any jobs" `Quick
            test_mapper_tiny_circuits_any_jobs;
          Alcotest.test_case "incremental = full matrix" `Slow
            test_incremental_matches_full_matrix;
        ] );
    ]
