(* Tests for the AIG: construction, strashing, simulation, cuts, MFFC,
   checkpoint/rollback and cone extraction. *)

let rng = Rand64.create 17L

(* A full adder returning (sum, carry). *)
let full_adder g a b c =
  let s = Aig.mk_xor g (Aig.mk_xor g a b) c in
  let cy = Aig.mk_maj3 g a b c in
  (s, cy)

let build_adder n =
  let g = Aig.create () in
  let xs = Array.init n (fun i -> Aig.add_input ~name:(Printf.sprintf "a%d" i) g) in
  let ys = Array.init n (fun i -> Aig.add_input ~name:(Printf.sprintf "b%d" i) g) in
  let carry = ref Aig.lit_false in
  for i = 0 to n - 1 do
    let s, c = full_adder g xs.(i) ys.(i) !carry in
    Aig.add_output g (Printf.sprintf "s%d" i) s;
    carry := c
  done;
  Aig.add_output g "cout" !carry;
  g

let test_const_folding () =
  let g = Aig.create () in
  let a = Aig.add_input g in
  Alcotest.(check int) "a*0=0" Aig.lit_false (Aig.mk_and g a Aig.lit_false);
  Alcotest.(check int) "a*1=a" a (Aig.mk_and g a Aig.lit_true);
  Alcotest.(check int) "a*a=a" a (Aig.mk_and g a a);
  Alcotest.(check int) "a*!a=0" Aig.lit_false (Aig.mk_and g a (Aig.lnot a));
  Alcotest.(check int) "no nodes created" 0 (Aig.num_ands g)

let test_strash () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let x = Aig.mk_and g a b in
  let y = Aig.mk_and g b a in
  Alcotest.(check int) "commutative strash" x y;
  Alcotest.(check int) "one node" 1 (Aig.num_ands g);
  let z = Aig.mk_and g (Aig.lnot a) b in
  Alcotest.(check bool) "different node" true (x <> z);
  Alcotest.(check int) "two nodes" 2 (Aig.num_ands g)

let test_adder_semantics () =
  let n = 6 in
  let g = build_adder n in
  for _ = 1 to 200 do
    let a = Rand64.int rng (1 lsl n) and b = Rand64.int rng (1 lsl n) in
    let bits =
      Array.init (2 * n) (fun i ->
          if i < n then a land (1 lsl i) <> 0 else b land (1 lsl (i - n)) <> 0)
    in
    let out = Aig.eval g bits in
    let v = ref 0 in
    for i = n downto 0 do
      v := (2 * !v) + if out.(i) then 1 else 0
    done;
    Alcotest.(check int) "adder value" (a + b) !v
  done

let test_input_order_enforced () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  ignore (Aig.mk_and g a b);
  Alcotest.check_raises "late input rejected"
    (Invalid_argument "Aig.add_input: inputs must precede AND nodes")
    (fun () -> ignore (Aig.add_input g))

let test_simulate_vs_eval () =
  let g = build_adder 4 in
  let words = Array.init (Aig.num_inputs g) (fun _ -> Rand64.next rng) in
  let out_words = Aig.simulate_outputs g words in
  for bit = 0 to 63 do
    let bits =
      Array.init (Aig.num_inputs g) (fun i ->
          Int64.(logand (shift_right_logical words.(i) bit) 1L) <> 0L)
    in
    let expect = Aig.eval g bits in
    Array.iteri
      (fun o w ->
        let got = Int64.(logand (shift_right_logical w bit) 1L) <> 0L in
        if got <> expect.(o) then Alcotest.fail "simulate disagrees with eval")
      out_words
  done;
  Alcotest.(check pass) "simulate matches eval" () ()

let test_tt_of_cut () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  let s, _ = full_adder g a b c in
  let leaves = [| 1; 2; 3 |] in
  let tt = Aig.tt_of_cut g s leaves in
  let expect =
    Tt.bxor (Tt.bxor (Tt.var 3 0) (Tt.var 3 1)) (Tt.var 3 2)
  in
  Alcotest.(check bool) "sum is xor3" true (Tt.equal tt expect)

let test_tt_of_lit () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let x = Aig.mk_or g a (Aig.lnot b) in
  let tt = Aig.tt_of_lit g x in
  let expect = Tt.bor (Tt.var 2 0) (Tt.bnot (Tt.var 2 1)) in
  Alcotest.(check bool) "or with complement" true (Tt.equal tt expect)

let test_levels_depth () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  let x = Aig.mk_and g a b in
  let y = Aig.mk_and g x c in
  Aig.add_output g "y" y;
  Alcotest.(check int) "depth 2" 2 (Aig.depth g);
  let lv = Aig.levels g in
  Alcotest.(check int) "level of x" 1 lv.(Aig.node_of x);
  Alcotest.(check int) "level of y" 2 lv.(Aig.node_of y)

let test_mffc () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  (* chain: ((a*b)*c) used once -> MFFC of the top is 2 *)
  let x = Aig.mk_and g a b in
  let y = Aig.mk_and g x c in
  Aig.add_output g "y" y;
  let refs = Aig.fanout_counts g in
  Alcotest.(check int) "mffc of chain top" 2
    (Aig.mffc_size g refs (Aig.node_of y));
  (* share x with another output: now MFFC of y is 1 *)
  Aig.add_output g "x" x;
  let refs = Aig.fanout_counts g in
  Alcotest.(check int) "mffc with shared node" 1
    (Aig.mffc_size g refs (Aig.node_of y))

let test_checkpoint_rollback () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let x = Aig.mk_and g a b in
  let ck = Aig.checkpoint g in
  let y = Aig.mk_and g x (Aig.lnot a) in
  let z = Aig.mk_and g y b in
  ignore z;
  Alcotest.(check int) "3 nodes before rollback" 3 (Aig.num_ands g);
  Aig.rollback g ck;
  Alcotest.(check int) "1 node after rollback" 1 (Aig.num_ands g);
  (* strash must have been cleaned: rebuilding works and yields same ids *)
  let y' = Aig.mk_and g x (Aig.lnot a) in
  Alcotest.(check int) "rebuilt node gets freed id" (Aig.node_of y)
    (Aig.node_of y');
  (* and the pre-checkpoint node is still strashed *)
  Alcotest.(check int) "old node still hashed" x (Aig.mk_and g b a)

let test_extract () =
  let g = build_adder 5 in
  (* keep only the carry-out cone *)
  let name, l = Aig.output g (Aig.num_outputs g - 1) in
  let fresh, _ = Aig.extract g [ (name, l) ] in
  Alcotest.(check int) "outputs" 1 (Aig.num_outputs fresh);
  Alcotest.(check bool) "smaller" true (Aig.num_ands fresh < Aig.num_ands g);
  for _ = 1 to 100 do
    let bits =
      Array.init (Aig.num_inputs g) (fun _ -> Rand64.bool rng)
    in
    let o1 = (Aig.eval g bits).(Aig.num_outputs g - 1) in
    let o2 = (Aig.eval fresh bits).(0) in
    if o1 <> o2 then Alcotest.fail "extract changed semantics"
  done;
  Alcotest.(check pass) "extract preserves cone" () ()

let test_cleanup_drops_dead () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let x = Aig.mk_and g a b in
  let _dead = Aig.mk_and g (Aig.lnot a) (Aig.lnot b) in
  Aig.add_output g "x" x;
  let g' = Aig.cleanup g in
  Alcotest.(check int) "dead node dropped" 1 (Aig.num_ands g')

(* ---- cuts ---- *)

let test_cuts_basic () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  let s, _ = full_adder g a b c in
  Aig.add_output g "s" s;
  let cuts = Cut.compute g ~k:4 ~limit:8 in
  let root = Aig.node_of s in
  let cs = cuts.(root) in
  Alcotest.(check bool) "has cuts" true (List.length cs >= 2);
  (* the trivial cut is present *)
  Alcotest.(check bool) "trivial present" true
    (List.exists (fun cut -> cut.Cut.leaves = [| root |]) cs);
  (* the PI cut {1,2,3} is present and its function is xor3 *)
  let pi_cut = List.find (fun cut -> cut.Cut.leaves = [| 1; 2; 3 |]) cs in
  let tt = Aig.tt_of_cut g (Aig.lit_of_node root) pi_cut.Cut.leaves in
  let x3 = Tt.bxor (Tt.bxor (Tt.var 3 0) (Tt.var 3 1)) (Tt.var 3 2) in
  Alcotest.(check bool) "pi cut computes xor3" true
    (Tt.equal tt x3 || Tt.equal tt (Tt.bnot x3))

let test_cuts_are_cuts () =
  (* every enumerated cut supports truth-table computation (i.e. really cuts
     the cone) on a random-ish structure *)
  let g = build_adder 4 in
  let cuts = Cut.compute g ~k:5 ~limit:10 in
  Aig.iter_ands g (fun n ->
      List.iter
        (fun cut ->
          ignore (Aig.tt_of_cut g (Aig.lit_of_node n) cut.Cut.leaves))
        cuts.(n));
  Alcotest.(check pass) "all cuts valid" () ()

let test_cut_dominance () =
  let a = Cut.trivial 5 in
  Alcotest.(check bool) "trivial self-dominates" true (Cut.dominates a a)

let test_cut_limit () =
  let g = build_adder 8 in
  let limit = 6 in
  let cuts = Cut.compute g ~k:4 ~limit in
  Aig.iter_ands g (fun n ->
      if List.length cuts.(n) > limit then Alcotest.fail "limit exceeded");
  Alcotest.(check pass) "cut limit respected" () ()

(* ---- Par pool ---- *)

let test_par_more_workers_than_items () =
  (* a pool wider than the work item count: every index is still visited
     exactly once, and n = 0 is a no-op *)
  Par.with_pool ~jobs:8 (fun p ->
      let hits = Array.make 3 0 in
      Par.run p ~n:3 (fun _ lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i h ->
          Alcotest.(check int) (Printf.sprintf "index %d visited once" i) 1 h)
        hits;
      Par.run p ~n:0 (fun _ _ _ -> Alcotest.fail "body ran for n=0");
      Alcotest.(check pass) "n=0 no-op" () ())

let test_par_nested_rejected () =
  Par.with_pool ~jobs:2 (fun p ->
      let rejected = ref false in
      Par.run p ~n:1 (fun _ _ _ ->
          try Par.run p ~n:1 (fun _ _ _ -> ())
          with Invalid_argument _ -> rejected := true);
      Alcotest.(check bool) "nested run rejected" true !rejected;
      (* the rejection must not poison the pool for later dispatches *)
      let a = Array.make 64 0 in
      Par.run p ~n:64 (fun _ lo hi ->
          for i = lo to hi - 1 do
            a.(i) <- 1
          done);
      Alcotest.(check int) "pool usable after rejection" 64
        (Array.fold_left ( + ) 0 a))

let test_par_run_phases () =
  Par.with_pool ~jobs:3 (fun p ->
      (* each phase reads the previous phase's writes: 0 -> 1 -> 3 -> 7
         only if every barrier publishes in order *)
      let n = 257 in
      let acc = Array.make n 0 in
      let parallel = [| true; false; true |] in
      Par.run_phases p ~counts:[| n; n; n |] ~parallel (fun w ph lo hi ->
          if (not parallel.(ph)) && w <> 0 then
            Alcotest.fail "sequential phase ran off worker 0";
          for i = lo to hi - 1 do
            acc.(i) <- (2 * acc.(i)) + 1
          done);
      Array.iteri
        (fun i v ->
          if v <> 7 then
            Alcotest.failf "acc(%d) = %d, want 7 (phase ordering broken)" i v)
        acc;
      (* ragged phase sizes, including an empty phase *)
      let m = Array.make 100 0 in
      Par.run_phases p ~counts:[| 100; 0; 40 |]
        ~parallel:[| true; false; true |] (fun _ ph lo hi ->
          for i = lo to hi - 1 do
            m.(i) <- m.(i) + ph + 1
          done);
      Alcotest.(check int) "ragged counts" (100 + (3 * 40))
        (Array.fold_left ( + ) 0 m);
      (match
         Par.run_phases p ~counts:[| 1 |] ~parallel:[||] (fun _ _ _ _ -> ())
       with
      | () -> Alcotest.fail "counts/parallel length mismatch accepted"
      | exception Invalid_argument _ -> ());
      Alcotest.(check pass) "length mismatch rejected" () ())

let () =
  Alcotest.run "aig"
    [
      ( "aig",
        [
          Alcotest.test_case "const folding" `Quick test_const_folding;
          Alcotest.test_case "strash" `Quick test_strash;
          Alcotest.test_case "adder semantics" `Quick test_adder_semantics;
          Alcotest.test_case "input order" `Quick test_input_order_enforced;
          Alcotest.test_case "simulate/eval" `Quick test_simulate_vs_eval;
          Alcotest.test_case "tt of cut" `Quick test_tt_of_cut;
          Alcotest.test_case "tt of lit" `Quick test_tt_of_lit;
          Alcotest.test_case "levels/depth" `Quick test_levels_depth;
          Alcotest.test_case "mffc" `Quick test_mffc;
          Alcotest.test_case "checkpoint/rollback" `Quick test_checkpoint_rollback;
          Alcotest.test_case "extract" `Quick test_extract;
          Alcotest.test_case "cleanup" `Quick test_cleanup_drops_dead;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "basic" `Quick test_cuts_basic;
          Alcotest.test_case "cuts are cuts" `Quick test_cuts_are_cuts;
          Alcotest.test_case "dominance" `Quick test_cut_dominance;
          Alcotest.test_case "limit" `Quick test_cut_limit;
        ] );
      ( "par",
        [
          Alcotest.test_case "more workers than items" `Quick
            test_par_more_workers_than_items;
          Alcotest.test_case "nested use rejected" `Quick
            test_par_nested_rejected;
          Alcotest.test_case "run_phases" `Quick test_par_run_phases;
        ] );
    ]
