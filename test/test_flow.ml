(* Tests for the Flow pass-pipeline engine: script parsing, pass vs
   direct-call equivalence, the deterministic Domain runner, the matrix
   driver, per-pass metrics and the shared library cache. *)

let adder () = Arith.adder 8
let t481 () = Logic_gen.t481_like ()

(* ---- script parsing ---- *)

let test_parse_roundtrip () =
  let script = "b; rw -z; rf(cut=5,z) ;; map(family=static, cut=6, timing)" in
  let steps = Flow.parse_script_exn script in
  Alcotest.(check int) "four steps" 4 (List.length steps);
  Alcotest.(check string) "normalized"
    "b; rw(z); rf(cut=5,z); map(family=static,cut=6,timing)"
    (Flow.script_to_string steps);
  (* parse of the normalized form is stable *)
  Alcotest.(check string) "stable"
    (Flow.script_to_string steps)
    (Flow.script_to_string
       (Flow.parse_script_exn (Flow.script_to_string steps)))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_parse_errors () =
  (match Flow.parse_script "b; frobnicate; map" with
  | Error msg ->
      Alcotest.(check bool) "names the pass" true
        (contains ~sub:"frobnicate" msg)
  | Ok _ -> Alcotest.fail "unknown pass accepted");
  (match Flow.parse_script "map(color=red)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown argument accepted");
  match Flow.parse_script "rw(z" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbalanced parens accepted"

let test_split_at_map () =
  let steps = Flow.parse_script_exn "b; rw; map; sta; lint" in
  let prefix, suffix = Flow.split_at_map steps in
  Alcotest.(check string) "prefix" "b; rw" (Flow.script_to_string prefix);
  Alcotest.(check string) "suffix" "map; sta; lint"
    (Flow.script_to_string suffix);
  let prefix, suffix = Flow.split_at_map (Flow.parse_script_exn "b; rw") in
  Alcotest.(check int) "no map: all prefix" 2 (List.length prefix);
  Alcotest.(check int) "no map: empty suffix" 0 (List.length suffix)

(* ---- pass vs direct call equivalence ---- *)

let test_synth_passes_equiv_direct () =
  let aig = t481 () in
  let via_flow script =
    let ctx, _ = Flow.run (Flow.parse_script_exn script) (Flow.init ~name:"t" aig) in
    ctx.Flow.aig
  in
  let same name a b =
    Alcotest.(check int) (name ^ " ands") (Aig.num_ands a) (Aig.num_ands b);
    Alcotest.(check int) (name ^ " depth") (Aig.depth a) (Aig.depth b)
  in
  same "b;rw;rf"
    (Synth.refactor (Synth.rewrite (Synth.balance aig)))
    (via_flow "b; rw; rf");
  same "synth(full)" (Synth.resyn2rs aig) (via_flow "synth(full)");
  same "synth(light)" (Synth.light aig) (via_flow "synth(light)");
  same "synth(none)" aig (via_flow "synth(none)")

let test_map_sta_pass_equiv_direct () =
  let aig = Synth.light (adder ()) in
  let ctx, _ =
    Flow.run
      (Flow.parse_script_exn "map(family=pseudo,cut=5); sta(po=2)")
      (Flow.init ~name:"a8" aig)
  in
  let lib = Cell_lib.cached Cell_netlist.Tg_pseudo in
  let params = { Mapper.default_params with Mapper.cut_size = 5 } in
  let m = Mapper.map ~params lib aig in
  let sta =
    Sta.analyze ~model:{ Sta.unit_loads = false; po_fanout = 2.0 } m
  in
  Alcotest.(check bool) "mapped stats equal" true
    (Mapped.stats m = Mapped.stats (Option.get ctx.Flow.mapped));
  Alcotest.(check (float 1e-9)) "sta delay equal" (Sta.abs_delay_ps sta)
    (Sta.abs_delay_ps (Option.get ctx.Flow.sta))

let test_verify_and_diags () =
  let ctx0 = Flow.init ~name:"a8" (adder ()) in
  let ctx, _ =
    Flow.run (Flow.parse_script_exn "light; map; verify(seed=7); lint") ctx0
  in
  Alcotest.(check bool) "verified" true (ctx.Flow.verified = Some true);
  Alcotest.(check bool) "clean lint" false (Diag.has_errors ctx.Flow.diags);
  (* diags_since sees only what the suffix added *)
  let mid, _ = Flow.run (Flow.parse_script_exn "light; lint(aig)") ctx0 in
  let after, _ = Flow.run (Flow.parse_script_exn "map; lint") mid in
  Alcotest.(check int) "diags_since counts the delta"
    (List.length after.Flow.diags - List.length mid.Flow.diags)
    (List.length (Flow.diags_since mid after))

let test_place_pass () =
  let ctx, _ =
    Flow.run
      (Flow.parse_script_exn "light; map; place")
      (Flow.init ~name:"a8" (adder ()))
  in
  (match ctx.Flow.placement with
  | Some p ->
      Alcotest.(check bool) "utilization in (0,1]" true
        (p.Fabric.utilization > 0.0 && p.Fabric.utilization <= 1.0)
  | None -> Alcotest.fail "auto-sized placement failed");
  (* a fabric that cannot fit the netlist reports a diagnostic, not an
     exception *)
  let ctx, _ =
    Flow.run
      (Flow.parse_script_exn "light; map; place(rows=2,cols=2)")
      (Flow.init ~name:"a8" (adder ()))
  in
  Alcotest.(check bool) "placement error surfaced as diag" true
    (ctx.Flow.placement = None && Diag.has_errors ctx.Flow.diags)

let test_pass_ordering_errors () =
  (match Flow.run (Flow.parse_script_exn "sta") (Flow.init ~name:"x" (adder ())) with
  | exception Flow.Flow_error _ -> ()
  | _ -> Alcotest.fail "sta before map accepted");
  match
    Flow.run (Flow.parse_script_exn "verify") (Flow.init ~name:"x" (adder ()))
  with
  | exception Flow.Flow_error _ -> ()
  | _ -> Alcotest.fail "verify before map accepted"

(* ---- metrics ---- *)

let test_samples () =
  let _, samples =
    Flow.run
      (Flow.parse_script_exn "synth(full); map; sta; lint")
      (Flow.init ~name:"t481" (t481 ()))
  in
  Alcotest.(check int) "one sample per pass" 4 (List.length samples);
  let synth_s = List.nth samples 0 in
  Alcotest.(check bool) "synth shrank the AIG" true
    (synth_s.Flow.sm_ands_after < synth_s.Flow.sm_ands_before);
  Alcotest.(check string) "unmapped family is -" "-" synth_s.Flow.sm_family;
  let map_s = List.nth samples 1 in
  Alcotest.(check bool) "map records stats" true
    (map_s.Flow.sm_mapped <> None);
  Alcotest.(check bool) "map records a cache outcome" true
    (map_s.Flow.sm_cache <> None);
  let sta_s = List.nth samples 2 in
  Alcotest.(check bool) "sta records delay" true (sta_s.Flow.sm_sta_ps <> None);
  (* cut-engine counters appear exactly on the cut-enumerating passes *)
  (match synth_s.Flow.sm_cut with
  | Some c ->
      Alcotest.(check bool) "synth built cuts" true (c.Cut.built > 0)
  | None -> Alcotest.fail "synth sample has no cut stats");
  (match map_s.Flow.sm_cut with
  | Some c ->
      Alcotest.(check bool) "map built cuts" true (c.Cut.built > 0);
      Alcotest.(check bool) "map probed the match tables" true
        (c.Cut.probes > 0);
      Alcotest.(check bool) "map counted re-evaluations" true
        (c.Cut.reevals > 0);
      Alcotest.(check bool) "map skipped some re-evaluations" true
        (c.Cut.reeval_skips > 0)
  | None -> Alcotest.fail "map sample has no cut stats");
  Alcotest.(check bool) "sta has no cut stats" true
    (sta_s.Flow.sm_cut = None);
  (* renderers cover every sample *)
  let tsv_lines =
    List.map Flow.sample_to_tsv samples
    |> List.filter (fun l -> String.length l > 0)
  in
  Alcotest.(check int) "tsv rows" 4 (List.length tsv_lines);
  List.iter
    (fun l ->
      Alcotest.(check int) "tsv column count" 36
        (List.length (String.split_on_char '\t' l)))
    tsv_lines;
  Alcotest.(check int) "tsv header column count" 36
    (List.length (String.split_on_char '\t' Flow.samples_tsv_header));
  let json = Flow.samples_to_json samples in
  Alcotest.(check bool) "json non-trivial" true (String.length json > 100)

(* the engine argument is parsed on every cut-based pass, and the reference
   engine produces identical results through the flow layer *)
let test_engine_arg () =
  let run_with script =
    Flow.run (Flow.parse_script_exn script) (Flow.init ~name:"t481" (t481 ()))
  in
  let ctx_p, s_p = run_with "synth(light,engine=packed); map(engine=packed)" in
  let ctx_r, s_r =
    run_with "synth(light,engine=reference); map(engine=reference)"
  in
  Alcotest.(check bool) "mapped netlists identical across engines" true
    (ctx_p.Flow.mapped = ctx_r.Flow.mapped);
  (* the enumeration counters instrument the packed hot path only; the
     match-table probes are shared, and identical info lists mean identical
     probe counts *)
  let cut_of samples i =
    match (List.nth samples i).Flow.sm_cut with
    | Some c -> c
    | None -> Alcotest.failf "sample %d has no cut stats" i
  in
  Alcotest.(check bool) "packed synth counted cuts" true
    ((cut_of s_p 0).Cut.built > 0);
  Alcotest.(check int) "reference enumeration uninstrumented" 0
    (cut_of s_r 0).Cut.built;
  Alcotest.(check int) "probe counts agree" (cut_of s_p 1).Cut.probes
    (cut_of s_r 1).Cut.probes;
  Alcotest.(check bool) "probes counted" true ((cut_of s_p 1).Cut.probes > 0);
  match run_with "map(engine=bogus)" with
  | exception Flow.Flow_error _ -> ()
  | _ -> Alcotest.fail "bogus engine accepted"

(* ---- library cache ---- *)

let test_library_cache () =
  let _ = Cell_lib.cached Cell_netlist.Tg_static in
  let s0 = Cell_lib.cache_stats () in
  let l1 = Cell_lib.cached Cell_netlist.Tg_static in
  let l2 = Cell_lib.cached Cell_netlist.Tg_static in
  let s1 = Cell_lib.cache_stats () in
  Alcotest.(check bool) "same library object" true (l1 == l2);
  Alcotest.(check int) "two hits" (s0.Cell_lib.hits + 2) s1.Cell_lib.hits;
  Alcotest.(check int) "no new misses" s0.Cell_lib.misses s1.Cell_lib.misses;
  Alcotest.(check bool) "entries counted" true (s1.Cell_lib.entries >= 1);
  Alcotest.(check bool) "Core.library goes through the cache" true
    (Core.library `Tg_static == l1)

(* ---- runner and matrix determinism ---- *)

let test_runner_deterministic () =
  let jobs = Array.init 17 (fun i -> i) in
  let f i = i * i in
  Alcotest.(check (array int)) "2 domains = sequential"
    (Array.map f jobs)
    (Flow.Runner.map_jobs ~domains:2 f jobs);
  Alcotest.(check (array int)) "more domains than jobs"
    (Array.map f [| 1; 2 |])
    (Flow.Runner.map_jobs ~domains:8 f [| 1; 2 |]);
  (* first error in input order is re-raised *)
  match
    Flow.Runner.map_jobs ~domains:2
      (fun i -> if i >= 3 then failwith (string_of_int i) else i)
      jobs
  with
  | _ -> Alcotest.fail "error not propagated"
  | exception Failure _ -> ()

let matrix_script = "light; map; sta; lint"

let matrix_report results =
  results |> Array.to_list
  |> List.concat_map (fun (r : Flow.bench_result) ->
         List.map (fun (_, ctx, _) -> Flow.summary_line ctx)
           r.Flow.br_per_family)
  |> String.concat "\n"

let test_matrix_parallel_identical () =
  let entries =
    List.map Bench_suite.find [ "add-16"; "t481"; "C1908"; "add-32" ]
  in
  let families = [ Cell_netlist.Tg_static; Cell_netlist.Cmos ] in
  let script = Flow.parse_script_exn matrix_script in
  let seq = Flow.run_matrix ~domains:1 ~script ~families entries in
  let par = Flow.run_matrix ~domains:2 ~script ~families entries in
  Alcotest.(check string) "parallel report byte-identical"
    (matrix_report seq) (matrix_report par);
  (* sample streams agree on everything but wall time and allocation
     (GC deltas depend on which domain ran the pass) *)
  let strip (s : Flow.sample) =
    Flow.sample_to_tsv { s with Flow.sm_wall_s = 0.0; sm_gc = None }
  in
  Alcotest.(check (list string)) "metrics identical (times zeroed)"
    (List.map strip (Flow.matrix_samples seq))
    (List.map strip (Flow.matrix_samples par));
  (* prefix hoisting: the prefix ran once per bench, suffix per family *)
  Array.iter
    (fun (r : Flow.bench_result) ->
      Alcotest.(check int) "prefix samples" 1
        (List.length r.Flow.br_prefix_samples);
      Alcotest.(check int) "families" 2 (List.length r.Flow.br_per_family);
      List.iter
        (fun (_, _, ss) ->
          Alcotest.(check int) "suffix samples" 3 (List.length ss))
        r.Flow.br_per_family)
    seq

(* ---- crash isolation, fault pass, checkpoints ---- *)

let isolate_config = { Flow.default_config with Flow.isolate = true }

let test_run_isolation () =
  let ctx, samples =
    Flow.run ~config:isolate_config
      (Flow.parse_script_exn "light; fail(msg=boom); map; sta")
      (Flow.init ~name:"a8" (adder ()))
  in
  let has rule =
    List.exists (fun (d : Diag.t) -> d.Diag.rule = rule) ctx.Flow.diags
  in
  Alcotest.(check bool) "crash became an error diag" true
    (List.exists
       (fun (d : Diag.t) ->
         d.Diag.rule = "flow-pass-crash" && d.Diag.severity = Diag.Error)
       ctx.Flow.diags);
  Alcotest.(check bool) "skipped steps noted" true (has "flow-passes-skipped");
  Alcotest.(check bool) "map never ran" true (ctx.Flow.mapped = None);
  Alcotest.(check int) "samples: light + the crash" 2 (List.length samples);
  (* without isolate (the default) the exception still propagates *)
  match
    Flow.run (Flow.parse_script_exn "fail") (Flow.init ~name:"x" (adder ()))
  with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "fail pass did not raise without isolate"

(* the acceptance scenario: one injected matrix cell raises; every other
   benchmark x family cell completes and the failure is a Diag error *)
let test_matrix_cell_crash () =
  let entries = List.map Bench_suite.find [ "add-16"; "t481" ] in
  let families = [ Cell_netlist.Tg_static; Cell_netlist.Cmos ] in
  let script =
    Flow.parse_script_exn "light; map; fail(circuit=t481,family=cmos); sta"
  in
  let results =
    Flow.run_matrix ~config:isolate_config ~script ~families entries
  in
  Alcotest.(check int) "both benchmarks reported" 2 (Array.length results);
  Array.iter
    (fun (r : Flow.bench_result) ->
      List.iter
        (fun (fam, ctx, _) ->
          let crashed =
            r.Flow.br_bench = "t481" && fam = Cell_netlist.Cmos
          in
          let own = Flow.diags_since r.Flow.br_ctx0 ctx in
          let has_crash =
            List.exists
              (fun (d : Diag.t) ->
                d.Diag.rule = "flow-pass-crash"
                && d.Diag.severity = Diag.Error)
              own
          in
          if crashed then begin
            Alcotest.(check bool) "failure reported as a Diag error" true
              has_crash;
            Alcotest.(check bool) "sta skipped in the crashed cell" true
              (ctx.Flow.sta = None)
          end
          else begin
            Alcotest.(check bool) "other cells clean" false has_crash;
            Alcotest.(check bool) "other cells completed sta" true
              (ctx.Flow.sta <> None)
          end)
        r.Flow.br_per_family)
    results

let test_fault_pass () =
  let ctx, samples =
    Flow.run
      (Flow.parse_script_exn "light; map; fault(rounds=4,seed=5)")
      (Flow.init ~name:"a8" (adder ()))
  in
  let s =
    match ctx.Flow.fault with
    | Some s -> s
    | None -> Alcotest.fail "fault pass left no summary"
  in
  Alcotest.(check bool) "faults enumerated" true (s.Gate_fault.g_total > 0);
  let cov = Gate_fault.coverage s in
  Alcotest.(check bool) "coverage in [0,1]" true (cov >= 0.0 && cov <= 1.0);
  (match List.rev samples with
  | last :: _ ->
      Alcotest.(check bool) "fault sample recorded" true
        (last.Flow.sm_fault = Some s)
  | [] -> Alcotest.fail "no samples");
  (* fault before map is an ordering error *)
  match
    Flow.run (Flow.parse_script_exn "fault") (Flow.init ~name:"x" (adder ()))
  with
  | exception Flow.Flow_error _ -> ()
  | _ -> Alcotest.fail "fault before map accepted"

let test_checkpoint_roundtrip () =
  let entries = [ Bench_suite.find "add-16" ] in
  let script = Flow.parse_script_exn "light; map; lint" in
  let results =
    Flow.run_matrix ~script ~families:[ Cell_netlist.Tg_static ] entries
  in
  let lines =
    List.map
      (fun (_, ctx, _) -> Flow.summary_line ctx)
      results.(0).Flow.br_per_family
  in
  let entry = Flow.Checkpoint.of_result results.(0) ~lines in
  let path = Filename.temp_file "flowck" ".bin" in
  Flow.Checkpoint.save path [ entry ];
  let back = Flow.Checkpoint.load path in
  Alcotest.(check bool) "roundtrip equal" true (back = [ entry ]);
  Alcotest.(check bool) "mem finds the bench" true
    (Flow.Checkpoint.mem back "add-16");
  Alcotest.(check bool) "mem rejects others" false
    (Flow.Checkpoint.mem back "t481");
  (* corrupt and missing files resume from scratch instead of raising *)
  let oc = open_out path in
  output_string oc "not a checkpoint";
  close_out oc;
  Alcotest.(check bool) "corrupt file loads as empty" true
    (Flow.Checkpoint.load path = []);
  Sys.remove path;
  Alcotest.(check bool) "missing file loads as empty" true
    (Flow.Checkpoint.load path = [])

(* A checkpoint killed mid-write must never poison a resume.  Saves are
   atomic (temp + rename), so the only way to observe a short file is to
   make one by hand — and load must treat it as empty, not raise. *)
let test_checkpoint_truncated () =
  let entries = [ Bench_suite.find "add-16" ] in
  let script = Flow.parse_script_exn "light; map" in
  let results =
    Flow.run_matrix ~script ~families:[ Cell_netlist.Tg_static ] entries
  in
  let lines =
    List.map
      (fun (_, ctx, _) -> Flow.summary_line ctx)
      results.(0).Flow.br_per_family
  in
  let entry = Flow.Checkpoint.of_result results.(0) ~lines in
  let path = Filename.temp_file "flowck" ".bin" in
  Flow.Checkpoint.save path [ entry ];
  let full = In_channel.with_open_bin path In_channel.input_all in
  (* truncate at several depths: inside the magic, inside the Marshal
     header, inside the payload *)
  List.iter
    (fun keep ->
      let oc = open_out_bin path in
      output_string oc (String.sub full 0 keep);
      close_out oc;
      Alcotest.(check bool)
        (Printf.sprintf "truncated to %d bytes loads as empty" keep)
        true
        (Flow.Checkpoint.load path = []))
    [ 3; String.length full / 2; String.length full - 1 ];
  (* an interrupted save leaves no temp litter and the old file intact *)
  Flow.Checkpoint.save path [ entry ];
  Alcotest.(check bool) "atomic save readable again" true
    (Flow.Checkpoint.load path = [ entry ]);
  let dir = Filename.dirname path and base = Filename.basename path in
  Alcotest.(check (list string)) "no temp litter" []
    (Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           f <> base
           && String.length f > String.length base
           && String.sub f 0 (String.length base) = base));
  Sys.remove path

(* A pass that overruns the wall-clock budget degrades to a typed
   flow-pass-budget Warning; the run itself still completes. *)
let test_pass_budget_overrun () =
  let config =
    { Flow.default_config with Flow.pass_budget_s = Some 0.05 }
  in
  let ctx, _ =
    Flow.run ~config
      (Flow.parse_script_exn "sleep(s=0.2); b")
      (Flow.init ~name:"slow" (adder ()))
  in
  let budget_diags =
    List.filter
      (fun (d : Diag.t) -> d.Diag.rule = "flow-pass-budget")
      ctx.Flow.diags
  in
  Alcotest.(check int) "one budget warning" 1 (List.length budget_diags);
  Alcotest.(check bool) "warning, not error" false
    (Diag.has_errors budget_diags);
  (* under budget: silent *)
  let ctx, _ =
    Flow.run ~config (Flow.parse_script_exn "b")
      (Flow.init ~name:"fast" (adder ()))
  in
  Alcotest.(check int) "no warning under budget" 0
    (List.length
       (List.filter
          (fun (d : Diag.t) -> d.Diag.rule = "flow-pass-budget")
          ctx.Flow.diags))

(* The cec pass: equivalence proved on a clean map, conflict-budget
   exhaustion degraded to a typed cec-undecided Warning. *)
let test_cec_pass () =
  let ctx, _ =
    Flow.run
      (Flow.parse_script_exn "b; map; cec")
      (Flow.init ~name:"c" (adder ()))
  in
  Alcotest.(check (option bool)) "equivalent" (Some true) ctx.Flow.verified;
  let ctx, _ =
    Flow.run
      (Flow.parse_script_exn "b; map; cec(budget=1)")
      (Flow.init ~name:"c" ((Bench_suite.find "add-16").Bench_suite.build ()))
  in
  Alcotest.(check (option bool)) "undecided leaves verified unset" None
    ctx.Flow.verified;
  Alcotest.(check bool) "typed warning" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.rule = "cec-undecided")
       ctx.Flow.diags);
  match
    Flow.run (Flow.parse_script_exn "cec") (Flow.init ~name:"c" (adder ()))
  with
  | exception Flow.Flow_error _ -> ()
  | _ -> Alcotest.fail "cec before map accepted"

let () =
  Alcotest.run "flow"
    [
      ( "script",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "split at map" `Quick test_split_at_map;
        ] );
      ( "passes",
        [
          Alcotest.test_case "synth passes = direct calls" `Quick
            test_synth_passes_equiv_direct;
          Alcotest.test_case "map/sta passes = direct calls" `Quick
            test_map_sta_pass_equiv_direct;
          Alcotest.test_case "verify and diags" `Quick test_verify_and_diags;
          Alcotest.test_case "place" `Quick test_place_pass;
          Alcotest.test_case "ordering errors" `Quick
            test_pass_ordering_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "samples" `Quick test_samples;
          Alcotest.test_case "engine argument" `Quick test_engine_arg;
        ] );
      ( "cache",
        [ Alcotest.test_case "library cache" `Quick test_library_cache ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic map_jobs" `Quick
            test_runner_deterministic;
          Alcotest.test_case "matrix parallel = sequential" `Quick
            test_matrix_parallel_identical;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "pass crash isolation" `Quick test_run_isolation;
          Alcotest.test_case "matrix cell crash" `Quick test_matrix_cell_crash;
          Alcotest.test_case "fault pass" `Quick test_fault_pass;
          Alcotest.test_case "checkpoint roundtrip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "checkpoint truncated" `Quick
            test_checkpoint_truncated;
          Alcotest.test_case "pass budget overrun" `Quick
            test_pass_budget_overrun;
          Alcotest.test_case "cec pass" `Quick test_cec_pass;
        ] );
    ]
