(* Tests for the benchmark circuit generators: functional correctness of
   the arithmetic/ECC/ALU/crypto structures and determinism of the suite. *)

let rng = Rand64.create 41L

let to_bits n v = Array.init n (fun i -> v land (1 lsl i) <> 0)

let of_bits bits =
  Array.to_list bits |> List.rev
  |> List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0

let test_adder () =
  let n = 10 in
  let g = Arith.adder n in
  for _ = 1 to 200 do
    let a = Rand64.int rng (1 lsl n) and b = Rand64.int rng (1 lsl n) in
    let cin = Rand64.bool rng in
    let input = Array.concat [ to_bits n a; to_bits n b; [| cin |] ] in
    let out = Aig.eval g input in
    let v = of_bits out in
    Alcotest.(check int) "sum" (a + b + if cin then 1 else 0) v
  done

let test_multiplier () =
  let n = 7 in
  let g = Arith.multiplier n in
  for _ = 1 to 200 do
    let a = Rand64.int rng (1 lsl n) and b = Rand64.int rng (1 lsl n) in
    let input = Array.append (to_bits n a) (to_bits n b) in
    let out = Aig.eval g input in
    Alcotest.(check int) "product" (a * b) (of_bits out)
  done

let test_carry_select_adder () =
  let n = 12 in
  List.iter
    (fun block ->
      let g = Arith.carry_select_adder n ~block in
      for _ = 1 to 100 do
        let a = Rand64.int rng (1 lsl n) and b = Rand64.int rng (1 lsl n) in
        let cin = Rand64.bool rng in
        let input = Array.concat [ to_bits n a; to_bits n b; [| cin |] ] in
        let v = of_bits (Aig.eval g input) in
        Alcotest.(check int) "csa sum" (a + b + if cin then 1 else 0) v
      done;
      (* shallower than the ripple structure for mid-size blocks *)
      if block = 4 then
        Alcotest.(check bool) "csa shallower" true
          (Aig.depth g < Aig.depth (Arith.adder n)))
    [ 2; 4; 5 ]

let test_divider () =
  let n = 9 in
  let g = Arith.divider n in
  for _ = 1 to 200 do
    let a = Rand64.int rng (1 lsl n) in
    let d = 1 + Rand64.int rng ((1 lsl n) - 1) in
    let out = Aig.eval g (Array.append (to_bits n a) (to_bits n d)) in
    Alcotest.(check int) "quotient" (a / d) (of_bits (Array.sub out 0 n));
    Alcotest.(check int) "remainder" (a mod d) (of_bits (Array.sub out n n))
  done;
  (* the documented d = 0 convention: all-ones quotient *)
  let a = Rand64.int rng (1 lsl n) in
  let out = Aig.eval g (Array.append (to_bits n a) (to_bits n 0)) in
  Alcotest.(check int) "q on d=0" ((1 lsl n) - 1) (of_bits (Array.sub out 0 n))

let test_wide_growth_boundaries () =
  (* Widths chosen so construction crosses several node-array/strash
     doublings from the default capacity; the regrown graphs must stay
     structurally lint-clean and keep exact integer semantics. *)
  let lint_clean name g =
    match Aig_lint.check ~name g with
    | [] -> ()
    | ds -> Alcotest.failf "%s: %d lint findings" name (List.length ds)
  in
  let na = 58 in
  let add = Arith.adder na in
  lint_clean "adder-58" add;
  for _ = 1 to 40 do
    let a = Rand64.int rng (1 lsl na) and b = Rand64.int rng (1 lsl na) in
    let cin = Rand64.bool rng in
    let out = Aig.eval add (Array.concat [ to_bits na a; to_bits na b; [| cin |] ]) in
    Alcotest.(check int) "wide sum" (a + b + if cin then 1 else 0) (of_bits out)
  done;
  let nm = 29 in
  let mul = Arith.multiplier nm in
  lint_clean "mult-29" mul;
  for _ = 1 to 40 do
    let a = Rand64.int rng (1 lsl nm) and b = Rand64.int rng (1 lsl nm) in
    let out = Aig.eval mul (Array.append (to_bits nm a) (to_bits nm b)) in
    Alcotest.(check int) "wide product" (a * b) (of_bits out)
  done;
  let nd = 16 in
  let div = Arith.divider nd in
  lint_clean "div-16" div;
  for _ = 1 to 40 do
    let a = Rand64.int rng (1 lsl nd) in
    let d = 1 + Rand64.int rng ((1 lsl nd) - 1) in
    let out = Aig.eval div (Array.append (to_bits nd a) (to_bits nd d)) in
    Alcotest.(check int) "wide quotient" (a / d) (of_bits (Array.sub out 0 nd));
    Alcotest.(check int) "wide remainder" (a mod d)
      (of_bits (Array.sub out nd nd))
  done

let test_dynamic_entries () =
  (* parameterized names resolve and build the advertised interface *)
  List.iter
    (fun (name, ins, outs) ->
      match Bench_suite.find name with
      | exception Not_found -> Alcotest.failf "%s not found" name
      | e ->
          let g = e.Bench_suite.build () in
          Alcotest.(check int) (name ^ " inputs") ins (Aig.num_inputs g);
          Alcotest.(check int) (name ^ " outputs") outs (Aig.num_outputs g))
    [
      ("add-24", 49, 25);
      ("addsub-12", 25, 16);
      ("mult-20", 40, 40);
      ("div-10", 20, 20);
      (* 64-bit state, one 48-bit key per round, all round outputs *)
      ("crypto-4", 256, 192);
    ];
  List.iter
    (fun bad ->
      match Bench_suite.find bad with
      | exception Not_found -> ()
      | _ -> Alcotest.failf "%s should be rejected" bad)
    [ "mult-0"; "mult-9999"; "frob-8"; "mult-x" ]

let test_addsub () =
  let n = 8 in
  let g = Arith.addsub n in
  for _ = 1 to 100 do
    let a = Rand64.int rng 256 and b = Rand64.int rng 256 in
    let sub = Rand64.bool rng in
    let input = Array.concat [ to_bits n a; to_bits n b; [| sub |] ] in
    let out = Aig.eval g input in
    let s = of_bits (Array.sub out 0 n) in
    let expect = if sub then (a - b) land 255 else (a + b) land 255 in
    Alcotest.(check int) "result" expect s;
    (* flags live after the sum bits: cout zero eq lt *)
    Alcotest.(check bool) "eq flag" (a = b) out.(n + 2);
    Alcotest.(check bool) "lt flag" (a < b) out.(n + 3)
  done

let test_ecc_roundtrip () =
  (* encode, flip any single data bit, decode: must correct it *)
  let data = 16 and checks = 8 in
  let enc = Ecc.encoder ~data ~checks in
  let dec = Ecc.decoder ~data ~checks ~detect:false in
  for _ = 1 to 50 do
    let word = Rand64.int rng (1 lsl data) in
    let encoded = Aig.eval enc (to_bits data word) in
    (* encoded = data bits then check bits *)
    let flip = Rand64.int rng data in
    let received =
      Array.mapi (fun i b -> if i = flip then not b else b) encoded
    in
    let out = Aig.eval dec received in
    let corrected = of_bits (Array.sub out 0 data) in
    Alcotest.(check int) "corrected word" word corrected;
    Alcotest.(check bool) "error flagged" true out.(data)
  done;
  (* no error: clean pass, no error flag *)
  let word = Rand64.int rng (1 lsl data) in
  let encoded = Aig.eval enc (to_bits data word) in
  let out = Aig.eval dec encoded in
  Alcotest.(check int) "clean word" word (of_bits (Array.sub out 0 data));
  Alcotest.(check bool) "no error flag" false out.(data)

let test_ecc_check_bit_error () =
  (* flipping a check bit must not corrupt the data *)
  let data = 16 and checks = 8 in
  let enc = Ecc.encoder ~data ~checks in
  let dec = Ecc.decoder ~data ~checks ~detect:false in
  let word = 0xBEEF land ((1 lsl data) - 1) in
  let encoded = Aig.eval enc (to_bits data word) in
  let received =
    Array.mapi (fun i b -> if i = data + 2 then not b else b) encoded
  in
  let out = Aig.eval dec received in
  Alcotest.(check int) "data intact" word (of_bits (Array.sub out 0 data))

let test_alu_ops () =
  let w = 8 in
  let g = Alu.alu ~width:w ~masked:false ~result_only:false () in
  (* inputs: a(8) b(8) sel(3) cin *)
  let eval a b sel cin =
    let input =
      Array.concat [ to_bits w a; to_bits w b; to_bits 3 sel; [| cin |] ]
    in
    Aig.eval g input
  in
  for _ = 1 to 60 do
    let a = Rand64.int rng 256 and b = Rand64.int rng 256 in
    let check sel expect =
      let out = eval a b sel false in
      Alcotest.(check int)
        (Printf.sprintf "op %d on %d,%d" sel a b)
        (expect land 255)
        (of_bits (Array.sub out 0 w))
    in
    check 0 (a + b);
    check 1 (a - b);
    check 2 (a land b);
    check 3 (a lor b);
    check 4 (a lxor b);
    check 5 (lnot (a lor b));
    check 6 (a lsl 1);
    check 7 (lnot a)
  done

let test_feistel_invertibility_structure () =
  (* the Feistel network's round outputs must depend on the key inputs *)
  let g = Crypto.des_like () in
  Alcotest.(check bool) "plausible size" true (Aig.num_ands g > 3000);
  let rng' = Rand64.create 5L in
  let w1 = Array.init (Aig.num_inputs g) (fun _ -> Rand64.next rng') in
  let w2 = Array.copy w1 in
  (* flip one key bit (input index 64 = first key bit) *)
  w2.(64) <- Int64.lognot w2.(64);
  let o1 = Aig.simulate_outputs g w1 and o2 = Aig.simulate_outputs g w2 in
  Alcotest.(check bool) "key affects outputs" true (o1 <> o2)

let test_suite_determinism () =
  List.iter
    (fun (e : Bench_suite.entry) ->
      let a = e.Bench_suite.build () and b = e.Bench_suite.build () in
      Alcotest.(check int)
        (e.Bench_suite.name ^ " size stable")
        (Aig.num_ands a) (Aig.num_ands b);
      (* same simulation signature *)
      let rng' = Rand64.create 77L in
      let w = Array.init (Aig.num_inputs a) (fun _ -> Rand64.next rng') in
      if Aig.simulate_outputs a w <> Aig.simulate_outputs b w then
        Alcotest.failf "%s differs between builds" e.Bench_suite.name)
    Bench_suite.all;
  Alcotest.(check pass) "deterministic suite" () ()

let test_suite_profiles () =
  (* interface sanity for every suite entry *)
  List.iter
    (fun (e : Bench_suite.entry) ->
      let g = e.Bench_suite.build () in
      if Aig.num_inputs g < 16 || Aig.num_outputs g < 1 then
        Alcotest.failf "%s has a degenerate interface" e.Bench_suite.name;
      if Aig.num_ands g < 100 then
        Alcotest.failf "%s is too small" e.Bench_suite.name)
    Bench_suite.all;
  Alcotest.(check int) "15 benchmarks" 15 (List.length Bench_suite.all)

let test_bitvec_shifts () =
  let g = Aig.create () in
  let v = Bitvec.inputs g "v" 8 in
  let amt = Bitvec.inputs g "k" 3 in
  Bitvec.outputs g "l" (Bitvec.shift_left g v amt);
  Bitvec.outputs g "r" (Bitvec.shift_right g v amt);
  for _ = 1 to 100 do
    let x = Rand64.int rng 256 and k = Rand64.int rng 8 in
    let out = Aig.eval g (Array.append (to_bits 8 x) (to_bits 3 k)) in
    Alcotest.(check int) "shl" ((x lsl k) land 255)
      (of_bits (Array.sub out 0 8));
    Alcotest.(check int) "shr" (x lsr k) (of_bits (Array.sub out 8 8))
  done

let test_mux_tree () =
  let g = Aig.create () in
  let sel = Bitvec.inputs g "s" 2 in
  let ways = Array.init 4 (fun _ -> Bitvec.inputs g "w" 4) in
  Bitvec.outputs g "o" (Bitvec.mux_tree g sel ways);
  for _ = 1 to 50 do
    let vals = Array.init 4 (fun _ -> Rand64.int rng 16) in
    let s = Rand64.int rng 4 in
    let input =
      Array.concat
        (to_bits 2 s :: Array.to_list (Array.map (to_bits 4) vals))
    in
    let out = Aig.eval g input in
    Alcotest.(check int) "selected" vals.(s) (of_bits out)
  done

let () =
  Alcotest.run "circuits"
    [
      ( "arith",
        [
          Alcotest.test_case "adder" `Quick test_adder;
          Alcotest.test_case "multiplier" `Quick test_multiplier;
          Alcotest.test_case "divider" `Quick test_divider;
          Alcotest.test_case "addsub+flags" `Quick test_addsub;
          Alcotest.test_case "growth boundaries" `Quick
            test_wide_growth_boundaries;
          Alcotest.test_case "carry-select adder" `Quick test_carry_select_adder;
        ] );
      ( "ecc",
        [
          Alcotest.test_case "single-error correction" `Quick test_ecc_roundtrip;
          Alcotest.test_case "check-bit error" `Quick test_ecc_check_bit_error;
        ] );
      ( "alu",
        [ Alcotest.test_case "all operations" `Quick test_alu_ops ] );
      ( "crypto",
        [ Alcotest.test_case "feistel structure" `Quick
            test_feistel_invertibility_structure ] );
      ( "suite",
        [
          Alcotest.test_case "determinism" `Quick test_suite_determinism;
          Alcotest.test_case "profiles" `Quick test_suite_profiles;
          Alcotest.test_case "dynamic entries" `Quick test_dynamic_entries;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "shifts" `Quick test_bitvec_shifts;
          Alcotest.test_case "mux tree" `Quick test_mux_tree;
        ] );
    ]
