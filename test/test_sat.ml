(* Tests for the CDCL solver, the Tseitin encoder and the equivalence
   checker. *)

let rng = Rand64.create 23L

let test_trivial () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model" true (Solver.model_value s v)

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_unit_conflict () =
  let s = Solver.create () in
  let v = Solver.new_var s in
  Solver.add_clause s [ Solver.pos v ];
  Solver.add_clause s [ Solver.neg v ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_chain_implication () =
  (* x0 & (x_i -> x_{i+1}) & !x_n  is unsat *)
  let n = 50 in
  let s = Solver.create () in
  let vs = Array.init (n + 1) (fun _ -> Solver.new_var s) in
  Solver.add_clause s [ Solver.pos vs.(0) ];
  for i = 0 to n - 1 do
    Solver.add_clause s [ Solver.neg vs.(i); Solver.pos vs.(i + 1) ]
  done;
  Solver.add_clause s [ Solver.neg vs.(n) ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

(* Pigeonhole principle: n+1 pigeons, n holes — classically hard UNSAT. *)
let pigeonhole s pigeons holes =
  let v = Array.init pigeons (fun _ -> Array.init holes (fun _ -> Solver.new_var s)) in
  for p = 0 to pigeons - 1 do
    Solver.add_clause s (List.init holes (fun h -> Solver.pos v.(p).(h)))
  done;
  for h = 0 to holes - 1 do
    for p1 = 0 to pigeons - 1 do
      for p2 = p1 + 1 to pigeons - 1 do
        Solver.add_clause s [ Solver.neg v.(p1).(h); Solver.neg v.(p2).(h) ]
      done
    done
  done

let test_pigeonhole_unsat () =
  let s = Solver.create () in
  pigeonhole s 6 5;
  Alcotest.(check bool) "php(6,5) unsat" true (Solver.solve s = Solver.Unsat)

let test_pigeonhole_sat () =
  let s = Solver.create () in
  pigeonhole s 5 5;
  Alcotest.(check bool) "php(5,5) sat" true (Solver.solve s = Solver.Sat)

let test_budget () =
  let s = Solver.create () in
  pigeonhole s 9 8;
  Alcotest.(check bool) "tiny budget -> unknown" true
    (Solver.solve ~conflict_budget:5 s = Solver.Unknown)

(* Random 3-CNF checked against brute force. *)
let brute_force nvars clauses =
  let rec try_assign a =
    if a >= 1 lsl nvars then false
    else
      let ok =
        List.for_all
          (List.exists (fun l ->
               let v = l lsr 1 and s = l land 1 = 0 in
               (a land (1 lsl v) <> 0) = s))
          clauses
      in
      ok || try_assign (a + 1)
  in
  try_assign 0

let prop_random_3cnf =
  QCheck.Test.make ~name:"random 3-cnf vs brute force" ~count:100
    (QCheck.make QCheck.Gen.(int_range 3 8))
    (fun nvars ->
      let nclauses = 3 * nvars in
      let clauses =
        List.init nclauses (fun _ ->
            List.init 3 (fun _ ->
                let v = Rand64.int rng nvars in
                if Rand64.bool rng then 2 * v else (2 * v) + 1))
      in
      let s = Solver.create () in
      for _ = 1 to nvars do
        ignore (Solver.new_var s)
      done;
      List.iter (Solver.add_clause s) clauses;
      let expect = brute_force nvars clauses in
      match Solver.solve s with
      | Solver.Sat ->
          expect
          && List.for_all
               (List.exists (fun l ->
                    Solver.model_value s (l lsr 1) = (l land 1 = 0)))
               clauses
      | Solver.Unsat -> not expect
      | Solver.Unknown -> false)

let test_incremental () =
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a; Solver.pos b ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ Solver.neg a ];
  Alcotest.(check bool) "sat 2" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.model_value s b);
  Solver.add_clause s [ Solver.neg b ];
  Alcotest.(check bool) "unsat 3" true (Solver.solve s = Solver.Unsat)

(* ---- Tseitin + CEC ---- *)

let full_adder g a b c =
  let s = Aig.mk_xor g (Aig.mk_xor g a b) c in
  let cy = Aig.mk_maj3 g a b c in
  (s, cy)

let build_adder_variant variant n =
  let g = Aig.create () in
  let xs = Array.init n (fun _ -> Aig.add_input g) in
  let ys = Array.init n (fun _ -> Aig.add_input g) in
  let carry = ref Aig.lit_false in
  for i = 0 to n - 1 do
    let s, c =
      match variant with
      | `Xor -> full_adder g xs.(i) ys.(i) !carry
      | `Mux ->
          (* same function built from muxes *)
          let axb = Aig.mk_mux g xs.(i) (Aig.lnot ys.(i)) ys.(i) in
          let s = Aig.mk_mux g axb (Aig.lnot !carry) !carry in
          let c = Aig.mk_mux g axb !carry xs.(i) in
          (s, c)
    in
    Aig.add_output g (Printf.sprintf "s%d" i) s;
    carry := c
  done;
  Aig.add_output g "cout" !carry;
  g

let test_cnf_encode () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let y = Aig.mk_and g a (Aig.lnot b) in
  Aig.add_output g "y" y;
  let s = Solver.create () in
  let vars = Cnf.encode s g in
  (* force y true: must imply a=1, b=0 *)
  Solver.add_clause s [ Cnf.lit_of vars y ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "a true" true (Solver.model_value s vars.(Aig.node_of a));
  Alcotest.(check bool) "b false" false (Solver.model_value s vars.(Aig.node_of b))

let test_cec_equivalent () =
  let a = build_adder_variant `Xor 8 in
  let b = build_adder_variant `Mux 8 in
  Alcotest.(check bool) "adders equivalent" true (Cec.equivalent a b)

let test_cec_inequivalent () =
  let a = build_adder_variant `Xor 6 in
  let b = build_adder_variant `Xor 6 in
  (* corrupt one output of b *)
  let name, l = Aig.output b 3 in
  ignore name;
  Aig.set_output b 3 (Aig.lnot l);
  (match Cec.check a b with
  | Cec.Inequivalent cex ->
      let oa = Aig.eval a cex and ob = Aig.eval b cex in
      Alcotest.(check bool) "cex distinguishes" true (oa <> ob)
  | _ -> Alcotest.fail "expected inequivalence")

(* ---- Differential tests: CDCL engine vs the seed solver ---- *)

(* Random clause list: [nvars] variables, mixed clause widths so unit
   propagation, binary implication and full search all get exercised. *)
let random_clauses nvars nclauses =
  List.init nclauses (fun _ ->
      let width = 1 + Rand64.int rng 3 in
      List.init width (fun _ ->
          let v = Rand64.int rng nvars in
          if Rand64.bool rng then Solver.pos v else Solver.neg v))

let run_engine (module E : Solver.CORE) nvars clauses assumptions =
  let s = E.create () in
  for _ = 1 to nvars do
    ignore (E.new_var s)
  done;
  List.iter (E.add_clause s) clauses;
  let r = E.solve ~assumptions s in
  let model =
    match r with
    | Solver.Sat -> Some (Array.init nvars (E.model_value s))
    | _ -> None
  in
  let core = match r with Solver.Unsat -> E.unsat_core s | _ -> [] in
  (r, model, core)

let model_satisfies model clauses =
  List.for_all
    (List.exists (fun l ->
         model.(Solver.lit_var l) = Solver.lit_sign l))
    clauses

let prop_differential =
  QCheck.Test.make ~name:"cdcl vs reference on random cnf" ~count:200
    (QCheck.make QCheck.Gen.(int_range 4 20))
    (fun nvars ->
      let clauses = random_clauses nvars (4 * nvars) in
      let r1, m1, _ = run_engine (module Solver) nvars clauses [] in
      let r2, m2, _ = run_engine (module Solver.Reference) nvars clauses [] in
      r1 = r2
      && (match m1 with None -> true | Some m -> model_satisfies m clauses)
      && match m2 with None -> true | Some m -> model_satisfies m clauses)

let prop_assumptions =
  (* Incremental solving under assumptions must agree with the reference
     engine, whose [solve ~assumptions] rebuilds a monolithic problem with
     the assumptions as unit clauses — the definition of correctness for
     the assumption interface.  On Unsat, the core must be a subset of the
     assumptions whose units alone already make the problem unsat. *)
  QCheck.Test.make ~name:"assumptions: incremental = monolithic" ~count:200
    (QCheck.make QCheck.Gen.(int_range 4 16))
    (fun nvars ->
      let clauses = random_clauses nvars (3 * nvars) in
      let assumptions =
        List.init
          (1 + Rand64.int rng (nvars / 2))
          (fun _ ->
            let v = Rand64.int rng nvars in
            if Rand64.bool rng then Solver.pos v else Solver.neg v)
      in
      let r1, m1, core = run_engine (module Solver) nvars clauses assumptions in
      let r2, _, _ =
        run_engine (module Solver.Reference) nvars clauses assumptions
      in
      r1 = r2
      && (match m1 with
         | None -> true
         | Some m ->
             model_satisfies m clauses
             && List.for_all
                  (fun l -> m.(Solver.lit_var l) = Solver.lit_sign l)
                  assumptions)
      && (r1 <> Solver.Unsat
         ||
         (* core soundness: core ⊆ assumptions, and clauses + core units
            is unsat on its own (checked with the other engine) *)
         List.for_all (fun l -> List.mem l assumptions) core
         &&
         let r3, _, _ =
           run_engine
             (module Solver.Reference)
             nvars
             (clauses @ List.map (fun l -> [ l ]) core)
             []
         in
         r3 = Solver.Unsat))

let test_assumptions_reusable () =
  (* One solver, many assumption queries: later queries must not be
     polluted by earlier failed ones. *)
  let s = Solver.create () in
  let a = Solver.new_var s and b = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a; Solver.pos b ];
  Alcotest.(check bool) "a=0 b=0 unsat" true
    (Solver.solve ~assumptions:[ Solver.neg a; Solver.neg b ] s = Solver.Unsat);
  Alcotest.(check bool) "a=0 sat" true
    (Solver.solve ~assumptions:[ Solver.neg a ] s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.model_value s b);
  Alcotest.(check bool) "no assumptions sat" true (Solver.solve s = Solver.Sat)

let test_assumption_contradicts_unit () =
  (* An assumption against a unit clause must fail with that assumption in
     the core, not corrupt the solver for later solves. *)
  let s = Solver.create () in
  let a = Solver.new_var s in
  Solver.add_clause s [ Solver.pos a ];
  Alcotest.(check bool) "assume !a unsat" true
    (Solver.solve ~assumptions:[ Solver.neg a ] s = Solver.Unsat);
  Alcotest.(check bool) "core = [!a]" true
    (Solver.unsat_core s = [ Solver.neg a ]);
  Alcotest.(check bool) "still sat" true (Solver.solve s = Solver.Sat)

(* ---- DIMACS ---- *)

let test_dimacs_roundtrip () =
  for _ = 1 to 20 do
    let nvars = 2 + Rand64.int rng 10 in
    let fm =
      { Cnf.fm_vars = nvars; Cnf.fm_clauses = random_clauses nvars (2 * nvars) }
    in
    match Cnf.of_dimacs (Cnf.to_dimacs fm) with
    | Ok fm' ->
        Alcotest.(check bool) "roundtrip" true (fm = fm')
    | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)
  done

let test_dimacs_errors () =
  let bad text =
    match Cnf.of_dimacs text with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "missing header" true (bad "1 -2 0\n");
  Alcotest.(check bool) "out of range" true (bad "p cnf 2 1\n1 -3 0\n");
  Alcotest.(check bool) "unterminated" true (bad "p cnf 2 1\n1 -2\n");
  Alcotest.(check bool) "count mismatch" true (bad "p cnf 2 2\n1 -2 0\n");
  Alcotest.(check bool) "bad literal" true (bad "p cnf 2 1\n1 x 0\n")

let test_dimacs_comments_and_trailer () =
  let text = "c a comment\np cnf 3 2\n1 -2 0\nc mid comment\n2 3 0\n%\n0\n" in
  match Cnf.of_dimacs text with
  | Ok fm ->
      Alcotest.(check int) "vars" 3 fm.Cnf.fm_vars;
      Alcotest.(check int) "clauses" 2 (List.length fm.Cnf.fm_clauses)
  | Error e -> Alcotest.fail e

let test_cec_engines_agree () =
  let a = build_adder_variant `Xor 8 in
  let b = build_adder_variant `Mux 8 in
  let va = Cec.check ~engine:Cec.Cdcl a b in
  let vb = Cec.check ~engine:Cec.Reference a b in
  Alcotest.(check bool) "both equivalent" true
    (va = Cec.Equivalent && vb = Cec.Equivalent)

let test_cec_budget_exception () =
  let a = build_adder_variant `Xor 10 in
  let b = build_adder_variant `Mux 10 in
  (* sim_rounds can't help on equivalent graphs, and one conflict is never
     enough for a 10-bit adder miter, so the budget must trip *)
  (match Cec.check ~conflict_budget:1 a b with
  | Cec.Undecided -> ()
  | _ -> Alcotest.fail "expected Undecided");
  match Cec.equivalent ~conflict_budget:1 a b with
  | exception Cec.Undecided_budget -> ()
  | _ -> Alcotest.fail "expected Undecided_budget"

let test_cec_sim_filter () =
  (* constant-0 vs constant-1 single output: found by simulation *)
  let a = Aig.create () in
  let _ = Aig.add_input a in
  Aig.add_output a "o" Aig.lit_false;
  let b = Aig.create () in
  let _ = Aig.add_input b in
  Aig.add_output b "o" Aig.lit_true;
  match Cec.check a b with
  | Cec.Inequivalent _ -> ()
  | _ -> Alcotest.fail "expected inequivalence"

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "unit conflict" `Quick test_unit_conflict;
          Alcotest.test_case "implication chain" `Quick test_chain_implication;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "incremental" `Quick test_incremental;
          qt prop_random_3cnf;
        ] );
      ( "differential",
        [
          qt prop_differential;
          qt prop_assumptions;
          Alcotest.test_case "assumptions reusable" `Quick
            test_assumptions_reusable;
          Alcotest.test_case "assumption vs unit" `Quick
            test_assumption_contradicts_unit;
        ] );
      ( "dimacs",
        [
          Alcotest.test_case "roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "errors" `Quick test_dimacs_errors;
          Alcotest.test_case "comments and trailer" `Quick
            test_dimacs_comments_and_trailer;
        ] );
      ( "cec",
        [
          Alcotest.test_case "encode" `Quick test_cnf_encode;
          Alcotest.test_case "equivalent adders" `Quick test_cec_equivalent;
          Alcotest.test_case "inequivalent" `Quick test_cec_inequivalent;
          Alcotest.test_case "engines agree" `Quick test_cec_engines_agree;
          Alcotest.test_case "budget exception" `Quick
            test_cec_budget_exception;
          Alcotest.test_case "sim filter" `Quick test_cec_sim_filter;
        ] );
    ]
