(* Tests for the packed cut engine: equivalence with the reference engine,
   incremental truth tables vs. cone walks, dominance invariants, and the
   word-level support shrink / cached canonicalization it builds on. *)

let small_suite = [ "add-16"; "t481"; "C1355"; "C1908" ]

let build name = (Bench_suite.find name).Bench_suite.build ()

(* Optimized graphs exercise wider nodes than the raw builders. *)
let build_synth name = Synth.light (build name)

let configs = [ (4, 8); (6, 8); (6, 12) ]

(* (a) / tentpole: the packed engine produces the same cut sets, in the
   same order, as the reference engine. *)
let test_sets_equal () =
  List.iter
    (fun name ->
      let aig = build_synth name in
      List.iter
        (fun (k, limit) ->
          let ref_cuts = Cut.compute aig ~k ~limit in
          let s = Cut.compute_packed aig ~k ~limit in
          for nd = 0 to Aig.num_nodes aig - 1 do
            if Aig.is_and aig nd || Aig.is_input aig nd || nd = 0 then begin
              let rl = ref_cuts.(nd) in
              Alcotest.(check int)
                (Printf.sprintf "%s k%d nd%d: count" name k nd)
                (List.length rl) (Cut.num_cuts s nd);
              List.iteri
                (fun j c ->
                  Alcotest.(check (array int))
                    (Printf.sprintf "%s k%d nd%d cut%d: leaves" name k nd j)
                    c.Cut.leaves (Cut.cut_leaves s nd j))
                rl
            end
          done)
        configs)
    small_suite

(* (a) every incrementally-computed cut tt equals [Aig.tt_of_cut] on the
   same leaves. *)
let test_tts_equal () =
  List.iter
    (fun name ->
      let aig = build_synth name in
      List.iter
        (fun (k, limit) ->
          let s = Cut.compute_packed aig ~k ~limit in
          Aig.iter_ands aig (fun nd ->
              for j = 0 to Cut.num_cuts s nd - 1 do
                let leaves = Cut.cut_leaves s nd j in
                let want =
                  Aig.tt_of_cut aig (Aig.lit_of_node nd) leaves
                in
                let got =
                  Tt.of_bits (Array.length leaves) (Cut.cut_tt s nd j)
                in
                if not (Tt.equal want got) then
                  Alcotest.failf "%s k%d nd%d cut%d: tt mismatch" name k nd j
              done))
        configs)
    small_suite

(* (b) no cut in a node's final set dominates another (the trivial cut,
   always last, is exempt by construction: the enumeration never filters
   against it). *)
let test_no_dominance () =
  List.iter
    (fun name ->
      let aig = build_synth name in
      let k = 6 and limit = 12 in
      let s = Cut.compute_packed aig ~k ~limit in
      let subset a b =
        Array.for_all (fun x -> Array.exists (fun y -> y = x) b) a
      in
      Aig.iter_ands aig (fun nd ->
          let nc = Cut.num_cuts s nd in
          (* last cut is the trivial one *)
          Alcotest.(check (array int))
            (Printf.sprintf "%s nd%d: trivial last" name nd)
            [| nd |]
            (Cut.cut_leaves s nd (nc - 1));
          for i = 0 to nc - 2 do
            for j = 0 to nc - 2 do
              if i <> j then begin
                let a = Cut.cut_leaves s nd i and b = Cut.cut_leaves s nd j in
                if subset a b then
                  Alcotest.failf "%s nd%d: cut %d dominates cut %d" name nd i
                    j
              end
            done
          done))
    small_suite

(* Counters move, and in the directions the semantics dictate. *)
let test_stats () =
  let aig = build_synth "C1355" in
  let st = Cut.stats_create () in
  let _ = Cut.compute_packed ~stats:st aig ~k:6 ~limit:12 in
  Alcotest.(check bool) "built > 0" true (st.Cut.built > 0);
  Alcotest.(check int) "tt per built cut" st.Cut.built st.Cut.tt_merges;
  Alcotest.(check bool) "dominance filter active" true (st.Cut.dominated > 0);
  Alcotest.(check bool)
    "signature pre-filter active" true
    (st.Cut.sign_rejects > 0);
  let acc = Cut.stats_create () in
  Cut.stats_add acc st;
  Cut.stats_add acc st;
  Alcotest.(check int) "stats_add" (2 * st.Cut.built) acc.Cut.built

(* The signature is a sound subset filter. *)
let test_signature_sound () =
  let rng = Rand64.create 99L in
  for _ = 1 to 1000 do
    let n = 1 + Rand64.int rng 6 in
    let b =
      Array.init n (fun _ -> Rand64.int rng 500) |> Array.to_list
      |> List.sort_uniq compare |> Array.of_list
    in
    let na = 1 + Rand64.int rng (Array.length b) in
    let a = Array.sub b 0 na in
    let sa = Cut.signature a and sb = Cut.signature b in
    Alcotest.(check int) "subset => signature bits subset" sa (sa land sb)
  done

(* Npn.shrink mirrors Tt.shrink_to_support on single words. *)
let test_npn_shrink () =
  let rng = Rand64.create 7L in
  for _ = 1 to 2000 do
    let m = 1 + Rand64.int rng 6 in
    let t = Tt.of_bits m (Rand64.next rng) in
    let small, sup = Tt.shrink_to_support t in
    let w, sup' = Npn.shrink (Tt.words t).(0) m in
    Alcotest.(check (array int)) "support" sup sup';
    Alcotest.(check int64) "shrunk word" (Tt.words small).(0) w
  done

(* Packed-engine synthesis is result-identical to the reference engine,
   across both refactor branches (priority cuts at k <= 6, greedy-only at
   k = 10) and the composed script. *)
let test_refactor_equal () =
  List.iter
    (fun name ->
      let aig = build name in
      let check label f =
        let p = Blif.to_string (f ~engine:Cut.Packed aig) in
        let r = Blif.to_string (f ~engine:Cut.Reference aig) in
        if p <> r then Alcotest.failf "%s: %s output differs" name label
      in
      check "rewrite" (fun ~engine a -> Synth.rewrite ~engine a);
      check "refactor(k=10)" (fun ~engine a -> Synth.refactor ~engine a);
      check "refactor(k=6)" (fun ~engine a ->
          Synth.refactor ~cut_size:6 ~engine a);
      check "resyn2rs" (fun ~engine a -> Synth.resyn2rs ~engine a))
    small_suite

(* (c) the packed-engine mapper output is identical to the reference
   (seed) engine's on the full benchmark suite x all five families. *)
let test_mapper_identity () =
  let libs =
    [
      Cell_lib.cached Cell_netlist.Tg_static;
      Cell_lib.cached Cell_netlist.Tg_pseudo;
      Cell_lib.cached Cell_netlist.Pass_pseudo;
      Cell_lib.cached Cell_netlist.Pass_static;
      Cell_lib.cmos ();
    ]
  in
  List.iter
    (fun (e : Bench_suite.entry) ->
      let aig = Synth.light (e.Bench_suite.build ()) in
      List.iter
        (fun lib ->
          let pp =
            { Mapper.default_params with Mapper.engine = Cut.Packed }
          in
          let pr =
            { Mapper.default_params with Mapper.engine = Cut.Reference }
          in
          let mp = Mapper.map ~params:pp lib aig in
          let mr = Mapper.map ~params:pr lib aig in
          if mp <> mr then
            Alcotest.failf "%s / %s: mapped netlists differ"
              e.Bench_suite.name (Cell_lib.name lib))
        libs)
    Bench_suite.all

(* canonical_cached agrees with canonical (fresh and cached lookups). *)
let test_canonical_cached () =
  let rng = Rand64.create 3L in
  for _ = 1 to 500 do
    let k = 1 + Rand64.int rng 4 in
    let t = Tt.of_bits k (Rand64.next rng) in
    let w = (Tt.words t).(0) in
    let want = Npn.canonical k w in
    Alcotest.(check int64) "fresh" want (Npn.canonical_cached k w);
    Alcotest.(check int64) "cached" want (Npn.canonical_cached k w)
  done

let () =
  Alcotest.run "cut"
    [
      ( "packed-engine",
        [
          Alcotest.test_case "cut sets equal reference" `Quick test_sets_equal;
          Alcotest.test_case "incremental tts equal cone walks" `Quick
            test_tts_equal;
          Alcotest.test_case "no intra-set dominance" `Quick test_no_dominance;
          Alcotest.test_case "counters" `Quick test_stats;
          Alcotest.test_case "refactor identical across engines" `Quick
            test_refactor_equal;
          Alcotest.test_case "mapper identical across engines (full suite)"
            `Slow test_mapper_identity;
        ] );
      ( "foundations",
        [
          Alcotest.test_case "signature soundness" `Quick test_signature_sound;
          Alcotest.test_case "Npn.shrink = Tt.shrink_to_support" `Quick
            test_npn_shrink;
          Alcotest.test_case "canonical_cached = canonical" `Quick
            test_canonical_cached;
        ] );
    ]
