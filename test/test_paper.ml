(* End-to-end reproduction tests: the experiment drivers must regenerate
   the paper's qualitative results (Table 3 shapes, Figure 6 ordering), the
   fabric must place mapped netlists, and the umbrella Core flow must
   verify.  Kept to the fast benchmarks so `dune runtest` stays quick. *)

let fast = [ "t481"; "C1355"; "add-16"; "add-32" ]

let opts = { Experiments.default_options with Experiments.verify = true }

let rows = lazy (Experiments.run_table3 ~options:opts ~benches:fast ())

let stats_of sel (r : Experiments.t3_row) = (sel r).Experiments.stats

let test_rows_verify () =
  (* run_table3 with verify=true already re-simulated every mapping *)
  let rows = Lazy.force rows in
  Alcotest.(check int) "four rows" 4 (List.length rows)

let test_cntfet_beats_cmos_gates_area () =
  List.iter
    (fun (r : Experiments.t3_row) ->
      let s = stats_of (fun r -> r.Experiments.static_r) r in
      let p = stats_of (fun r -> r.Experiments.pseudo_r) r in
      let c = stats_of (fun r -> r.Experiments.cmos_r) r in
      if s.Mapped.gates >= c.Mapped.gates then
        Alcotest.failf "%s: static gates not fewer" r.Experiments.bench;
      if s.Mapped.area >= c.Mapped.area then
        Alcotest.failf "%s: static area not smaller" r.Experiments.bench;
      (* the pseudo family trades delay for even less area (Table 2/3) *)
      if p.Mapped.area >= s.Mapped.area then
        Alcotest.failf "%s: pseudo not smaller than static" r.Experiments.bench;
      if p.Mapped.norm_delay < s.Mapped.norm_delay -. 1e-9 then
        Alcotest.failf "%s: pseudo unexpectedly faster" r.Experiments.bench)
    (Lazy.force rows);
  Alcotest.(check pass) "per-benchmark shapes" () ()

let test_absolute_speedups () =
  (* the paper's headline: CNTFET static is ~6.9x faster absolute; with our
     substituted benchmarks we require at least 3x on every fast bench and
     at least 4.5x on average *)
  let rows = Lazy.force rows in
  let speedups =
    List.map
      (fun (r : Experiments.t3_row) ->
        stats_of (fun r -> r.Experiments.cmos_r) r |> fun c ->
        stats_of (fun r -> r.Experiments.static_r) r |> fun s ->
        c.Mapped.abs_delay_ps /. s.Mapped.abs_delay_ps)
      rows
  in
  List.iter2
    (fun (r : Experiments.t3_row) sp ->
      if sp < 3.0 then
        Alcotest.failf "%s speedup only %.2f" r.Experiments.bench sp)
    rows speedups;
  let avg = List.fold_left ( +. ) 0.0 speedups /. 4.0 in
  Alcotest.(check bool) "average speedup > 4.5x" true (avg > 4.5)

let test_summary_signs () =
  let s = Experiments.summarize (Lazy.force rows) in
  List.iter
    (fun key ->
      let v = List.assoc key s in
      if v <= 0.0 then Alcotest.failf "%s not positive (%.3f)" key v)
    [ "gate_reduction_static"; "area_reduction_static";
      "area_reduction_pseudo"; "level_reduction_static" ];
  Alcotest.(check bool) "pseudo area beats static area" true
    (List.assoc "area_reduction_pseudo" s
     > List.assoc "area_reduction_static" s)

let test_fig6_consistency () =
  (* Figure 6 is derived from Table 3: ratios must match within rounding *)
  let rows = Lazy.force rows in
  List.iter
    (fun (r : Experiments.t3_row) ->
      let c = stats_of (fun r -> r.Experiments.cmos_r) r in
      let s = stats_of (fun r -> r.Experiments.static_r) r in
      let ratio = c.Mapped.abs_delay_ps /. s.Mapped.abs_delay_ps in
      (* tau factor alone is 3.0/0.59 = 5.08; the mapped ratio must exceed
         the pure delay-model ratio whenever norm delays are close *)
      if ratio < 1.0 then Alcotest.failf "%s slower than CMOS" r.Experiments.bench)
    rows;
  Alcotest.(check pass) "fig6 ratios sane" () ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_table2_renderer () =
  let s = Experiments.render_table2 () in
  Alcotest.(check bool) "mentions F45" true
    (String.length s > 1000 && contains s "F45")

let test_table1_renderer () =
  let s = Experiments.render_table1 () in
  Alcotest.(check bool) "46 gates listed" true (String.length s > 500);
  (* every catalog gate appears *)
  List.iter
    (fun (e : Catalog.entry) ->
      if not (contains s e.Catalog.name) then
        Alcotest.failf "%s missing" e.Catalog.name)
    Catalog.all

let test_published_library_mapping () =
  (* the Published characterization source must be usable end to end *)
  let opts =
    { Experiments.default_options with
      Experiments.char_source = Experiments.Published;
      Experiments.verify = true }
  in
  let rows = Experiments.run_table3 ~options:opts ~benches:[ "add-16" ] () in
  match rows with
  | [ r ] ->
      let s = stats_of (fun r -> r.Experiments.static_r) r in
      Alcotest.(check bool) "mapped with published numbers" true
        (s.Mapped.gates > 0)
  | _ -> Alcotest.fail "expected one row"

(* ---- expressive power / coverage ---- *)

let test_coverage_k2 () =
  (* all 10 two-support functions are one CNTFET cell; CMOS gets only
     NAND2/NOR2 without inverters *)
  let r = Coverage.analyze (Core.library `Tg_static) 2 in
  Alcotest.(check int) "total" 10 r.Coverage.total;
  Alcotest.(check int) "cntfet free" 10 r.Coverage.covered_free;
  Alcotest.(check int) "npn classes" 2 r.Coverage.npn_classes_total;
  Alcotest.(check int) "cntfet classes" 2 r.Coverage.npn_classes_covered;
  let c = Coverage.analyze (Core.library `Cmos) 2 in
  Alcotest.(check int) "cmos free" 2 c.Coverage.covered_free;
  Alcotest.(check bool) "cmos any covers more" true
    (c.Coverage.covered_any > c.Coverage.covered_free)

let test_coverage_k3_ordering () =
  let s = Coverage.analyze (Core.library `Tg_static) 3 in
  let c = Coverage.analyze (Core.library `Cmos) 3 in
  Alcotest.(check bool) "cntfet covers strictly more (free)" true
    (s.Coverage.covered_free > 4 * c.Coverage.covered_free);
  Alcotest.(check bool) "cntfet covers more classes" true
    (s.Coverage.npn_classes_covered > c.Coverage.npn_classes_covered)

(* ---- dynamic GNOR (Sec. 3 motivation) ---- *)

let test_dynamic_gnor_value () =
  (* Y (at the dynamic node) = not ((a xor b) or (c xor d)) *)
  for a = 0 to 1 do
    for b = 0 to 1 do
      for c = 0 to 1 do
        for d = 0 to 1 do
          let t x y =
            { Switchsim.Dynamic.input = x = 1; control = y = 1 }
          in
          let v = Switchsim.Dynamic.value [ t a b; t c d ] in
          Alcotest.(check bool) "gnor value"
            (not ((a <> b) || (c <> d)))
            v
        done
      done
    done
  done

let test_dynamic_gnor_degradation () =
  (* the paper's complaint: with every control high the pull-down is all
     p-type and the low output is degraded... *)
  Alcotest.(check bool) "degraded assignment exists" true
    (Switchsim.Dynamic.has_degraded_assignment 2);
  (* ...whereas the static transmission-gate cell for the same function
     (F08) is full swing everywhere *)
  let f08 = Cell_netlist.elaborate Cell_netlist.Tg_static
      (Catalog.find "F08").Catalog.spec in
  Alcotest.(check bool) "static F08 full swing" true (Switchsim.full_swing f08)

(* ---- fabric ---- *)

let test_fabric_placement () =
  let r = Core.run ~family:`Tg_static (Arith.adder 8) in
  let fab = Fabric.create ~rows:12 ~cols:12 in
  let p =
    match Fabric.place fab r.Core.mapped with
    | Ok p -> p
    | Error e -> Alcotest.failf "placement failed: %s" (Fabric.error_message e)
  in
  Alcotest.(check int) "all instances placed"
    (Mapped.stats r.Core.mapped).Mapped.gates p.Fabric.tiles_used;
  Alcotest.(check bool) "utilization sane" true
    (p.Fabric.utilization > 0.0 && p.Fabric.utilization <= 1.0);
  Alcotest.(check int) "config bits" (p.Fabric.tiles_used * 12)
    p.Fabric.config_bits;
  (* every placement respects block compatibility *)
  List.iter
    (fun (row, col, (c : Fabric.config)) ->
      if not (Fabric.compatible (Fabric.block_type fab row col) c.Fabric.cell)
      then Alcotest.fail "incompatible placement")
    p.Fabric.placed

let test_fabric_too_small () =
  let r = Core.run ~family:`Tg_static (Arith.adder 8) in
  let fab = Fabric.create ~rows:2 ~cols:2 in
  match Fabric.place fab r.Core.mapped with
  | Error (Fabric.Fabric_too_small { tiles; placed; instances } as e) ->
      Alcotest.(check int) "tiles" 4 tiles;
      Alcotest.(check bool) "partial placement" true (placed <= 4);
      Alcotest.(check int) "instances" (Mapped.stats r.Core.mapped).Mapped.gates
        instances;
      (* the exception-raising convenience wrapper reports the same error *)
      Alcotest.check_raises "place_exn" (Failure (Fabric.error_message e))
        (fun () -> ignore (Fabric.place_exn fab r.Core.mapped))
  | Error e -> Alcotest.failf "wrong error: %s" (Fabric.error_message e)
  | Ok _ -> Alcotest.fail "overflow accepted"

let test_fabric_rejects_cmos () =
  let r = Core.run ~family:`Cmos (Arith.adder 4) in
  let fab = Fabric.create ~rows:20 ~cols:20 in
  match Fabric.place fab r.Core.mapped with
  | Error (Fabric.Not_catalog_cell { instance; cell }) ->
      Alcotest.(check bool) "instance index in range" true
        (instance >= 0
        && instance < Array.length r.Core.mapped.Mapped.instances);
      Alcotest.(check bool) "names a CMOS cell" true (String.length cell > 0)
  | Error e -> Alcotest.failf "wrong error: %s" (Fabric.error_message e)
  | Ok _ -> Alcotest.fail "CMOS netlist accepted by the fabric"

(* ---- core flow ---- *)

let test_core_flow () =
  let r = Core.run ~family:`Tg_static (Arith.adder 12) in
  Alcotest.(check bool) "optimized smaller or equal" true
    (Aig.num_ands r.Core.optimized <= Aig.num_ands r.Core.original);
  let s = Mapped.stats r.Core.mapped in
  Alcotest.(check bool) "mapped" true (s.Mapped.gates > 0)

let test_core_compare () =
  let results = Core.compare_families (Arith.adder 8) in
  Alcotest.(check int) "three libraries" 3 (List.length results)

let () =
  Alcotest.run "paper"
    [
      ( "table3",
        [
          Alcotest.test_case "verified rows" `Quick test_rows_verify;
          Alcotest.test_case "shapes" `Quick test_cntfet_beats_cmos_gates_area;
          Alcotest.test_case "speedups" `Quick test_absolute_speedups;
          Alcotest.test_case "summary" `Quick test_summary_signs;
          Alcotest.test_case "fig6" `Quick test_fig6_consistency;
          Alcotest.test_case "published source" `Quick
            test_published_library_mapping;
        ] );
      ( "expressiveness",
        [
          Alcotest.test_case "coverage k=2" `Quick test_coverage_k2;
          Alcotest.test_case "coverage k=3" `Quick test_coverage_k3_ordering;
          Alcotest.test_case "dynamic gnor value" `Quick test_dynamic_gnor_value;
          Alcotest.test_case "dynamic gnor degradation" `Quick
            test_dynamic_gnor_degradation;
        ] );
      ( "renderers",
        [
          Alcotest.test_case "table1" `Quick test_table1_renderer;
          Alcotest.test_case "table2" `Quick test_table2_renderer;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "placement" `Quick test_fabric_placement;
          Alcotest.test_case "too small" `Quick test_fabric_too_small;
          Alcotest.test_case "rejects cmos" `Quick test_fabric_rejects_cmos;
        ] );
      ( "core",
        [
          Alcotest.test_case "flow" `Quick test_core_flow;
          Alcotest.test_case "compare" `Quick test_core_compare;
        ] );
    ]
