(* Chaos and protocol tests for the flowd supervisor (lib/serve).

   The daemon under test is a real forked process serving a real Unix
   socket; workers are its own forked children.  The tests SIGKILL
   workers mid-job, inject chaos kills, overrun budgets, send malformed
   and oversized requests, and SIGTERM the daemon — and assert that
   every reply is typed, every served result is byte-deterministic
   against an in-process baseline, and the daemon itself never dies. *)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* ---- daemon + client harness ---- *)

let fresh_sock () =
  let path = Filename.temp_file "flowd" ".sock" in
  Sys.remove path;
  path

let start_daemon ?(workers = 2) ?(queue = 64) ?(max_attempts = 4)
    ?(chaos = 0.0) ?job_budget ?(max_request = 32 * 1024 * 1024)
    ?(warm = [ Cell_netlist.Tg_static ]) () =
  let sock = fresh_sock () in
  let cfg =
    {
      Server.default_config with
      Server.listen = Server.Unix_path sock;
      workers;
      queue_high_water = queue;
      max_attempts;
      retry_base_s = 0.01;
      retry_cap_s = 0.2;
      job_budget_s = job_budget;
      max_request_bytes = max_request;
      warm_families = warm;
      chaos_kill = chaos;
      seed = 7L;
    }
  in
  match Unix.fork () with
  | 0 ->
      (let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 devnull Unix.stderr;
       try Server.run cfg with _ -> ());
      Unix._exit 0
  | pid ->
      let rec wait n =
        if n = 0 then Alcotest.fail "daemon did not come up";
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        match Unix.connect fd (Unix.ADDR_UNIX sock) with
        | () -> Unix.close fd
        | exception Unix.Unix_error _ ->
            Unix.close fd;
            Unix.sleepf 0.05;
            wait (n - 1)
      in
      wait 200;
      (pid, sock)

let daemon_exit_code pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED c -> c
  | _, Unix.WSIGNALED s -> Alcotest.fail (Printf.sprintf "daemon killed by %d" s)
  | _, Unix.WSTOPPED _ -> Alcotest.fail "daemon stopped"

(* A failing assertion must not strand the daemon: it would inherit the
   test runner's stdout pipe and keep the whole suite's output open
   forever.  Every test body runs under this reaper. *)
let with_daemon (pid, sock) f =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Sys.remove sock with Sys_error _ -> ())
    (fun () -> f (pid, sock))

type conn = { fd : Unix.file_descr; buf : Buffer.t }

let connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  { fd; buf = Buffer.create 256 }

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()
let send_line c line = write_all c.fd (line ^ "\n")

let recv_line ?(timeout = 120.0) c =
  let deadline = Unix.gettimeofday () +. timeout in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | Some i ->
        Buffer.clear c.buf;
        Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
        String.sub s 0 i
    | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then Alcotest.fail "timed out waiting for a reply";
        (match Unix.select [ c.fd ] [] [] left with
        | [], _, _ -> Alcotest.fail "timed out waiting for a reply"
        | _ -> (
            match Unix.read c.fd chunk 0 (Bytes.length chunk) with
            | 0 -> Alcotest.fail "daemon closed the connection"
            | n -> Buffer.add_subbytes c.buf chunk 0 n));
        go ()
  in
  go ()

let rpc c line =
  send_line c line;
  recv_line c

let parse_reply line =
  match Json_codec.parse line with
  | Ok j -> j
  | Error m -> Alcotest.fail (Printf.sprintf "unparseable reply %S: %s" line m)

let reply_field j k = Json_codec.mem_str j k
let reply_id j = Option.value (reply_field j "id") ~default:""
let is_ok j = reply_field j "status" = Some "ok"

let check_kind name expect j =
  Alcotest.(check string) name expect
    (Option.value (reply_field j "kind") ~default:"?")

(* ---- jobs ---- *)

let daemon_flow_base = Server.default_config.Server.flow

let submit_line ?(id = "") ?(name = "job") ?(family = Cell_netlist.Tg_static)
    ?(script = "b; rw; map; sta; lint") circuit =
  Proto.submit_to_line
    {
      Proto.sub_id = id;
      sub_name = name;
      sub_format = Proto.Blif;
      sub_circuit = circuit;
      sub_script = script;
      sub_family = family;
      sub_params = Proto.default_params;
      sub_netlist = false;
    }

(* what the daemon must return: the same job computed in this process *)
let expected_result ?(name = "job") ?(family = Cell_netlist.Tg_static)
    ?(script = "b; rw; map; sta; lint") circuit =
  let sub =
    {
      Proto.sub_id = "";
      sub_name = name;
      sub_format = Proto.Blif;
      sub_circuit = circuit;
      sub_script = script;
      sub_family = family;
      sub_params = Proto.default_params;
      sub_netlist = false;
    }
  in
  let config = Job.flow_config ~base:daemon_flow_base sub in
  let steps = Job.parse_script sub in
  let aig = Job.parse_circuit sub in
  Job.result_json ~config ~steps ~aig sub

let bench_blif name = Blif.to_string ((Bench_suite.find name).Bench_suite.build ())

(* ---- basic protocol: ping, submit, cache, status, drain ---- *)

let test_basic () =
  with_daemon (start_daemon ()) @@ fun (pid, sock) ->
  let c = connect sock in
  let pong = parse_reply (rpc c (Proto.simple_to_line "ping")) in
  Alcotest.(check bool) "pong ok" true (is_ok pong);
  let circuit = bench_blif "add-16" in
  let r1 = parse_reply (rpc c (submit_line ~id:"a1" ~name:"add16" circuit)) in
  Alcotest.(check bool) "first ok" true (is_ok r1);
  Alcotest.(check (option bool)) "first uncached" (Some false)
    (Json_codec.mem_bool r1 "cached");
  (* byte-determinism against the in-process baseline *)
  Alcotest.(check bool) "result matches in-process run" true
    (Json_codec.member "result" r1
    = Result.to_option (Json_codec.parse (expected_result ~name:"add16" circuit)));
  (* resubmission: text-cache hit with the identical result *)
  let r2 = parse_reply (rpc c (submit_line ~id:"a2" ~name:"add16" circuit)) in
  Alcotest.(check (option bool)) "second cached" (Some true)
    (Json_codec.mem_bool r2 "cached");
  Alcotest.(check bool) "cached result identical" true
    (Json_codec.member "result" r1 = Json_codec.member "result" r2);
  (* status carries scheduler and library-cache counters *)
  let st = parse_reply (rpc c (Proto.simple_to_line "status")) in
  let result = Option.get (Json_codec.member "result" st) in
  let jobs = Option.get (Json_codec.member "jobs" result) in
  Alcotest.(check (option int)) "completed" (Some 1)
    (Json_codec.mem_int jobs "completed");
  Alcotest.(check (option int)) "cache hit" (Some 1)
    (Json_codec.mem_int jobs "cache_hits");
  let lib = Option.get (Json_codec.member "lib_cache" result) in
  Alcotest.(check bool) "lib cache characterized the warm family" true
    (Option.get (Json_codec.mem_int lib "entries") >= 1);
  Alcotest.(check bool) "lib cache counters present" true
    (Json_codec.mem_int lib "hits" <> None
    && Json_codec.mem_int lib "misses" <> None);
  let dr = parse_reply (rpc c (Proto.simple_to_line "drain")) in
  Alcotest.(check bool) "drain acknowledged" true (is_ok dr);
  close_conn c;
  Alcotest.(check int) "clean exit" 0 (daemon_exit_code pid);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

(* ---- the chaos batch: 50 pipelined jobs under injected SIGKILLs ---- *)

let test_chaos_batch () =
  let jobs =
    (* distinct (circuit, family, name) jobs; the batch cycles them so the
       coalescer and both cache paths are exercised too *)
    [
      ("add16", "add-16", Cell_netlist.Tg_static);
      ("t481", "t481", Cell_netlist.Tg_static);
      ("add16c", "add-16", Cell_netlist.Cmos);
      ("t481c", "t481", Cell_netlist.Cmos);
      ("add32", "add-32", Cell_netlist.Tg_static);
      ("c1908", "C1908", Cell_netlist.Tg_static);
    ]
  in
  let texts =
    List.map (fun (nm, bench, fam) -> (nm, bench_blif bench, fam)) jobs
  in
  (* the undisturbed sequential baseline, computed in this process *)
  let expected =
    List.map
      (fun (nm, text, fam) ->
        ( nm,
          Result.to_option
            (Json_codec.parse (expected_result ~name:nm ~family:fam text)) ))
      texts
  in
  with_daemon
    (start_daemon ~workers:3 ~chaos:0.15 ~max_attempts:8
       ~warm:[ Cell_netlist.Tg_static; Cell_netlist.Cmos ] ())
  @@ fun (pid, sock) ->
  let c = connect sock in
  let total = 50 in
  for i = 0 to total - 1 do
    let nm, text, fam = List.nth texts (i mod List.length texts) in
    send_line c
      (submit_line ~id:(Printf.sprintf "j%d:%s" i nm) ~name:nm ~family:fam text)
  done;
  let replies = List.init total (fun _ -> parse_reply (recv_line c)) in
  (* the daemon survived the whole batch *)
  Unix.kill pid 0;
  List.iter
    (fun r ->
      let id = reply_id r in
      Alcotest.(check bool) (id ^ " ok") true (is_ok r);
      let nm =
        match String.index_opt id ':' with
        | Some i -> String.sub id (i + 1) (String.length id - i - 1)
        | None -> Alcotest.fail ("bad id " ^ id)
      in
      Alcotest.(check bool)
        (id ^ " byte-identical to the sequential baseline")
        true
        (Json_codec.member "result" r = List.assoc nm expected))
    replies;
  let st = parse_reply (rpc c (Proto.simple_to_line "status")) in
  let jobs_j =
    Option.get (Json_codec.member "jobs" (Option.get (Json_codec.member "result" st)))
  in
  Alcotest.(check (option int)) "all fifty accepted" (Some total)
    (Json_codec.mem_int jobs_j "received");
  Alcotest.(check bool) "duplicates were coalesced or cached" true
    (Option.get (Json_codec.mem_int jobs_j "coalesced")
     + Option.get (Json_codec.mem_int jobs_j "cache_hits")
    >= total - List.length jobs);
  ignore (rpc c (Proto.simple_to_line "drain"));
  close_conn c;
  Alcotest.(check int) "clean exit after chaos" 0 (daemon_exit_code pid)

(* ---- an externally SIGKILLed worker: retried, then typed ---- *)

let test_worker_sigkill_retry () =
  with_daemon (start_daemon ~workers:1 ~max_attempts:4 ()) @@ fun (pid, sock) ->
  let c = connect sock in
  let circuit = bench_blif "add-16" in
  send_line c (submit_line ~id:"k1" ~script:"sleep(s=0.8); b" circuit);
  (* find the busy worker via the status op on a second connection *)
  let c2 = connect sock in
  let rec worker_pid n =
    if n = 0 then Alcotest.fail "no worker appeared";
    let st = parse_reply (rpc c2 (Proto.simple_to_line "status")) in
    let pids =
      Option.get (Json_codec.member "result" st)
      |> Json_codec.member "workers"
      |> Option.get |> Json_codec.member "pids" |> Option.get |> Json_codec.arr
      |> Option.get
      |> List.filter_map Json_codec.int_
    in
    match pids with
    | p :: _ -> p
    | [] ->
        Unix.sleepf 0.05;
        worker_pid (n - 1)
  in
  Unix.kill (worker_pid 100) Sys.sigkill;
  let r = parse_reply (recv_line c) in
  Alcotest.(check bool) "retried to completion" true (is_ok r);
  Alcotest.(check bool) "more than one attempt" true
    (Option.get (Json_codec.mem_int r "attempts") >= 2);
  let st = parse_reply (rpc c2 (Proto.simple_to_line "status")) in
  let jobs_j =
    Option.get (Json_codec.member "jobs" (Option.get (Json_codec.member "result" st)))
  in
  Alcotest.(check bool) "crash counted" true
    (Option.get (Json_codec.mem_int jobs_j "crashes") >= 1);
  Alcotest.(check bool) "retry counted" true
    (Option.get (Json_codec.mem_int jobs_j "retries") >= 1);
  ignore (rpc c (Proto.simple_to_line "drain"));
  close_conn c;
  close_conn c2;
  Alcotest.(check int) "clean exit" 0 (daemon_exit_code pid)

(* ---- a poison job that crashes every attempt: typed job-crashed ---- *)

let test_poison_job () =
  (* chaos 1.0 SIGKILLs every worker shortly after spawn; the 0.5s sleep
     guarantees the kill always lands before the job can finish *)
  with_daemon (start_daemon ~workers:1 ~chaos:1.0 ~max_attempts:3 ())
  @@ fun (pid, sock) ->
  let c = connect sock in
  let r =
    parse_reply
      (rpc c (submit_line ~id:"p1" ~script:"sleep(s=0.5); b" (bench_blif "add-16")))
  in
  Alcotest.(check (option string)) "typed failure" (Some "error")
    (reply_field r "status");
  check_kind "job-crashed" "job-crashed" r;
  Alcotest.(check (option int)) "attempts exhausted" (Some 3)
    (Json_codec.mem_int r "attempts");
  (* the daemon survived its workers *)
  Unix.kill pid 0;
  ignore (rpc c (Proto.simple_to_line "drain"));
  close_conn c;
  Alcotest.(check int) "clean exit" 0 (daemon_exit_code pid)

(* ---- budgets and typed SAT-budget exhaustion in a served job ---- *)

let test_budgets_and_cec () =
  with_daemon (start_daemon ~workers:1 ~job_budget:0.4 ())
  @@ fun (pid, sock) ->
  let c = connect sock in
  (* wall-clock budget: supervisor SIGKILL, typed job-budget reply *)
  let r =
    parse_reply
      (rpc c (submit_line ~id:"b1" ~script:"sleep(s=10)" (bench_blif "t481")))
  in
  check_kind "budget kill" "job-budget" r;
  (* SAT conflict budget inside a served job: Cec.Undecided territory must
     come back as a structured result with a cec-undecided Warning *)
  let r =
    parse_reply
      (rpc c
         (submit_line ~id:"b2" ~name:"add16" ~script:"b; rw; map; cec(budget=1)"
            (bench_blif "add-16")))
  in
  Alcotest.(check bool) "undecided CEC is still an ok reply" true (is_ok r);
  let result = Option.get (Json_codec.member "result" r) in
  Alcotest.(check (option bool)) "no crash" (Some false)
    (Json_codec.mem_bool result "pass_crashed");
  let diags =
    Option.get (Json_codec.arr (Option.get (Json_codec.member "diags" result)))
    |> List.filter_map Json_codec.str
  in
  Alcotest.(check bool) "cec-undecided diagnostic" true
    (List.exists
       (fun d ->
         let n = String.length d in
         let rec has i =
           i + 13 <= n && (String.sub d i 13 = "cec-undecided" || has (i + 1))
         in
         has 0)
       diags);
  (* a script that fails to parse: deterministic typed reject, no retry *)
  let r =
    parse_reply
      (rpc c (submit_line ~id:"b3" ~script:"frobnicate" (bench_blif "t481")))
  in
  check_kind "bad script" "parse-error" r;
  Alcotest.(check (option int)) "rejected on the first attempt" (Some 1)
    (Json_codec.mem_int r "attempts");
  ignore (rpc c (Proto.simple_to_line "drain"));
  close_conn c;
  Alcotest.(check int) "clean exit" 0 (daemon_exit_code pid)

(* ---- load shedding and oversized-request framing recovery ---- *)

let test_overload_and_oversized () =
  with_daemon (start_daemon ~workers:1 ~queue:1 ~max_request:65536 ())
  @@ fun (pid, sock) ->
  let c = connect sock in
  (* occupy the worker, fill the one queue slot, then overflow it *)
  send_line c (submit_line ~id:"s0" ~script:"sleep(s=0.6)" (bench_blif "t481"));
  send_line c
    (submit_line ~id:"s1" ~name:"q1" ~script:"sleep(s=0.1)" (bench_blif "t481"));
  send_line c
    (submit_line ~id:"s2" ~name:"q2" ~script:"sleep(s=0.1)" (bench_blif "t481"));
  send_line c
    (submit_line ~id:"s3" ~name:"q3" ~script:"sleep(s=0.1)" (bench_blif "t481"));
  let replies = List.init 4 (fun _ -> parse_reply (recv_line c)) in
  let shed =
    List.filter (fun r -> reply_field r "kind" = Some "overloaded") replies
  in
  Alcotest.(check bool) "at least one job shed" true (List.length shed >= 1);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (reply_id r ^ " carries a positive retry_after")
        true
        (match Json_codec.member "retry_after" r with
        | Some v -> Option.get (Json_codec.num v) > 0.0
        | None -> false))
    shed;
  (* an oversized request poisons neither the daemon nor the connection *)
  let garbage = String.make 100_000 'x' in
  send_line c garbage;
  let r = parse_reply (recv_line c) in
  check_kind "oversized" "oversized" r;
  let pong = parse_reply (rpc c (Proto.simple_to_line "ping")) in
  Alcotest.(check bool) "framing recovered after oversized line" true
    (is_ok pong);
  ignore (rpc c (Proto.simple_to_line "drain"));
  close_conn c;
  Alcotest.(check int) "clean exit" 0 (daemon_exit_code pid)

(* ---- SIGTERM drain: finish in-flight, reject new, exit 0 ---- *)

let test_sigterm_drain () =
  with_daemon (start_daemon ~workers:1 ()) @@ fun (pid, sock) ->
  let c = connect sock in
  send_line c (submit_line ~id:"d1" ~script:"sleep(s=1.0); b" (bench_blif "t481"));
  Unix.sleepf 0.3;
  (* job is in flight *)
  Unix.kill pid Sys.sigterm;
  Unix.sleepf 0.1;
  send_line c (submit_line ~id:"d2" (bench_blif "t481"));
  let a = parse_reply (recv_line c) in
  let b = parse_reply (recv_line c) in
  let by_id id = if reply_id a = id then a else b in
  check_kind "new work rejected while draining" "draining" (by_id "d2");
  Alcotest.(check bool) "in-flight job still finished" true (is_ok (by_id "d1"));
  close_conn c;
  Alcotest.(check int) "drained exit" 0 (daemon_exit_code pid);
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock)

(* ---- checkpoint resume after the whole driver is SIGKILLed ---- *)

let test_checkpoint_sigkill_resume () =
  let ck = Filename.temp_file "flow" ".ck" in
  Sys.remove ck;
  let entries =
    List.map Bench_suite.find [ "add-16"; "t481"; "add-32" ]
  in
  let config = { Flow.default_config with Flow.jobs = 1 } in
  let script = Flow.parse_script_exn "b; sleep(s=0.35); map" in
  let lines (r : Flow.bench_result) =
    List.map (fun (_, ctx, _) -> Flow.summary_line ctx) r.Flow.br_per_family
  in
  let run_with_checkpoint todo =
    let store = ref (Flow.Checkpoint.load ck) in
    let on_result r =
      store := !store @ [ Flow.Checkpoint.of_result r ~lines:(lines r) ];
      Flow.Checkpoint.save ck !store
    in
    ignore
      (Flow.run_matrix ~domains:1 ~config ~on_result ~script
         ~families:[ Cell_netlist.Tg_static ] todo)
  in
  (match Unix.fork () with
  | 0 ->
      (try run_with_checkpoint entries with _ -> ());
      Unix._exit 0
  | child ->
      (* let it finish at least one benchmark, then kill it mid-run *)
      let rec wait n =
        if n = 0 then Alcotest.fail "no checkpoint entry appeared";
        if Flow.Checkpoint.load ck = [] then begin
          Unix.sleepf 0.05;
          wait (n - 1)
        end
      in
      wait 400;
      Unix.kill child Sys.sigkill;
      ignore (Unix.waitpid [] child));
  let saved = Flow.Checkpoint.load ck in
  Alcotest.(check bool) "partial progress survived the SIGKILL" true
    (List.length saved >= 1 && List.length saved < 3);
  (* resume: recompute only what is missing, exactly like bin/flow *)
  let todo =
    List.filter
      (fun (e : Bench_suite.entry) ->
        not (Flow.Checkpoint.mem saved e.Bench_suite.name))
      entries
  in
  run_with_checkpoint todo;
  let final = Flow.Checkpoint.load ck in
  let resumed_lines =
    List.concat_map
      (fun (e : Bench_suite.entry) ->
        match
          List.find_opt
            (fun (k : Flow.Checkpoint.entry) ->
              k.Flow.Checkpoint.ck_bench = e.Bench_suite.name)
            final
        with
        | Some k -> k.Flow.Checkpoint.ck_lines
        | None -> Alcotest.fail ("missing benchmark " ^ e.Bench_suite.name))
      entries
  in
  (* the undisturbed run, straight through *)
  let fresh =
    Flow.run_matrix ~domains:1 ~config ~script
      ~families:[ Cell_netlist.Tg_static ] entries
    |> Array.to_list |> List.concat_map lines
  in
  Alcotest.(check (list string)) "resumed run is byte-identical" fresh
    resumed_lines;
  Sys.remove ck

let () =
  Alcotest.run "serve"
    [
      ( "flowd",
        [
          Alcotest.test_case "basic protocol and cache" `Quick test_basic;
          Alcotest.test_case "chaos batch determinism" `Slow test_chaos_batch;
          Alcotest.test_case "worker SIGKILL retry" `Quick
            test_worker_sigkill_retry;
          Alcotest.test_case "poison job bounded attempts" `Quick
            test_poison_job;
          Alcotest.test_case "budgets and cec-undecided" `Quick
            test_budgets_and_cec;
          Alcotest.test_case "overload and oversized" `Quick
            test_overload_and_oversized;
          Alcotest.test_case "sigterm drain" `Quick test_sigterm_drain;
          Alcotest.test_case "checkpoint sigkill resume" `Slow
            test_checkpoint_sigkill_resume;
        ] );
    ]
