(* Regenerates the paper's artifacts.

     experiments table1|table2|table3|fig6|all [fast]

   "fast" restricts Table 3 / Figure 6 to the small benchmarks.  The "all"
   mode prints everything in one report (what EXPERIMENTS.md archives). *)

let fast_benches =
  [ "C1908"; "C3540"; "dalu"; "t481"; "C1355"; "add-16"; "add-32"; "add-64" ]

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let fast = Array.length Sys.argv > 2 && Sys.argv.(2) = "fast" in
  let benches = if fast then Some fast_benches else None in
  let t0 = Unix.gettimeofday () in
  (match what with
  | "table1" -> print_string (Experiments.render_table1 ())
  | "table2" -> print_string (Experiments.render_table2 ())
  | "table3" -> print_string (Experiments.render_table3 ?benches ())
  | "fig6" -> print_string (Experiments.render_fig6 ?benches ())
  | "all" ->
      print_string (Experiments.render_table1 ());
      print_newline ();
      print_string (Experiments.render_table2 ());
      print_newline ();
      print_string (Experiments.render_table3 ?benches ());
      print_newline ();
      print_string (Experiments.render_fig6 ?benches ())
  | other ->
      Printf.eprintf "unknown experiment %s (table1|table2|table3|fig6|all)\n"
        other;
      exit 1);
  Printf.printf "\n_generated in %.1f s_\n" (Unix.gettimeofday () -. t0)
