(* Tests for cube algebra, the Minato–Morreale ISOP and algebraic factoring. *)

let rng = Rand64.create 11L

let random_tt n =
  if n <= 6 then Tt.of_bits n (Rand64.next rng)
  else Tt.of_words n (Array.init (1 lsl (n - 6)) (fun _ -> Rand64.next rng))

let arb_tt =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Tt.pp t)
    QCheck.Gen.(int_range 1 8 >>= fun n -> return (random_tt n))

let test_cube_basics () =
  let c = Cube.of_literals [ (0, true); (3, false) ] in
  Alcotest.(check int) "literal count" 2 (Cube.num_literals c);
  Alcotest.(check bool) "has pos 0" true (Cube.has_pos c 0);
  Alcotest.(check bool) "has neg 3" true (Cube.has_neg c 3);
  Alcotest.(check bool) "eval 0b0001" true (Cube.evaluates c 0b0001);
  Alcotest.(check bool) "eval 0b1001" false (Cube.evaluates c 0b1001);
  Alcotest.(check bool) "top contains" true (Cube.contains Cube.top c);
  Alcotest.(check bool) "not contained" false (Cube.contains c Cube.top);
  (match Cube.and_lit c 0 false with
  | None -> ()
  | Some _ -> Alcotest.fail "contradiction accepted");
  let c' = Cube.remove_var c 3 in
  Alcotest.(check int) "after removal" 1 (Cube.num_literals c')

let test_cube_contradiction () =
  Alcotest.check_raises "of_literals contradiction"
    (Invalid_argument "Cube.of_literals: contradiction") (fun () ->
      ignore (Cube.of_literals [ (1, true); (1, false) ]))

let prop_cube_tt =
  QCheck.Test.make ~name:"cube to_tt matches evaluates" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (p, q) ->
      let pos = p land lnot q and neg = q land lnot p in
      let c = { Cube.pos; neg } in
      let n = 8 in
      let tt = Cube.to_tt n c in
      let ok = ref true in
      for a = 0 to (1 lsl n) - 1 do
        if Tt.eval tt a <> Cube.evaluates c a then ok := false
      done;
      !ok)

let prop_isop_exact =
  QCheck.Test.make ~name:"isop cover equals function" ~count:300 arb_tt
    (fun t ->
      let s = Sop.isop t in
      Tt.equal (Sop.to_tt s) t)

let prop_isop_irredundant =
  QCheck.Test.make ~name:"isop cover is irredundant" ~count:100 arb_tt
    (fun t ->
      let s = Sop.isop t in
      let n = Tt.nvars t in
      (* dropping any single cube must lose some minterm *)
      List.for_all
        (fun c ->
          let rest = List.filter (fun d -> d <> c) s.Sop.cubes in
          not (Tt.equal (Sop.to_tt (Sop.make n rest)) t))
        s.Sop.cubes)

let prop_isop_lu_bounds =
  QCheck.Test.make ~name:"isop_lu lies within bounds" ~count:300
    (QCheck.pair arb_tt arb_tt) (fun (a, b) ->
      QCheck.assume (Tt.nvars a = Tt.nvars b);
      let lower = Tt.band a b and upper = Tt.bor a b in
      let s = Sop.isop_lu lower upper in
      let f = Sop.to_tt s in
      Tt.is_const0 (Tt.bandn lower f) && Tt.is_const0 (Tt.bandn f upper))

let prop_factor_equal =
  QCheck.Test.make ~name:"factored form equals cover" ~count:300 arb_tt
    (fun t ->
      let s = Sop.isop t in
      let f = Factored.factor s in
      Tt.equal (Factored.to_tt (Tt.nvars t) f) t)

let prop_factor_no_more_literals =
  QCheck.Test.make ~name:"factoring does not add literals" ~count:200 arb_tt
    (fun t ->
      let s = Sop.isop t in
      Factored.num_literals (Factored.factor s) <= Sop.num_literals s)

let test_factor_examples () =
  (* f = a*b + a*c: factoring must produce 3 literals, not 4. *)
  let n = 3 in
  let a = Tt.var n 0 and b = Tt.var n 1 and c = Tt.var n 2 in
  let f = Tt.bor (Tt.band a b) (Tt.band a c) in
  let form = Factored.factor (Sop.isop f) in
  Alcotest.(check int) "a(b+c) has 3 literals" 3 (Factored.num_literals form);
  (* xor needs 4 literals in SOP *)
  let x = Tt.bxor a b in
  let sx = Sop.isop x in
  Alcotest.(check int) "xor cubes" 2 (Sop.num_cubes sx);
  Alcotest.(check int) "xor literals" 4 (Sop.num_literals sx)

let test_isop_constants () =
  let s0 = Sop.isop (Tt.const0 4) in
  Alcotest.(check int) "const0 cubes" 0 (Sop.num_cubes s0);
  let s1 = Sop.isop (Tt.const1 4) in
  Alcotest.(check int) "const1 cubes" 1 (Sop.num_cubes s1);
  Alcotest.(check int) "const1 literals" 0 (Sop.num_literals s1)

let test_isop_big () =
  (* 10-variable parity: ISOP must have 512 cubes of 10 literals. *)
  let n = 10 in
  let parity =
    List.fold_left
      (fun acc i -> Tt.bxor acc (Tt.var n i))
      (Tt.const0 n)
      (List.init n (fun i -> i))
  in
  let s = Sop.isop parity in
  Alcotest.(check int) "parity cubes" 512 (Sop.num_cubes s);
  Alcotest.(check bool) "parity exact" true (Tt.equal (Sop.to_tt s) parity)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "sop"
    [
      ( "cube",
        [
          Alcotest.test_case "basics" `Quick test_cube_basics;
          Alcotest.test_case "contradiction" `Quick test_cube_contradiction;
          qt prop_cube_tt;
        ] );
      ( "isop",
        [
          Alcotest.test_case "constants" `Quick test_isop_constants;
          Alcotest.test_case "parity-10" `Quick test_isop_big;
          qt prop_isop_exact;
          qt prop_isop_irredundant;
          qt prop_isop_lu_bounds;
        ] );
      ( "factoring",
        [
          Alcotest.test_case "examples" `Quick test_factor_examples;
          qt prop_factor_equal;
          qt prop_factor_no_more_literals;
        ] );
    ]
