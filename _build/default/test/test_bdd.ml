(* Tests for the ROBDD engine, crosschecked against truth tables. *)

let rng = Rand64.create 13L

let random_tt n =
  if n <= 6 then Tt.of_bits n (Rand64.next rng)
  else Tt.of_words n (Array.init (1 lsl (n - 6)) (fun _ -> Rand64.next rng))

let arb_tt =
  QCheck.make
    ~print:(fun t -> Format.asprintf "%a" Tt.pp t)
    QCheck.Gen.(int_range 1 8 >>= fun n -> return (random_tt n))

let prop_roundtrip =
  QCheck.Test.make ~name:"of_tt/to_tt roundtrip" ~count:300 arb_tt (fun t ->
      let n = Tt.nvars t in
      let m = Bdd.create n in
      let f = Bdd.of_tt m t in
      Tt.equal (Bdd.to_tt m n f) t)

let prop_canonicity =
  QCheck.Test.make ~name:"equal functions share a node" ~count:200
    (QCheck.pair arb_tt arb_tt) (fun (a, b) ->
      QCheck.assume (Tt.nvars a = Tt.nvars b);
      let n = Tt.nvars a in
      let m = Bdd.create n in
      let fa = Bdd.of_tt m a and fb = Bdd.of_tt m b in
      Tt.equal a b = (fa = fb))

let prop_ops_match =
  QCheck.Test.make ~name:"BDD ops match Tt ops" ~count:200
    (QCheck.pair arb_tt arb_tt) (fun (a, b) ->
      QCheck.assume (Tt.nvars a = Tt.nvars b);
      let n = Tt.nvars a in
      let m = Bdd.create n in
      let fa = Bdd.of_tt m a and fb = Bdd.of_tt m b in
      Bdd.mand m fa fb = Bdd.of_tt m (Tt.band a b)
      && Bdd.mor m fa fb = Bdd.of_tt m (Tt.bor a b)
      && Bdd.mxor m fa fb = Bdd.of_tt m (Tt.bxor a b)
      && Bdd.mnot m fa = Bdd.of_tt m (Tt.bnot a))

let prop_sat_count =
  QCheck.Test.make ~name:"sat_count matches count_ones" ~count:200 arb_tt
    (fun t ->
      let n = Tt.nvars t in
      let m = Bdd.create n in
      let f = Bdd.of_tt m t in
      int_of_float (Bdd.sat_count m f) = Tt.count_ones t)

let prop_any_sat =
  QCheck.Test.make ~name:"any_sat returns a witness" ~count:200 arb_tt
    (fun t ->
      let n = Tt.nvars t in
      let m = Bdd.create n in
      let f = Bdd.of_tt m t in
      match Bdd.any_sat m f with
      | None -> Tt.is_const0 t
      | Some partial ->
          let a =
            List.fold_left
              (fun acc (v, s) -> if s then acc lor (1 lsl v) else acc)
              0 partial
          in
          Tt.eval t a)

let prop_cofactor =
  QCheck.Test.make ~name:"cofactor matches Tt" ~count:200 arb_tt (fun t ->
      let n = Tt.nvars t in
      let i = Rand64.int rng n in
      let m = Bdd.create n in
      let f = Bdd.of_tt m t in
      Bdd.cofactor m f i true = Bdd.of_tt m (Tt.cofactor1 t i)
      && Bdd.cofactor m f i false = Bdd.of_tt m (Tt.cofactor0 t i))

let test_var_order () =
  let m = Bdd.create 4 in
  let x0 = Bdd.var m 0 and x3 = Bdd.var m 3 in
  let f = Bdd.mand m x0 x3 in
  Alcotest.(check int) "x0*x3 has 2 nodes" 2 (Bdd.size m f)

let test_xor_chain_size () =
  (* XOR of n variables has exactly n BDD nodes under any order. *)
  let n = 10 in
  let m = Bdd.create n in
  let f =
    List.fold_left
      (fun acc i -> Bdd.mxor m acc (Bdd.var m i))
      Bdd.zero
      (List.init n (fun i -> i))
  in
  Alcotest.(check int) "xor-10 nodes" ((2 * n) - 1) (Bdd.size m f)

let test_terminal_cases () =
  let m = Bdd.create 3 in
  Alcotest.(check int) "zero size" 0 (Bdd.size m Bdd.zero);
  Alcotest.(check bool) "ite(1,a,b)=a" true
    (Bdd.ite m Bdd.one (Bdd.var m 1) Bdd.zero = Bdd.var m 1);
  Alcotest.(check bool) "x and !x = 0" true
    (Bdd.mand m (Bdd.var m 2) (Bdd.mnot m (Bdd.var m 2)) = Bdd.zero)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "bdd"
    [
      ( "bdd",
        [
          Alcotest.test_case "terminals" `Quick test_terminal_cases;
          Alcotest.test_case "var order" `Quick test_var_order;
          Alcotest.test_case "xor chain" `Quick test_xor_chain_size;
          qt prop_roundtrip;
          qt prop_canonicity;
          qt prop_ops_match;
          qt prop_sat_count;
          qt prop_any_sat;
          qt prop_cofactor;
        ] );
    ]
